package experiments

import (
	"memsim/internal/core"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

func init() { register("aging", Aging) }

// Aging is the ablation suggested by our Fig. 6 reproduction (extension):
// pure SPTF's greediness makes its σ²/µ² explode near the saturation
// knee — plausibly the paper's unexplained "odd behavior of SPTF between
// 1500 and 2000 requests/sec". Aged SPTF discounts each request's
// positioning estimate by Weight · wait-time; a small weight restores
// bounded tails at modest mean-response cost.
func Aging(p Params) []Table {
	d := newMEMS(1)
	t := Table{
		ID:      "aging",
		Title:   "SPTF aging at the saturation knee (MEMS, random workload, 1600 req/s)",
		Columns: []string{"scheduler", "mean response(ms)", "cv²", "max response(ms)"},
	}
	scheds := []core.Scheduler{
		sched.NewSPTF(),
		sched.NewASPTF(0.01),
		sched.NewASPTF(0.05),
		sched.NewASPTF(0.2),
		sched.NewSSTF(),
		sched.NewCLOOK(),
	}
	for _, s := range scheds {
		src := workload.DefaultRandom(1600, d.SectorSize(), d.Capacity(), p.Requests, p.Seed)
		res := sim.Run(d, s, src, sim.Options{Warmup: p.Warmup})
		t.AddRow(s.Name(), ms(res.Response.Mean()), f2(res.Response.SquaredCV()),
			ms(res.Response.Max()))
	}
	return []Table{t}
}
