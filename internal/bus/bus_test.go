package bus

import (
	"math"
	"testing"

	"memsim/internal/core"
	"memsim/internal/mems"
)

// instantDev completes media work in a fixed time.
type instantDev struct{ svc float64 }

func (d *instantDev) Name() string                                  { return "instant" }
func (d *instantDev) Capacity() int64                               { return 1 << 30 }
func (d *instantDev) SectorSize() int                               { return 512 }
func (d *instantDev) Reset()                                        {}
func (d *instantDev) Access(*core.Request, float64) float64         { return d.svc }
func (d *instantDev) EstimateAccess(*core.Request, float64) float64 { return d.svc }

func TestConfigValidate(t *testing.T) {
	if err := Ultra160().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{MBPerSec: 0}).Validate(); err == nil {
		t.Error("expected rate error")
	}
	if err := (Config{MBPerSec: 100, CommandMs: -1}).Validate(); err == nil {
		t.Error("expected command error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New should panic")
			}
		}()
		New(Config{})
	}()
}

func TestSingleAccessTiming(t *testing.T) {
	// Media 1 ms, transfer 4096 B at 160 MB/s = 0.0256 ms, command 0.01.
	b := New(Config{MBPerSec: 160, CommandMs: 0.01})
	a := b.Attach(&instantDev{svc: 1})
	svc := a.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 8}, 0)
	// Pipelined: done = max(media done, bus slot end). Bus data phase is
	// claimed at device start: start 0.01, xfer 0.0256 → ends 0.0356;
	// media ends 1.01 → done 1.01.
	if math.Abs(svc-1.01) > 1e-9 {
		t.Errorf("service = %g, want 1.01", svc)
	}
}

func TestBusBoundTransfer(t *testing.T) {
	// A fast device (0.1 ms media) moving 1 MB: bus at 100 MB/s needs
	// 10 ms → bus-bound.
	b := New(Config{MBPerSec: 100, CommandMs: 0})
	a := b.Attach(&instantDev{svc: 0.1})
	blocks := 1 << 11 // 1 MB
	svc := a.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: blocks}, 0)
	if math.Abs(svc-10.48576) > 0.01 {
		t.Errorf("bus-bound service = %g, want ≈ 10.49", svc)
	}
}

func TestContentionSerializesBus(t *testing.T) {
	// Two devices issue at the same instant: the second's data phase
	// waits for the first's.
	b := New(Config{MBPerSec: 100, CommandMs: 0})
	d1 := b.Attach(&instantDev{svc: 0})
	d2 := b.Attach(&instantDev{svc: 0})
	blocks := 1 << 11 // 1 MB → 10.49 ms on the bus
	s1 := d1.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: blocks}, 0)
	s2 := d2.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: blocks}, 0)
	if s2 < s1*1.9 {
		t.Errorf("second transfer (%g) should wait behind the first (%g)", s2, s1)
	}
	if got := b.BusyMs(); math.Abs(got-2*10.48576) > 0.01 {
		t.Errorf("bus busy = %g ms", got)
	}
}

func TestCommandOverheadSerializes(t *testing.T) {
	b := New(Config{MBPerSec: 1e9, CommandMs: 1})
	d1 := b.Attach(&instantDev{svc: 0})
	d2 := b.Attach(&instantDev{svc: 0})
	d1.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 1}, 0)
	svc := d2.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 1}, 0)
	// Second command waits ~1 ms for the first's command phase.
	if svc < 1.9 {
		t.Errorf("second request service = %g, want ≈ 2 (queued command)", svc)
	}
}

func TestResetClearsSchedule(t *testing.T) {
	b := New(Config{MBPerSec: 100, CommandMs: 0})
	a := b.Attach(&instantDev{svc: 0})
	a.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 1 << 11}, 0)
	b.Reset()
	if b.BusyMs() != 0 {
		t.Error("Reset did not clear busy accounting")
	}
	svc := a.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 8}, 0)
	if svc > 1 {
		t.Errorf("post-reset access = %g, bus schedule not cleared", svc)
	}
}

func TestEstimateLowerBound(t *testing.T) {
	b := New(Config{MBPerSec: 160, CommandMs: 0.01})
	a := b.Attach(&instantDev{svc: 1})
	r := &core.Request{Op: core.Read, LBN: 0, Blocks: 8}
	if est := a.EstimateAccess(r, 0); math.Abs(est-1.01) > 1e-9 {
		t.Errorf("idle-bus estimate = %g", est)
	}
	// With the bus busy, the estimate includes the wait.
	a.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 1 << 12}, 0)
	if est := a.EstimateAccess(r, 0); est <= 1.01 {
		t.Errorf("busy-bus estimate = %g, should include wait", est)
	}
}

func TestMEMSStreamOverSharedBus(t *testing.T) {
	// Four sleds streaming concurrently over one Ultra160 bus must be
	// bus-limited: aggregate ≈ 160 MB/s, not 4 × 79.6.
	b := New(Ultra160())
	devs := make([]*Attached, 4)
	for i := range devs {
		devs[i] = b.Attach(mems.MustDevice(mems.DefaultConfig()))
	}
	const blocks = 512 // 256 KB pieces
	done := make([]float64, 4)
	var bytes float64
	for round := 0; round < 40; round++ {
		for i, d := range devs {
			lbn := int64(round * blocks)
			svc := d.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: blocks}, done[i])
			done[i] += svc
			bytes += blocks * 512
		}
	}
	elapsed := 0.0
	for _, d := range done {
		if d > elapsed {
			elapsed = d
		}
	}
	aggregate := bytes / (elapsed / 1000) / 1e6
	if aggregate > 170 {
		t.Errorf("aggregate %0.f MB/s exceeds the 160 MB/s bus", aggregate)
	}
	if aggregate < 100 {
		t.Errorf("aggregate %0.f MB/s too low — contention model too pessimistic", aggregate)
	}
	if a := devs[0]; a.Name() != "MEMS+bus" || a.Capacity() == 0 || a.SectorSize() != 512 {
		t.Error("pass-through accessors wrong")
	}
}
