package sim

import (
	"testing"

	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/sched"
	"memsim/internal/workload"
)

// schedSpy wraps a scheduler and counts Add calls, so tests can tell
// whether the engine returned a failed request via core.Requeuer or the
// Add fallback. It deliberately does NOT implement Requeuer itself.
type schedSpy struct {
	inner    core.Scheduler
	adds     int
	requeues int
}

func (s *schedSpy) Name() string                                  { return s.inner.Name() }
func (s *schedSpy) Add(r *core.Request)                           { s.adds++; s.inner.Add(r) }
func (s *schedSpy) Next(d core.Device, now float64) *core.Request { return s.inner.Next(d, now) }
func (s *schedSpy) Len() int                                      { return s.inner.Len() }
func (s *schedSpy) Reset()                                        { s.inner.Reset() }

// requeuerSpy additionally forwards Requeue, for wrapping schedulers
// that implement core.Requeuer (FCFS).
type requeuerSpy struct {
	*schedSpy
}

func (s *requeuerSpy) Requeue(r *core.Request) {
	s.requeues++
	s.inner.(core.Requeuer).Requeue(r)
}

// spy wraps inner so the wrapper implements core.Requeuer exactly when
// inner does, and returns the shared counters.
func spy(inner core.Scheduler) (core.Scheduler, *schedSpy) {
	sp := &schedSpy{inner: inner}
	if _, ok := inner.(core.Requeuer); ok {
		return &requeuerSpy{sp}, sp
	}
	return sp, sp
}

// TestRequeuerImplementations pins which schedulers implement the
// optional core.Requeuer interface: only FCFS distinguishes retried
// requests from fresh arrivals (it returns them to the queue head); the
// cost-driven policies re-rank retries like any other pending request.
func TestRequeuerImplementations(t *testing.T) {
	for _, name := range sched.AllNames() {
		s, err := sched.New(name)
		if err != nil {
			t.Fatal(err)
		}
		_, ok := s.(core.Requeuer)
		if want := name == "FCFS"; ok != want {
			t.Errorf("%s implements core.Requeuer = %v, want %v", name, ok, want)
		}
	}
}

// transientInjector forces requeues: every retry budget is zero so each
// transient error immediately returns the request to the scheduler.
func transientInjector(t *testing.T) *fault.Injector {
	t.Helper()
	return mustInjector(t, fault.InjectorConfig{TransientRate: 0.6, MaxRequeues: 5, Seed: 11})
}

// TestRequeuePreferenceOpen drives every scheduler through the
// single-device open regime under a transient-error injector and
// asserts which path the engine's requeue helper took: FCFS sees
// Requeue calls and exactly one Add per arrival; all other schedulers
// see the Add fallback, one extra Add per requeue.
func TestRequeuePreferenceOpen(t *testing.T) {
	for _, name := range sched.AllNames() {
		t.Run(name, func(t *testing.T) {
			inner, err := sched.New(name)
			if err != nil {
				t.Fatal(err)
			}
			s, sp := spy(inner)
			arr := make([]float64, 40)
			for i := range arr {
				arr[i] = float64(i)
			}
			reqs := mkReqs(arr)
			res := Run(nil, &fixedDevice{svc: 1}, s, workload.NewFromSlice(reqs),
				Options{Injector: transientInjector(t)})
			if res.Requeues == 0 {
				t.Fatal("injector produced no requeues; test exercises nothing")
			}
			if res.Requests+res.FailedRequests != len(reqs) {
				t.Errorf("conservation: %d measured + %d failed != %d issued",
					res.Requests, res.FailedRequests, len(reqs))
			}
			if _, ok := s.(core.Requeuer); ok {
				if sp.requeues != res.Requeues {
					t.Errorf("Requeue calls = %d, want %d", sp.requeues, res.Requeues)
				}
				if sp.adds != len(reqs) {
					t.Errorf("Add calls = %d, want one per arrival (%d)", sp.adds, len(reqs))
				}
			} else {
				if sp.requeues != 0 {
					t.Errorf("non-Requeuer %s saw %d Requeue calls", name, sp.requeues)
				}
				if want := len(reqs) + res.Requeues; sp.adds != want {
					t.Errorf("Add calls = %d, want arrivals+requeues = %d", sp.adds, want)
				}
			}
		})
	}
}

// TestRequeuePreferenceVolume repeats the preference check in the
// volume regime, where requeues target the failed member's own queue.
func TestRequeuePreferenceVolume(t *testing.T) {
	for _, name := range sched.AllNames() {
		t.Run(name, func(t *testing.T) {
			spec := volFixtures(t, parityVolCfg(), 1)
			spies := make([]*schedSpy, len(spec.Scheds))
			requeuer := false
			for i := range spec.Scheds {
				inner, err := sched.New(name)
				if err != nil {
					t.Fatal(err)
				}
				spec.Scheds[i], spies[i] = spy(inner)
				_, requeuer = inner.(core.Requeuer)
			}
			arr := make([]float64, 40)
			lbns := make([]int64, 40)
			for i := range arr {
				arr[i] = float64(i)
				lbns[i] = int64(i) % 128
			}
			src := workload.NewFromSlice(volReqs(arr, core.Read, lbns))
			res, err := RunVolume(nil, spec, src, Options{Injector: transientInjector(t)})
			if err != nil {
				t.Fatal(err)
			}
			if res.Requeues == 0 {
				t.Fatal("injector produced no requeues; test exercises nothing")
			}
			adds, requeues := 0, 0
			for _, sp := range spies {
				adds += sp.adds
				requeues += sp.requeues
			}
			if requeuer {
				if requeues != res.Requeues {
					t.Errorf("Requeue calls = %d, want %d", requeues, res.Requeues)
				}
				if adds != len(arr) {
					t.Errorf("Add calls = %d, want one per member op (%d)", adds, len(arr))
				}
			} else {
				if requeues != 0 {
					t.Errorf("non-Requeuer %s saw %d Requeue calls", name, requeues)
				}
				if want := len(arr) + res.Requeues; adds != want {
					t.Errorf("Add calls = %d, want member ops+requeues = %d", adds, want)
				}
			}
		})
	}
}

// TestVolumeClassAccounting exercises the class-tagging path end to
// end: a parity member dies mid-run, so reconstruction reads and
// rebuild chunks flow alongside foreground traffic, and the per-class
// response split plus the dispatch-event class stamps must reconcile
// with the volume's own counters.
func TestVolumeClassAccounting(t *testing.T) {
	spec := volFixtures(t, parityVolCfg(), 1)
	spec.RebuildChunk = 8
	spec.RebuildFrac = 0.1 // stretch the rebuild so reads hit the degraded window
	var classes [core.NumClasses]int
	probe := probeFunc(func(ev ProbeEvent) {
		if ev.Kind != EventDispatch {
			return
		}
		if int(ev.Class) >= core.NumClasses {
			t.Errorf("dispatch carries out-of-range class %d", ev.Class)
			return
		}
		classes[ev.Class]++
		if ev.Time < 10 && ev.Class != core.ClassForeground {
			t.Errorf("pre-failure dispatch at %.1f ms tagged %v", ev.Time, ev.Class)
		}
	})
	arr := make([]float64, 80)
	lbns := make([]int64, 80)
	for i := range arr {
		arr[i] = float64(i)
		lbns[i] = int64(i) % 128
	}
	src := workload.NewFromSlice(volReqs(arr, core.Read, lbns))
	res, err := RunVolume(nil, spec, src,
		Options{Probe: probe, Injector: devEvents(t, fault.DeviceEvent{AtMs: 10, Dev: 0})})
	if err != nil {
		t.Fatal(err)
	}
	vs := res.Volume
	if vs.DeviceFailures != 1 || vs.RebuildsDone != 1 {
		t.Fatalf("failover counters: %+v", vs)
	}
	if vs.DegradedReads == 0 {
		t.Fatal("no degraded reads; workload never hit the failed member")
	}
	fg := vs.ClassResponse[core.ClassForeground].N()
	dg := vs.ClassResponse[core.ClassDegradedRead].N()
	rb := vs.ClassResponse[core.ClassRebuild].N()
	if dg != int64(vs.DegradedReads) {
		t.Errorf("ClassResponse[degraded-read] N = %d, want DegradedReads = %d", dg, vs.DegradedReads)
	}
	if rb != int64(vs.RebuildChunks) {
		t.Errorf("ClassResponse[rebuild] N = %d, want RebuildChunks = %d", rb, vs.RebuildChunks)
	}
	if split := vs.Healthy.N() + vs.Degraded.N(); fg+dg != split {
		t.Errorf("foreground class split %d+%d != healthy/degraded split %d", fg, dg, split)
	}
	for c, want := range map[core.Class]int64{
		core.ClassForeground:   fg,
		core.ClassDegradedRead: dg,
		core.ClassRebuild:      rb,
	} {
		if want > 0 && classes[c] == 0 {
			t.Errorf("no dispatch events tagged %v despite %d completions", c, want)
		}
	}
	if vs.ClassResponse[core.ClassRebuild].Mean() <= 0 {
		t.Error("rebuild chunk latencies not folded into ClassResponse")
	}
}
