// Package sim is the discrete-event simulation substrate standing in for
// DiskSim (§3): an open-arrival, single-server queueing system in which
// timestamped requests arrive from a workload source, wait in a scheduler
// queue, and are serviced one at a time by a mechanically-detailed device
// model.
//
// The simulator is deterministic: identical sources, schedulers and
// devices produce identical results.
package sim

import (
	"context"
	"fmt"

	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/stats"
	"memsim/internal/workload"
)

// Context carries run-scoped observability through the simulation entry
// points (Run, RunClosed, RunMulti). It separates *how a run is watched*
// from Options, which describe *what is simulated*: the parallel
// experiment runner and the interactive CLIs thread a Context through
// without touching the experiment declarations. A nil *Context is valid
// and observes nothing.
type Context struct {
	// OnProgress, when non-nil, is invoked after every ProgressEvery
	// completions (warmup included) with the completion count and the
	// current simulated time in milliseconds.
	OnProgress func(completed int, simMs float64)
	// ProgressEvery is the completion interval between OnProgress calls;
	// zero or negative means 1000.
	ProgressEvery int
	// Ctx, when non-nil, makes the run cancellable: the event loop polls
	// Ctx.Done() every CancelEvery events and, once cancelled, stops
	// dispatching, finalizes normally, and marks the Result Cancelled.
	// A nil Ctx (or context.Background, whose Done channel is nil) keeps
	// the poll-free fast path, so uncancellable runs stay byte-identical
	// to runs predating cancellation support.
	Ctx context.Context
	// CancelEvery is the event interval between cancellation polls; zero
	// or negative selects DefaultCancelEvery. Smaller values tighten
	// cancellation latency at a (tiny) per-event cost.
	CancelEvery int
}

// DefaultCancelEvery is the event interval between cancellation polls
// when Context.CancelEvery is unset: frequent enough that cancellation
// lands within microseconds of wall-clock, sparse enough that the hot
// loop's cost is dominated by event dispatch, not polling.
const DefaultCancelEvery = 1024

// done returns the cancellation channel the event loop polls: nil for a
// nil Context, a nil Ctx, or a Ctx that can never be cancelled
// (context.Background reports a nil Done channel), all of which keep
// the poll-free fast path.
func (c *Context) done() <-chan struct{} {
	if c == nil || c.Ctx == nil {
		return nil
	}
	return c.Ctx.Done()
}

// progress reports one completion, firing OnProgress on interval
// boundaries. Safe on a nil receiver.
func (c *Context) progress(completed int, simMs float64) {
	if c == nil || c.OnProgress == nil {
		return
	}
	every := c.ProgressEvery
	if every <= 0 {
		every = 1000
	}
	if completed%every == 0 {
		c.OnProgress(completed, simMs)
	}
}

// Options tunes a simulation run.
type Options struct {
	// Warmup excludes the first N completed requests from the reported
	// statistics, hiding cold-start transients.
	Warmup int
	// MaxRequests stops the run after this many completions (0 = run the
	// source dry).
	MaxRequests int
	// OnComplete, when non-nil, observes every completed request
	// (including warmup ones).
	OnComplete func(*core.Request)
	// Injector, when non-nil, drives deterministic fault injection through
	// the run (Run and RunClosed): transient positioning errors recovered
	// by bounded device-level retry at the §6.1.3 penalty, scheduled tip
	// failures evolving the redundancy array mid-run, and
	// ECC-reconstruction surcharges on degraded-stripe reads. The injector
	// is Reset alongside the device and scheduler. A zero-rate, event-free
	// injector reproduces the no-injector run byte for byte.
	Injector *fault.Injector
	// Probe, when non-nil, observes typed request-lifecycle events
	// (arrive, dispatch, per-phase service, retry/requeue, complete)
	// through Run, RunClosed and RunMulti. A nil Probe is zero-cost and
	// byte-identical to an unprobed run. Probes with run-scoped state
	// (PhaseCollector) are reset alongside the device and scheduler.
	Probe Probe
	// Sketch switches every percentile-bearing aggregate the run owns —
	// the PhaseCollector's PhaseStats (per-run and per-member) and
	// RunVolume's VolumeStats distributions — from the exact
	// sample-retaining backend to the bounded quantile sketch
	// (stats.Sketch): p95/p99 become estimates within the sketch's
	// documented relative-error bound (±1%) and stats memory becomes
	// O(1) in the request count, which is what makes million-request
	// runs tractable. The default (false) keeps the exact backend and
	// stays byte-identical to historical runs — the golden equivalence
	// suite pins it. Moments (mean, CV², min/max) are Welford-computed
	// either way and never change.
	Sketch bool
	// Check enables run-time self-verification: the engine attaches an
	// engine-owned InvariantProbe (composed after any declared Probe) and
	// panics at finalize on any violation — request conservation, event
	// clock monotonicity, negative phase times, breakdown reconciliation
	// drift beyond 1e-9, invalid request classes. Violations indicate a
	// simulation bug, so they follow the EventQueue convention of
	// panicking rather than returning an error; the runner converts the
	// panic into the job's Err. Probe attachment is behavior-neutral
	// (golden-equivalence discipline), so a clean checked run produces
	// byte-identical results to an unchecked one.
	Check bool
}

// Result summarizes a run. Response time (queue + service) and its
// squared coefficient of variation are the paper's two scheduler metrics
// (§4.1).
type Result struct {
	// Requests is the number of completions measured (after warmup).
	Requests int
	// Response accumulates response times in ms.
	Response stats.Welford
	// Service accumulates device service times in ms.
	Service stats.Welford
	// QueueLen accumulates the queue length seen at each dispatch.
	QueueLen stats.Welford
	// MaxQueue is the largest queue length observed.
	MaxQueue int
	// Busy is the total device busy time in ms.
	Busy float64
	// Elapsed is the completion time of the last request in ms.
	Elapsed float64
	// Cancelled reports that Context.Ctx was cancelled (deadline,
	// interrupt) before the run finished. The Result is a well-formed
	// partial: every statistic covers the completions that happened
	// before the stop, and Elapsed is the simulated time reached.
	Cancelled bool

	// The fault-injection counters below cover the entire run, warmup
	// included — they describe the run's fault activity, not the measured
	// window — and stay zero without an injector. Failed requests are
	// excluded from Requests and the Response/Service statistics, so the
	// paper's metrics keep their meaning under injection.

	// Retries is the number of transient-error retries charged.
	Retries int
	// Recovered is the number of requests that suffered at least one
	// transient error but still completed successfully.
	Recovered int
	// FailedRequests is the number of requests that exhausted every retry
	// and requeue and completed in error.
	FailedRequests int
	// DegradedReads is the number of reads that paid ECC reconstruction
	// for sectors on a degraded stripe.
	DegradedReads int
	// Requeues is the number of scheduler requeues after failed service
	// visits.
	Requeues int
	// RecoveryMs is the total added recovery time in ms (retry penalties
	// plus ECC surcharges).
	RecoveryMs float64
	// LostReads is the number of reads that addressed unrecoverable
	// sectors (a stripe past its ECC budget, or a lost volume) and
	// completed in error instead of being silently served. Each is also
	// counted in FailedRequests.
	LostReads int
	// DataLoss reports that the run ended with unrecoverable data: the
	// injector's tip array exceeded its ECC budget in some stripe, or a
	// redundant volume suffered a second concurrent member failure.
	DataLoss bool

	// ClampedRequests counts volume-level requests whose block count a
	// router had to clamp at a member or strip boundary (RunMulti):
	// ConcatRouter and StripeRouter stay total by shrinking a spilling
	// request to the boundary, and this counter makes that truncation
	// visible instead of silent. Zero for single-device and RunVolume
	// runs (the volume planner splits rather than clamps).
	ClampedRequests int

	// Phases holds the per-phase service aggregates when the run's Probe
	// contained a PhaseCollector; nil otherwise.
	Phases *PhaseStats

	// Members holds per-member-device aggregates for multi-queue runs
	// (RunMulti, RunVolume); nil for single-device runs.
	Members []MemberResult
	// Volume holds redundancy/failover aggregates for RunVolume runs;
	// nil otherwise.
	Volume *VolumeStats
}

// MemberResult aggregates one member device's share of a multi-queue
// run.
type MemberResult struct {
	// Requests counts the member-level operations the device served
	// (whole volume requests for RunMulti; member ops — including
	// rebuild traffic — for RunVolume). The entire run is covered,
	// warmup included.
	Requests int
	// Busy is the device's total busy time in ms.
	Busy float64
	// Phases holds the member's per-phase service aggregates when the
	// run's Probe contained a PhaseCollector; nil otherwise. RunMulti
	// folds one observation per measured completed request; RunVolume
	// folds one per service visit (rebuild visits included).
	Phases *PhaseStats
}

// Utilization returns the fraction of elapsed time the device was busy.
func (r *Result) Utilization() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return r.Busy / r.Elapsed
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("n=%d mean-response=%.3fms cv²=%.2f mean-service=%.3fms util=%.0f%%",
		r.Requests, r.Response.Mean(), r.Response.SquaredCV(), r.Service.Mean(), r.Utilization()*100)
}

// requeue returns r to the scheduler after a failed service visit,
// preferring the scheduler's Requeue method (retried requests keep their
// place) over a plain Add.
func requeue(s core.Scheduler, r *core.Request) {
	if rq, ok := s.(core.Requeuer); ok {
		rq.Requeue(r)
		return
	}
	s.Add(r)
}

// classify tallies a finished request's fault outcome.
func classify(r *core.Request, res *Result) {
	if r.Failed {
		res.FailedRequests++
	} else if r.Retries > 0 {
		res.Recovered++
	}
	if r.Degraded {
		res.DegradedReads++
	}
}

// Run executes an open-arrival simulation: requests arrive at their
// source-assigned times, queue in s, and are serviced by d. The device
// and scheduler (and injector, if any) are Reset before the run. Under
// fault injection a request whose service visit exhausts its retry
// budget is requeued and serviced again later; past its requeue budget
// it completes as failed, excluded from the response statistics but
// counted in Result.FailedRequests.
func Run(ctx *Context, d core.Device, s core.Scheduler, src workload.Source, opts Options) Result {
	d.Reset()
	s.Reset()
	e := newEngine(ctx, opts)
	e.runOpen(d, s, src)
	e.loop()
	e.finalize()
	return e.res
}

// RunClosed executes a closed simulation: each request begins the
// moment the previous one completes (no queueing) — the regime of the
// data-placement experiments (§5.3), which compare average service
// times. When src implements workload.Thinker (workload.ThinkTime),
// each request additionally waits out a per-request think-time draw
// before issuing, modeling a multiprogrammed closed loop; plain sources
// keep the back-to-back behavior.
func RunClosed(ctx *Context, d core.Device, src workload.Source, opts Options) Result {
	d.Reset()
	e := newEngine(ctx, opts)
	e.runClosed(d, src)
	e.loop()
	e.finalize()
	return e.res
}

// ─── Generic event queue ───────────────────────────────────────────────
//
// EventQueue is the substrate under engine.go's discrete-event core (and
// other simulations in this repository, such as the power-management
// policies): a minimal deterministic time-ordered event list with stable
// FIFO ordering for simultaneous events.

// Event is a timestamped callback.
type Event struct {
	Time float64
	Fn   func()

	seq int // insertion order, for stable ordering of ties
}

// EventQueue dispatches events in time order. The zero value is ready to
// use.
//
// The heap is hand-rolled over Event values rather than container/heap
// over pointers: Schedule is the engine's per-request hot path, and the
// value layout costs zero allocations per event (the backing array grows
// amortized and its capacity is reused for the rest of the run) where
// the interface-based heap paid one *Event allocation plus interface
// boxing per call.
type EventQueue struct {
	h   []Event
	seq int
	now float64
}

// Now returns the time of the most recently dispatched event.
func (q *EventQueue) Now() float64 { return q.now }

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// less orders events by time, then by insertion order for stable FIFO
// ties — the same comparator the simulator has always used.
func (q *EventQueue) less(i, j int) bool {
	if q.h[i].Time != q.h[j].Time {
		return q.h[i].Time < q.h[j].Time
	}
	return q.h[i].seq < q.h[j].seq
}

// Schedule enqueues fn to run at time t. Scheduling in the past (before
// the last dispatched event) panics: it indicates a simulation bug.
func (q *EventQueue) Schedule(t float64, fn func()) {
	if t < q.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before current time %g", t, q.now))
	}
	q.seq++
	q.h = append(q.h, Event{Time: t, Fn: fn, seq: q.seq})
	// Sift up.
	for i := len(q.h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// Step dispatches the earliest event; it reports whether one was run.
func (q *EventQueue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	top := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = Event{} // release the callback for GC
	q.h = q.h[:n]
	// Sift down.
	for i := 0; ; {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q.h[i], q.h[child] = q.h[child], q.h[i]
		i = child
	}
	q.now = top.Time
	top.Fn()
	return true
}

// RunUntil dispatches events until the queue is empty or the next event
// is after t.
func (q *EventQueue) RunUntil(t float64) {
	for len(q.h) > 0 && q.h[0].Time <= t {
		q.Step()
	}
	if q.now < t {
		q.now = t
	}
}
