// Package core defines the abstractions shared by every layer of the
// simulator: storage requests, position-aware device models, request
// schedulers, and block-remapping layouts. Device models (internal/mems,
// internal/disk), schedulers (internal/sched), layouts (internal/layout)
// and the simulation engine (internal/sim) all meet at these interfaces.
//
// Times are float64 milliseconds of simulated time; logical block numbers
// (LBNs) address fixed-size sectors.
package core

import "fmt"

// Op distinguishes reads from writes.
type Op int

const (
	Read Op = iota
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Request is one storage request. The simulator fills in the bookkeeping
// fields (Start, Finish) as the request flows through the queue.
type Request struct {
	// Arrival is the simulated time (ms) the request entered the system.
	Arrival float64
	// Op is the request direction.
	Op Op
	// LBN is the first logical block addressed.
	LBN int64
	// Blocks is the number of consecutive logical blocks addressed.
	Blocks int
	// Class tags the request's role (foreground, degraded-read, rebuild)
	// for class-aware scheduling and per-class accounting. The zero value
	// is ClassForeground, so untagged requests behave exactly as before.
	Class Class

	// Start is the time service began (set by the simulator).
	Start float64
	// Finish is the time service completed (set by the simulator).
	Finish float64

	// The remaining fields are fault-injection accounting, filled by the
	// simulator only when a run carries an injector; without one they stay
	// zero and the request behaves exactly as before.

	// Retries counts transient positioning errors recovered by device-level
	// retry (§6.1.3), each charged to the request's service time.
	Retries int
	// Requeues counts the times the request was returned to the scheduler
	// queue after a service visit exhausted its device-level retry budget.
	Requeues int
	// RecoveryMs is the total added recovery time in ms: retry penalties
	// plus any ECC-reconstruction surcharge for degraded-stripe reads.
	RecoveryMs float64
	// Degraded marks a read that touched a degraded stripe (a failed,
	// unremapped tip) and paid ECC reconstruction.
	Degraded bool
	// Failed marks a request that exhausted every retry and requeue and
	// completed in error.
	Failed bool

	// Phases accumulates the per-phase service breakdown across the
	// request's service visits (device time only; queue wait is not a
	// phase). The simulator fills it only when the run carries a
	// sim.Probe; without one it stays zero and the request is untouched.
	Phases Breakdown
}

// ResponseTime returns queue time plus service time, the paper's primary
// performance metric.
func (r *Request) ResponseTime() float64 { return r.Finish - r.Arrival }

// ServiceTime returns the time the device spent on the request.
func (r *Request) ServiceTime() float64 { return r.Finish - r.Start }

// Bytes returns the request's size in bytes given the device sector size.
func (r *Request) Bytes(sectorSize int) int64 {
	return int64(r.Blocks) * int64(sectorSize)
}

// Device is a mechanically-detailed storage device model. Implementations
// are stateful: Access advances the device's mechanical position (and, for
// disks, consumes rotational time), so the service time of a request
// depends on the requests that preceded it.
type Device interface {
	// Name identifies the model in reports (e.g. "MEMS G1", "Atlas10K").
	Name() string

	// Capacity returns the number of addressable logical blocks.
	Capacity() int64

	// SectorSize returns the logical block size in bytes.
	SectorSize() int

	// Access services req beginning at simulated time now and returns
	// the service time in milliseconds, advancing the device state.
	Access(req *Request, now float64) float64

	// EstimateAccess returns exactly what Access would return for req at
	// time now, without changing device state. Shortest-positioning-time
	// -first scheduling is built on this.
	EstimateAccess(req *Request, now float64) float64

	// Reset restores the initial mechanical state.
	Reset()
}

// Scheduler orders pending requests. Implementations are not safe for
// concurrent use; the discrete-event simulator is single-threaded.
type Scheduler interface {
	// Name identifies the algorithm in reports (e.g. "SPTF").
	Name() string

	// Add enqueues a pending request.
	Add(r *Request)

	// Next removes and returns the request to service next, given the
	// device whose state determines positioning costs and the current
	// simulated time. It returns nil when no requests are pending.
	Next(d Device, now float64) *Request

	// Len reports the number of pending requests.
	Len() int

	// Reset discards all pending requests and any algorithm state.
	Reset()
}

// RecoveryModel is implemented by device models that can price the
// recovery cost of a transient positioning error (§6.1.3). Disks pay a
// short re-seek plus rotational re-miss; MEMS devices pay only
// turnarounds plus a short repositioning seek, because the sled's motion
// is fully controlled (§2.4.8). The fault-injection layer charges this
// penalty once per retried attempt.
type RecoveryModel interface {
	// ErrorPenalty returns the recovery cost in ms of one transient
	// positioning error for req at simulated time now. u ∈ [0,1) is the
	// injector's uniform draw selecting where in the recovery envelope the
	// retry lands (for disks, the rotational fraction; for MEMS, the
	// turnaround count).
	ErrorPenalty(req *Request, now, u float64) float64
}

// Requeuer is optionally implemented by schedulers that distinguish
// requeued (retried) requests from fresh arrivals. The simulator prefers
// Requeue over Add when returning a request whose service visit failed;
// schedulers without the method treat retries like new arrivals.
type Requeuer interface {
	Requeue(r *Request)
}

// DeviceFactory constructs a fresh, unshared Device. Device models are
// stateful and not safe for concurrent use, so the parallel experiment
// runner builds one instance per job rather than sharing a reset device
// between runs.
type DeviceFactory func() Device

// SchedulerFactory constructs a fresh, unshared Scheduler, for the same
// reason as DeviceFactory: schedulers carry queue state and are not safe
// for concurrent use.
type SchedulerFactory func() Scheduler

// Layout remaps logical blocks before they reach the device, implementing
// the data-placement schemes of §5 of the paper. Map must be a total
// function on [0, capacity); layouts that are bijections preserve
// capacity, and tests enforce this for all shipped layouts.
type Layout interface {
	// Name identifies the layout in reports (e.g. "organ-pipe").
	Name() string

	// Map translates a file-system-level block number to a device LBN.
	Map(lbn int64) int64
}

// IdentityLayout is the trivial pass-through layout ("simple" in the
// paper's Fig. 11).
type IdentityLayout struct{}

// Name implements Layout.
func (IdentityLayout) Name() string { return "simple" }

// Map implements Layout.
func (IdentityLayout) Map(lbn int64) int64 { return lbn }
