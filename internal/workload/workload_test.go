package workload

import (
	"math"
	"testing"

	"memsim/internal/core"
	"memsim/internal/layout"
	"memsim/internal/mems"
)

func TestRandomValidation(t *testing.T) {
	base := RandomConfig{
		Rate: 100, ReadFraction: 0.67, MeanBytes: 4096,
		SectorSize: 512, Capacity: 1 << 20, Count: 10, Seed: 1,
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*RandomConfig){
		func(c *RandomConfig) { c.Rate = 0 },
		func(c *RandomConfig) { c.ReadFraction = -0.1 },
		func(c *RandomConfig) { c.ReadFraction = 1.1 },
		func(c *RandomConfig) { c.MeanBytes = 0 },
		func(c *RandomConfig) { c.SectorSize = 0 },
		func(c *RandomConfig) { c.Capacity = 0 },
		func(c *RandomConfig) { c.Count = 0 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewRandom should panic on invalid config")
			}
		}()
		cfg := base
		cfg.Rate = -1
		NewRandom(cfg)
	}()
}

func TestRandomStatisticalProperties(t *testing.T) {
	const n = 50000
	w := DefaultRandom(200, 512, 1<<22, n, 42)
	reads := 0
	var sumBytes, lastArrival float64
	var sumGap float64
	prev := 0.0
	minLBN, maxLBN := int64(1<<62), int64(0)
	for i := 0; i < n; i++ {
		r := w.Next()
		if r == nil {
			t.Fatalf("stream ended early at %d", i)
		}
		if r.Arrival < prev {
			t.Fatal("arrival times must be non-decreasing")
		}
		sumGap += r.Arrival - prev
		prev = r.Arrival
		lastArrival = r.Arrival
		if r.Op == core.Read {
			reads++
		}
		sumBytes += float64(r.Blocks) * 512
		if r.LBN < minLBN {
			minLBN = r.LBN
		}
		if r.LBN > maxLBN {
			maxLBN = r.LBN
		}
		if r.Blocks < 1 {
			t.Fatal("requests must span at least one sector")
		}
		if r.LBN < 0 || r.LBN+int64(r.Blocks) > 1<<22 {
			t.Fatalf("request outside capacity: lbn=%d blocks=%d", r.LBN, r.Blocks)
		}
	}
	if w.Next() != nil {
		t.Error("stream should be exhausted")
	}
	readFrac := float64(reads) / n
	if math.Abs(readFrac-0.67) > 0.01 {
		t.Errorf("read fraction = %.3f, want ≈ 0.67", readFrac)
	}
	meanBytes := sumBytes / n
	// Rounding up to sectors biases the mean up by ~half a sector.
	if meanBytes < 4000 || meanBytes > 4700 {
		t.Errorf("mean request size = %.0f B, want ≈ 4096–4400", meanBytes)
	}
	meanGap := sumGap / n
	if math.Abs(meanGap-5.0) > 0.15 { // 200 req/s → 5 ms
		t.Errorf("mean interarrival = %.3f ms, want ≈ 5", meanGap)
	}
	if lastArrival <= 0 {
		t.Error("arrivals never advanced")
	}
	// Uniform placement should cover most of the LBN space.
	if minLBN > 1<<18 || maxLBN < (1<<22)-(1<<18) {
		t.Errorf("LBN coverage [%d, %d] too narrow", minLBN, maxLBN)
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := DefaultRandom(500, 512, 1<<20, 100, 7)
	b := DefaultRandom(500, 512, 1<<20, 100, 7)
	for i := 0; i < 100; i++ {
		ra, rb := a.Next(), b.Next()
		if ra.Arrival != rb.Arrival || ra.LBN != rb.LBN || ra.Blocks != rb.Blocks || ra.Op != rb.Op {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, ra, rb)
		}
	}
	c := DefaultRandom(500, 512, 1<<20, 100, 8)
	diff := false
	a = DefaultRandom(500, 512, 1<<20, 100, 7)
	for i := 0; i < 100; i++ {
		if a.Next().LBN != c.Next().LBN {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandomSizeCap(t *testing.T) {
	cfg := RandomConfig{
		Rate: 100, ReadFraction: 0.5, MeanBytes: 4096, MaxBytes: 8192,
		SectorSize: 512, Capacity: 1 << 20, Count: 20000, Seed: 3,
	}
	w := NewRandom(cfg)
	for r := w.Next(); r != nil; r = w.Next() {
		if r.Blocks > 8192/512+1 {
			t.Fatalf("request of %d blocks exceeds cap", r.Blocks)
		}
	}
}

func TestBipartiteMix(t *testing.T) {
	g, err := mems.NewGeometry(mems.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := NewBipartite(DefaultBipartite(1), layout.NewMEMSSimple(g))
	small, large := 0, 0
	for r := w.Next(); r != nil; r = w.Next() {
		switch r.Blocks {
		case 8:
			small++
		case 800:
			large++
		default:
			t.Fatalf("unexpected request size %d blocks", r.Blocks)
		}
		if r.Op != core.Read {
			t.Fatal("bipartite workload is read-only")
		}
		if r.LBN < 0 || r.LBN+int64(r.Blocks) > g.TotalSectors {
			t.Fatalf("request outside device: %d+%d", r.LBN, r.Blocks)
		}
	}
	total := small + large
	if total != 10000 {
		t.Fatalf("count = %d, want 10000", total)
	}
	frac := float64(small) / float64(total)
	if math.Abs(frac-0.89) > 0.02 {
		t.Errorf("small fraction = %.3f, want ≈ 0.89", frac)
	}
}

func TestBipartitePanicsOnBadConfig(t *testing.T) {
	g, _ := mems.NewGeometry(mems.DefaultConfig())
	cfg := DefaultBipartite(1)
	cfg.Count = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBipartite(cfg, layout.NewMEMSSimple(g))
}

func TestSliceAndFromSlice(t *testing.T) {
	w := DefaultRandom(100, 512, 1<<20, 50, 9)
	reqs := Slice(w)
	if len(reqs) != 50 {
		t.Fatalf("Slice returned %d requests, want 50", len(reqs))
	}
	s := NewFromSlice(reqs)
	for i := 0; i < 50; i++ {
		if got := s.Next(); got != reqs[i] {
			t.Fatalf("FromSlice out of order at %d", i)
		}
	}
	if s.Next() != nil {
		t.Error("FromSlice should be exhausted")
	}
}

func TestThinkTimePassthrough(t *testing.T) {
	// The wrapper must not disturb the wrapped stream: same requests, in
	// order, regardless of the think distribution.
	base := Slice(DefaultRandom(100, 512, 1<<20, 30, 4))
	wrapped := ThinkTime(NewFromSlice(base), ExpThink(10), 7)
	for i := 0; i < len(base); i++ {
		r := wrapped.Next()
		if r != base[i] {
			t.Fatalf("request %d altered by ThinkTime wrapper", i)
		}
		if wrapped.ThinkMs() < 0 {
			t.Fatalf("negative think time %g", wrapped.ThinkMs())
		}
	}
	if wrapped.Next() != nil {
		t.Error("wrapper should be exhausted with its source")
	}
}

func TestThinkTimeDraws(t *testing.T) {
	// Exponential draws with mean 10 ms: the sample mean over 2000 draws
	// lands near 10, and the same seed reproduces the same sequence.
	mk := func() *ThinkSource {
		return ThinkTime(NewFromSlice(Slice(DefaultRandom(100, 512, 1<<20, 2000, 4))), ExpThink(10), 9)
	}
	a, b := mk(), mk()
	sum := 0.0
	for r := a.Next(); r != nil; r = a.Next() {
		b.Next()
		if a.ThinkMs() != b.ThinkMs() {
			t.Fatal("same-seed think draws diverged")
		}
		sum += a.ThinkMs()
	}
	if mean := sum / 2000; mean < 8 || mean > 12 {
		t.Errorf("think mean = %g, want ~10", mean)
	}

	// A nil distribution and a non-positive mean both draw zero.
	z := ThinkTime(NewFromSlice(Slice(DefaultRandom(100, 512, 1<<20, 5, 4))), nil, 1)
	for r := z.Next(); r != nil; r = z.Next() {
		if z.ThinkMs() != 0 {
			t.Errorf("nil dist drew %g", z.ThinkMs())
		}
	}
	if d := ExpThink(0); d(nil) != 0 {
		t.Error("ExpThink(0) should draw zero without touching rng")
	}
}
