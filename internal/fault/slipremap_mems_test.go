// External test package: mems now imports fault (for the §6.1.3 penalty
// model behind core.RecoveryModel), so fault's in-package tests cannot
// import mems back without a cycle. The MEMS-backed slip-remap test
// lives here instead.
package fault_test

import (
	"testing"

	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/mems"
)

func TestSlipRemapSlowsSequentialScanOnMEMS(t *testing.T) {
	// §6.1.1: slipped sectors break sequentiality; the same scan with no
	// defects must be faster.
	clean := mems.MustDevice(mems.DefaultConfig())
	dirty := fault.NewSlipRemap(mems.MustDevice(mems.DefaultConfig()))
	for i := int64(0); i < 20; i++ {
		dirty.Remap(i*500+123, clean.Capacity()-1-i)
	}
	scan := func(d core.Device) float64 {
		d.Reset()
		now := 0.0
		for lbn := int64(0); lbn < 10000; lbn += 500 {
			now += d.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: 500}, now)
		}
		return now
	}
	tClean := scan(clean)
	tDirty := scan(dirty)
	if tDirty <= tClean {
		t.Errorf("slipped scan %.2f ms should be slower than clean %.2f ms", tDirty, tClean)
	}
}
