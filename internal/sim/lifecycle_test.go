package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/sched"
	"memsim/internal/workload"
)

func TestRunPreCancelledContext(t *testing.T) {
	// A context cancelled before the run starts (an expired deadline, a
	// batch-wide interrupt) must stop the engine before it dispatches a
	// single event.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := &fixedDevice{svc: 2}
	src := workload.NewFromSlice(mkReqs([]float64{0, 1, 2}))
	res := Run(&Context{Ctx: cctx}, d, sched.NewFCFS(), src, Options{})
	if !res.Cancelled {
		t.Fatal("pre-cancelled run not marked Cancelled")
	}
	if res.Requests != 0 || res.FailedRequests != 0 {
		t.Errorf("pre-cancelled run completed %d/%d requests, want 0",
			res.Requests, res.FailedRequests)
	}
	if res.Elapsed != 0 {
		t.Errorf("pre-cancelled run advanced the clock to %g", res.Elapsed)
	}
}

func TestRunClosedPreCancelledContext(t *testing.T) {
	// The closed-loop issue chain honours the same pre-dispatch check.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := &fixedDevice{svc: 1}
	src := workload.NewFromSlice(mkReqs(make([]float64, 10)))
	res := RunClosed(&Context{Ctx: cctx}, d, src, Options{})
	if !res.Cancelled || res.Requests != 0 {
		t.Fatalf("closed pre-cancelled: Cancelled=%v requests=%d", res.Cancelled, res.Requests)
	}
}

func TestRunCancelMidRun(t *testing.T) {
	// Cancelling from a probe mid-run (the tightest possible poll
	// interval) yields a well-formed partial result: some but not all
	// requests measured, the clock where it stopped, Cancelled set.
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := &fixedDevice{svc: 1}
	const total = 100
	completes := 0
	probe := probeFunc(func(ev ProbeEvent) {
		if ev.Kind == EventComplete {
			if completes++; completes == 5 {
				cancel()
			}
		}
	})
	src := workload.NewFromSlice(mkReqs(make([]float64, total)))
	res := Run(&Context{Ctx: cctx, CancelEvery: 1}, d, sched.NewFCFS(), src,
		Options{Probe: probe})
	if !res.Cancelled {
		t.Fatal("cancelled run not marked Cancelled")
	}
	if res.Requests < 5 || res.Requests >= total {
		t.Errorf("partial result measured %d requests, want in [5,%d)", res.Requests, total)
	}
	if res.Elapsed <= 0 {
		t.Errorf("partial result elapsed = %g", res.Elapsed)
	}
	if res.Response.N() != int64(res.Requests) {
		t.Errorf("response samples %d != requests %d", res.Response.N(), res.Requests)
	}
}

func TestRunBackgroundContextByteIdentical(t *testing.T) {
	// context.Background has a nil Done channel, so the cancellation
	// fast path must leave the event loop untouched: results are
	// identical to a nil-Context run, poll counters and all.
	mk := func(ctx *Context) Result {
		d := &fixedDevice{svc: 2}
		src := workload.NewFromSlice(mkReqs([]float64{0, 0.5, 1, 7, 9}))
		return Run(ctx, d, sched.NewFCFS(), src, Options{Warmup: 1})
	}
	plain := mk(nil)
	bg := mk(&Context{Ctx: context.Background()})
	if !reflect.DeepEqual(plain, bg) {
		t.Errorf("background-context run diverged:\nnil ctx: %+v\nbackground: %+v", plain, bg)
	}
	if bg.Cancelled {
		t.Error("background-context run marked Cancelled")
	}
}

func TestCheckedRunMatchesUnchecked(t *testing.T) {
	// Options.Check must be observation-only: a checked run's Result is
	// identical to the unchecked run's, failed requests included.
	mk := func(check bool) Result {
		devs, scheds := multiFixtures(2, 1)
		src := workload.NewFromSlice(mkReqs([]float64{0, 1, 2, 3, 4, 5}))
		return mustMulti(t, nil, devs, scheds, ConcatRouter(1<<29), src,
			Options{Injector: alwaysFail(t), Check: check})
	}
	plain := mk(false)
	checked := mk(true)
	if !reflect.DeepEqual(plain, checked) {
		t.Errorf("checked run diverged:\nplain:   %+v\nchecked: %+v", plain, checked)
	}
}

// badBreakdownDevice reports a service breakdown whose phases do not
// sum to the service time — the accounting leak the invariant probe
// exists to catch.
type badBreakdownDevice struct {
	fixedDevice
}

func (b *badBreakdownDevice) LastBreakdown() (core.Breakdown, bool) {
	return core.Breakdown{Seek: 5, ServiceMs: b.svc}, true
}

func TestCheckPanicsOnBreakdownLeak(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("checked run over a non-reconciling device did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "invariant violated") {
			t.Fatalf("panic = %v, want an invariant-violation message", r)
		}
	}()
	d := &badBreakdownDevice{fixedDevice{svc: 2}}
	src := workload.NewFromSlice(mkReqs([]float64{0, 10}))
	Run(nil, d, sched.NewFCFS(), src, Options{Check: true})
}

func TestCheckCleanOverRealRegimes(t *testing.T) {
	// A checked run over each healthy regime (single device, striped
	// multi-device with transient faults, volume with failover and
	// rebuild) must finish without a panic: the shipped simulator
	// satisfies its own invariants.
	t.Run("single", func(t *testing.T) {
		d := &fixedDevice{svc: 1}
		src := workload.NewFromSlice(mkReqs(make([]float64, 50)))
		res := Run(nil, d, sched.NewFCFS(), src, Options{Check: true, Warmup: 5})
		if res.Requests != 45 {
			t.Errorf("requests = %d, want 45", res.Requests)
		}
	})
	t.Run("multi-faults", func(t *testing.T) {
		devs, scheds := multiFixtures(2, 1)
		cfg := fault.InjectorConfig{TransientRate: 0.3, MaxRetries: 2, MaxRequeues: 1, Seed: 7}
		src := workload.NewFromSlice(mkReqs(make([]float64, 40)))
		mustMulti(t, nil, devs, scheds, StripeRouter(8, 2), src,
			Options{Check: true, Injector: mustInjector(t, cfg)})
	})
	t.Run("volume-rebuild", func(t *testing.T) {
		spec := volFixtures(t, mirrorVolCfg(), 1)
		spec.RebuildChunk = 16
		arr := make([]float64, 60)
		lbns := make([]int64, 60)
		for i := range arr {
			arr[i] = float64(i)
			lbns[i] = int64(i) % 64
		}
		src := workload.NewFromSlice(volReqs(arr, core.Read, lbns))
		res, err := RunVolume(nil, spec, src, Options{
			Check:    true,
			Injector: devEvents(t, fault.DeviceEvent{AtMs: 10, Dev: 0}),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Volume.RebuildsDone != 1 {
			t.Errorf("rebuilds done = %d, want 1", res.Volume.RebuildsDone)
		}
	})
}

func TestRunVolumeCancelMidRebuild(t *testing.T) {
	// Cancelling a volume run while the rebuild is in flight must return
	// a well-formed partial Result: no hung dead-queue drain, the
	// rebuild left incomplete rather than phantom-finished, and every
	// statistic non-negative.
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := volFixtures(t, mirrorVolCfg(), 1)
	spec.RebuildChunk = 16
	probe := probeFunc(func(ev ProbeEvent) {
		if ev.Kind == EventRebuildStart {
			cancel()
		}
	})
	arr := make([]float64, 60)
	lbns := make([]int64, 60)
	for i := range arr {
		arr[i] = float64(i)
		lbns[i] = int64(i) % 64
	}
	src := workload.NewFromSlice(volReqs(arr, core.Read, lbns))
	res, err := RunVolume(&Context{Ctx: cctx, CancelEvery: 1}, spec, src,
		Options{Probe: probe, Injector: devEvents(t, fault.DeviceEvent{AtMs: 10, Dev: 0})})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Fatal("mid-rebuild cancellation not marked Cancelled")
	}
	vs := res.Volume
	if vs == nil {
		t.Fatal("cancelled volume run lost its VolumeStats")
	}
	if vs.DeviceFailures != 1 || vs.RebuildsStarted != 1 {
		t.Errorf("failover counters: failures=%d started=%d, want 1/1",
			vs.DeviceFailures, vs.RebuildsStarted)
	}
	if vs.RebuildsDone != 0 {
		t.Errorf("cancelled rebuild reported done (%d)", vs.RebuildsDone)
	}
	if res.Requests+res.FailedRequests >= 60 {
		t.Errorf("cancelled run completed all %d arrivals", res.Requests+res.FailedRequests)
	}
	for name, v := range map[string]float64{
		"Elapsed":     res.Elapsed,
		"RebuildMs":   vs.RebuildMs,
		"DegradedMs":  vs.DegradedMs,
		"RebuildBusy": vs.RebuildBusy,
	} {
		if v < 0 {
			t.Errorf("%s = %g, negative after cancellation", name, v)
		}
	}
	if res.Elapsed < 10 {
		t.Errorf("elapsed %g ms precedes the 10 ms failure that triggered the rebuild", res.Elapsed)
	}
}

func TestRunVolumeDeadlineExpiry(t *testing.T) {
	// An already-expired deadline behaves exactly like a cancelled
	// context at the volume entry point: immediate well-formed stop.
	cctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-cctx.Done() // the zero timeout has fired
	spec := volFixtures(t, parityVolCfg(), 1)
	arr := []float64{0, 1, 2, 3}
	src := workload.NewFromSlice(volReqs(arr, core.Read, []int64{0, 8, 16, 24}))
	res, err := RunVolume(&Context{Ctx: cctx}, spec, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled || res.Requests != 0 {
		t.Errorf("expired deadline: Cancelled=%v requests=%d", res.Cancelled, res.Requests)
	}
}
