// rebuildpolicy.go is the rebuild-pacing plug point of the volume
// regime. RunVolume throttles its background rebuild by idling between
// chunk scans; how long to idle is a policy decision with a real
// trade-off — rebuild aggressively and the vulnerability window (MTTR)
// shrinks while foreground latency suffers, rebuild gently and the
// volume stays exposed longer. The engine asks the configured
// RebuildPolicy for a duty-cycle fraction after every completed chunk
// and derives the idle gap from it, so policies stay pure pacing
// decisions with no event-loop knowledge.
package sim

// RebuildPolicy paces a volume's online rebuild. After each completed
// chunk scan the engine calls Pace with the current foreground pressure
// and idles the rebuilder for chunkTime·(1−pace)/pace before the next
// chunk, so pace is the fraction of the rebuilder's timeline spent
// doing rebuild I/O (1 rebuilds flat out).
//
// Implementations must be deterministic — pace may depend only on the
// arguments and state accumulated from previous Pace calls, never on
// host time or private randomness — or run reproducibility breaks.
// A returned pace outside (0,1] is clamped (non-positive values and
// NaN to MinRebuildPace, values above 1 to 1) rather than trusted.
type RebuildPolicy interface {
	// Reset clears run-scoped state; RunVolume calls it alongside the
	// device and scheduler resets, so one policy value can be reused
	// across sequential runs.
	Reset()
	// Pace returns the duty-cycle fraction in (0,1] for the next
	// inter-chunk gap. queue is the foreground queue depth at chunk
	// completion, summed over every member scheduler (rebuild ops are
	// never queued at that instant, so the sum is pure foreground
	// backlog).
	Pace(queue int) float64
	// Name identifies the policy in artifacts and docs.
	Name() string
}

// MinRebuildPace floors clamped policy paces so a buggy policy slows
// the rebuild at most 100× rather than stalling it forever.
const MinRebuildPace = 0.01

// clampPace enforces the (0,1] contract on a policy's return value.
// The !(p > 0) form also catches NaN. Tiny-but-positive paces pass
// through untouched: they are legal, just slow.
func clampPace(p float64) float64 {
	if !(p > 0) {
		return MinRebuildPace
	}
	if p > 1 {
		return 1
	}
	return p
}

// FixedRebuild is the default policy: a constant duty cycle, exactly
// the historical VolumeSpec.RebuildFrac throttle (the golden
// equivalence suite pins the byte-identity).
type FixedRebuild struct {
	// Frac is the constant duty cycle in (0,1].
	Frac float64
}

// Reset implements RebuildPolicy (no run-scoped state).
func (f FixedRebuild) Reset() {}

// Pace implements RebuildPolicy: the pace never varies.
func (f FixedRebuild) Pace(int) float64 { return f.Frac }

// Name implements RebuildPolicy.
func (f FixedRebuild) Name() string { return "fixed" }

// AdaptiveRebuild paces the rebuild off live foreground pressure: it
// sprints at MaxFrac while the member queues are idle and hyperbolically
// backs off as queue depth grows, flooring at MinFrac. The effect is an
// automatic trade: during foreground bursts the rebuild yields (bounding
// degraded-mode p95), and the moment the queues drain it sprints
// (bounding MTTR) — where any fixed fraction must pick one side and pay
// the other.
type AdaptiveRebuild struct {
	// MaxFrac is the sprint duty cycle applied at empty queues; zero
	// selects 1 (flat out).
	MaxFrac float64
	// MinFrac floors the duty cycle under deep queues; zero selects 0.1.
	MinFrac float64
	// Backoff scales how fast the pace decays per queued foreground
	// request: pace = MaxFrac / (1 + Backoff·queue). Zero selects 1.
	Backoff float64
}

// Reset implements RebuildPolicy (the policy is memoryless; every pace
// is a pure function of the instantaneous queue depth).
func (a AdaptiveRebuild) Reset() {}

// Pace implements RebuildPolicy.
func (a AdaptiveRebuild) Pace(queue int) float64 {
	max, min, back := a.MaxFrac, a.MinFrac, a.Backoff
	if max <= 0 {
		max = 1
	}
	if min <= 0 {
		min = 0.1
	}
	if back <= 0 {
		back = 1
	}
	pace := max / (1 + back*float64(queue))
	if pace < min {
		return min
	}
	return pace
}

// Name implements RebuildPolicy.
func (a AdaptiveRebuild) Name() string { return "adaptive" }
