package experiments

import (
	"fmt"

	"memsim/internal/core"
	"memsim/internal/layout"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

func init() { register("fig11", Fig11) }

// organPipeSmallFrac sizes the organ-pipe small core. The §5.3 workload's
// small population is placed dead-center; 4% of capacity matches the
// columnar layout's center column so the X-locality comparison is fair.
const organPipeSmallFrac = 0.04

// Fig11 reproduces Fig. 11: the bipartite workload (89% 4 KB, 11%
// 400 KB reads) under four layouts on the default MEMS device, the
// zero-settle MEMS device, and the Atlas 10K (simple vs. organ pipe).
// Expected shape (§5.3): all placement schemes beat simple by 13–20%;
// on MEMS-no-settle the subregioned layout — the only one that optimizes
// Y as well as X — wins by a further margin, showing that the optimal
// disk layout is not optimal for MEMS-based storage.
func Fig11(p Params) []Table {
	t := Table{
		ID:      "fig11",
		Title:   "average service time by layout scheme (ms); improvement vs. simple",
		Columns: []string{"device", "layout", "service(ms)", "vs. simple"},
	}

	run := func(d core.Device, device string, placers []layout.Placer) {
		base := 0.0
		for i, pl := range placers {
			src := workload.NewBipartite(workload.DefaultBipartite(p.Seed), pl)
			res := sim.RunClosed(d, src, sim.Options{MaxRequests: p.ClosedRequests})
			mean := res.Service.Mean()
			if i == 0 {
				base = mean
			}
			t.AddRow(device, pl.Name(), ms(mean), fmt.Sprintf("%+.1f%%", (1-mean/base)*100))
		}
	}

	m1 := newMEMS(1)
	run(m1, "MEMS", []layout.Placer{
		layout.NewMEMSSimple(m1.Geometry()),
		layout.NewMEMSOrganPipe(m1.Geometry(), organPipeSmallFrac),
		layout.NewMEMSColumnar(m1.Geometry(), 25),
		layout.NewMEMSSubregioned(m1.Geometry(), 5),
	})
	m0 := newMEMS(0)
	run(m0, "MEMS-nosettle", []layout.Placer{
		layout.NewMEMSSimple(m0.Geometry()),
		layout.NewMEMSOrganPipe(m0.Geometry(), organPipeSmallFrac),
		layout.NewMEMSColumnar(m0.Geometry(), 25),
		layout.NewMEMSSubregioned(m0.Geometry(), 5),
	})
	dd := newDisk()
	run(dd, "Atlas10K", []layout.Placer{
		layout.NewDiskSimple(dd),
		layout.NewDiskOrganPipe(dd, organPipeSmallFrac),
	})
	return []Table{t}
}
