// Quickstart: build the paper's MEMS-based storage device, throw the
// random workload at it under SPTF scheduling, and print the metrics the
// paper reports (mean response time and the σ²/µ² starvation metric) —
// the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"memsim"
)

func main() {
	// The device of Table 1: 6400 tips, 1280 active, 3.456 GB, spring-
	// mounted sled with one settling time constant.
	dev, err := memsim.NewMEMSDevice(memsim.DefaultMEMSConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s — %d sectors (%.2f GB), %d B sectors\n",
		dev.Name(), dev.Capacity(),
		float64(dev.Capacity())*float64(dev.SectorSize())/1e9, dev.SectorSize())

	// One mechanical access, dissected.
	req := &memsim.Request{Op: memsim.Read, LBN: dev.Capacity() / 3, Blocks: 8}
	fmt.Printf("one cold 4 KB read: %.3f ms\n", dev.EstimateAccess(req, 0))

	// The paper's random workload (§3): Poisson arrivals, 67% reads,
	// exponential sizes with a 4 KB mean, uniform placement.
	scheduler, err := memsim.NewScheduler("SPTF")
	if err != nil {
		log.Fatal(err)
	}
	src := memsim.NewRandomWorkload(1000, dev.SectorSize(), dev.Capacity(), 20000, 42)
	res := memsim.Simulate(dev, scheduler, src, memsim.SimOptions{Warmup: 2000})

	fmt.Printf("\n1000 req/s under %s:\n", scheduler.Name())
	fmt.Printf("  mean response  %.3f ms\n", res.Response.Mean())
	fmt.Printf("  mean service   %.3f ms\n", res.Service.Mean())
	fmt.Printf("  cv² (fairness) %.2f\n", res.Response.SquaredCV())
	fmt.Printf("  utilization    %.0f%%\n", res.Utilization()*100)
}
