// Package trace provides storage-trace infrastructure: a simple portable
// text format, readers and writers, arrival-rate scaling (the paper's
// "scale factor", §4.3 footnote 2), and deterministic synthetic
// generators that stand in for the proprietary traces the paper uses —
// HP's Cello file-server trace and a TPC-C database trace.
//
// The substitution rationale is documented in DESIGN.md §5: the paper's
// findings depend on trace *structure* (burstiness, locality, read/write
// mix, concurrent near-by requests), all of which the generators
// reproduce, not on the irreproducible byte-for-byte contents.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"memsim/internal/core"
)

// Record is one trace line: a timestamped request.
type Record struct {
	// TimeMs is the arrival time in milliseconds from trace start.
	TimeMs float64
	// Op is the request direction.
	Op core.Op
	// LBN is the starting logical block.
	LBN int64
	// Blocks is the number of sectors.
	Blocks int
}

// Request converts the record to a simulator request.
func (r Record) Request() *core.Request {
	return &core.Request{Arrival: r.TimeMs, Op: r.Op, LBN: r.LBN, Blocks: r.Blocks}
}

// Trace is an ordered sequence of records.
type Trace struct {
	Name    string
	Records []Record
}

// Len reports the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Duration returns the arrival time of the last record in ms (0 if empty).
func (t *Trace) Duration() float64 {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].TimeMs
}

// Scale returns a copy of the trace with every arrival time divided by
// factor, multiplying the average arrival rate by factor — the paper's
// mechanism for producing a range of workload intensities from one trace.
// It panics if factor is not positive.
func (t *Trace) Scale(factor float64) *Trace {
	if factor <= 0 {
		panic(fmt.Sprintf("trace: scale factor must be positive, got %g", factor))
	}
	out := &Trace{Name: fmt.Sprintf("%s/x%g", t.Name, factor), Records: make([]Record, len(t.Records))}
	for i, r := range t.Records {
		r.TimeMs /= factor
		out.Records[i] = r
	}
	return out
}

// Clip returns a copy containing at most n records; experiments use it to
// bound simulation length. If n >= Len the trace itself is returned.
func (t *Trace) Clip(n int) *Trace {
	if n >= len(t.Records) {
		return t
	}
	return &Trace{Name: t.Name, Records: t.Records[:n]}
}

// Validate checks that times are non-decreasing and requests lie within
// the given capacity.
func (t *Trace) Validate(capacity int64) error {
	prev := 0.0
	for i, r := range t.Records {
		// NaN compares false against everything, so the explicit
		// finiteness check must come first or NaN times would sail
		// through the ordering test and panic the replay engine.
		if math.IsNaN(r.TimeMs) || math.IsInf(r.TimeMs, 0) {
			return fmt.Errorf("trace %s: record %d has non-finite time %v", t.Name, i, r.TimeMs)
		}
		if r.TimeMs < prev {
			return fmt.Errorf("trace %s: record %d time %g precedes %g", t.Name, i, r.TimeMs, prev)
		}
		prev = r.TimeMs
		if r.Blocks <= 0 {
			return fmt.Errorf("trace %s: record %d has %d blocks", t.Name, i, r.Blocks)
		}
		if r.LBN < 0 || r.LBN+int64(r.Blocks) > capacity {
			return fmt.Errorf("trace %s: record %d [%d,%d) outside capacity %d",
				t.Name, i, r.LBN, r.LBN+int64(r.Blocks), capacity)
		}
	}
	return nil
}

// sortByTime restores chronological order after generators merge streams.
func (t *Trace) sortByTime() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].TimeMs < t.Records[j].TimeMs
	})
}

// Stats summarizes a trace for inspection tools.
type Stats struct {
	Records      int
	Reads        int
	DurationMs   float64
	MeanRate     float64 // requests/s
	MeanBlocks   float64
	MeanInterMs  float64
	SeqFraction  float64 // fraction of requests starting where the previous ended
	UniqueRegion int64   // span between lowest and highest touched LBN
}

// Summarize computes Stats.
func (t *Trace) Summarize() Stats {
	s := Stats{Records: len(t.Records)}
	if s.Records == 0 {
		return s
	}
	lo, hi := t.Records[0].LBN, t.Records[0].LBN
	var blocks int64
	seq := 0
	for i, r := range t.Records {
		if r.Op == core.Read {
			s.Reads++
		}
		blocks += int64(r.Blocks)
		if r.LBN < lo {
			lo = r.LBN
		}
		if end := r.LBN + int64(r.Blocks); end > hi {
			hi = end
		}
		if i > 0 && r.LBN == t.Records[i-1].LBN+int64(t.Records[i-1].Blocks) {
			seq++
		}
	}
	s.DurationMs = t.Duration()
	if s.DurationMs > 0 {
		s.MeanRate = float64(s.Records) / s.DurationMs * 1000
		s.MeanInterMs = s.DurationMs / float64(s.Records)
	}
	s.MeanBlocks = float64(blocks) / float64(s.Records)
	s.SeqFraction = float64(seq) / float64(s.Records)
	s.UniqueRegion = hi - lo
	return s
}

// ─── Text format ────────────────────────────────────────────────────────
//
// One record per line: "<time-ms> <r|w> <lbn> <blocks>", '#' comments and
// blank lines ignored. The format is trivially diffable and close to
// DiskSim's ASCII trace format.

// Write serializes the trace.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace: %s (%d records)\n", t.Name, len(t.Records)); err != nil {
		return err
	}
	for _, r := range t.Records {
		op := 'r'
		if r.Op == core.Write {
			op = 'w'
		}
		if _, err := fmt.Fprintf(bw, "%.6f %c %d %d\n", r.TimeMs, op, r.LBN, r.Blocks); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace in the text format. The name is attached to the
// result for reporting.
func Read(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("trace %s:%d: want 4 fields, got %d", name, lineNo, len(f))
		}
		tm, err := strconv.ParseFloat(f[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace %s:%d: bad time %q: %v", name, lineNo, f[0], err)
		}
		// ParseFloat accepts "NaN" and "Inf", which no valid trace
		// contains and which would corrupt every downstream time
		// computation; reject them at the parse boundary.
		if math.IsNaN(tm) || math.IsInf(tm, 0) {
			return nil, fmt.Errorf("trace %s:%d: non-finite time %q", name, lineNo, f[0])
		}
		var op core.Op
		switch f[1] {
		case "r", "R":
			op = core.Read
		case "w", "W":
			op = core.Write
		default:
			return nil, fmt.Errorf("trace %s:%d: bad op %q", name, lineNo, f[1])
		}
		lbn, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace %s:%d: bad lbn %q: %v", name, lineNo, f[2], err)
		}
		blocks, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("trace %s:%d: bad blocks %q: %v", name, lineNo, f[3], err)
		}
		t.Records = append(t.Records, Record{TimeMs: tm, Op: op, LBN: lbn, Blocks: blocks})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace %s: %v", name, err)
	}
	return t, nil
}
