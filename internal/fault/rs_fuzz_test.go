package fault

import (
	"bytes"
	"testing"
)

// FuzzRS drives the Reed-Solomon codec through randomized geometries,
// payloads and erasure patterns, checking the two §6.1.2 contracts:
// encode → erase up to m shards → reconstruct must round-trip every
// shard exactly, and erasing more than m shards must return an error
// while leaving the surviving shards untouched — over-erasure may fail
// loudly, never corrupt silently.
func FuzzRS(f *testing.F) {
	f.Add(uint8(4), uint8(2), []byte("the quick brown fox jumps over the lazy dog"), uint64(0b110))
	f.Add(uint8(64), uint8(2), bytes.Repeat([]byte{0xa5, 0x00, 0xff}, 100), uint64(1<<13|1<<51))
	f.Add(uint8(1), uint8(0), []byte{7}, uint64(0))
	f.Add(uint8(30), uint8(4), []byte{}, uint64(0xffff))
	f.Fuzz(func(t *testing.T, kRaw, mRaw uint8, data []byte, mask uint64) {
		k := int(kRaw%32) + 1 // 1..32 data shards
		m := int(mRaw % 5)    // 0..4 parity shards
		rs, err := NewRS(k, m)
		if err != nil {
			t.Fatal(err)
		}
		n := k + m
		shardLen := len(data)/k + 1
		if shardLen > 64 {
			shardLen = 64
		}
		shards := make([][]byte, n)
		for i := range shards {
			shards[i] = make([]byte, shardLen)
			if i < k {
				for off := range shards[i] {
					if idx := i*shardLen + off; idx < len(data) {
						shards[i][off] = data[idx]
					}
				}
			}
		}
		if err := rs.Encode(shards); err != nil {
			t.Fatal(err)
		}
		orig := make([][]byte, n)
		for i, s := range shards {
			orig[i] = append([]byte(nil), s...)
		}

		// Erase up to m shards chosen by the fuzzed mask and zero their
		// contents; reconstruction must restore every byte.
		present := make([]bool, n)
		for i := range present {
			present[i] = true
		}
		erased := 0
		for i := 0; i < n && erased < m; i++ {
			if mask&(1<<i) != 0 {
				present[i] = false
				for off := range shards[i] {
					shards[i][off] = 0
				}
				erased++
			}
		}
		if err := rs.Reconstruct(shards, present); err != nil {
			t.Fatalf("reconstruct with %d ≤ %d erasures failed: %v", erased, m, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				t.Fatalf("k=%d m=%d erased=%d: shard %d did not round-trip", k, m, erased, i)
			}
		}

		// Over-erase: with m+1 shards gone only k−1 remain, so Reconstruct
		// must refuse — and must not have touched the survivors.
		for i := range present {
			present[i] = i > m
		}
		if err := rs.Reconstruct(shards, present); err == nil {
			t.Fatalf("k=%d m=%d: reconstruct accepted %d erasures", k, m, m+1)
		}
		for i := m + 1; i < n; i++ {
			if !bytes.Equal(shards[i], orig[i]) {
				t.Fatalf("over-erasure corrupted surviving shard %d", i)
			}
		}
	})
}
