// Package disk implements a conventional disk-drive performance model in
// the style of DiskSim's validated modules, parameterized by default to
// resemble the Quantum Atlas 10K that the paper uses as its reference
// drive (§3, [Qua99]).
//
// The model captures the mechanics that matter to the paper's
// comparisons: a distance-dependent seek curve, free-running rotation (so
// rotational latency is a function of absolute simulated time), zoned
// (banded) recording with more sectors on outer tracks, head-switch costs,
// and track/cylinder skew for sequential access.
package disk

import (
	"fmt"
	"math"

	"memsim/internal/core"
	"memsim/internal/fault"
)

// Config parameterizes the drive. Use Atlas10K for the paper's reference
// configuration.
type Config struct {
	// Cylinders and Surfaces define the physical geometry.
	Cylinders, Surfaces int
	// RPM is the spindle speed.
	RPM float64
	// Zones is the number of recording bands; sectors per track varies
	// linearly from SPTOuter (zone 0, outermost) to SPTInner.
	Zones              int
	SPTOuter, SPTInner int
	// SectorSize is the logical block size in bytes.
	SectorSize int

	// Seek curve anchors (ms): a single-cylinder seek, the seek over one
	// third of the stroke (the conventional "average"), and a full-stroke
	// seek. The curve is √distance up to a knee, linear beyond — the
	// standard shape of modern drives (Worthington et al.).
	SeekSingle, SeekAvg, SeekMax float64

	// HeadSwitch is the time to switch active surfaces (ms).
	HeadSwitch float64
	// WriteSettle is the additional settle charged on seeks for writes
	// (write seeks average ~0.5 ms longer on the Atlas 10K).
	WriteSettle float64
	// Overhead is the fixed per-request command processing time (ms).
	Overhead float64
}

// Atlas10K returns a configuration resembling the Quantum Atlas 10K
// (9.1 GB version): 10 025 RPM, 10 042 cylinders, 6 surfaces, 24 zones
// from 334 to 229 sectors per track. Streaming bandwidth spans
// 28.6–19.6 MB/s and the longest track holds 334 sectors, matching the
// figures the paper quotes (§5.2, Table 2).
func Atlas10K() Config {
	return Config{
		Cylinders:   10042,
		Surfaces:    6,
		RPM:         10025,
		Zones:       24,
		SPTOuter:    334,
		SPTInner:    229,
		SectorSize:  512,
		SeekSingle:  1.0,
		SeekAvg:     5.0,
		SeekMax:     10.5,
		HeadSwitch:  0.8,
		WriteSettle: 0.5,
		Overhead:    0.3,
	}
}

// zone describes one recording band.
type zone struct {
	firstCyl, cyls int
	spt            int
	startLBN       int64 // first LBN in the zone
	trackSkew      int   // sectors skewed per head switch
	cylSkew        int   // sectors skewed per cylinder switch
}

// Device is the disk model; it implements core.Device.
type Device struct {
	cfg    Config
	zones  []zone
	total  int64
	period float64 // ms per revolution

	// seek curve coefficients: a1 + b1·√d below knee, a2 + b2·d above.
	knee           int
	a1, b1, a2, b2 float64

	// mechanical state: rotation is implied by absolute time.
	cyl, head int

	last    core.Breakdown
	hasLast bool
}

var (
	_ core.Device            = (*Device)(nil)
	_ core.BreakdownReporter = (*Device)(nil)
)

// NewDevice validates cfg and builds the drive model.
func NewDevice(cfg Config) (*Device, error) {
	switch {
	case cfg.Cylinders <= 1 || cfg.Surfaces <= 0:
		return nil, fmt.Errorf("disk: geometry must be positive (cyl=%d surf=%d)", cfg.Cylinders, cfg.Surfaces)
	case cfg.RPM <= 0:
		return nil, fmt.Errorf("disk: RPM must be positive")
	case cfg.Zones <= 0 || cfg.Zones > cfg.Cylinders:
		return nil, fmt.Errorf("disk: zone count %d out of range", cfg.Zones)
	case cfg.SPTInner <= 0 || cfg.SPTOuter < cfg.SPTInner:
		return nil, fmt.Errorf("disk: sectors per track must satisfy 0 < inner ≤ outer")
	case cfg.SectorSize <= 0:
		return nil, fmt.Errorf("disk: sector size must be positive")
	case cfg.SeekSingle <= 0 || cfg.SeekAvg < cfg.SeekSingle || cfg.SeekMax < cfg.SeekAvg:
		return nil, fmt.Errorf("disk: seek anchors must satisfy 0 < single ≤ avg ≤ max")
	case cfg.HeadSwitch < 0 || cfg.WriteSettle < 0 || cfg.Overhead < 0:
		return nil, fmt.Errorf("disk: overheads must be non-negative")
	}
	d := &Device{cfg: cfg, period: 60000 / cfg.RPM}
	d.buildSeekCurve()
	d.buildZones()
	return d, nil
}

// MustDevice is NewDevice for known-good configurations; it panics on
// error.
func MustDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *Device) buildSeekCurve() {
	c := d.cfg
	third := float64(c.Cylinders) / 3
	full := float64(c.Cylinders - 1)
	// Linear regime through the 1/3-stroke and full-stroke anchors.
	d.b2 = (c.SeekMax - c.SeekAvg) / (full - third)
	d.a2 = c.SeekAvg - d.b2*third
	// √d regime through the single-cylinder anchor, continuous at the knee.
	d.knee = c.Cylinders / 10
	if d.knee < 2 {
		d.knee = 2
	}
	atKnee := d.a2 + d.b2*float64(d.knee)
	d.b1 = (atKnee - c.SeekSingle) / (math.Sqrt(float64(d.knee)) - 1)
	d.a1 = c.SeekSingle - d.b1
}

func (d *Device) buildZones() {
	c := d.cfg
	d.zones = make([]zone, c.Zones)
	base := c.Cylinders / c.Zones
	extra := c.Cylinders % c.Zones
	cylAt := 0
	var lbn int64
	for z := range d.zones {
		cyls := base
		if z < extra {
			cyls++
		}
		spt := c.SPTOuter
		if c.Zones > 1 {
			spt = c.SPTOuter - int(math.Round(float64(c.SPTOuter-c.SPTInner)*float64(z)/float64(c.Zones-1)))
		}
		sectorTime := d.period / float64(spt)
		zn := zone{
			firstCyl:  cylAt,
			cyls:      cyls,
			spt:       spt,
			startLBN:  lbn,
			trackSkew: int(math.Ceil(c.HeadSwitch/sectorTime)) % spt,
			cylSkew:   int(math.Ceil((c.SeekSingle+c.HeadSwitch)/sectorTime)) % spt,
		}
		d.zones[z] = zn
		cylAt += cyls
		lbn += int64(cyls) * int64(c.Surfaces) * int64(spt)
	}
	d.total = lbn
}

// Name implements core.Device.
func (d *Device) Name() string { return "Atlas10K" }

// Capacity implements core.Device.
func (d *Device) Capacity() int64 { return d.total }

// SectorSize implements core.Device.
func (d *Device) SectorSize() int { return d.cfg.SectorSize }

// Reset implements core.Device: heads park over the middle cylinder.
func (d *Device) Reset() {
	d.cyl, d.head = d.cfg.Cylinders/2, 0
	d.last, d.hasLast = core.Breakdown{}, false
}

// RotationPeriod returns the time of one revolution in ms.
func (d *Device) RotationPeriod() float64 { return d.period }

// SeekTime returns the seek time in ms for a move of dist cylinders
// (dist ≥ 0); zero distance is free.
func (d *Device) SeekTime(dist int) float64 {
	switch {
	case dist <= 0:
		return 0
	case dist < d.knee:
		return d.a1 + d.b1*math.Sqrt(float64(dist))
	default:
		return d.a2 + d.b2*float64(dist)
	}
}

// zoneOf returns the zone containing lbn.
func (d *Device) zoneOf(lbn int64) *zone {
	// Binary search over startLBN.
	lo, hi := 0, len(d.zones)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if d.zones[mid].startLBN <= lbn {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return &d.zones[lo]
}

// Locate maps an LBN to physical coordinates.
func (d *Device) Locate(lbn int64) (cyl, head, sector int) {
	if lbn < 0 || lbn >= d.total {
		panic(fmt.Sprintf("disk: LBN %d outside device (capacity %d)", lbn, d.total))
	}
	z := d.zoneOf(lbn)
	off := lbn - z.startLBN
	perCyl := int64(d.cfg.Surfaces) * int64(z.spt)
	cyl = z.firstCyl + int(off/perCyl)
	rem := off % perCyl
	head = int(rem / int64(z.spt))
	sector = int(rem % int64(z.spt))
	return cyl, head, sector
}

// angleOf returns the angular position (fraction of a revolution) at
// which logical sector s of (cyl, head) begins, accounting for track and
// cylinder skew within the zone.
func (d *Device) angleOf(z *zone, cyl, head, s int) float64 {
	skew := ((cyl-z.firstCyl)*z.cylSkew + head*z.trackSkew) % z.spt
	return float64((s+skew)%z.spt) / float64(z.spt)
}

// rotFrac returns the fraction of a revolution completed at absolute time
// now.
func (d *Device) rotFrac(now float64) float64 {
	f := math.Mod(now/d.period, 1)
	if f < 0 {
		f += 1
	}
	return f
}

// Access implements core.Device.
func (d *Device) Access(req *core.Request, now float64) float64 {
	bd, cyl, head := d.access(req, now)
	d.cyl, d.head = cyl, head
	d.last, d.hasLast = bd, true
	return bd.ServiceMs
}

// EstimateAccess implements core.Device.
func (d *Device) EstimateAccess(req *core.Request, now float64) float64 {
	bd, _, _ := d.access(req, now)
	return bd.ServiceMs
}

// LastBreakdown implements core.BreakdownReporter: the phase
// decomposition of the most recent Access.
func (d *Device) LastBreakdown() (core.Breakdown, bool) { return d.last, d.hasLast }

// Detail returns the breakdown Access would produce for req at time now,
// without changing state.
func (d *Device) Detail(req *core.Request, now float64) core.Breakdown {
	bd, _, _ := d.access(req, now)
	return bd
}

// EstimateBreakdown implements core.BreakdownEstimator.
func (d *Device) EstimateBreakdown(req *core.Request, now float64) core.Breakdown {
	bd, _, _ := d.access(req, now)
	return bd
}

// access walks the request's track segments and returns the phase
// breakdown plus the final head position. The completion time `t`
// accumulates in the model's historical operation order (rotational
// latency is a function of the running time), so ServiceMs is
// bit-identical to the pre-decomposition model; the phase fields record
// the same component values and reconcile with ServiceMs up to
// floating-point re-association.
//
// Attribution: Seek is the cylinder seek, Settle the write settle plus
// rotational latency (the "rotate" of settle/rotate), Turnaround the
// head-switch time.
func (d *Device) access(req *core.Request, now float64) (bd core.Breakdown, cyl, head int) {
	if req.Blocks <= 0 {
		panic(fmt.Sprintf("disk: request with %d blocks", req.Blocks))
	}
	if req.LBN < 0 || req.LBN+int64(req.Blocks) > d.total {
		panic(fmt.Sprintf("disk: request [%d,%d) outside device capacity %d",
			req.LBN, req.LBN+int64(req.Blocks), d.total))
	}
	bd.Overhead = d.cfg.Overhead
	t := now + d.cfg.Overhead
	cyl, head = d.cyl, d.head
	lbn := req.LBN
	remaining := req.Blocks
	for remaining > 0 {
		c, h, s := d.Locate(lbn)
		z := d.zoneOf(lbn)
		n := remaining
		if left := z.spt - s; n > left {
			n = left
		}
		// Positioning: seek dominates and includes any head switch; a
		// pure head switch costs HeadSwitch.
		switch {
		case c != cyl:
			seek := d.SeekTime(abs(c - cyl))
			t += seek
			bd.Seek += seek
			if req.Op == core.Write {
				t += d.cfg.WriteSettle
				bd.Settle += d.cfg.WriteSettle
			}
		case h != head:
			t += d.cfg.HeadSwitch
			bd.Turnaround += d.cfg.HeadSwitch
		}
		// Rotational latency until the first sector arrives.
		start := d.angleOf(z, c, h, s)
		lat := start - d.rotFrac(t)
		if lat < 0 {
			lat += 1
		}
		rot := lat * d.period
		t += rot
		bd.Settle += rot
		// Media transfer.
		xfer := float64(n) * d.period / float64(z.spt)
		t += xfer
		bd.Transfer += xfer
		bd.Segments++
		cyl, head = c, h
		lbn += int64(n)
		remaining -= n
	}
	bd.ServiceMs = t - now
	return bd, cyl, head
}

// ErrorPenalty implements core.RecoveryModel with the §6.1.3 disk
// model: recovering from a transient seek error costs a short re-seek
// (a single-cylinder move) plus the rotational delay for the target
// sector to come around again — u ∈ [0,1) selects where in the rotation
// the retry lands, so the expected penalty includes half a revolution.
// This rotational re-miss is exactly the term the MEMS device does not
// pay.
func (d *Device) ErrorPenalty(_ *core.Request, _ float64, u float64) float64 {
	if u < 0 {
		u = 0
	} else if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	pen, err := fault.DiskSeekErrorPenalty(d.SeekTime(1), d.period, u)
	if err != nil {
		// Unreachable: u was clamped into [0,1).
		panic(err)
	}
	return pen
}

// State returns the current cylinder and head (rotation is a function of
// absolute time).
func (d *Device) State() (cyl, head int) { return d.cyl, d.head }

// SetState forces the head position; experiments use it for
// position-dependent measurements.
func (d *Device) SetState(cyl, head int) {
	if cyl < 0 || cyl >= d.cfg.Cylinders || head < 0 || head >= d.cfg.Surfaces {
		panic(fmt.Sprintf("disk: SetState out of range: cyl=%d head=%d", cyl, head))
	}
	d.cyl, d.head = cyl, head
}

// Cylinders returns the cylinder count (used by layouts).
func (d *Device) Cylinders() int { return d.cfg.Cylinders }

// CylinderOf returns the cylinder holding lbn.
func (d *Device) CylinderOf(lbn int64) int {
	c, _, _ := d.Locate(lbn)
	return c
}

// ZoneSPT reports the sectors per track of the zone containing lbn; the
// layout experiments use it to reason about streaming bandwidth.
func (d *Device) ZoneSPT(lbn int64) int { return d.zoneOf(lbn).spt }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
