package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// execRun invokes the CLI entry point with captured output.
func execRun(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunExitSuccess(t *testing.T) {
	code, stdout, stderr := execRun("-quick", "-run", "table1")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "table1") {
		t.Errorf("stdout missing the artifact:\n%s", stdout)
	}
}

func TestRunExitFlagParseError(t *testing.T) {
	code, _, _ := execRun("-no-such-flag")
	if code != 2 {
		t.Fatalf("exit %d, want 2 for a flag-parse error", code)
	}
}

func TestRunExitBadFlagValue(t *testing.T) {
	code, _, stderr := execRun("-timeout", "-5s")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "-timeout") {
		t.Errorf("stderr does not name the flag:\n%s", stderr)
	}
}

func TestRunExitUnknownArtifact(t *testing.T) {
	code, _, stderr := execRun("-quick", "-run", "nosuch")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "nosuch") {
		t.Errorf("stderr does not name the artifact:\n%s", stderr)
	}
}

func TestRunExitNonzeroOnForcedJobFailure(t *testing.T) {
	// A 1 ns per-job deadline force-fails every simulating job; the exit
	// code must be nonzero and the artifact reported as failed, with no
	// table on stdout.
	code, stdout, stderr := execRun("-quick", "-requests", "300", "-run", "fig5", "-timeout", "1ns")
	if code != 1 {
		t.Fatalf("exit %d, want 1, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "artifacts failed") && !strings.Contains(stderr, "interrupted") {
		t.Errorf("stderr does not report the failure:\n%s", stderr)
	}
	if stdout != "" {
		t.Errorf("failed artifact still printed tables:\n%s", stdout)
	}
}

func TestRunPartialFailureStillPublishesIntactArtifacts(t *testing.T) {
	// With one failing and one succeeding experiment in the same batch,
	// the intact artifact publishes and the exit code stays nonzero.
	code, stdout, stderr := execRun("-quick", "-requests", "300",
		"-run", "fig5,table1", "-timeout", "1ns")
	if code != 1 {
		t.Fatalf("exit %d, want 1, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "table1") {
		t.Errorf("intact artifact not published:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 of 2 artifacts failed") {
		t.Errorf("stderr does not report the split:\n%s", stderr)
	}
}

func TestRunCheckSmoke(t *testing.T) {
	// -check over a real (small) simulating artifact: the invariant
	// probe must pass, leaving the run green.
	code, _, stderr := execRun("-quick", "-requests", "300", "-run", "fig5", "-check")
	if code != 0 {
		t.Fatalf("checked run exit %d, stderr:\n%s", code, stderr)
	}
}

func TestRunCorruptCheckpointFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mttdl.ckpt")
	if err := os.WriteFile(path, []byte("garbage{"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := execRun("-quick", "-requests", "300", "-trials", "10",
		"-run", "mttdl", "-checkpoint", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "corrupt") {
		t.Errorf("stderr does not report the corruption:\n%s", stderr)
	}
}

func TestRunCheckpointResumeAcrossInvocations(t *testing.T) {
	// Two full CLI invocations sharing a checkpoint produce identical
	// artifacts — the second resumes from (fully) saved state.
	path := filepath.Join(t.TempDir(), "mttdl.ckpt")
	code, first, stderr := execRun("-quick", "-requests", "300", "-trials", "50",
		"-run", "mttdl", "-checkpoint", path)
	if code != 0 {
		t.Fatalf("first run exit %d, stderr:\n%s", code, stderr)
	}
	code, second, stderr := execRun("-quick", "-requests", "300", "-trials", "50",
		"-run", "mttdl", "-checkpoint", path)
	if code != 0 {
		t.Fatalf("second run exit %d, stderr:\n%s", code, stderr)
	}
	if first != second {
		t.Error("resumed invocation output differs from the original")
	}
}
