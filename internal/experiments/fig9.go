package experiments

import (
	"fmt"
	"math/rand"

	"memsim/internal/core"
	"memsim/internal/mems"
	"memsim/internal/runner"
	"memsim/internal/workload"
)

func init() { register("fig9", fig9Plan) }

// subregionRequests builds closed-loop 4 KB reads whose start and end lie
// inside subregion (xBand, yBand) of an n×n grid over the sled.
func subregionRequests(g *mems.Geometry, n, xBand, yBand, count int, seed int64) []*core.Request {
	rng := rand.New(rand.NewSource(seed))
	cLo, cHi := xBand*g.Cylinders/n, (xBand+1)*g.Cylinders/n
	rLo, rHi := yBand*g.RowsPerTrack/n, (yBand+1)*g.RowsPerTrack/n
	reqs := make([]*core.Request, count)
	for i := range reqs {
		cyl := cLo + rng.Intn(cHi-cLo)
		track := rng.Intn(g.TracksPerCylinder)
		row := rLo + rng.Intn(rHi-rLo)
		reqs[i] = &core.Request{
			Op:     core.Read,
			LBN:    g.LBN(cyl, track, row, 0),
			Blocks: 8, // 4 KB spans a single row pass
		}
	}
	return reqs
}

// Fig9 reproduces Fig. 9: the sled is divided into a 5×5 grid of
// subregions and the average 4 KB service time is measured for requests
// confined to each subregion — once with the default X settle time and
// once with zero settle (the two numbers per box in the paper's figure).
// The spring restoring forces make the outer subregions 10–20% slower
// than the center (§5.1).
func Fig9(p Params) []Table { return mustRun(fig9Plan(p)) }

func fig9Plan(p Params) *Plan {
	const n = 5
	settles := []float64{1, 0}
	// The geometry is pure derived data, shared read-only across jobs;
	// each job builds its own device and request slice.
	g := newMEMS(1).Geometry()

	grid := make([][][]*runner.Job, n) // [y][x][settle variant]
	var jobs []*runner.Job
	for y := 0; y < n; y++ {
		grid[y] = make([][]*runner.Job, n)
		for x := 0; x < n; x++ {
			grid[y][x] = make([]*runner.Job, len(settles))
			seed := p.Seed + int64(y*n+x)
			for vi, settle := range settles {
				j := &runner.Job{
					Label:  fmt.Sprintf("fig9 x%d y%d settle=%g", x, y, settle),
					Seed:   seed,
					Device: memsFactory(settle),
					Source: func(core.Device) workload.Source {
						return workload.NewFromSlice(subregionRequests(g, n, x, y, p.ClosedRequests, seed))
					},
				}
				grid[y][x][vi] = j
				jobs = append(jobs, j)
			}
		}
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID:      "fig9",
				Title:   "average 4 KB service time per subregion, settle=1 / settle=0 (ms)",
				Columns: []string{"y-band \\ x-band", "x0 (edge)", "x1", "x2 (center)", "x3", "x4 (edge)"},
			}
			for y := 0; y < n; y++ {
				row := []string{fmt.Sprintf("y%d", y)}
				for x := 0; x < n; x++ {
					a := grid[y][x][0].Result()
					b := grid[y][x][1].Result()
					row = append(row, fmt.Sprintf("%.3f/%.3f", a.Service.Mean(), b.Service.Mean()))
				}
				t.AddRow(row...)
			}
			return []Table{t}
		},
	}
}
