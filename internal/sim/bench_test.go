package sim

import (
	"fmt"
	"testing"

	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/workload"
)

// benchRequests builds a deterministic random request slice against dev.
func benchRequests(dev core.Device, n int) []*core.Request {
	src := workload.DefaultRandom(1000, dev.SectorSize(), dev.Capacity(), n, 1)
	return workload.Slice(src)
}

// BenchmarkMEMSAccess times the MEMS device's Access hot path — sled
// seek, settle attribution and per-segment transfer — which every
// simulated request pays at least once.
func BenchmarkMEMSAccess(b *testing.B) {
	d := mems.MustDevice(mems.DefaultConfig())
	reqs := benchRequests(d, 4096)
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += d.Access(reqs[i%len(reqs)], now)
	}
}

// BenchmarkDiskAccess times the disk model's Access hot path: seek
// curve, rotational position and zoned transfer.
func BenchmarkDiskAccess(b *testing.B) {
	d := disk.MustDevice(disk.Atlas10K())
	reqs := benchRequests(d, 4096)
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += d.Access(reqs[i%len(reqs)], now)
	}
}

// discardProbe is the cheapest possible observer; it isolates the
// event-emission overhead from any probe-side work.
type discardProbe struct{}

func (discardProbe) Observe(ProbeEvent) {}

// benchRun drives one open-arrival run per iteration; the probe
// variants quantify the instrumentation's cost against the nil-probe
// baseline the byte-identity test guards.
func benchRun(b *testing.B, p Probe) {
	d := mems.MustDevice(mems.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := workload.DefaultRandom(1100, 512, d.Capacity(), 2000, 1)
		Run(nil, d, sched.NewSPTF(), src, Options{Warmup: 100, Probe: p})
	}
}

func BenchmarkRunNilProbe(b *testing.B)   { benchRun(b, nil) }
func BenchmarkRunDiscard(b *testing.B)    { benchRun(b, discardProbe{}) }
func BenchmarkRunPhaseStats(b *testing.B) { benchRun(b, NewPhaseCollector()) }

// BenchmarkPhaseCollector isolates the probe-side aggregation path —
// PhaseStats.add through Observe — from the simulation driving it, in
// both percentile backends. Run with -benchmem: the exact backend's
// bytes/op is dominated by retained-sample growth, the sketch's by
// nothing (its buckets saturate immediately).
func BenchmarkPhaseCollector(b *testing.B) {
	ev := ProbeEvent{Kind: EventComplete, Measured: true, Req: &core.Request{
		Phases: core.Breakdown{Seek: 0.4, Settle: 0.2, Transfer: 0.1, ServiceMs: 0.7},
	}}
	for _, mode := range []string{"exact", "sketch"} {
		b.Run(mode, func(b *testing.B) {
			c := NewPhaseCollector()
			if mode == "sketch" {
				c.UseSketch()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Observe(ev)
			}
		})
	}
}

// BenchmarkEngineMillion is the harness's end-to-end scale probe: one
// full high-volume run per iteration in each regime, sketch-backed so
// stats memory stays O(1) (run with -benchtime=1x; -short drops the
// request count tenfold, which also changes the subbench name so
// cross-scale numbers are never compared).
func BenchmarkEngineMillion(b *testing.B) {
	n := 1000000
	if testing.Short() {
		n = 100000
	}
	b.Run(fmtScale("open", n), func(b *testing.B) {
		d := mems.MustDevice(mems.DefaultConfig())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src := workload.DefaultRandom(1100, 512, d.Capacity(), n, 1)
			Run(nil, d, sched.NewSPTF(), src,
				Options{Warmup: n / 100, Probe: NewPhaseCollector(), Sketch: true})
		}
	})
	b.Run(fmtScale("closed", n), func(b *testing.B) {
		d := mems.MustDevice(mems.DefaultConfig())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src := workload.DefaultRandom(1100, 512, d.Capacity(), n, 1)
			RunClosed(nil, d, src,
				Options{Warmup: n / 100, Probe: NewPhaseCollector(), Sketch: true})
		}
	})
	b.Run(fmtScale("multi", n), func(b *testing.B) {
		const members = 4
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			devs := make([]core.Device, members)
			scheds := make([]core.Scheduler, members)
			for j := range devs {
				devs[j] = mems.MustDevice(mems.DefaultConfig())
				scheds[j] = sched.NewSPTF()
			}
			perDev := devs[0].Capacity()
			src := workload.DefaultRandom(1100, 512, perDev*members, n, 1)
			if _, err := RunMulti(nil, devs, scheds, ConcatRouter(perDev), src,
				Options{Warmup: n / 100, Probe: NewPhaseCollector(), Sketch: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func fmtScale(regime string, n int) string {
	return fmt.Sprintf("%s/n=%d", regime, n)
}
