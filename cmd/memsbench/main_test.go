package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenTraceRejectsDirectory(t *testing.T) {
	dir := t.TempDir()
	if _, err := openTrace(dir); err == nil || !strings.Contains(err.Error(), "is a directory") {
		t.Errorf("openTrace(%q) = %v, want directory error", dir, err)
	}
}

func TestOpenTraceRejectsUnwritablePath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")
	if _, err := openTrace(path); err == nil {
		t.Errorf("openTrace(%q) succeeded on a missing parent", path)
	} else if !strings.Contains(err.Error(), "-trace") {
		t.Errorf("error %q does not name the flag", err)
	}
}

func TestOpenTraceStreamsThenCommits(t *testing.T) {
	// The trace streams into a temporary file; the final path appears
	// only once commitTrace publishes it, so an interrupted run never
	// leaves a truncated trace.
	path := filepath.Join(t.TempDir(), "t.jsonl")
	f, err := openTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"event\":\"arrive\"}\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("final trace path exists before commit: %v", err)
	}
	if err := commitTrace(f, path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "{\"event\":\"arrive\"}\n" {
		t.Errorf("committed trace = %q, err = %v", got, err)
	}
	// The temporary file is gone.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("%d directory entries after commit, want 1", len(ents))
	}
}
