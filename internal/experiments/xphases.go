package experiments

import (
	"fmt"

	"memsim/internal/core"
	"memsim/internal/runner"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

func init() { register("phases", phasesPlan) }

// Phases reproduces the §4.1-style decomposition argument with the
// request-lifecycle probe: the per-phase service breakdown — seek,
// settle/rotate, turnaround, transfer, overhead — for the MEMS device
// and the Atlas 10K under all four schedulers, random workload, at a
// moderate load both devices sustain. It is the number behind the
// paper's claim that MEMS positioning is small and settle-dominated
// where disk positioning is large and rotation-dominated — which is why
// SPTF's advantage shrinks on MEMS (Fig. 6) and why organ-pipe layouts
// pay off (§5).
func Phases(p Params) []Table { return mustRun(phasesPlan(p)) }

func phasesPlan(p Params) *Plan {
	// Rates sit near half of FCFS saturation for each device (mean
	// random 4 KB service ≈ 0.8 ms MEMS, ≈ 8.4 ms disk), so queues form
	// and the schedulers differentiate without starving FCFS.
	devices := []struct {
		name string
		dev  core.DeviceFactory
		rate float64
	}{
		{"MEMS", memsFactory(1), 1000},
		{"Atlas 10K", diskFactory, 60},
	}
	names := sched.Names()

	type cell struct {
		job *runner.Job
		pc  *sim.PhaseCollector
	}
	cells := make([]cell, 0, len(devices)*len(names))
	var jobs []*runner.Job
	for _, dv := range devices {
		for _, name := range names {
			dv, name := dv, name
			pc := sim.NewPhaseCollector()
			j := &runner.Job{
				Label:     fmt.Sprintf("phases %s %s rate=%g", dv.name, name, dv.rate),
				Seed:      p.Seed,
				Device:    dv.dev,
				Scheduler: schedFactory(name),
				Source: func(d core.Device) workload.Source {
					return workload.DefaultRandom(dv.rate, d.SectorSize(), d.Capacity(), p.Requests, p.Seed)
				},
				Options: sim.Options{Warmup: p.Warmup, Probe: pc},
			}
			cells = append(cells, cell{job: j, pc: pc})
			jobs = append(jobs, j)
		}
	}

	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			a := Table{
				ID:    "phasesa",
				Title: "per-phase mean service time, random workload (ms)",
				Columns: []string{"device", "scheduler", "seek", "settle/rot", "turnarnd",
					"transfer", "overhead", "position", "service"},
			}
			b := Table{
				ID:    "phasesb",
				Title: "positioning and service tails, random workload (ms)",
				Columns: []string{"device", "scheduler", "pos p95", "pos p99",
					"svc p95", "svc p99", "pos share"},
			}
			i := 0
			for _, dv := range devices {
				for _, name := range names {
					ps := cells[i].job.Result().Phases
					if ps == nil {
						panic(fmt.Sprintf("phases: job %q ran without phase stats", cells[i].job.Label))
					}
					a.AddRow(dv.name, name,
						ms(ps.Seek.Mean()), ms(ps.Settle.Mean()), ms(ps.Turnaround.Mean()),
						ms(ps.Transfer.Mean()), ms(ps.Overhead.Mean()),
						ms(ps.Positioning.Mean()), ms(ps.Service.Mean()))
					share := 0.0
					if m := ps.Service.Mean(); m > 0 {
						share = ps.Positioning.Mean() / m
					}
					b.AddRow(dv.name, name,
						ms(ps.Positioning.P95()), ms(ps.Positioning.P99()),
						ms(ps.Service.P95()), ms(ps.Service.P99()), f2(share))
					i++
				}
			}
			return []Table{a, b}
		},
	}
}
