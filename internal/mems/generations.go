package mems

// Device generations. The paper's Table 1 device is the first-generation
// design being discussed by the groups it cites; the companion systems
// paper (Schlosser et al., CMU-CS-00-137) explores how successive
// generations densify. The second- and third-generation configurations
// below are *extrapolations in that spirit* — smaller bit cells, faster
// per-tip rates, stronger actuators and stiffer suspensions — provided
// for generational ablation studies. They are not published parameter
// sets; treat the generational experiment as a sensitivity study of the
// model, not a reproduction artifact.

// ConfigGen1 is the paper's Table 1 device (alias of DefaultConfig).
func ConfigGen1() Config { return DefaultConfig() }

// ConfigGen2 shrinks the bit cell to 30 nm, raises the per-tip rate to
// 1 Mbit/s, and stiffens the suspension. Capacity grows to ≈6.8 GB per
// sled and streaming bandwidth to ≈114 MB/s.
func ConfigGen2() Config {
	cfg := DefaultConfig()
	cfg.BitWidth = 30e-9
	cfg.BitsX, cfg.BitsY = 3330, 3330 // ≈100 µm of mobility at 30 nm
	cfg.PerTipRate = 1e6
	cfg.SledAccel = 1150
	cfg.ResonantHz = 1100
	return cfg
}

// ConfigGen3 shrinks to 25 nm cells, 10 000 tips with 3200 active, and
// 1.5 Mbit/s per tip: ≈13.5 GB and ≈427 MB/s per sled.
func ConfigGen3() Config {
	cfg := DefaultConfig()
	cfg.BitWidth = 25e-9
	cfg.BitsX, cfg.BitsY = 4000, 4000
	cfg.Tips = 9600
	cfg.ActiveTips = 3200
	cfg.PerTipRate = 1.5e6
	cfg.SledAccel = 1500
	cfg.ResonantHz = 1400
	return cfg
}
