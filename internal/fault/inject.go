// inject.go implements deterministic in-simulation fault injection: the
// bridge between the static §6 failure analysis in this package and the
// discrete-event simulator in internal/sim. An Injector is seeded,
// schedule- and rate-driven, and emits three fault classes as the run
// advances through simulated time:
//
//   - transient positioning (seek) errors, drawn per access attempt at a
//     configured rate and recovered by bounded device-level retry, each
//     retry charged at the device's §6.1.3 penalty model;
//   - whole-tip failures, fired at scheduled simulated times against the
//     array's redundancy structure (consuming spares, degrading stripes);
//   - grown media defects, also scheduled, absorbed by stripe ECC.
//
// Reads whose sectors are striped over a degraded (failed, unremapped)
// tip pay an ECC-reconstruction service-time surcharge until a spare — or
// data loss — resolves the stripe.
//
// Determinism: all randomness comes from the injector's own seed, and
// scheduled events fire as simulated time (not host time) passes, so a
// run's outcome is a pure function of (workload, device, injector
// configuration). A zero-rate, event-free injector is behaviorally
// identical to no injector at all: it consumes no random draws and adds
// no service time.

package fault

import (
	"fmt"
	"math/rand"
	"sort"
)

// TipEvent schedules one tip-level fault at a simulated time.
type TipEvent struct {
	// AtMs is the simulated time in ms at which the fault occurs.
	AtMs float64
	// Tip is the probe-tip id the fault strikes.
	Tip int
	// Defect marks a grown media defect (recoverable via stripe ECC,
	// §6.1.1) rather than a whole-tip failure.
	Defect bool
}

// DeviceEvent schedules a whole-device failure at a simulated time: the
// volume member in slot Dev fails completely and is served in degraded
// mode (and rebuilt onto a hot spare) from then on. Device events are
// consumed by sim.RunVolume; the single-device entry points ignore
// them.
type DeviceEvent struct {
	// AtMs is the simulated time in ms at which the device fails.
	AtMs float64
	// Dev is the volume member slot that fails.
	Dev int
}

// InjectorConfig declares a fault-injection scenario.
type InjectorConfig struct {
	// TransientRate is the per-access-attempt probability of a transient
	// positioning error, in [0,1). Each retry attempt draws again, so a
	// request can suffer several errors back to back. Zero disables
	// transient errors without consuming random draws.
	TransientRate float64
	// MaxRetries bounds device-level inline retries per service visit;
	// when a visit exhausts them the request is requeued (open-arrival
	// runs) or retried from scratch (closed runs), up to MaxRequeues.
	MaxRetries int
	// MaxRequeues bounds scheduler requeues per request; past it the
	// request completes as failed.
	MaxRequeues int
	// FallbackPenaltyMs is the per-retry recovery cost charged for devices
	// that do not implement core.RecoveryModel.
	FallbackPenaltyMs float64
	// ECCSurchargeMs is the service-time surcharge per degraded sector a
	// read must reconstruct through ECC.
	ECCSurchargeMs float64

	// Array, when non-nil, is the redundancy structure tip events fire
	// against. Required if Events is non-empty.
	Array *Config
	// Events is the tip-failure / media-defect schedule. Events fire in
	// AtMs order as the simulation clock passes them.
	Events []TipEvent
	// SectorTips maps a logical sector to the probe tips it is striped
	// over (e.g. mems.Geometry.TipsForSector). Nil disables degraded-read
	// detection — appropriate for disks, which have no tip array.
	SectorTips func(lbn int64) []int

	// DeviceEvents is the whole-device failure schedule for redundant
	// volume runs (sim.RunVolume). Events fire in AtMs order as the
	// simulation clock passes them.
	DeviceEvents []DeviceEvent

	// Lifetime, when non-nil, draws additional whole-device failures
	// from per-slot exponential lifetimes (seeded, deterministic; see
	// LifetimeModel). The drawn schedule is merged with DeviceEvents at
	// construction, so fixed kills and lifetime-drawn failures compose —
	// including repeated failures of the same slot, which is how a
	// second death mid-rebuild arises from a failure-rate model.
	Lifetime *LifetimeModel

	// Seed drives the injector's private random stream.
	Seed int64
}

// DefaultInjectorConfig returns the retry envelope used by the
// fault-injection experiments: up to 3 inline retries and one requeue
// before a request fails, a 1 ms fallback penalty, and a one-row
// (0.129 ms) ECC-reconstruction surcharge per degraded sector.
func DefaultInjectorConfig() InjectorConfig {
	return InjectorConfig{
		MaxRetries:        3,
		MaxRequeues:       1,
		FallbackPenaltyMs: 1,
		ECCSurchargeMs:    0.129,
	}
}

// Validate reports configuration errors.
func (c InjectorConfig) Validate() error {
	switch {
	case c.TransientRate < 0 || c.TransientRate >= 1:
		return fmt.Errorf("fault: transient rate %g out of [0,1)", c.TransientRate)
	case c.MaxRetries < 0 || c.MaxRequeues < 0:
		return fmt.Errorf("fault: retry budgets must be non-negative (retries=%d requeues=%d)",
			c.MaxRetries, c.MaxRequeues)
	case c.FallbackPenaltyMs < 0 || c.ECCSurchargeMs < 0:
		return fmt.Errorf("fault: penalties must be non-negative (fallback=%g ecc=%g)",
			c.FallbackPenaltyMs, c.ECCSurchargeMs)
	case len(c.Events) > 0 && c.Array == nil:
		return fmt.Errorf("fault: %d tip events scheduled without an array configuration", len(c.Events))
	}
	if c.Array != nil {
		if err := c.Array.Validate(); err != nil {
			return err
		}
		for i, ev := range c.Events {
			if ev.AtMs < 0 {
				return fmt.Errorf("fault: event %d scheduled at negative time %g", i, ev.AtMs)
			}
			if ev.Tip < 0 || ev.Tip >= c.Array.Tips {
				return fmt.Errorf("fault: event %d targets tip %d out of range [0,%d)", i, ev.Tip, c.Array.Tips)
			}
		}
	}
	for i, ev := range c.DeviceEvents {
		if ev.AtMs < 0 {
			return fmt.Errorf("fault: device event %d scheduled at negative time %g", i, ev.AtMs)
		}
		if ev.Dev < 0 {
			return fmt.Errorf("fault: device event %d targets negative member slot %d", i, ev.Dev)
		}
	}
	if c.Lifetime != nil {
		if err := c.Lifetime.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Injector emits deterministic faults into a simulation run. It is
// stateful and not safe for concurrent use; the parallel experiment
// runner builds one per job. The simulation entry points Reset it before
// each run, so one injector may be reused across sequential runs.
type Injector struct {
	cfg    InjectorConfig
	events []TipEvent // sorted by AtMs, stable w.r.t. declaration order
	rng    *rand.Rand
	arr    *Array
	next   int // first unfired event
	// hasDegraded caches whether any stripe currently serves in degraded
	// mode; only Advance can change it, so reads skip the per-sector scan
	// on healthy arrays.
	hasDegraded bool
	// hasLoss caches whether any stripe has exceeded its ECC budget —
	// some sectors are gone and reads touching them must fail.
	hasLoss      bool
	tipFailures  int
	mediaDefects int
	// devEvents is the whole-device failure schedule, sorted by AtMs
	// (stable w.r.t. declaration order).
	devEvents []DeviceEvent
}

// NewInjector validates cfg and builds an injector ready for a run.
func NewInjector(cfg InjectorConfig) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		cfg:       cfg,
		events:    append([]TipEvent(nil), cfg.Events...),
		devEvents: append([]DeviceEvent(nil), cfg.DeviceEvents...),
	}
	if cfg.Lifetime != nil {
		// Expand the lifetime model once, at construction: the drawn
		// schedule is a pure function of the model, so Reset (which
		// re-arms the fixed schedule) never has to re-draw it.
		in.devEvents = append(in.devEvents, cfg.Lifetime.Schedule()...)
	}
	sort.SliceStable(in.events, func(i, j int) bool { return in.events[i].AtMs < in.events[j].AtMs })
	sort.SliceStable(in.devEvents, func(i, j int) bool { return in.devEvents[i].AtMs < in.devEvents[j].AtMs })
	in.Reset()
	return in, nil
}

// Reset restores the initial state: a fresh random stream, a pristine tip
// array, and no fired events.
func (in *Injector) Reset() {
	in.rng = rand.New(rand.NewSource(in.cfg.Seed))
	in.next = 0
	in.hasDegraded = false
	in.hasLoss = false
	in.tipFailures = 0
	in.mediaDefects = 0
	in.arr = nil
	if in.cfg.Array != nil {
		a, err := NewArray(*in.cfg.Array)
		if err != nil {
			// Unreachable: NewInjector validated the configuration.
			panic(err)
		}
		in.arr = a
	}
}

// Advance fires every scheduled tip event with AtMs ≤ now, evolving the
// array's remap state mid-run, and returns the number fired. The
// simulator calls it at each dispatch with non-decreasing times.
func (in *Injector) Advance(now float64) int {
	fired := 0
	for in.next < len(in.events) && in.events[in.next].AtMs <= now {
		ev := in.events[in.next]
		in.next++
		fired++
		if ev.Defect {
			// Event tips were range-checked at construction.
			if err := in.arr.MediaDefect(ev.Tip); err == nil {
				in.mediaDefects++
			}
			continue
		}
		if _, err := in.arr.FailTip(ev.Tip); err == nil {
			in.tipFailures++
		}
	}
	if fired > 0 && in.arr != nil {
		in.hasDegraded = in.arr.UnremappedFailures() > 0
		in.hasLoss = in.arr.DataLoss()
	}
	return fired
}

// TransientError draws whether the next access attempt suffers a
// transient positioning error. At rate zero it returns false without
// consuming a random draw, preserving byte-identical behavior with an
// absent injector.
func (in *Injector) TransientError() bool {
	if in.cfg.TransientRate == 0 {
		return false
	}
	return in.rng.Float64() < in.cfg.TransientRate
}

// Draw returns a uniform value in [0,1) from the injector's stream,
// shaping where in the recovery envelope a retry lands.
func (in *Injector) Draw() float64 { return in.rng.Float64() }

// MaxRetries returns the device-level inline retry budget per visit.
func (in *Injector) MaxRetries() int { return in.cfg.MaxRetries }

// MaxRequeues returns the scheduler requeue budget per request.
func (in *Injector) MaxRequeues() int { return in.cfg.MaxRequeues }

// FallbackPenaltyMs returns the per-retry cost for devices without a
// §6.1.3 recovery model.
func (in *Injector) FallbackPenaltyMs() float64 { return in.cfg.FallbackPenaltyMs }

// ECCSurchargeMs returns the per-sector degraded-read surcharge.
func (in *Injector) ECCSurchargeMs() float64 { return in.cfg.ECCSurchargeMs }

// DegradedBlocks counts the sectors of [lbn, lbn+blocks) currently
// striped over at least one degraded tip — the sectors a read must
// reconstruct through ECC. It returns 0 when no stripe is degraded or no
// tip mapping is configured.
func (in *Injector) DegradedBlocks(lbn int64, blocks int) int {
	if !in.hasDegraded || in.cfg.SectorTips == nil {
		return 0
	}
	n := 0
	for b := 0; b < blocks; b++ {
		for _, tip := range in.cfg.SectorTips(lbn + int64(b)) {
			if in.arr.TipDegraded(tip) {
				n++
				break
			}
		}
	}
	return n
}

// LostBlocks counts the sectors of [lbn, lbn+blocks) currently striped
// over a tip whose stripe group has exceeded its ECC budget — sectors
// whose data is unrecoverable. A read touching any of them must
// complete in error: the simulator uses this to refuse silent service
// of lost data. It returns 0 when no stripe has lost data or no tip
// mapping is configured.
func (in *Injector) LostBlocks(lbn int64, blocks int) int {
	if !in.hasLoss || in.cfg.SectorTips == nil {
		return 0
	}
	n := 0
	for b := 0; b < blocks; b++ {
		for _, tip := range in.cfg.SectorTips(lbn + int64(b)) {
			if in.arr.TipLost(tip) {
				n++
				break
			}
		}
	}
	return n
}

// DeviceEvents returns the whole-device failure schedule, sorted by
// firing time. The caller must not mutate the returned slice.
func (in *Injector) DeviceEvents() []DeviceEvent { return in.devEvents }

// Array exposes the evolving redundancy state (nil when the injector has
// no tip array); experiments read spare and degraded-stripe counts from
// it after a run.
func (in *Injector) Array() *Array { return in.arr }

// TipFailuresFired reports the whole-tip failure events applied so far.
func (in *Injector) TipFailuresFired() int { return in.tipFailures }

// MediaDefectsFired reports the media-defect events applied so far.
func (in *Injector) MediaDefectsFired() int { return in.mediaDefects }
