package sched

import (
	"testing"

	"memsim/internal/core"
	"memsim/internal/mems"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

func TestASPTFZeroWeightEqualsSPTF(t *testing.T) {
	d := mems.MustDevice(mems.DefaultConfig())
	g := d.Geometry()
	a := NewASPTF(0)
	s := NewSPTF()
	lbns := []int64{
		g.LBN(0, 0, 0, 0),
		g.LBN(g.Cylinders/2, 1, 3, 0),
		g.LBN(g.Cylinders-1, 4, 20, 0),
	}
	for _, lbn := range lbns {
		a.Add(&core.Request{LBN: lbn, Blocks: 8})
		s.Add(&core.Request{LBN: lbn, Blocks: 8})
	}
	for s.Len() > 0 {
		ra := a.Next(d, 0)
		rs := s.Next(d, 0)
		if ra.LBN != rs.LBN {
			t.Fatalf("ASPTF(0) picked %d, SPTF picked %d", ra.LBN, rs.LBN)
		}
	}
}

func TestASPTFLargeWeightApproachesFCFS(t *testing.T) {
	d := mems.MustDevice(mems.DefaultConfig())
	a := NewASPTF(1e9)
	// The oldest request wins regardless of position.
	far := &core.Request{Arrival: 0, LBN: 0, Blocks: 8}
	near := &core.Request{Arrival: 100, LBN: d.Capacity() / 2, Blocks: 8}
	d.Reset() // sled at center: near is positionally cheaper
	a.Add(near)
	a.Add(far)
	if got := a.Next(d, 200); got != far {
		t.Errorf("heavy aging should dispatch the oldest request")
	}
}

func TestASPTFName(t *testing.T) {
	if NewASPTF(0.05).Name() != "ASPTF(0.05)" {
		t.Errorf("name = %q", NewASPTF(0.05).Name())
	}
}

func TestASPTFNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewASPTF(-1)
}

func TestASPTFResetAndEmpty(t *testing.T) {
	a := NewASPTF(0.1)
	if a.Next(nil, 0) != nil {
		t.Error("empty Next should be nil")
	}
	a.Add(&core.Request{LBN: 1, Blocks: 1})
	a.Reset()
	if a.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestASPTFTamesSPTFTails(t *testing.T) {
	// The extension's purpose: at the saturation knee, a small aging
	// weight must cut SPTF's worst-case response dramatically.
	d := mems.MustDevice(mems.DefaultConfig())
	run := func(s core.Scheduler) (mean, max float64) {
		src := workload.DefaultRandom(1600, d.SectorSize(), d.Capacity(), 4000, 3)
		res := sim.Run(nil, d, s, src, sim.Options{Warmup: 400})
		return res.Response.Mean(), res.Response.Max()
	}
	_, sptfMax := run(NewSPTF())
	agedMean, agedMax := run(NewASPTF(0.01))
	if agedMax*2 > sptfMax {
		t.Errorf("ASPTF max %.1f ms should be far below SPTF max %.1f ms", agedMax, sptfMax)
	}
	if agedMean <= 0 {
		t.Error("mean must be positive")
	}
}
