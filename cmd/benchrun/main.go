// Command benchrun runs the repository's benchmark suites and writes
// their results as machine-readable JSON (the BENCH_10.json format),
// the input side of the benchmark-regression harness (cmd/benchgate
// compares two such files).
//
// Usage:
//
//	go run ./cmd/benchrun -out BENCH_10.json          # full profile
//	go run ./cmd/benchrun -quick -out /tmp/cur.json   # CI-sized
//
// The suites cover the engine hot path (./internal/sim BenchmarkRun*,
// BenchmarkPhaseCollector, device Access), the schedulers at queue
// depths 8/64/512 (BenchmarkSchedNext, every algorithm), the stats
// backends (./internal/stats Dist/Sketch/Sample benches), and the
// million-request end-to-end runs (BenchmarkEngineMillion; -quick
// drops them to 100k requests, which also changes the subbench name so
// the gate never compares across scales). All suites run with
// -benchmem, so every record carries ns/op, B/op and allocs/op.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	// Package is the Go package the benchmark lives in.
	Package string `json:"package"`
	// Name is the benchmark name including subbenchmarks, with the
	// GOMAXPROCS suffix stripped (BenchmarkSchedNext/SPTF/depth=8).
	Name string `json:"name"`
	// Iterations is the b.N the reported averages cover.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard -benchmem
	// triplet.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the BENCH_10.json document.
type File struct {
	// GoVersion records the toolchain that produced the numbers.
	GoVersion string `json:"go_version"`
	// Quick marks a CI-sized run (shorter benchtime, -short million
	// benches); quick and full numbers are not comparable.
	Quick bool `json:"quick"`
	// Benchmarks holds every measurement, sorted by package then name.
	Benchmarks []Result `json:"benchmarks"`
}

// suite is one `go test -bench` invocation.
type suite struct {
	pkg     string
	pattern string
	// benchtime overrides the quick/full default when non-empty.
	benchtime string
	short     bool
}

// benchLine matches one line of `go test -bench -benchmem` output.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_10.json", "output JSON path")
	quick := flag.Bool("quick", false, "CI-sized run: shorter benchtime, 100k-request EngineMillion")
	flag.Parse()

	bt := "1s"
	schedBT := "200x"
	if *quick {
		bt = "0.2s"
		schedBT = "50x"
	}
	suites := []suite{
		{pkg: "./internal/sim", pattern: "^(BenchmarkRunNilProbe|BenchmarkRunDiscard|BenchmarkRunPhaseStats|BenchmarkPhaseCollector|BenchmarkMEMSAccess|BenchmarkDiskAccess)$", benchtime: bt},
		{pkg: "./internal/sim", pattern: "^BenchmarkEngineMillion$", benchtime: "1x", short: *quick},
		{pkg: ".", pattern: "^BenchmarkSchedNext$", benchtime: schedBT},
		{pkg: "./internal/stats", pattern: "^(BenchmarkDistAdd|BenchmarkSketchPercentile|BenchmarkSamplePercentileRepeated)$", benchtime: bt},
	}

	doc := File{GoVersion: runtime.Version(), Quick: *quick}
	for _, s := range suites {
		rs, err := runSuite(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: %s %q: %v\n", s.pkg, s.pattern, err)
			os.Exit(1)
		}
		doc.Benchmarks = append(doc.Benchmarks, rs...)
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		a, b := doc.Benchmarks[i], doc.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchrun: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// runSuite executes one go test -bench invocation and parses its
// benchmark lines.
func runSuite(s suite) ([]Result, error) {
	args := []string{"test", "-run", "^$", "-bench", s.pattern, "-benchmem",
		"-benchtime", s.benchtime}
	if s.short {
		args = append(args, "-short")
	}
	args = append(args, s.pkg)
	fmt.Fprintf(os.Stderr, "benchrun: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBuf, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("%v\n%s", err, outBuf)
	}
	pkg := packageName(string(outBuf), s.pkg)
	var rs []Result
	for _, line := range strings.Split(string(outBuf), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := Result{Package: pkg, Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rs = append(rs, r)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("no benchmark lines in output:\n%s", outBuf)
	}
	return rs, nil
}

// packageName extracts the import path from the trailing "ok <pkg> ..."
// line, falling back to the relative path.
func packageName(output, fallback string) string {
	for _, line := range strings.Split(output, "\n") {
		if f := strings.Fields(line); len(f) >= 2 && f[0] == "ok" {
			return f[1]
		}
	}
	return fallback
}
