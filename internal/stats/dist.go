package stats

// Dist couples the two accumulators the per-phase service metrics need:
// a Welford for streaming moments (mean, variance, min/max) and an
// order-statistic accumulator for percentiles (p95/p99). It exists so a
// phase's aggregate is one field, not two that can drift apart. The
// zero value is an empty accumulator ready to use.
//
// The order statistics come from one of two backends:
//
//   - exact (default): a Sample retaining every observation, so
//     percentiles are exact — and memory is O(n). This is the
//     historical behavior and the one the golden byte-identity suite
//     pins.
//   - sketch: a bounded log-bucketed Sketch, selected by UseSketch
//     (sim.Options.Sketch / memsbench -sketch), holding percentile
//     estimates within sketchAlpha relative error at O(1) memory —
//     the backend for million-request runs.
//
// Callers aggregating unbounded streams that need no percentiles at all
// should prefer a bare Welford.
type Dist struct {
	w  Welford
	s  Sample
	sk *Sketch // non-nil selects the sketch backend
}

// UseSketch switches the percentile backend to the bounded sketch.
// Observations already retained by the exact backend are folded into
// the sketch and released, so flipping mid-stream loses no data — but
// the idiomatic call site flips the mode before the first Add.
func (d *Dist) UseSketch() {
	if d.sk != nil {
		return
	}
	d.sk = &Sketch{}
	for _, x := range d.s.xs {
		d.sk.Add(x)
	}
	d.s = Sample{}
}

// Sketched reports whether the bounded sketch backend is active.
func (d *Dist) Sketched() bool { return d.sk != nil }

// Retained reports the number of observations the exact backend holds:
// n in exact mode, 0 in sketch mode. Memory-model tests assert on it.
func (d *Dist) Retained() int { return d.s.N() }

// Add folds one observation into both accumulators.
func (d *Dist) Add(x float64) {
	d.w.Add(x)
	if d.sk != nil {
		d.sk.Add(x)
		return
	}
	d.s.Add(x)
}

// N reports the number of observations added.
func (d *Dist) N() int64 { return d.w.N() }

// Mean returns the arithmetic mean, or 0 if empty.
func (d *Dist) Mean() float64 { return d.w.Mean() }

// Min returns the smallest observation, or 0 if empty.
func (d *Dist) Min() float64 { return d.w.Min() }

// Max returns the largest observation, or 0 if empty.
func (d *Dist) Max() float64 { return d.w.Max() }

// StdDev returns the population standard deviation.
func (d *Dist) StdDev() float64 { return d.w.StdDev() }

// SquaredCV returns σ²/µ², the paper's starvation metric.
func (d *Dist) SquaredCV() float64 { return d.w.SquaredCV() }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100): exact over the
// retained observations by default, an estimate within the sketch's
// documented relative-error bound in sketch mode. Returns 0 if empty.
func (d *Dist) Percentile(p float64) float64 {
	if d.sk != nil {
		return d.sk.Percentile(p)
	}
	return d.s.Percentile(p)
}

// P95 returns the 95th percentile.
func (d *Dist) P95() float64 { return d.Percentile(95) }

// P99 returns the 99th percentile.
func (d *Dist) P99() float64 { return d.Percentile(99) }

// Welford returns a copy of the streaming accumulator, for callers that
// want to Merge several Dists' moments.
func (d *Dist) Welford() Welford { return d.w }
