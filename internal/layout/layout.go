// Package layout implements the on-device data-placement schemes of §5 of
// the paper: the simple (linear) layout, the organ-pipe layout that is
// optimal for disks (Vongsathorn & Carson; Ruemmler & Wilkes), and the two
// MEMS-specific bipartite layouts — subregioned (a five-by-five grid of
// sled subregions) and columnar (25 columns of contiguous cylinders).
//
// Two abstractions are provided:
//
//   - Placer: a placement policy for the bipartite small/large workload of
//     §5.3 — it decides where requests of each class land on the device.
//   - CenterOut: the organ-pipe building block that assigns
//     popularity-ranked items to positions spreading outward from the
//     center of an extent.
package layout

import (
	"fmt"
	"math/rand"

	"memsim/internal/disk"
	"memsim/internal/mems"
)

// Class distinguishes the two request populations of the §5.3 experiment.
type Class int

const (
	// Small requests are the 4 KB, 89%-of-requests population.
	Small Class = iota
	// Large requests are the 400 KB streaming population.
	Large
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Small {
		return "small"
	}
	return "large"
}

// Placer decides the starting LBN for a request of a given class. Place
// must return an LBN such that [lbn, lbn+blocks) is within the device.
type Placer interface {
	// Name identifies the scheme ("simple", "organ-pipe", "subregioned",
	// "columnar").
	Name() string
	// Place draws a starting LBN for a request of class c spanning
	// blocks sectors, using rng for any randomness.
	Place(rng *rand.Rand, c Class, blocks int) int64
}

// CenterOut assigns items, listed in decreasing popularity rank with the
// given sizes (in blocks), to starting offsets that spread outward from
// the center of an extent of the given capacity: rank 0 at the center,
// rank 1 just above, rank 2 just below, and so on — the organ-pipe
// arrangement. It returns one start offset per item and errors if the
// items exceed the capacity.
func CenterOut(sizes []int64, capacity int64) ([]int64, error) {
	var total int64
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("layout: item %d has non-positive size %d", i, s)
		}
		total += s
	}
	if total > capacity {
		return nil, fmt.Errorf("layout: items (%d blocks) exceed capacity (%d)", total, capacity)
	}
	// First lay the items out relative to an abstract center: even ranks
	// extend upward from it, odd ranks downward. Then shift the whole
	// block so it fits in [0, capacity); the shift is zero when the two
	// sides are balanced and minimal otherwise.
	rel := make([]int64, len(sizes))
	var above, below int64
	for i, s := range sizes {
		if i%2 == 0 {
			rel[i] = above
			above += s
		} else {
			below += s
			rel[i] = -below
		}
	}
	base := capacity / 2
	if base+above > capacity {
		base = capacity - above
	}
	if base-below < 0 {
		base = below
	}
	starts := make([]int64, len(sizes))
	for i := range sizes {
		starts[i] = base + rel[i]
	}
	return starts, nil
}

// ─── MEMS placers ───────────────────────────────────────────────────────

// memsSimple places both classes uniformly over the whole device: the
// "simple" linear layout baseline of Fig. 11.
type memsSimple struct{ g *mems.Geometry }

// NewMEMSSimple returns the simple layout baseline for a MEMS device.
func NewMEMSSimple(g *mems.Geometry) Placer { return &memsSimple{g} }

func (p *memsSimple) Name() string { return "simple" }

func (p *memsSimple) Place(rng *rand.Rand, _ Class, blocks int) int64 {
	return rng.Int63n(p.g.TotalSectors - int64(blocks) + 1)
}

// memsOrganPipe emulates the organ-pipe layout on MEMS: the popular small
// population is packed into the centermost cylinders (per-block
// popularity ranking) and the large population spreads outward to either
// side. Only the X dimension is exploited — organ pipe is a disk scheme
// and knows nothing about the sled's Y dimension, which is exactly the
// deficiency §5.3 identifies.
type memsOrganPipe struct {
	g *mems.Geometry
	// smallLo/smallHi bound the small population's LBN extent (centered);
	// large occupies the remainder on both sides.
	smallLo, smallHi int64
}

// NewMEMSOrganPipe builds an organ-pipe placement in which the small
// population occupies smallFrac of the device capacity at the center.
func NewMEMSOrganPipe(g *mems.Geometry, smallFrac float64) Placer {
	smallBlocks := int64(smallFrac * float64(g.TotalSectors))
	mid := g.TotalSectors / 2
	return &memsOrganPipe{g: g, smallLo: mid - smallBlocks/2, smallHi: mid + smallBlocks/2}
}

func (p *memsOrganPipe) Name() string { return "organ-pipe" }

func (p *memsOrganPipe) Place(rng *rand.Rand, c Class, blocks int) int64 {
	if c == Small {
		return p.smallLo + rng.Int63n(p.smallHi-p.smallLo-int64(blocks)+1)
	}
	// Large items live on either side of the small core.
	if rng.Intn(2) == 0 && p.smallLo > int64(blocks) {
		return rng.Int63n(p.smallLo - int64(blocks) + 1)
	}
	return p.smallHi + rng.Int63n(p.g.TotalSectors-p.smallHi-int64(blocks)+1)
}

// memsColumnar divides the LBN space into n columns of contiguous
// cylinders; small data lives in the center column, large data in the
// leftmost and rightmost (n−1)/2·... columns (§5.3's "simple columnar
// division of the LBN space into 25 columns").
type memsColumnar struct {
	g       *mems.Geometry
	columns int
}

// NewMEMSColumnar builds the columnar layout with the given column count
// (25 in the paper).
func NewMEMSColumnar(g *mems.Geometry, columns int) Placer {
	if columns < 3 || columns > g.Cylinders {
		panic(fmt.Sprintf("layout: column count %d out of range", columns))
	}
	return &memsColumnar{g: g, columns: columns}
}

func (p *memsColumnar) Name() string { return "columnar" }

// columnCyls returns the cylinder range [lo, hi) of column i.
func (p *memsColumnar) columnCyls(i int) (int, int) {
	per := p.g.Cylinders / p.columns
	lo := i * per
	hi := lo + per
	if i == p.columns-1 {
		hi = p.g.Cylinders
	}
	return lo, hi
}

func (p *memsColumnar) Place(rng *rand.Rand, c Class, blocks int) int64 {
	if c == Small {
		lo, hi := p.columnCyls(p.columns / 2)
		return p.placeInCylinders(rng, lo, hi, blocks)
	}
	// Ten leftmost and ten rightmost columns (for 25 columns); in general
	// the outer 40% on each side.
	outer := p.columns * 2 / 5
	col := rng.Intn(2 * outer)
	if col >= outer {
		col = p.columns - 1 - (col - outer)
	}
	lo, hi := p.columnCyls(col)
	return p.placeInCylinders(rng, lo, hi, blocks)
}

func (p *memsColumnar) placeInCylinders(rng *rand.Rand, loCyl, hiCyl, blocks int) int64 {
	g := p.g
	lo := int64(loCyl) * int64(g.SectorsPerCylinder)
	hi := int64(hiCyl) * int64(g.SectorsPerCylinder)
	if hi > g.TotalSectors {
		hi = g.TotalSectors
	}
	span := hi - lo - int64(blocks) + 1
	if span <= 0 {
		// The request is larger than the band: start at the band and let
		// it flow into subsequent cylinders.
		if lo+int64(blocks) > g.TotalSectors {
			lo = g.TotalSectors - int64(blocks)
		}
		return lo
	}
	return lo + rng.Int63n(span)
}

// memsSubregioned is the five-by-five grid of Fig. 9 used as a layout:
// small data is confined to the centermost subregion — restricting both
// the cylinders (X) *and* the rows within each track (Y) — while large
// data goes to the ten leftmost and ten rightmost subregions (the outer
// two column bands, any row).
type memsSubregioned struct {
	g *mems.Geometry
	n int // grid edge (5)
}

// NewMEMSSubregioned builds the n×n subregioned layout (n = 5 in §5.3).
func NewMEMSSubregioned(g *mems.Geometry, n int) Placer {
	if n < 3 || n > g.RowsPerTrack || n > g.Cylinders {
		panic(fmt.Sprintf("layout: subregion grid %d out of range", n))
	}
	return &memsSubregioned{g: g, n: n}
}

func (p *memsSubregioned) Name() string { return "subregioned" }

// bandRows returns the row range [lo, hi) of Y band j.
func (p *memsSubregioned) bandRows(j int) (int, int) {
	r := p.g.RowsPerTrack
	return j * r / p.n, (j + 1) * r / p.n
}

// bandCyls returns the cylinder range [lo, hi) of X band i.
func (p *memsSubregioned) bandCyls(i int) (int, int) {
	c := p.g.Cylinders
	return i * c / p.n, (i + 1) * c / p.n
}

func (p *memsSubregioned) Place(rng *rand.Rand, c Class, blocks int) int64 {
	g := p.g
	if c == Small {
		// Centermost subregion: center X band, center Y band.
		cLo, cHi := p.bandCyls(p.n / 2)
		rLo, rHi := p.bandRows(p.n / 2)
		// Keep the whole request inside the Y band.
		rowsNeeded := (blocks + g.SectorsPerRow - 1) / g.SectorsPerRow
		maxRow := rHi - rowsNeeded
		if maxRow < rLo {
			maxRow = rLo
		}
		cyl := cLo + rng.Intn(cHi-cLo)
		track := rng.Intn(g.TracksPerCylinder)
		row := rLo + rng.Intn(maxRow-rLo+1)
		return g.LBN(cyl, track, row, 0)
	}
	// Large: outer two X bands on each side, any row; start at a row
	// boundary and flow sequentially.
	band := rng.Intn(4)
	switch band {
	case 2:
		band = p.n - 2
	case 3:
		band = p.n - 1
	}
	cLo, cHi := p.bandCyls(band)
	cyl := cLo + rng.Intn(cHi-cLo)
	track := rng.Intn(g.TracksPerCylinder)
	row := rng.Intn(g.RowsPerTrack)
	lbn := g.LBN(cyl, track, row, 0)
	if lbn+int64(blocks) > g.TotalSectors {
		lbn = g.TotalSectors - int64(blocks)
	}
	return lbn
}

// ─── Disk placers ───────────────────────────────────────────────────────

// diskSimple places both classes uniformly over the disk.
type diskSimple struct{ d *disk.Device }

// NewDiskSimple returns the simple layout baseline for a disk.
func NewDiskSimple(d *disk.Device) Placer { return &diskSimple{d} }

func (p *diskSimple) Name() string { return "simple" }

func (p *diskSimple) Place(rng *rand.Rand, _ Class, blocks int) int64 {
	return rng.Int63n(p.d.Capacity() - int64(blocks) + 1)
}

// diskOrganPipe packs the small population into the center of the disk's
// LBN space (center cylinders) with large data to either side — the
// layout that is optimal for disks.
type diskOrganPipe struct {
	d                *disk.Device
	smallLo, smallHi int64
}

// NewDiskOrganPipe builds the organ-pipe placement with the small
// population occupying smallFrac of the capacity at the center.
func NewDiskOrganPipe(d *disk.Device, smallFrac float64) Placer {
	smallBlocks := int64(smallFrac * float64(d.Capacity()))
	mid := d.Capacity() / 2
	return &diskOrganPipe{d: d, smallLo: mid - smallBlocks/2, smallHi: mid + smallBlocks/2}
}

func (p *diskOrganPipe) Name() string { return "organ-pipe" }

func (p *diskOrganPipe) Place(rng *rand.Rand, c Class, blocks int) int64 {
	if c == Small {
		return p.smallLo + rng.Int63n(p.smallHi-p.smallLo-int64(blocks)+1)
	}
	if rng.Intn(2) == 0 && p.smallLo > int64(blocks) {
		return rng.Int63n(p.smallLo - int64(blocks) + 1)
	}
	return p.smallHi + rng.Int63n(p.d.Capacity()-p.smallHi-int64(blocks)+1)
}
