package experiments

import (
	"fmt"

	"memsim/internal/array"
	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/runner"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/stats"
	"memsim/internal/workload"
)

func init() { register("schedcost", schedCostPlan) }

// SchedCost (extension) exercises the cost-model scheduling framework
// along both of its axes. Part one compares plain SPTF against the
// settle-aware variant on each device type under the random workload:
// SettleAware discounts the settling floor every candidate must pay, so
// on the MEMS device (where settling dominates positioning, §4.1) it
// ranks candidates by the portion of service the scheduler can actually
// influence. Part two runs the rebuild regime with class-aware Priority
// member queues: degraded-mode reconstruction reads jump ahead of
// foreground and rebuild traffic, bounding the degraded-read tail that
// plain SPTF lets rebuild chunks inflate.
func SchedCost(p Params) []Table { return mustRun(schedCostPlan(p)) }

// memberSched constructs one volume member scheduler per the
// Params.MemberSched contract (empty selects the historical SPTF
// default). An unknown name panics — cmd/memsbench validates the flag
// at parse time, so reaching the panic means a caller bypassed
// validation.
func memberSched(p Params) core.Scheduler {
	name := p.MemberSched
	if name == "" {
		name = "SPTF"
	}
	s, err := sched.New(name)
	if err != nil {
		panic(err)
	}
	return s
}

// schedCostSchedulers is the single-device comparison set; a -sched
// override appends one more policy to the sweep.
func schedCostSchedulers(p Params) []string {
	names := []string{"SPTF", "SettleAware"}
	if p.Sched != "" {
		for _, n := range names {
			if n == p.Sched {
				return names
			}
		}
		names = append(names, p.Sched)
	}
	return names
}

// schedCostDevice pairs a device with an arrival rate in the contended
// region where queue order matters (utilization ≈ 0.8, cf. figs. 5/6).
type schedCostDevice struct {
	name string
	mk   core.DeviceFactory
	rate float64
}

func schedCostDevices() []schedCostDevice {
	return []schedCostDevice{
		{"MEMS", memsFactory(1), 1000},
		{"Atlas 10K", func() core.Device { return newDisk() }, 100},
	}
}

// schedCostOutcome is one single-device run's summary.
type schedCostOutcome struct {
	mean, p95, p99 float64 // response time, ms
	settle         float64 // mean settle per request, ms
	service        float64 // mean device service per request, ms
}

// respProbe collects the measured response-time distribution, which
// Result.Response (a Welford accumulator) cannot report percentiles
// from.
type respProbe struct {
	d stats.Dist
}

func (r *respProbe) Observe(ev sim.ProbeEvent) {
	if ev.Kind == sim.EventComplete && ev.Measured {
		r.d.Add(ev.Req.ResponseTime())
	}
}

func (r *respProbe) ResetProbe() { r.d = stats.Dist{} }

func schedCostRun(job *runner.Job, dev schedCostDevice, schedName string, p Params) schedCostOutcome {
	s, err := sched.New(schedName)
	if err != nil {
		panic(err)
	}
	d := dev.mk()
	pc := sim.NewPhaseCollector()
	rp := &respProbe{}
	src := workload.DefaultRandom(dev.rate, d.SectorSize(), d.Capacity(), p.Requests, p.Seed)
	res := sim.Run(job.SimContext(), d, s, src,
		job.SimOptions(sim.Options{Warmup: p.Warmup, Probe: sim.MultiProbe{pc, rp}}))
	job.SimMs = res.Elapsed
	return schedCostOutcome{
		mean:    rp.d.Mean(),
		p95:     rp.d.P95(),
		p99:     rp.d.P99(),
		settle:  res.Phases.Settle.Mean(),
		service: res.Phases.Service.Mean(),
	}
}

// schedDegradedOutcome is one rebuild-regime run's summary under a
// given member-queue policy.
type schedDegradedOutcome struct {
	degradedP99   float64 // degraded-read response p99, ms
	degradedReads int
	foregroundP95 float64 // healthy-window foreground p95, ms
	mttrS         float64
}

// schedDegradedRun is the rebuild regime of xrebuild.go with the member
// scheduling policy under test: a MEMS parity member dies a quarter of
// the way through the arrival stream and the run measures the
// degraded-read tail while the rebuild competes for the member queues.
func schedDegradedRun(job *runner.Job, memberSched string, frac float64, p Params) schedDegradedOutcome {
	cfg := rebuildParityCfg()
	v, err := array.NewVolume(cfg)
	if err != nil {
		panic(err)
	}
	n := cfg.Devices()
	devs := make([]core.Device, n)
	scheds := make([]core.Scheduler, n)
	for i := range devs {
		devs[i] = newMEMS(1)
		s, err := sched.New(memberSched)
		if err != nil {
			panic(err)
		}
		scheds[i] = s
	}
	rate := 1000.0
	failMs := 0.25 * float64(p.Requests) / rate * 1000
	inj, err := fault.NewInjector(fault.InjectorConfig{
		DeviceEvents: []fault.DeviceEvent{{AtMs: failMs, Dev: p.FailDev % cfg.Members}},
	})
	if err != nil {
		panic(err)
	}
	src := workload.NewRandom(workload.RandomConfig{
		Rate:         rate,
		ReadFraction: 0.67,
		MeanBytes:    4096,
		MaxBytes:     32 * 1024,
		SectorSize:   devs[0].SectorSize(),
		Capacity:     cfg.Capacity(),
		Count:        p.Requests,
		Seed:         p.Seed,
	})
	res, err := sim.RunVolume(job.SimContext(), sim.VolumeSpec{
		Volume: v, Devices: devs, Scheds: scheds,
		RebuildChunk: int(cfg.StripeUnit), RebuildFrac: frac,
	}, src, job.SimOptions(sim.Options{Warmup: p.Warmup, Injector: inj}))
	if err != nil {
		panic(err)
	}
	job.SimMs = res.Elapsed
	vs := res.Volume
	return schedDegradedOutcome{
		degradedP99:   vs.ClassResponse[core.ClassDegradedRead].P99(),
		degradedReads: vs.DegradedReads,
		foregroundP95: vs.Healthy.P95(),
		mttrS:         vs.RebuildMs / 1000,
	}
}

// schedDegradedFracs are the rebuild-throttle operating points of the
// degraded-latency comparison.
var schedDegradedFracs = []float64{0.3, 1.0}

// schedDegradedScheds are the member-queue policies under comparison:
// the historical cost-only default versus the class-aware policy.
var schedDegradedScheds = []string{"SPTF", "Priority"}

func schedCostPlan(p Params) *Plan {
	devices := schedCostDevices()
	names := schedCostSchedulers(p)

	grid := make([][]*runner.Job, len(devices))
	var jobs []*runner.Job
	for di, dev := range devices {
		grid[di] = make([]*runner.Job, len(names))
		for si, name := range names {
			dev, name := dev, name
			j := &runner.Job{
				Label: fmt.Sprintf("schedcost %s %s", dev.name, name),
				Seed:  p.Seed,
			}
			j.Custom = func(job *runner.Job) any {
				out := schedCostRun(job, dev, name, p)
				if err := job.Ctx().Err(); err != nil {
					return err
				}
				return out
			}
			grid[di][si] = j
			jobs = append(jobs, j)
		}
	}

	degraded := make([][]*runner.Job, len(schedDegradedFracs))
	for fi, frac := range schedDegradedFracs {
		degraded[fi] = make([]*runner.Job, len(schedDegradedScheds))
		for si, name := range schedDegradedScheds {
			frac, name := frac, name
			j := &runner.Job{
				Label: fmt.Sprintf("schedcost degraded %s f=%g", name, frac),
				Seed:  p.Seed,
			}
			j.Custom = func(job *runner.Job) any {
				out := schedDegradedRun(job, name, frac, p)
				if err := job.Ctx().Err(); err != nil {
					return err
				}
				return out
			}
			degraded[fi][si] = j
			jobs = append(jobs, j)
		}
	}

	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			a := Table{
				ID:    "schedcost",
				Title: "cost-model scheduling: settle-aware SPTF vs. plain SPTF, random workload (util ≈ 0.8)",
				Columns: []string{"device", "scheduler", "mean(ms)", "p95(ms)", "p99(ms)",
					"settle(ms/req)", "service(ms/req)"},
			}
			for di, dev := range devices {
				for si, name := range names {
					o := grid[di][si].Value().(schedCostOutcome)
					a.AddRow(dev.name, name, ms(o.mean), ms(o.p95), ms(o.p99),
						ms(o.settle), ms(o.service))
				}
			}
			b := Table{
				ID:    "schedcost-degraded",
				Title: "degraded-read tail under rebuild, MEMS parity volume: class-aware Priority vs. SPTF member queues",
				Columns: []string{"throttle", "SPTF degr-p99(ms)", "Priority degr-p99(ms)",
					"SPTF fg-p95(ms)", "Priority fg-p95(ms)", "degr reads", "MTTR(s)"},
			}
			for fi, frac := range schedDegradedFracs {
				s := degraded[fi][0].Value().(schedDegradedOutcome)
				pr := degraded[fi][1].Value().(schedDegradedOutcome)
				b.AddRow(f2(frac), ms(s.degradedP99), ms(pr.degradedP99),
					ms(s.foregroundP95), ms(pr.foregroundP95),
					fmt.Sprintf("%d", s.degradedReads+pr.degradedReads), f2(pr.mttrS))
			}
			return []Table{a, b}
		},
	}
}
