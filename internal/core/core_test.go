package core

import (
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("Op strings wrong")
	}
	if !strings.HasPrefix(Op(9).String(), "Op(") {
		t.Error("unknown Op should format numerically")
	}
}

func TestRequestTimes(t *testing.T) {
	r := &Request{Arrival: 10, Start: 15, Finish: 18}
	if r.ResponseTime() != 8 {
		t.Errorf("response = %g", r.ResponseTime())
	}
	if r.ServiceTime() != 3 {
		t.Errorf("service = %g", r.ServiceTime())
	}
	r.Blocks = 4
	if r.Bytes(512) != 2048 {
		t.Errorf("bytes = %d", r.Bytes(512))
	}
}

func TestIdentityLayout(t *testing.T) {
	var l IdentityLayout
	if l.Name() != "simple" {
		t.Errorf("name = %q", l.Name())
	}
	for _, lbn := range []int64{0, 1, 1 << 40} {
		if l.Map(lbn) != lbn {
			t.Errorf("Map(%d) = %d", lbn, l.Map(lbn))
		}
	}
}

// echoDevice records the LBN it was asked to access.
type echoDevice struct {
	lastLBN int64
}

func (d *echoDevice) Name() string    { return "echo" }
func (d *echoDevice) Capacity() int64 { return 1000 }
func (d *echoDevice) SectorSize() int { return 512 }
func (d *echoDevice) Reset()          {}
func (d *echoDevice) Access(r *Request, _ float64) float64 {
	d.lastLBN = r.LBN
	return 1
}
func (d *echoDevice) EstimateAccess(r *Request, _ float64) float64 { return 2 }

// shiftLayout remaps LBNs by a constant offset (contiguity-preserving).
type shiftLayout struct{ by int64 }

func (s shiftLayout) Name() string        { return "shift" }
func (s shiftLayout) Map(lbn int64) int64 { return lbn + s.by }

// scrambleLayout breaks extents on purpose.
type scrambleLayout struct{}

func (scrambleLayout) Name() string        { return "scramble" }
func (scrambleLayout) Map(lbn int64) int64 { return lbn * 7 % 1000 }

func TestManagedDeviceRemaps(t *testing.T) {
	d := &echoDevice{}
	m := NewManagedDevice(d, shiftLayout{by: 100})
	req := &Request{LBN: 5, Blocks: 4}
	if svc := m.Access(req, 0); svc != 1 {
		t.Errorf("service = %g", svc)
	}
	if d.lastLBN != 105 {
		t.Errorf("device saw LBN %d, want 105", d.lastLBN)
	}
	// The caller's request is untouched.
	if req.LBN != 5 {
		t.Errorf("caller request mutated: %d", req.LBN)
	}
	if m.EstimateAccess(req, 0) != 2 {
		t.Error("estimate not forwarded")
	}
	if m.Name() != "echo/shift" {
		t.Errorf("name = %q", m.Name())
	}
	if m.Capacity() != 1000 || m.SectorSize() != 512 {
		t.Error("pass-through accessors wrong")
	}
}

func TestManagedDeviceNilLayoutIsIdentity(t *testing.T) {
	d := &echoDevice{}
	m := NewManagedDevice(d, nil)
	m.Access(&Request{LBN: 7, Blocks: 1}, 0)
	if d.lastLBN != 7 {
		t.Errorf("device saw %d, want 7", d.lastLBN)
	}
	if m.Name() != "echo/simple" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestManagedDevicePanicsOnSplitExtent(t *testing.T) {
	m := NewManagedDevice(&echoDevice{}, scrambleLayout{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for extent-splitting layout")
		}
	}()
	m.Access(&Request{LBN: 10, Blocks: 8}, 0)
}
