package stats

import (
	"math"
	"math/rand"
	"testing"
)

// relErr returns |got−want|/|want| with a floor on want's magnitude so
// near-zero quantiles compare absolutely.
func relErr(got, want float64) float64 {
	den := math.Abs(want)
	if den < 1e-9 {
		return math.Abs(got - want)
	}
	return math.Abs(got-want) / den
}

// TestSketchVsExactQuantiles is the property test behind the sketch's
// accuracy claim: on uniform, exponential and bimodal inputs the
// sketched p50/p95/p99 stay within the documented relative-error bound
// of the exact Sample quantiles. The asserted bound is 2×α: α from the
// bucket geometry plus slack for the rank discretization at the
// distribution tails.
func TestSketchVsExactQuantiles(t *testing.T) {
	const n = 50000
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() float64{
		"uniform":     func() float64 { return rng.Float64() * 100 },
		"exponential": func() float64 { return rng.ExpFloat64() * 10 },
		"bimodal": func() float64 {
			// A fast mode near 1 ms and a slow mode near 100 ms — the
			// shape of a response-time distribution during rebuild.
			if rng.Intn(2) == 0 {
				return math.Max(0.001, 1+rng.NormFloat64()*0.1)
			}
			return math.Max(0.001, 100+rng.NormFloat64()*5)
		},
	}
	bound := 2 * sketchAlpha
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			var exact Sample
			var sk Sketch
			for i := 0; i < n; i++ {
				x := draw()
				exact.Add(x)
				sk.Add(x)
			}
			for _, p := range []float64{50, 95, 99} {
				want := exact.Percentile(p)
				got := sk.Percentile(p)
				if e := relErr(got, want); e > bound {
					t.Errorf("p%g: sketch %.6g vs exact %.6g (rel err %.4f > %.4f)",
						p, got, want, e, bound)
				}
			}
			if sk.N() != int64(exact.N()) {
				t.Errorf("N = %d, want %d", sk.N(), exact.N())
			}
			if sk.Buckets() > 2*maxSketchBuckets {
				t.Errorf("bucket count %d exceeds hard cap", sk.Buckets())
			}
		})
	}
}

// TestSketchDistModes drives Dist in both modes over the same stream:
// moments must be identical (the Welford is shared), percentiles within
// the sketch bound, and the sketch mode must retain no observations.
func TestSketchDistModes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var exact, sketched Dist
	sketched.UseSketch()
	for i := 0; i < 20000; i++ {
		x := rng.ExpFloat64() * 5
		exact.Add(x)
		sketched.Add(x)
	}
	if exact.Mean() != sketched.Mean() || exact.N() != sketched.N() {
		t.Fatalf("moments diverged: mean %g vs %g, n %d vs %d",
			exact.Mean(), sketched.Mean(), exact.N(), sketched.N())
	}
	if exact.Min() != sketched.Min() || exact.Max() != sketched.Max() {
		t.Fatalf("extremes diverged")
	}
	for _, p := range []float64{50, 95, 99} {
		if e := relErr(sketched.Percentile(p), exact.Percentile(p)); e > 2*sketchAlpha {
			t.Errorf("p%g rel err %.4f", p, e)
		}
	}
	if got := sketched.Retained(); got != 0 {
		t.Errorf("sketch mode retained %d observations, want 0", got)
	}
	if got := exact.Retained(); got != 20000 {
		t.Errorf("exact mode retained %d observations, want 20000", got)
	}
	if !sketched.Sketched() || exact.Sketched() {
		t.Errorf("mode flags wrong: sketched=%v exact=%v", sketched.Sketched(), exact.Sketched())
	}
}

// TestSketchMidStreamSwitch pins UseSketch's migration contract: flipping
// after observations were added folds the retained sample into the
// sketch instead of dropping it.
func TestSketchMidStreamSwitch(t *testing.T) {
	var d Dist
	for i := 1; i <= 1000; i++ {
		d.Add(float64(i))
	}
	d.UseSketch()
	if d.Retained() != 0 {
		t.Fatalf("retained %d after switch", d.Retained())
	}
	if d.N() != 1000 {
		t.Fatalf("N = %d", d.N())
	}
	if e := relErr(d.Percentile(95), 950.05); e > 2*sketchAlpha {
		t.Errorf("p95 after migration: %g (rel err %.4f)", d.Percentile(95), e)
	}
	// Idempotent.
	d.UseSketch()
	if d.N() != 1000 {
		t.Fatalf("double UseSketch corrupted N: %d", d.N())
	}
}

// TestSketchEdgeCases covers the non-lognormal corners: emptiness,
// single values, exact zeros (per-phase dists are full of them), and
// the mirrored negative store (breakdown residues).
func TestSketchEdgeCases(t *testing.T) {
	var s Sketch
	if s.Percentile(50) != 0 || s.N() != 0 || s.Mean() != 0 {
		t.Fatal("empty sketch not zero-valued")
	}
	s.Add(3.5)
	if s.Percentile(50) != 3.5 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatalf("single value: p50=%g min=%g max=%g", s.Percentile(50), s.Min(), s.Max())
	}

	var z Sketch
	for i := 0; i < 900; i++ {
		z.Add(0)
	}
	for i := 0; i < 100; i++ {
		z.Add(10)
	}
	if got := z.Percentile(50); got != 0 {
		t.Errorf("p50 over 90%% zeros = %g, want 0", got)
	}
	if e := relErr(z.Percentile(99), 10); e > 2*sketchAlpha {
		t.Errorf("p99 over zeros+tens = %g", z.Percentile(99))
	}

	var neg Sketch
	for i := 1; i <= 100; i++ {
		neg.Add(-float64(i))
	}
	p50 := neg.Percentile(50)
	if p50 > 0 || relErr(-p50, 50.5) > 3*sketchAlpha {
		t.Errorf("negative p50 = %g, want ≈ −50.5", p50)
	}
	if neg.Percentile(0) != -100 || neg.Percentile(100) != -1 {
		t.Errorf("negative extremes: p0=%g p100=%g", neg.Percentile(0), neg.Percentile(100))
	}
}

// TestSketchMerge asserts Merge is equivalent to interleaved Adds.
func TestSketchMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var a, b, all Sketch
	for i := 0; i < 10000; i++ {
		x := rng.ExpFloat64() * 3
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merged extremes diverged")
	}
	for _, p := range []float64{50, 95, 99} {
		if got, want := a.Percentile(p), all.Percentile(p); relErr(got, want) > 1e-12 {
			t.Errorf("p%g: merged %g vs combined %g", p, got, want)
		}
	}
}

// TestSketchBucketCap forces the collapse path with an absurd dynamic
// range and asserts the memory cap holds, no observation is lost, and
// upper quantiles keep their guarantee (the collapse is bottom-biased).
func TestSketchBucketCap(t *testing.T) {
	var s Sketch
	n := 0
	for e := -8; e <= 300; e += 2 {
		s.Add(math.Pow(10, float64(e)))
		n++
	}
	if s.pos.count != int64(n) {
		t.Fatalf("collapse lost observations: %d of %d", s.pos.count, n)
	}
	if got := s.Buckets(); got > maxSketchBuckets {
		t.Fatalf("bucket cap broken: %d > %d", got, maxSketchBuckets)
	}
	if e := relErr(s.Percentile(99), math.Pow(10, 296)); e > 2*sketchAlpha {
		t.Errorf("upper quantile after collapse off by %.4f", e)
	}
}

// TestSamplePercentileCache is the regression test for the sorted-copy
// cache: Percentile sorts once and reuses the sorted order across
// queries, and Add invalidates the cache so later queries stay correct.
func TestSamplePercentileCache(t *testing.T) {
	var s Sample
	for _, x := range []float64{9, 1, 5, 3, 7} {
		s.Add(x)
	}
	if s.sorted {
		t.Fatal("cache valid before any query")
	}
	if got := s.Percentile(50); got != 5 {
		t.Fatalf("p50 = %g, want 5", got)
	}
	if !s.sorted {
		t.Fatal("first query did not establish the cache")
	}
	// A second query must serve from the cached order.
	if got := s.Percentile(100); got != 9 {
		t.Fatalf("cached p100 = %g, want 9", got)
	}
	s.Add(11)
	if s.sorted {
		t.Fatal("Add did not invalidate the cache")
	}
	if got := s.Percentile(100); got != 11 {
		t.Fatalf("post-invalidation p100 = %g, want 11", got)
	}
	if !s.sorted {
		t.Fatal("re-query did not re-establish the cache")
	}
}

// BenchmarkSamplePercentileRepeated quantifies what the cache buys:
// repeated percentile queries over a static sample must not re-sort.
func BenchmarkSamplePercentileRepeated(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var s Sample
	for i := 0; i < 100000; i++ {
		s.Add(rng.Float64())
	}
	s.Percentile(50) // establish the cache outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Percentile(95)
		s.Percentile(99)
	}
}

// BenchmarkDistAdd compares the exact and sketched Add paths — the
// per-observation cost every measured completion pays.
func BenchmarkDistAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 8192)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 10
	}
	b.Run("exact", func(b *testing.B) {
		var d Dist
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Add(xs[i%len(xs)])
		}
	})
	b.Run("sketch", func(b *testing.B) {
		var d Dist
		d.UseSketch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Add(xs[i%len(xs)])
		}
	})
}

// BenchmarkMeterParallel times Meter.Add under full parallel
// contention — every worker hammering one shared Meter with no work
// between adds, the worst case the parallel experiment runner could
// ever present. The runner actually adds twice per *job* (milliseconds
// to seconds of simulation each), so the measured per-add cost bounds
// the runner's total Meter overhead at a few microseconds per batch;
// DESIGN.md records the conclusion.
func BenchmarkMeterParallel(b *testing.B) {
	var m Meter
	b.RunParallel(func(pb *testing.PB) {
		x := 0.0
		for pb.Next() {
			m.Add(x)
			x++
		}
	})
	if m.Snapshot().N() != int64(b.N) {
		b.Fatal("lost adds")
	}
}

// BenchmarkSketchPercentile times a quantile query over a populated
// sketch (a bucket walk, independent of observation count).
func BenchmarkSketchPercentile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var s Sketch
	for i := 0; i < 1000000; i++ {
		s.Add(rng.ExpFloat64() * 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Percentile(99)
	}
}
