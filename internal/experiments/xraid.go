package experiments

import (
	"fmt"
	"math/rand"

	"memsim/internal/array"
	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
	"memsim/internal/runner"
)

func init() { register("raid", raidPlan) }

// RAID quantifies the §6.2 claim at array level (extension; no paper
// figure): MEMS-based storage's near-zero read-modify-write
// repositioning "obviates the need for the many optimizations" built to
// hide RAID-5's small-write penalty on disks. Four-member RAID-5 arrays
// of each device type service 4 KB writes, degraded reads, and a full
// member rebuild.
func RAID(p Params) []Table { return mustRun(raidPlan(p)) }

func raidPlan(p Params) *Plan {
	trials := p.Trials / 4
	if trials < 50 {
		trials = 50
	}
	memsArr := func() *array.Array { return mustArray(memsMembers(4)) }
	diskArr := func() *array.Array { return mustArray(diskMembers(4)) }

	// One job per (metric, device) measurement — every job builds its own
	// array, so all eight run independently.
	type metric struct {
		name    string
		measure func(mk func() *array.Array) float64
	}
	metrics := []metric{
		{"4 KB RAID-5 write (read-modify-write)", func(mk func() *array.Array) float64 {
			return raidSmallWrite(mk(), trials, p.Seed)
		}},
		{"4 KB read, healthy", func(mk func() *array.Array) float64 {
			return raidRandomRead(mk(), trials, p.Seed, false)
		}},
		{"4 KB read, degraded (reconstruct)", func(mk func() *array.Array) float64 {
			return raidRandomRead(mk(), trials, p.Seed, true)
		}},
		{"member rebuild (full scan)", func(mk func() *array.Array) float64 {
			a := mk()
			a.FailMember(1)
			return a.RebuildTime(2700) / 1000 // seconds
		}},
	}
	devices := []struct {
		name string
		mk   func() *array.Array
	}{{"MEMS", memsArr}, {"disk", diskArr}}

	grid := make([][]*runner.Job, len(metrics))
	var jobs []*runner.Job
	for mi, m := range metrics {
		grid[mi] = make([]*runner.Job, len(devices))
		for di, dev := range devices {
			j := &runner.Job{
				Label: fmt.Sprintf("raid %s %s", dev.name, m.name),
				Seed:  p.Seed,
				Custom: func(*runner.Job) any {
					return m.measure(dev.mk)
				},
			}
			grid[mi][di] = j
			jobs = append(jobs, j)
		}
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID:      "raid",
				Title:   "4-member RAID-5: small-write and degraded-mode costs",
				Columns: []string{"metric", "MEMS array", "Atlas 10K array", "disk/MEMS"},
			}
			for mi, m := range metrics {
				mv := grid[mi][0].Value().(float64)
				dv := grid[mi][1].Value().(float64)
				if m.name == "member rebuild (full scan)" {
					t.AddRow(m.name, fmt.Sprintf("%.1f s", mv), fmt.Sprintf("%.1f s", dv),
						f2(dv/mv)+"×")
				} else {
					t.AddRow(m.name, ms(mv), ms(dv), f2(dv/mv)+"×")
				}
			}
			return []Table{t}
		},
	}
}

func memsMembers(n int) ([]core.Device, array.Config) {
	m := make([]core.Device, n)
	for i := range m {
		m[i] = mems.MustDevice(mems.DefaultConfig())
	}
	return m, array.Config{Level: array.RAID5, StripeUnit: 8}
}

func diskMembers(n int) ([]core.Device, array.Config) {
	m := make([]core.Device, n)
	for i := range m {
		m[i] = disk.MustDevice(disk.Atlas10K())
	}
	return m, array.Config{Level: array.RAID5, StripeUnit: 8}
}

func mustArray(members []core.Device, cfg array.Config) *array.Array {
	a, err := array.New(cfg, members)
	if err != nil {
		panic(err) // construction parameters are fixed above
	}
	return a
}

func raidSmallWrite(a *array.Array, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	now, sum := 0.0, 0.0
	for i := 0; i < trials; i++ {
		lbn := rng.Int63n(a.Capacity()-8) / 8 * 8
		svc := a.Access(&core.Request{Op: core.Write, LBN: lbn, Blocks: 8}, now)
		sum += svc
		now += svc
	}
	return sum / float64(trials)
}

func raidRandomRead(a *array.Array, trials int, seed int64, degraded bool) float64 {
	if degraded {
		a.FailMember(0)
	}
	rng := rand.New(rand.NewSource(seed))
	now, sum := 0.0, 0.0
	for i := 0; i < trials; i++ {
		lbn := rng.Int63n(a.Capacity()-8) / 8 * 8
		svc := a.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: 8}, now)
		sum += svc
		now += svc
	}
	return sum / float64(trials)
}
