package runner

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"memsim/internal/core"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

// tickDevice is a minimal deterministic device: every access costs svc ms.
type tickDevice struct{ svc float64 }

func (d *tickDevice) Name() string                                  { return "tick" }
func (d *tickDevice) Capacity() int64                               { return 1 << 20 }
func (d *tickDevice) SectorSize() int                               { return 512 }
func (d *tickDevice) Reset()                                        {}
func (d *tickDevice) Access(*core.Request, float64) float64         { return d.svc }
func (d *tickDevice) EstimateAccess(*core.Request, float64) float64 { return d.svc }

func openJob(label string, n int, seed int64) *Job {
	return &Job{
		Label:     label,
		Seed:      seed,
		Device:    func() core.Device { return &tickDevice{svc: 1} },
		Scheduler: func() core.Scheduler { return sched.NewFCFS() },
		Source: func(d core.Device) workload.Source {
			return workload.DefaultRandom(100, d.SectorSize(), d.Capacity(), n, seed)
		},
	}
}

func TestDeclarativeJobRuns(t *testing.T) {
	j := openJob("open", 50, 1)
	sum, err := Sequential().Run([]*Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if j.Result().Requests != 50 {
		t.Errorf("requests = %d, want 50", j.Result().Requests)
	}
	if j.SimMs <= 0 || sum.Sim.Mean() != j.SimMs {
		t.Errorf("sim time not recorded: job %g, summary %g", j.SimMs, sum.Sim.Mean())
	}
	if sum.Jobs != 1 || sum.Wall.N() != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestClosedJobRuns(t *testing.T) {
	reqs := make([]*core.Request, 10)
	for i := range reqs {
		reqs[i] = &core.Request{Op: core.Read, LBN: int64(i), Blocks: 1}
	}
	j := &Job{
		Label:  "closed",
		Device: func() core.Device { return &tickDevice{svc: 2} },
		Source: func(core.Device) workload.Source { return workload.NewFromSlice(reqs) },
	}
	if _, err := Sequential().Run([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	if got := j.Result().Elapsed; got != 20 {
		t.Errorf("closed run elapsed = %g, want 20", got)
	}
}

func TestParallelMatchesSequentialResults(t *testing.T) {
	mk := func() []*Job {
		jobs := make([]*Job, 24)
		for i := range jobs {
			jobs[i] = openJob(fmt.Sprintf("job%d", i), 200, int64(i+1))
		}
		return jobs
	}
	seqJobs, parJobs := mk(), mk()
	if _, err := Sequential().Run(seqJobs); err != nil {
		t.Fatal(err)
	}
	if _, err := (&Context{Workers: 8}).Run(parJobs); err != nil {
		t.Fatal(err)
	}
	for i := range seqJobs {
		a, b := seqJobs[i].Result(), parJobs[i].Result()
		if a.Response.Mean() != b.Response.Mean() || a.Elapsed != b.Elapsed {
			t.Errorf("job %d diverged: sequential %v vs parallel %v", i, a.String(), b.String())
		}
	}
}

func TestCustomJobValue(t *testing.T) {
	j := &Job{
		Label: "custom",
		Seed:  7,
		Custom: func(j *Job) any {
			rng := rand.New(rand.NewSource(j.Seed))
			j.SimMs = 42
			return rng.Int63()
		},
	}
	if _, err := (&Context{Workers: 4}).Run([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	want := rand.New(rand.NewSource(7)).Int63()
	if j.Value().(int64) != want {
		t.Errorf("custom value = %d, want %d", j.Value(), want)
	}
	if j.SimMs != 42 {
		t.Errorf("SimMs = %g, want 42", j.SimMs)
	}
}

func TestPanicBecomesErrorAndSiblingsStillRun(t *testing.T) {
	var ran atomic.Int32
	jobs := []*Job{
		{Label: "boom", Custom: func(*Job) any { panic("kaput") }},
		{Label: "ok", Custom: func(*Job) any { ran.Add(1); return "fine" }},
	}
	_, err := Sequential().Run(jobs)
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v, want panic converted to error naming the job", err)
	}
	if ran.Load() != 1 {
		t.Error("sibling job did not run after a failure")
	}
	if jobs[1].Value().(string) != "fine" {
		t.Error("sibling result lost")
	}
}

func TestMisdeclaredJobErrors(t *testing.T) {
	_, err := Sequential().Run([]*Job{{Label: "empty"}})
	if err == nil {
		t.Fatal("expected error for a job with no body")
	}
}

func TestReadBeforeRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic reading an unexecuted job")
		}
	}()
	(&Job{Label: "unread"}).Result()
}

func TestProgressEvents(t *testing.T) {
	const n = 9
	jobs := make([]*Job, n)
	for i := range jobs {
		jobs[i] = &Job{Label: fmt.Sprintf("j%d", i), Custom: func(*Job) any { return nil }}
	}
	var events []Event
	ctx := &Context{Workers: 4, Progress: func(ev Event) { events = append(events, ev) }}
	if _, err := ctx.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("got %d events, want %d", len(events), n)
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != n {
			t.Errorf("event %d = %d/%d, want %d/%d", i, ev.Done, ev.Total, i+1, n)
		}
	}
}

func TestErrorEventCarriesError(t *testing.T) {
	var got error
	ctx := &Context{Workers: 1, Progress: func(ev Event) {
		if ev.Err != nil {
			got = ev.Err
		}
	}}
	_, err := ctx.Run([]*Job{{Label: "bad", Custom: func(*Job) any { panic(errors.New("x")) }}})
	if err == nil || got == nil {
		t.Errorf("error not surfaced: run err %v, event err %v", err, got)
	}
}

func TestEmptyBatch(t *testing.T) {
	sum, err := (&Context{}).Run(nil)
	if err != nil || sum.Jobs != 0 {
		t.Errorf("empty batch: sum=%+v err=%v", sum, err)
	}
}

func TestDeriveSeedStable(t *testing.T) {
	a := DeriveSeed(1, "fig6 SPTF rate=1500")
	b := DeriveSeed(1, "fig6 SPTF rate=1500")
	c := DeriveSeed(1, "fig6 SPTF rate=2000")
	if a != b {
		t.Error("DeriveSeed not stable")
	}
	if a == c {
		t.Error("DeriveSeed should separate distinct labels")
	}
}

// Exercise the worker pool under the race detector with real contention:
// many jobs, progress callback, shared meters.
func TestPoolUnderLoad(t *testing.T) {
	jobs := make([]*Job, 64)
	for i := range jobs {
		jobs[i] = openJob(fmt.Sprintf("load%d", i), 100, int64(i))
	}
	var last int32
	ctx := &Context{Workers: 8, Progress: func(ev Event) { atomic.StoreInt32(&last, int32(ev.Done)) }}
	sum, err := ctx.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 64 || sum.Wall.N() != 64 || atomic.LoadInt32(&last) != 64 {
		t.Errorf("summary %+v, last event %d", sum, last)
	}
	_ = sim.Options{} // keep the sim import for the declarative types
}

// labelProbe records the run labels of observed completions; safe for
// single-worker use only.
type labelProbe struct{ labels []string }

func (p *labelProbe) Observe(ev sim.ProbeEvent) {
	if ev.Kind == sim.EventComplete {
		p.labels = append(p.labels, ev.Run)
	}
}

func TestContextProbeObservesJobs(t *testing.T) {
	// A context probe hears every declarative job's lifecycle, each event
	// stamped with the job's label, in declaration order under Workers: 1.
	lp := &labelProbe{}
	jobs := []*Job{openJob("alpha", 3, 1), openJob("beta", 2, 2)}
	c := &Context{Workers: 1, Probe: lp}
	if _, err := c.Run(jobs); err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "alpha", "alpha", "beta", "beta"}
	if len(lp.labels) != len(want) {
		t.Fatalf("labels = %v, want %v", lp.labels, want)
	}
	for i := range want {
		if lp.labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", lp.labels, want)
		}
	}
}

func TestContextProbeComposesWithJobProbe(t *testing.T) {
	// A job that declares its own probe (the phases experiment's
	// collector) still feeds the shared context probe.
	pc := sim.NewPhaseCollector()
	j := openJob("both", 4, 3)
	j.Options.Probe = pc
	lp := &labelProbe{}
	c := &Context{Workers: 1, Probe: lp}
	if _, err := c.Run([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	if pc.Stats().Requests != 4 {
		t.Errorf("job's own collector saw %d requests, want 4", pc.Stats().Requests)
	}
	if len(lp.labels) != 4 || lp.labels[0] != "both" {
		t.Errorf("shared probe saw %v", lp.labels)
	}
	if j.Result().Phases == nil {
		t.Error("Result.Phases lost in probe composition")
	}
}

func TestCustomJobsAreNotProbed(t *testing.T) {
	lp := &labelProbe{}
	ran := false
	j := &Job{Label: "custom", Custom: func(*Job) any { ran = true; return 7 }}
	c := &Context{Workers: 1, Probe: lp}
	if _, err := c.Run([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	if !ran || j.Value() != 7 {
		t.Fatalf("custom job did not run: %v", j.Value())
	}
	if len(lp.labels) != 0 {
		t.Errorf("custom job leaked %v to the context probe", lp.labels)
	}
}

func TestErrorsJoinInDeclarationOrder(t *testing.T) {
	jobs := []*Job{
		{Label: "first-bad", Custom: func(*Job) any { panic("alpha") }},
		{Label: "fine", Custom: func(*Job) any { return nil }},
		{Label: "second-bad", Custom: func(*Job) any { panic("beta") }},
	}
	_, err := (&Context{Workers: 3}).Run(jobs)
	if err == nil {
		t.Fatal("expected joined error")
	}
	msg := err.Error()
	ai, bi := strings.Index(msg, "alpha"), strings.Index(msg, "beta")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("errors not joined in declaration order: %q", msg)
	}
	if jobs[0].Err() == nil || jobs[1].Err() != nil || jobs[2].Err() == nil {
		t.Errorf("per-job errors: %v / %v / %v", jobs[0].Err(), jobs[1].Err(), jobs[2].Err())
	}
}

func TestWriteArtifactAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.csv")
	if err := WriteArtifact(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "a,b\n1,2\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "a,b\n1,2\n" {
		t.Fatalf("artifact content = %q, err = %v", got, err)
	}

	// A failing render must leave the previous version untouched and no
	// temporary files behind.
	renderErr := errors.New("simulated crash mid-render")
	err = WriteArtifact(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return renderErr
	})
	if !errors.Is(err, renderErr) {
		t.Fatalf("render error not propagated: %v", err)
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "a,b\n1,2\n" {
		t.Errorf("failed render clobbered the artifact: %q, err = %v", got, err)
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		for _, e := range ents {
			t.Logf("left behind: %s", e.Name())
		}
		t.Errorf("%d directory entries after failed render, want 1", len(ents))
	}

	// A fresh path with a failing render must not create the file at all.
	missing := filepath.Join(t.TempDir(), "never.csv")
	if err := WriteArtifact(missing, func(io.Writer) error { return renderErr }); err == nil {
		t.Fatal("expected error")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Errorf("failed render created the artifact: %v", err)
	}

	// An unwritable directory errors instead of panicking.
	if err := WriteArtifact("/nonexistent-dir/x.csv", func(io.Writer) error { return nil }); err == nil {
		t.Error("expected error for unwritable directory")
	}
}
