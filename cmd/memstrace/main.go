// memstrace generates, inspects and replays storage traces in the
// repository's text format (one "<time-ms> <r|w> <lbn> <blocks>" record
// per line).
//
// Usage:
//
//	memstrace -gen cello -count 50000 -o cello.txt   # generate
//	memstrace -gen tpcc -scale 4 -o tpcc.txt
//	memstrace -stats cello.txt                       # summarize
//	memstrace -replay cello.txt -device mems -sched SPTF -o run.jsonl
//	                                                 # replay through the
//	                                                 # simulator, emitting
//	                                                 # the lifecycle JSONL
//
// Replay drives the trace through the open-arrival simulation loop on the
// chosen device and scheduler, writes one JSON lifecycle record per event
// (the same schema as memsbench -trace, documented in README.md) and
// prints a per-phase service summary to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/trace"
	"memsim/internal/workload"
)

func main() {
	var (
		gen      = flag.String("gen", "", "generate a synthetic trace: cello | tpcc")
		count    = flag.Int("count", 50000, "records to generate")
		capacity = flag.Int64("capacity", 0, "device capacity in sectors (default: the paper's MEMS device)")
		scale    = flag.Float64("scale", 1, "scale factor applied to arrival times")
		out      = flag.String("o", "", "output file (default stdout)")
		statsF   = flag.String("stats", "", "summarize an existing trace file")
		replayF  = flag.String("replay", "", "replay an existing trace file through the simulator")
		device   = flag.String("device", "mems", "replay device: mems | disk")
		schedN   = flag.String("sched", "FCFS", "replay scheduler: "+strings.Join(sched.AllNames(), " | "))
		warmup   = flag.Int("warmup", 0, "replay completions to discard before measuring")
	)
	flag.Parse()

	if *capacity == 0 {
		g, err := mems.NewGeometry(mems.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		*capacity = g.TotalSectors
	}

	switch {
	case *statsF != "":
		tr, err := readTrace(*statsF)
		if err != nil {
			fatal(err)
		}
		printStats(tr)
	case *replayF != "":
		if err := replay(*replayF, *device, *schedN, *scale, *warmup, *out); err != nil {
			fatal(err)
		}
	case *gen != "":
		var tr *trace.Trace
		switch *gen {
		case "cello":
			tr = trace.GenerateCello(trace.DefaultCello(*capacity, *count))
		case "tpcc":
			tr = trace.GenerateTPCC(trace.DefaultTPCC(*capacity, *count))
		default:
			fatal(fmt.Errorf("unknown generator %q (want cello or tpcc)", *gen))
		}
		if *scale != 1 {
			tr = tr.Scale(*scale)
		}
		w, closeOut, err := openOut(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(w, tr); err != nil {
			fatal(err)
		}
		if err := closeOut(); err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", tr.Len(), *out)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// replay runs a trace file through the simulator on the named device and
// scheduler, streaming lifecycle JSONL to outPath (stdout when empty) and
// a per-phase summary to stderr.
func replay(path, device, schedName string, scale float64, warmup int, outPath string) error {
	dev, err := newDevice(device)
	if err != nil {
		return err
	}
	s, err := sched.New(schedName)
	if err != nil {
		return fmt.Errorf("%w (want one of %s)", err, strings.Join(sched.AllNames(), ", "))
	}
	tr, err := readTrace(path)
	if err != nil {
		return err
	}
	if scale != 1 {
		tr = tr.Scale(scale)
	}
	if err := tr.Validate(dev.Capacity()); err != nil {
		return fmt.Errorf("trace does not fit %s (%d sectors): %w", device, dev.Capacity(), err)
	}
	reqs := make([]*core.Request, tr.Len())
	for i, rec := range tr.Records {
		reqs[i] = rec.Request()
	}

	w, closeOut, err := openOut(outPath)
	if err != nil {
		return err
	}
	jp := sim.NewJSONLProbe(w)
	pc := sim.NewPhaseCollector()
	res := sim.Run(nil, dev, s, workload.NewFromSlice(reqs),
		sim.Options{Warmup: warmup, Probe: sim.MultiProbe{pc, jp}})
	if err := jp.Flush(); err != nil {
		return fmt.Errorf("writing lifecycle trace: %w", err)
	}
	if err := closeOut(); err != nil {
		return err
	}

	ps := res.Phases
	fmt.Fprintf(os.Stderr, "replayed %d requests (%s, %s), %.1f ms simulated\n",
		res.Requests, device, s.Name(), res.Elapsed)
	fmt.Fprintf(os.Stderr, "mean response   %8.3f ms   service %8.3f ms\n",
		res.Response.Mean(), res.Service.Mean())
	fmt.Fprintf(os.Stderr, "mean phases     seek %.3f  settle/rot %.3f  turnaround %.3f  transfer %.3f  overhead %.3f ms\n",
		ps.Seek.Mean(), ps.Settle.Mean(), ps.Turnaround.Mean(), ps.Transfer.Mean(), ps.Overhead.Mean())
	fmt.Fprintf(os.Stderr, "positioning     mean %.3f  p95 %.3f  p99 %.3f ms (share %.2f of service)\n",
		ps.Positioning.Mean(), ps.Positioning.P95(), ps.Positioning.P99(),
		ps.Positioning.Mean()/ps.Service.Mean())
	return nil
}

// newDevice builds the replay device, rejecting unknown names cleanly.
func newDevice(name string) (core.Device, error) {
	switch name {
	case "mems":
		return mems.NewDevice(mems.DefaultConfig())
	case "disk":
		return disk.NewDevice(disk.Atlas10K())
	default:
		return nil, fmt.Errorf("unknown device %q (want mems or disk)", name)
	}
}

// readTrace loads and parses a trace file.
func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f, path)
}

// openOut resolves the -o destination: stdout when empty, otherwise a
// freshly created file. Directories and uncreatable paths become clean
// errors before any simulation work starts.
func openOut(path string) (io.Writer, func() error, error) {
	if path == "" {
		return os.Stdout, func() error { return nil }, nil
	}
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		return nil, nil, fmt.Errorf("-o %s: is a directory", path)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("-o %s: %w", path, err)
	}
	return f, f.Close, nil
}

func printStats(tr *trace.Trace) {
	s := tr.Summarize()
	fmt.Printf("trace            %s\n", tr.Name)
	fmt.Printf("records          %d\n", s.Records)
	fmt.Printf("duration         %.1f s\n", s.DurationMs/1000)
	fmt.Printf("mean rate        %.1f req/s\n", s.MeanRate)
	fmt.Printf("read fraction    %.2f\n", float64(s.Reads)/float64(s.Records))
	fmt.Printf("mean size        %.1f sectors (%.1f KB)\n", s.MeanBlocks, s.MeanBlocks*512/1024)
	fmt.Printf("sequential frac  %.3f\n", s.SeqFraction)
	fmt.Printf("LBN span         %d sectors (%.2f GB)\n", s.UniqueRegion, float64(s.UniqueRegion)*512/1e9)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memstrace:", err)
	os.Exit(1)
}
