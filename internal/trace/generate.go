package trace

import (
	"fmt"
	"math/rand"

	"memsim/internal/core"
)

// CelloConfig parameterizes the synthetic Cello-like trace. The HP Cello
// trace (Ruemmler & Wilkes 1993) captured a week of activity from a
// program-development/mail/news server; its salient structure, reproduced
// here, is: bursty arrivals (think-time gaps punctuated by activity
// bursts), a write-heavy mix (~55% writes dominated by metadata and log
// updates), a small set of hot regions absorbing much of the traffic, and
// occasional long sequential read runs.
type CelloConfig struct {
	// Capacity and SectorSize describe the target device.
	Capacity   int64
	SectorSize int
	// Count is the number of requests to generate.
	Count int
	// MeanRate is the long-run average arrival rate, requests/s.
	MeanRate float64
	// HotRegions is the number of hot spots (file-system metadata areas).
	HotRegions int
	// HotFraction is the probability a request targets a hot region.
	HotFraction float64
	// ReadFraction is the probability of a read (0.45 for Cello).
	ReadFraction float64
	// Seed makes the trace reproducible.
	Seed int64
}

// DefaultCello returns the configuration used by the Fig. 7 reproduction.
func DefaultCello(capacity int64, count int) CelloConfig {
	return CelloConfig{
		Capacity:     capacity,
		SectorSize:   512,
		Count:        count,
		MeanRate:     40,
		HotRegions:   8,
		HotFraction:  0.6,
		ReadFraction: 0.45,
		Seed:         1992, // the trace year
	}
}

// GenerateCello builds the synthetic Cello-like trace.
func GenerateCello(cfg CelloConfig) *Trace {
	if cfg.Capacity <= 0 || cfg.Count <= 0 || cfg.MeanRate <= 0 || cfg.HotRegions <= 0 {
		panic(fmt.Sprintf("trace: invalid cello config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{Name: "cello-synthetic"}

	// Hot regions: small extents scattered over the device, with a skewed
	// popularity (region 0 is the hottest — the file-system log/metadata).
	type region struct{ start, size int64 }
	regions := make([]region, cfg.HotRegions)
	for i := range regions {
		size := int64(2048 + rng.Intn(8192)) // 1–5 MB extents
		regions[i] = region{start: rng.Int63n(cfg.Capacity - size), size: size}
	}

	// Arrivals: on/off bursts. Burst lengths are geometric; within a
	// burst, interarrivals are short exponentials; between bursts, long
	// idle gaps. The duty cycle is tuned to hit MeanRate on average.
	burstGapMs := 1000.0 / cfg.MeanRate / 4 // in-burst mean interarrival
	now := 0.0
	emitted := 0
	seqRun := 0
	var seqNext int64
	for emitted < cfg.Count {
		burst := 4 + rng.Intn(24)
		for b := 0; b < burst && emitted < cfg.Count; b++ {
			now += rng.ExpFloat64() * burstGapMs
			rec := Record{TimeMs: now}
			switch {
			case seqRun > 0:
				// Continue a sequential read run (a large file read).
				rec.Op = core.Read
				rec.Blocks = 16
				rec.LBN = seqNext
				seqNext += int64(rec.Blocks)
				seqRun--
				if seqNext+64 >= cfg.Capacity {
					seqRun = 0
				}
			case rng.Float64() < cfg.HotFraction:
				// Hot-region access: small and write-dominated (metadata
				// and log updates are what make Cello write-heavy).
				rec.Op = core.Write
				if rng.Float64() < 0.30 {
					rec.Op = core.Read
				}
				ri := int(float64(cfg.HotRegions) * rng.Float64() * rng.Float64()) // skew toward region 0
				r := regions[ri]
				rec.Blocks = 2 + 2*rng.Intn(4) // 1–4 KB
				rec.LBN = r.start + rng.Int63n(r.size-int64(rec.Blocks))
			default:
				// Cold access; occasionally starts a sequential run.
				rec.Op = core.Write
				if rng.Float64() < cfg.ReadFraction {
					rec.Op = core.Read
				}
				rec.Blocks = 8 + 8*rng.Intn(3)
				rec.LBN = rng.Int63n(cfg.Capacity - 4096)
				if rec.Op == core.Read && rng.Float64() < 0.10 {
					seqRun = 8 + rng.Intn(40)
					seqNext = rec.LBN + int64(rec.Blocks)
				}
			}
			t.Records = append(t.Records, rec)
			emitted++
		}
		// Idle gap between bursts; tuned so overall rate ≈ MeanRate:
		// a burst of mean 16 requests spans ~16·burstGap; idle adds the
		// remaining 3/4 of the period.
		now += rng.ExpFloat64() * 16 * burstGapMs * 3
	}
	return t
}

// TPCCConfig parameterizes the synthetic TPC-C-like trace. The paper's
// TPC-C trace came from a 1 GB SQL Server database striped over two
// drives; the property the paper highlights (§4.3) is "many
// concurrently-pending requests with very small inter-LBN distances":
// bursts of page accesses landing close together in hot tables, which
// LBN-based schedulers cannot order well but SPTF can.
type TPCCConfig struct {
	// Capacity and SectorSize describe the target device.
	Capacity   int64
	SectorSize int
	// Count is the number of requests.
	Count int
	// MeanRate is the average arrival rate, requests/s.
	MeanRate float64
	// DatabaseBytes is the size of the database extent (1 GB).
	DatabaseBytes int64
	// PageBytes is the database page size (8 KB).
	PageBytes int
	// Tables is the number of table extents within the database.
	Tables int
	// ReadFraction is the probability of a read (0.55: OLTP mixes
	// reads with update writes and log appends).
	ReadFraction float64
	// Seed makes the trace reproducible.
	Seed int64
}

// DefaultTPCC returns the configuration used by the Fig. 7 reproduction.
func DefaultTPCC(capacity int64, count int) TPCCConfig {
	dbBytes := int64(1) << 30
	if max := capacity * 512 / 2; dbBytes > max {
		dbBytes = max
	}
	return TPCCConfig{
		Capacity:      capacity,
		SectorSize:    512,
		Count:         count,
		MeanRate:      120,
		DatabaseBytes: dbBytes,
		PageBytes:     8192,
		Tables:        9, // TPC-C's table count
		ReadFraction:  0.55,
		Seed:          1999,
	}
}

// GenerateTPCC builds the synthetic TPC-C-like trace.
func GenerateTPCC(cfg TPCCConfig) *Trace {
	if cfg.Capacity <= 0 || cfg.Count <= 0 || cfg.MeanRate <= 0 || cfg.Tables <= 0 ||
		cfg.PageBytes < cfg.SectorSize || cfg.DatabaseBytes <= 0 {
		panic(fmt.Sprintf("trace: invalid tpcc config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{Name: "tpcc-synthetic"}

	pageBlocks := cfg.PageBytes / cfg.SectorSize
	dbBlocks := cfg.DatabaseBytes / int64(cfg.SectorSize)
	if dbBlocks > cfg.Capacity*3/4 {
		dbBlocks = cfg.Capacity * 3 / 4
	}
	// The database occupies one extent; the log occupies a separate
	// extent after it.
	dbStart := int64(0)
	logStart := dbBlocks
	logSize := cfg.Capacity / 16
	if logStart+logSize > cfg.Capacity {
		logSize = cfg.Capacity - logStart
	}

	// Tables split the database extent; popularity is skewed (the stock
	// and order-line tables absorb most traffic). Within a table, a hot
	// window of recently-touched pages moves slowly, creating the
	// near-by concurrent requests the paper describes.
	type table struct {
		start, blocks int64
		weight        float64
		hot           int64 // hot window center
	}
	tables := make([]table, cfg.Tables)
	per := dbBlocks / int64(cfg.Tables)
	cum := 0.0
	for i := range tables {
		w := 1.0 / float64(i+1) // Zipf-ish popularity
		cum += w
		tables[i] = table{start: int64(i) * per, blocks: per, weight: w, hot: rng.Int63n(per)}
	}

	now := 0.0
	var logNext int64
	meanGap := 1000.0 / cfg.MeanRate
	for emitted := 0; emitted < cfg.Count; {
		// Transactions arrive in bursts of page accesses (a new-order
		// transaction touches ~10 pages nearly at once), concentrated on
		// one table's hot window — this is what produces the paper's
		// "many concurrently-pending requests with very small inter-LBN
		// distances" (§4.3).
		now += rng.ExpFloat64() * meanGap * 8
		x := rng.Float64() * cum
		ti := 0
		for acc := 0.0; ti < len(tables)-1; ti++ {
			acc += tables[ti].weight
			if x < acc {
				break
			}
		}
		tb := &tables[ti]
		burst := 4 + rng.Intn(12)
		for b := 0; b < burst && emitted < cfg.Count; b++ {
			now += rng.ExpFloat64() * meanGap / 4
			rec := Record{TimeMs: now}
			if rng.Float64() < 0.15 {
				// Log append: sequential writes in the log extent.
				rec.Op = core.Write
				rec.Blocks = pageBlocks
				rec.LBN = logStart + logNext
				logNext += int64(pageBlocks)
				if logNext+int64(pageBlocks) >= logSize {
					logNext = 0 // log wraps
				}
			} else {
				// Page access near the transaction table's hot window:
				// 85% within a ±1 MB window, the rest anywhere in the
				// table.
				var off int64
				if rng.Float64() < 0.85 {
					span := int64(128 * pageBlocks) // ±1 MB window
					off = tb.hot + rng.Int63n(2*span+1) - span
				} else {
					off = rng.Int63n(tb.blocks)
				}
				off -= off % int64(pageBlocks)
				if off < 0 {
					off = 0
				}
				if off+int64(pageBlocks) > tb.blocks {
					off = tb.blocks - int64(pageBlocks)
					off -= off % int64(pageBlocks)
				}
				rec.Op = core.Write
				if rng.Float64() < cfg.ReadFraction {
					rec.Op = core.Read
				}
				rec.Blocks = pageBlocks
				rec.LBN = dbStart + tb.start + off
				// Drift the hot window occasionally.
				if rng.Float64() < 0.02 {
					tb.hot = rng.Int63n(tb.blocks)
				}
			}
			t.Records = append(t.Records, rec)
			emitted++
		}
	}
	t.sortByTime()
	return t
}
