// memsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	memsbench                     # run every artifact at full size
//	memsbench -run fig6           # one artifact
//	memsbench -run fig6,table2    # several
//	memsbench -quick              # reduced sizes (seconds instead of minutes)
//	memsbench -csv -o results/    # write one CSV per table instead of text
//	memsbench -parallel 8         # worker-pool width (default: NumCPU)
//	memsbench -progress           # report per-job completions to stderr
//	memsbench -list               # list artifact IDs
//	memsbench -run faultinject -fault-rate 0.02
//	                              # fault injection with an extra error rate
//	memsbench -run phases -trace run.jsonl
//	                              # request-lifecycle JSONL alongside the tables
//	memsbench -run fig11 -think-ms 10
//	                              # closed-loop terminals with think time
//	                              # (default 0: the paper's back-to-back regime)
//	memsbench -run mttdl -trials 500 -mttf-hours 2000
//	                              # Monte-Carlo MTTDL under the lifetime model
//	memsbench -run rebuild -rebuild-policy adaptive
//	                              # queue-aware rebuild pacing only
//	memsbench -run schedcost -sched Priority
//	                              # cost-model scheduler comparison, one extra policy
//	memsbench -run rebuild -member-sched Priority
//	                              # class-aware volume member queues during rebuild
//	memsbench -check              # simulator invariant checking on every run
//	memsbench -sketch             # bounded quantile sketches: O(1) stats
//	                              # memory at any request count, p95/p99
//	                              # within ±1% of exact
//	memsbench -requests 1000000 -sketch -run phases
//	                              # a million-request run that would
//	                              # otherwise retain every observation
//	memsbench -timeout 30s        # per-job wall-clock deadline
//	memsbench -run mttdl -checkpoint mttdl.ckpt
//	                              # resumable Monte-Carlo trials (byte-identical
//	                              # resume after an interrupt)
//
// Artifact IDs follow the paper: table1, fig5…fig11, table2, plus the
// quantified extensions fault, faultinject and power (DESIGN.md §2).
//
// Every experiment is a batch of isolated jobs (internal/runner), so
// -parallel N spreads the suite over N workers while producing output
// byte-identical to a sequential run.
//
// Lifecycle: SIGINT/SIGTERM cancels the in-flight jobs cooperatively
// (a second signal kills immediately); experiments whose jobs all
// finished still publish their artifacts, the rest are reported as
// cancelled, and the exit status is nonzero. Any job failure — panic,
// deadline, invariant violation — likewise exits nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"memsim/internal/experiments"
	"memsim/internal/runner"
	"memsim/internal/sched"
	"memsim/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind an exit code, parameterized for tests:
// 0 on success, 1 on any job or artifact failure (interruption
// included), 2 on flag-parse errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs     = fs.String("run", "all", "comma-separated artifact IDs, or \"all\"")
		quick      = fs.Bool("quick", false, "use reduced simulation sizes")
		csv        = fs.Bool("csv", false, "emit CSV files instead of text tables")
		out        = fs.String("o", "", "output directory for -csv (default: current)")
		list       = fs.Bool("list", false, "list artifact IDs and exit")
		seed       = fs.Int64("seed", 1, "random seed for all generators")
		reqs       = fs.Int("requests", 0, "override per-run request count (rescales warmup, closed runs and trials proportionally)")
		parallel   = fs.Int("parallel", runtime.NumCPU(), "simulation jobs to run concurrently")
		progress   = fs.Bool("progress", false, "report per-job completions to stderr")
		faultRate  = fs.Float64("fault-rate", 0, "extra transient-error rate for the faultinject sweep, in [0,1)")
		faultSeed  = fs.Int64("fault-seed", 0, "seed for fault-injection randomness (0: derive from -seed)")
		failDev    = fs.Int("fail-dev", 0, "volume member slot the rebuild experiment kills (reduced modulo the member count)")
		rebuild    = fs.Float64("rebuild", 0, "extra rebuild-throttle fraction for the rebuild sweep, in (0,1]; 0 keeps the standard sweep")
		policy     = fs.String("rebuild-policy", "", "rebuild pacing for the rebuild sweep: \"\" (fixed sweep + adaptive row), \"fixed\", or \"adaptive\"")
		mttfHours  = fs.Float64("mttf-hours", 0, "per-device exponential MTTF in hours for the mttdl experiment (0: default 1000, compressed scale)")
		trials     = fs.Int("trials", 0, "override the Monte-Carlo trial count (mttdl and other multi-trial experiments; 0 keeps the preset)")
		thinkMs    = fs.Float64("think-ms", 0, "mean exponential think time (ms) for closed-loop terminals (fig11); 0 keeps the paper's back-to-back regime")
		schedName  = fs.String("sched", "", "extra scheduling policy for the schedcost comparison (e.g. \"SettleAware\", \"Priority\"); empty keeps the standard pair")
		mSched     = fs.String("member-sched", "", "scheduling policy for the rebuild experiment's volume member queues (default SPTF)")
		tracePath  = fs.String("trace", "", "write request-lifecycle JSONL (one event per line) to this file; forces -parallel 1 so event order is deterministic")
		timeout    = fs.Duration("timeout", 0, "per-job wall-clock deadline; a job past it fails without killing the batch (0: none)")
		check      = fs.Bool("check", false, "enable simulator invariant self-checking on every run (conservation, clock monotonicity, breakdown reconciliation)")
		sketch     = fs.Bool("sketch", false, "use bounded quantile sketches for percentile statistics (O(1) memory at any request count; p95/p99 within ±1%)")
		checkpoint = fs.String("checkpoint", "", "atomic progress checkpoint for resumable experiments (mttdl): interrupted trials resume byte-identically")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "memsbench:", err)
		return 1
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}

	p := experiments.Default()
	if *quick {
		p = experiments.Quick()
	}
	if err := validateFlags(flagValues{
		faultRate: *faultRate, rebuild: *rebuild, rebuildPolicy: *policy,
		mttfHours: *mttfHours, trials: *trials, failDev: *failDev, thinkMs: *thinkMs,
		sched: *schedName, memberSched: *mSched,
		timeout: *timeout, checkpoint: *checkpoint,
	}); err != nil {
		return fail(err)
	}
	p.Seed = *seed
	p.FaultRate = *faultRate
	p.FaultSeed = *faultSeed
	p.FailDev = *failDev
	p.RebuildFrac = *rebuild
	p.RebuildPolicy = *policy
	p.MTTFHours = *mttfHours
	p.ThinkMs = *thinkMs
	p.Sched = *schedName
	p.MemberSched = *mSched
	p.Checkpoint = *checkpoint
	p = p.WithRequests(*reqs)
	// An explicit -trials wins over the preset and any -requests rescale.
	if *trials > 0 {
		p.Trials = *trials
	}

	ids := experiments.IDs()
	if *runIDs != "all" {
		ids = strings.Split(*runIDs, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	// SIGINT/SIGTERM cancel the batch cooperatively through the context;
	// stop() restores default handling afterwards, so a second signal
	// during artifact writing kills the process outright.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ctx := &runner.Context{Workers: *parallel, Ctx: sigCtx, Timeout: *timeout, Check: *check, Sketch: *sketch}
	var (
		traceFile  *os.File
		traceProbe *sim.JSONLProbe
	)
	if *tracePath != "" {
		f, err := openTrace(*tracePath)
		if err != nil {
			return fail(err)
		}
		traceFile = f
		if *parallel > 1 {
			fmt.Fprintln(stderr, "memsbench: -trace forces -parallel 1 for deterministic event order")
		}
		traceProbe = sim.NewJSONLProbe(traceFile)
		ctx.Workers = 1
		ctx.Probe = traceProbe
	}
	if *progress {
		ctx.Progress = func(ev runner.Event) {
			if ev.Err != nil {
				fmt.Fprintf(stderr, "memsbench: [%d/%d] %s: %v\n", ev.Done, ev.Total, ev.Label, ev.Err)
				return
			}
			fmt.Fprintf(stderr, "memsbench: [%d/%d] %s (%.0f ms wall, %.0f ms simulated)\n",
				ev.Done, ev.Total, ev.Label, ev.WallMs, ev.SimMs)
		}
	}

	outcomes, sum, err := experiments.RunEach(ctx, ids, p)
	if err != nil {
		// Batch construction failed (unknown ID): nothing ran.
		if traceFile != nil {
			os.Remove(traceFile.Name())
		}
		return fail(err)
	}

	interrupted := sigCtx.Err() != nil
	failed := 0
	for _, o := range outcomes {
		if o.Err != nil {
			failed++
			fmt.Fprintln(stderr, "memsbench:", o.Err)
		}
	}

	// The lifecycle trace spans the whole batch: with any job missing it
	// would masquerade as a complete record, so it only commits clean.
	if traceProbe != nil {
		if interrupted || failed > 0 {
			os.Remove(traceFile.Name())
			fmt.Fprintln(stderr, "memsbench: discarding incomplete lifecycle trace")
		} else {
			if err := traceProbe.Flush(); err != nil {
				os.Remove(traceFile.Name())
				return fail(fmt.Errorf("writing %s: %w", *tracePath, err))
			}
			if err := commitTrace(traceFile, *tracePath); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stderr, "memsbench: wrote lifecycle trace to %s\n", *tracePath)
		}
	}
	if *progress {
		simTotal := sum.Sim.Mean() * float64(sum.Sim.N())
		fmt.Fprintf(stderr, "memsbench: %d jobs in %.0f ms wall (%.0f ms simulated across jobs)\n",
			sum.Jobs, sum.ElapsedMs, simTotal)
	}

	// Publish every completed experiment — under interruption the ones
	// that finished are still correct, and the CSV path writes each
	// atomically.
	for _, o := range outcomes {
		if o.Err != nil {
			continue
		}
		for _, t := range o.Tables {
			if *csv {
				if err := writeCSV(t, *out, stdout); err != nil {
					return fail(err)
				}
			} else {
				t.Fprint(stdout)
			}
		}
	}

	switch {
	case interrupted:
		fmt.Fprintf(stderr, "memsbench: interrupted: %d/%d jobs done, %d cancelled; %d/%d artifacts intact\n",
			sum.Jobs-sum.Failed, sum.Jobs, sum.Cancelled, len(outcomes)-failed, len(outcomes))
		return 1
	case failed > 0:
		fmt.Fprintf(stderr, "memsbench: %d of %d artifacts failed\n", failed, len(outcomes))
		return 1
	}
	return 0
}

// flagValues collects the fault/rebuild/availability/lifecycle knobs
// subject to parse-time validation, so a bad value fails with a
// one-line error before any simulation starts.
type flagValues struct {
	faultRate     float64
	rebuild       float64
	rebuildPolicy string
	mttfHours     float64
	trials        int
	failDev       int
	thinkMs       float64
	sched         string
	memberSched   string
	timeout       time.Duration
	checkpoint    string
}

// validateFlags rejects out-of-range or nonsensical knob values.
func validateFlags(v flagValues) error {
	if v.faultRate < 0 || v.faultRate >= 1 || math.IsNaN(v.faultRate) {
		return fmt.Errorf("-fault-rate %g out of [0,1)", v.faultRate)
	}
	if v.rebuild < 0 || v.rebuild > 1 || math.IsNaN(v.rebuild) {
		return fmt.Errorf("-rebuild %g out of [0,1]", v.rebuild)
	}
	switch v.rebuildPolicy {
	case "", "fixed", "adaptive":
	default:
		return fmt.Errorf("-rebuild-policy %q must be \"fixed\" or \"adaptive\" (empty runs both)", v.rebuildPolicy)
	}
	if v.mttfHours < 0 || math.IsNaN(v.mttfHours) || math.IsInf(v.mttfHours, 0) {
		return fmt.Errorf("-mttf-hours %g must be a positive number of hours (0: default)", v.mttfHours)
	}
	if v.trials < 0 {
		return fmt.Errorf("-trials %d must be non-negative (0: preset default)", v.trials)
	}
	if v.failDev < 0 {
		return fmt.Errorf("-fail-dev %d must be non-negative", v.failDev)
	}
	if v.thinkMs < 0 {
		return fmt.Errorf("-think-ms %g must be non-negative", v.thinkMs)
	}
	if v.sched != "" {
		if _, err := sched.New(v.sched); err != nil {
			return fmt.Errorf("-sched %q must be one of %s", v.sched, strings.Join(sched.AllNames(), ", "))
		}
	}
	if v.memberSched != "" {
		if _, err := sched.New(v.memberSched); err != nil {
			return fmt.Errorf("-member-sched %q must be one of %s", v.memberSched, strings.Join(sched.AllNames(), ", "))
		}
	}
	if v.timeout < 0 {
		return fmt.Errorf("-timeout %s must be non-negative (0: no deadline)", v.timeout)
	}
	if v.checkpoint != "" {
		if info, err := os.Stat(v.checkpoint); err == nil && info.IsDir() {
			return fmt.Errorf("-checkpoint %s: is a directory", v.checkpoint)
		}
		if dir := filepath.Dir(v.checkpoint); dir != "." {
			if info, err := os.Stat(dir); err != nil || !info.IsDir() {
				return fmt.Errorf("-checkpoint %s: directory %s does not exist", v.checkpoint, dir)
			}
		}
	}
	return nil
}

// writeCSV writes one table's CSV artifact atomically.
func writeCSV(t experiments.Table, out string, stdout io.Writer) error {
	dir := out
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, t.ID+".csv")
	// Atomic: an interrupted run never leaves a truncated artifact.
	err := runner.WriteArtifact(path, func(w io.Writer) error {
		t.CSV(w)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "wrote", path)
	return nil
}

// openTrace validates the -trace output path and opens a temporary file
// next to it. The trace streams into the temporary file during the run;
// commitTrace renames it over the final path only after a clean flush,
// so an interrupted run never leaves a truncated trace where a complete
// one is expected.
func openTrace(path string) (*os.File, error) {
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		return nil, fmt.Errorf("-trace %s: is a directory", path)
	}
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("-trace %s: %w", path, err)
	}
	return f, nil
}

// commitTrace publishes the streamed temporary trace file at its final
// path.
func commitTrace(f *os.File, path string) error {
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("closing %s: %w", path, err)
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("-trace %s: %w", path, err)
	}
	return nil
}
