// indexed.go implements the indexed SPTF variants: cost-model
// scheduling whose per-dispatch work is bounded by a candidate window
// rather than the queue depth.
//
// Classic SPTF evaluates the device's positioning estimate for every
// pending request on every dispatch — O(n) cost-model calls, each a
// full mechanical computation (X/Y seek overlap, spring forces,
// settling). At the deep queues where position-aware scheduling
// matters most (hundreds of requests at saturation, §4.1's Fig. 5
// regime), that estimate scan dominates simulation time. The indexed
// variants keep the queue sorted by LBN and evaluate the cost model
// only on the requests nearest the head position in LBN order — the
// candidates that can plausibly win, since positioning cost grows with
// sled travel distance and LBN distance is the host-visible proxy for
// it (the same proxy SSTF_LBN trusts completely).
//
// The variants are deliberately opt-in ("SPTF_IDX", "SettleAware_IDX")
// rather than a drop-in replacement: with a finite window the pick can
// differ from the full scan's when a far-away request happens to be
// mechanically cheap (e.g. settle-dominated short Y distance at large
// X distance), so the dispatch sequence is not byte-identical to
// SPTF's and the golden equivalence suite keeps pinning the classic
// algorithms.
package sched

import (
	"sort"

	"memsim/internal/core"
)

// DefaultIndexWindow is the candidate window half-width for the
// indexed SPTF variants: the cost model is evaluated for at most this
// many requests on each side of the head position in LBN order.
// 16 per side keeps a dispatch at 32 estimates regardless of queue
// depth while covering every candidate that wins in practice — at
// MEMS geometry the seek component dominates past a few cylinders of
// LBN distance, so the true cost minimum falls inside a much narrower
// LBN neighborhood than this.
const DefaultIndexWindow = 16

// IndexedSPTF is an SPTF-family scheduler over an LBN-sorted queue:
// Add inserts in LBN order (stable for equal LBNs), and Next evaluates
// the cost model only on the window of requests nearest the last
// dispatched position, picking the cheapest with the same strict-less
// tie-break discipline as SPTF (earliest in scan order wins; here scan
// order is ascending LBN). Per-dispatch cost-model work is O(window),
// queue maintenance O(n) pointer moves — a profitable trade because a
// mechanical estimate costs orders of magnitude more than a pointer
// copy.
type IndexedSPTF struct {
	q      []*core.Request // ascending LBN; stable among equals
	cost   core.CostModel
	name   string
	window int
	lastLBN
}

var _ core.Scheduler = (*IndexedSPTF)(nil)

// NewIndexedSPTF returns an empty indexed queue scoring by full
// estimated service time (core.AccessCost) with DefaultIndexWindow.
func NewIndexedSPTF() *IndexedSPTF {
	return NewIndexedCost("SPTF_IDX", core.AccessCost, DefaultIndexWindow)
}

// NewIndexedSettleAware returns an empty indexed queue scoring by
// core.SettleAwareCost with DefaultIndexWindow — the indexed
// counterpart of NewSettleAware.
func NewIndexedSettleAware() *IndexedSPTF {
	return NewIndexedCost("SettleAware_IDX", core.SettleAwareCost, DefaultIndexWindow)
}

// NewIndexedCost returns an indexed queue over an arbitrary cost model
// and window half-width, reported under the given name. It panics on a
// nil model or a non-positive window.
func NewIndexedCost(name string, cost core.CostModel, window int) *IndexedSPTF {
	if cost == nil {
		panic("sched: nil cost model")
	}
	if window <= 0 {
		panic("sched: non-positive index window")
	}
	return &IndexedSPTF{cost: cost, name: name, window: window}
}

// Name implements core.Scheduler.
func (s *IndexedSPTF) Name() string { return s.name }

// Len implements core.Scheduler.
func (s *IndexedSPTF) Len() int { return len(s.q) }

// Reset implements core.Scheduler, keeping queue capacity like FCFS.
func (s *IndexedSPTF) Reset() {
	clear(s.q)
	s.q, s.pos = s.q[:0], 0
}

// Add implements core.Scheduler: binary-search insertion keeps the
// queue LBN-sorted, with equal-LBN requests in arrival order.
func (s *IndexedSPTF) Add(r *core.Request) {
	i := sort.Search(len(s.q), func(i int) bool { return s.q[i].LBN > r.LBN })
	s.q = append(s.q, nil)
	copy(s.q[i+1:], s.q[i:])
	s.q[i] = r
}

// Next implements core.Scheduler: the cheapest request among the
// window nearest the head position in LBN order.
func (s *IndexedSPTF) Next(d core.Device, now float64) *core.Request {
	n := len(s.q)
	if n == 0 {
		return nil
	}
	// The window straddles the head position's insertion point.
	c := sort.Search(n, func(i int) bool { return s.q[i].LBN >= s.pos })
	lo, hi := c-s.window, c+s.window
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	best, bestT := -1, 0.0
	for i := lo; i < hi; i++ {
		if t := s.cost(d, s.q[i], now); best < 0 || t < bestT {
			best, bestT = i, t
		}
	}
	r := s.q[best]
	copy(s.q[best:], s.q[best+1:])
	s.q[n-1] = nil
	s.q = s.q[:n-1]
	s.dispatched(r)
	return r
}
