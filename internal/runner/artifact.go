package runner

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteArtifact renders an experiment artifact to path atomically: the
// render callback streams into a temporary file in the same directory,
// which replaces path in one rename only after the render and all
// writes succeed. An interrupted or failing render therefore never
// leaves a truncated artifact behind — the previous version of the
// file, if any, survives intact.
func WriteArtifact(path string, render func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("artifact %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = render(tmp); err != nil {
		return fmt.Errorf("artifact %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("artifact %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("artifact %s: %w", path, err)
	}
	return nil
}
