package core

import "fmt"

// Class tags a request with the role it plays in the system, so
// class-aware schedulers can order a volume member's queue by urgency
// rather than position alone: a degraded-mode read is already paying a
// reconstruction penalty and sits on a user's critical path, while a
// rebuild chunk is background work that only bounds the vulnerability
// window. Requests default to Foreground; the volume layer tags member
// ops as it forks them.
type Class uint8

const (
	// ClassForeground is ordinary user work (the default zero value).
	ClassForeground Class = iota
	// ClassDegradedRead is a foreground read served in degraded mode
	// (peer reconstruction or covered-spare redirect) — the latency the
	// paper's failover path is trying to bound.
	ClassDegradedRead
	// ClassRebuild is background rebuild traffic (chunk reads/writes).
	ClassRebuild

	// NumClasses sizes per-class accounting arrays.
	NumClasses = int(ClassRebuild) + 1
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassForeground:
		return "foreground"
	case ClassDegradedRead:
		return "degraded-read"
	case ClassRebuild:
		return "rebuild"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// CostModel scores a candidate request for dispatch at time now: lower
// is better. Schedulers built on a cost model (SPTF and its variants)
// take one at construction instead of hard-wiring d.EstimateAccess, so
// new policies plug in a scoring function rather than a new queue type.
// Implementations must not mutate device or request state.
type CostModel func(d Device, r *Request, now float64) float64

// AccessCost is the default cost model: the device's own estimate of
// the full service time, exactly what classical SPTF greedily minimizes.
func AccessCost(d Device, r *Request, now float64) float64 {
	return d.EstimateAccess(r, now)
}

// SettleAwareCost discounts the settle phase from the estimate. Settle
// is the unschedulable floor of MEMS positioning — every access pays it
// regardless of queue order — so ranking candidates by (service − settle)
// breaks ties on the seek work scheduling can actually avoid. For
// devices that cannot estimate a breakdown it degrades to AccessCost.
func SettleAwareCost(d Device, r *Request, now float64) float64 {
	bd, ok := TryEstimateBreakdown(d, r, now)
	if !ok {
		return d.EstimateAccess(r, now)
	}
	return bd.ServiceMs - bd.Settle
}

// BreakdownEstimator is implemented by device models that can estimate
// the per-phase decomposition of a prospective access without changing
// device state — the estimation-side counterpart of BreakdownReporter.
// The returned Breakdown's ServiceMs must equal EstimateAccess for the
// same request and time (tests enforce ≤1e-9).
type BreakdownEstimator interface {
	EstimateBreakdown(req *Request, now float64) Breakdown
}

// EstimateBreakdown returns the estimated per-phase decomposition of
// serving req on d at time now, without changing device state. Devices
// that do not implement BreakdownEstimator report their scalar estimate
// as an undecomposed ServiceMs, so callers always get a usable total.
func EstimateBreakdown(d Device, req *Request, now float64) Breakdown {
	if bd, ok := TryEstimateBreakdown(d, req, now); ok {
		return bd
	}
	return Breakdown{ServiceMs: d.EstimateAccess(req, now)}
}

// TryEstimateBreakdown is EstimateBreakdown without the scalar
// fallback: ok is false when d cannot decompose its estimate.
func TryEstimateBreakdown(d Device, req *Request, now float64) (Breakdown, bool) {
	if be, ok := d.(BreakdownEstimator); ok {
		return be.EstimateBreakdown(req, now), true
	}
	return Breakdown{}, false
}
