package experiments

import (
	"fmt"

	"memsim/internal/array"
	"memsim/internal/fault"
	"memsim/internal/runner"
)

func init() { register("mttdl", mttdlPlan) }

// DefaultMTTFHours is the per-device exponential MTTF used by the mttdl
// experiment when Params.MTTFHours is zero. It is deliberately
// compressed (real devices quote 10⁵–10⁶ hours) so a Monte-Carlo trial
// spans a tractable number of failure cycles; MTTDL scales as MTTF², so
// the MEMS-vs-disk ratio — the paper's §6 claim — is unaffected by the
// compression.
const DefaultMTTFHours = 1000

// mttdlMaxCycles bounds one trial's healthy→failure→repair cycles. At
// the default MTTF and measured rebuild windows a loss arrives within
// ~10³–10⁴ cycles, so 2²² leaves the censoring probability at e^-300
// territory; it exists so a degenerate window cannot loop forever.
const mttdlMaxCycles = 1 << 22

// mttdlOutcome is one (device, level) job's summary.
type mttdlOutcome struct {
	windowS  float64 // measured rebuild window (MTTR) in seconds
	sumMs    float64 // summed time-to-data-loss across trials
	trials   int
	censored int // trials that hit mttdlMaxCycles without a loss
}

// mttdlHours is the trial-mean time to data loss in hours.
func (o mttdlOutcome) mttdlHours() float64 {
	if o.trials == 0 {
		return 0
	}
	return o.sumMs / float64(o.trials) / 3.6e6
}

// MTTDL (extension) closes the §6 availability argument quantitatively:
// how long does a redundant volume survive when whole-device failures
// arrive from an exponential lifetime model? Each (device, level) job
// first measures the volume's real rebuild window — an actual RunVolume
// member kill and online rebuild at throttle 0.3, foreground traffic
// competing in the queues — then Monte-Carlo samples the two-state
// renewal process: draw the first member death, and the volume dies if
// the next death among the survivors lands inside the measured window,
// else the spare covers and the cycle repeats. Trials share per-trial
// seeds across device types (common random numbers), so the MEMS/disk
// MTTDL ratio concentrates tightly around the rebuild-window ratio
// (~3.7–4×) instead of drowning in lifetime variance.
func MTTDL(p Params) []Table { return mustRun(mttdlPlan(p)) }

func mttdlPlan(p Params) *Plan {
	mttfHours := p.MTTFHours
	if mttfHours <= 0 {
		mttfHours = DefaultMTTFHours
	}
	mttfMs := mttfHours * 3600 * 1000
	trials := p.Trials
	if trials < 1 {
		trials = 1
	}

	levels := []struct {
		name string
		cfg  array.VolumeConfig
	}{
		{"mirror", rebuildMirrorCfg()},
		{"parity", rebuildParityCfg()},
	}
	devices := rebuildDevices()

	grid := make([][]*runner.Job, len(levels))
	var jobs []*runner.Job
	for li, lv := range levels {
		grid[li] = make([]*runner.Job, len(devices))
		for di, dev := range devices {
			lv, dev := lv, dev
			j := &runner.Job{
				Label: fmt.Sprintf("mttdl %s %s", dev.name, lv.name),
				Seed:  p.Seed,
			}
			j.Custom = func(job *runner.Job) any {
				// The vulnerability window is measured, not assumed: one
				// real failover run under foreground load at throttle 0.3
				// (the rebuild artifact's middle operating point).
				w := rebuildRun(job, lv.cfg, dev.mk, dev.rate, 0.3, nil, p)
				out := mttdlOutcome{windowS: w.mttrS, trials: trials}
				windowMs := w.mttrS * 1000
				if windowMs <= 0 {
					// Rebuild never completed (degenerate sizing): without a
					// window the renewal chain is meaningless — report the
					// run rather than spinning every trial to the cycle cap.
					out.trials = 0
					return out
				}
				for i := 0; i < trials; i++ {
					// The trial label omits the device, so MEMS and disk
					// draw identical lifetimes and differ only in window.
					seed := runner.DeriveSeed(p.Seed, fmt.Sprintf("mttdl %s trial %d", lv.name, i))
					s := fault.NewLifetimeSampler(mttfMs, seed)
					t, lost := fault.TimeToDataLoss(s, lv.cfg.Members, windowMs, mttdlMaxCycles)
					out.sumMs += t
					if !lost {
						out.censored++
					}
				}
				return out
			}
			grid[li][di] = j
			jobs = append(jobs, j)
		}
	}

	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID: "mttdl",
				Title: fmt.Sprintf("Monte-Carlo MTTDL, per-device MTTF %g h (compressed), %d trials, window measured at throttle 0.3",
					mttfHours, trials),
				Columns: []string{"volume", "MEMS window(s)", "disk window(s)",
					"MEMS MTTDL(h)", "disk MTTDL(h)", "MEMS/disk", "censored"},
			}
			for li, lv := range levels {
				m := grid[li][0].Value().(mttdlOutcome)
				d := grid[li][1].Value().(mttdlOutcome)
				ratio := 0.0
				if d.mttdlHours() > 0 {
					ratio = m.mttdlHours() / d.mttdlHours()
				}
				t.AddRow(lv.name, f2(m.windowS), f2(d.windowS),
					f2(m.mttdlHours()), f2(d.mttdlHours()), f2(ratio),
					fmt.Sprintf("%d", m.censored+d.censored))
			}
			return []Table{t}
		},
	}
}
