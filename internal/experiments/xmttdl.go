package experiments

import (
	"fmt"
	"sync"

	"memsim/internal/array"
	"memsim/internal/fault"
	"memsim/internal/runner"
)

func init() { register("mttdl", mttdlPlan) }

// DefaultMTTFHours is the per-device exponential MTTF used by the mttdl
// experiment when Params.MTTFHours is zero. It is deliberately
// compressed (real devices quote 10⁵–10⁶ hours) so a Monte-Carlo trial
// spans a tractable number of failure cycles; MTTDL scales as MTTF², so
// the MEMS-vs-disk ratio — the paper's §6 claim — is unaffected by the
// compression.
const DefaultMTTFHours = 1000

// mttdlMaxCycles bounds one trial's healthy→failure→repair cycles. At
// the default MTTF and measured rebuild windows a loss arrives within
// ~10³–10⁴ cycles, so 2²² leaves the censoring probability at e^-300
// territory; it exists so a degenerate window cannot loop forever.
const mttdlMaxCycles = 1 << 22

// mttdlCheckpointEvery is the trial interval between periodic
// checkpoint flushes. Trials are microseconds of CPU, so the interval
// is large — roughly a second of lost work per flush — and the flush
// that matters most (on cancellation) happens regardless.
const mttdlCheckpointEvery = 1 << 20

// mttdlOutcome is one (device, level) job's summary.
type mttdlOutcome struct {
	windowS  float64 // measured rebuild window (MTTR) in seconds
	sumMs    float64 // summed time-to-data-loss across trials
	trials   int
	censored int // trials that hit mttdlMaxCycles without a loss
}

// mttdlState is one job's resumable progress, serialized into the
// checkpoint file: the measured rebuild window plus the renewal chain's
// running sums through the first Trial trials. Because every trial
// draws from its own derived seed sub-stream, completing trials
// [Trial, n) on a resumed run reproduces the uninterrupted totals
// exactly.
type mttdlState struct {
	WindowS  float64 `json:"window_s"`
	Trial    int     `json:"trial"`
	SumMs    float64 `json:"sum_ms"`
	Censored int     `json:"censored"`
}

// mttdlHours is the trial-mean time to data loss in hours.
func (o mttdlOutcome) mttdlHours() float64 {
	if o.trials == 0 {
		return 0
	}
	return o.sumMs / float64(o.trials) / 3.6e6
}

// MTTDL (extension) closes the §6 availability argument quantitatively:
// how long does a redundant volume survive when whole-device failures
// arrive from an exponential lifetime model? Each (device, level) job
// first measures the volume's real rebuild window — an actual RunVolume
// member kill and online rebuild at throttle 0.3, foreground traffic
// competing in the queues — then Monte-Carlo samples the two-state
// renewal process: draw the first member death, and the volume dies if
// the next death among the survivors lands inside the measured window,
// else the spare covers and the cycle repeats. Trials share per-trial
// seeds across device types (common random numbers), so the MEMS/disk
// MTTDL ratio concentrates tightly around the rebuild-window ratio
// (~3.7–4×) instead of drowning in lifetime variance.
func MTTDL(p Params) []Table { return mustRun(mttdlPlan(p)) }

func mttdlPlan(p Params) *Plan {
	mttfHours := p.MTTFHours
	if mttfHours <= 0 {
		mttfHours = DefaultMTTFHours
	}
	mttfMs := mttfHours * 3600 * 1000
	trials := p.Trials
	if trials < 1 {
		trials = 1
	}

	levels := []struct {
		name string
		cfg  array.VolumeConfig
	}{
		{"mirror", rebuildMirrorCfg()},
		{"parity", rebuildParityCfg()},
	}
	devices := rebuildDevices()

	// The checkpoint opens lazily and once, shared by all four jobs (the
	// store itself is concurrency-safe). Binding the full Params set in
	// makes resuming under different flags an error instead of a silently
	// different answer.
	var (
		ckOnce sync.Once
		ck     *runner.Checkpoint
		ckErr  error
	)
	openCheckpoint := func() (*runner.Checkpoint, error) {
		if p.Checkpoint == "" {
			return nil, nil
		}
		ckOnce.Do(func() {
			ck, ckErr = runner.OpenCheckpoint(p.Checkpoint, "mttdl", p)
		})
		return ck, ckErr
	}

	grid := make([][]*runner.Job, len(levels))
	var jobs []*runner.Job
	for li, lv := range levels {
		grid[li] = make([]*runner.Job, len(devices))
		for di, dev := range devices {
			lv, dev := lv, dev
			j := &runner.Job{
				Label: fmt.Sprintf("mttdl %s %s", dev.name, lv.name),
				Seed:  p.Seed,
			}
			j.Custom = func(job *runner.Job) any {
				ckpt, err := openCheckpoint()
				if err != nil {
					return err
				}
				save := func(st mttdlState) error {
					if ckpt == nil {
						return nil
					}
					return ckpt.Save(job.Label, &st)
				}
				var st mttdlState
				if ckpt == nil || !ckpt.Load(job.Label, &st) {
					// Fresh start: the vulnerability window is measured, not
					// assumed — one real failover run under foreground load at
					// throttle 0.3 (the rebuild artifact's middle operating
					// point). An interruption here has nothing worth saving.
					w := rebuildRun(job, lv.cfg, dev.mk, dev.rate, 0.3, nil, p)
					if cerr := job.Ctx().Err(); cerr != nil {
						return cerr
					}
					st = mttdlState{WindowS: w.mttrS}
				}
				out := mttdlOutcome{windowS: st.WindowS, trials: trials}
				windowMs := st.WindowS * 1000
				if windowMs <= 0 {
					// Rebuild never completed (degenerate sizing): without a
					// window the renewal chain is meaningless — report the
					// run rather than spinning every trial to the cycle cap.
					out.trials = 0
					return out
				}
				for i := st.Trial; i < trials; i++ {
					if i&1023 == 0 && job.Ctx().Err() != nil {
						// Cancelled mid-chain: persist the completed trials so
						// the next run resumes instead of restarting, then fail
						// the job with the cancellation cause.
						if serr := save(st); serr != nil {
							return serr
						}
						return job.Ctx().Err()
					}
					// The trial label omits the device, so MEMS and disk
					// draw identical lifetimes and differ only in window.
					seed := runner.DeriveSeed(p.Seed, fmt.Sprintf("mttdl %s trial %d", lv.name, i))
					s := fault.NewLifetimeSampler(mttfMs, seed)
					t, lost := fault.TimeToDataLoss(s, lv.cfg.Members, windowMs, mttdlMaxCycles)
					st.SumMs += t
					if !lost {
						st.Censored++
					}
					st.Trial = i + 1
					if st.Trial%mttdlCheckpointEvery == 0 {
						if serr := save(st); serr != nil {
							return serr
						}
					}
				}
				if serr := save(st); serr != nil {
					return serr
				}
				out.sumMs, out.censored = st.SumMs, st.Censored
				return out
			}
			grid[li][di] = j
			jobs = append(jobs, j)
		}
	}

	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID: "mttdl",
				Title: fmt.Sprintf("Monte-Carlo MTTDL, per-device MTTF %g h (compressed), %d trials, window measured at throttle 0.3",
					mttfHours, trials),
				Columns: []string{"volume", "MEMS window(s)", "disk window(s)",
					"MEMS MTTDL(h)", "disk MTTDL(h)", "MEMS/disk", "censored"},
			}
			for li, lv := range levels {
				m := grid[li][0].Value().(mttdlOutcome)
				d := grid[li][1].Value().(mttdlOutcome)
				ratio := 0.0
				if d.mttdlHours() > 0 {
					ratio = m.mttdlHours() / d.mttdlHours()
				}
				t.AddRow(lv.name, f2(m.windowS), f2(d.windowS),
					f2(m.mttdlHours()), f2(d.mttdlHours()), f2(ratio),
					fmt.Sprintf("%d", m.censored+d.censored))
			}
			return []Table{t}
		},
	}
}
