// bench_test.go holds one testing.B benchmark per paper artifact (every
// table and figure in the evaluation, DESIGN.md §2) plus micro-benchmarks
// of the performance-critical model paths. The artifact benchmarks run
// the experiment harness at Quick parameters; `cmd/memsbench` regenerates
// the full-size numbers.
package memsim

import (
	"fmt"
	"testing"

	"memsim/internal/experiments"
)

// benchArtifact runs one registered experiment per iteration.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	p := experiments.Quick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, p)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatalf("experiment %s produced no tables", id)
		}
	}
}

// BenchmarkTable1DeviceModel regenerates Table 1 (device parameters and
// derived geometry).
func BenchmarkTable1DeviceModel(b *testing.B) { benchArtifact(b, "table1") }

// BenchmarkFig5DiskScheduling regenerates Fig. 5 (scheduler comparison on
// the Atlas 10K, random workload).
func BenchmarkFig5DiskScheduling(b *testing.B) { benchArtifact(b, "fig5") }

// BenchmarkFig6MEMSScheduling regenerates Fig. 6 (scheduler comparison on
// the MEMS device, random workload).
func BenchmarkFig6MEMSScheduling(b *testing.B) { benchArtifact(b, "fig6") }

// BenchmarkFig7TraceScheduling regenerates Fig. 7 (Cello and TPC-C traces
// on the MEMS device vs. scale factor).
func BenchmarkFig7TraceScheduling(b *testing.B) { benchArtifact(b, "fig7") }

// BenchmarkFig8SettlingTime regenerates Fig. 8 (settling-time
// sensitivity: 0 and 2 time constants).
func BenchmarkFig8SettlingTime(b *testing.B) { benchArtifact(b, "fig8") }

// BenchmarkFig9Subregions regenerates Fig. 9 (5×5 subregion service-time
// map, with and without settle).
func BenchmarkFig9Subregions(b *testing.B) { benchArtifact(b, "fig9") }

// BenchmarkFig10LargeTransfers regenerates Fig. 10 (256 KB service time
// vs. X seek distance).
func BenchmarkFig10LargeTransfers(b *testing.B) { benchArtifact(b, "fig10") }

// BenchmarkFig11Layouts regenerates Fig. 11 (layout schemes on MEMS,
// MEMS-no-settle, and the disk).
func BenchmarkFig11Layouts(b *testing.B) { benchArtifact(b, "fig11") }

// BenchmarkTable2ReadModifyWrite regenerates Table 2 (read-modify-write
// decomposition, disk vs. MEMS).
func BenchmarkTable2ReadModifyWrite(b *testing.B) { benchArtifact(b, "table2") }

// BenchmarkFaultTolerance regenerates the §6.1 fault-tolerance extension
// (data-loss probability, capacity tradeoff, remap neutrality).
func BenchmarkFaultTolerance(b *testing.B) { benchArtifact(b, "fault") }

// BenchmarkPowerManagement regenerates the §7 power extension
// (idle-policy energy/latency comparison).
func BenchmarkPowerManagement(b *testing.B) { benchArtifact(b, "power") }

// ─── Micro-benchmarks of the model fast paths ───────────────────────────

// BenchmarkMEMSAccessRandom4K measures a single random 4 KB access on the
// MEMS device model (seek solve + transfer accounting).
func BenchmarkMEMSAccessRandom4K(b *testing.B) {
	d, err := NewMEMSDevice(DefaultMEMSConfig())
	if err != nil {
		b.Fatal(err)
	}
	src := NewRandomWorkload(1000, d.SectorSize(), d.Capacity(), 4096, 7)
	var reqs []*Request
	for r := src.Next(); r != nil; r = src.Next() {
		reqs = append(reqs, r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(reqs[i%len(reqs)], 0)
	}
}

// BenchmarkDiskAccessRandom4K measures a single random 4 KB access on the
// disk model (seek curve + rotational position).
func BenchmarkDiskAccessRandom4K(b *testing.B) {
	d, err := NewDiskDevice(Atlas10KConfig())
	if err != nil {
		b.Fatal(err)
	}
	src := NewRandomWorkload(100, d.SectorSize(), d.Capacity(), 4096, 7)
	var reqs []*Request
	for r := src.Next(); r != nil; r = src.Next() {
		reqs = append(reqs, r)
	}
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += d.Access(reqs[i%len(reqs)], now)
	}
}

// BenchmarkSPTFDispatchQueue64 measures one SPTF scheduling decision over
// a 64-deep queue on the MEMS device — the cost that makes LBN-based
// approximations attractive (§4.4's "without the overhead of calculating
// the exact positioning times").
func BenchmarkSPTFDispatchQueue64(b *testing.B) {
	d, err := NewMEMSDevice(DefaultMEMSConfig())
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewScheduler("SPTF")
	if err != nil {
		b.Fatal(err)
	}
	src := NewRandomWorkload(1000, d.SectorSize(), d.Capacity(), 65536, 9)
	var reqs []*Request
	for r := src.Next(); r != nil; r = src.Next() {
		reqs = append(reqs, r)
	}
	i := 0
	refill := func() {
		for s.Len() < 64 {
			reqs[i%len(reqs)].Arrival = 0
			s.Add(reqs[i%len(reqs)])
			i++
		}
	}
	refill()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		r := s.Next(d, 0)
		d.Access(r, 0)
		b.StopTimer()
		refill()
		b.StartTimer()
	}
}

// BenchmarkSchedNext measures one scheduling decision at queue depths
// 8, 64 and 512 for every algorithm, on the MEMS device. The spread
// between FCFS (O(1), no estimates) and the cost-model schedulers
// (O(n) device estimates per dispatch) is the price of position-aware
// scheduling; comparing SPTF against SettleAware/Priority isolates the
// cost-model indirection's overhead.
func BenchmarkSchedNext(b *testing.B) {
	d, err := NewMEMSDevice(DefaultMEMSConfig())
	if err != nil {
		b.Fatal(err)
	}
	src := NewRandomWorkload(1000, d.SectorSize(), d.Capacity(), 65536, 9)
	var reqs []*Request
	for r := src.Next(); r != nil; r = src.Next() {
		reqs = append(reqs, r)
	}
	for _, name := range AllSchedulerNames() {
		for _, depth := range []int{8, 64, 512} {
			b.Run(fmt.Sprintf("%s/depth=%d", name, depth), func(b *testing.B) {
				s, err := NewScheduler(name)
				if err != nil {
					b.Fatal(err)
				}
				i := 0
				refill := func() {
					for s.Len() < depth {
						reqs[i%len(reqs)].Arrival = 0
						s.Add(reqs[i%len(reqs)])
						i++
					}
				}
				refill()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					r := s.Next(d, 0)
					d.Access(r, 0)
					b.StopTimer()
					refill()
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkSimulationThroughput measures end-to-end simulated requests
// per wall-second for the full queueing loop (MEMS + SPTF).
func BenchmarkSimulationThroughput(b *testing.B) {
	d, err := NewMEMSDevice(DefaultMEMSConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		s, _ := NewScheduler("SPTF")
		src := NewRandomWorkload(1000, d.SectorSize(), d.Capacity(), 2000, int64(n))
		res := Simulate(d, s, src, SimOptions{})
		if res.Requests != 2000 {
			b.Fatalf("completed %d", res.Requests)
		}
	}
}

// ─── Extension artifact benchmarks ──────────────────────────────────────

// BenchmarkRAIDSmallWrites regenerates the §6.2 array-level extension
// (RAID-5 small writes, degraded mode, rebuild).
func BenchmarkRAIDSmallWrites(b *testing.B) { benchArtifact(b, "raid") }

// BenchmarkCacheStudy regenerates the §2.4.11 speed-matching-buffer
// extension.
func BenchmarkCacheStudy(b *testing.B) { benchArtifact(b, "cache") }

// BenchmarkAgingAblation regenerates the SPTF-aging ablation.
func BenchmarkAgingAblation(b *testing.B) { benchArtifact(b, "aging") }

// BenchmarkRemapStudy regenerates the §6.1.1 slip-vs-spare-tip remap
// extension.
func BenchmarkRemapStudy(b *testing.B) { benchArtifact(b, "remap") }

// BenchmarkGenerations regenerates the device-generation sensitivity
// study.
func BenchmarkGenerations(b *testing.B) { benchArtifact(b, "generations") }

// BenchmarkStartup regenerates the §6.3 startup/synchronous-write
// extension.
func BenchmarkStartup(b *testing.B) { benchArtifact(b, "startup") }

// BenchmarkShuffleStudy regenerates the §5.3 organ-pipe maintenance-cost
// extension.
func BenchmarkShuffleStudy(b *testing.B) { benchArtifact(b, "shuffle") }

// BenchmarkBusStudy regenerates the shared-interconnect extension.
func BenchmarkBusStudy(b *testing.B) { benchArtifact(b, "bus") }

// BenchmarkStripingStudy regenerates the multi-device volume extension.
func BenchmarkStripingStudy(b *testing.B) { benchArtifact(b, "striping") }

// BenchmarkSeekProfile regenerates the seek-curve tables.
func BenchmarkSeekProfile(b *testing.B) { benchArtifact(b, "seekprofile") }
