// Package physics models the mechanics of a MEMS media sled: a
// spring-mounted mass pulled by electrostatic comb actuators, as described
// in §2 of Griffin et al. (CMU-CS-00-136) and the companion modeling paper
// (Griffin/Schlosser/Ganger/Nagle, SIGMETRICS 2000).
//
// The sled obeys
//
//	ẍ = u·a − ω²·x,   u ∈ {−1, +1}
//
// where a is the actuator acceleration and the linear spring term reaches
// SpringFactor·a at ±HalfRange (so ω² = SpringFactor·a/HalfRange). Seeks
// are time-optimal bang-bang maneuvers: full acceleration toward the
// target followed by full deceleration. Because each control phase is a
// constant-force harmonic oscillator, the state traces a circle in
// (x, v/ω) phase space and the switch point can be found in closed form as
// the intersection of two circles — no numerical integration is needed on
// the simulation fast path.
//
// All quantities use SI units (meters, seconds); callers convert to the
// simulator's milliseconds at the device layer.
package physics

import (
	"fmt"
	"math"
)

// Sled describes the mechanical parameters of a media sled axis. The same
// parameters are used for the X (cross-track) and Y (along-track) axes.
type Sled struct {
	// Accel is the acceleration applied by the actuators, m/s²
	// (803.6 m/s² in the paper's Table 1).
	Accel float64

	// SpringFactor is the fraction of Accel exerted by the spring
	// suspension at full displacement (±HalfRange). The paper uses 75%.
	// Zero disables the spring term.
	SpringFactor float64

	// HalfRange is the maximum sled displacement from center, in meters.
	// The paper's 100 µm total mobility gives 50 µm.
	HalfRange float64
}

// Omega returns the angular frequency ω of the constant-force oscillator
// induced by the spring, in rad/s. It is zero when the sled has no spring
// term.
func (s *Sled) Omega() float64 {
	if s.SpringFactor == 0 {
		return 0
	}
	return math.Sqrt(s.SpringFactor * s.Accel / s.HalfRange)
}

// Plan is a two-phase bang-bang control plan: apply control U1 (±1) for T1
// seconds, then U2 for T2 seconds.
type Plan struct {
	U1 int
	T1 float64
	U2 int
	T2 float64
}

// Total returns the plan's total duration in seconds.
func (p Plan) Total() float64 { return p.T1 + p.T2 }

const twoPi = 2 * math.Pi

// angleCW returns the clockwise angular distance from angle `from` to
// angle `to`, in [0, 2π).
func angleCW(from, to float64) float64 {
	d := math.Mod(from-to, twoPi)
	if d < 0 {
		d += twoPi
	}
	return d
}

// SeekPlan computes the time-optimal two-phase bang-bang plan moving the
// sled from state (x0, v0) to state (x1, v1). The boolean result reports
// whether a two-phase plan exists; for the parameter ranges of MEMS-based
// storage devices (HalfRange·SpringFactor < equilibrium offset) it always
// does, but callers must handle false (SeekTime falls back to a composed
// maneuver through an intermediate rest state).
func (s *Sled) SeekPlan(x0, v0, x1, v1 float64) (Plan, bool) {
	if x0 == x1 && v0 == v1 {
		return Plan{U1: 1, U2: -1}, true
	}
	if s.Omega() == 0 {
		return s.seekPlanNoSpring(x0, v0, x1, v1)
	}
	return s.seekPlanSpring(x0, v0, x1, v1)
}

// seekPlanNoSpring solves the classical double-integrator minimum-time
// problem (ẍ = ±a).
func (s *Sled) seekPlanNoSpring(x0, v0, x1, v1 float64) (Plan, bool) {
	a := s.Accel
	best := Plan{}
	found := false
	// Strategy +a then −a: peak velocity vs ≥ max(v0, v1).
	if vs2 := (v0*v0+v1*v1)/2 + a*(x1-x0); vs2 >= 0 {
		vs := math.Sqrt(vs2)
		t1 := (vs - v0) / a
		t2 := (vs - v1) / a
		if t1 >= -1e-15 && t2 >= -1e-15 {
			best = Plan{U1: 1, T1: math.Max(t1, 0), U2: -1, T2: math.Max(t2, 0)}
			found = true
		}
	}
	// Strategy −a then +a: valley velocity vs ≤ min(v0, v1).
	if vs2 := (v0*v0+v1*v1)/2 - a*(x1-x0); vs2 >= 0 {
		vs := -math.Sqrt(vs2)
		t1 := (v0 - vs) / a
		t2 := (v1 - vs) / a
		if t1 >= -1e-15 && t2 >= -1e-15 {
			p := Plan{U1: -1, T1: math.Max(t1, 0), U2: 1, T2: math.Max(t2, 0)}
			if !found || p.Total() < best.Total() {
				best = p
				found = true
			}
		}
	}
	return best, found
}

// seekPlanSpring solves the minimum-time problem for the constant-force
// harmonic oscillator by intersecting the phase-space circles of the two
// control phases.
func (s *Sled) seekPlanSpring(x0, v0, x1, v1 float64) (Plan, bool) {
	w := s.Omega()
	a := s.Accel
	best := Plan{}
	found := false
	for _, u1 := range []int{1, -1} {
		u2 := -u1
		c1 := float64(u1) * a / (w * w)
		c2 := float64(u2) * a / (w * w)
		// Circle 1 carries the start state, circle 2 the target state,
		// both in (x, v/ω) coordinates where motion is clockwise at ω.
		r1 := math.Hypot(x0-c1, v0/w)
		r2 := math.Hypot(x1-c2, v1/w)
		// Intersection abscissa from subtracting the circle equations.
		denom := 2 * (c2 - c1)
		xs := (r1*r1 - r2*r2 - c1*c1 + c2*c2) / denom
		ws2 := r1*r1 - (xs-c1)*(xs-c1)
		if ws2 < 0 {
			if ws2 > -1e-9*r1*r1 {
				ws2 = 0 // tangent circles within floating-point noise
			} else {
				continue // this strategy cannot reach the target
			}
		}
		wsAbs := math.Sqrt(ws2)
		th0 := math.Atan2(v0/w, x0-c1)
		tht := math.Atan2(v1/w, x1-c2)
		for _, wsv := range []float64{wsAbs, -wsAbs} {
			thS1 := math.Atan2(wsv, xs-c1)
			thS2 := math.Atan2(wsv, xs-c2)
			t1 := angleCW(th0, thS1) / w
			t2 := angleCW(thS2, tht) / w
			// Snap near-full-circle phases caused by floating-point
			// noise when the start or target coincides with the switch
			// point.
			if twoPi-t1*w < 1e-9 {
				t1 = 0
			}
			if twoPi-t2*w < 1e-9 {
				t2 = 0
			}
			p := Plan{U1: u1, T1: t1, U2: u2, T2: t2}
			if !found || p.Total() < best.Total() {
				best = p
				found = true
			}
			if wsAbs == 0 {
				break // ±0 are the same intersection
			}
		}
	}
	return best, found
}

// SeekTime returns the minimum time, in seconds, to move the sled from
// state (x0, v0) to state (x1, v1). If no direct two-phase plan exists the
// maneuver is composed of two rest-to-rest seeks through the midpoint;
// this fallback is unreachable for the paper's device parameters but keeps
// the model total for arbitrary configurations.
func (s *Sled) SeekTime(x0, v0, x1, v1 float64) float64 {
	if p, ok := s.SeekPlan(x0, v0, x1, v1); ok {
		return p.Total()
	}
	// Compose: stop, seek to midpoint at rest, then proceed. Each leg is
	// a strictly easier problem (rest endpoints shrink the circles).
	mid := (x0 + x1) / 2
	t := s.SeekTime(x0, v0, mid, 0)
	return t + s.SeekTime(mid, 0, x1, v1)
}

// TurnaroundTime returns the time, in seconds, to reverse the sled's
// velocity from v to −v at position y: the "turnaround" of §2.3, used
// between track switches and for repeated access to the same sector. The
// spring restoring force makes this a function of both position and
// direction of motion (§2.4.4).
func (s *Sled) TurnaroundTime(y, v float64) float64 {
	return s.SeekTime(y, v, y, -v)
}

// Evolve advances state (x, v) under constant control u for t seconds and
// returns the new state. This is the exact closed-form solution used by
// SeekPlan; it is exported so device models and tests can reconstruct
// trajectories.
func (s *Sled) Evolve(x, v float64, u int, t float64) (x2, v2 float64) {
	w := s.Omega()
	ua := float64(u) * s.Accel
	if w == 0 {
		return x + v*t + 0.5*ua*t*t, v + ua*t
	}
	c := ua / (w * w)
	dx := x - c
	sin, cos := math.Sincos(w * t)
	return c + dx*cos + v/w*sin, -dx*w*sin + v*cos
}

// Apply runs plan p from state (x, v) using the closed-form evolution and
// returns the final state. Tests use it to verify that plans reach their
// targets.
func (s *Sled) Apply(x, v float64, p Plan) (x2, v2 float64) {
	x, v = s.Evolve(x, v, p.U1, p.T1)
	return s.Evolve(x, v, p.U2, p.T2)
}

// Integrate is a reference RK4 integrator for the sled ODE under plan p,
// stepping at dt. It exists to cross-validate the closed-form solution and
// is not used on the simulation fast path.
func (s *Sled) Integrate(x, v float64, p Plan, dt float64) (x2, v2 float64) {
	x, v = s.integratePhase(x, v, p.U1, p.T1, dt)
	return s.integratePhase(x, v, p.U2, p.T2, dt)
}

func (s *Sled) integratePhase(x, v float64, u int, t, dt float64) (float64, float64) {
	w2 := 0.0
	if s.SpringFactor != 0 {
		w2 = s.SpringFactor * s.Accel / s.HalfRange
	}
	acc := func(x, v float64) float64 { return float64(u)*s.Accel - w2*x }
	for t > 0 {
		h := dt
		if h > t {
			h = t
		}
		// Classical RK4 on the system (ẋ = v, v̇ = acc).
		k1x, k1v := v, acc(x, v)
		k2x, k2v := v+h/2*k1v, acc(x+h/2*k1x, v+h/2*k1v)
		k3x, k3v := v+h/2*k2v, acc(x+h/2*k2x, v+h/2*k2v)
		k4x, k4v := v+h*k3v, acc(x+h*k3x, v+h*k3v)
		x += h / 6 * (k1x + 2*k2x + 2*k3x + k4x)
		v += h / 6 * (k1v + 2*k2v + 2*k3v + k4v)
		t -= h
	}
	return x, v
}

// String implements fmt.Stringer for diagnostics.
func (p Plan) String() string {
	return fmt.Sprintf("plan{u=%+d %.3gs, u=%+d %.3gs}", p.U1, p.T1, p.U2, p.T2)
}
