// Package sched implements the four request-scheduling algorithms the
// paper compares (§4.1): First-Come-First-Served, Shortest-Seek-Time-First
// approximated by LBN distance (SSTF_LBN), Cyclical LOOK (C-LOOK), and
// Shortest-Positioning-Time-First (SPTF).
//
// All schedulers implement core.Scheduler. SSTF_LBN and C-LOOK use only
// logical block numbers, treating LBN distance as a proxy for positioning
// time — the information a host OS actually has (§4.1, Worthington et
// al.). SPTF asks the device model for an exact positioning estimate,
// which for disks captures rotational latency and for MEMS-based storage
// captures the overlapped X/Y seeks and settling time (§4.2).
package sched

import (
	"fmt"
	"sort"

	"memsim/internal/core"
)

// New constructs a scheduler by algorithm name: one of the paper's four
// ("FCFS", "SSTF_LBN", "C-LOOK", "SPTF"), a cost-model extension
// ("SettleAware", "Priority"), or an indexed large-queue variant
// ("SPTF_IDX", "SettleAware_IDX"). It returns an error for unknown
// names.
func New(name string) (core.Scheduler, error) {
	switch name {
	case "FCFS":
		return NewFCFS(), nil
	case "SSTF_LBN", "SSTF":
		return NewSSTF(), nil
	case "C-LOOK", "CLOOK":
		return NewCLOOK(), nil
	case "SPTF":
		return NewSPTF(), nil
	case "SettleAware":
		return NewSettleAware(), nil
	case "Priority":
		return NewPriority(), nil
	case "SPTF_IDX":
		return NewIndexedSPTF(), nil
	case "SettleAware_IDX":
		return NewIndexedSettleAware(), nil
	default:
		return nil, fmt.Errorf("sched: unknown algorithm %q", name)
	}
}

// Names lists the paper's four algorithms in its presentation order.
// Artifact sweeps iterate this list, so it deliberately excludes the
// extensions; see AllNames.
func Names() []string { return []string{"FCFS", "SSTF_LBN", "C-LOOK", "SPTF"} }

// AllNames lists every name New accepts: the paper's four, the
// cost-model extensions, and the indexed large-queue variants.
func AllNames() []string {
	return append(Names(), "SettleAware", "Priority", "SPTF_IDX", "SettleAware_IDX")
}

// FCFS services requests strictly in arrival order. It is the reference
// point that saturates first in Figs. 5 and 6.
type FCFS struct {
	q []*core.Request
}

// NewFCFS returns an empty FCFS queue.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements core.Scheduler.
func (f *FCFS) Name() string { return "FCFS" }

// Add implements core.Scheduler.
func (f *FCFS) Add(r *core.Request) { f.q = append(f.q, r) }

// Len implements core.Scheduler.
func (f *FCFS) Len() int { return len(f.q) }

// Reset implements core.Scheduler. The backing array is kept (elements
// cleared so serviced requests are not pinned) so a reused scheduler
// does not regrow its queue from scratch every run.
func (f *FCFS) Reset() {
	clear(f.q)
	f.q = f.q[:0]
}

// Next implements core.Scheduler.
func (f *FCFS) Next(core.Device, float64) *core.Request {
	if len(f.q) == 0 {
		return nil
	}
	r := f.q[0]
	// Shift rather than re-slice so the backing array does not pin every
	// serviced request.
	copy(f.q, f.q[1:])
	f.q[len(f.q)-1] = nil
	f.q = f.q[:len(f.q)-1]
	return r
}

// Requeue implements core.Requeuer: a request retried after a failed
// service visit goes back to the head of the queue, ahead of fresh
// arrivals — it already waited its turn once. The position-aware
// schedulers (SSTF_LBN, C-LOOK, SPTF) need no such method: they rescan
// the whole queue at every dispatch, so a retried request competes on
// position like any other and plain Add suffices.
func (f *FCFS) Requeue(r *core.Request) {
	f.q = append(f.q, nil)
	copy(f.q[1:], f.q)
	f.q[0] = r
}

// lastLBN tracks the block following the most recently dispatched request,
// the reference point for LBN-distance algorithms.
type lastLBN struct {
	pos int64
}

func (l *lastLBN) dispatched(r *core.Request) { l.pos = r.LBN + int64(r.Blocks) }

// SSTF schedules the pending request whose starting LBN is closest to the
// last accessed LBN ("SSTF_LBN" in the paper): a greedy policy with good
// average performance but poor starvation resistance.
type SSTF struct {
	q []*core.Request
	lastLBN
}

// NewSSTF returns an empty SSTF_LBN queue.
func NewSSTF() *SSTF { return &SSTF{} }

// Name implements core.Scheduler.
func (s *SSTF) Name() string { return "SSTF_LBN" }

// Add implements core.Scheduler.
func (s *SSTF) Add(r *core.Request) { s.q = append(s.q, r) }

// Len implements core.Scheduler.
func (s *SSTF) Len() int { return len(s.q) }

// Reset implements core.Scheduler, keeping queue capacity like FCFS.
func (s *SSTF) Reset() {
	clear(s.q)
	s.q, s.pos = s.q[:0], 0
}

// Next implements core.Scheduler.
func (s *SSTF) Next(core.Device, float64) *core.Request {
	if len(s.q) == 0 {
		return nil
	}
	best, bestDist := 0, int64(-1)
	for i, r := range s.q {
		d := r.LBN - s.pos
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return s.take(best)
}

func (s *SSTF) take(i int) *core.Request {
	r := s.q[i]
	s.q[i] = s.q[len(s.q)-1]
	s.q[len(s.q)-1] = nil
	s.q = s.q[:len(s.q)-1]
	s.dispatched(r)
	return r
}

// CLOOK services requests in ascending LBN order, starting over with the
// lowest pending LBN once no request lies ahead of the most recent one
// (Seaman et al., 1966). It trades a little average performance for the
// best starvation resistance of the four policies.
type CLOOK struct {
	q []*core.Request
	lastLBN
}

// NewCLOOK returns an empty C-LOOK queue.
func NewCLOOK() *CLOOK { return &CLOOK{} }

// Name implements core.Scheduler.
func (c *CLOOK) Name() string { return "C-LOOK" }

// Add implements core.Scheduler.
func (c *CLOOK) Add(r *core.Request) { c.q = append(c.q, r) }

// Len implements core.Scheduler.
func (c *CLOOK) Len() int { return len(c.q) }

// Reset implements core.Scheduler, keeping queue capacity like FCFS.
func (c *CLOOK) Reset() {
	clear(c.q)
	c.q, c.pos = c.q[:0], 0
}

// Next implements core.Scheduler.
func (c *CLOOK) Next(core.Device, float64) *core.Request {
	if len(c.q) == 0 {
		return nil
	}
	// The request with the smallest LBN ≥ pos; if none, wrap to the
	// smallest LBN overall.
	ahead, lowest := -1, 0
	for i, r := range c.q {
		if r.LBN < c.q[lowest].LBN {
			lowest = i
		}
		if r.LBN >= c.pos && (ahead < 0 || r.LBN < c.q[ahead].LBN) {
			ahead = i
		}
	}
	pick := ahead
	if pick < 0 {
		pick = lowest
	}
	r := c.q[pick]
	c.q[pick] = c.q[len(c.q)-1]
	c.q[len(c.q)-1] = nil
	c.q = c.q[:len(c.q)-1]
	c.dispatched(r)
	return r
}

// SPTF services the pending request with the smallest predicted cost
// under an injectable core.CostModel. The default model is the device's
// own service-time estimate from its current mechanical state — classic
// shortest-positioning-time-first (Seltzer et al.; Jacobson & Wilkes):
// for disks this accounts for rotational position; for MEMS-based
// storage it accounts for the parallel X/Y seeks, spring forces, and
// settling time. Variants plug in a different scoring function rather
// than a new queue type (see NewSettleAware).
//
// Ties break on queue position: among equal-cost candidates the
// earliest-scanned wins (strict-less comparison), and the internal scan
// order is arrival order permuted by swap-removal. Determinism tests
// pin this.
type SPTF struct {
	q    []*core.Request
	cost core.CostModel
	name string
}

// NewSPTF returns an empty SPTF queue scoring by full estimated service
// time (core.AccessCost).
func NewSPTF() *SPTF { return &SPTF{cost: core.AccessCost, name: "SPTF"} }

// NewSettleAware returns an SPTF queue scoring by core.SettleAwareCost:
// the estimate minus its settle phase. Settle is the unschedulable
// floor of MEMS positioning — every access pays it wherever the sled
// starts — so discounting it ranks candidates by the seek work the
// scheduler can actually avoid. On devices that cannot estimate a
// breakdown it behaves exactly like SPTF.
func NewSettleAware() *SPTF {
	return &SPTF{cost: core.SettleAwareCost, name: "SettleAware"}
}

// NewCostSPTF returns an SPTF queue over an arbitrary cost model,
// reported under the given name. It panics on a nil model.
func NewCostSPTF(name string, cost core.CostModel) *SPTF {
	if cost == nil {
		panic("sched: nil cost model")
	}
	return &SPTF{cost: cost, name: name}
}

// Name implements core.Scheduler.
func (s *SPTF) Name() string { return s.name }

// Add implements core.Scheduler.
func (s *SPTF) Add(r *core.Request) { s.q = append(s.q, r) }

// Len implements core.Scheduler.
func (s *SPTF) Len() int { return len(s.q) }

// Reset implements core.Scheduler, keeping queue capacity like FCFS.
func (s *SPTF) Reset() {
	clear(s.q)
	s.q = s.q[:0]
}

// Next implements core.Scheduler.
func (s *SPTF) Next(d core.Device, now float64) *core.Request {
	if len(s.q) == 0 {
		return nil
	}
	best, bestT := 0, 0.0
	for i, r := range s.q {
		t := s.cost(d, r, now)
		if i == 0 || t < bestT {
			best, bestT = i, t
		}
	}
	r := s.q[best]
	s.q[best] = s.q[len(s.q)-1]
	s.q[len(s.q)-1] = nil
	s.q = s.q[:len(s.q)-1]
	return r
}

// Drain removes and returns all pending requests in dispatch order —
// the order the scheduler would actually service them, which is what
// determinism tests need to observe. Callers that only care about
// queue contents regardless of policy should use DrainSorted.
func Drain(s core.Scheduler, d core.Device, now float64) []*core.Request {
	var out []*core.Request
	for s.Len() > 0 {
		out = append(out, s.Next(d, now))
	}
	return out
}

// DrainSorted removes all pending requests and returns them in
// ascending LBN order, independent of scheduling policy; tests use it
// to inspect queue contents.
func DrainSorted(s core.Scheduler, d core.Device, now float64) []*core.Request {
	out := Drain(s, d, now)
	sort.Slice(out, func(i, j int) bool { return out[i].LBN < out[j].LBN })
	return out
}
