// Package experiments regenerates every table and figure in the paper's
// evaluation, one function per artifact, plus the two quantified
// extensions (fault tolerance and power) described in DESIGN.md §2.
//
// Each experiment returns Tables: named, captioned, printable grids whose
// rows/series correspond to what the paper reports. Absolute numbers come
// from this repository's re-derived device models; EXPERIMENTS.md records
// the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Params sizes the simulations. Default is used by cmd/memsbench; Quick
// shrinks runs for tests and benchmarks.
type Params struct {
	// Requests per open-arrival simulation run.
	Requests int
	// Warmup completions excluded from statistics.
	Warmup int
	// ClosedRequests per closed-loop (service-time) run.
	ClosedRequests int
	// Trials for Monte-Carlo experiments.
	Trials int
	// Seed for all generators.
	Seed int64
}

// Default returns full-size parameters (minutes of CPU for the whole
// suite).
func Default() Params {
	return Params{Requests: 20000, Warmup: 2000, ClosedRequests: 10000, Trials: 2000, Seed: 1}
}

// Quick returns reduced parameters for tests and benchmarks (seconds).
func Quick() Params {
	return Params{Requests: 3000, Warmup: 300, ClosedRequests: 1500, Trials: 200, Seed: 1}
}

// Table is one printable result grid.
type Table struct {
	// ID is the artifact identifier ("fig6a", "table2", ...).
	ID string
	// Title is the caption.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are formatted value cells.
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "── %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Runner produces the tables for one experiment.
type Runner func(Params) []Table

// registry maps experiment IDs to runners, populated by each artifact
// file's init.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate registration of " + id)
	}
	registry[id] = r
}

// IDs returns the registered experiment identifiers in a stable order.
func IDs() []string {
	var ids []string
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given ID.
func Run(id string, p Params) ([]Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return r(p), nil
}

// RunAll executes every experiment in ID order.
func RunAll(p Params) []Table {
	var out []Table
	for _, id := range IDs() {
		ts, _ := Run(id, p)
		out = append(out, ts...)
	}
	return out
}

// ms formats a millisecond value for table cells.
func ms(v float64) string { return fmt.Sprintf("%.3f", v) }

// f2 formats a dimensionless value.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
