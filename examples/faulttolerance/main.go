// Fault-tolerance demo (§6): tip failures rain on a device; striping +
// Reed-Solomon ECC + spare-tip remapping keep it alive long past the
// point where a disk (one head failure = device loss) would have died.
// The demo also round-trips real data through the erasure code and shows
// the capacity ↔ fault-tolerance conversion.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"memsim"
)

func main() {
	// ── Survive a hail of tip failures ──────────────────────────────
	cfg := memsim.DefaultFaultConfig()
	arr, err := memsim.NewFaultArray(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2000))
	failed := 0
	for {
		tip := rng.Intn(cfg.Tips)
		ok, err := arr.FailTip(tip)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		failed = arr.FailedTips()
	}
	fmt.Printf("device with %d-tip stripes, %d ECC tips, %d spares:\n",
		cfg.DataTips, cfg.ECCTips, cfg.SpareTips)
	fmt.Printf("  survived %d random tip failures before data loss\n", failed)
	fmt.Printf("  (%d absorbed by spares, %d stripes degraded onto ECC)\n",
		cfg.SpareTips-arr.SparesLeft(), arr.DegradedStripes())
	fmt.Println("  a disk dies at failure #1 — its single head has no cover")

	// ── Monte-Carlo loss probability ────────────────────────────────
	fmt.Println("\nP(data loss | k random tip failures), 1000 trials:")
	for _, k := range []int{10, 100, 200, 400} {
		p, err := memsim.LossProbability(cfg, k, 1000, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%-4d %.3f\n", k, p)
	}

	// ── The erasure code actually recovers data ─────────────────────
	rs, err := memsim.NewErasureCode(64, 2) // one 512 B sector across 64 tips
	if err != nil {
		log.Fatal(err)
	}
	shards := make([][]byte, 66)
	for i := range shards {
		shards[i] = make([]byte, 8) // 8 data bytes per tip sector
		if i < 64 {
			rng.Read(shards[i])
		}
	}
	orig := append([]byte(nil), shards[13]...)
	if err := rs.Encode(shards); err != nil {
		log.Fatal(err)
	}
	// Two tips die mid-read: their shards become erasures.
	present := make([]bool, 66)
	for i := range present {
		present[i] = true
	}
	present[13], present[51] = false, false
	for i := range shards[13] {
		shards[13][i], shards[51][i] = 0, 0
	}
	if err := rs.Reconstruct(shards, present); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nerasure code: lost tips 13 and 51 mid-sector, recovered=%v\n",
		string(fmt.Sprintf("%x", shards[13])) == fmt.Sprintf("%x", orig))

	// ── Capacity ↔ fault-tolerance tradeoff (§6.1.1) ────────────────
	tight := memsim.FaultConfig{Tips: 6400, DataTips: 64, ECCTips: 0, SpareTips: 0}
	arr2, err := memsim.NewFaultArray(tight)
	if err != nil {
		log.Fatal(err)
	}
	added := arr2.ConvertDataToSpares()
	fmt.Printf("\ntraded one stripe group of capacity for %d spare tips\n", added)
}
