package experiments

func init() { register("fig5", fig5Plan) }

// diskRates sweeps the Atlas-10K-class disk from light load to beyond
// FCFS saturation (mean service ≈ 8.4 ms ⇒ FCFS saturates near
// 120 req/s; the seek-reducing schedulers carry further, as in Fig. 5).
var diskRates = []float64{20, 40, 60, 80, 100, 120, 140, 160, 180}

// Fig5 reproduces Fig. 5: the four scheduling algorithms on the Atlas 10K
// under the random workload — (a) average response time, (b) squared
// coefficient of variation.
func Fig5(p Params) []Table { return mustRun(fig5Plan(p)) }

func fig5Plan(p Params) *Plan {
	return sweepPlan("fig5", "Atlas 10K", diskFactory, diskRates, p)
}
