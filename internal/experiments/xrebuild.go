package experiments

import (
	"fmt"

	"memsim/internal/array"
	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/mems"
	"memsim/internal/runner"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

func init() { register("rebuild", rebuildPlan) }

// Rebuild (extension) closes the §6.2 redundancy story dynamically: a
// member of a live redundant volume is killed mid-run and the volume
// keeps serving — degraded reads reconstruct from the peers, a hot
// spare takes over, and an online rebuild streams the dead member's
// contents back while competing with foreground traffic in the member
// queues. MEMS volumes close the vulnerability window several times
// faster than the Atlas 10K array at equal per-member capacity, at
// every rebuild-throttle setting, while degraded-mode foreground
// service stays in single milliseconds instead of tens.
func Rebuild(p Params) []Table { return mustRun(rebuildPlan(p)) }

// rebuildOutcome is one run's summary, returned by the job's Custom body.
type rebuildOutcome struct {
	mttrS       float64 // failure to rebuild completion, seconds
	healthyP95  float64 // foreground p95 before failure / after failover, ms
	degradedP95 float64 // foreground p95 while degraded, ms
	chunks      int
	lost        int
}

// Shared volume geometry for the rebuild and mttdl artifacts: equal
// per-member capacity for both device types — the full MEMS G1 sled
// (6,750,000 sectors = 2500 cylinder-sized rebuild chunks), well inside
// the Atlas 10K's 16.9 M sectors.
const (
	rebuildPerMember = 6750000
	rebuildChunk     = 2700
)

// rebuildParityCfg is the 4-member rotated-parity volume + hot spare.
func rebuildParityCfg() array.VolumeConfig {
	return array.VolumeConfig{
		Level: array.VolParity, Members: 4, Spares: 1,
		StripeUnit: rebuildChunk, PerMember: rebuildPerMember,
	}
}

// rebuildMirrorCfg is the mirrored pair + hot spare.
func rebuildMirrorCfg() array.VolumeConfig {
	return array.VolumeConfig{
		Level: array.VolMirror, Members: 2, Spares: 1,
		StripeUnit: rebuildChunk, PerMember: rebuildPerMember,
	}
}

// rebuildDevice pairs a device factory with a per-device arrival rate
// sized to comparable utilization (the disk volume saturates far below
// the MEMS volume — the fig. 6 regime).
type rebuildDevice struct {
	name string
	mk   core.DeviceFactory
	rate float64
}

func rebuildDevices() []rebuildDevice {
	return []rebuildDevice{
		{"MEMS", func() core.Device { return mems.MustDevice(mems.DefaultConfig()) }, 1000},
		{"Atlas 10K", func() core.Device { return newDisk() }, 150},
	}
}

func rebuildPlan(p Params) *Plan {
	// Policy selection (cmd/memsbench -rebuild-policy): the default ""
	// runs the fixed-throttle sweep plus the adaptive row, so the fixed
	// frontier is the baseline adaptive must beat; "fixed" reproduces the
	// historical sweep alone; "adaptive" runs only the adaptive row (the
	// fast CI smoke path).
	fracs := []float64{0.1, 0.3, 0.6, 1.0}
	if p.RebuildFrac > 0 {
		seen := false
		for _, f := range fracs {
			if f == p.RebuildFrac {
				seen = true
			}
		}
		if !seen {
			fracs = append(fracs, p.RebuildFrac)
		}
	}
	adaptive := p.RebuildPolicy != "fixed"
	if p.RebuildPolicy == "adaptive" {
		fracs = nil
	}

	devices := rebuildDevices()
	parityCfg := rebuildParityCfg()
	mirrorCfg := rebuildMirrorCfg()

	grid := make([][]*runner.Job, len(fracs))
	var jobs []*runner.Job
	for fi, frac := range fracs {
		grid[fi] = make([]*runner.Job, len(devices))
		for di, dev := range devices {
			dev, frac := dev, frac
			j := &runner.Job{
				Label: fmt.Sprintf("rebuild %s f=%g", dev.name, frac),
				Seed:  p.Seed,
			}
			j.Custom = func(job *runner.Job) any {
				out := rebuildRun(job, parityCfg, dev.mk, dev.rate, frac, nil, p)
				if err := job.Ctx().Err(); err != nil {
					return err
				}
				return out
			}
			grid[fi][di] = j
			jobs = append(jobs, j)
		}
	}
	var adaptiveJobs []*runner.Job
	if adaptive {
		adaptiveJobs = make([]*runner.Job, len(devices))
		for di, dev := range devices {
			dev := dev
			j := &runner.Job{
				Label: fmt.Sprintf("rebuild %s adaptive", dev.name),
				Seed:  p.Seed,
			}
			j.Custom = func(job *runner.Job) any {
				out := rebuildRun(job, parityCfg, dev.mk, dev.rate, 0, sim.AdaptiveRebuild{}, p)
				if err := job.Ctx().Err(); err != nil {
					return err
				}
				return out
			}
			adaptiveJobs[di] = j
			jobs = append(jobs, j)
		}
	}
	var mirror []*runner.Job
	if p.RebuildPolicy != "adaptive" {
		mirror = make([]*runner.Job, len(devices))
		for di, dev := range devices {
			dev := dev
			j := &runner.Job{
				Label: fmt.Sprintf("rebuild mirror %s f=0.3", dev.name),
				Seed:  p.Seed,
			}
			j.Custom = func(job *runner.Job) any {
				out := rebuildRun(job, mirrorCfg, dev.mk, dev.rate, 0.3, nil, p)
				if err := job.Ctx().Err(); err != nil {
					return err
				}
				return out
			}
			mirror[di] = j
			jobs = append(jobs, j)
		}
	}

	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			a := Table{
				ID:    "rebuild",
				Title: "online rebuild of a failed member, 4-member rotated-parity volume + hot spare (equal per-member capacity)",
				Columns: []string{"throttle", "MEMS MTTR(s)", "disk MTTR(s)", "disk/MEMS",
					"MEMS chunks", "lost requests"},
			}
			b := Table{
				ID:    "rebuild-fg",
				Title: "foreground p95 response (ms) around the failure, same runs",
				Columns: []string{"throttle", "MEMS healthy", "MEMS degraded",
					"disk healthy", "disk degraded"},
			}
			addRows := func(label string, mj, dj *runner.Job) {
				m := mj.Value().(rebuildOutcome)
				d := dj.Value().(rebuildOutcome)
				a.AddRow(label, f2(m.mttrS), f2(d.mttrS), f2(d.mttrS/m.mttrS),
					fmt.Sprintf("%d", m.chunks), fmt.Sprintf("%d", m.lost+d.lost))
				b.AddRow(label, ms(m.healthyP95), ms(m.degradedP95),
					ms(d.healthyP95), ms(d.degradedP95))
			}
			for fi, frac := range fracs {
				addRows(f2(frac), grid[fi][0], grid[fi][1])
			}
			if adaptive {
				addRows("adaptive", adaptiveJobs[0], adaptiveJobs[1])
			}
			out := []Table{a, b}
			if mirror != nil {
				c := Table{
					ID:      "rebuild-mirror",
					Title:   "mirrored pair + hot spare, rebuild throttle 0.3",
					Columns: []string{"device", "MTTR(s)", "p95 healthy(ms)", "p95 degraded(ms)"},
				}
				for di, dev := range devices {
					o := mirror[di].Value().(rebuildOutcome)
					c.AddRow(dev.name, f2(o.mttrS), ms(o.healthyP95), ms(o.degradedP95))
				}
				out = append(out, c)
			}
			return out
		},
	}
}

// rebuildRun drives one volume through a mid-run member failure and
// online rebuild, and distills the failover metrics. A non-nil policy
// paces the rebuild dynamically; nil selects the fixed-fraction
// throttle frac.
func rebuildRun(job *runner.Job, cfg array.VolumeConfig, mk core.DeviceFactory,
	rate, frac float64, policy sim.RebuildPolicy, p Params) rebuildOutcome {
	v, err := array.NewVolume(cfg)
	if err != nil {
		panic(err)
	}
	n := cfg.Devices()
	devs := make([]core.Device, n)
	scheds := make([]core.Scheduler, n)
	for i := range devs {
		devs[i] = mk()
		scheds[i] = memberSched(p)
	}
	// Kill the chosen member a quarter of the way through the arrival
	// stream, so the run measures healthy service on both sides of a
	// mid-run failure.
	failMs := 0.25 * float64(p.Requests) / rate * 1000
	// The full retry envelope rides along so -fault-rate layers transient
	// per-attempt errors on top of the scheduled device kill; at the
	// default rate 0 the budgets are never consulted and the run is
	// identical to a pure device-failure schedule.
	icfg := fault.DefaultInjectorConfig()
	icfg.Seed = p.faultSeed()
	icfg.TransientRate = p.FaultRate
	icfg.DeviceEvents = []fault.DeviceEvent{{AtMs: failMs, Dev: p.FailDev % cfg.Members}}
	inj, err := fault.NewInjector(icfg)
	if err != nil {
		panic(err)
	}
	src := workload.NewRandom(workload.RandomConfig{
		Rate:         rate,
		ReadFraction: 0.67,
		MeanBytes:    4096,
		MaxBytes:     32 * 1024,
		SectorSize:   devs[0].SectorSize(),
		Capacity:     cfg.Capacity(),
		Count:        p.Requests,
		Seed:         p.Seed,
	})
	res, err := sim.RunVolume(job.SimContext(), sim.VolumeSpec{
		Volume: v, Devices: devs, Scheds: scheds,
		RebuildChunk: int(cfg.StripeUnit), RebuildFrac: frac, RebuildPolicy: policy,
	}, src, job.SimOptions(sim.Options{Warmup: p.Warmup, Injector: inj}))
	if err != nil {
		panic(err)
	}
	job.SimMs = res.Elapsed
	vs := res.Volume
	return rebuildOutcome{
		mttrS:       vs.RebuildMs / 1000,
		healthyP95:  vs.Healthy.P95(),
		degradedP95: vs.Degraded.P95(),
		chunks:      vs.RebuildChunks,
		lost:        vs.LostRequests,
	}
}
