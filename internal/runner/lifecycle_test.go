package runner

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"memsim/internal/core"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

func TestJobTimeoutDeadlineExceeded(t *testing.T) {
	// A job that overruns Context.Timeout fails with DeadlineExceeded;
	// its siblings are unaffected and the summary splits the counts.
	slow := &Job{
		Label: "slow",
		Custom: func(j *Job) any {
			<-j.Ctx().Done() // park until the per-job deadline fires
			return j.Ctx().Err()
		},
	}
	quick := openJob("quick", 10, 1)
	ctx := &Context{Workers: 2, Timeout: 20 * time.Millisecond}
	sum, err := ctx.Run([]*Job{slow, quick})
	if err == nil {
		t.Fatal("batch with a timed-out job returned nil error")
	}
	if !errors.Is(slow.Err(), context.DeadlineExceeded) {
		t.Errorf("slow job err = %v, want DeadlineExceeded", slow.Err())
	}
	if !strings.Contains(slow.Err().Error(), `"slow"`) {
		t.Errorf("error %q does not name the job", slow.Err())
	}
	if quick.Err() != nil {
		t.Errorf("sibling failed: %v", quick.Err())
	}
	if quick.Result().Requests != 10 {
		t.Errorf("sibling requests = %d, want 10", quick.Result().Requests)
	}
	if sum.Failed != 1 || sum.Cancelled != 1 {
		t.Errorf("summary failed=%d cancelled=%d, want 1/1", sum.Failed, sum.Cancelled)
	}
}

func TestBatchCancelSkipsQueuedJobs(t *testing.T) {
	// A batch whose Ctx is already cancelled skips every job: each fails
	// with the context error and none executes its body.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	jobs := []*Job{}
	for i := 0; i < 3; i++ {
		jobs = append(jobs, &Job{
			Label: "skipped",
			Custom: func(j *Job) any {
				ran.Add(1)
				return nil
			},
		})
	}
	sum, err := (&Context{Workers: 1, Ctx: cctx}).Run(jobs)
	if err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d job bodies ran in a cancelled batch", n)
	}
	if sum.Failed != 3 || sum.Cancelled != 3 {
		t.Errorf("summary failed=%d cancelled=%d, want 3/3", sum.Failed, sum.Cancelled)
	}
	for _, j := range jobs {
		if !errors.Is(j.Err(), context.Canceled) {
			t.Errorf("job err = %v, want Canceled", j.Err())
		}
	}
}

// cancellingDevice cancels the batch context after n accesses, modeling
// an interrupt arriving mid-simulation.
type cancellingDevice struct {
	tickDevice
	left   int
	cancel context.CancelFunc
}

func (d *cancellingDevice) Access(r *core.Request, now float64) float64 {
	if d.left--; d.left == 0 {
		d.cancel()
	}
	return d.tickDevice.Access(r, now)
}

func TestDeclarativeJobCancelledMidRun(t *testing.T) {
	// Cancellation mid-run fails a declarative job with the context
	// error and keeps its partial Result unreadable.
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j := &Job{
		Label:     "interrupted",
		Device:    func() core.Device { return &cancellingDevice{tickDevice{svc: 1}, 100, cancel} },
		Scheduler: func() core.Scheduler { return sched.NewFCFS() },
		Source: func(d core.Device) workload.Source {
			return workload.DefaultRandom(100, d.SectorSize(), d.Capacity(), 5000, 1)
		},
	}
	_, err := (&Context{Workers: 1, Ctx: cctx}).Run([]*Job{j})
	if err == nil {
		t.Fatal("interrupted batch returned nil error")
	}
	if !errors.Is(j.Err(), context.Canceled) {
		t.Fatalf("job err = %v, want Canceled", j.Err())
	}
	defer func() {
		if recover() == nil {
			t.Error("Result() of a cancelled job did not panic")
		}
	}()
	j.Result()
}

func TestCustomErrorReturnFailsJob(t *testing.T) {
	// The Custom error-return convention: a body returning a non-nil
	// error fails the job with it, and Value stays unreadable.
	boom := errors.New("boom")
	j := &Job{Label: "erring", Custom: func(*Job) any { return boom }}
	_, err := Sequential().Run([]*Job{j})
	if err == nil || !errors.Is(j.Err(), boom) {
		t.Fatalf("err = %v, want wrapped boom", j.Err())
	}
	if !strings.Contains(j.Err().Error(), `"erring"`) {
		t.Errorf("error %q does not name the job", j.Err())
	}
	defer func() {
		if recover() == nil {
			t.Error("Value() of a failed job did not panic")
		}
	}()
	j.Value()
}

func TestJobLifecycleAccessorsBeforeRun(t *testing.T) {
	// Before the pool installs anything, the accessors return inert
	// defaults a Custom body can use unconditionally.
	j := &Job{Label: "unrun"}
	if j.Ctx() != context.Background() {
		t.Error("Ctx before run is not context.Background")
	}
	if j.SimOptions(sim.Options{}).Check {
		t.Error("Check set before run")
	}
	if j.SimContext().Ctx != context.Background() {
		t.Error("SimContext not wired to Background before run")
	}
}

func TestContextCheckReachesCustomBodies(t *testing.T) {
	// Context.Check flows into Custom bodies through SimOptions.
	var sawCheck bool
	j := &Job{Label: "checked", Custom: func(job *Job) any {
		sawCheck = job.SimOptions(sim.Options{}).Check
		return nil
	}}
	if _, err := (&Context{Workers: 1, Check: true}).Run([]*Job{j}); err != nil {
		t.Fatal(err)
	}
	if !sawCheck {
		t.Error("Check did not reach the Custom body")
	}
}
