package mems

import (
	"math"
	"testing"

	"memsim/internal/core"
)

// TestGoldenValues pins exact model outputs. The simulator is
// deterministic by design; if a refactor moves any of these numbers the
// change is either a bug or an intentional model revision that must be
// re-justified against the paper's anchors (and EXPERIMENTS.md re-run).
func TestGoldenValues(t *testing.T) {
	d := MustDevice(DefaultConfig())
	g := d.Geometry()
	check := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %.9f, want %.9f", name, got, want)
		}
	}
	check("full-stroke X seek", d.SeekX(0, 2499), 0.769779252)
	check("100-cylinder X seek", d.SeekX(1250, 1350), 0.354800653)
	check("center turnaround", d.Turnaround(float64(g.BitsY)/2, 1), 0.069349431)
	d.Reset()
	check("cold 4 KB access", d.Access(&core.Request{LBN: 123456, Blocks: 8}, 0), 0.952291470)
	check("following 32 KB access", d.Access(&core.Request{LBN: 5000000, Blocks: 64}, 0), 1.262699611)
}
