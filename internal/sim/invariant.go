// invariant.go is the run-time self-verification layer: InvariantProbe
// watches the same lifecycle event stream every other probe sees and
// validates the simulator's structural invariants on each event —
// conservation, clock sanity, non-negative phase times, breakdown
// reconciliation, class validity. Options.Check attaches one
// engine-owned instance and panics at finalize on any recorded
// violation; the probe is also exported so tests and bespoke harnesses
// can attach their own and inspect Err directly.
package sim

import (
	"errors"
	"fmt"
	"math"

	"memsim/internal/core"
)

// invariantTol is the absolute slack allowed on float comparisons, and
// the relative slack (scaled by service time) on breakdown
// reconciliation. Phase decompositions are built from sums of closed
// forms, so anything beyond ~1e-9 is a real accounting leak, not float
// noise.
const invariantTol = 1e-9

// maxViolations caps how many violations one run records: the first
// failure is the diagnostic; thousands of repeats of it are noise.
const maxViolations = 8

// InvariantProbe validates the simulator's structural invariants over a
// run's lifecycle event stream:
//
//   - conservation: measured completions reconcile with Result.Requests
//     and failed completions with Result.FailedRequests (the engine
//     separately asserts arrivals = completions when a checked run
//     drains naturally);
//   - clock monotonicity: engine-clock events (dispatch, requeue,
//     complete, device-fail, rebuild-*) never move backwards, arrivals
//     never regress within the arrival stream, and every timestamp is
//     finite and non-negative;
//   - service sanity: per-visit phase times are non-negative and the
//     phase sum reconciles with the visit's service time to within
//     1e-9 (relative) on decomposing devices;
//   - request validity: scheduling classes are in range and completed
//     requests have ordered Arrival/Start/Finish stamps and
//     non-negative accumulated phase and recovery times.
//
// The probe is run-scoped (it implements ProbeResetter); sharing one
// instance across concurrently-running jobs is invalid — attach a fresh
// one per run, or use Options.Check and let the engine own it.
type InvariantProbe struct {
	violations []string

	lastClock  float64
	lastArrive float64
	sawClock   bool
	sawArrive  bool

	completes int
	measured  int
	failed    int
}

// NewInvariantProbe returns an empty probe.
func NewInvariantProbe() *InvariantProbe { return &InvariantProbe{} }

// violate records one violation, keeping only the first maxViolations.
func (ip *InvariantProbe) violate(format string, args ...any) {
	if len(ip.violations) < maxViolations {
		ip.violations = append(ip.violations, fmt.Sprintf(format, args...))
	}
}

// Err returns every recorded violation joined into one error, or nil
// for a clean run.
func (ip *InvariantProbe) Err() error {
	if len(ip.violations) == 0 {
		return nil
	}
	errs := make([]error, len(ip.violations))
	for i, v := range ip.violations {
		errs[i] = errors.New("sim: invariant violated: " + v)
	}
	return errors.Join(errs...)
}

// ResetProbe implements ProbeResetter: the probe's state is run-scoped.
func (ip *InvariantProbe) ResetProbe() { *ip = InvariantProbe{} }

// Observe implements Probe.
func (ip *InvariantProbe) Observe(ev ProbeEvent) {
	if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) {
		ip.violate("%s event at non-finite time %v", ev.Kind, ev.Time)
		return
	}
	if ev.Time < -invariantTol {
		ip.violate("%s event at negative time %g", ev.Kind, ev.Time)
	}
	switch ev.Kind {
	case EventArrive:
		// Arrivals are monotone within the arrival stream but may trail
		// the engine clock: the open regime ingests lazily, stamping the
		// arrival's own (earlier) time.
		if ip.sawArrive && ev.Time+invariantTol < ip.lastArrive {
			ip.violate("arrival clock moved backwards: %g after %g", ev.Time, ip.lastArrive)
		}
		ip.sawArrive = true
		ip.lastArrive = math.Max(ip.lastArrive, ev.Time)
		if ev.Queue < 1 {
			ip.violate("arrive event with queue length %d (must include the request)", ev.Queue)
		}
	case EventService, EventRetry:
		// Service and retry events are stamped with the visit's future
		// end time at dispatch, so they only bound the clock from above.
		if ip.sawClock && ev.Time+invariantTol < ip.lastClock {
			ip.violate("%s event at %g before engine clock %g", ev.Kind, ev.Time, ip.lastClock)
		}
		ip.checkBreakdown(ev)
	default:
		// Dispatch, requeue, complete and the failover events all fire at
		// the engine's current event time: one collectively monotone clock.
		if ip.sawClock && ev.Time+invariantTol < ip.lastClock {
			ip.violate("engine clock moved backwards: %s at %g after %g", ev.Kind, ev.Time, ip.lastClock)
		}
		ip.sawClock = true
		ip.lastClock = math.Max(ip.lastClock, ev.Time)
		switch ev.Kind {
		case EventDispatch:
			if ev.Queue < 1 {
				ip.violate("dispatch event with queue length %d (must include the request)", ev.Queue)
			}
			ip.checkClass(ev)
		case EventRequeue:
			if ev.Queue < 1 {
				ip.violate("requeue event with queue length %d (must include the request)", ev.Queue)
			}
		case EventComplete:
			ip.checkClass(ev)
			ip.checkComplete(ev)
		}
	}
}

// checkClass validates the request's scheduling class on events that
// stamp one.
func (ip *InvariantProbe) checkClass(ev ProbeEvent) {
	if int(ev.Class) >= core.NumClasses {
		ip.violate("%s event with class %d out of range [0,%d)", ev.Kind, ev.Class, core.NumClasses)
	}
	if ev.Req != nil && int(ev.Req.Class) >= core.NumClasses {
		ip.violate("%s event request with class %d out of range [0,%d)", ev.Kind, ev.Req.Class, core.NumClasses)
	}
}

// checkBreakdown validates one service visit's phase decomposition:
// finite, non-negative phases that reconcile with the visit's total.
func (ip *InvariantProbe) checkBreakdown(ev ProbeEvent) {
	bd := ev.Breakdown
	phases := [...]struct {
		name string
		ms   float64
	}{
		{"seek", bd.Seek}, {"settle", bd.Settle}, {"turnaround", bd.Turnaround},
		{"transfer", bd.Transfer}, {"overhead", bd.Overhead}, {"recovery", bd.Recovery},
		{"service", bd.ServiceMs},
	}
	for _, ph := range phases {
		if math.IsNaN(ph.ms) || math.IsInf(ph.ms, 0) {
			ip.violate("%s event with non-finite %s time %v", ev.Kind, ph.name, ph.ms)
			return
		}
		if ph.ms < -invariantTol {
			ip.violate("%s event with negative %s time %g", ev.Kind, ph.name, ph.ms)
		}
	}
	// Reconciliation only applies to decomposing devices: a device that
	// reports no breakdown leaves the whole visit unattributed
	// (PhaseSum = 0), which is valid, just uninformative.
	if ev.Kind == EventService && bd.PhaseSum() > 0 {
		if resid := math.Abs(bd.Unattributed()); resid > invariantTol*(1+math.Abs(bd.ServiceMs)) {
			ip.violate("service breakdown does not reconcile: |%g| unattributed of %g ms service", bd.Unattributed(), bd.ServiceMs)
		}
	}
}

// checkComplete validates a finished request's stamps and tallies it
// for finishRun's conservation checks.
func (ip *InvariantProbe) checkComplete(ev ProbeEvent) {
	ip.completes++
	if ev.Measured {
		ip.measured++
	}
	r := ev.Req
	if r == nil {
		ip.violate("complete event without a request")
		return
	}
	if r.Failed {
		ip.failed++
	}
	if r.Finish+invariantTol < r.Arrival {
		ip.violate("request finished at %g before its arrival %g", r.Finish, r.Arrival)
	}
	if r.Finish+invariantTol < r.Start {
		ip.violate("request finished at %g before its service start %g", r.Finish, r.Start)
	}
	if r.RecoveryMs < -invariantTol {
		ip.violate("request completed with negative recovery time %g", r.RecoveryMs)
	}
	if r.Retries < 0 || r.Requeues < 0 {
		ip.violate("request completed with negative retry/requeue counts %d/%d", r.Retries, r.Requeues)
	}
	for _, ph := range [...]float64{r.Phases.Seek, r.Phases.Settle, r.Phases.Turnaround,
		r.Phases.Transfer, r.Phases.Overhead, r.Phases.Recovery, r.Phases.ServiceMs} {
		if ph < -invariantTol {
			ip.violate("request completed with negative accumulated phase time %g", ph)
		}
	}
}

// finishRun cross-checks the probe's tallies against the finalized
// Result: the measured completions it observed must be exactly the
// requests the statistics report, and failed completions must match the
// failure counter. Called by the engine's finalize for every attached
// InvariantProbe (engine-owned or caller-attached).
func (ip *InvariantProbe) finishRun(res *Result) {
	if ip.measured != res.Requests {
		ip.violate("probe saw %d measured completions but Result.Requests is %d", ip.measured, res.Requests)
	}
	if ip.failed != res.FailedRequests {
		ip.violate("probe saw %d failed completions but Result.FailedRequests is %d", ip.failed, res.FailedRequests)
	}
}

// findInvariantProbes collects every InvariantProbe reachable through
// the probe tree (descending MultiProbe and run-label wrappers), so
// finalize can run their end-of-run checks.
func findInvariantProbes(p Probe) []*InvariantProbe {
	switch pr := p.(type) {
	case *InvariantProbe:
		return []*InvariantProbe{pr}
	case runLabelProbe:
		return findInvariantProbes(pr.p)
	case MultiProbe:
		var out []*InvariantProbe
		for _, sub := range pr {
			out = append(out, findInvariantProbes(sub)...)
		}
		return out
	}
	return nil
}
