package sim

import (
	"math"
	"strings"
	"testing"

	"memsim/internal/core"
)

// feed runs a sequence of synthetic events through a fresh probe and
// returns its error.
func feed(events ...ProbeEvent) error {
	ip := NewInvariantProbe()
	for _, ev := range events {
		ip.Observe(ev)
	}
	return ip.Err()
}

// okReq returns a well-formed completed request for complete events.
func okReq(arrival, start, finish float64) *core.Request {
	return &core.Request{Arrival: arrival, Start: start, Finish: finish, Blocks: 1}
}

func TestInvariantProbeCleanSequence(t *testing.T) {
	err := feed(
		ProbeEvent{Kind: EventArrive, Time: 0, Queue: 1},
		ProbeEvent{Kind: EventDispatch, Time: 0, Queue: 1},
		ProbeEvent{Kind: EventService, Time: 2, Breakdown: core.Breakdown{Seek: 0.5, Transfer: 1.5, ServiceMs: 2}},
		ProbeEvent{Kind: EventComplete, Time: 2, Measured: true, Req: okReq(0, 0, 2)},
	)
	if err != nil {
		t.Fatalf("clean sequence flagged: %v", err)
	}
}

func TestInvariantProbeViolations(t *testing.T) {
	cases := []struct {
		name   string
		events []ProbeEvent
		want   string // substring of the violation message
	}{
		{
			"backwards engine clock",
			[]ProbeEvent{
				{Kind: EventDispatch, Time: 5, Queue: 1},
				{Kind: EventComplete, Time: 3, Req: okReq(0, 0, 3)},
			},
			"engine clock moved backwards",
		},
		{
			"backwards arrival clock",
			[]ProbeEvent{
				{Kind: EventArrive, Time: 4, Queue: 1},
				{Kind: EventArrive, Time: 2, Queue: 1},
			},
			"arrival clock moved backwards",
		},
		{
			"non-finite time",
			[]ProbeEvent{{Kind: EventDispatch, Time: math.NaN(), Queue: 1}},
			"non-finite time",
		},
		{
			"negative time",
			[]ProbeEvent{{Kind: EventArrive, Time: -1, Queue: 1}},
			"negative time",
		},
		{
			"empty queue on dispatch",
			[]ProbeEvent{{Kind: EventDispatch, Time: 0, Queue: 0}},
			"queue length 0",
		},
		{
			"service before engine clock",
			[]ProbeEvent{
				{Kind: EventDispatch, Time: 10, Queue: 1},
				{Kind: EventService, Time: 4},
			},
			"before engine clock",
		},
		{
			"negative phase time",
			[]ProbeEvent{{Kind: EventService, Time: 1,
				Breakdown: core.Breakdown{Settle: -0.5, ServiceMs: 1}}},
			"negative settle time",
		},
		{
			"breakdown leak",
			[]ProbeEvent{{Kind: EventService, Time: 1,
				Breakdown: core.Breakdown{Seek: 3, ServiceMs: 1}}},
			"does not reconcile",
		},
		{
			"class out of range",
			[]ProbeEvent{{Kind: EventDispatch, Time: 0, Queue: 1,
				Class: core.Class(core.NumClasses)}},
			"out of range",
		},
		{
			"complete without request",
			[]ProbeEvent{{Kind: EventComplete, Time: 1}},
			"without a request",
		},
		{
			"finish before arrival",
			[]ProbeEvent{{Kind: EventComplete, Time: 1, Req: okReq(5, 0, 1)}},
			"before its arrival",
		},
		{
			"negative recovery",
			[]ProbeEvent{{Kind: EventComplete, Time: 2,
				Req: &core.Request{Finish: 2, RecoveryMs: -1, Blocks: 1}}},
			"negative recovery time",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := feed(tc.events...)
			if err == nil {
				t.Fatal("violation not flagged")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "sim: invariant violated") {
				t.Fatalf("error %q missing the invariant prefix", err)
			}
		})
	}
}

func TestInvariantProbeNonDecomposingDeviceOK(t *testing.T) {
	// A device that reports no breakdown (PhaseSum 0) leaves the visit
	// unattributed; that is valid, not a reconciliation failure.
	err := feed(ProbeEvent{Kind: EventService, Time: 3,
		Breakdown: core.Breakdown{ServiceMs: 3}})
	if err != nil {
		t.Fatalf("total-only breakdown flagged: %v", err)
	}
}

func TestInvariantProbeOpenArrivalMayTrailClock(t *testing.T) {
	// The open regime ingests lazily: an arrive event stamped with its
	// own (earlier) time after the engine clock has advanced is the
	// documented normal case, not a violation.
	err := feed(
		ProbeEvent{Kind: EventDispatch, Time: 10, Queue: 1},
		ProbeEvent{Kind: EventArrive, Time: 3, Queue: 1},
	)
	if err != nil {
		t.Fatalf("trailing arrival flagged: %v", err)
	}
}

func TestInvariantProbeFinishRunConservation(t *testing.T) {
	ip := NewInvariantProbe()
	ip.Observe(ProbeEvent{Kind: EventComplete, Time: 1, Measured: true, Req: okReq(0, 0, 1)})
	ip.Observe(ProbeEvent{Kind: EventComplete, Time: 2,
		Req: &core.Request{Finish: 2, Failed: true, Blocks: 1}})

	good := &Result{Requests: 1, FailedRequests: 1}
	ip.finishRun(good)
	if err := ip.Err(); err != nil {
		t.Fatalf("matching tallies flagged: %v", err)
	}

	ip2 := NewInvariantProbe()
	ip2.Observe(ProbeEvent{Kind: EventComplete, Time: 1, Measured: true, Req: okReq(0, 0, 1)})
	ip2.finishRun(&Result{Requests: 7})
	err := ip2.Err()
	if err == nil || !strings.Contains(err.Error(), "Result.Requests is 7") {
		t.Fatalf("conservation mismatch not flagged: %v", err)
	}
}

func TestInvariantProbeCapsViolations(t *testing.T) {
	ip := NewInvariantProbe()
	for i := 0; i < 100; i++ {
		ip.Observe(ProbeEvent{Kind: EventDispatch, Time: -1, Queue: 0})
	}
	err := ip.Err()
	if err == nil {
		t.Fatal("no violations recorded")
	}
	if n := strings.Count(err.Error(), "sim: invariant violated"); n > maxViolations {
		t.Errorf("recorded %d violations, cap is %d", n, maxViolations)
	}
}

func TestInvariantProbeReset(t *testing.T) {
	ip := NewInvariantProbe()
	ip.Observe(ProbeEvent{Kind: EventDispatch, Time: -1, Queue: 0})
	if ip.Err() == nil {
		t.Fatal("setup violation missing")
	}
	ip.ResetProbe()
	if err := ip.Err(); err != nil {
		t.Fatalf("reset probe still reports: %v", err)
	}
}

func TestFindInvariantProbes(t *testing.T) {
	a, b := NewInvariantProbe(), NewInvariantProbe()
	tree := MultiProbe{a, probeFunc(func(ProbeEvent) {}), MultiProbe{b}}
	got := findInvariantProbes(tree)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("found %d probes, want [a b]", len(got))
	}
	if findInvariantProbes(probeFunc(func(ProbeEvent) {})) != nil {
		t.Error("non-invariant probe yielded a result")
	}
}
