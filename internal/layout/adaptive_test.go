package layout

import (
	"testing"
	"testing/quick"
)

func TestAdaptiveOrganPipeValidation(t *testing.T) {
	for _, c := range []struct{ cap, ext int64 }{
		{0, 8}, {100, 0}, {100, 7}, {-5, 8},
	} {
		if _, err := NewAdaptiveOrganPipe(c.cap, c.ext); err == nil {
			t.Errorf("expected error for capacity=%d extent=%d", c.cap, c.ext)
		}
	}
	if _, err := NewAdaptiveOrganPipe(800, 8); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveMapIsIdentityInitially(t *testing.T) {
	a, _ := NewAdaptiveOrganPipe(800, 8)
	for _, lbn := range []int64{0, 7, 8, 799} {
		if a.Map(lbn) != lbn {
			t.Errorf("Map(%d) = %d before any reshuffle", lbn, a.Map(lbn))
		}
	}
}

func TestAdaptiveMapBijection(t *testing.T) {
	// Property: after arbitrary record/reshuffle sequences the mapping
	// remains a bijection on [0, capacity).
	f := func(accessSeed []uint16, shuffles uint8) bool {
		a, err := NewAdaptiveOrganPipe(320, 8)
		if err != nil {
			return false
		}
		for _, v := range accessSeed {
			a.Record(int64(v)%320, 1)
		}
		for s := 0; s < int(shuffles%4)+1; s++ {
			a.Reshuffle()
		}
		seen := make(map[int64]bool, 320)
		for lbn := int64(0); lbn < 320; lbn++ {
			m := a.Map(lbn)
			if m < 0 || m >= 320 || seen[m] {
				return false
			}
			seen[m] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAdaptiveHotExtentMovesToCenter(t *testing.T) {
	a, _ := NewAdaptiveOrganPipe(800, 8) // 100 extents, center slot 50
	// Hammer extent 7.
	for i := 0; i < 100; i++ {
		a.Record(7*8+3, 1)
	}
	if a.HotExtent() != 7 {
		t.Fatalf("hot extent = %d", a.HotExtent())
	}
	moved := a.Reshuffle()
	if moved <= 0 {
		t.Fatal("reshuffle moved nothing")
	}
	// Extent 7 now occupies the centermost slot.
	if got := a.Map(7 * 8); got != 50*8 {
		t.Errorf("hot extent mapped to %d, want center slot start %d", got, 50*8)
	}
}

func TestAdaptiveReshuffleIdempotentWhenStable(t *testing.T) {
	a, _ := NewAdaptiveOrganPipe(800, 8)
	for i := 0; i < 50; i++ {
		a.Record(16, 1)
	}
	a.Reshuffle()
	// Same popularity again: second reshuffle must move nothing.
	for i := 0; i < 50; i++ {
		a.Record(16, 1)
	}
	if moved := a.Reshuffle(); moved != 0 {
		t.Errorf("stable popularity still moved %d blocks", moved)
	}
}

func TestAdaptiveDecayForgetsOldHotspots(t *testing.T) {
	a, _ := NewAdaptiveOrganPipe(800, 8)
	a.Decay = 0.1
	for i := 0; i < 100; i++ {
		a.Record(0, 1) // extent 0 hot
	}
	a.Reshuffle()
	// New hotspot with fewer accesses than the old one had — decay makes
	// it dominant.
	for i := 0; i < 50; i++ {
		a.Record(99*8, 1)
	}
	if a.HotExtent() != 99 {
		t.Errorf("hot extent after decay = %d, want 99", a.HotExtent())
	}
	a.Reshuffle()
	if got := a.Map(99 * 8); got != 50*8 {
		t.Errorf("new hotspot mapped to %d, want center", got)
	}
}

func TestAdaptivePanics(t *testing.T) {
	a, _ := NewAdaptiveOrganPipe(800, 8)
	for _, f := range []func(){
		func() { a.Map(-1) },
		func() { a.Map(800) },
		func() { a.Record(-1, 1) },
		func() { a.Record(0, 0) },
		func() { a.Record(799, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAdaptiveName(t *testing.T) {
	a, _ := NewAdaptiveOrganPipe(80, 8)
	if a.Name() != "adaptive-organ-pipe" {
		t.Errorf("name = %q", a.Name())
	}
}

func TestAdaptiveSlotOrderIsPermutation(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 4, 5, 10, 99, 100} {
		a, err := NewAdaptiveOrganPipe(n*8, 8)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int64]bool, n)
		for _, s := range a.slotOrder {
			if s < 0 || s >= n || seen[s] {
				t.Fatalf("n=%d: slotOrder not a permutation: %v", n, a.slotOrder)
			}
			seen[s] = true
		}
		// The most preferred slot is the center.
		if a.slotOrder[0] != n/2 {
			t.Errorf("n=%d: first slot = %d, want %d", n, a.slotOrder[0], n/2)
		}
	}
}

func TestReshuffleNBoundsMoves(t *testing.T) {
	a, _ := NewAdaptiveOrganPipe(8000, 8) // 1000 extents
	// Make 20 extents hot, well away from the center.
	for e := int64(0); e < 20; e++ {
		for i := 0; i < 50; i++ {
			a.Record(e*8, 1)
		}
	}
	moved := a.ReshuffleN(4)
	// Each move swaps two extents: at most 8 extents × 8 blocks.
	if moved > 4*2*8 {
		t.Errorf("moved %d blocks, cap is %d", moved, 4*2*8)
	}
	if moved == 0 {
		t.Error("nothing moved despite hot extents far from center")
	}
}

func TestReshuffleNConverges(t *testing.T) {
	// Repeated incremental shuffles under a stable workload must reach a
	// state where nothing further moves.
	a, _ := NewAdaptiveOrganPipe(8000, 8)
	a.Decay = 1 // keep counts so popularity stays sharp
	for e := int64(0); e < 10; e++ {
		for i := 0; i < 100; i++ {
			a.Record(e*8, 1)
		}
	}
	total := int64(0)
	for round := 0; round < 50; round++ {
		total += a.ReshuffleN(4)
	}
	if a.ReshuffleN(4) != 0 {
		t.Error("shuffler still moving after 50 rounds of a stable workload")
	}
	if total == 0 {
		t.Error("shuffler never moved anything")
	}
	// The hot extents ended up in the central region.
	mid := int64(500 * 8)
	for e := int64(0); e < 10; e++ {
		d := a.Map(e*8) - mid
		if d < 0 {
			d = -d
		}
		if d > 30*8 {
			t.Errorf("hot extent %d landed %d blocks from center", e, d)
		}
	}
}

func TestReshuffleNHysteresisPreventsFights(t *testing.T) {
	// Two equally hot extents must not displace each other once both are
	// near the center.
	a, _ := NewAdaptiveOrganPipe(800, 8)
	a.Decay = 1
	hit := func(e int64, n int) {
		for i := 0; i < n; i++ {
			a.Record(e*8, 1)
		}
	}
	hit(3, 100)
	hit(97, 99)
	for i := 0; i < 10; i++ {
		a.ReshuffleN(4)
	}
	if a.ReshuffleN(4) != 0 {
		t.Error("near-tied hot extents keep displacing each other")
	}
}

func TestReshuffleNSkipsDominatedMoves(t *testing.T) {
	// A background extent with a single stray access must not migrate.
	a, _ := NewAdaptiveOrganPipe(800, 8)
	a.Record(0, 1) // one stray hit on extent 0
	if moved := a.ReshuffleN(10); moved != 0 {
		t.Errorf("stray access caused %d blocks of migration", moved)
	}
}

func TestReshuffleNPanicsOnNegative(t *testing.T) {
	a, _ := NewAdaptiveOrganPipe(80, 8)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.ReshuffleN(-1)
}
