package experiments

import (
	"memsim/internal/core"
	"memsim/internal/runner"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

func init() { register("aging", agingPlan) }

// Aging is the ablation suggested by our Fig. 6 reproduction (extension):
// pure SPTF's greediness makes its σ²/µ² explode near the saturation
// knee — plausibly the paper's unexplained "odd behavior of SPTF between
// 1500 and 2000 requests/sec". Aged SPTF discounts each request's
// positioning estimate by Weight · wait-time; a small weight restores
// bounded tails at modest mean-response cost.
func Aging(p Params) []Table { return mustRun(agingPlan(p)) }

func agingPlan(p Params) *Plan {
	mks := []core.SchedulerFactory{
		func() core.Scheduler { return sched.NewSPTF() },
		func() core.Scheduler { return sched.NewASPTF(0.01) },
		func() core.Scheduler { return sched.NewASPTF(0.05) },
		func() core.Scheduler { return sched.NewASPTF(0.2) },
		func() core.Scheduler { return sched.NewSSTF() },
		func() core.Scheduler { return sched.NewCLOOK() },
	}
	names := make([]string, len(mks))
	jobs := make([]*runner.Job, len(mks))
	for i, mk := range mks {
		names[i] = mk().Name()
		jobs[i] = &runner.Job{
			Label:     "aging " + names[i],
			Seed:      p.Seed,
			Device:    memsFactory(1),
			Scheduler: mk,
			Source: func(d core.Device) workload.Source {
				return workload.DefaultRandom(1600, d.SectorSize(), d.Capacity(), p.Requests, p.Seed)
			},
			Options: sim.Options{Warmup: p.Warmup},
		}
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID:      "aging",
				Title:   "SPTF aging at the saturation knee (MEMS, random workload, 1600 req/s)",
				Columns: []string{"scheduler", "mean response(ms)", "cv²", "max response(ms)"},
			}
			for i, j := range jobs {
				res := j.Result()
				t.AddRow(names[i], ms(res.Response.Mean()), f2(res.Response.SquaredCV()),
					ms(res.Response.Max()))
			}
			return []Table{t}
		},
	}
}
