package experiments

import (
	"fmt"
	"math/rand"

	"memsim/internal/array"
	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
)

func init() { register("raid", RAID) }

// RAID quantifies the §6.2 claim at array level (extension; no paper
// figure): MEMS-based storage's near-zero read-modify-write
// repositioning "obviates the need for the many optimizations" built to
// hide RAID-5's small-write penalty on disks. Four-member RAID-5 arrays
// of each device type service 4 KB writes, degraded reads, and a full
// member rebuild.
func RAID(p Params) []Table {
	trials := p.Trials / 4
	if trials < 50 {
		trials = 50
	}
	t := Table{
		ID:      "raid",
		Title:   "4-member RAID-5: small-write and degraded-mode costs",
		Columns: []string{"metric", "MEMS array", "Atlas 10K array", "disk/MEMS"},
	}

	memsArr := func() *array.Array { return mustArray(memsMembers(4)) }
	diskArr := func() *array.Array { return mustArray(diskMembers(4)) }

	mw := raidSmallWrite(memsArr(), trials, p.Seed)
	dw := raidSmallWrite(diskArr(), trials, p.Seed)
	t.AddRow("4 KB RAID-5 write (read-modify-write)", ms(mw), ms(dw), f2(dw/mw)+"×")

	mr := raidRandomRead(memsArr(), trials, p.Seed, false)
	dr := raidRandomRead(diskArr(), trials, p.Seed, false)
	t.AddRow("4 KB read, healthy", ms(mr), ms(dr), f2(dr/mr)+"×")

	mrd := raidRandomRead(memsArr(), trials, p.Seed, true)
	drd := raidRandomRead(diskArr(), trials, p.Seed, true)
	t.AddRow("4 KB read, degraded (reconstruct)", ms(mrd), ms(drd), f2(drd/mrd)+"×")

	ma, da := memsArr(), diskArr()
	ma.FailMember(1)
	da.FailMember(1)
	mrb := ma.RebuildTime(2700) / 1000 // seconds
	drb := da.RebuildTime(2700) / 1000
	t.AddRow("member rebuild (full scan)", fmt.Sprintf("%.1f s", mrb),
		fmt.Sprintf("%.1f s", drb), f2(drb/mrb)+"×")
	return []Table{t}
}

func memsMembers(n int) ([]core.Device, array.Config) {
	m := make([]core.Device, n)
	for i := range m {
		m[i] = mems.MustDevice(mems.DefaultConfig())
	}
	return m, array.Config{Level: array.RAID5, StripeUnit: 8}
}

func diskMembers(n int) ([]core.Device, array.Config) {
	m := make([]core.Device, n)
	for i := range m {
		m[i] = disk.MustDevice(disk.Atlas10K())
	}
	return m, array.Config{Level: array.RAID5, StripeUnit: 8}
}

func mustArray(members []core.Device, cfg array.Config) *array.Array {
	a, err := array.New(cfg, members)
	if err != nil {
		panic(err) // construction parameters are fixed above
	}
	return a
}

func raidSmallWrite(a *array.Array, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	now, sum := 0.0, 0.0
	for i := 0; i < trials; i++ {
		lbn := rng.Int63n(a.Capacity()-8) / 8 * 8
		svc := a.Access(&core.Request{Op: core.Write, LBN: lbn, Blocks: 8}, now)
		sum += svc
		now += svc
	}
	return sum / float64(trials)
}

func raidRandomRead(a *array.Array, trials int, seed int64, degraded bool) float64 {
	if degraded {
		a.FailMember(0)
	}
	rng := rand.New(rand.NewSource(seed))
	now, sum := 0.0, 0.0
	for i := 0; i < trials; i++ {
		lbn := rng.Int63n(a.Capacity()-8) / 8 * 8
		svc := a.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: 8}, now)
		sum += svc
		now += svc
	}
	return sum / float64(trials)
}
