package experiments

import (
	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

// newMEMS builds the default (Table 1) MEMS device, optionally overriding
// the settling-constant count (Fig. 8 and the "no settle" variants use 0
// or 2).
func newMEMS(settleConstants float64) *mems.Device {
	cfg := mems.DefaultConfig()
	cfg.SettleConstants = settleConstants
	return mems.MustDevice(cfg)
}

// newDisk builds the Atlas-10K-style reference disk.
func newDisk() *disk.Device { return disk.MustDevice(disk.Atlas10K()) }

// schedulerSweep runs the random workload over every scheduler at every
// rate and returns, per rate, mean response time and squared coefficient
// of variation per scheduler — the two panels of Figs. 5 and 6.
func schedulerSweep(d core.Device, rates []float64, p Params) (resp, cv [][]float64) {
	resp = make([][]float64, len(rates))
	cv = make([][]float64, len(rates))
	for ri, rate := range rates {
		resp[ri] = make([]float64, len(sched.Names()))
		cv[ri] = make([]float64, len(sched.Names()))
		for si, name := range sched.Names() {
			s, err := sched.New(name)
			if err != nil {
				panic(err) // names come from sched.Names
			}
			src := workload.DefaultRandom(rate, d.SectorSize(), d.Capacity(), p.Requests, p.Seed)
			res := sim.Run(d, s, src, sim.Options{Warmup: p.Warmup})
			resp[ri][si] = res.Response.Mean()
			cv[ri][si] = res.Response.SquaredCV()
		}
	}
	return resp, cv
}

// sweepTables renders a schedulerSweep into the paper's two-panel form.
func sweepTables(idPrefix, device string, rates []float64, resp, cv [][]float64) []Table {
	a := Table{
		ID:      idPrefix + "a",
		Title:   "average response time vs. arrival rate, " + device + " (ms)",
		Columns: append([]string{"rate(req/s)"}, sched.Names()...),
	}
	b := Table{
		ID:      idPrefix + "b",
		Title:   "squared coefficient of variation of response time, " + device,
		Columns: append([]string{"rate(req/s)"}, sched.Names()...),
	}
	for ri, rate := range rates {
		rowA := []string{f2(rate)}
		rowB := []string{f2(rate)}
		for si := range sched.Names() {
			rowA = append(rowA, ms(resp[ri][si]))
			rowB = append(rowB, f2(cv[ri][si]))
		}
		a.AddRow(rowA...)
		b.AddRow(rowB...)
	}
	return []Table{a, b}
}
