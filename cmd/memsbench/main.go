// memsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	memsbench                     # run every artifact at full size
//	memsbench -run fig6           # one artifact
//	memsbench -run fig6,table2    # several
//	memsbench -quick              # reduced sizes (seconds instead of minutes)
//	memsbench -csv -o results/    # write one CSV per table instead of text
//	memsbench -list               # list artifact IDs
//
// Artifact IDs follow the paper: table1, fig5…fig11, table2, plus the
// quantified extensions fault and power (DESIGN.md §2).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"memsim/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated artifact IDs, or \"all\"")
		quick = flag.Bool("quick", false, "use reduced simulation sizes")
		csv   = flag.Bool("csv", false, "emit CSV files instead of text tables")
		out   = flag.String("o", "", "output directory for -csv (default: current)")
		list  = flag.Bool("list", false, "list artifact IDs and exit")
		seed  = flag.Int64("seed", 1, "random seed for all generators")
		reqs  = flag.Int("requests", 0, "override per-run request count")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	p := experiments.Default()
	if *quick {
		p = experiments.Quick()
	}
	p.Seed = *seed
	if *reqs > 0 {
		p.Requests = *reqs
		if p.Warmup >= *reqs/2 {
			p.Warmup = *reqs / 10
		}
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		tables, err := experiments.Run(id, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memsbench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *csv {
				dir := *out
				if dir == "" {
					dir = "."
				}
				if err := os.MkdirAll(dir, 0o755); err != nil {
					fmt.Fprintln(os.Stderr, "memsbench:", err)
					os.Exit(1)
				}
				path := filepath.Join(dir, t.ID+".csv")
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "memsbench:", err)
					os.Exit(1)
				}
				t.CSV(f)
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "memsbench:", err)
					os.Exit(1)
				}
				fmt.Println("wrote", path)
			} else {
				t.Fprint(os.Stdout)
			}
		}
	}
}
