package experiments

import (
	"fmt"
	"math/rand"

	"memsim/internal/core"
	"memsim/internal/mems"
)

func init() { register("generations", Generations) }

// Generations is a sensitivity study of the device model across
// successive MEMS generations (extension; the configurations are
// extrapolations documented in internal/mems/generations.go, not
// published parameter sets). It reports how density, per-tip rate and
// actuator improvements move the headline figures of merit.
func Generations(p Params) []Table {
	t := Table{
		ID:    "generations",
		Title: "device generations (G2/G3 are extrapolations; see generations.go)",
		Columns: []string{"generation", "capacity(GB)", "stream(MB/s)",
			"avg 4 KB access(ms)", "full-stroke seek(ms)"},
	}
	trials := p.Trials
	if trials > 2000 {
		trials = 2000
	}
	gens := []struct {
		name string
		cfg  mems.Config
	}{
		{"G1 (Table 1)", mems.ConfigGen1()},
		{"G2", mems.ConfigGen2()},
		{"G3", mems.ConfigGen3()},
	}
	for _, gen := range gens {
		d, err := mems.NewDevice(gen.cfg)
		if err != nil {
			panic(err) // generation configs are maintained with the model
		}
		g := d.Geometry()
		rng := rand.New(rand.NewSource(p.Seed))
		sum := 0.0
		for i := 0; i < trials; i++ {
			lbn := rng.Int63n(g.TotalSectors - 8)
			sum += d.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: 8}, 0)
		}
		t.AddRow(gen.name,
			fmt.Sprintf("%.2f", float64(g.CapacityBytes())/1e9),
			fmt.Sprintf("%.1f", g.StreamBandwidth()/1e6),
			ms(sum/float64(trials)),
			ms(d.SeekX(0, g.Cylinders-1)))
	}
	return []Table{t}
}
