package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(flagValues{}); err != nil {
		t.Fatalf("zero values rejected: %v", err)
	}
	good := flagValues{faultRate: 0.02, rebuild: 0.3, rebuildPolicy: "adaptive",
		mttfHours: 2000, trials: 500, failDev: 1, thinkMs: 5,
		sched: "SettleAware", memberSched: "Priority",
		timeout: time.Minute, checkpoint: filepath.Join(t.TempDir(), "state.ckpt")}
	if err := validateFlags(good); err != nil {
		t.Fatalf("valid values rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*flagValues)
		flag string
	}{
		{"negative fault rate", func(v *flagValues) { v.faultRate = -0.1 }, "-fault-rate"},
		{"fault rate one", func(v *flagValues) { v.faultRate = 1 }, "-fault-rate"},
		{"nan fault rate", func(v *flagValues) { v.faultRate = math.NaN() }, "-fault-rate"},
		{"negative rebuild", func(v *flagValues) { v.rebuild = -0.5 }, "-rebuild"},
		{"rebuild above one", func(v *flagValues) { v.rebuild = 1.5 }, "-rebuild"},
		{"unknown policy", func(v *flagValues) { v.rebuildPolicy = "turbo" }, "-rebuild-policy"},
		{"negative mttf", func(v *flagValues) { v.mttfHours = -1 }, "-mttf-hours"},
		{"nan mttf", func(v *flagValues) { v.mttfHours = math.NaN() }, "-mttf-hours"},
		{"inf mttf", func(v *flagValues) { v.mttfHours = math.Inf(1) }, "-mttf-hours"},
		{"negative trials", func(v *flagValues) { v.trials = -5 }, "-trials"},
		{"negative fail dev", func(v *flagValues) { v.failDev = -1 }, "-fail-dev"},
		{"negative think", func(v *flagValues) { v.thinkMs = -1 }, "-think-ms"},
		{"unknown sched", func(v *flagValues) { v.sched = "EDF" }, "-sched"},
		{"unknown member sched", func(v *flagValues) { v.memberSched = "EDF" }, "-member-sched"},
		{"negative timeout", func(v *flagValues) { v.timeout = -time.Second }, "-timeout"},
		{"checkpoint in missing directory",
			func(v *flagValues) { v.checkpoint = filepath.Join("/no-such-dir-memsbench", "a.ckpt") },
			"-checkpoint"},
		{"checkpoint is a directory", func(v *flagValues) { v.checkpoint = os.TempDir() }, "-checkpoint"},
	}
	for _, tc := range cases {
		v := good
		tc.mut(&v)
		err := validateFlags(v)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("%s: error %q does not name %s", tc.name, err, tc.flag)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("%s: error %q is not one line", tc.name, err)
		}
	}
}

func TestOpenTraceRejectsDirectory(t *testing.T) {
	dir := t.TempDir()
	if _, err := openTrace(dir); err == nil || !strings.Contains(err.Error(), "is a directory") {
		t.Errorf("openTrace(%q) = %v, want directory error", dir, err)
	}
}

func TestOpenTraceRejectsUnwritablePath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")
	if _, err := openTrace(path); err == nil {
		t.Errorf("openTrace(%q) succeeded on a missing parent", path)
	} else if !strings.Contains(err.Error(), "-trace") {
		t.Errorf("error %q does not name the flag", err)
	}
}

func TestOpenTraceStreamsThenCommits(t *testing.T) {
	// The trace streams into a temporary file; the final path appears
	// only once commitTrace publishes it, so an interrupted run never
	// leaves a truncated trace.
	path := filepath.Join(t.TempDir(), "t.jsonl")
	f, err := openTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"event\":\"arrive\"}\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("final trace path exists before commit: %v", err)
	}
	if err := commitTrace(f, path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "{\"event\":\"arrive\"}\n" {
		t.Errorf("committed trace = %q, err = %v", got, err)
	}
	// The temporary file is gone.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("%d directory entries after commit, want 1", len(ents))
	}
}
