package core

// Breakdown decomposes one device access into the paper's service phases
// (§4–§5): positioning — seek, settle/rotational latency, turnarounds —
// against media transfer, plus fixed command overhead and any fault
// -recovery surcharge. All times are milliseconds. Every device model
// reports the same type, which is what lets the simulator compare
// *why* the devices differ, not just their totals:
//
//   - MEMS: Seek is the dominant (unoverlapped) axis seek per segment,
//     Settle the post-seek oscillation damping when the X path dominates;
//     turnarounds during normal access are folded into the Y seek, so
//     Turnaround is charged only by the recovery path.
//   - Disk: Seek is the cylinder seek, Settle the rotational latency plus
//     any write settle (the "rotate" in settle/rotate), Turnaround the
//     head-switch time.
//
// Recovery is filled by the fault-injection layer (retry penalties and
// ECC-reconstruction surcharges), never by the device itself.
type Breakdown struct {
	// Seek is the unoverlapped positioning seek time.
	Seek float64
	// Settle is the settle (MEMS) or rotational-latency + write-settle
	// (disk) time.
	Settle float64
	// Turnaround is the direction-reversal (MEMS recovery) or head-switch
	// (disk) time.
	Turnaround float64
	// Transfer is the media transfer time.
	Transfer float64
	// Overhead is the fixed per-request command overhead.
	Overhead float64
	// Recovery is the fault-recovery surcharge (device retries and ECC
	// reconstruction), charged by the simulation layer.
	Recovery float64

	// SeekX and SeekY are informational axis components for devices with
	// decoupled positioning axes (the MEMS sled): total X time including
	// settle, and total Y seek time. The axes overlap in real time —
	// per segment the lesser is hidden by the greater — so they are not
	// part of the phase sum.
	SeekX, SeekY float64

	// Segments is the number of track spans touched.
	Segments int

	// ServiceMs is the exact service time, accumulated in the device
	// model's native operation order; it is what Access returned. The
	// phase fields sum to ServiceMs only up to floating-point
	// re-association (within ~1e-12 per access); use PhaseSum to check.
	ServiceMs float64
}

// Positioning returns the summed positioning phases (seek + settle +
// turnaround), the quantity the paper plots against transfer (§4.1).
func (b Breakdown) Positioning() float64 { return b.Seek + b.Settle + b.Turnaround }

// PhaseSum returns the sum of every phase. It reconciles with ServiceMs
// to within accumulated floating-point error for devices that fully
// decompose their service; the difference is the unattributed residue.
func (b Breakdown) PhaseSum() float64 {
	return b.Seek + b.Settle + b.Turnaround + b.Transfer + b.Overhead + b.Recovery
}

// Unattributed returns the service time not covered by any phase:
// ~±1e-12 rounding for fully-decomposed devices, the whole wrapper
// surcharge for devices that report only totals.
func (b Breakdown) Unattributed() float64 { return b.ServiceMs - b.PhaseSum() }

// Total returns the access service time (alias for ServiceMs, kept for
// symmetry with the historical MEMS-only breakdown type).
func (b Breakdown) Total() float64 { return b.ServiceMs }

// Accumulate folds another breakdown into b, phase by phase; request
// -level accounting sums its service visits this way.
func (b *Breakdown) Accumulate(o Breakdown) {
	b.Seek += o.Seek
	b.Settle += o.Settle
	b.Turnaround += o.Turnaround
	b.Transfer += o.Transfer
	b.Overhead += o.Overhead
	b.Recovery += o.Recovery
	b.SeekX += o.SeekX
	b.SeekY += o.SeekY
	b.Segments += o.Segments
	b.ServiceMs += o.ServiceMs
}

// BreakdownReporter is implemented by device models that can report the
// per-phase decomposition of their most recent Access. The second return
// is false when no decomposition is available (nothing accessed yet, or
// a wrapper whose inner device does not decompose).
//
// The simulator consults the reporter only when a Probe is attached, so
// devices may maintain the breakdown unconditionally (it is a handful of
// float stores per access) without violating the zero-cost-when
// -unobserved discipline.
type BreakdownReporter interface {
	LastBreakdown() (Breakdown, bool)
}
