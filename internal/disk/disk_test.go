package disk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"memsim/internal/core"
)

func testDisk(t testing.TB) *Device {
	t.Helper()
	d, err := NewDevice(Atlas10K())
	if err != nil {
		t.Fatal(err)
	}
	d.Reset()
	return d
}

func reqAt(lbn int64, blocks int) *core.Request {
	return &core.Request{Op: core.Read, LBN: lbn, Blocks: blocks}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cylinders = 1 },
		func(c *Config) { c.Surfaces = 0 },
		func(c *Config) { c.RPM = 0 },
		func(c *Config) { c.Zones = 0 },
		func(c *Config) { c.Zones = c.Cylinders + 1 },
		func(c *Config) { c.SPTInner = 0 },
		func(c *Config) { c.SPTInner = c.SPTOuter + 1 },
		func(c *Config) { c.SectorSize = 0 },
		func(c *Config) { c.SeekSingle = 0 },
		func(c *Config) { c.SeekAvg = c.SeekSingle / 2 },
		func(c *Config) { c.SeekMax = c.SeekAvg / 2 },
		func(c *Config) { c.HeadSwitch = -1 },
		func(c *Config) { c.Overhead = -1 },
	}
	for i, mutate := range bad {
		cfg := Atlas10K()
		mutate(&cfg)
		if _, err := NewDevice(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRotationPeriod(t *testing.T) {
	d := testDisk(t)
	// 10 025 RPM → 5.985 ms per revolution; Table 2's "reposition 5.98".
	if p := d.RotationPeriod(); math.Abs(p-5.985) > 0.001 {
		t.Errorf("period = %g ms, want 5.985", p)
	}
}

func TestCapacityBallpark(t *testing.T) {
	d := testDisk(t)
	gb := float64(d.Capacity()) * 512 / 1e9
	// The 9.1 GB Atlas 10K; zoned geometry re-derivation lands within a
	// few percent.
	if gb < 8 || gb > 10 {
		t.Errorf("capacity = %.2f GB, want ≈ 9", gb)
	}
}

func TestSeekCurveAnchors(t *testing.T) {
	d := testDisk(t)
	cfg := Atlas10K()
	if got := d.SeekTime(1); math.Abs(got-cfg.SeekSingle) > 1e-9 {
		t.Errorf("single-cylinder seek = %g, want %g", got, cfg.SeekSingle)
	}
	if got := d.SeekTime(cfg.Cylinders / 3); math.Abs(got-cfg.SeekAvg) > 0.05 {
		t.Errorf("1/3-stroke seek = %g, want %g", got, cfg.SeekAvg)
	}
	if got := d.SeekTime(cfg.Cylinders - 1); math.Abs(got-cfg.SeekMax) > 1e-9 {
		t.Errorf("full-stroke seek = %g, want %g", got, cfg.SeekMax)
	}
	if d.SeekTime(0) != 0 {
		t.Error("zero-distance seek should be free")
	}
}

func TestSeekCurveMonotonic(t *testing.T) {
	d := testDisk(t)
	prev := 0.0
	for dist := 0; dist < Atlas10K().Cylinders; dist += 13 {
		cur := d.SeekTime(dist)
		if cur < prev {
			t.Fatalf("seek time decreased at distance %d: %g < %g", dist, cur, prev)
		}
		prev = cur
	}
}

func TestZonedRecording(t *testing.T) {
	d := testDisk(t)
	outer := d.ZoneSPT(0)
	inner := d.ZoneSPT(d.Capacity() - 1)
	if outer != 334 || inner != 229 {
		t.Errorf("spt outer/inner = %d/%d, want 334/229", outer, inner)
	}
	// §2.4.12: as much as a 46% difference between innermost and
	// outermost track bandwidth.
	spread := float64(outer-inner) / float64(inner)
	if spread < 0.40 || spread < 0.45 && spread > 0.47 {
		t.Logf("bandwidth spread = %.0f%%", spread*100)
	}
	if spread < 0.40 || spread > 0.50 {
		t.Errorf("bandwidth spread = %.2f, want ≈ 0.46", spread)
	}
}

func TestStreamingBandwidth(t *testing.T) {
	// §5.2: 28.5–19.5 MB/s streaming for the Atlas 10K.
	d := testDisk(t)
	outerBW := float64(d.ZoneSPT(0)) * 512 / d.RotationPeriod() * 1000 / 1e6
	innerBW := float64(d.ZoneSPT(d.Capacity()-1)) * 512 / d.RotationPeriod() * 1000 / 1e6
	if math.Abs(outerBW-28.6) > 0.5 {
		t.Errorf("outer bandwidth = %.1f MB/s, want ≈ 28.6", outerBW)
	}
	if math.Abs(innerBW-19.6) > 0.5 {
		t.Errorf("inner bandwidth = %.1f MB/s, want ≈ 19.6", innerBW)
	}
}

func TestLocateRoundTripOrdering(t *testing.T) {
	// LBNs are sequential within a track, across heads, then cylinders.
	d := testDisk(t)
	c0, h0, s0 := d.Locate(0)
	if c0 != 0 || h0 != 0 || s0 != 0 {
		t.Fatalf("LBN 0 at (%d,%d,%d)", c0, h0, s0)
	}
	spt := d.ZoneSPT(0)
	c1, h1, s1 := d.Locate(int64(spt))
	if c1 != 0 || h1 != 1 || s1 != 0 {
		t.Fatalf("LBN spt at (%d,%d,%d), want head 1", c1, h1, s1)
	}
	c2, _, _ := d.Locate(int64(spt * 6))
	if c2 != 1 {
		t.Fatalf("LBN spt·surfaces at cyl %d, want 1", c2)
	}
}

func TestLocateMonotonic(t *testing.T) {
	d := testDisk(t)
	f := func(raw uint32) bool {
		lbn := int64(raw) % (d.Capacity() - 1)
		c1, h1, s1 := d.Locate(lbn)
		c2, h2, s2 := d.Locate(lbn + 1)
		// Next LBN must not move backwards in (cyl, head, sector) order.
		if c2 != c1 {
			return c2 == c1+1 && h2 == 0 && s2 == 0
		}
		if h2 != h1 {
			return h2 == h1+1 && s2 == 0
		}
		return s2 == s1+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLocatePanics(t *testing.T) {
	d := testDisk(t)
	for _, lbn := range []int64{-1, d.Capacity()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for LBN %d", lbn)
				}
			}()
			d.Locate(lbn)
		}()
	}
}

func TestAccessServiceComponents(t *testing.T) {
	d := testDisk(t)
	cfg := Atlas10K()
	// Same-track access: no seek, latency ∈ [0, period], plus transfer.
	d.SetState(0, 0)
	r := reqAt(0, 8)
	svc := d.Access(r, 0)
	minSvc := cfg.Overhead + 8*d.RotationPeriod()/334
	maxSvc := minSvc + d.RotationPeriod()
	if svc < minSvc-1e-9 || svc > maxSvc+1e-9 {
		t.Errorf("same-track 8-sector service = %g, want in [%g, %g]", svc, minSvc, maxSvc)
	}
}

func TestAccessRotationDependsOnTime(t *testing.T) {
	// §2.4.8: disks rotate at constant velocity independent of ongoing
	// accesses, so the same request at different times costs different
	// rotational latency.
	d := testDisk(t)
	r := reqAt(1000, 8)
	t0 := d.EstimateAccess(r, 0)
	t1 := d.EstimateAccess(r, d.RotationPeriod()/2)
	if math.Abs(t0-t1) < 1e-9 {
		t.Error("service time should vary with rotational phase")
	}
	// But shifting by exactly one period must give the same answer.
	t2 := d.EstimateAccess(r, d.RotationPeriod())
	if math.Abs(t0-t2) > 1e-6 {
		t.Errorf("one full period shift changed service: %g vs %g", t0, t2)
	}
}

func TestEstimateMatchesAccess(t *testing.T) {
	d := testDisk(t)
	rng := rand.New(rand.NewSource(9))
	now := 0.0
	for i := 0; i < 2000; i++ {
		lbn := rng.Int63n(d.Capacity() - 1024)
		r := reqAt(lbn, 1+rng.Intn(128))
		est := d.EstimateAccess(r, now)
		got := d.Access(r, now)
		if est != got {
			t.Fatalf("estimate %g != access %g", est, got)
		}
		now += got + rng.Float64()
	}
}

func TestEstimateDoesNotMutate(t *testing.T) {
	d := testDisk(t)
	c0, h0 := d.State()
	d.EstimateAccess(reqAt(d.Capacity()/2, 16), 0)
	c1, h1 := d.State()
	if c0 != c1 || h0 != h1 {
		t.Fatal("EstimateAccess changed device state")
	}
}

func TestFullRotationForReadModifyWrite(t *testing.T) {
	// Table 2: a disk read-modify-write of the same sectors waits nearly
	// a full rotation between the read and the write.
	d := testDisk(t)
	r := reqAt(0, 8)
	d.Access(r, 0)
	// Immediately re-accessing the same sectors: the start sector just
	// passed under the head, so latency ≈ period − transfer.
	svc := d.EstimateAccess(r, 0+d.cfg.Overhead) // any "now" just after
	if svc < d.RotationPeriod()*0.7 {
		t.Errorf("re-access service = %g ms, want near a full rotation (%g)", svc, d.RotationPeriod())
	}
}

func TestSequentialTransferApproachesStreamingRate(t *testing.T) {
	d := testDisk(t)
	// Read 10 full tracks' worth sequentially from LBN 0 in one request.
	n := 334 * 10
	svc := d.EstimateAccess(reqAt(0, n), 0)
	bytes := float64(n) * 512
	mbps := bytes / (svc / 1000) / 1e6
	// Skews cost some rotation on head switches; expect within 2× of the
	// 28.6 MB/s outer rate and well above the inner rate.
	if mbps < 14 || mbps > 29 {
		t.Errorf("sequential rate = %.1f MB/s, want 14–29", mbps)
	}
}

func TestAccessPanicsOnBadRequests(t *testing.T) {
	d := testDisk(t)
	for _, r := range []*core.Request{
		reqAt(-1, 8),
		reqAt(0, 0),
		reqAt(d.Capacity(), 1),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", r)
				}
			}()
			d.Access(r, 0)
		}()
	}
}

func TestSetStatePanics(t *testing.T) {
	d := testDisk(t)
	for _, f := range []func(){
		func() { d.SetState(-1, 0) },
		func() { d.SetState(0, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAverageRandomAccessBallpark(t *testing.T) {
	// A 10K RPM drive with 5 ms average seek: random 4 KB accesses should
	// average ≈ overhead + avg seek + half rotation + transfer ≈ 8–9 ms.
	d := testDisk(t)
	rng := rand.New(rand.NewSource(17))
	now, sum := 0.0, 0.0
	const n = 3000
	for i := 0; i < n; i++ {
		lbn := rng.Int63n(d.Capacity() - 8)
		svc := d.Access(reqAt(lbn, 8), now)
		sum += svc
		now += svc
	}
	avg := sum / n
	if avg < 6 || avg > 11 {
		t.Errorf("average random 4 KB access = %.2f ms, want ≈ 8–9", avg)
	}
	t.Logf("average random 4 KB disk access: %.2f ms", avg)
}

func TestMustDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	cfg := Atlas10K()
	cfg.RPM = -5
	MustDevice(cfg)
}
