package mems

import "testing"

func TestGenerationsValidAndMonotone(t *testing.T) {
	var caps, bws []float64
	for i, cfg := range []Config{ConfigGen1(), ConfigGen2(), ConfigGen3()} {
		g, err := NewGeometry(cfg)
		if err != nil {
			t.Fatalf("generation %d invalid: %v", i+1, err)
		}
		caps = append(caps, float64(g.CapacityBytes()))
		bws = append(bws, g.StreamBandwidth())
	}
	for i := 1; i < 3; i++ {
		if caps[i] <= caps[i-1] {
			t.Errorf("capacity not increasing at generation %d: %v", i+1, caps)
		}
		if bws[i] <= bws[i-1] {
			t.Errorf("bandwidth not increasing at generation %d: %v", i+1, bws)
		}
	}
}

func TestGen1IsDefault(t *testing.T) {
	if ConfigGen1() != DefaultConfig() {
		t.Error("Gen1 must alias the Table 1 device")
	}
}

func TestLaterGenerationsAccessFaster(t *testing.T) {
	// Stronger actuators + stiffer suspension + faster tips: the average
	// random access must improve generation over generation.
	prev := 0.0
	for i, cfg := range []Config{ConfigGen1(), ConfigGen2(), ConfigGen3()} {
		d, err := NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Geometry()
		// Deterministic probe: average of a fixed far/near pair.
		d.Reset()
		far := d.EstimateAccess(reqAt(g.LBN(g.Cylinders-1, 0, 0, 0), 8), 0)
		near := d.EstimateAccess(reqAt(g.LBN(g.Cylinders/2, 0, 0, 0), 8), 0)
		avg := (far + near) / 2
		if i > 0 && avg >= prev {
			t.Errorf("generation %d access %.3f ms not faster than %.3f", i+1, avg, prev)
		}
		prev = avg
	}
}
