package sim

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/workload"
)

// fixedDevice services every request in a constant time; it isolates the
// queueing logic from device mechanics.
type fixedDevice struct {
	svc float64
}

func (f *fixedDevice) Name() string                                  { return "fixed" }
func (f *fixedDevice) Capacity() int64                               { return 1 << 30 }
func (f *fixedDevice) SectorSize() int                               { return 512 }
func (f *fixedDevice) Reset()                                        {}
func (f *fixedDevice) Access(*core.Request, float64) float64         { return f.svc }
func (f *fixedDevice) EstimateAccess(*core.Request, float64) float64 { return f.svc }

func mkReqs(arrivals []float64) []*core.Request {
	var out []*core.Request
	for _, a := range arrivals {
		out = append(out, &core.Request{Arrival: a, Op: core.Read, LBN: 0, Blocks: 1})
	}
	return out
}

func TestRunNoContention(t *testing.T) {
	// Arrivals far apart: response time = service time exactly.
	d := &fixedDevice{svc: 2}
	src := workload.NewFromSlice(mkReqs([]float64{0, 100, 200}))
	res := Run(nil, d, sched.NewFCFS(), src, Options{})
	if res.Requests != 3 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.Response.Mean() != 2 || res.Response.Variance() != 0 {
		t.Errorf("response mean=%g var=%g, want 2/0", res.Response.Mean(), res.Response.Variance())
	}
	if res.Elapsed != 202 {
		t.Errorf("elapsed = %g, want 202", res.Elapsed)
	}
	if got := res.Utilization(); math.Abs(got-6.0/202) > 1e-12 {
		t.Errorf("utilization = %g", got)
	}
}

func TestRunQueueing(t *testing.T) {
	// Three simultaneous arrivals, 2 ms service: responses 2, 4, 6.
	d := &fixedDevice{svc: 2}
	src := workload.NewFromSlice(mkReqs([]float64{0, 0, 0}))
	var responses []float64
	res := Run(nil, d, sched.NewFCFS(), src, Options{
		OnComplete: func(r *core.Request) { responses = append(responses, r.ResponseTime()) },
	})
	sort.Float64s(responses)
	want := []float64{2, 4, 6}
	for i := range want {
		if math.Abs(responses[i]-want[i]) > 1e-12 {
			t.Fatalf("responses = %v, want %v", responses, want)
		}
	}
	if res.Response.Mean() != 4 {
		t.Errorf("mean response = %g, want 4", res.Response.Mean())
	}
	if res.MaxQueue != 3 {
		t.Errorf("max queue = %d, want 3", res.MaxQueue)
	}
}

func TestRunWarmup(t *testing.T) {
	d := &fixedDevice{svc: 1}
	src := workload.NewFromSlice(mkReqs([]float64{0, 10, 20, 30}))
	res := Run(nil, d, sched.NewFCFS(), src, Options{Warmup: 2})
	if res.Requests != 2 {
		t.Errorf("measured requests = %d, want 2", res.Requests)
	}
}

func TestRunMaxRequests(t *testing.T) {
	d := &fixedDevice{svc: 1}
	src := workload.NewFromSlice(mkReqs(make([]float64, 100)))
	res := Run(nil, d, sched.NewFCFS(), src, Options{MaxRequests: 10})
	if res.Requests != 10 {
		t.Errorf("requests = %d, want 10", res.Requests)
	}
}

func TestRunSchedulerSeesArrivedOnly(t *testing.T) {
	// A request that arrives while another is in service must not be
	// dispatched before its arrival time.
	d := &fixedDevice{svc: 5}
	reqs := mkReqs([]float64{0, 1})
	src := workload.NewFromSlice(reqs)
	Run(nil, d, sched.NewFCFS(), src, Options{})
	if reqs[1].Start < reqs[1].Arrival {
		t.Errorf("request started at %g before arriving at %g", reqs[1].Start, reqs[1].Arrival)
	}
	if reqs[1].Start != 5 {
		t.Errorf("second request started at %g, want 5", reqs[1].Start)
	}
}

func TestRunIdlePeriods(t *testing.T) {
	// Device idles between well-spaced arrivals; utilization < 1 and
	// elapsed time tracks the last completion.
	d := &fixedDevice{svc: 1}
	src := workload.NewFromSlice(mkReqs([]float64{0, 50}))
	res := Run(nil, d, sched.NewFCFS(), src, Options{})
	if res.Elapsed != 51 {
		t.Errorf("elapsed = %g, want 51", res.Elapsed)
	}
	if res.Busy != 2 {
		t.Errorf("busy = %g, want 2", res.Busy)
	}
}

func TestRunDeterministic(t *testing.T) {
	d := mems.MustDevice(mems.DefaultConfig())
	run := func() float64 {
		src := workload.DefaultRandom(800, 512, d.Capacity(), 2000, 11)
		res := Run(nil, d, sched.NewSPTF(), src, Options{Warmup: 100})
		return res.Response.Mean()
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("runs differ: %g vs %g", a, b)
	}
}

func TestRunMEMSFasterThanDisk(t *testing.T) {
	// The headline device property: at the same moderate workload, the
	// MEMS device's mean response time is an order of magnitude below
	// the disk's.
	md := mems.MustDevice(mems.DefaultConfig())
	dd := disk.MustDevice(disk.Atlas10K())
	mres := Run(nil, md, sched.NewFCFS(), workload.DefaultRandom(50, 512, md.Capacity(), 3000, 1), Options{Warmup: 200})
	dres := Run(nil, dd, sched.NewFCFS(), workload.DefaultRandom(50, 512, dd.Capacity(), 3000, 1), Options{Warmup: 200})
	if mres.Response.Mean()*5 > dres.Response.Mean() {
		t.Errorf("MEMS %.3f ms vs disk %.3f ms: want ≥ 5× gap",
			mres.Response.Mean(), dres.Response.Mean())
	}
}

func TestSchedulingReducesResponseUnderLoad(t *testing.T) {
	// At high load on the MEMS device, SPTF must beat FCFS decisively
	// (Fig. 6a).
	d := mems.MustDevice(mems.DefaultConfig())
	run := func(s core.Scheduler) float64 {
		src := workload.DefaultRandom(1100, 512, d.Capacity(), 8000, 3)
		return Run(nil, d, s, src, Options{Warmup: 500}).Response.Mean()
	}
	fcfs := run(sched.NewFCFS())
	sptf := run(sched.NewSPTF())
	if sptf*1.2 > fcfs {
		t.Errorf("SPTF %.3f ms vs FCFS %.3f ms at 1100 req/s: want clear win", sptf, fcfs)
	}
}

func TestRunClosedBackToBack(t *testing.T) {
	d := &fixedDevice{svc: 3}
	src := workload.NewFromSlice(mkReqs([]float64{0, 0, 0, 0}))
	res := RunClosed(nil, d, src, Options{})
	if res.Requests != 4 || res.Elapsed != 12 {
		t.Errorf("closed run: n=%d elapsed=%g", res.Requests, res.Elapsed)
	}
	if res.Service.Mean() != 3 {
		t.Errorf("service mean = %g", res.Service.Mean())
	}
	if res.Utilization() != 1 {
		t.Errorf("closed run utilization = %g, want 1", res.Utilization())
	}
}

func TestRunClosedMaxRequests(t *testing.T) {
	d := &fixedDevice{svc: 1}
	src := workload.NewFromSlice(mkReqs(make([]float64, 50)))
	res := RunClosed(nil, d, src, Options{MaxRequests: 5})
	if res.Requests != 5 {
		t.Errorf("requests = %d", res.Requests)
	}
}

func TestResultString(t *testing.T) {
	var r Result
	if r.String() == "" || r.Utilization() != 0 {
		t.Error("zero result string/utilization")
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	var order []int
	q.Schedule(3, func() { order = append(order, 3) })
	q.Schedule(1, func() { order = append(order, 1) })
	q.Schedule(2, func() { order = append(order, 2) })
	for q.Step() {
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if q.Now() != 3 {
		t.Errorf("now = %g", q.Now())
	}
}

func TestEventQueueStableTies(t *testing.T) {
	var q EventQueue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(5, func() { order = append(order, i) })
	}
	for q.Step() {
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestEventQueueCascade(t *testing.T) {
	// Events may schedule further events.
	var q EventQueue
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			q.Schedule(q.Now()+1, tick)
		}
	}
	q.Schedule(0, tick)
	q.RunUntil(100)
	if count != 5 {
		t.Errorf("cascade count = %d, want 5", count)
	}
	if q.Now() != 100 {
		t.Errorf("RunUntil should advance now to 100, got %g", q.Now())
	}
}

func TestEventQueueRunUntilStopsEarly(t *testing.T) {
	var q EventQueue
	ran := false
	q.Schedule(10, func() { ran = true })
	q.RunUntil(5)
	if ran {
		t.Error("event at t=10 ran during RunUntil(5)")
	}
	if q.Len() != 1 {
		t.Errorf("pending = %d", q.Len())
	}
	q.RunUntil(15)
	if !ran {
		t.Error("event never ran")
	}
}

func TestEventQueuePastPanics(t *testing.T) {
	var q EventQueue
	q.Schedule(5, func() {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	q.Schedule(1, func() {})
}

func TestRunMatchesMD1Theory(t *testing.T) {
	// Validate the queueing engine against theory: Poisson arrivals into
	// a deterministic server (M/D/1) have a known mean wait
	// W = ρ·S / (2(1−ρ)). Run at ρ = 0.6 and compare.
	const (
		svc  = 2.0 // ms
		rate = 300 // req/s → ρ = 0.6
		rho  = 0.6
	)
	d := &fixedDevice{svc: svc}
	src := workload.DefaultRandom(rate, 512, 1<<30, 200000, 123)
	res := Run(nil, d, sched.NewFCFS(), src, Options{Warmup: 5000})
	wantWait := rho * svc / (2 * (1 - rho)) // 1.5 ms
	gotWait := res.Response.Mean() - svc
	if math.Abs(gotWait-wantWait) > 0.15 {
		t.Errorf("M/D/1 mean wait = %.3f ms, theory %.3f ms", gotWait, wantWait)
	}
	// Utilization should match ρ.
	if math.Abs(res.Utilization()-rho) > 0.02 {
		t.Errorf("utilization = %.3f, want %.2f", res.Utilization(), rho)
	}
}

func TestContextProgress(t *testing.T) {
	d := &fixedDevice{svc: 1}
	src := workload.NewFromSlice(mkReqs(make([]float64, 25)))
	var at []int
	ctx := &Context{
		ProgressEvery: 10,
		OnProgress:    func(completed int, _ float64) { at = append(at, completed) },
	}
	Run(ctx, d, sched.NewFCFS(), src, Options{})
	if len(at) != 2 || at[0] != 10 || at[1] != 20 {
		t.Errorf("progress fired at %v, want [10 20]", at)
	}
	// A nil context is valid everywhere.
	src = workload.NewFromSlice(mkReqs(make([]float64, 3)))
	Run(nil, d, sched.NewFCFS(), src, Options{})
}

func TestContextProgressDefaultInterval(t *testing.T) {
	d := &fixedDevice{svc: 0.001}
	src := workload.NewFromSlice(mkReqs(make([]float64, 2500)))
	fired := 0
	ctx := &Context{OnProgress: func(int, float64) { fired++ }}
	RunClosed(ctx, d, src, Options{})
	if fired != 2 { // defaults to every 1000 completions
		t.Errorf("default interval fired %d times, want 2", fired)
	}
}
