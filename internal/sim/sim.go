// Package sim is the discrete-event simulation substrate standing in for
// DiskSim (§3): an open-arrival, single-server queueing system in which
// timestamped requests arrive from a workload source, wait in a scheduler
// queue, and are serviced one at a time by a mechanically-detailed device
// model.
//
// The simulator is deterministic: identical sources, schedulers and
// devices produce identical results.
package sim

import (
	"container/heap"
	"fmt"

	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/stats"
	"memsim/internal/workload"
)

// Context carries run-scoped observability through the simulation entry
// points (Run, RunClosed, RunMulti). It separates *how a run is watched*
// from Options, which describe *what is simulated*: the parallel
// experiment runner and the interactive CLIs thread a Context through
// without touching the experiment declarations. A nil *Context is valid
// and observes nothing.
type Context struct {
	// OnProgress, when non-nil, is invoked after every ProgressEvery
	// completions (warmup included) with the completion count and the
	// current simulated time in milliseconds.
	OnProgress func(completed int, simMs float64)
	// ProgressEvery is the completion interval between OnProgress calls;
	// zero or negative means 1000.
	ProgressEvery int
}

// progress reports one completion, firing OnProgress on interval
// boundaries. Safe on a nil receiver.
func (c *Context) progress(completed int, simMs float64) {
	if c == nil || c.OnProgress == nil {
		return
	}
	every := c.ProgressEvery
	if every <= 0 {
		every = 1000
	}
	if completed%every == 0 {
		c.OnProgress(completed, simMs)
	}
}

// Options tunes a simulation run.
type Options struct {
	// Warmup excludes the first N completed requests from the reported
	// statistics, hiding cold-start transients.
	Warmup int
	// MaxRequests stops the run after this many completions (0 = run the
	// source dry).
	MaxRequests int
	// OnComplete, when non-nil, observes every completed request
	// (including warmup ones).
	OnComplete func(*core.Request)
	// Injector, when non-nil, drives deterministic fault injection through
	// the run (Run and RunClosed): transient positioning errors recovered
	// by bounded device-level retry at the §6.1.3 penalty, scheduled tip
	// failures evolving the redundancy array mid-run, and
	// ECC-reconstruction surcharges on degraded-stripe reads. The injector
	// is Reset alongside the device and scheduler. A zero-rate, event-free
	// injector reproduces the no-injector run byte for byte.
	Injector *fault.Injector
	// Probe, when non-nil, observes typed request-lifecycle events
	// (arrive, dispatch, per-phase service, retry/requeue, complete)
	// through Run, RunClosed and RunMulti. A nil Probe is zero-cost and
	// byte-identical to an unprobed run. Probes with run-scoped state
	// (PhaseCollector) are reset alongside the device and scheduler.
	Probe Probe
}

// Result summarizes a run. Response time (queue + service) and its
// squared coefficient of variation are the paper's two scheduler metrics
// (§4.1).
type Result struct {
	// Requests is the number of completions measured (after warmup).
	Requests int
	// Response accumulates response times in ms.
	Response stats.Welford
	// Service accumulates device service times in ms.
	Service stats.Welford
	// QueueLen accumulates the queue length seen at each dispatch.
	QueueLen stats.Welford
	// MaxQueue is the largest queue length observed.
	MaxQueue int
	// Busy is the total device busy time in ms.
	Busy float64
	// Elapsed is the completion time of the last request in ms.
	Elapsed float64

	// The fault-injection counters below cover the entire run, warmup
	// included — they describe the run's fault activity, not the measured
	// window — and stay zero without an injector. Failed requests are
	// excluded from Requests and the Response/Service statistics, so the
	// paper's metrics keep their meaning under injection.

	// Retries is the number of transient-error retries charged.
	Retries int
	// Recovered is the number of requests that suffered at least one
	// transient error but still completed successfully.
	Recovered int
	// FailedRequests is the number of requests that exhausted every retry
	// and requeue and completed in error.
	FailedRequests int
	// DegradedReads is the number of reads that paid ECC reconstruction
	// for sectors on a degraded stripe.
	DegradedReads int
	// Requeues is the number of scheduler requeues after failed service
	// visits.
	Requeues int
	// RecoveryMs is the total added recovery time in ms (retry penalties
	// plus ECC surcharges).
	RecoveryMs float64
	// LostReads is the number of reads that addressed unrecoverable
	// sectors (a stripe past its ECC budget, or a lost volume) and
	// completed in error instead of being silently served. Each is also
	// counted in FailedRequests.
	LostReads int
	// DataLoss reports that the run ended with unrecoverable data: the
	// injector's tip array exceeded its ECC budget in some stripe, or a
	// redundant volume suffered a second concurrent member failure.
	DataLoss bool

	// Phases holds the per-phase service aggregates when the run's Probe
	// contained a PhaseCollector; nil otherwise.
	Phases *PhaseStats

	// Members holds per-member-device aggregates for multi-queue runs
	// (RunMulti, RunVolume); nil for single-device runs.
	Members []MemberResult
	// Volume holds redundancy/failover aggregates for RunVolume runs;
	// nil otherwise.
	Volume *VolumeStats
}

// MemberResult aggregates one member device's share of a multi-queue
// run.
type MemberResult struct {
	// Requests counts the member-level operations the device served
	// (whole volume requests for RunMulti; member ops — including
	// rebuild traffic — for RunVolume). The entire run is covered,
	// warmup included.
	Requests int
	// Busy is the device's total busy time in ms.
	Busy float64
	// Phases holds the member's per-phase service aggregates when the
	// run's Probe contained a PhaseCollector; nil otherwise. RunMulti
	// folds one observation per measured completed request; RunVolume
	// folds one per service visit (rebuild visits included).
	Phases *PhaseStats
}

// Utilization returns the fraction of elapsed time the device was busy.
func (r *Result) Utilization() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return r.Busy / r.Elapsed
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("n=%d mean-response=%.3fms cv²=%.2f mean-service=%.3fms util=%.0f%%",
		r.Requests, r.Response.Mean(), r.Response.SquaredCV(), r.Service.Mean(), r.Utilization()*100)
}

// serveOne runs one service visit for r on d at time now, applying fault
// injection when inj is non-nil: scheduled tip events fire first, then
// transient positioning errors are retried inline — each charged the
// device's §6.1.3 recovery penalty — up to the injector's per-visit
// budget, and surviving degraded-stripe reads pay ECC reconstruction. It
// returns the visit's total device time and whether the request must go
// back to the scheduler for another visit.
//
// When p is non-nil the visit's phase breakdown (recovery surcharges
// included) accumulates into r.Phases, retries emit EventRetry, and the
// visit closes with EventService; a nil p skips every piece of that
// bookkeeping.
func serveOne(d core.Device, r *core.Request, now float64, inj *fault.Injector, res *Result, p Probe) (svc float64, requeue bool) {
	var bd core.Breakdown
	serviced := func() {
		if p == nil {
			return
		}
		r.Phases.Accumulate(bd)
		p.Observe(ProbeEvent{Kind: EventService, Time: now + svc, Req: r, Breakdown: bd})
	}
	if inj == nil {
		svc = d.Access(r, now)
		if p != nil {
			bd = breakdownOf(d, svc)
			serviced()
		}
		return svc, false
	}
	inj.Advance(now)
	svc = d.Access(r, now)
	if p != nil {
		bd = breakdownOf(d, svc)
	}
	if r.Op == core.Read && inj.LostBlocks(r.LBN, r.Blocks) > 0 {
		// The addressed sectors are unrecoverable (stripe past its ECC
		// budget): the request fails outright — no retry or requeue can
		// bring the data back, and serving it silently would be a
		// correctness bug, not a performance event.
		r.Failed = true
		res.LostReads++
		serviced()
		return svc, false
	}
	retries := 0
	for inj.TransientError() {
		if retries >= inj.MaxRetries() {
			// The visit failed: requeue while budget remains, else the
			// request completes in error.
			if r.Requeues < inj.MaxRequeues() {
				r.Requeues++
				res.Requeues++
				serviced()
				return svc, true
			}
			r.Failed = true
			serviced()
			return svc, false
		}
		pen := inj.FallbackPenaltyMs()
		if rm, ok := d.(core.RecoveryModel); ok {
			pen = rm.ErrorPenalty(r, now+svc, inj.Draw())
		}
		retries++
		r.Retries++
		r.RecoveryMs += pen
		res.Retries++
		res.RecoveryMs += pen
		svc += pen
		if p != nil {
			bd.Recovery += pen
			bd.ServiceMs += pen
			p.Observe(ProbeEvent{Kind: EventRetry, Time: now + svc, Req: r,
				Breakdown: core.Breakdown{Recovery: pen, ServiceMs: pen}})
		}
	}
	if r.Op == core.Read {
		if n := inj.DegradedBlocks(r.LBN, r.Blocks); n > 0 {
			sur := float64(n) * inj.ECCSurchargeMs()
			r.Degraded = true
			r.RecoveryMs += sur
			res.RecoveryMs += sur
			svc += sur
			if p != nil {
				bd.Recovery += sur
				bd.ServiceMs += sur
			}
		}
	}
	serviced()
	return svc, false
}

// requeue returns r to the scheduler after a failed service visit,
// preferring the scheduler's Requeue method (retried requests keep their
// place) over a plain Add.
func requeue(s core.Scheduler, r *core.Request) {
	if rq, ok := s.(core.Requeuer); ok {
		rq.Requeue(r)
		return
	}
	s.Add(r)
}

// classify tallies a finished request's fault outcome.
func classify(r *core.Request, res *Result) {
	if r.Failed {
		res.FailedRequests++
	} else if r.Retries > 0 {
		res.Recovered++
	}
	if r.Degraded {
		res.DegradedReads++
	}
}

// Run executes an open-arrival simulation: requests arrive at their
// source-assigned times, queue in s, and are serviced by d. The device
// and scheduler (and injector, if any) are Reset before the run. Under
// fault injection a request whose service visit exhausts its retry
// budget is requeued and serviced again later; past its requeue budget
// it completes as failed, excluded from the response statistics but
// counted in Result.FailedRequests.
func Run(ctx *Context, d core.Device, s core.Scheduler, src workload.Source, opts Options) Result {
	d.Reset()
	s.Reset()
	inj := opts.Injector
	if inj != nil {
		inj.Reset()
	}
	p := opts.Probe
	resetProbe(p)
	var res Result
	now := 0.0
	next := src.Next()
	completed := 0
	for {
		if opts.MaxRequests > 0 && completed >= opts.MaxRequests {
			break
		}
		// Ingest every request that has arrived by `now`.
		for next != nil && next.Arrival <= now {
			s.Add(next)
			if p != nil {
				p.Observe(ProbeEvent{Kind: EventArrive, Time: next.Arrival, Req: next, Queue: s.Len()})
			}
			next = src.Next()
		}
		if s.Len() == 0 {
			if next == nil {
				break // drained
			}
			// Idle until the next arrival.
			now = next.Arrival
			continue
		}
		qlen := s.Len()
		r := s.Next(d, now)
		if r.Requeues == 0 {
			r.Start = now
		}
		if p != nil {
			p.Observe(ProbeEvent{Kind: EventDispatch, Time: now, Req: r, Queue: qlen})
		}
		svc, again := serveOne(d, r, now, inj, &res, p)
		now += svc
		res.Busy += svc
		if again {
			requeue(s, r)
			if p != nil {
				p.Observe(ProbeEvent{Kind: EventRequeue, Time: now, Req: r, Queue: s.Len()})
			}
			continue
		}
		r.Finish = now
		completed++
		ctx.progress(completed, now)
		if p != nil {
			p.Observe(ProbeEvent{Kind: EventComplete, Time: now, Req: r,
				Measured: completed > opts.Warmup && !r.Failed})
		}
		if opts.OnComplete != nil {
			opts.OnComplete(r)
		}
		if inj != nil {
			classify(r, &res)
		}
		if completed > opts.Warmup && !r.Failed {
			res.Requests++
			res.Response.Add(r.ResponseTime())
			res.Service.Add(r.ServiceTime())
			res.QueueLen.Add(float64(qlen))
			if qlen > res.MaxQueue {
				res.MaxQueue = qlen
			}
		}
	}
	res.Elapsed = now
	res.Phases = phaseStats(p)
	if inj != nil && inj.Array() != nil {
		res.DataLoss = inj.Array().DataLoss()
	}
	return res
}

// RunClosed executes a closed, back-to-back simulation: each request
// begins the moment the previous one completes (no queueing). This is the
// regime of the data-placement experiments (§5.3), which compare average
// service times.
func RunClosed(ctx *Context, d core.Device, src workload.Source, opts Options) Result {
	d.Reset()
	inj := opts.Injector
	if inj != nil {
		inj.Reset()
	}
	p := opts.Probe
	resetProbe(p)
	var res Result
	now := 0.0
	completed := 0
	for r := src.Next(); r != nil; r = src.Next() {
		if opts.MaxRequests > 0 && completed >= opts.MaxRequests {
			break
		}
		r.Arrival = now
		r.Start = now
		if p != nil {
			// Closed regime: arrival and dispatch coincide; the "queue"
			// is the request itself.
			p.Observe(ProbeEvent{Kind: EventArrive, Time: now, Req: r, Queue: 1})
			p.Observe(ProbeEvent{Kind: EventDispatch, Time: now, Req: r, Queue: 1})
		}
		// With no queue to return to, a failed visit re-services the
		// request immediately, spending the requeue budget in place.
		total := 0.0
		for {
			svc, again := serveOne(d, r, now, inj, &res, p)
			now += svc
			total += svc
			res.Busy += svc
			if !again {
				break
			}
			if p != nil {
				p.Observe(ProbeEvent{Kind: EventRequeue, Time: now, Req: r, Queue: 1})
			}
		}
		r.Finish = now
		completed++
		ctx.progress(completed, now)
		if p != nil {
			p.Observe(ProbeEvent{Kind: EventComplete, Time: now, Req: r,
				Measured: completed > opts.Warmup && !r.Failed})
		}
		if opts.OnComplete != nil {
			opts.OnComplete(r)
		}
		if inj != nil {
			classify(r, &res)
		}
		if completed > opts.Warmup && !r.Failed {
			res.Requests++
			res.Response.Add(total)
			res.Service.Add(total)
		}
	}
	res.Elapsed = now
	res.Phases = phaseStats(p)
	if inj != nil && inj.Array() != nil {
		res.DataLoss = inj.Array().DataLoss()
	}
	return res
}

// ─── Generic event queue ───────────────────────────────────────────────
//
// The queueing loops above need no event heap, but other simulations in
// this repository (the power-management policies, which juggle idle
// timers and restarts) do. EventQueue is a minimal deterministic
// time-ordered event list with stable FIFO ordering for simultaneous
// events.

// Event is a timestamped callback.
type Event struct {
	Time float64
	Fn   func()

	seq int // insertion order, for stable ordering of ties
}

// EventQueue dispatches events in time order. The zero value is ready to
// use.
type EventQueue struct {
	h   eventHeap
	seq int
	now float64
}

// Now returns the time of the most recently dispatched event.
func (q *EventQueue) Now() float64 { return q.now }

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time t. Scheduling in the past (before
// the last dispatched event) panics: it indicates a simulation bug.
func (q *EventQueue) Schedule(t float64, fn func()) {
	if t < q.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before current time %g", t, q.now))
	}
	q.seq++
	heap.Push(&q.h, &Event{Time: t, Fn: fn, seq: q.seq})
}

// Step dispatches the earliest event; it reports whether one was run.
func (q *EventQueue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*Event)
	q.now = e.Time
	e.Fn()
	return true
}

// RunUntil dispatches events until the queue is empty or the next event
// is after t.
func (q *EventQueue) RunUntil(t float64) {
	for len(q.h) > 0 && q.h[0].Time <= t {
		q.Step()
	}
	if q.now < t {
		q.now = t
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
