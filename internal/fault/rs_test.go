package fault

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFMulProperties(t *testing.T) {
	// Multiplication by 1 is identity, by 0 is 0; commutative;
	// distributes over XOR (addition).
	f := func(a, b, c byte) bool {
		if gfMul(a, 1) != a || gfMul(a, 0) != 0 {
			return false
		}
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGFDivInvertsMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for _, b := range []int{1, 2, 3, 7, 29, 133, 255} {
			p := gfMul(byte(a), byte(b))
			if got := gfDiv(p, byte(b)); got != byte(a) {
				t.Fatalf("(%d·%d)/%d = %d", a, b, b, got)
			}
		}
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	gfDiv(5, 0)
}

func TestNewRSValidation(t *testing.T) {
	for _, c := range []struct{ k, m int }{{0, 1}, {-1, 2}, {1, -1}, {200, 100}} {
		if _, err := NewRS(c.k, c.m); err == nil {
			t.Errorf("NewRS(%d,%d): expected error", c.k, c.m)
		}
	}
	if _, err := NewRS(64, 2); err != nil {
		t.Errorf("NewRS(64,2): %v", err)
	}
}

func mkShards(k, m, n int, rng *rand.Rand) [][]byte {
	shards := make([][]byte, k+m)
	for i := range shards {
		shards[i] = make([]byte, n)
		if i < k {
			rng.Read(shards[i])
		}
	}
	return shards
}

func TestRSEncodeReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ k, m int }{{4, 2}, {64, 2}, {64, 8}, {10, 1}, {1, 3}} {
		rs, err := NewRS(c.k, c.m)
		if err != nil {
			t.Fatal(err)
		}
		shards := mkShards(c.k, c.m, 8, rng)
		if err := rs.Encode(shards); err != nil {
			t.Fatal(err)
		}
		orig := make([][]byte, len(shards))
		for i, s := range shards {
			orig[i] = append([]byte(nil), s...)
		}
		// Erase up to m random shards and reconstruct.
		for trial := 0; trial < 20; trial++ {
			work := make([][]byte, len(shards))
			present := make([]bool, len(shards))
			for i := range shards {
				work[i] = append([]byte(nil), orig[i]...)
				present[i] = true
			}
			erase := rng.Perm(c.k + c.m)[:rng.Intn(c.m+1)]
			for _, e := range erase {
				present[e] = false
				for j := range work[e] {
					work[e][j] = 0xAA // scribble
				}
			}
			if err := rs.Reconstruct(work, present); err != nil {
				t.Fatalf("k=%d m=%d erased=%v: %v", c.k, c.m, erase, err)
			}
			for i := range work {
				if !bytes.Equal(work[i], orig[i]) {
					t.Fatalf("k=%d m=%d erased=%v: shard %d not recovered", c.k, c.m, erase, i)
				}
			}
		}
	}
}

func TestRSTooManyErasures(t *testing.T) {
	rs, _ := NewRS(4, 2)
	rng := rand.New(rand.NewSource(2))
	shards := mkShards(4, 2, 4, rng)
	if err := rs.Encode(shards); err != nil {
		t.Fatal(err)
	}
	present := []bool{false, false, false, true, true, true}
	if err := rs.Reconstruct(shards, present); err == nil {
		t.Error("expected error with k-1 shards present")
	}
}

func TestRSShardValidation(t *testing.T) {
	rs, _ := NewRS(2, 1)
	if err := rs.Encode([][]byte{{1}, {2}}); err == nil {
		t.Error("expected error for wrong shard count")
	}
	if err := rs.Encode([][]byte{{1}, {2, 3}, {0}}); err == nil {
		t.Error("expected error for ragged shards")
	}
	if err := rs.Encode([][]byte{{1}, nil, {0}}); err == nil {
		t.Error("expected error for nil shard")
	}
	if err := rs.Reconstruct([][]byte{{1}, {2}, {3}}, []bool{true, true}); err == nil {
		t.Error("expected error for wrong mask length")
	}
}

func TestRSZeroParityIsNoop(t *testing.T) {
	rs, err := NewRS(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{{1, 2}, {3, 4}, {5, 6}}
	if err := rs.Encode(shards); err != nil {
		t.Fatal(err)
	}
	if err := rs.Reconstruct(shards, []bool{true, true, true}); err != nil {
		t.Fatal(err)
	}
}

func TestRSParityDetectsChange(t *testing.T) {
	// Different data must produce different parity (for a single byte
	// change, RS parity always changes).
	rs, _ := NewRS(8, 2)
	rng := rand.New(rand.NewSource(3))
	a := mkShards(8, 2, 4, rng)
	if err := rs.Encode(a); err != nil {
		t.Fatal(err)
	}
	b := make([][]byte, len(a))
	for i, s := range a {
		b[i] = append([]byte(nil), s...)
	}
	b[3][2] ^= 0x55
	if err := rs.Encode(b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a[8], b[8]) && bytes.Equal(a[9], b[9]) {
		t.Error("parity unchanged after data change")
	}
}

func TestRSAccessors(t *testing.T) {
	rs, _ := NewRS(64, 8)
	if rs.DataShards() != 64 || rs.ParityShards() != 8 {
		t.Error("accessors wrong")
	}
}

func BenchmarkRSEncode64Plus2(b *testing.B) {
	// The paper's stripe: 64 tip sectors of 8 bytes, 2 parity tips.
	rs, _ := NewRS(64, 2)
	rng := rand.New(rand.NewSource(4))
	shards := mkShards(64, 2, 8, rng)
	b.SetBytes(64 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rs.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSReconstruct2Of66(b *testing.B) {
	rs, _ := NewRS(64, 2)
	rng := rand.New(rand.NewSource(5))
	shards := mkShards(64, 2, 8, rng)
	if err := rs.Encode(shards); err != nil {
		b.Fatal(err)
	}
	present := make([]bool, 66)
	for i := range present {
		present[i] = true
	}
	present[10], present[40] = false, false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rs.Reconstruct(shards, present); err != nil {
			b.Fatal(err)
		}
	}
}
