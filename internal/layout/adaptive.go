package layout

import (
	"fmt"
	"sort"
)

// AdaptiveOrganPipe implements the maintenance side of the organ-pipe
// layout that §5.3 charges against it: "blocks must be periodically
// shuffled to maintain the frequency distribution. Further, the layout
// requires some state to be kept indicating each block's popularity."
//
// The device's LBN space is divided into fixed-size extents. Accesses
// are recorded per extent; Reshuffle re-ranks extents by (decayed)
// popularity and assigns them to slots spreading outward from the center
// of the LBN space, reporting how many blocks a data migrator would have
// to move. Map implements core.Layout, so the remapper drops into
// core.ManagedDevice; requests must not cross extent boundaries (the
// granularity is chosen per workload — see §5.3's item sizes).
type AdaptiveOrganPipe struct {
	capacity     int64
	extentBlocks int64
	extents      int64

	counts []float64 // decayed access counts per extent
	slot   []int64   // extent → current slot
	// slotOrder[i] is the i-th slot in center-out preference order;
	// orderIdx inverts it (slot → preference index).
	slotOrder []int64
	orderIdx  []int64
	// Decay multiplies historical counts at each reshuffle; 0 forgets
	// everything, 1 never forgets. Defaults to 0.5.
	Decay float64
	// Slack is the incremental shuffler's hysteresis: an extent of
	// popularity rank i already sitting within the (i+Slack) most
	// central slots is left alone. Without it, similarly-hot extents
	// endlessly displace one another over exact slots. Defaults to 8.
	Slack int
}

// NewAdaptiveOrganPipe builds the remapper over a device of the given
// capacity with the given extent granularity; capacity must be a
// multiple of extentBlocks.
func NewAdaptiveOrganPipe(capacity, extentBlocks int64) (*AdaptiveOrganPipe, error) {
	if capacity <= 0 || extentBlocks <= 0 {
		return nil, fmt.Errorf("layout: capacity (%d) and extent (%d) must be positive", capacity, extentBlocks)
	}
	if capacity%extentBlocks != 0 {
		return nil, fmt.Errorf("layout: capacity %d not a multiple of extent %d", capacity, extentBlocks)
	}
	n := capacity / extentBlocks
	a := &AdaptiveOrganPipe{
		capacity:     capacity,
		extentBlocks: extentBlocks,
		extents:      n,
		counts:       make([]float64, n),
		slot:         make([]int64, n),
		slotOrder:    make([]int64, n),
		orderIdx:     make([]int64, n),
		Decay:        0.5,
		Slack:        8,
	}
	for i := int64(0); i < n; i++ {
		a.slot[i] = i // identity placement until the first reshuffle
	}
	// Center-out slot preference: center, center+1, center−1, …
	mid := n / 2
	for i := int64(0); i < n; i++ {
		step := (i + 1) / 2
		if i%2 == 1 {
			step = -step
		}
		s := mid + step
		// Clamp ends (asymmetry when n is even).
		if s < 0 {
			s = n - 1 - (-s - 1)
		}
		if s >= n {
			s = s - n
		}
		a.slotOrder[i] = s
	}
	for i, s := range a.slotOrder {
		a.orderIdx[s] = int64(i)
	}
	return a, nil
}

// Name implements core.Layout.
func (a *AdaptiveOrganPipe) Name() string { return "adaptive-organ-pipe" }

// Map implements core.Layout: blocks move with their extent.
func (a *AdaptiveOrganPipe) Map(lbn int64) int64 {
	if lbn < 0 || lbn >= a.capacity {
		panic(fmt.Sprintf("layout: LBN %d outside capacity %d", lbn, a.capacity))
	}
	e := lbn / a.extentBlocks
	return a.slot[e]*a.extentBlocks + lbn%a.extentBlocks
}

// Record observes an access so popularity can be tracked. Call it with
// the *logical* (pre-Map) address.
func (a *AdaptiveOrganPipe) Record(lbn int64, blocks int) {
	if blocks <= 0 || lbn < 0 || lbn+int64(blocks) > a.capacity {
		panic(fmt.Sprintf("layout: Record [%d,%d) outside capacity %d", lbn, lbn+int64(blocks), a.capacity))
	}
	first := lbn / a.extentBlocks
	last := (lbn + int64(blocks) - 1) / a.extentBlocks
	for e := first; e <= last; e++ {
		a.counts[e]++
	}
}

// Reshuffle re-ranks extents by popularity, assigns them center-out, and
// returns the number of blocks whose physical location changed — the
// migration volume a shuffler would move (both reads and writes; callers
// charge 2× this volume against device bandwidth). Historical counts are
// decayed by Decay afterwards.
func (a *AdaptiveOrganPipe) Reshuffle() (blocksMoved int64) {
	rank := a.ranked()
	for i, e := range rank {
		ns := a.slotOrder[i]
		if a.slot[e] != ns {
			blocksMoved += a.extentBlocks
			a.slot[e] = ns
		}
	}
	a.decayCounts()
	return blocksMoved
}

// ReshuffleN is the incremental shuffler real systems run during idle
// time: it corrects at most maxMoves misplaced extents, highest
// popularity rank first, swapping each into its desired slot (the
// displaced extent moves too, so up to 2·maxMoves extents relocate). It
// returns the blocks moved. Counts decay as in Reshuffle.
func (a *AdaptiveOrganPipe) ReshuffleN(maxMoves int) (blocksMoved int64) {
	if maxMoves < 0 {
		panic(fmt.Sprintf("layout: negative maxMoves %d", maxMoves))
	}
	rank := a.ranked()
	// Inverse map: slot → extent occupying it.
	occ := make([]int64, a.extents)
	for e, s := range a.slot {
		occ[s] = int64(e)
	}
	moves := 0
	for i, e := range rank {
		if moves >= maxMoves {
			break
		}
		ns := a.slotOrder[i]
		if a.slot[e] == ns {
			continue
		}
		// Hysteresis: an extent already about as central as its rank
		// deserves stays put; similarly-popular extents must not fight
		// over exact slots.
		if a.orderIdx[a.slot[e]] <= int64(i+a.Slack) {
			continue
		}
		f := occ[ns]
		// Only displace a clearly less popular occupant (2× + 1):
		// background extents that picked up a stray access must not
		// churn, and near-ties are not worth a migration. This is what
		// makes the incremental shuffler converge instead of moving
		// data forever.
		if a.counts[e] <= 2*a.counts[f]+1 {
			continue
		}
		// Swap e into ns; the displaced extent takes e's old slot.
		old := a.slot[e]
		a.slot[e], a.slot[f] = ns, old
		occ[ns], occ[old] = e, f
		blocksMoved += 2 * a.extentBlocks
		moves++
	}
	a.decayCounts()
	return blocksMoved
}

// ranked returns extent indices in decreasing popularity order (stable).
func (a *AdaptiveOrganPipe) ranked() []int64 {
	rank := make([]int64, a.extents)
	for i := range rank {
		rank[i] = int64(i)
	}
	sort.SliceStable(rank, func(i, j int) bool {
		return a.counts[rank[i]] > a.counts[rank[j]]
	})
	return rank
}

func (a *AdaptiveOrganPipe) decayCounts() {
	for i := range a.counts {
		a.counts[i] *= a.Decay
	}
}

// HotExtent returns the currently most-popular extent index (ties go to
// the lowest index); diagnostic.
func (a *AdaptiveOrganPipe) HotExtent() int64 {
	best := int64(0)
	for i := int64(1); i < a.extents; i++ {
		if a.counts[i] > a.counts[best] {
			best = i
		}
	}
	return best
}
