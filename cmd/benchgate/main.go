// Command benchgate compares a current benchrun profile against the
// committed baseline (BENCH_10.json) and fails when a gated benchmark
// regressed beyond the threshold — the CI side of the
// benchmark-regression harness.
//
// Usage:
//
//	go run ./cmd/benchgate -baseline BENCH_10.json -current /tmp/cur.json
//
// Only benchmarks matching -gate (default: the engine hot path,
// BenchmarkRun*/BenchmarkEngineMillion in internal/sim) are enforced;
// everything present in both files is printed for the log. A gated
// benchmark missing from either side is reported but not fatal, so a
// quick (CI-sized) run — whose EngineMillion subbenches carry a
// different n= scale — gates on the benches both profiles share
// instead of comparing across scales.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// Result mirrors cmd/benchrun's record.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File mirrors cmd/benchrun's document.
type File struct {
	GoVersion  string   `json:"go_version"`
	Quick      bool     `json:"quick"`
	Benchmarks []Result `json:"benchmarks"`
}

func load(path string) (map[string]Result, *File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, nil, fmt.Errorf("%s: %v", path, err)
	}
	m := make(map[string]Result, len(f.Benchmarks))
	for _, r := range f.Benchmarks {
		m[r.Package+":"+r.Name] = r
	}
	return m, &f, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_10.json", "committed baseline JSON")
	current := flag.String("current", "", "freshly measured JSON (required)")
	threshold := flag.Float64("threshold", 0.20, "fatal ns/op regression fraction on gated benches")
	gate := flag.String("gate", `internal/sim:Benchmark(Run|EngineMillion)`, "package:name regexp selecting enforced benches")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -gate: %v\n", err)
		os.Exit(2)
	}
	base, baseDoc, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, curDoc, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if baseDoc.Quick != curDoc.Quick {
		fmt.Printf("note: comparing quick=%v against quick=%v — absolute times differ in precision\n",
			curDoc.Quick, baseDoc.Quick)
	}

	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var regressions, gated, compared int
	fmt.Printf("%-68s %14s %14s %8s\n", "benchmark", "base ns/op", "cur ns/op", "Δ")
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		enforced := gateRe.MatchString(k)
		if !ok {
			if enforced {
				fmt.Printf("%-68s %14.0f %14s %8s (gated bench missing from current run)\n",
					k, b.NsPerOp, "—", "—")
			}
			continue
		}
		compared++
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		mark := " "
		if enforced {
			gated++
			mark = "*"
			if delta > *threshold {
				regressions++
				mark = "!"
			}
		}
		fmt.Printf("%-68s %14.0f %14.0f %+7.1f%% %s\n", k, b.NsPerOp, c.NsPerOp, delta*100, mark)
	}
	fmt.Printf("\n%d compared, %d gated (threshold +%.0f%%), %d regressions\n",
		compared, gated, *threshold*100, regressions)
	if gated == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no gated benchmarks were compared — gate pattern or profiles are wrong")
		os.Exit(1)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d gated benchmark(s) regressed beyond +%.0f%% ns/op\n",
			regressions, *threshold*100)
		os.Exit(1)
	}
}
