package experiments

import (
	"fmt"

	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
	"memsim/internal/runner"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

// newMEMS builds the default (Table 1) MEMS device, optionally overriding
// the settling-constant count (Fig. 8 and the "no settle" variants use 0
// or 2).
func newMEMS(settleConstants float64) *mems.Device {
	cfg := mems.DefaultConfig()
	cfg.SettleConstants = settleConstants
	return mems.MustDevice(cfg)
}

// newDisk builds the Atlas-10K-style reference disk.
func newDisk() *disk.Device { return disk.MustDevice(disk.Atlas10K()) }

// memsFactory returns a factory for MEMS devices with the given settling
// constant, so each job gets its own instance.
func memsFactory(settleConstants float64) core.DeviceFactory {
	return func() core.Device { return newMEMS(settleConstants) }
}

// diskFactory is a core.DeviceFactory for the reference disk.
func diskFactory() core.Device { return newDisk() }

// schedFactory returns a factory for the named scheduler. The names come
// from sched.Names, so construction cannot fail.
func schedFactory(name string) core.SchedulerFactory {
	return func() core.Scheduler {
		s, err := sched.New(name)
		if err != nil {
			panic(err)
		}
		return s
	}
}

// sweepPlan declares the random-workload scheduler sweep — one job per
// (rate, scheduler) cell — and assembles the two-panel mean-response /
// cv² tables of Figs. 5, 6 and 8.
func sweepPlan(idPrefix, device string, dev core.DeviceFactory, rates []float64, p Params) *Plan {
	names := sched.Names()
	grid := make([][]*runner.Job, len(rates))
	var jobs []*runner.Job
	for ri, rate := range rates {
		grid[ri] = make([]*runner.Job, len(names))
		for si, name := range names {
			j := &runner.Job{
				Label:     fmt.Sprintf("%s %s rate=%g", idPrefix, name, rate),
				Seed:      p.Seed,
				Device:    dev,
				Scheduler: schedFactory(name),
				Source: func(d core.Device) workload.Source {
					return workload.DefaultRandom(rate, d.SectorSize(), d.Capacity(), p.Requests, p.Seed)
				},
				Options: sim.Options{Warmup: p.Warmup},
			}
			grid[ri][si] = j
			jobs = append(jobs, j)
		}
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			resp := make([][]float64, len(rates))
			cv := make([][]float64, len(rates))
			for ri := range rates {
				resp[ri] = make([]float64, len(names))
				cv[ri] = make([]float64, len(names))
				for si := range names {
					res := grid[ri][si].Result()
					resp[ri][si] = res.Response.Mean()
					cv[ri][si] = res.Response.SquaredCV()
				}
			}
			return sweepTables(idPrefix, device, rates, resp, cv)
		},
	}
}

// sweepTables renders a scheduler sweep into the paper's two-panel form.
func sweepTables(idPrefix, device string, rates []float64, resp, cv [][]float64) []Table {
	a := Table{
		ID:      idPrefix + "a",
		Title:   "average response time vs. arrival rate, " + device + " (ms)",
		Columns: append([]string{"rate(req/s)"}, sched.Names()...),
	}
	b := Table{
		ID:      idPrefix + "b",
		Title:   "squared coefficient of variation of response time, " + device,
		Columns: append([]string{"rate(req/s)"}, sched.Names()...),
	}
	for ri, rate := range rates {
		rowA := []string{f2(rate)}
		rowB := []string{f2(rate)}
		for si := range sched.Names() {
			rowA = append(rowA, ms(resp[ri][si]))
			rowB = append(rowB, f2(cv[ri][si]))
		}
		a.AddRow(rowA...)
		b.AddRow(rowB...)
	}
	return []Table{a, b}
}
