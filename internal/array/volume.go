// volume.go implements device-level redundancy for the multi-queue
// simulator (sim.RunVolume): mirrored and rotated-parity volume
// geometries whose member translation is Router-compatible, plus the
// failure / hot-spare / online-rebuild state machine the event loop
// drives. Where Array (array.go) folds members into one core.Device
// with max-over-members service times, a Volume keeps every member as
// an independent queue: the simulator owns the clock and the queues,
// and the Volume only answers "which member operations realize this
// volume request under the current redundancy state?".
//
// The model is single-fault: one failed member at a time is served in
// degraded mode (mirror reads fall to the surviving replica; parity
// reads are reconstructed from the k surviving peers) while a hot
// spare, when configured, is rebuilt online. A second concurrent
// failure loses data: the volume refuses to serve requests after that
// point rather than silently returning lost sectors.
package array

import (
	"fmt"

	"memsim/internal/core"
)

// VolumeLevel selects the redundancy of a multi-queue volume.
type VolumeLevel int

const (
	// VolStripe stripes with no redundancy (RAID-0): any member failure
	// loses data.
	VolStripe VolumeLevel = iota
	// VolMirror replicates every block on all members (RAID-1).
	VolMirror
	// VolParity rotates block-interleaved parity (left-symmetric
	// RAID-5).
	VolParity
)

// String implements fmt.Stringer.
func (l VolumeLevel) String() string {
	switch l {
	case VolStripe:
		return "stripe"
	case VolMirror:
		return "mirror"
	case VolParity:
		return "parity"
	default:
		return fmt.Sprintf("VolumeLevel(%d)", int(l))
	}
}

// VolumeConfig parameterizes a redundant volume.
type VolumeConfig struct {
	// Level is the redundancy scheme.
	Level VolumeLevel
	// Members is the number of active member slots (data plus
	// redundancy; for VolMirror, the replica count).
	Members int
	// Spares is the number of hot-spare devices appended after the
	// members, available for online rebuild after a member failure.
	Spares int
	// StripeUnit is the number of consecutive sectors placed on one
	// member before rotating to the next; VolMirror uses it only to
	// spread reads across replicas.
	StripeUnit int64
	// PerMember is the usable capacity of each member in sectors; it
	// must not exceed any member device's capacity and must be a
	// multiple of StripeUnit.
	PerMember int64
}

// Validate reports configuration errors.
func (c VolumeConfig) Validate() error {
	switch {
	case c.Members <= 0:
		return fmt.Errorf("array: volume needs at least one member, got %d", c.Members)
	case c.Spares < 0:
		return fmt.Errorf("array: negative spare count %d", c.Spares)
	case c.StripeUnit <= 0:
		return fmt.Errorf("array: stripe unit must be positive, got %d", c.StripeUnit)
	case c.PerMember <= 0:
		return fmt.Errorf("array: per-member capacity must be positive, got %d", c.PerMember)
	case c.PerMember%c.StripeUnit != 0:
		return fmt.Errorf("array: per-member capacity %d not a multiple of stripe unit %d",
			c.PerMember, c.StripeUnit)
	case c.Level == VolMirror && c.Members < 2:
		return fmt.Errorf("array: mirror needs at least 2 members, got %d", c.Members)
	case c.Level == VolParity && c.Members < 3:
		return fmt.Errorf("array: parity needs at least 3 members, got %d", c.Members)
	}
	switch c.Level {
	case VolStripe, VolMirror, VolParity:
		return nil
	default:
		return fmt.Errorf("array: unknown volume level %d", int(c.Level))
	}
}

// Capacity returns the volume's addressable sectors.
func (c VolumeConfig) Capacity() int64 {
	n := int64(c.Members)
	switch c.Level {
	case VolStripe:
		return c.PerMember * n
	case VolMirror:
		return c.PerMember
	default: // VolParity
		return c.PerMember * (n - 1)
	}
}

// Devices returns the number of physical devices the volume needs
// (members plus spares).
func (c VolumeConfig) Devices() int { return c.Members + c.Spares }

// MemberOp is one member-level operation realizing part of a volume
// request: an access of Blocks sectors at member address LBN on the
// device currently backing Slot.
type MemberOp struct {
	// Slot is the member slot (volume position, not device index);
	// resolve to a physical device with Volume.DeviceOf.
	Slot int
	// Op is the access direction.
	Op core.Op
	// LBN is the first member-local sector addressed.
	LBN int64
	// Blocks is the number of consecutive sectors.
	Blocks int
}

// Plan is the member-operation realization of one volume request:
// phases execute in order, with every operation of a phase issued
// concurrently (fork) and the next phase starting when all complete
// (join) — the shape of a RAID-5 read-modify-write.
type Plan struct {
	// Phases are the fork-join stages.
	Phases [][]MemberOp
	// Reconstructed marks a read served by peer reconstruction (the
	// degraded-mode ECC path at array scale).
	Reconstructed bool
	// SpareRead marks a read satisfied from the already-rebuilt region
	// of the hot spare mid-rebuild.
	SpareRead bool
	// DegradedWrite marks a write that executed with reduced
	// redundancy (a failed data or parity member).
	DegradedWrite bool
}

// Volume is the failover state machine over a volume geometry. It is
// not safe for concurrent use; sim.RunVolume drives one per run.
type Volume struct {
	cfg VolumeConfig
	// slots maps member slot → physical device index. Initially the
	// identity; a completed rebuild swaps the spare in.
	slots []int
	// spares holds unused spare device indices, ascending.
	spares []int
	// failed is the failed member slot, or -1.
	failed int
	// spareDev is the device being rebuilt onto mid-rebuild, or -1.
	spareDev int
	// watermark is the rebuilt prefix of the failed member's address
	// space: member LBNs in [0, watermark) are valid on the spare.
	watermark int64
	// lost marks a second concurrent failure: data is gone and the
	// volume refuses service.
	lost bool
	// epoch increments on every redundancy-state transition (failure,
	// completed rebuild) so stale plans can be detected and re-planned.
	epoch int
}

// NewVolume validates cfg and builds a healthy volume.
func NewVolume(cfg VolumeConfig) (*Volume, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	v := &Volume{cfg: cfg}
	v.Reset()
	return v, nil
}

// Reset restores the pristine state: identity slot mapping, full spare
// pool, no failure.
func (v *Volume) Reset() {
	v.slots = v.slots[:0]
	for s := 0; s < v.cfg.Members; s++ {
		v.slots = append(v.slots, s)
	}
	v.spares = v.spares[:0]
	for d := v.cfg.Members; d < v.cfg.Devices(); d++ {
		v.spares = append(v.spares, d)
	}
	v.failed = -1
	v.spareDev = -1
	v.watermark = 0
	v.lost = false
	v.epoch = 0
}

// Config returns the volume's configuration.
func (v *Volume) Config() VolumeConfig { return v.cfg }

// Capacity returns the volume's addressable sectors.
func (v *Volume) Capacity() int64 { return v.cfg.Capacity() }

// DeviceOf resolves a member slot to its current physical device.
// During a rebuild the failed slot resolves to the spare being built,
// which is where rebuild writes and rebuilt-region reads belong; the
// planners only target the failed slot in those cases.
func (v *Volume) DeviceOf(slot int) int {
	if slot == v.failed && v.spareDev >= 0 {
		return v.spareDev
	}
	return v.slots[slot]
}

// Failed returns the failed member slot, or -1.
func (v *Volume) Failed() int { return v.failed }

// Degraded reports whether a member is currently failed.
func (v *Volume) Degraded() bool { return v.failed >= 0 }

// Lost reports whether redundancy was exhausted (two concurrent
// failures, or any failure on an unprotected stripe volume).
func (v *Volume) Lost() bool { return v.lost }

// Rebuilding reports whether an online rebuild is in progress.
func (v *Volume) Rebuilding() bool { return v.spareDev >= 0 }

// Watermark returns the rebuilt member-LBN prefix.
func (v *Volume) Watermark() int64 { return v.watermark }

// Epoch returns the redundancy-state generation, incremented by Fail
// and FinishRebuild; plans created under an older epoch must be
// re-resolved with ReplaceDeadOp before issue.
func (v *Volume) Epoch() int { return v.epoch }

// SlotDevice returns the device index recorded for a slot ignoring any
// in-progress rebuild — the queue to drain when the slot's device dies.
func (v *Volume) SlotDevice(slot int) int { return v.slots[slot] }

// Fail marks member slot failed. A failure while another member is
// failed (or rebuilding), or any failure of an unprotected stripe
// volume, loses data. Failing the already-failed slot is a no-op.
func (v *Volume) Fail(slot int) error {
	if slot < 0 || slot >= v.cfg.Members {
		return fmt.Errorf("array: failed slot %d out of range [0,%d)", slot, v.cfg.Members)
	}
	if slot == v.failed {
		return nil
	}
	v.epoch++
	if v.failed >= 0 || v.cfg.Level == VolStripe {
		v.lost = true
	}
	if v.failed < 0 {
		v.failed = slot
	}
	return nil
}

// BeginRebuild assigns a hot spare to the failed slot and reports
// whether a rebuild can start (a member is failed, data is intact, no
// rebuild is running, and a spare remains).
func (v *Volume) BeginRebuild() bool {
	if v.failed < 0 || v.lost || v.spareDev >= 0 || len(v.spares) == 0 {
		return false
	}
	v.spareDev = v.spares[0]
	v.spares = v.spares[1:]
	v.watermark = 0
	return true
}

// Advance extends the rebuilt prefix by blocks sectors.
func (v *Volume) Advance(blocks int) { v.watermark += int64(blocks) }

// RebuildDone reports whether the rebuilt prefix covers the member.
func (v *Volume) RebuildDone() bool {
	return v.spareDev >= 0 && v.watermark >= v.cfg.PerMember
}

// FinishRebuild completes the failover: the spare permanently backs
// the failed slot and the volume returns to full redundancy.
func (v *Volume) FinishRebuild() {
	if v.spareDev < 0 {
		return
	}
	v.slots[v.failed] = v.spareDev
	v.spareDev = -1
	v.failed = -1
	v.watermark = 0
	v.epoch++
}

// covered reports whether a failed-member range is fully within the
// rebuilt spare prefix.
func (v *Volume) covered(lbn int64, blocks int) bool {
	return v.spareDev >= 0 && lbn+int64(blocks) <= v.watermark
}

// liveSlots returns the non-failed member slots in ascending order.
func (v *Volume) liveSlots() []int {
	out := make([]int, 0, v.cfg.Members)
	for s := 0; s < v.cfg.Members; s++ {
		if s != v.failed {
			out = append(out, s)
		}
	}
	return out
}

// vchunk is one member's strip-bounded share of a volume extent.
type vchunk struct {
	slot   int
	lbn    int64 // member-local address
	blocks int
	parity int // parity slot of the chunk's row (VolParity), else -1
}

// mapBlock locates one volume block for the striped levels:
// left-symmetric rotation for VolParity, plain round-robin for
// VolStripe.
func (v *Volume) mapBlock(lbn int64) (slot int, mlbn int64, parity int) {
	u := v.cfg.StripeUnit
	n := int64(v.cfg.Members)
	strip := lbn / u
	off := lbn % u
	if v.cfg.Level == VolStripe {
		row := strip / n
		return int(strip % n), row*u + off, -1
	}
	dataPerRow := n - 1
	row := strip / dataPerRow
	idx := strip % dataPerRow
	p := int((n - 1 - row%n + n) % n)
	d := (p + 1 + int(idx)) % int(n)
	return d, row*u + off, p
}

// split decomposes a volume extent into strip-bounded member chunks
// (VolStripe and VolParity; VolMirror addresses members directly).
func (v *Volume) split(lbn int64, blocks int) []vchunk {
	u := v.cfg.StripeUnit
	var out []vchunk
	for i := 0; i < blocks; {
		l := lbn + int64(i)
		slot, mlbn, parity := v.mapBlock(l)
		run := int(u - l%u)
		if left := blocks - i; run > left {
			run = left
		}
		out = append(out, vchunk{slot: slot, lbn: mlbn, blocks: run, parity: parity})
		i += run
	}
	return out
}

// readSlot picks the replica serving a mirror read: stripe-unit-sized
// runs rotate across the live replicas, deterministically.
func (v *Volume) readSlot(lbn int64) int {
	strip := lbn / v.cfg.StripeUnit
	if v.failed < 0 {
		return int(strip % int64(v.cfg.Members))
	}
	live := v.liveSlots()
	return live[int(strip%int64(len(live)))]
}

// checkRange panics on an out-of-capacity request — a volume-level
// addressing bug in the caller, not a runtime condition.
func (v *Volume) checkRange(lbn int64, blocks int) {
	if blocks <= 0 || lbn < 0 || lbn+int64(blocks) > v.Capacity() {
		panic(fmt.Sprintf("array: volume request [%d,%d) outside capacity %d",
			lbn, lbn+int64(blocks), v.Capacity()))
	}
}

// PlanRead realizes a volume read under the current redundancy state.
// ok is false when the addressed data is lost (stripe-member failure or
// double fault): the request must complete in error, never be silently
// served.
func (v *Volume) PlanRead(lbn int64, blocks int) (Plan, bool) {
	v.checkRange(lbn, blocks)
	if v.lost {
		return Plan{}, false
	}
	var pl Plan
	if v.cfg.Level == VolMirror {
		pl.Phases = [][]MemberOp{{{Slot: v.readSlot(lbn), Op: core.Read, LBN: lbn, Blocks: blocks}}}
		return pl, true
	}
	var ops []MemberOp
	for _, c := range v.split(lbn, blocks) {
		if c.slot != v.failed {
			ops = append(ops, MemberOp{Slot: c.slot, Op: core.Read, LBN: c.lbn, Blocks: c.blocks})
			continue
		}
		switch {
		case v.cfg.Level == VolStripe:
			return Plan{}, false // no redundancy: the chunk is gone
		case v.covered(c.lbn, c.blocks):
			// The rebuilt spare prefix already holds the data.
			ops = append(ops, MemberOp{Slot: c.slot, Op: core.Read, LBN: c.lbn, Blocks: c.blocks})
			pl.SpareRead = true
		default:
			// Parity reconstruction: read the same member range on every
			// surviving peer (k peer reads charged on the event loop).
			for _, s := range v.liveSlots() {
				ops = append(ops, MemberOp{Slot: s, Op: core.Read, LBN: c.lbn, Blocks: c.blocks})
			}
			pl.Reconstructed = true
		}
	}
	pl.Phases = [][]MemberOp{ops}
	return pl, true
}

// PlanWrite realizes a volume write: replicated single-phase writes for
// VolMirror, per-chunk read-modify-write fork-join phases for
// VolParity. ok is false when data is lost.
func (v *Volume) PlanWrite(lbn int64, blocks int) (Plan, bool) {
	v.checkRange(lbn, blocks)
	if v.lost {
		return Plan{}, false
	}
	var pl Plan
	pl.DegradedWrite = v.failed >= 0
	switch v.cfg.Level {
	case VolMirror:
		var ops []MemberOp
		for _, s := range v.liveSlots() {
			ops = append(ops, MemberOp{Slot: s, Op: core.Write, LBN: lbn, Blocks: blocks})
		}
		if v.failed >= 0 && v.covered(lbn, blocks) {
			// Keep the rebuilt spare prefix current.
			ops = append(ops, MemberOp{Slot: v.failed, Op: core.Write, LBN: lbn, Blocks: blocks})
		}
		pl.Phases = [][]MemberOp{ops}
		return pl, true
	case VolStripe:
		var ops []MemberOp
		for _, c := range v.split(lbn, blocks) {
			if c.slot == v.failed {
				return Plan{}, false
			}
			ops = append(ops, MemberOp{Slot: c.slot, Op: core.Write, LBN: c.lbn, Blocks: c.blocks})
		}
		pl.Phases = [][]MemberOp{ops}
		return pl, true
	}
	// VolParity: read-modify-write per chunk, chunks serialized (write
	// ordering), exactly the §6.2 sequence for the single-chunk small
	// write.
	for _, c := range v.split(lbn, blocks) {
		read := func(s int) MemberOp { return MemberOp{Slot: s, Op: core.Read, LBN: c.lbn, Blocks: c.blocks} }
		write := func(s int) MemberOp { return MemberOp{Slot: s, Op: core.Write, LBN: c.lbn, Blocks: c.blocks} }
		switch {
		case v.failed < 0 || (c.slot != v.failed && c.parity != v.failed),
			c.slot == v.failed && v.covered(c.lbn, c.blocks):
			// Healthy RMW — also valid with the failed slot's range
			// already rebuilt on the spare (DeviceOf resolves it there).
			pl.Phases = append(pl.Phases,
				[]MemberOp{read(c.slot), read(c.parity)},
				[]MemberOp{write(c.slot), write(c.parity)})
		case c.slot == v.failed:
			// Data member dead: fold the update into parity by reading
			// the row's surviving data members, then rewriting parity.
			var reads []MemberOp
			for _, s := range v.liveSlots() {
				if s != c.parity {
					reads = append(reads, read(s))
				}
			}
			pl.Phases = append(pl.Phases, reads, []MemberOp{write(c.parity)})
			pl.Reconstructed = true
		default: // c.parity == v.failed
			// Parity member dead: the data write proceeds unprotected.
			pl.Phases = append(pl.Phases, []MemberOp{write(c.slot)})
		}
	}
	return pl, true
}

// PlanRebuildChunk realizes the next background rebuild unit: read the
// surviving peers' next chunk (or one replica for VolMirror), then
// write the reconstructed chunk to the spare. It returns the chunk's
// block count (0 when no rebuild is active or the scan is complete).
func (v *Volume) PlanRebuildChunk(chunk int) (Plan, int) {
	if v.spareDev < 0 || v.watermark >= v.cfg.PerMember || chunk <= 0 {
		return Plan{}, 0
	}
	n := chunk
	if left := v.cfg.PerMember - v.watermark; int64(n) > left {
		n = int(left)
	}
	start := v.watermark
	var reads []MemberOp
	if v.cfg.Level == VolMirror {
		reads = []MemberOp{{Slot: v.liveSlots()[0], Op: core.Read, LBN: start, Blocks: n}}
	} else {
		for _, s := range v.liveSlots() {
			reads = append(reads, MemberOp{Slot: s, Op: core.Read, LBN: start, Blocks: n})
		}
	}
	return Plan{Phases: [][]MemberOp{
		reads,
		{{Slot: v.failed, Op: core.Write, LBN: start, Blocks: n}},
	}}, n
}

// ReplaceDeadOp re-resolves one member operation from a plan made
// before the redundancy state changed. Reads of the failed slot fall
// back to the rebuilt spare prefix or peer reconstruction; writes to
// the failed slot are dropped (their redundancy partners in the same
// plan carry the update). ok is false when the data is unreachable —
// the parent request must fail. recon marks peer reconstruction, for
// degraded-read accounting.
func (v *Volume) ReplaceDeadOp(op MemberOp) (repl []MemberOp, recon, ok bool) {
	if v.lost {
		if op.Op == core.Read {
			return nil, false, false
		}
		return nil, false, true
	}
	if op.Slot != v.failed {
		return []MemberOp{op}, false, true
	}
	if op.Op == core.Write {
		return nil, false, true
	}
	switch {
	case v.covered(op.LBN, op.Blocks):
		return []MemberOp{op}, false, true
	case v.cfg.Level == VolMirror:
		return []MemberOp{{Slot: v.liveSlots()[0], Op: core.Read, LBN: op.LBN, Blocks: op.Blocks}}, false, true
	case v.cfg.Level == VolParity:
		for _, s := range v.liveSlots() {
			repl = append(repl, MemberOp{Slot: s, Op: core.Read, LBN: op.LBN, Blocks: op.Blocks})
		}
		return repl, true, true
	default: // VolStripe: unreachable (stripe failure is lost), kept total
		return nil, false, false
	}
}
