package experiments

import (
	"fmt"

	"memsim/internal/bus"
	"memsim/internal/core"
	"memsim/internal/mems"
	"memsim/internal/runner"
)

func init() { register("bus", busPlan) }

// BusStudy quantifies the interconnect consequence of §2.4.11
// (extension): a MEMS-based storage device streams at 79.6 MB/s — near
// half of an entire Ultra160 SCSI bus — so packaging several sleds in a
// disk form factor (§2.1) makes the *bus*, not the media, the sequential
// bottleneck after two devices. Aggregate streaming bandwidth is
// measured for shelves of 1–8 sleds, with and without a shared bus.
func BusStudy(p Params) []Table { return mustRun(busPlan(p)) }

// busCell is one shelf size's measurement (raw and bus-shared aggregate
// bandwidth in MB/s, plus bus utilization).
type busCell struct {
	raw, shared, util float64
}

func busPlan(p Params) *Plan {
	rounds := p.ClosedRequests / 40
	if rounds < 10 {
		rounds = 10
	}
	counts := []int{1, 2, 4, 8}
	jobs := make([]*runner.Job, len(counts))
	for i, n := range counts {
		jobs[i] = &runner.Job{
			Label: fmt.Sprintf("bus %d sleds", n),
			Seed:  p.Seed,
			Custom: func(*runner.Job) any {
				rawBytes, rawElapsed := streamRun(n, rounds, nil)
				b := bus.New(bus.Ultra160())
				shBytes, shElapsed := streamRun(n, rounds, b)
				return busCell{
					raw:    rawBytes / (rawElapsed / 1000) / 1e6,
					shared: shBytes / (shElapsed / 1000) / 1e6,
					util:   b.BusyMs() / shElapsed,
				}
			},
		}
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID:    "bus",
				Title: "aggregate streaming bandwidth, N sleds (256 KB reads, MB/s)",
				Columns: []string{"sleds", "no bus (media only)", "shared Ultra160 bus",
					"bus utilization"},
			}
			for i, n := range counts {
				c := jobs[i].Value().(busCell)
				t.AddRow(fmt.Sprintf("%d", n), f2(c.raw), f2(c.shared),
					fmt.Sprintf("%.0f%%", c.util*100))
			}
			return []Table{t}
		},
	}
}

func streamRun(n, rounds int, b *bus.Bus) (bytes, elapsed float64) {
	devs := make([]core.Device, n)
	for i := range devs {
		var d core.Device = mems.MustDevice(mems.DefaultConfig())
		if b != nil {
			d = b.Attach(d)
		}
		devs[i] = d
	}
	const blocks = 512 // 256 KB
	done := make([]float64, n)
	for round := 0; round < rounds; round++ {
		for i, d := range devs {
			lbn := int64(round * blocks)
			svc := d.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: blocks}, done[i])
			done[i] += svc
			bytes += blocks * 512
		}
	}
	for _, d := range done {
		if d > elapsed {
			elapsed = d
		}
	}
	return bytes, elapsed
}
