package sim

import (
	"testing"

	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/workload"
)

// benchRequests builds a deterministic random request slice against dev.
func benchRequests(dev core.Device, n int) []*core.Request {
	src := workload.DefaultRandom(1000, dev.SectorSize(), dev.Capacity(), n, 1)
	return workload.Slice(src)
}

// BenchmarkMEMSAccess times the MEMS device's Access hot path — sled
// seek, settle attribution and per-segment transfer — which every
// simulated request pays at least once.
func BenchmarkMEMSAccess(b *testing.B) {
	d := mems.MustDevice(mems.DefaultConfig())
	reqs := benchRequests(d, 4096)
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += d.Access(reqs[i%len(reqs)], now)
	}
}

// BenchmarkDiskAccess times the disk model's Access hot path: seek
// curve, rotational position and zoned transfer.
func BenchmarkDiskAccess(b *testing.B) {
	d := disk.MustDevice(disk.Atlas10K())
	reqs := benchRequests(d, 4096)
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += d.Access(reqs[i%len(reqs)], now)
	}
}

// discardProbe is the cheapest possible observer; it isolates the
// event-emission overhead from any probe-side work.
type discardProbe struct{}

func (discardProbe) Observe(ProbeEvent) {}

// benchRun drives one open-arrival run per iteration; the probe
// variants quantify the instrumentation's cost against the nil-probe
// baseline the byte-identity test guards.
func benchRun(b *testing.B, p Probe) {
	d := mems.MustDevice(mems.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := workload.DefaultRandom(1100, 512, d.Capacity(), 2000, 1)
		Run(nil, d, sched.NewSPTF(), src, Options{Warmup: 100, Probe: p})
	}
}

func BenchmarkRunNilProbe(b *testing.B)   { benchRun(b, nil) }
func BenchmarkRunDiscard(b *testing.B)    { benchRun(b, discardProbe{}) }
func BenchmarkRunPhaseStats(b *testing.B) { benchRun(b, NewPhaseCollector()) }
