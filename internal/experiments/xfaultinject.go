package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/mems"
	"memsim/internal/runner"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

func init() { register("faultinject", faultInjectPlan) }

// transientRates is the per-attempt positioning-error probability sweep
// for the in-simulation injection experiment (§6.1.3). Real devices sit
// near the low end; the tail stresses the retry/requeue envelope.
var transientRates = []float64{0.001, 0.01, 0.05, 0.15}

// tipFailureCounts sweeps scheduled whole-tip failures against the
// default redundancy configuration (130 spares): the first rows are
// fully absorbed by spares, the last overwhelms the pool and forces
// degraded-mode (ECC-reconstruction) service.
var tipFailureCounts = []int{8, 64, 256}

// FaultInject runs the in-simulation fault-injection experiment: the
// transient-error-rate sweep comparing MEMS and disk recovery cost, and
// the MEMS tip-failure sweep showing spare consumption and degraded-mode
// reads evolving mid-run.
func FaultInject(p Params) []Table { return mustRun(faultInjectPlan(p)) }

func faultInjectPlan(p Params) *Plan {
	rates := transientRates
	if p.FaultRate > 0 {
		rates = append(append([]float64(nil), rates...), p.FaultRate)
		sort.Float64s(rates)
	}
	base := p.faultSeed()

	// ── Transient-rate sweep: MEMS vs disk under SPTF ────────────────
	// The disk runs at a tenth of the MEMS arrival rate (it saturates
	// around 300 req/s; the MEMS device is comfortable at 1000).
	type cell struct {
		job *runner.Job
		inj *fault.Injector
	}
	newCell := func(label string, rate float64, dev core.DeviceFactory,
		arrival float64, cfg fault.InjectorConfig) cell {
		cfg.TransientRate = rate
		cfg.Seed = runner.DeriveSeed(base, label)
		inj, err := fault.NewInjector(cfg)
		if err != nil {
			panic(err) // static configurations below are known-good
		}
		return cell{
			inj: inj,
			job: &runner.Job{
				Label:     label,
				Seed:      p.Seed,
				Device:    dev,
				Scheduler: schedFactory("SPTF"),
				Source: func(d core.Device) workload.Source {
					return workload.DefaultRandom(arrival, d.SectorSize(), d.Capacity(), p.Requests, p.Seed)
				},
				Options: sim.Options{Warmup: p.Warmup, Injector: inj},
			},
		}
	}

	memsCells := make([]cell, len(rates))
	diskCells := make([]cell, len(rates))
	var jobs []*runner.Job
	for i, rate := range rates {
		memsCells[i] = newCell(fmt.Sprintf("faultinject mems rate=%g", rate),
			rate, memsFactory(1), 1000, fault.DefaultInjectorConfig())
		diskCells[i] = newCell(fmt.Sprintf("faultinject disk rate=%g", rate),
			rate, diskFactory, 100, fault.DefaultInjectorConfig())
		jobs = append(jobs, memsCells[i].job, diskCells[i].job)
	}

	// ── Tip-failure sweep: MEMS degraded-mode service ────────────────
	// Failures are scheduled uniformly over the first half of the
	// expected run (≈1 ms per request at 1000 req/s), striking uniformly
	// random tips — spares included, exercising the in-use-spare cascade.
	arrCfg := fault.DefaultConfig()
	geo := mems.MustDevice(mems.DefaultConfig()).Geometry()
	failCells := make([]cell, len(tipFailureCounts))
	for i, k := range tipFailureCounts {
		label := fmt.Sprintf("faultinject mems tipfail k=%d", k)
		rng := rand.New(rand.NewSource(runner.DeriveSeed(base, label)))
		events := make([]fault.TipEvent, k)
		span := float64(p.Requests) / 2
		for e := range events {
			events[e] = fault.TipEvent{
				AtMs: span * float64(e) / float64(k),
				Tip:  rng.Intn(arrCfg.Tips),
			}
		}
		cfg := fault.DefaultInjectorConfig()
		cfg.Array = &arrCfg
		cfg.Events = events
		cfg.SectorTips = geo.TipsForSector
		failCells[i] = newCell(label, 0, memsFactory(1), 1000, cfg)
		jobs = append(jobs, failCells[i].job)
	}

	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			a := Table{
				ID:    "faultinject-a",
				Title: "transient seek errors: response and recovery cost, MEMS (1000 req/s) vs disk (100 req/s), SPTF",
				Columns: []string{"error rate",
					"MEMS resp (ms)", "MEMS retries", "MEMS failed", "MEMS ms/error",
					"disk resp (ms)", "disk retries", "disk failed", "disk ms/error"},
			}
			perError := func(r sim.Result) string {
				if r.Retries == 0 {
					return "-"
				}
				return ms(r.RecoveryMs / float64(r.Retries))
			}
			for i, rate := range rates {
				mr := memsCells[i].job.Result()
				dr := diskCells[i].job.Result()
				a.AddRow(fmt.Sprintf("%g", rate),
					ms(mr.Response.Mean()), fmt.Sprintf("%d", mr.Retries),
					fmt.Sprintf("%d", mr.FailedRequests), perError(mr),
					ms(dr.Response.Mean()), fmt.Sprintf("%d", dr.Retries),
					fmt.Sprintf("%d", dr.FailedRequests), perError(dr))
			}

			b := Table{
				ID:    "faultinject-b",
				Title: fmt.Sprintf("scheduled tip failures mid-run, MEMS (%d spares, %d ECC tips per stripe): spares absorb until the pool drains, then reads degrade", arrCfg.SpareTips, arrCfg.ECCTips),
				Columns: []string{"tip failures", "spares used", "degraded stripes",
					"degraded reads", "ECC recovery (ms)", "data loss"},
			}
			for i, k := range tipFailureCounts {
				res := failCells[i].job.Result()
				arr := failCells[i].inj.Array()
				b.AddRow(fmt.Sprintf("%d", k),
					fmt.Sprintf("%d", arrCfg.SpareTips-arr.SparesLeft()),
					fmt.Sprintf("%d", arr.DegradedStripes()),
					fmt.Sprintf("%d", res.DegradedReads),
					ms(res.RecoveryMs),
					fmt.Sprintf("%v", arr.DataLoss()))
			}
			return []Table{a, b}
		},
	}
}
