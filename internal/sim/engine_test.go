package sim

import (
	"math"
	"reflect"
	"testing"

	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/sched"
	"memsim/internal/workload"
)

// alwaysFail returns an injector with no retry or requeue budget and a
// transient rate so close to one that (with this seed) every request in
// these tests completes in error on its first visit.
func alwaysFail(t *testing.T) *fault.Injector {
	t.Helper()
	return mustInjector(t, fault.InjectorConfig{TransientRate: 0.999999, Seed: 5})
}

// TestRunMultiExcludesFailedRequests is the regression test for the
// historical RunMulti accounting bug: failed requests were counted in
// Result.Requests/Response and probed with Measured=true. Under the
// shared completion path they must be excluded, exactly as in Run.
func TestRunMultiExcludesFailedRequests(t *testing.T) {
	devs, scheds := multiFixtures(2, 1)
	reqs := mkReqs([]float64{0, 1, 2, 3, 4, 5})
	var probed []ProbeEvent
	res := mustMulti(t, nil, devs, scheds, ConcatRouter(1<<29),
		workload.NewFromSlice(reqs),
		Options{Injector: alwaysFail(t), Probe: probeFunc(func(ev ProbeEvent) {
			if ev.Kind == EventComplete {
				probed = append(probed, ev)
			}
		})})
	if res.FailedRequests != len(reqs) {
		t.Fatalf("failed = %d, want %d", res.FailedRequests, len(reqs))
	}
	if res.Requests != 0 {
		t.Errorf("measured requests = %d, want 0 (failed requests must be excluded)", res.Requests)
	}
	if n := res.Response.N(); n != 0 {
		t.Errorf("response samples = %d, want 0", n)
	}
	if len(probed) != len(reqs) {
		t.Fatalf("complete events = %d, want %d", len(probed), len(reqs))
	}
	for _, ev := range probed {
		if ev.Measured {
			t.Errorf("complete at %g: Measured=true for a failed request", ev.Time)
		}
		if !ev.Req.Failed {
			t.Errorf("complete at %g: request not marked failed", ev.Time)
		}
	}
}

// TestRunMultiInjectorRetriesAndRequeues exercises the injector's full
// retry → requeue → fail ladder under RunMulti, which historically had
// no fault path at all.
func TestRunMultiInjectorRetriesAndRequeues(t *testing.T) {
	devs, scheds := multiFixtures(2, 1)
	cfg := fault.DefaultInjectorConfig()
	cfg.TransientRate = 0.35
	cfg.Seed = 17
	reqs := mkReqs(make([]float64, 400))
	for i := range reqs {
		reqs[i].Arrival = float64(i)
	}
	res := mustMulti(t, nil, devs, scheds, StripeRouter(1024, 2),
		workload.NewFromSlice(reqs), Options{Injector: mustInjector(t, cfg)})
	if res.Retries == 0 {
		t.Error("no retries charged at a 35% transient rate")
	}
	if res.Recovered == 0 {
		t.Error("no requests recovered")
	}
	if res.Requeues == 0 {
		t.Error("no requeues at a 35% transient rate (retry budget should overflow)")
	}
	if res.RecoveryMs <= 0 {
		t.Error("no recovery time accumulated")
	}
	if got := res.Requests + res.FailedRequests; got != len(reqs) {
		t.Errorf("measured %d + failed %d != total %d", res.Requests, res.FailedRequests, len(reqs))
	}
	// Per-member attribution still covers every request.
	if got := res.Members[0].Requests + res.Members[1].Requests; got != len(reqs) {
		t.Errorf("member requests sum = %d, want %d", got, len(reqs))
	}
}

// TestRunMultiDeterministicUnderInjector: two identical injected multi
// runs must agree exactly — the engine's determinism contract.
func TestRunMultiDeterministicUnderInjector(t *testing.T) {
	run := func() Result {
		devs, scheds := multiFixtures(3, 2)
		cfg := fault.DefaultInjectorConfig()
		cfg.TransientRate = 0.2
		cfg.Seed = 71
		reqs := mkReqs(make([]float64, 200))
		for i := range reqs {
			reqs[i].Arrival = float64(i) / 2
			reqs[i].LBN = int64(i%3) * 100
		}
		return mustMulti(t, nil, devs, scheds, ConcatRouter(100),
			workload.NewFromSlice(reqs), Options{Injector: mustInjector(t, cfg)})
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("injected multi runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRunMultiCountsClamps: requests spilling a member or strip
// boundary are clamped by the router and must be counted.
func TestRunMultiCountsClamps(t *testing.T) {
	devs, scheds := multiFixtures(2, 1)
	reqs := []*core.Request{
		{Arrival: 0, Op: core.Read, LBN: 0, Blocks: 4},    // fits
		{Arrival: 1, Op: core.Read, LBN: 98, Blocks: 8},   // spills dev 0 → clamped
		{Arrival: 2, Op: core.Write, LBN: 150, Blocks: 4}, // fits on dev 1
		{Arrival: 3, Op: core.Read, LBN: 196, Blocks: 8},  // spills dev 1 → clamped
	}
	res := mustMulti(t, nil, devs, scheds, ConcatRouter(100),
		workload.NewFromSlice(reqs), Options{})
	if res.ClampedRequests != 2 {
		t.Errorf("clamped = %d, want 2", res.ClampedRequests)
	}
	if res.Requests != 4 {
		t.Errorf("requests = %d, want 4 (clamped requests still complete)", res.Requests)
	}

	// The stripe router clamps at strip boundaries too.
	devs2, scheds2 := multiFixtures(2, 1)
	reqs2 := []*core.Request{
		{Arrival: 0, Op: core.Read, LBN: 6, Blocks: 8}, // off 6 + 8 > unit 8
		{Arrival: 1, Op: core.Read, LBN: 8, Blocks: 8}, // exactly one strip
	}
	res2 := mustMulti(t, nil, devs2, scheds2, StripeRouter(8, 2),
		workload.NewFromSlice(reqs2), Options{})
	if res2.ClampedRequests != 1 {
		t.Errorf("stripe clamped = %d, want 1", res2.ClampedRequests)
	}
}

// TestRunVolumeInjectorRetries: the injector's transient class now
// applies to volume member visits (historically only its device-event
// schedule was consumed).
func TestRunVolumeInjectorRetries(t *testing.T) {
	run := func() Result {
		spec := volFixtures(t, mirrorVolCfg(), 1)
		cfg := fault.DefaultInjectorConfig()
		cfg.TransientRate = 0.3
		cfg.Seed = 23
		src := workload.NewFromSlice(volReqs([]float64{0, 2, 4, 6, 8, 10, 12, 14}, core.Read, []int64{0, 9, 17, 33}))
		res, err := RunVolume(nil, spec, src, Options{Injector: mustInjector(t, cfg)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Retries == 0 {
		t.Error("no retries charged on volume member visits at a 30% transient rate")
	}
	if res.RecoveryMs <= 0 {
		t.Error("no recovery time accumulated")
	}
	if got := res.Requests + res.FailedRequests; got != 8 {
		t.Errorf("measured %d + failed %d != 8", res.Requests, res.FailedRequests)
	}
	if !reflect.DeepEqual(res, run()) {
		t.Error("injected volume runs diverged")
	}
}

// TestRunVolumeInjectorFailsParent: a member op that exhausts every
// budget fails its parent volume request, which is excluded from the
// measured statistics and tallied as lost at volume scope.
func TestRunVolumeInjectorFailsParent(t *testing.T) {
	spec := volFixtures(t, mirrorVolCfg(), 1)
	src := workload.NewFromSlice(volReqs([]float64{0, 2, 4, 6}, core.Read, []int64{0, 9}))
	res, err := RunVolume(nil, spec, src, Options{Injector: alwaysFail(t)})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedRequests != 4 {
		t.Errorf("failed = %d, want 4", res.FailedRequests)
	}
	if res.Requests != 0 {
		t.Errorf("measured requests = %d, want 0", res.Requests)
	}
	if res.Volume.LostRequests != 4 {
		t.Errorf("volume lost = %d, want 4", res.Volume.LostRequests)
	}
}

// TestRunVolumeInjectorRequeueRecovers: with requeue budget, a member
// op whose visit fails returns to its member queue and the parent
// request still completes successfully.
func TestRunVolumeInjectorRequeueRecovers(t *testing.T) {
	spec := volFixtures(t, mirrorVolCfg(), 1)
	// Fail the first visit's retries deterministically, then recover:
	// rate 0.6 with a requeue budget leaves most requests completing.
	cfg := fault.DefaultInjectorConfig()
	cfg.TransientRate = 0.45
	cfg.MaxRequeues = 3
	cfg.Seed = 31
	src := workload.NewFromSlice(volReqs([]float64{0, 3, 6, 9, 12, 15}, core.Write, []int64{0, 9, 17}))
	res, err := RunVolume(nil, spec, src, Options{Injector: mustInjector(t, cfg)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Error("no retries charged")
	}
	if res.Requests == 0 {
		t.Error("every request failed; expected requeue recovery")
	}
	if got := res.Requests + res.FailedRequests; got != 6 {
		t.Errorf("measured %d + failed %d != 6", res.Requests, res.FailedRequests)
	}
}

// TestRunClosedThinkTime: a Thinker source delays each issue by its
// think draw; a zero-think wrapper reproduces the bare run exactly.
func TestRunClosedThinkTime(t *testing.T) {
	mkSrc := func() workload.Source { return workload.NewFromSlice(mkReqs(make([]float64, 20))) }

	bare := RunClosed(nil, &fixedDevice{svc: 2}, mkSrc(), Options{})
	zero := RunClosed(nil, &fixedDevice{svc: 2},
		workload.ThinkTime(mkSrc(), nil, 1), Options{})
	if !reflect.DeepEqual(bare, zero) {
		t.Errorf("zero-think wrapper diverged from bare closed run:\n%+v\nvs\n%+v", bare, zero)
	}
	if bare.Elapsed != 40 {
		t.Errorf("bare elapsed = %g, want 40", bare.Elapsed)
	}

	think := RunClosed(nil, &fixedDevice{svc: 2},
		workload.ThinkTime(mkSrc(), workload.ExpThink(5), 1), Options{})
	if think.Elapsed <= bare.Elapsed {
		t.Errorf("think elapsed = %g, want > %g (think gaps stretch the run)", think.Elapsed, bare.Elapsed)
	}
	// Think time is idle time, not service: per-request response stays
	// the pure service time and utilization drops below 1.
	if think.Response.Mean() != 2 {
		t.Errorf("think response mean = %g, want 2", think.Response.Mean())
	}
	if u := think.Utilization(); u >= 1 {
		t.Errorf("utilization = %g, want < 1 under think time", u)
	}
	// Same seed, same draws: think runs are deterministic.
	again := RunClosed(nil, &fixedDevice{svc: 2},
		workload.ThinkTime(mkSrc(), workload.ExpThink(5), 1), Options{})
	if !reflect.DeepEqual(think, again) {
		t.Error("think-time runs diverged")
	}
}

// TestRunOpenAdapterEdgeCases: the event-driven open regime handles the
// empty source and MaxRequests stop exactly like the historical loop.
func TestRunOpenAdapterEdgeCases(t *testing.T) {
	empty := Run(nil, &fixedDevice{svc: 1}, sched.NewFCFS(),
		workload.NewFromSlice(nil), Options{})
	if empty.Requests != 0 || empty.Elapsed != 0 {
		t.Errorf("empty source: requests=%d elapsed=%g, want 0/0", empty.Requests, empty.Elapsed)
	}

	capped := Run(nil, &fixedDevice{svc: 1}, sched.NewFCFS(),
		workload.NewFromSlice(mkReqs(make([]float64, 50))), Options{MaxRequests: 7})
	if capped.Requests != 7 {
		t.Errorf("capped requests = %d, want 7", capped.Requests)
	}
	if capped.Elapsed != 7 {
		t.Errorf("capped elapsed = %g, want 7", capped.Elapsed)
	}
	if math.Abs(capped.Utilization()-1) > 1e-12 {
		t.Errorf("capped utilization = %g, want 1", capped.Utilization())
	}
}

// probeFunc adapts a function to the Probe interface.
type probeFunc func(ProbeEvent)

func (f probeFunc) Observe(ev ProbeEvent) { f(ev) }
