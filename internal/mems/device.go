package mems

import (
	"fmt"

	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/physics"
)

// state is the sled's mechanical state between requests.
type state struct {
	cyl  int     // cylinder currently under the tips
	yB   float64 // Y bit-boundary coordinate in [0, BitsY]
	vdir int     // Y velocity direction: −1, 0, +1 (times AccessSpeed)
}

// Device is the MEMS-based storage device model. It implements
// core.Device. Access and EstimateAccess are deterministic functions of
// the device's mechanical state and the request, per the model of §2–§3.
type Device struct {
	geo  *Geometry
	sled *physics.Sled
	st   state

	last    core.Breakdown
	hasLast bool
}

var (
	_ core.Device            = (*Device)(nil)
	_ core.BreakdownReporter = (*Device)(nil)
)

// NewDevice builds a device from cfg, validating the geometry.
func NewDevice(cfg Config) (*Device, error) {
	g, err := NewGeometry(cfg)
	if err != nil {
		return nil, err
	}
	d := &Device{geo: g, sled: g.Sled()}
	d.Reset()
	return d, nil
}

// MustDevice is NewDevice for known-good configurations; it panics on
// error and exists for tests and examples.
func MustDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Geometry exposes the derived geometry (shared with layouts and
// experiments).
func (d *Device) Geometry() *Geometry { return d.geo }

// Name implements core.Device.
func (d *Device) Name() string { return "MEMS" }

// Capacity implements core.Device.
func (d *Device) Capacity() int64 { return d.geo.TotalSectors }

// SectorSize implements core.Device.
func (d *Device) SectorSize() int { return d.geo.SectorSize }

// Reset implements core.Device: the sled parks at the center, at rest.
func (d *Device) Reset() {
	d.st = state{cyl: d.geo.Cylinders / 2, yB: float64(d.geo.BitsY) / 2, vdir: 0}
	d.last, d.hasLast = core.Breakdown{}, false
}

// Access implements core.Device. The now parameter is unused: unlike a
// disk, the device has no free-running rotation, so service time does not
// depend on absolute time (§2.4.8).
func (d *Device) Access(req *core.Request, _ float64) float64 {
	bd, ns := d.access(d.st, req)
	d.st = ns
	d.last, d.hasLast = bd, true
	return bd.ServiceMs
}

// EstimateAccess implements core.Device.
func (d *Device) EstimateAccess(req *core.Request, _ float64) float64 {
	bd, _ := d.access(d.st, req)
	return bd.ServiceMs
}

// LastBreakdown implements core.BreakdownReporter: the phase
// decomposition of the most recent Access.
func (d *Device) LastBreakdown() (core.Breakdown, bool) { return d.last, d.hasLast }

// Detail returns the mechanical breakdown Access would produce for req
// from the current state, without changing state.
func (d *Device) Detail(req *core.Request) core.Breakdown {
	bd, _ := d.access(d.st, req)
	return bd
}

// EstimateBreakdown implements core.BreakdownEstimator. Like Access, it
// ignores absolute time: the sled has no free-running rotation.
func (d *Device) EstimateBreakdown(req *core.Request, _ float64) core.Breakdown {
	bd, _ := d.access(d.st, req)
	return bd
}

// access computes the service of req from state st. Requests are split
// into track spans ("segments"); each segment is swept in whichever Y
// direction positions faster — tips access the media in the ±Y direction
// (§2.2, Fig. 3), which is also what lets read-modify-write sequences pay
// only a turnaround (§6.2).
//
// Phase attribution: per segment the positioning time is
// max(X seek + settle, Y seek) — the axes proceed in parallel (§2.4.1),
// so the lesser is hidden by the greater. When the X path dominates, the
// segment charges Seek (the raw X seek) and Settle; when the Y path
// dominates it charges only Seek (Y seeks have no settle and fold any
// turnaround into the spring-limited trajectory). ServiceMs accumulates
// in the historical operation order, so totals are bit-identical to the
// pre-decomposition model.
func (d *Device) access(st state, req *core.Request) (core.Breakdown, state) {
	g := d.geo
	if req.Blocks <= 0 {
		panic(fmt.Sprintf("mems: request with %d blocks", req.Blocks))
	}
	if req.LBN < 0 || req.LBN+int64(req.Blocks) > g.TotalSectors {
		panic(fmt.Sprintf("mems: request [%d,%d) outside device capacity %d",
			req.LBN, req.LBN+int64(req.Blocks), g.TotalSectors))
	}
	bd := core.Breakdown{Overhead: g.Overhead}
	positioning := 0.0
	lbn := req.LBN
	remaining := req.Blocks
	for remaining > 0 {
		cyl, track, row, slot := g.Decompose(lbn)
		// Sectors left in this track from (row, slot).
		inTrack := g.SectorsPerTrack - (row*g.SectorsPerRow + slot)
		n := remaining
		if n > inTrack {
			n = inTrack
		}
		last := row*g.SectorsPerRow + slot + n - 1
		rowHi := last / g.SectorsPerRow
		_ = track // track selection changes active tips, not sled position

		tb := float64(g.TipSectorBits)
		// X positioning (with settle) happens once per cylinder change.
		tx, xs := 0.0, 0.0
		if cyl != st.cyl {
			xs = d.sled.SeekTime(g.XPos(st.cyl), 0, g.XPos(cyl), 0) * 1e3
			tx = xs + g.SettleMs
		}
		vy := float64(st.vdir) * g.AccessSpeed
		// Forward sweep: start at the top boundary of the first row
		// moving +Y; reverse sweep: start at the bottom boundary of the
		// last row moving −Y.
		fwdStart := float64(row) * tb
		revStart := float64(rowHi+1) * tb
		tyF := d.sled.SeekTime(g.YPos(st.yB), vy, g.YPos(fwdStart), g.AccessSpeed) * 1e3
		tyR := d.sled.SeekTime(g.YPos(st.yB), vy, g.YPos(revStart), -g.AccessSpeed) * 1e3
		ty, dir, end := tyF, 1, float64(rowHi+1)*tb
		if tyR < tyF {
			ty, dir, end = tyR, -1, float64(row)*tb
		}
		pos := tx
		if ty > pos {
			pos = ty
		}
		if tx >= ty {
			// X path dominates (only possible after a cylinder change,
			// else tx = 0 ≥ ty means both are free).
			bd.Seek += xs
			if tx > 0 {
				bd.Settle += g.SettleMs
			}
		} else {
			bd.Seek += ty
		}
		positioning += pos
		bd.SeekX += tx
		bd.SeekY += ty
		bd.Transfer += float64(rowHi-row+1) * g.RowTimeMs
		bd.Segments++

		st = state{cyl: cyl, yB: end, vdir: dir}
		lbn += int64(n)
		remaining -= n
	}
	bd.ServiceMs = positioning + bd.Transfer + bd.Overhead
	return bd, st
}

// ErrorPenalty implements core.RecoveryModel with the §6.1.3 MEMS
// model: recovering from a transient positioning error costs one or two
// Y turnarounds (u < 0.5 selects one, the expected case) plus a short
// repositioning seek — and nothing more, because the sled's motion is
// fully controlled: there is no free-running rotation to re-miss
// (§2.4.8). The turnaround is priced at the sled's current position and
// velocity, the short seek as a single-cylinder X move.
func (d *Device) ErrorPenalty(_ *core.Request, _ float64, u float64) float64 {
	turnarounds := 1
	if u >= 0.5 {
		turnarounds = 2
	}
	ta := d.Turnaround(d.st.yB, d.st.vdir)
	to := d.st.cyl + 1
	if to >= d.geo.Cylinders {
		to = d.st.cyl - 1
	}
	pen, err := fault.MEMSSeekErrorPenalty(ta, d.SeekX(d.st.cyl, to), turnarounds)
	if err != nil {
		// Unreachable: turnarounds ∈ {1,2} by construction.
		panic(err)
	}
	return pen
}

// SeekX returns the X-dimension seek time in ms between two cylinders
// (rest to rest, including settle when the cylinders differ). Exposed for
// the data-placement experiments (§5).
func (d *Device) SeekX(from, to int) float64 {
	if from == to {
		return 0
	}
	return d.sled.SeekTime(d.geo.XPos(from), 0, d.geo.XPos(to), 0)*1e3 + d.geo.SettleMs
}

// Turnaround returns the time in ms to reverse the sled's Y direction at
// bit boundary b, moving in direction dir before the reversal.
func (d *Device) Turnaround(b float64, dir int) float64 {
	return d.sled.TurnaroundTime(d.geo.YPos(b), float64(dir)*d.geo.AccessSpeed) * 1e3
}

// State returns the current cylinder, Y boundary, and direction; tests
// and experiments use it to verify mechanical behavior.
func (d *Device) State() (cyl int, yB float64, vdir int) {
	return d.st.cyl, d.st.yB, d.st.vdir
}

// SetState forces the mechanical state; experiments use it to measure
// position-dependent costs (e.g. Fig. 9's subregion map).
func (d *Device) SetState(cyl int, yB float64, vdir int) {
	if cyl < 0 || cyl >= d.geo.Cylinders || yB < 0 || yB > float64(d.geo.BitsY) {
		panic(fmt.Sprintf("mems: SetState out of range: cyl=%d yB=%g", cyl, yB))
	}
	d.st = state{cyl: cyl, yB: yB, vdir: vdir}
}
