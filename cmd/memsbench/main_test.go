package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenTraceRejectsDirectory(t *testing.T) {
	dir := t.TempDir()
	if _, err := openTrace(dir); err == nil || !strings.Contains(err.Error(), "is a directory") {
		t.Errorf("openTrace(%q) = %v, want directory error", dir, err)
	}
}

func TestOpenTraceRejectsUnwritablePath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")
	if _, err := openTrace(path); err == nil {
		t.Errorf("openTrace(%q) succeeded on a missing parent", path)
	} else if !strings.Contains(err.Error(), "-trace") {
		t.Errorf("error %q does not name the flag", err)
	}
}

func TestOpenTraceCreatesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	f, err := openTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := os.Stat(path); err != nil {
		t.Errorf("trace file not created: %v", err)
	}
}
