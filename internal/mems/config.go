// Package mems implements the performance model of a MEMS-based storage
// device described in §2–§3 of Griffin et al. (CMU-CS-00-136): a
// spring-mounted magnetic media sled suspended over a two-dimensional
// array of fixed probe tips. The media under each tip is an N×M-bit
// region; the sled seeks in X (selecting a cylinder) and sweeps in Y at
// constant velocity while the active tips transfer data.
//
// Terminology follows the paper's disk-like metaphor (§2.2):
//
//   - tip sector: servo bits + encoded data bits under one tip (the
//     smallest accessible unit, 10 + 80 bits carrying 8 data bytes);
//   - row: the tip sectors at one Y position across all active tips
//     (one logical-sector-row pass of the sled);
//   - logical sector: 512 B striped across 64 tip sectors;
//   - track: the portion of a cylinder accessible by one group of
//     concurrently active tips;
//   - cylinder: everything reachable without moving the sled in X.
package mems

import (
	"fmt"
	"math"

	"memsim/internal/physics"
)

// Config holds the device parameters. The zero value is not usable; start
// from DefaultConfig, which reproduces Table 1 of the paper.
type Config struct {
	// Tips is the total number of probe tips (Table 1: 6400).
	Tips int
	// ActiveTips is the number of simultaneously active tips, limited by
	// power and heat (Table 1: 1280).
	ActiveTips int
	// SpareTips are reserved for fault remapping and excluded from the
	// addressable capacity. Must be a multiple of ActiveTips so whole
	// tracks are reserved. Default 0; the fault-management experiments
	// configure it explicitly.
	SpareTips int

	// BitWidth is the bit cell edge length in meters (Table 1: 40 nm).
	BitWidth float64
	// BitsX is the number of bit columns per tip region = the number of
	// cylinders. BitsY is the number of bits per tip track. Both default
	// to 2500 (100 µm of sled mobility at 40 nm per bit).
	BitsX, BitsY int

	// ServoBits and EncodedBits describe one tip sector: 10 servo bits
	// followed by 80 encoded bits carrying DataBytes (8) of user data.
	ServoBits, EncodedBits, DataBytes int

	// SectorSize is the logical block size in bytes (512).
	SectorSize int

	// PerTipRate is the per-tip read/write rate in bits/s (700 Kbit/s).
	PerTipRate float64

	// SledAccel is the actuator acceleration in m/s² (803.6).
	SledAccel float64
	// SpringFactor is the fraction of SledAccel exerted by the springs at
	// full displacement (0.75).
	SpringFactor float64
	// ResonantHz is the sled resonant frequency (739 Hz); together with
	// SettleConstants it sets the post-X-seek settling delay:
	// settle = SettleConstants / (2π · ResonantHz).
	ResonantHz float64
	// SettleConstants is the number of settling time constants charged
	// after any seek that moves in X (Table 1 default: 1; Fig. 8 studies
	// 0 and 2).
	SettleConstants float64

	// Overhead is a fixed per-request command/controller overhead in ms.
	Overhead float64
}

// DefaultConfig returns the paper's Table 1 parameters.
func DefaultConfig() Config {
	return Config{
		Tips:            6400,
		ActiveTips:      1280,
		BitWidth:        40e-9,
		BitsX:           2500,
		BitsY:           2500,
		ServoBits:       10,
		EncodedBits:     80,
		DataBytes:       8,
		SectorSize:      512,
		PerTipRate:      700e3,
		SledAccel:       803.6,
		SpringFactor:    0.75,
		ResonantHz:      739,
		SettleConstants: 1,
		Overhead:        0.03,
	}
}

// Geometry holds the quantities derived from a Config. It is embedded in
// Device and shared with the layout and experiment packages.
type Geometry struct {
	Config

	// TipSectorBits is servo + encoded bits per tip sector (90).
	TipSectorBits int
	// StripeTips is the number of tips one logical sector is striped
	// across (SectorSize/DataBytes = 64).
	StripeTips int
	// SectorsPerRow is the number of logical sectors transferred in one
	// pass over a row (ActiveTips/StripeTips = 20).
	SectorsPerRow int
	// RowsPerTrack is the number of tip-sector rows along a tip track
	// (⌊BitsY/TipSectorBits⌋ = 27).
	RowsPerTrack int
	// SectorsPerTrack = SectorsPerRow·RowsPerTrack = 540.
	SectorsPerTrack int
	// TracksPerCylinder is the number of active-tip groups
	// ((Tips−SpareTips)/ActiveTips = 5).
	TracksPerCylinder int
	// Cylinders = BitsX = 2500.
	Cylinders int
	// SectorsPerCylinder = SectorsPerTrack·TracksPerCylinder = 2700.
	SectorsPerCylinder int
	// TotalSectors is the addressable capacity in logical blocks.
	TotalSectors int64

	// RowTimeMs is the time for the sled to sweep one tip-sector row at
	// access velocity, in ms (90 bits / 700 Kbit/s = 0.1286 ms).
	RowTimeMs float64
	// AccessSpeed is the constant Y velocity during media transfer, m/s
	// (PerTipRate · BitWidth = 28 mm/s).
	AccessSpeed float64
	// SettleMs is the X settling delay in ms.
	SettleMs float64
	// HalfRange is the sled travel from center to edge, meters.
	HalfRange float64
}

// NewGeometry validates cfg and derives the device geometry.
func NewGeometry(cfg Config) (*Geometry, error) {
	switch {
	case cfg.Tips <= 0 || cfg.ActiveTips <= 0:
		return nil, fmt.Errorf("mems: tips (%d) and active tips (%d) must be positive", cfg.Tips, cfg.ActiveTips)
	case cfg.SpareTips < 0 || cfg.SpareTips >= cfg.Tips:
		return nil, fmt.Errorf("mems: spare tips (%d) out of range", cfg.SpareTips)
	case cfg.SpareTips%cfg.ActiveTips != 0:
		return nil, fmt.Errorf("mems: spare tips (%d) must be a multiple of active tips (%d)", cfg.SpareTips, cfg.ActiveTips)
	case (cfg.Tips-cfg.SpareTips)%cfg.ActiveTips != 0:
		return nil, fmt.Errorf("mems: usable tips (%d) must be a multiple of active tips (%d)", cfg.Tips-cfg.SpareTips, cfg.ActiveTips)
	case cfg.DataBytes <= 0 || cfg.SectorSize%cfg.DataBytes != 0:
		return nil, fmt.Errorf("mems: sector size (%d) must be a multiple of tip-sector data bytes (%d)", cfg.SectorSize, cfg.DataBytes)
	case cfg.BitWidth <= 0 || cfg.BitsX <= 0 || cfg.BitsY <= 0:
		return nil, fmt.Errorf("mems: bit geometry must be positive")
	case cfg.PerTipRate <= 0 || cfg.SledAccel <= 0:
		return nil, fmt.Errorf("mems: rates and accelerations must be positive")
	case cfg.SpringFactor < 0 || cfg.SpringFactor >= 1:
		return nil, fmt.Errorf("mems: spring factor %g must be in [0, 1)", cfg.SpringFactor)
	case cfg.SettleConstants < 0 || cfg.ResonantHz <= 0:
		return nil, fmt.Errorf("mems: settling parameters out of range")
	}
	g := &Geometry{Config: cfg}
	g.TipSectorBits = cfg.ServoBits + cfg.EncodedBits
	g.StripeTips = cfg.SectorSize / cfg.DataBytes
	if cfg.ActiveTips%g.StripeTips != 0 {
		return nil, fmt.Errorf("mems: active tips (%d) must be a multiple of stripe width (%d)", cfg.ActiveTips, g.StripeTips)
	}
	g.SectorsPerRow = cfg.ActiveTips / g.StripeTips
	g.RowsPerTrack = cfg.BitsY / g.TipSectorBits
	if g.RowsPerTrack == 0 {
		return nil, fmt.Errorf("mems: tip track (%d bits) shorter than one tip sector (%d bits)", cfg.BitsY, g.TipSectorBits)
	}
	g.SectorsPerTrack = g.SectorsPerRow * g.RowsPerTrack
	g.TracksPerCylinder = (cfg.Tips - cfg.SpareTips) / cfg.ActiveTips
	g.Cylinders = cfg.BitsX
	g.SectorsPerCylinder = g.SectorsPerTrack * g.TracksPerCylinder
	g.TotalSectors = int64(g.Cylinders) * int64(g.SectorsPerCylinder)
	g.RowTimeMs = float64(g.TipSectorBits) / cfg.PerTipRate * 1e3
	g.AccessSpeed = cfg.PerTipRate * cfg.BitWidth
	g.SettleMs = cfg.SettleConstants / (2 * math.Pi * cfg.ResonantHz) * 1e3
	g.HalfRange = float64(cfg.BitsX) * cfg.BitWidth / 2
	return g, nil
}

// CapacityBytes returns the addressable capacity in bytes.
func (g *Geometry) CapacityBytes() int64 {
	return g.TotalSectors * int64(g.SectorSize)
}

// StreamBandwidth returns the sustained media bandwidth in bytes/s when
// all active tips stream: ActiveTips · PerTipRate · dataBits/encodedBits.
// With the Table 1 defaults this is 79.6 MB/s, the figure quoted in §5.2.
func (g *Geometry) StreamBandwidth() float64 {
	dataBits := float64(8 * g.DataBytes)
	return float64(g.ActiveTips) * g.PerTipRate * dataBits /
		float64(g.TipSectorBits) / 8
}

// Sled returns the physics model for either sled axis.
func (g *Geometry) Sled() *physics.Sled {
	return &physics.Sled{
		Accel:        g.SledAccel,
		SpringFactor: g.SpringFactor,
		HalfRange:    g.HalfRange,
	}
}

// XPos returns the sled X displacement in meters when cylinder cyl is
// under the tips. Cylinder (Cylinders−1)/2 sits near the center.
func (g *Geometry) XPos(cyl int) float64 {
	return (float64(cyl) - float64(g.Cylinders-1)/2) * g.BitWidth
}

// YPos returns the sled Y displacement in meters for a bit *boundary*
// coordinate b ∈ [0, BitsY]. Row r spans boundaries [r·TipSectorBits,
// (r+1)·TipSectorBits].
func (g *Geometry) YPos(b float64) float64 {
	return (b - float64(g.BitsY)/2) * g.BitWidth
}

// LBN composes a logical block number from physical coordinates: cylinder,
// track within cylinder, row within track, and sector slot within the row.
// It panics on out-of-range coordinates (programmer error).
func (g *Geometry) LBN(cyl, track, row, slot int) int64 {
	if cyl < 0 || cyl >= g.Cylinders || track < 0 || track >= g.TracksPerCylinder ||
		row < 0 || row >= g.RowsPerTrack || slot < 0 || slot >= g.SectorsPerRow {
		panic(fmt.Sprintf("mems: coordinates out of range: cyl=%d track=%d row=%d slot=%d", cyl, track, row, slot))
	}
	return int64(cyl)*int64(g.SectorsPerCylinder) +
		int64(track)*int64(g.SectorsPerTrack) +
		int64(row)*int64(g.SectorsPerRow) + int64(slot)
}

// TipsForSector returns the probe tips that service logical sector lbn:
// the StripeTips consecutive tips of the sector's track group selected
// by its slot within the row. This is the bridge between the timing
// geometry and the redundancy structure in internal/fault — a failed tip
// affects exactly the sectors this function maps it to, and a spare tip
// substitutes at the same positions.
func (g *Geometry) TipsForSector(lbn int64) []int {
	_, track, _, slot := g.Decompose(lbn)
	base := track*g.ActiveTips + slot*g.StripeTips
	tips := make([]int, g.StripeTips)
	for i := range tips {
		tips[i] = base + i
	}
	return tips
}

// Decompose inverts LBN. It panics when lbn is outside the device.
func (g *Geometry) Decompose(lbn int64) (cyl, track, row, slot int) {
	if lbn < 0 || lbn >= g.TotalSectors {
		panic(fmt.Sprintf("mems: LBN %d outside device (capacity %d)", lbn, g.TotalSectors))
	}
	cyl = int(lbn / int64(g.SectorsPerCylinder))
	rem := int(lbn % int64(g.SectorsPerCylinder))
	track = rem / g.SectorsPerTrack
	rem %= g.SectorsPerTrack
	row = rem / g.SectorsPerRow
	slot = rem % g.SectorsPerRow
	return cyl, track, row, slot
}
