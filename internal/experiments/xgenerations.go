package experiments

import (
	"fmt"
	"math/rand"

	"memsim/internal/core"
	"memsim/internal/mems"
	"memsim/internal/runner"
)

func init() { register("generations", generationsPlan) }

// Generations is a sensitivity study of the device model across
// successive MEMS generations (extension; the configurations are
// extrapolations documented in internal/mems/generations.go, not
// published parameter sets). It reports how density, per-tip rate and
// actuator improvements move the headline figures of merit.
func Generations(p Params) []Table { return mustRun(generationsPlan(p)) }

func generationsPlan(p Params) *Plan {
	trials := p.Trials
	if trials > 2000 {
		trials = 2000
	}
	gens := []struct {
		name string
		cfg  mems.Config
	}{
		{"G1 (Table 1)", mems.ConfigGen1()},
		{"G2", mems.ConfigGen2()},
		{"G3", mems.ConfigGen3()},
	}
	jobs := make([]*runner.Job, len(gens))
	for i, gen := range gens {
		jobs[i] = &runner.Job{
			Label: "generations " + gen.name,
			Seed:  p.Seed,
			Custom: func(*runner.Job) any {
				d, err := mems.NewDevice(gen.cfg)
				if err != nil {
					panic(err) // generation configs are maintained with the model
				}
				g := d.Geometry()
				rng := rand.New(rand.NewSource(p.Seed))
				sum := 0.0
				for i := 0; i < trials; i++ {
					lbn := rng.Int63n(g.TotalSectors - 8)
					sum += d.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: 8}, 0)
				}
				return []string{gen.name,
					fmt.Sprintf("%.2f", float64(g.CapacityBytes())/1e9),
					fmt.Sprintf("%.1f", g.StreamBandwidth()/1e6),
					ms(sum / float64(trials)),
					ms(d.SeekX(0, g.Cylinders-1))}
			},
		}
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID:    "generations",
				Title: "device generations (G2/G3 are extrapolations; see generations.go)",
				Columns: []string{"generation", "capacity(GB)", "stream(MB/s)",
					"avg 4 KB access(ms)", "full-stroke seek(ms)"},
			}
			for _, j := range jobs {
				t.AddRow(j.Value().([]string)...)
			}
			return []Table{t}
		},
	}
}
