package experiments

import (
	"memsim/internal/core"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/trace"
	"memsim/internal/workload"
)

func init() { register("fig7", Fig7) }

// Fig7 reproduces Fig. 7: scheduler comparison on the MEMS device under
// the two realistic workloads, swept by the trace scale factor (traced
// interarrival times divided by the factor, §4.3 footnote 2). The traces
// are the synthetic Cello-like and TPC-C-like stand-ins documented in
// DESIGN.md §5.
func Fig7(p Params) []Table {
	d := newMEMS(1)
	cello := trace.GenerateCello(trace.DefaultCello(d.Capacity(), p.Requests))
	tpcc := trace.GenerateTPCC(trace.DefaultTPCC(d.Capacity(), p.Requests))
	// Base rates: Cello ≈ 40 req/s, TPC-C ≈ 120 req/s; the MEMS device
	// saturates near 1300 random req/s, so the interesting scale regions
	// differ per trace.
	out := traceSweep(d, "fig7a", "Cello trace", cello, []float64{4, 8, 12, 16, 20, 24, 28}, p)
	out = append(out, traceSweep(d, "fig7b", "TPC-C trace", tpcc, []float64{2, 4, 6, 8, 10, 12}, p)...)
	return out
}

// traceSweep replays tr at each scale factor under every scheduler.
func traceSweep(d core.Device, id, title string, tr *trace.Trace, scales []float64, p Params) []Table {
	t := Table{
		ID:      id,
		Title:   "average response time vs. trace scale factor, " + title + " on MEMS (ms)",
		Columns: append([]string{"scale"}, sched.Names()...),
	}
	cvt := Table{
		ID:      id + "-cv2",
		Title:   "squared coefficient of variation, " + title + " on MEMS",
		Columns: append([]string{"scale"}, sched.Names()...),
	}
	for _, scale := range scales {
		scaled := tr.Scale(scale)
		row := []string{f2(scale)}
		cvRow := []string{f2(scale)}
		for _, name := range sched.Names() {
			s, err := sched.New(name)
			if err != nil {
				panic(err)
			}
			reqs := make([]*core.Request, scaled.Len())
			for i, rec := range scaled.Records {
				reqs[i] = rec.Request()
			}
			res := sim.Run(d, s, workload.NewFromSlice(reqs), sim.Options{Warmup: p.Warmup})
			row = append(row, ms(res.Response.Mean()))
			cvRow = append(cvRow, f2(res.Response.SquaredCV()))
		}
		t.AddRow(row...)
		cvt.AddRow(cvRow...)
	}
	return []Table{t, cvt}
}
