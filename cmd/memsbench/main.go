// memsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	memsbench                     # run every artifact at full size
//	memsbench -run fig6           # one artifact
//	memsbench -run fig6,table2    # several
//	memsbench -quick              # reduced sizes (seconds instead of minutes)
//	memsbench -csv -o results/    # write one CSV per table instead of text
//	memsbench -parallel 8         # worker-pool width (default: NumCPU)
//	memsbench -progress           # report per-job completions to stderr
//	memsbench -list               # list artifact IDs
//	memsbench -run faultinject -fault-rate 0.02
//	                              # fault injection with an extra error rate
//	memsbench -run phases -trace run.jsonl
//	                              # request-lifecycle JSONL alongside the tables
//	memsbench -run fig11 -think-ms 10
//	                              # closed-loop terminals with think time
//	                              # (default 0: the paper's back-to-back regime)
//	memsbench -run mttdl -trials 500 -mttf-hours 2000
//	                              # Monte-Carlo MTTDL under the lifetime model
//	memsbench -run rebuild -rebuild-policy adaptive
//	                              # queue-aware rebuild pacing only
//	memsbench -run schedcost -sched Priority
//	                              # cost-model scheduler comparison, one extra policy
//	memsbench -run rebuild -member-sched Priority
//	                              # class-aware volume member queues during rebuild
//
// Artifact IDs follow the paper: table1, fig5…fig11, table2, plus the
// quantified extensions fault, faultinject and power (DESIGN.md §2).
//
// Every experiment is a batch of isolated jobs (internal/runner), so
// -parallel N spreads the suite over N workers while producing output
// byte-identical to a sequential run.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"memsim/internal/experiments"
	"memsim/internal/runner"
	"memsim/internal/sched"
	"memsim/internal/sim"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated artifact IDs, or \"all\"")
		quick     = flag.Bool("quick", false, "use reduced simulation sizes")
		csv       = flag.Bool("csv", false, "emit CSV files instead of text tables")
		out       = flag.String("o", "", "output directory for -csv (default: current)")
		list      = flag.Bool("list", false, "list artifact IDs and exit")
		seed      = flag.Int64("seed", 1, "random seed for all generators")
		reqs      = flag.Int("requests", 0, "override per-run request count (rescales warmup, closed runs and trials proportionally)")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "simulation jobs to run concurrently")
		progress  = flag.Bool("progress", false, "report per-job completions to stderr")
		faultRate = flag.Float64("fault-rate", 0, "extra transient-error rate for the faultinject sweep, in [0,1)")
		faultSeed = flag.Int64("fault-seed", 0, "seed for fault-injection randomness (0: derive from -seed)")
		failDev   = flag.Int("fail-dev", 0, "volume member slot the rebuild experiment kills (reduced modulo the member count)")
		rebuild   = flag.Float64("rebuild", 0, "extra rebuild-throttle fraction for the rebuild sweep, in (0,1]; 0 keeps the standard sweep")
		policy    = flag.String("rebuild-policy", "", "rebuild pacing for the rebuild sweep: \"\" (fixed sweep + adaptive row), \"fixed\", or \"adaptive\"")
		mttfHours = flag.Float64("mttf-hours", 0, "per-device exponential MTTF in hours for the mttdl experiment (0: default 1000, compressed scale)")
		trials    = flag.Int("trials", 0, "override the Monte-Carlo trial count (mttdl and other multi-trial experiments; 0 keeps the preset)")
		thinkMs   = flag.Float64("think-ms", 0, "mean exponential think time (ms) for closed-loop terminals (fig11); 0 keeps the paper's back-to-back regime")
		schedName = flag.String("sched", "", "extra scheduling policy for the schedcost comparison (e.g. \"SettleAware\", \"Priority\"); empty keeps the standard pair")
		mSched    = flag.String("member-sched", "", "scheduling policy for the rebuild experiment's volume member queues (default SPTF)")
		tracePath = flag.String("trace", "", "write request-lifecycle JSONL (one event per line) to this file; forces -parallel 1 so event order is deterministic")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	p := experiments.Default()
	if *quick {
		p = experiments.Quick()
	}
	if err := validateFlags(flagValues{
		faultRate: *faultRate, rebuild: *rebuild, rebuildPolicy: *policy,
		mttfHours: *mttfHours, trials: *trials, failDev: *failDev, thinkMs: *thinkMs,
		sched: *schedName, memberSched: *mSched,
	}); err != nil {
		fatal(err)
	}
	p.Seed = *seed
	p.FaultRate = *faultRate
	p.FaultSeed = *faultSeed
	p.FailDev = *failDev
	p.RebuildFrac = *rebuild
	p.RebuildPolicy = *policy
	p.MTTFHours = *mttfHours
	p.ThinkMs = *thinkMs
	p.Sched = *schedName
	p.MemberSched = *mSched
	p = p.WithRequests(*reqs)
	// An explicit -trials wins over the preset and any -requests rescale.
	if *trials > 0 {
		p.Trials = *trials
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	ctx := &runner.Context{Workers: *parallel}
	var (
		traceFile  *os.File
		traceProbe *sim.JSONLProbe
	)
	if *tracePath != "" {
		f, err := openTrace(*tracePath)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		if *parallel > 1 {
			fmt.Fprintln(os.Stderr, "memsbench: -trace forces -parallel 1 for deterministic event order")
		}
		traceProbe = sim.NewJSONLProbe(traceFile)
		ctx.Workers = 1
		ctx.Probe = traceProbe
	}
	if *progress {
		ctx.Progress = func(ev runner.Event) {
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "memsbench: [%d/%d] %s: %v\n", ev.Done, ev.Total, ev.Label, ev.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "memsbench: [%d/%d] %s (%.0f ms wall, %.0f ms simulated)\n",
				ev.Done, ev.Total, ev.Label, ev.WallMs, ev.SimMs)
		}
	}

	results, sum, err := experiments.RunMany(ctx, ids, p)
	if err != nil {
		if traceFile != nil {
			os.Remove(traceFile.Name())
		}
		fmt.Fprintln(os.Stderr, "memsbench:", err)
		os.Exit(1)
	}
	if traceProbe != nil {
		if err := traceProbe.Flush(); err != nil {
			os.Remove(traceFile.Name())
			fatal(fmt.Errorf("writing %s: %w", *tracePath, err))
		}
		if err := commitTrace(traceFile, *tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "memsbench: wrote lifecycle trace to %s\n", *tracePath)
	}
	if *progress {
		simTotal := sum.Sim.Mean() * float64(sum.Sim.N())
		fmt.Fprintf(os.Stderr, "memsbench: %d jobs in %.0f ms wall (%.0f ms simulated across jobs)\n",
			sum.Jobs, sum.ElapsedMs, simTotal)
	}

	for _, tables := range results {
		for _, t := range tables {
			if *csv {
				writeCSV(t, *out)
			} else {
				t.Fprint(os.Stdout)
			}
		}
	}
}

// flagValues collects the fault/rebuild/availability knobs subject to
// parse-time validation, so a bad value fails with a one-line error
// before any simulation starts.
type flagValues struct {
	faultRate     float64
	rebuild       float64
	rebuildPolicy string
	mttfHours     float64
	trials        int
	failDev       int
	thinkMs       float64
	sched         string
	memberSched   string
}

// validateFlags rejects out-of-range or nonsensical knob values.
func validateFlags(v flagValues) error {
	if v.faultRate < 0 || v.faultRate >= 1 || math.IsNaN(v.faultRate) {
		return fmt.Errorf("-fault-rate %g out of [0,1)", v.faultRate)
	}
	if v.rebuild < 0 || v.rebuild > 1 || math.IsNaN(v.rebuild) {
		return fmt.Errorf("-rebuild %g out of [0,1]", v.rebuild)
	}
	switch v.rebuildPolicy {
	case "", "fixed", "adaptive":
	default:
		return fmt.Errorf("-rebuild-policy %q must be \"fixed\" or \"adaptive\" (empty runs both)", v.rebuildPolicy)
	}
	if v.mttfHours < 0 || math.IsNaN(v.mttfHours) || math.IsInf(v.mttfHours, 0) {
		return fmt.Errorf("-mttf-hours %g must be a positive number of hours (0: default)", v.mttfHours)
	}
	if v.trials < 0 {
		return fmt.Errorf("-trials %d must be non-negative (0: preset default)", v.trials)
	}
	if v.failDev < 0 {
		return fmt.Errorf("-fail-dev %d must be non-negative", v.failDev)
	}
	if v.thinkMs < 0 {
		return fmt.Errorf("-think-ms %g must be non-negative", v.thinkMs)
	}
	if v.sched != "" {
		if _, err := sched.New(v.sched); err != nil {
			return fmt.Errorf("-sched %q must be one of %s", v.sched, strings.Join(sched.AllNames(), ", "))
		}
	}
	if v.memberSched != "" {
		if _, err := sched.New(v.memberSched); err != nil {
			return fmt.Errorf("-member-sched %q must be one of %s", v.memberSched, strings.Join(sched.AllNames(), ", "))
		}
	}
	return nil
}

func writeCSV(t experiments.Table, out string) {
	dir := out
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, t.ID+".csv")
	// Atomic: an interrupted run never leaves a truncated artifact.
	err := runner.WriteArtifact(path, func(w io.Writer) error {
		t.CSV(w)
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

// openTrace validates the -trace output path and opens a temporary file
// next to it. The trace streams into the temporary file during the run;
// commitTrace renames it over the final path only after a clean flush,
// so an interrupted run never leaves a truncated trace where a complete
// one is expected.
func openTrace(path string) (*os.File, error) {
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		return nil, fmt.Errorf("-trace %s: is a directory", path)
	}
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("-trace %s: %w", path, err)
	}
	return f, nil
}

// commitTrace publishes the streamed temporary trace file at its final
// path.
func commitTrace(f *os.File, path string) error {
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("closing %s: %w", path, err)
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("-trace %s: %w", path, err)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memsbench:", err)
	os.Exit(1)
}
