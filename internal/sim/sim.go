// Package sim is the discrete-event simulation substrate standing in for
// DiskSim (§3): an open-arrival, single-server queueing system in which
// timestamped requests arrive from a workload source, wait in a scheduler
// queue, and are serviced one at a time by a mechanically-detailed device
// model.
//
// The simulator is deterministic: identical sources, schedulers and
// devices produce identical results.
package sim

import (
	"container/heap"
	"fmt"

	"memsim/internal/core"
	"memsim/internal/stats"
	"memsim/internal/workload"
)

// Context carries run-scoped observability through the simulation entry
// points (Run, RunClosed, RunMulti). It separates *how a run is watched*
// from Options, which describe *what is simulated*: the parallel
// experiment runner and the interactive CLIs thread a Context through
// without touching the experiment declarations. A nil *Context is valid
// and observes nothing.
type Context struct {
	// OnProgress, when non-nil, is invoked after every ProgressEvery
	// completions (warmup included) with the completion count and the
	// current simulated time in milliseconds.
	OnProgress func(completed int, simMs float64)
	// ProgressEvery is the completion interval between OnProgress calls;
	// zero or negative means 1000.
	ProgressEvery int
}

// progress reports one completion, firing OnProgress on interval
// boundaries. Safe on a nil receiver.
func (c *Context) progress(completed int, simMs float64) {
	if c == nil || c.OnProgress == nil {
		return
	}
	every := c.ProgressEvery
	if every <= 0 {
		every = 1000
	}
	if completed%every == 0 {
		c.OnProgress(completed, simMs)
	}
}

// Options tunes a simulation run.
type Options struct {
	// Warmup excludes the first N completed requests from the reported
	// statistics, hiding cold-start transients.
	Warmup int
	// MaxRequests stops the run after this many completions (0 = run the
	// source dry).
	MaxRequests int
	// OnComplete, when non-nil, observes every completed request
	// (including warmup ones).
	OnComplete func(*core.Request)
}

// Result summarizes a run. Response time (queue + service) and its
// squared coefficient of variation are the paper's two scheduler metrics
// (§4.1).
type Result struct {
	// Requests is the number of completions measured (after warmup).
	Requests int
	// Response accumulates response times in ms.
	Response stats.Welford
	// Service accumulates device service times in ms.
	Service stats.Welford
	// QueueLen accumulates the queue length seen at each dispatch.
	QueueLen stats.Welford
	// MaxQueue is the largest queue length observed.
	MaxQueue int
	// Busy is the total device busy time in ms.
	Busy float64
	// Elapsed is the completion time of the last request in ms.
	Elapsed float64
}

// Utilization returns the fraction of elapsed time the device was busy.
func (r *Result) Utilization() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return r.Busy / r.Elapsed
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("n=%d mean-response=%.3fms cv²=%.2f mean-service=%.3fms util=%.0f%%",
		r.Requests, r.Response.Mean(), r.Response.SquaredCV(), r.Service.Mean(), r.Utilization()*100)
}

// Run executes an open-arrival simulation: requests arrive at their
// source-assigned times, queue in s, and are serviced by d. The device
// and scheduler are Reset before the run.
func Run(ctx *Context, d core.Device, s core.Scheduler, src workload.Source, opts Options) Result {
	d.Reset()
	s.Reset()
	var res Result
	now := 0.0
	next := src.Next()
	completed := 0
	for {
		if opts.MaxRequests > 0 && completed >= opts.MaxRequests {
			break
		}
		// Ingest every request that has arrived by `now`.
		for next != nil && next.Arrival <= now {
			s.Add(next)
			next = src.Next()
		}
		if s.Len() == 0 {
			if next == nil {
				break // drained
			}
			// Idle until the next arrival.
			now = next.Arrival
			continue
		}
		qlen := s.Len()
		r := s.Next(d, now)
		r.Start = now
		svc := d.Access(r, now)
		r.Finish = now + svc
		now = r.Finish
		res.Busy += svc
		completed++
		ctx.progress(completed, now)
		if opts.OnComplete != nil {
			opts.OnComplete(r)
		}
		if completed > opts.Warmup {
			res.Requests++
			res.Response.Add(r.ResponseTime())
			res.Service.Add(svc)
			res.QueueLen.Add(float64(qlen))
			if qlen > res.MaxQueue {
				res.MaxQueue = qlen
			}
		}
	}
	res.Elapsed = now
	return res
}

// RunClosed executes a closed, back-to-back simulation: each request
// begins the moment the previous one completes (no queueing). This is the
// regime of the data-placement experiments (§5.3), which compare average
// service times.
func RunClosed(ctx *Context, d core.Device, src workload.Source, opts Options) Result {
	d.Reset()
	var res Result
	now := 0.0
	completed := 0
	for r := src.Next(); r != nil; r = src.Next() {
		if opts.MaxRequests > 0 && completed >= opts.MaxRequests {
			break
		}
		r.Arrival = now
		r.Start = now
		svc := d.Access(r, now)
		r.Finish = now + svc
		now = r.Finish
		res.Busy += svc
		completed++
		ctx.progress(completed, now)
		if opts.OnComplete != nil {
			opts.OnComplete(r)
		}
		if completed > opts.Warmup {
			res.Requests++
			res.Response.Add(svc)
			res.Service.Add(svc)
		}
	}
	res.Elapsed = now
	return res
}

// ─── Generic event queue ───────────────────────────────────────────────
//
// The queueing loops above need no event heap, but other simulations in
// this repository (the power-management policies, which juggle idle
// timers and restarts) do. EventQueue is a minimal deterministic
// time-ordered event list with stable FIFO ordering for simultaneous
// events.

// Event is a timestamped callback.
type Event struct {
	Time float64
	Fn   func()

	seq int // insertion order, for stable ordering of ties
}

// EventQueue dispatches events in time order. The zero value is ready to
// use.
type EventQueue struct {
	h   eventHeap
	seq int
	now float64
}

// Now returns the time of the most recently dispatched event.
func (q *EventQueue) Now() float64 { return q.now }

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at time t. Scheduling in the past (before
// the last dispatched event) panics: it indicates a simulation bug.
func (q *EventQueue) Schedule(t float64, fn func()) {
	if t < q.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before current time %g", t, q.now))
	}
	q.seq++
	heap.Push(&q.h, &Event{Time: t, Fn: fn, seq: q.seq})
}

// Step dispatches the earliest event; it reports whether one was run.
func (q *EventQueue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*Event)
	q.now = e.Time
	e.Fn()
	return true
}

// RunUntil dispatches events until the queue is empty or the next event
// is after t.
func (q *EventQueue) RunUntil(t float64) {
	for len(q.h) > 0 && q.h[0].Time <= t {
		q.Step()
	}
	if q.now < t {
		q.now = t
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
