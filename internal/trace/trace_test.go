package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"memsim/internal/core"
)

const testCapacity = int64(6750000) // default MEMS device

func TestScale(t *testing.T) {
	tr := &Trace{Name: "t", Records: []Record{
		{TimeMs: 10, Op: core.Read, LBN: 0, Blocks: 8},
		{TimeMs: 20, Op: core.Write, LBN: 8, Blocks: 8},
	}}
	s := tr.Scale(2)
	if s.Records[0].TimeMs != 5 || s.Records[1].TimeMs != 10 {
		t.Errorf("scaled times = %g, %g", s.Records[0].TimeMs, s.Records[1].TimeMs)
	}
	// Original unchanged.
	if tr.Records[0].TimeMs != 10 {
		t.Error("Scale mutated the original")
	}
	if !strings.Contains(s.Name, "x2") {
		t.Errorf("scaled name = %q", s.Name)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-positive factor")
			}
		}()
		tr.Scale(0)
	}()
}

func TestClip(t *testing.T) {
	tr := &Trace{Records: make([]Record, 100)}
	if got := tr.Clip(10).Len(); got != 10 {
		t.Errorf("Clip(10).Len() = %d", got)
	}
	if got := tr.Clip(1000); got != tr {
		t.Error("Clip beyond length should return the trace itself")
	}
}

func TestValidate(t *testing.T) {
	good := &Trace{Records: []Record{
		{TimeMs: 1, LBN: 0, Blocks: 8},
		{TimeMs: 2, LBN: 100, Blocks: 8},
	}}
	if err := good.Validate(1000); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := []*Trace{
		{Records: []Record{{TimeMs: 2}, {TimeMs: 1}}},         // out of order
		{Records: []Record{{TimeMs: 1, LBN: 0, Blocks: 0}}},   // zero blocks
		{Records: []Record{{TimeMs: 1, LBN: -1, Blocks: 8}}},  // negative lbn
		{Records: []Record{{TimeMs: 1, LBN: 999, Blocks: 8}}}, // beyond capacity
	}
	for i, tr := range bad {
		// give each bad record a plausible sibling field
		for j := range tr.Records {
			if tr.Records[j].Blocks == 0 && i != 1 {
				tr.Records[j].Blocks = 8
			}
		}
		if err := tr.Validate(1000); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tr := GenerateCello(DefaultCello(testCapacity, 500))
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip lost records: %d vs %d", got.Len(), tr.Len())
	}
	for i := range tr.Records {
		a, b := tr.Records[i], got.Records[i]
		if math.Abs(a.TimeMs-b.TimeMs) > 1e-5 || a.Op != b.Op || a.LBN != b.LBN || a.Blocks != b.Blocks {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1.0 r 5",       // too few fields
		"x r 5 8",       // bad time
		"1.0 q 5 8",     // bad op
		"1.0 r five 8",  // bad lbn
		"1.0 r 5 eight", // bad blocks
	}
	for _, line := range cases {
		if _, err := Read(strings.NewReader(line), "bad"); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
	// Comments and blank lines are fine.
	tr, err := Read(strings.NewReader("# hello\n\n1.5 w 10 4\n"), "ok")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Records[0].Op != core.Write || tr.Records[0].LBN != 10 {
		t.Fatalf("parsed %+v", tr.Records)
	}
}

func TestCelloProperties(t *testing.T) {
	tr := GenerateCello(DefaultCello(testCapacity, 20000))
	if err := tr.Validate(testCapacity); err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if s.Records != 20000 {
		t.Fatalf("records = %d", s.Records)
	}
	// Write-heavy mix.
	readFrac := float64(s.Reads) / float64(s.Records)
	if readFrac < 0.40 || readFrac > 0.60 {
		t.Errorf("read fraction = %.2f, want ≈ 0.45–0.55", readFrac)
	}
	// Long-run rate near the configured mean (±50%: burstiness makes
	// the estimate noisy at this length).
	if s.MeanRate < 20 || s.MeanRate > 80 {
		t.Errorf("mean rate = %.1f req/s, want ≈ 40", s.MeanRate)
	}
	// Some sequential structure but not dominant.
	if s.SeqFraction < 0.02 || s.SeqFraction > 0.6 {
		t.Errorf("sequential fraction = %.2f", s.SeqFraction)
	}
}

func TestCelloBurstiness(t *testing.T) {
	// The squared coefficient of variation of interarrival times must
	// exceed 1 (a Poisson process has exactly 1) — Cello is bursty.
	tr := GenerateCello(DefaultCello(testCapacity, 20000))
	var mean, m2 float64
	n := 0
	prev := 0.0
	for _, r := range tr.Records {
		gap := r.TimeMs - prev
		prev = r.TimeMs
		n++
		d := gap - mean
		mean += d / float64(n)
		m2 += d * (gap - mean)
	}
	cv2 := m2 / float64(n) / (mean * mean)
	if cv2 < 1.5 {
		t.Errorf("interarrival cv² = %.2f, want > 1.5 (bursty)", cv2)
	}
}

func TestCelloLocality(t *testing.T) {
	// Hot regions must absorb a large share of accesses: the most-touched
	// 10% of 1 MB buckets should hold most requests.
	tr := GenerateCello(DefaultCello(testCapacity, 20000))
	const bucket = 2048 // 1 MB in sectors
	counts := map[int64]int{}
	for _, r := range tr.Records {
		counts[r.LBN/bucket]++
	}
	var all []int
	total := 0
	for _, c := range counts {
		all = append(all, c)
		total += c
	}
	// Top 10% of buckets by count.
	top := 0
	threshold := len(all) / 10
	if threshold == 0 {
		threshold = 1
	}
	for i := 0; i < threshold; i++ {
		max, maxIdx := -1, -1
		for j, c := range all {
			if c > max {
				max, maxIdx = c, j
			}
		}
		top += max
		all[maxIdx] = -1
	}
	if frac := float64(top) / float64(total); frac < 0.4 {
		t.Errorf("top-10%% buckets hold %.0f%% of accesses, want ≥ 40%%", frac*100)
	}
}

func TestTPCCProperties(t *testing.T) {
	tr := GenerateTPCC(DefaultTPCC(testCapacity, 20000))
	if err := tr.Validate(testCapacity); err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if s.Records != 20000 {
		t.Fatalf("records = %d", s.Records)
	}
	// Page-sized requests.
	if s.MeanBlocks != 16 {
		t.Errorf("mean blocks = %.1f, want 16 (8 KB pages)", s.MeanBlocks)
	}
	readFrac := float64(s.Reads) / float64(s.Records)
	if readFrac < 0.35 || readFrac > 0.60 {
		t.Errorf("read fraction = %.2f", readFrac)
	}
}

func TestTPCCSmallInterLBNDistances(t *testing.T) {
	// §4.3: the TPC-C workload's signature is many near-simultaneous
	// requests with very small inter-LBN distances. Check that among
	// requests arriving within 50 ms of each other, a substantial
	// fraction are within 4 MB of one another.
	tr := GenerateTPCC(DefaultTPCC(testCapacity, 20000))
	near, pairs := 0, 0
	for i := 1; i < len(tr.Records); i++ {
		a, b := tr.Records[i-1], tr.Records[i]
		if b.TimeMs-a.TimeMs > 50 {
			continue
		}
		pairs++
		d := a.LBN - b.LBN
		if d < 0 {
			d = -d
		}
		if d < 8192 { // 4 MB in sectors
			near++
		}
	}
	if pairs == 0 {
		t.Fatal("no near-simultaneous pairs generated")
	}
	if frac := float64(near) / float64(pairs); frac < 0.25 {
		t.Errorf("near-LBN fraction among concurrent pairs = %.2f, want ≥ 0.25", frac)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := GenerateCello(DefaultCello(testCapacity, 1000))
	b := GenerateCello(DefaultCello(testCapacity, 1000))
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("cello records diverge at %d", i)
		}
	}
	c := GenerateTPCC(DefaultTPCC(testCapacity, 1000))
	d := GenerateTPCC(DefaultTPCC(testCapacity, 1000))
	for i := range c.Records {
		if c.Records[i] != d.Records[i] {
			t.Fatalf("tpcc records diverge at %d", i)
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { GenerateCello(CelloConfig{}) },
		func() { GenerateTPCC(TPCCConfig{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for zero config")
				}
			}()
			f()
		}()
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var tr Trace
	s := tr.Summarize()
	if s.Records != 0 || s.MeanRate != 0 {
		t.Error("empty summary should be zeros")
	}
	if tr.Duration() != 0 {
		t.Error("empty duration should be 0")
	}
}

func TestRequestConversion(t *testing.T) {
	r := Record{TimeMs: 3, Op: core.Write, LBN: 42, Blocks: 7}
	req := r.Request()
	if req.Arrival != 3 || req.Op != core.Write || req.LBN != 42 || req.Blocks != 7 {
		t.Errorf("converted %+v", req)
	}
}
