// memsim runs a single storage simulation from flags and prints the
// resulting metrics — a workbench for exploring the device models beyond
// the paper's fixed experiments.
//
// Usage examples:
//
//	memsim -device mems -sched SPTF -rate 1500 -requests 20000
//	memsim -device disk -sched C-LOOK -rate 100
//	memsim -device mems -settle 0 -sched SSTF_LBN -rate 2000
//	memsim -device mems -trace cello -scale 16
//	memsim -device mems -tracefile mytrace.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/trace"
	"memsim/internal/workload"
)

func main() {
	var (
		device    = flag.String("device", "mems", "device model: mems | disk")
		schedName = flag.String("sched", "SPTF", "scheduler: FCFS | SSTF_LBN | C-LOOK | SPTF | SettleAware | Priority")
		rate      = flag.Float64("rate", 1000, "arrival rate for the random workload (req/s)")
		requests  = flag.Int("requests", 20000, "number of requests")
		warmup    = flag.Int("warmup", 1000, "completions excluded from statistics")
		settle    = flag.Float64("settle", 1, "MEMS settling time constants")
		seed      = flag.Int64("seed", 1, "workload seed")
		traceKind = flag.String("trace", "", "replay a synthetic trace instead: cello | tpcc")
		traceFile = flag.String("tracefile", "", "replay a trace file (text format)")
		scale     = flag.Float64("scale", 1, "trace scale factor (arrival-rate multiplier)")
		progress  = flag.Bool("progress", false, "report completions to stderr while the run is in flight")
	)
	flag.Parse()

	var dev core.Device
	switch *device {
	case "mems":
		cfg := mems.DefaultConfig()
		cfg.SettleConstants = *settle
		d, err := mems.NewDevice(cfg)
		if err != nil {
			fatal(err)
		}
		dev = d
	case "disk":
		d, err := disk.NewDevice(disk.Atlas10K())
		if err != nil {
			fatal(err)
		}
		dev = d
	default:
		fatal(fmt.Errorf("unknown device %q (want mems or disk)", *device))
	}

	s, err := sched.New(*schedName)
	if err != nil {
		fatal(err)
	}

	var src workload.Source
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.Read(f, *traceFile)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if err := tr.Validate(dev.Capacity()); err != nil {
			fatal(err)
		}
		src = traceSource(tr.Scale(*scale).Clip(*requests))
	case *traceKind == "cello":
		tr := trace.GenerateCello(trace.DefaultCello(dev.Capacity(), *requests))
		src = traceSource(tr.Scale(*scale))
	case *traceKind == "tpcc":
		tr := trace.GenerateTPCC(trace.DefaultTPCC(dev.Capacity(), *requests))
		src = traceSource(tr.Scale(*scale))
	case *traceKind != "":
		fatal(fmt.Errorf("unknown trace %q (want cello or tpcc)", *traceKind))
	default:
		src = workload.DefaultRandom(*rate, dev.SectorSize(), dev.Capacity(), *requests, *seed)
	}

	var ctx *sim.Context
	if *progress {
		ctx = &sim.Context{
			ProgressEvery: 1000,
			OnProgress: func(completed int, simMs float64) {
				fmt.Fprintf(os.Stderr, "memsim: %d/%d requests, %.0f ms simulated\n",
					completed, *requests, simMs)
			},
		}
	}
	res := sim.Run(ctx, dev, s, src, sim.Options{Warmup: *warmup})
	fmt.Printf("device           %s\n", dev.Name())
	fmt.Printf("scheduler        %s\n", s.Name())
	fmt.Printf("requests         %d (after %d warmup)\n", res.Requests, *warmup)
	fmt.Printf("simulated time   %.1f ms\n", res.Elapsed)
	fmt.Printf("utilization      %.1f%%\n", res.Utilization()*100)
	fmt.Printf("mean response    %.3f ms\n", res.Response.Mean())
	fmt.Printf("response stddev  %.3f ms\n", res.Response.StdDev())
	fmt.Printf("response cv²     %.3f\n", res.Response.SquaredCV())
	fmt.Printf("max response     %.3f ms\n", res.Response.Max())
	fmt.Printf("mean service     %.3f ms\n", res.Service.Mean())
	fmt.Printf("mean queue len   %.2f (max %d)\n", res.QueueLen.Mean(), res.MaxQueue)
}

func traceSource(t *trace.Trace) workload.Source {
	reqs := make([]*core.Request, t.Len())
	for i, rec := range t.Records {
		reqs[i] = rec.Request()
	}
	return workload.NewFromSlice(reqs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memsim:", err)
	os.Exit(1)
}
