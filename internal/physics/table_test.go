package physics

import (
	"math/rand"
	"testing"
)

func TestSeekTableAccuracy(t *testing.T) {
	s := paperSled()
	tbl := NewSeekTable(s, 257)
	// A 257-point grid should stay within a few microseconds of the
	// closed form away from the zero-distance crease.
	if e := tbl.MaxError(64); e > 15e-6 {
		t.Errorf("max error = %g s, want < 15 µs", e)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x0 := (rng.Float64()*2 - 1) * s.HalfRange
		x1 := (rng.Float64()*2 - 1) * s.HalfRange
		exact := s.SeekTime(x0, 0, x1, 0)
		got := tbl.SeekTime(x0, x1)
		if d := got - exact; d > 30e-6 || d < -30e-6 {
			t.Fatalf("table error %g s at (%g, %g)", d, x0, x1)
		}
	}
}

func TestSeekTableZeroDistance(t *testing.T) {
	tbl := NewSeekTable(paperSled(), 65)
	if tbl.SeekTime(1e-5, 1e-5) != 0 {
		t.Error("zero-distance seek should be exactly 0")
	}
}

func TestSeekTableClampsOutOfRange(t *testing.T) {
	s := paperSled()
	tbl := NewSeekTable(s, 65)
	in := tbl.SeekTime(-s.HalfRange, s.HalfRange)
	out := tbl.SeekTime(-2*s.HalfRange, 2*s.HalfRange)
	if out != in {
		t.Errorf("out-of-range query should clamp: %g vs %g", out, in)
	}
}

func TestSeekTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSeekTable(paperSled(), 1)
}

func BenchmarkSeekSolverTableLookup(b *testing.B) {
	// Ablation partner for BenchmarkSeekSolverClosedForm: per-query cost
	// of the interpolated table.
	s := paperSled()
	tbl := NewSeekTable(s, 257)
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = (rng.Float64()*2 - 1) * s.HalfRange
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tbl.SeekTime(xs[i%1024], xs[(i+7)%1024])
	}
}

func BenchmarkSeekTableBuild257(b *testing.B) {
	s := paperSled()
	for i := 0; i < b.N; i++ {
		_ = NewSeekTable(s, 257)
	}
}
