package experiments

import (
	"math/rand"

	"memsim/internal/core"
)

func init() { register("fig10", fig10Plan) }

// Fig10 reproduces Fig. 10: service time of a 256 KB read as a function
// of the X (cylinder) distance between the sled's starting position and
// the request. Because transfer dominates, even a 1000-cylinder seek
// should add only ≈10–12% (§5.2).
func Fig10(p Params) []Table { return mustRun(fig10Plan(p)) }

// One rng spans every distance row, so the whole figure is a single job.
func fig10Plan(p Params) *Plan {
	return tablesJob("fig10", p.Seed, func() []Table {
		d := newMEMS(1)
		g := d.Geometry()
		blocks := 256 * 1024 / g.SectorSize
		rng := rand.New(rand.NewSource(p.Seed))
		trials := p.Trials / 4
		if trials < 50 {
			trials = 50
		}

		t := Table{
			ID:      "fig10",
			Title:   "256 KB read service time vs. X seek distance (ms)",
			Columns: []string{"distance(cyl)", "service(ms)", "vs. 0-distance"},
		}
		base := 0.0
		for _, dist := range []int{0, 100, 200, 400, 600, 800, 1000, 1400, 1800, 2200, 2499} {
			sum := 0.0
			for i := 0; i < trials; i++ {
				start := rng.Intn(g.Cylinders - dist)
				target := start + dist
				d.SetState(start, float64(rng.Intn(g.BitsY)), 0)
				lbn := g.LBN(target, 0, 0, 0)
				if lbn+int64(blocks) > g.TotalSectors {
					lbn = g.TotalSectors - int64(blocks)
				}
				sum += d.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: blocks}, 0)
			}
			mean := sum / float64(trials)
			if dist == 0 {
				base = mean
			}
			t.AddRow(f2(float64(dist)), ms(mean), f2(mean/base*100-100)+"%")
		}
		return []Table{t}
	})
}
