// Package experiments regenerates every table and figure in the paper's
// evaluation, one builder per artifact, plus the two quantified
// extensions (fault tolerance and power) described in DESIGN.md §2.
//
// Each experiment declares a Plan: a set of independent runner.Jobs (one
// per simulation run) and an Assemble step that reads the finished jobs
// in declaration order and renders Tables — named, captioned, printable
// grids whose rows/series correspond to what the paper reports. Because
// assembly order is fixed by the declaration, executing a plan's jobs on
// a parallel worker pool produces output byte-identical to a sequential
// run. Absolute numbers come from this repository's re-derived device
// models; EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"memsim/internal/runner"
)

// Params sizes the simulations. Default is used by cmd/memsbench; Quick
// shrinks runs for tests and benchmarks.
type Params struct {
	// Requests per open-arrival simulation run.
	Requests int
	// Warmup completions excluded from statistics.
	Warmup int
	// ClosedRequests per closed-loop (service-time) run.
	ClosedRequests int
	// Trials for Monte-Carlo experiments.
	Trials int
	// Seed for all generators.
	Seed int64
	// FaultRate, when positive, is an extra per-attempt transient-error
	// probability added to the faultinject sweep (cmd/memsbench
	// -fault-rate). Zero leaves the standard sweep untouched.
	FaultRate float64
	// FaultSeed seeds the fault injectors' private random streams; zero
	// derives one from Seed, so injection stays deterministic either way.
	FaultSeed int64
	// FailDev selects which volume member slot the rebuild experiment
	// kills (cmd/memsbench -fail-dev); it is reduced modulo the member
	// count, so any non-negative value is safe.
	FailDev int
	// RebuildFrac, when positive, adds an extra rebuild-throttle fraction
	// to the rebuild experiment's sweep (cmd/memsbench -rebuild).
	RebuildFrac float64
	// RebuildPolicy selects the rebuild experiment's pacing policies
	// (cmd/memsbench -rebuild-policy): "" runs the fixed-throttle sweep
	// plus the adaptive row, "fixed" the sweep alone, "adaptive" only the
	// adaptive row.
	RebuildPolicy string
	// MTTFHours is the per-device exponential MTTF for the mttdl
	// experiment's lifetime draws (cmd/memsbench -mttf-hours); zero
	// selects the default (see xmttdl.go). The value is deliberately
	// compressed versus real hardware so trial lifetimes stay tractable;
	// MTTDL scales as MTTF², so ratios between device types are
	// unaffected.
	MTTFHours float64
	// Sched, when non-empty, appends one more scheduling policy to the
	// schedcost experiment's single-device comparison (cmd/memsbench
	// -sched); any name sched.New accepts is valid. Empty keeps the
	// standard SPTF-vs-SettleAware pair.
	Sched string
	// MemberSched names the scheduling policy for the rebuild
	// experiment's volume member queues (cmd/memsbench -member-sched);
	// empty keeps SPTF, the historical default.
	MemberSched string
	// ThinkMs, when positive, gives the closed-loop layout experiment's
	// terminals exponential think time with this mean in milliseconds
	// (cmd/memsbench -think-ms), turning the back-to-back §5.3 regime
	// into a multiprogrammed one. Zero (the default) keeps the paper's
	// back-to-back behavior.
	ThinkMs float64
	// Checkpoint, when non-empty, is the path of an atomic progress
	// checkpoint (cmd/memsbench -checkpoint) for resumable experiments —
	// today the Monte-Carlo mttdl trials. An interrupted run saves its
	// partial trial state there; rerunning with the same flags resumes
	// from it and, because trial randomness comes from per-trial seed
	// sub-streams, produces output byte-identical to an uninterrupted
	// run. The whole Params set is bound into the checkpoint, so
	// resuming under different flags is an error, not a wrong answer.
	Checkpoint string
}

// faultSeed resolves the injector base seed per the FaultSeed contract.
func (p Params) faultSeed() int64 {
	if p.FaultSeed != 0 {
		return p.FaultSeed
	}
	return runner.DeriveSeed(p.Seed, "faultinject")
}

// Default returns full-size parameters (minutes of CPU for the whole
// suite).
func Default() Params {
	return Params{Requests: 20000, Warmup: 2000, ClosedRequests: 10000, Trials: 2000, Seed: 1}
}

// Quick returns reduced parameters for tests and benchmarks (seconds).
func Quick() Params {
	return Params{Requests: 3000, Warmup: 300, ClosedRequests: 1500, Trials: 200, Seed: 1}
}

// WithRequests rescales the parameter set to n open-arrival requests per
// run, scaling Warmup, ClosedRequests and Trials by the same factor so
// every regime shrinks or grows consistently. Non-positive n (or a
// receiver with no Requests to scale from) returns p unchanged.
func (p Params) WithRequests(n int) Params {
	if n <= 0 || p.Requests <= 0 {
		return p
	}
	scale := float64(n) / float64(p.Requests)
	resize := func(v int) int {
		if v <= 0 {
			return v
		}
		s := int(float64(v)*scale + 0.5)
		if s < 1 {
			s = 1
		}
		return s
	}
	p.Warmup = resize(p.Warmup)
	p.ClosedRequests = resize(p.ClosedRequests)
	p.Trials = resize(p.Trials)
	p.Requests = n
	return p
}

// Table is one printable result grid.
type Table struct {
	// ID is the artifact identifier ("fig6a", "table2", ...).
	ID string
	// Title is the caption.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are formatted value cells.
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns. Rows may carry more
// cells than the header; extra columns get their own widths.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "── %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			for len(widths) <= i {
				widths = append(widths, 0)
			}
			if len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Plan is one experiment's declarative form: independent jobs plus the
// assembly step that renders their results. Assemble must only be called
// after every job has executed; it reads job slots in declaration order,
// which is what makes parallel execution reproduce sequential output.
type Plan struct {
	// Jobs are the experiment's isolated simulation runs.
	Jobs []*runner.Job
	// Assemble renders the finished jobs into tables.
	Assemble func() []Table
}

// Builder declares the plan for one experiment at the given sizes.
type Builder func(Params) *Plan

// registry maps experiment IDs to builders, populated by each artifact
// file's init.
var registry = map[string]Builder{}

func register(id string, b Builder) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate registration of " + id)
	}
	registry[id] = b
}

// IDs returns the registered experiment identifiers in a stable order.
func IDs() []string {
	var ids []string
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// PlanFor builds the declarative plan for one experiment without
// executing it, so callers can batch several experiments' jobs onto one
// pool.
func PlanFor(id string, p Params) (*Plan, error) {
	b, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return b(p), nil
}

// Run executes the experiment with the given ID sequentially.
func Run(id string, p Params) ([]Table, error) {
	return RunWith(runner.Sequential(), id, p)
}

// RunWith executes one experiment's jobs on the given runner context.
func RunWith(ctx *runner.Context, id string, p Params) ([]Table, error) {
	pl, err := PlanFor(id, p)
	if err != nil {
		return nil, err
	}
	if _, err := ctx.Run(pl.Jobs); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	return pl.Assemble(), nil
}

// Outcome is one experiment's result within a batch: its tables when
// every one of its jobs succeeded, or the error that prevented
// assembly. An interrupted batch yields a mix — experiments whose jobs
// all finished carry Tables and are safe to publish, the rest carry
// Err — which is what lets a cancelled CLI still flush the artifacts
// that completed.
type Outcome struct {
	// ID is the experiment identifier the outcome belongs to.
	ID string
	// Tables holds the assembled artifact when Err is nil.
	Tables []Table
	// Err joins the experiment's job failures (cancellation included)
	// in declaration order; the Tables must not be read when non-nil.
	Err error
}

// RunEach executes several experiments as one job batch like RunMany but
// reports per-experiment Outcomes instead of failing the whole batch on
// the first error: each experiment assembles if and only if all of its
// own jobs succeeded. The error return covers batch construction only
// (an unknown ID); execution failures live in the Outcomes.
func RunEach(ctx *runner.Context, ids []string, p Params) ([]Outcome, runner.Summary, error) {
	plans := make([]*Plan, len(ids))
	var jobs []*runner.Job
	for i, id := range ids {
		pl, err := PlanFor(id, p)
		if err != nil {
			return nil, runner.Summary{}, err
		}
		plans[i] = pl
		jobs = append(jobs, pl.Jobs...)
	}
	sum, _ := ctx.Run(jobs) // failures re-attributed per experiment below
	outs := make([]Outcome, len(ids))
	for i, pl := range plans {
		outs[i] = Outcome{ID: ids[i]}
		var errs []error
		for _, j := range pl.Jobs {
			if err := j.Err(); err != nil {
				errs = append(errs, err)
			}
		}
		if err := errors.Join(errs...); err != nil {
			outs[i].Err = fmt.Errorf("experiments: %s: %w", ids[i], err)
			continue
		}
		outs[i].Tables = pl.Assemble()
	}
	return outs, sum, nil
}

// RunMany executes several experiments as one job batch — the pool sees
// every job at once, so wide and narrow experiments interleave instead of
// serializing per artifact. Results come back per requested ID, in order;
// any experiment's failure fails the whole call.
func RunMany(ctx *runner.Context, ids []string, p Params) ([][]Table, runner.Summary, error) {
	outs, sum, err := RunEach(ctx, ids, p)
	if err != nil {
		return nil, sum, err
	}
	out := make([][]Table, len(outs))
	var errs []error
	for i, o := range outs {
		if o.Err != nil {
			errs = append(errs, o.Err)
			continue
		}
		out[i] = o.Tables
	}
	if err := errors.Join(errs...); err != nil {
		return nil, sum, err
	}
	return out, sum, nil
}

// RunAll executes every experiment in ID order. The IDs come from the
// registry itself, so a failure here means a registered builder produced
// a plan that cannot run — an inconsistency in this package, not a user
// error — and RunAll makes it loud instead of silently dropping tables.
func RunAll(p Params) []Table {
	tss, _, err := RunMany(runner.Sequential(), IDs(), p)
	if err != nil {
		panic(fmt.Sprintf("experiments: registry inconsistency: %v", err))
	}
	var out []Table
	for _, ts := range tss {
		out = append(out, ts...)
	}
	return out
}

// mustRun executes a plan sequentially and assembles it — the spine of
// the exported per-artifact functions (Fig5, Table1, ...), whose plans
// are built from known-good registered builders.
func mustRun(pl *Plan) []Table {
	if _, err := runner.Sequential().Run(pl.Jobs); err != nil {
		panic(err)
	}
	return pl.Assemble()
}

// mergePlans concatenates several plans into one: jobs in order, tables
// in order.
func mergePlans(plans ...*Plan) *Plan {
	out := &Plan{}
	for _, pl := range plans {
		out.Jobs = append(out.Jobs, pl.Jobs...)
	}
	out.Assemble = func() []Table {
		var ts []Table
		for _, pl := range plans {
			ts = append(ts, pl.Assemble()...)
		}
		return ts
	}
	return out
}

// tablesJob wraps a monolithic table computation — measurement loops
// that share state across rows, or pure arithmetic — in a single-job
// plan.
func tablesJob(label string, seed int64, body func() []Table) *Plan {
	j := &runner.Job{Label: label, Seed: seed, Custom: func(*runner.Job) any { return body() }}
	return &Plan{
		Jobs:     []*runner.Job{j},
		Assemble: func() []Table { return j.Value().([]Table) },
	}
}

// ms formats a millisecond value for table cells.
func ms(v float64) string { return fmt.Sprintf("%.3f", v) }

// f2 formats a dimensionless value.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
