package sim

import (
	"testing"

	"memsim/internal/core"
	"memsim/internal/sched"
	"memsim/internal/workload"
)

func TestContextProgressNilReceiver(t *testing.T) {
	// The progress hook is documented safe on a nil receiver; every entry
	// point calls it unconditionally.
	var c *Context
	c.progress(1, 0) // must not panic
	c = &Context{}   // nil OnProgress is equally inert
	c.progress(1, 0)
}

func TestContextProgressNegativeInterval(t *testing.T) {
	// Zero or negative ProgressEvery falls back to every 1000 completions.
	d := &fixedDevice{svc: 0.001}
	fired := 0
	ctx := &Context{ProgressEvery: -5, OnProgress: func(int, float64) { fired++ }}
	src := workload.NewFromSlice(mkReqs(make([]float64, 1500)))
	RunClosed(ctx, d, src, Options{})
	if fired != 1 {
		t.Errorf("negative interval fired %d times, want 1 (at 1000)", fired)
	}
}

func TestContextProgressExactBoundary(t *testing.T) {
	// A run whose completion count is an exact multiple of the interval
	// fires on the final completion too.
	d := &fixedDevice{svc: 1}
	var at []int
	ctx := &Context{ProgressEvery: 5, OnProgress: func(n int, _ float64) { at = append(at, n) }}
	src := workload.NewFromSlice(mkReqs(make([]float64, 10)))
	Run(ctx, d, sched.NewFCFS(), src, Options{})
	if len(at) != 2 || at[0] != 5 || at[1] != 10 {
		t.Errorf("progress fired at %v, want [5 10]", at)
	}
}

func TestContextProgressReportsSimTime(t *testing.T) {
	// The second callback argument is simulated time, not wall time.
	d := &fixedDevice{svc: 2}
	var times []float64
	ctx := &Context{ProgressEvery: 1, OnProgress: func(_ int, ms float64) { times = append(times, ms) }}
	src := workload.NewFromSlice(mkReqs([]float64{0, 0, 0}))
	Run(ctx, d, sched.NewFCFS(), src, Options{})
	want := []float64{2, 4, 6}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("progress time %d = %g, want %g", i, times[i], want[i])
		}
	}
}

func TestRunMultiProgress(t *testing.T) {
	// RunMulti reports completions through the same hook as the
	// single-device loops.
	devs, scheds := multiFixtures(2, 1)
	var at []int
	ctx := &Context{ProgressEvery: 4, OnProgress: func(n int, _ float64) { at = append(at, n) }}
	src := workload.NewFromSlice(mkReqs(make([]float64, 10)))
	if _, err := RunMulti(ctx, devs, scheds, ConcatRouter(1<<29), src, Options{}); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 || at[0] != 4 || at[1] != 8 {
		t.Errorf("progress fired at %v, want [4 8]", at)
	}
}

func TestRunMultiIdlePeriods(t *testing.T) {
	// Arrivals separated by idle gaps: the event loop must ride through
	// empty queues, and elapsed time tracks the last completion.
	devs, scheds := multiFixtures(1, 2)
	src := workload.NewFromSlice(mkReqs([]float64{0, 100, 200}))
	res, err := RunMulti(nil, devs, scheds, ConcatRouter(1<<29), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.Elapsed != 202 {
		t.Errorf("elapsed = %g, want 202", res.Elapsed)
	}
	if res.Response.Mean() != 2 {
		t.Errorf("response mean = %g, want 2 (no contention)", res.Response.Mean())
	}
}

func TestRunMultiOnComplete(t *testing.T) {
	// The OnComplete observer fires for every completion, warmup included.
	devs, scheds := multiFixtures(2, 1)
	src := workload.NewFromSlice(mkReqs(make([]float64, 12)))
	seen := 0
	if _, err := RunMulti(nil, devs, scheds, ConcatRouter(1<<29), src,
		Options{Warmup: 5, OnComplete: func(*core.Request) { seen++ }}); err != nil {
		t.Fatal(err)
	}
	if seen != 12 {
		t.Errorf("OnComplete fired %d times, want 12", seen)
	}
}
