package core_test

import (
	"math"
	"math/rand"
	"testing"

	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
	"memsim/internal/power"
)

// shiftLayout offsets every block by a constant, wrapping at capacity in
// extent-sized steps so contiguity is preserved for the extents tested.
type shiftLayout struct{ off, cap int64 }

func (s shiftLayout) Name() string { return "shift" }
func (s shiftLayout) Map(lbn int64) int64 {
	v := lbn + s.off
	if v >= s.cap {
		v -= s.cap
	}
	return v
}

func testDevices(t *testing.T) map[string]core.Device {
	t.Helper()
	md, err := mems.NewDevice(mems.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dd, err := disk.NewDevice(disk.Atlas10K())
	if err != nil {
		t.Fatal(err)
	}
	md2, err := mems.NewDevice(mems.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dd2, err := disk.NewDevice(disk.Atlas10K())
	if err != nil {
		t.Fatal(err)
	}
	md3, err := mems.NewDevice(mems.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]core.Device{
		"mems": md,
		"disk": dd,
		// Layout wrapper: estimation must remap exactly like Access.
		"managed-mems": core.NewManagedDevice(md2, shiftLayout{off: 4096, cap: md2.Capacity()}),
		// Power wrapper with a short timeout so idle gaps trigger the
		// restart-penalty branch of the estimate.
		"power-disk": power.NewManaged(dd2, power.MobileDiskModel(), power.Policy{TimeoutMs: 5}),
		// Both wrappers stacked.
		"power-managed-mems": power.NewManaged(
			core.NewManagedDevice(md3, shiftLayout{off: 512, cap: md3.Capacity()}),
			power.MEMSModel(), power.Immediate()),
	}
}

// TestEstimateBreakdownReconciles is the acceptance property: the
// estimated breakdown's ServiceMs equals EstimateAccess to ≤1e-9 (and
// its phases sum to that total), for raw devices and through the
// managed/power wrappers, across random request streams that advance
// device state between estimates.
func TestEstimateBreakdownReconciles(t *testing.T) {
	for name, d := range testDevices(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			capBlocks := d.Capacity()
			now := 0.0
			for i := 0; i < 500; i++ {
				blocks := 1 + rng.Intn(64)
				req := &core.Request{
					Arrival: now,
					Op:      core.Op(rng.Intn(2)),
					LBN:     rng.Int63n(capBlocks - int64(blocks)),
					Blocks:  blocks,
				}
				est := d.EstimateAccess(req, now)
				bd, ok := core.TryEstimateBreakdown(d, req, now)
				if !ok {
					t.Fatalf("%s does not implement BreakdownEstimator", d.Name())
				}
				if diff := math.Abs(bd.ServiceMs - est); diff > 1e-9 {
					t.Fatalf("req %d: EstimateBreakdown.ServiceMs=%.12g EstimateAccess=%.12g (diff %g)",
						i, bd.ServiceMs, est, diff)
				}
				if diff := math.Abs(bd.Unattributed()); diff > 1e-9 {
					t.Fatalf("req %d: unattributed estimate residue %g", i, diff)
				}
				// The estimate must match the access it predicts...
				svc := d.Access(req, now)
				if diff := math.Abs(svc - est); diff > 1e-9 {
					t.Fatalf("req %d: Access=%.12g but estimate was %.12g", i, svc, est)
				}
				// ...and advance time, sometimes with an idle gap to trip
				// the power wrapper's standby path.
				now += svc
				if rng.Intn(4) == 0 {
					now += 10 * rng.Float64()
				}
			}
		})
	}
}

// TestEstimateBreakdownFallback checks the scalar fallback for devices
// that cannot decompose their estimate.
func TestEstimateBreakdownFallback(t *testing.T) {
	d := opaqueDevice{}
	req := &core.Request{Blocks: 1}
	if _, ok := core.TryEstimateBreakdown(d, req, 0); ok {
		t.Fatal("opaque device unexpectedly decomposes")
	}
	bd := core.EstimateBreakdown(d, req, 0)
	if bd.ServiceMs != 7.5 || bd.PhaseSum() != 0 {
		t.Fatalf("fallback breakdown = %+v, want bare ServiceMs 7.5", bd)
	}
}

// TestSettleAwareCost checks the settle discount against the estimated
// breakdown, and the AccessCost fallback for opaque devices.
func TestSettleAwareCost(t *testing.T) {
	d, err := mems.NewDevice(mems.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	req := &core.Request{LBN: d.Capacity() / 3, Blocks: 8}
	bd := core.EstimateBreakdown(d, req, 0)
	if bd.Settle <= 0 {
		t.Fatalf("expected a settle component, got %+v", bd)
	}
	got := core.SettleAwareCost(d, req, 0)
	want := bd.ServiceMs - bd.Settle
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SettleAwareCost=%g want %g", got, want)
	}
	if full := core.AccessCost(d, req, 0); got >= full {
		t.Fatalf("settle-aware cost %g not below full cost %g", got, full)
	}
	if got := core.SettleAwareCost(opaqueDevice{}, req, 0); got != 7.5 {
		t.Fatalf("opaque fallback = %g, want 7.5", got)
	}
}

func TestClassString(t *testing.T) {
	cases := map[core.Class]string{
		core.ClassForeground:   "foreground",
		core.ClassDegradedRead: "degraded-read",
		core.ClassRebuild:      "rebuild",
		core.Class(9):          "Class(9)",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}

// opaqueDevice implements core.Device without BreakdownEstimator.
type opaqueDevice struct{}

func (opaqueDevice) Name() string                                  { return "opaque" }
func (opaqueDevice) Capacity() int64                               { return 1 << 20 }
func (opaqueDevice) SectorSize() int                               { return 512 }
func (opaqueDevice) Access(*core.Request, float64) float64         { return 7.5 }
func (opaqueDevice) EstimateAccess(*core.Request, float64) float64 { return 7.5 }
func (opaqueDevice) Reset()                                        {}
