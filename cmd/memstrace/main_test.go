package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNewDeviceValidation(t *testing.T) {
	for _, name := range []string{"mems", "disk"} {
		if _, err := newDevice(name); err != nil {
			t.Errorf("newDevice(%q) = %v", name, err)
		}
	}
	if _, err := newDevice("floppy"); err == nil || !strings.Contains(err.Error(), "floppy") {
		t.Errorf("newDevice(floppy) = %v, want error naming the device", err)
	}
}

func TestOpenOutValidation(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := openOut(dir); err == nil || !strings.Contains(err.Error(), "is a directory") {
		t.Errorf("openOut(%q) = %v, want directory error", dir, err)
	}
	if _, _, err := openOut(filepath.Join(dir, "missing", "out.jsonl")); err == nil {
		t.Error("openOut succeeded on a missing parent directory")
	}
	w, closeOut, err := openOut("")
	if err != nil || w != os.Stdout {
		t.Errorf("openOut(\"\") = %v, %v; want stdout", w, err)
	}
	if err := closeOut(); err != nil {
		t.Errorf("stdout closer = %v", err)
	}
}

func TestReplayValidation(t *testing.T) {
	// Errors must surface before any simulation work: bad scheduler, bad
	// device, unreadable trace, oversized trace.
	tr := filepath.Join(t.TempDir(), "t.txt")
	if err := os.WriteFile(tr, []byte("0.0 r 10 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := replay(tr, "mems", "ELEVATOR", 1, 0, ""); err == nil || !strings.Contains(err.Error(), "ELEVATOR") {
		t.Errorf("bad scheduler: %v", err)
	}
	if err := replay(tr, "zip", "FCFS", 1, 0, ""); err == nil {
		t.Error("bad device accepted")
	}
	if err := replay(filepath.Join(t.TempDir(), "missing.txt"), "mems", "FCFS", 1, 0, ""); err == nil {
		t.Error("missing trace accepted")
	}
	// An LBN beyond the device's capacity fails validation cleanly.
	big := filepath.Join(t.TempDir(), "big.txt")
	if err := os.WriteFile(big, []byte("0.0 r 99999999999 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := replay(big, "mems", "FCFS", 1, 0, ""); err == nil || !strings.Contains(err.Error(), "does not fit") {
		t.Errorf("oversized trace: %v", err)
	}
}

func TestReplaySmoke(t *testing.T) {
	// A well-formed two-record trace replays end to end into a JSONL file.
	dir := t.TempDir()
	tr := filepath.Join(dir, "t.txt")
	if err := os.WriteFile(tr, []byte("0.0 r 10 8\n5.0 w 5000 8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.jsonl")
	if err := replay(tr, "mems", "SPTF", 1, 0, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 8 { // 2 requests × (arrive, dispatch, service, complete)
		t.Errorf("JSONL lines = %d, want 8\n%s", lines, data)
	}
}

func TestReplayRejectsMalformedTraces(t *testing.T) {
	// Replay input is untrusted: truncated rows, unparseable fields and
	// non-finite times must come back as one-line errors from the parse
	// or validation layer, never reach the simulator.
	cases := []struct {
		name, content, want string
	}{
		{"truncated row", "1.0 r 10\n", "want 4 fields"},
		{"bad op", "1.0 x 10 4\n", "bad op"},
		{"bad time", "abc r 10 4\n", "bad time"},
		{"nan time", "NaN r 10 4\n", "non-finite time"},
		{"inf time", "+Inf r 10 4\n", "non-finite time"},
		{"overflow time", "1e309 r 10 4\n", "bad time"},
		{"time regression", "5.0 r 10 4\n1.0 r 20 4\n", "precedes"},
		{"zero blocks", "1.0 r 10 0\n", "blocks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.txt")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			err := replay(path, "mems", "FCFS", 1, 0, "")
			if err == nil {
				t.Fatal("malformed trace replayed without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
