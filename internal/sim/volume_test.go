package sim

import (
	"math"
	"reflect"
	"testing"

	"memsim/internal/array"
	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/workload"
)

// volFixtures builds a volume over fixed-service devices with FCFS
// queues (constant svc isolates the failover logic from mechanics).
func volFixtures(t *testing.T, cfg array.VolumeConfig, svc float64) VolumeSpec {
	t.Helper()
	v, err := array.NewVolume(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Devices()
	devs := make([]core.Device, n)
	scheds := make([]core.Scheduler, n)
	for i := range devs {
		devs[i] = &fixedDevice{svc: svc}
		scheds[i] = sched.NewFCFS()
	}
	return VolumeSpec{Volume: v, Devices: devs, Scheds: scheds}
}

func mirrorVolCfg() array.VolumeConfig {
	return array.VolumeConfig{Level: array.VolMirror, Members: 2, Spares: 1, StripeUnit: 8, PerMember: 64}
}

func parityVolCfg() array.VolumeConfig {
	return array.VolumeConfig{Level: array.VolParity, Members: 3, Spares: 1, StripeUnit: 8, PerMember: 64}
}

// volReqs builds Blocks=1 requests with the given arrivals, ops and
// volume LBNs.
func volReqs(arrivals []float64, op core.Op, lbns []int64) []*core.Request {
	out := make([]*core.Request, len(arrivals))
	for i, a := range arrivals {
		out[i] = &core.Request{Arrival: a, Op: op, LBN: lbns[i%len(lbns)], Blocks: 1}
	}
	return out
}

func devEvents(t *testing.T, evs ...fault.DeviceEvent) *fault.Injector {
	t.Helper()
	inj, err := fault.NewInjector(fault.InjectorConfig{DeviceEvents: evs})
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestRunVolumeErrors(t *testing.T) {
	spec := volFixtures(t, mirrorVolCfg(), 1)
	src := func() workload.Source { return workload.NewFromSlice(volReqs([]float64{0}, core.Read, []int64{0})) }
	cases := []struct {
		name string
		run  func() (Result, error)
	}{
		{"nil volume", func() (Result, error) {
			return RunVolume(nil, VolumeSpec{}, src(), Options{})
		}},
		{"device count", func() (Result, error) {
			s := spec
			s.Devices = s.Devices[:1]
			return RunVolume(nil, s, src(), Options{})
		}},
		{"nil source", func() (Result, error) {
			return RunVolume(nil, spec, nil, Options{})
		}},
		{"bad fraction", func() (Result, error) {
			s := spec
			s.RebuildFrac = 1.5
			return RunVolume(nil, s, src(), Options{})
		}},
		{"negative chunk", func() (Result, error) {
			s := spec
			s.RebuildChunk = -1
			return RunVolume(nil, s, src(), Options{})
		}},
		{"member too small", func() (Result, error) {
			cfg := mirrorVolCfg()
			cfg.PerMember = 1 << 40
			cfg.StripeUnit = 1 << 40
			v, err := array.NewVolume(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := spec
			s.Volume = v
			return RunVolume(nil, s, src(), Options{})
		}},
		{"failure slot out of range", func() (Result, error) {
			return RunVolume(nil, spec, src(),
				Options{Injector: devEvents(t, fault.DeviceEvent{AtMs: 1, Dev: 7})})
		}},
	}
	for _, tc := range cases {
		if _, err := tc.run(); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

func TestRunVolumeHealthyShapes(t *testing.T) {
	// No contention, fixed 1 ms service: plan shapes are readable
	// directly in the response times.
	cases := []struct {
		name string
		cfg  array.VolumeConfig
		op   core.Op
		want float64
	}{
		// Mirror read: one replica visit.
		{"mirror read", mirrorVolCfg(), core.Read, 1},
		// Mirror write: both replicas in parallel.
		{"mirror write", mirrorVolCfg(), core.Write, 1},
		// Parity read: one data visit.
		{"parity read", parityVolCfg(), core.Read, 1},
		// Parity small write: 2-phase RMW (read data+parity, then write).
		{"parity write", parityVolCfg(), core.Write, 2},
	}
	for _, tc := range cases {
		spec := volFixtures(t, tc.cfg, 1)
		src := workload.NewFromSlice(volReqs([]float64{0, 10, 20}, tc.op, []int64{0, 16, 32}))
		res, err := RunVolume(nil, spec, src, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Requests != 3 {
			t.Fatalf("%s: requests = %d", tc.name, res.Requests)
		}
		if res.Response.Mean() != tc.want {
			t.Errorf("%s: response = %g ms, want %g", tc.name, res.Response.Mean(), tc.want)
		}
		if res.Volume == nil || res.Volume.DeviceFailures != 0 || res.Volume.DegradedMs != 0 {
			t.Errorf("%s: unexpected failover activity: %+v", tc.name, res.Volume)
		}
		if res.Volume.Healthy.N() != 3 || res.Volume.Degraded.N() != 0 {
			t.Errorf("%s: healthy/degraded split = %d/%d", tc.name,
				res.Volume.Healthy.N(), res.Volume.Degraded.N())
		}
	}
}

func TestRunVolumeDeterministic(t *testing.T) {
	// Identical inputs — including a mid-run failure and rebuild — give
	// identical results at full float precision.
	run := func() Result {
		cfg := parityVolCfg()
		cfg.PerMember = 6750000 / 100
		cfg.StripeUnit = 2700
		v, err := array.NewVolume(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := cfg.Devices()
		devs := make([]core.Device, n)
		scheds := make([]core.Scheduler, n)
		for i := range devs {
			devs[i] = mems.MustDevice(mems.DefaultConfig())
			scheds[i] = sched.NewSPTF()
		}
		src := workload.NewRandom(workload.RandomConfig{
			Rate: 500, ReadFraction: 0.67, MeanBytes: 4096, MaxBytes: 4096,
			SectorSize: devs[0].SectorSize(), Capacity: cfg.Capacity(), Count: 400, Seed: 7,
		})
		res, err := RunVolume(nil,
			VolumeSpec{Volume: v, Devices: devs, Scheds: scheds, RebuildChunk: 2700, RebuildFrac: 0.5},
			src, Options{Warmup: 50, Injector: devEvents(t, fault.DeviceEvent{AtMs: 200, Dev: 1})})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("volume runs diverged:\n  %+v\n  %+v", a, b)
	}
	if a.Volume.RebuildsDone != 1 {
		t.Fatalf("rebuild did not complete: %+v", a.Volume)
	}
}

func TestRunVolumeStripeMatchesRunMulti(t *testing.T) {
	// A no-redundancy stripe volume is the same queueing system as
	// RunMulti with a StripeRouter: single-strip requests must produce
	// identical statistics.
	const unit, n = 8, 3
	mk := func() ([]core.Device, []core.Scheduler) {
		devs := make([]core.Device, n)
		scheds := make([]core.Scheduler, n)
		for i := range devs {
			devs[i] = mems.MustDevice(mems.DefaultConfig())
			scheds[i] = sched.NewFCFS()
		}
		return devs, scheds
	}
	reqs := func() []*core.Request {
		var out []*core.Request
		for i := 0; i < 300; i++ {
			op := core.Read
			if i%3 == 0 {
				op = core.Write
			}
			out = append(out, &core.Request{
				Arrival: float64(i) * 2,
				Op:      op,
				LBN:     int64(i*37) % (unit * n * 100),
				Blocks:  1,
			})
		}
		return out
	}

	devs, scheds := mk()
	multi, err := RunMulti(nil, devs, scheds, StripeRouter(unit, n),
		workload.NewFromSlice(reqs()), Options{Warmup: 30})
	if err != nil {
		t.Fatal(err)
	}

	cfg := array.VolumeConfig{Level: array.VolStripe, Members: n, StripeUnit: unit,
		PerMember: unit * 100}
	v, err := array.NewVolume(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vdevs, vscheds := mk()
	vol, err := RunVolume(nil, VolumeSpec{Volume: v, Devices: vdevs, Scheds: vscheds},
		workload.NewFromSlice(reqs()), Options{Warmup: 30})
	if err != nil {
		t.Fatal(err)
	}

	if vol.Requests != multi.Requests {
		t.Fatalf("request counts differ: %d vs %d", vol.Requests, multi.Requests)
	}
	if math.Abs(vol.Response.Mean()-multi.Response.Mean()) > 1e-9 {
		t.Errorf("response mean %.9f vs %.9f", vol.Response.Mean(), multi.Response.Mean())
	}
	if math.Abs(vol.Busy-multi.Busy) > 1e-9 {
		t.Errorf("busy %.9f vs %.9f", vol.Busy, multi.Busy)
	}
	for i := range vol.Members {
		if vol.Members[i].Requests != multi.Members[i].Requests {
			t.Errorf("member %d requests %d vs %d", i,
				vol.Members[i].Requests, multi.Members[i].Requests)
		}
	}
}

func TestRunVolumeMirrorFailover(t *testing.T) {
	spec := volFixtures(t, mirrorVolCfg(), 1)
	spec.RebuildChunk = 16
	rp := &recordingProbe{}
	arr := make([]float64, 60)
	lbns := make([]int64, 60)
	for i := range arr {
		arr[i] = float64(i)
		lbns[i] = int64(i) % 64
	}
	src := workload.NewFromSlice(volReqs(arr, core.Read, lbns))
	res, err := RunVolume(nil, spec, src,
		Options{Probe: rp, Injector: devEvents(t, fault.DeviceEvent{AtMs: 10, Dev: 0})})
	if err != nil {
		t.Fatal(err)
	}
	vs := res.Volume
	if vs.DeviceFailures != 1 || vs.RebuildsStarted != 1 || vs.RebuildsDone != 1 {
		t.Fatalf("failover counters: %+v", vs)
	}
	if vs.RebuildChunks != 4 { // 64 sectors / 16-sector chunks
		t.Errorf("rebuild chunks = %d, want 4", vs.RebuildChunks)
	}
	if res.Requests != 60 || res.FailedRequests != 0 {
		t.Errorf("requests = %d, failed = %d; a mirror failover must lose nothing",
			res.Requests, res.FailedRequests)
	}
	if res.DataLoss {
		t.Error("single mirror failure reported data loss")
	}
	if vs.RebuildMs <= 0 || vs.DegradedMs < vs.RebuildMs {
		t.Errorf("MTTR %.3f ms, degraded window %.3f ms", vs.RebuildMs, vs.DegradedMs)
	}
	if vs.Degraded.N() == 0 || vs.Healthy.N() == 0 {
		t.Errorf("healthy/degraded split = %d/%d", vs.Healthy.N(), vs.Degraded.N())
	}
	if vs.RebuildBusy <= 0 {
		t.Error("rebuild consumed no device time")
	}
	// Mirror survivor reads are full-speed, not reconstruction.
	if vs.DegradedReads != 0 {
		t.Errorf("mirror degraded reads = %d, want 0", vs.DegradedReads)
	}
	// Spare (device 2) did rebuild writes.
	if res.Members[2].Requests == 0 {
		t.Error("spare device served no rebuild traffic")
	}

	// Probe lifecycle: fail → rebuild-start → rebuild-done, in order.
	if rp.count(EventDeviceFail) != 1 || rp.count(EventRebuildStart) != 1 || rp.count(EventRebuildDone) != 1 {
		t.Fatalf("lifecycle events: fail=%d start=%d done=%d",
			rp.count(EventDeviceFail), rp.count(EventRebuildStart), rp.count(EventRebuildDone))
	}
	order := []EventKind{}
	for _, ev := range rp.events {
		switch ev.Kind {
		case EventDeviceFail, EventRebuildStart, EventRebuildDone:
			order = append(order, ev.Kind)
			if ev.Req != nil {
				t.Errorf("%v event carries a request", ev.Kind)
			}
			if ev.Dev != 0 {
				t.Errorf("%v event on slot %d, want 0", ev.Kind, ev.Dev)
			}
		}
	}
	want := []EventKind{EventDeviceFail, EventRebuildStart, EventRebuildDone}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("lifecycle order = %v, want %v", order, want)
	}
}

func TestRunVolumeParityDegradedService(t *testing.T) {
	spec := volFixtures(t, parityVolCfg(), 1)
	spec.RebuildChunk = 8
	arr := make([]float64, 80)
	lbns := make([]int64, 80)
	for i := range arr {
		arr[i] = float64(i) * 2
		lbns[i] = int64(i*7) % 128
	}
	src := workload.NewFromSlice(volReqs(arr, core.Read, lbns))
	res, err := RunVolume(nil, spec, src,
		Options{Injector: devEvents(t, fault.DeviceEvent{AtMs: 20, Dev: 1})})
	if err != nil {
		t.Fatal(err)
	}
	vs := res.Volume
	if vs.RebuildsDone != 1 || res.FailedRequests != 0 {
		t.Fatalf("parity failover: %+v failed=%d", vs, res.FailedRequests)
	}
	if vs.DegradedReads == 0 {
		t.Error("no reads paid peer reconstruction while degraded")
	}
	if res.DegradedReads != vs.DegradedReads {
		t.Errorf("Result.DegradedReads %d != Volume.DegradedReads %d",
			res.DegradedReads, vs.DegradedReads)
	}
}

func TestRunVolumeDoubleFailureSurfacesLoss(t *testing.T) {
	cfg := parityVolCfg()
	cfg.Spares = 0 // no cover: the second failure is fatal
	spec := volFixtures(t, cfg, 1)
	arr := make([]float64, 40)
	lbns := make([]int64, 40)
	for i := range arr {
		arr[i] = float64(i)
		lbns[i] = int64(i*5) % 128
	}
	src := workload.NewFromSlice(volReqs(arr, core.Read, lbns))
	res, err := RunVolume(nil, spec, src, Options{Injector: devEvents(t,
		fault.DeviceEvent{AtMs: 5, Dev: 0}, fault.DeviceEvent{AtMs: 12, Dev: 2})})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DataLoss {
		t.Fatal("double failure did not surface DataLoss")
	}
	if res.FailedRequests == 0 || res.Volume.LostRequests == 0 || res.LostReads == 0 {
		t.Errorf("lost service not reported: failed=%d lost=%d lostReads=%d",
			res.FailedRequests, res.Volume.LostRequests, res.LostReads)
	}
	// Every arrival completed one way or the other — no silent drops.
	if got := res.Requests + res.FailedRequests; got != 40 {
		t.Errorf("completions+failures = %d, want 40", got)
	}
	if res.Volume.RebuildsDone != 0 {
		t.Error("rebuild reported complete on a lost volume")
	}
	if res.Volume.DegradedMs <= 0 {
		t.Error("no degraded window recorded")
	}
}

func TestRunVolumeSecondFailureMidRebuild(t *testing.T) {
	// A second member failure while the rebuild is still in flight — the
	// vulnerability-window loss of the MTTDL model — must surface as
	// DataLoss with failed reads of the lost sectors and sane MTTR and
	// degraded accounting, never a panic or a phantom completed rebuild.
	cases := []struct {
		name      string
		cfg       array.VolumeConfig
		secondDev int
	}{
		{"mirror", mirrorVolCfg(), 1},
		{"parity", parityVolCfg(), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := volFixtures(t, tc.cfg, 1)
			spec.RebuildChunk = 8
			rp := &recordingProbe{}
			arr := make([]float64, 40)
			lbns := make([]int64, 40)
			for i := range arr {
				arr[i] = float64(i)
				lbns[i] = int64(i*5) % tc.cfg.Capacity()
			}
			src := workload.NewFromSlice(volReqs(arr, core.Read, lbns))
			// First failure at 5 ms starts the rebuild (8 chunks × ≥2 ms);
			// the second at 12 ms lands well inside it.
			res, err := RunVolume(nil, spec, src, Options{Probe: rp, Injector: devEvents(t,
				fault.DeviceEvent{AtMs: 5, Dev: 0},
				fault.DeviceEvent{AtMs: 12, Dev: tc.secondDev})})
			if err != nil {
				t.Fatal(err)
			}
			vs := res.Volume
			if !res.DataLoss {
				t.Fatal("second failure mid-rebuild did not surface DataLoss")
			}
			if vs.DeviceFailures != 2 {
				t.Errorf("device failures = %d, want 2", vs.DeviceFailures)
			}
			if vs.RebuildsStarted != 1 || vs.RebuildsDone != 0 {
				t.Errorf("rebuild started/done = %d/%d, want 1/0 (killed mid-flight)",
					vs.RebuildsStarted, vs.RebuildsDone)
			}
			if vs.RebuildMs != 0 {
				t.Errorf("MTTR %.3f ms credited for a rebuild that never finished", vs.RebuildMs)
			}
			if res.FailedRequests == 0 || vs.LostRequests == 0 || res.LostReads == 0 {
				t.Errorf("lost service not reported: failed=%d lost=%d lostReads=%d",
					res.FailedRequests, vs.LostRequests, res.LostReads)
			}
			// Every arrival completed one way or the other — graceful
			// refusal, no silent drops.
			if got := res.Requests + res.FailedRequests; got != 40 {
				t.Errorf("completions+failures = %d, want 40", got)
			}
			// The degraded window opens at the first failure and stays open
			// to the end of the run on a lost volume.
			if vs.DegradedMs <= 0 || vs.DegradedMs > res.Elapsed {
				t.Errorf("degraded window %.3f ms outside (0, %.3f]", vs.DegradedMs, res.Elapsed)
			}
			if rp.count(EventRebuildStart) != 1 || rp.count(EventRebuildDone) != 0 {
				t.Errorf("lifecycle events: start=%d done=%d, want 1/0",
					rp.count(EventRebuildStart), rp.count(EventRebuildDone))
			}
		})
	}
}

func TestRunVolumeLifetimeDrawnFailures(t *testing.T) {
	// Failures drawn from the exponential lifetime model — including
	// repeated deaths after spares are spent — must be deterministic and
	// degrade gracefully, never panic.
	run := func() Result {
		spec := volFixtures(t, mirrorVolCfg(), 1)
		spec.RebuildChunk = 8
		inj, err := fault.NewInjector(fault.InjectorConfig{
			Lifetime: &fault.LifetimeModel{MTTFMs: 15, Slots: 2, HorizonMs: 60, Seed: 9},
		})
		if err != nil {
			t.Fatal(err)
		}
		arr := make([]float64, 60)
		lbns := make([]int64, 60)
		for i := range arr {
			arr[i] = float64(i)
			lbns[i] = int64(i*3) % 64
		}
		src := workload.NewFromSlice(volReqs(arr, core.Read, lbns))
		res, err := RunVolume(nil, spec, src, Options{Injector: inj})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("lifetime-drawn runs diverged")
	}
	// MTTF 15 ms over a 60 ms horizon draws ~4 failures per member slot:
	// both members die long before any rebuild covers.
	if a.Volume.DeviceFailures < 2 {
		t.Fatalf("drew %d device failures, want ≥2", a.Volume.DeviceFailures)
	}
	if !a.DataLoss {
		t.Error("both mirror members failed but no DataLoss")
	}
	if got := a.Requests + a.FailedRequests; got != 60 {
		t.Errorf("completions+failures = %d, want 60", got)
	}
	if a.Volume.DegradedMs <= 0 || a.Volume.DegradedMs > a.Elapsed {
		t.Errorf("degraded window %.3f ms outside (0, %.3f]", a.Volume.DegradedMs, a.Elapsed)
	}
}

func TestRunVolumeAdaptivePaceChanges(t *testing.T) {
	// Under a foreground burst the adaptive policy must actually change
	// pace (backing off as the survivor queue grows, sprinting as it
	// drains), emitting one EventRebuildPace per change; the default
	// fixed policy must emit none.
	run := func(policy RebuildPolicy) (Result, *recordingProbe) {
		spec := volFixtures(t, mirrorVolCfg(), 1)
		spec.RebuildChunk = 8
		spec.RebuildPolicy = policy
		rp := &recordingProbe{}
		// 80 reads at 4/ms against a 1 ms/req survivor: the queue grows
		// through the burst and drains after it ends at 20 ms.
		arr := make([]float64, 80)
		lbns := make([]int64, 80)
		for i := range arr {
			arr[i] = float64(i) * 0.25
			lbns[i] = int64(i*5) % 64
		}
		src := workload.NewFromSlice(volReqs(arr, core.Read, lbns))
		res, err := RunVolume(nil, spec, src,
			Options{Probe: rp, Injector: devEvents(t, fault.DeviceEvent{AtMs: 4, Dev: 0})})
		if err != nil {
			t.Fatal(err)
		}
		return res, rp
	}

	adaptive, arp := run(AdaptiveRebuild{})
	if adaptive.Volume.RebuildsDone != 1 {
		t.Fatalf("adaptive rebuild incomplete: %+v", adaptive.Volume)
	}
	if adaptive.Volume.PaceChanges == 0 {
		t.Error("adaptive policy never changed pace under a varying queue")
	}
	if got := arp.count(EventRebuildPace); got != adaptive.Volume.PaceChanges {
		t.Errorf("pace events = %d, PaceChanges = %d", got, adaptive.Volume.PaceChanges)
	}
	for _, ev := range arp.events {
		if ev.Kind != EventRebuildPace {
			continue
		}
		if ev.Req != nil {
			t.Error("pace event carries a request")
		}
		if ev.Dev != 0 {
			t.Errorf("pace event on slot %d, want failed slot 0", ev.Dev)
		}
		if !(ev.Pace > 0 && ev.Pace <= 1) {
			t.Errorf("pace event outside (0,1]: %g", ev.Pace)
		}
		if ev.Queue < 0 {
			t.Errorf("pace event queue = %d", ev.Queue)
		}
	}

	fixed, frp := run(nil) // default FixedRebuild flat-out
	if fixed.Volume.RebuildsDone != 1 {
		t.Fatalf("fixed rebuild incomplete: %+v", fixed.Volume)
	}
	if fixed.Volume.PaceChanges != 0 || frp.count(EventRebuildPace) != 0 {
		t.Errorf("fixed policy changed pace: changes=%d events=%d",
			fixed.Volume.PaceChanges, frp.count(EventRebuildPace))
	}
}

func TestRunVolumeAdaptiveSprintsWhenIdle(t *testing.T) {
	// With no foreground pressure during the rebuild the adaptive policy
	// holds pace 1 throughout: MTTR matches the flat-out fixed rebuild
	// (16 ms, see TestRunVolumeThrottleStretchesRebuild) and no pace
	// change fires.
	spec := volFixtures(t, mirrorVolCfg(), 1)
	spec.RebuildChunk = 8
	spec.RebuildPolicy = AdaptiveRebuild{}
	src := workload.NewFromSlice(volReqs([]float64{0, 1, 2}, core.Read, []int64{0, 8, 16}))
	res, err := RunVolume(nil, spec, src,
		Options{Injector: devEvents(t, fault.DeviceEvent{AtMs: 4, Dev: 1})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Volume.RebuildsDone != 1 {
		t.Fatalf("rebuild incomplete: %+v", res.Volume)
	}
	if res.Volume.RebuildMs != 16 {
		t.Errorf("idle adaptive MTTR = %g ms, want flat-out 16", res.Volume.RebuildMs)
	}
	if res.Volume.PaceChanges != 0 {
		t.Errorf("pace changed %d times with empty queues", res.Volume.PaceChanges)
	}
}

func TestRunVolumeThrottleStretchesRebuild(t *testing.T) {
	// The same failure rebuilt at 25% throttle must take longer than
	// flat-out, and the rebuild tail must run past source exhaustion.
	run := func(frac float64) Result {
		spec := volFixtures(t, mirrorVolCfg(), 1)
		spec.RebuildChunk = 8
		spec.RebuildFrac = frac
		src := workload.NewFromSlice(volReqs([]float64{0, 1, 2}, core.Read, []int64{0, 8, 16}))
		res, err := RunVolume(nil, spec, src,
			Options{Injector: devEvents(t, fault.DeviceEvent{AtMs: 4, Dev: 1})})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flat, throttled := run(1), run(0.25)
	if flat.Volume.RebuildsDone != 1 || throttled.Volume.RebuildsDone != 1 {
		t.Fatalf("rebuilds incomplete: flat=%+v throttled=%+v", flat.Volume, throttled.Volume)
	}
	if throttled.Volume.RebuildMs <= flat.Volume.RebuildMs {
		t.Errorf("throttled MTTR %.3f ms not above flat-out %.3f ms",
			throttled.Volume.RebuildMs, flat.Volume.RebuildMs)
	}
	// 8 chunks × 2 ms each: flat-out MTTR ≈ 16 ms; 25% throttle idles
	// 3× the chunk time after each chunk ≈ 58 ms.
	if flat.Volume.RebuildMs != 16 {
		t.Errorf("flat MTTR = %g ms, want 16", flat.Volume.RebuildMs)
	}
	if throttled.Volume.RebuildMs != 58 {
		t.Errorf("throttled MTTR = %g ms, want 58", throttled.Volume.RebuildMs)
	}
}

func TestRunVolumeMemberPhases(t *testing.T) {
	// With a PhaseCollector the run reports volume-level phases per
	// measured request and per-member phases per service visit.
	cfg := parityVolCfg()
	cfg.PerMember = 2700 * 4
	cfg.StripeUnit = 2700
	v, err := array.NewVolume(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Devices()
	devs := make([]core.Device, n)
	scheds := make([]core.Scheduler, n)
	for i := range devs {
		devs[i] = mems.MustDevice(mems.DefaultConfig())
		scheds[i] = sched.NewFCFS()
	}
	pc := NewPhaseCollector()
	src := workload.NewRandom(workload.RandomConfig{
		Rate: 300, ReadFraction: 0.5, MeanBytes: 2048, MaxBytes: 4096,
		SectorSize: devs[0].SectorSize(), Capacity: cfg.Capacity(), Count: 120, Seed: 3,
	})
	res, err := RunVolume(nil, VolumeSpec{Volume: v, Devices: devs, Scheds: scheds}, src,
		Options{Warmup: 10, Probe: pc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases == nil || res.Phases.Requests != res.Requests {
		t.Fatalf("volume phases = %+v for %d requests", res.Phases, res.Requests)
	}
	visits := 0
	for i, m := range res.Members {
		if m.Phases == nil {
			t.Fatalf("member %d missing phases", i)
		}
		if m.Phases.Requests != m.Requests {
			t.Errorf("member %d phase visits %d != requests %d", i, m.Phases.Requests, m.Requests)
		}
		visits += m.Phases.Requests
	}
	// Member phases are per visit and cover warmup: at least one visit
	// per completed request, spares idle on a healthy run.
	if visits < res.Requests {
		t.Errorf("member visits %d below measured requests %d", visits, res.Requests)
	}
	if res.Members[n-1].Requests != 0 {
		t.Error("spare device served traffic on a healthy run")
	}
}

func TestRunVolumeMaxRequests(t *testing.T) {
	spec := volFixtures(t, mirrorVolCfg(), 1)
	arr := make([]float64, 30)
	lbns := make([]int64, 30)
	src := workload.NewFromSlice(volReqs(arr, core.Read, lbns))
	res, err := RunVolume(nil, spec, src, Options{MaxRequests: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 7 {
		t.Errorf("requests = %d, want 7", res.Requests)
	}
}
