package experiments

import (
	"fmt"
	"math"

	"memsim/internal/core"
	"memsim/internal/power"
	"memsim/internal/runner"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/trace"
	"memsim/internal/workload"
)

func init() { register("power", powerPlan) }

// Power quantifies §7 (an extension: the paper argues it without a
// figure). A bursty Cello-like workload runs over power-managed devices:
//
//   - the MEMS device with the paper's single idle mode entered the
//     moment the queue drains (restart 0.5 ms — imperceptible), and with
//     power management disabled, for reference;
//   - a mobile-class disk under idle-timeout spin-down policies (the
//     paper's "constant trade-off between reducing power and increasing
//     access time"), whose multi-second spin-up makes aggressive
//     timeouts expensive in response time;
//   - a server-class disk (25 s spin-up, §6.3) for which standby is
//     effectively unusable.
func Power(p Params) []Table { return mustRun(powerPlan(p)) }

func powerPlan(p Params) *Plan {
	type variant struct {
		device  string
		model   power.Model
		policy  power.Policy
		polName string
	}
	inf := math.Inf(1)
	variants := []variant{
		{"MEMS", power.MEMSModel(), power.Immediate(), "immediate idle"},
		{"MEMS", power.MEMSModel(), power.AlwaysOn(), "always on"},
		{"mobile disk", power.MobileDiskModel(), power.Immediate(), "immediate spin-down"},
		{"mobile disk", power.MobileDiskModel(), power.Policy{TimeoutMs: 1000}, "1 s timeout"},
		{"mobile disk", power.MobileDiskModel(), power.Policy{TimeoutMs: 10000}, "10 s timeout"},
		{"mobile disk", power.MobileDiskModel(), power.Policy{TimeoutMs: inf}, "always on"},
		{"server disk", power.ServerDiskModel(), power.Policy{TimeoutMs: 10000}, "10 s timeout"},
		{"server disk", power.ServerDiskModel(), power.Policy{TimeoutMs: inf}, "always on"},
	}

	jobs := make([]*runner.Job, len(variants))
	for i, v := range variants {
		jobs[i] = &runner.Job{
			Label: fmt.Sprintf("power %s %s", v.device, v.polName),
			Seed:  p.Seed,
			Custom: func(job *runner.Job) any {
				var inner core.Device
				if v.device == "MEMS" {
					inner = newMEMS(1)
				} else {
					inner = newDisk()
				}
				tr := trace.GenerateCello(trace.DefaultCello(inner.Capacity(), p.Requests))
				reqs := make([]*core.Request, tr.Len())
				for i, rec := range tr.Records {
					reqs[i] = rec.Request()
				}
				m := power.NewManaged(inner, v.model, v.policy)
				res := sim.Run(job.SimContext(), m, sched.NewFCFS(), workload.NewFromSlice(reqs),
					job.SimOptions(sim.Options{}))
				if err := job.Ctx().Err(); err != nil {
					return err
				}
				m.FinishAt(res.Elapsed)
				rep := m.Report()
				return []string{v.device, v.polName,
					fmt.Sprintf("%.1f", rep.TotalJ()),
					fmt.Sprintf("%.3f", rep.MeanPowerW()),
					fmt.Sprintf("%d", rep.Restarts),
					ms(rep.MeanPenaltyMs()),
					ms(res.Response.Mean())}
			},
		}
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID:    "power",
				Title: "energy and latency under idle-timeout policies (Cello-like workload)",
				Columns: []string{"device", "policy", "energy(J)", "mean power(W)",
					"restarts", "mean penalty(ms)", "mean response(ms)"},
			}
			for _, j := range jobs {
				t.AddRow(j.Value().([]string)...)
			}
			return []Table{t, compressionTable()}
		},
	}
}

// compressionTable evaluates §7's closing proposal: with power a linear
// function of bits accessed, the device's embedded logic could compress
// data to reduce active-tip energy — worthwhile whenever the
// computational cost per bit is below the media's per-bit energy times
// (1 − 1/ratio).
func compressionTable() Table {
	g := newMEMS(1).Geometry()
	perBit := power.PerBitEnergy(power.MEMSModel(), g.StreamBandwidth()*8)
	t := Table{
		ID:      "power-compress",
		Title:   fmt.Sprintf("on-device compression tradeoff (media energy %.2g nJ/bit)", perBit*1e9),
		Columns: []string{"compression ratio", "cpu cost (nJ/bit)", "effective (nJ/bit)", "worthwhile"},
	}
	for _, c := range []struct{ ratio, cpu float64 }{
		{1.5, 0.1e-9}, {2, 0.1e-9}, {4, 0.1e-9},
		{2, 0.5e-9}, {2, 2e-9},
	} {
		eff, ok := power.CompressionTradeoff(perBit, c.ratio, c.cpu)
		t.AddRow(f2(c.ratio), fmt.Sprintf("%.2g", c.cpu*1e9),
			fmt.Sprintf("%.2g", eff*1e9), fmt.Sprintf("%v", ok))
	}
	return t
}
