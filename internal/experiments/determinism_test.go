package experiments

import (
	"bytes"
	"testing"

	"memsim/internal/runner"
	"memsim/internal/sim"
)

// renderAll renders every table of every result set as CSV — the bytes
// memsbench would write.
func renderAll(results [][]Table) []byte {
	var buf bytes.Buffer
	for _, ts := range results {
		for _, tb := range ts {
			tb.CSV(&buf)
		}
	}
	return buf.Bytes()
}

// TestParallelMatchesSequentialOutput is the job layer's core guarantee:
// for every artifact, an 8-worker run emits bytes identical to a
// 1-worker run. Any job that leaked state across siblings — a shared
// device, scheduler, rng or request slice — would show up here as a
// numeric diff.
func TestParallelMatchesSequentialOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	// FaultRate > 0 widens the faultinject sweep, so the injection path —
	// injector rng, mid-run tip events, requeues — is under the same
	// byte-identity contract as everything else.
	p := Params{Requests: 800, Warmup: 80, ClosedRequests: 400, Trials: 80, Seed: 3, FaultRate: 0.02}
	ids := IDs()

	seq, _, err := RunMany(runner.Sequential(), ids, p)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := RunMany(&runner.Context{Workers: 8}, ids, p)
	if err != nil {
		t.Fatal(err)
	}

	for i, id := range ids {
		a, b := renderAll([][]Table{seq[i]}), renderAll([][]Table{par[i]})
		if !bytes.Equal(a, b) {
			t.Errorf("%s: parallel output diverged from sequential\n--- sequential ---\n%s--- parallel ---\n%s",
				id, a, b)
		}
	}
}

// TestRunManyBatchesInDeclarationOrder checks the multi-experiment path
// used by memsbench: one pool over all requested IDs, results returned
// per ID in request order.
func TestRunManyBatchesInDeclarationOrder(t *testing.T) {
	p := Params{Requests: 400, Warmup: 40, ClosedRequests: 200, Trials: 60, Seed: 1}
	ids := []string{"table2", "table1", "seekprofile"}
	results, sum, err := RunMany(&runner.Context{Workers: 4}, ids, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("results = %d, want %d", len(results), len(ids))
	}
	if results[0][0].ID != "table2" || results[1][0].ID != "table1" {
		t.Errorf("results not in request order: %s, %s", results[0][0].ID, results[1][0].ID)
	}
	if sum.Jobs != 3 {
		t.Errorf("summary jobs = %d, want 3 (one per single-job plan)", sum.Jobs)
	}
}

func TestRunManyUnknownID(t *testing.T) {
	_, _, err := RunMany(runner.Sequential(), []string{"fig99"}, tiny())
	if err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// TestProbedOutputMatchesUnprobed extends the byte-identity contract to
// the lifecycle probe: attaching a trace probe through the runner context
// (as memsbench -trace does) must not change a single byte of the
// rendered artifacts, including on the fault-injection path.
func TestProbedOutputMatchesUnprobed(t *testing.T) {
	// rebuild and striping put the volume fork-join and multi-queue engine
	// regimes under the same probe-neutrality contract; FaultRate > 0 keeps
	// the rebuild runs' transient-injection path live under the probe.
	p := Params{Requests: 600, Warmup: 60, ClosedRequests: 300, Trials: 60, Seed: 5, FaultRate: 0.02}
	ids := []string{"fig6", "phases", "faultinject", "rebuild", "striping"}

	plain, _, err := RunMany(runner.Sequential(), ids, p)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	jp := sim.NewJSONLProbe(&trace)
	probed, _, err := RunMany(&runner.Context{Workers: 1, Probe: jp}, ids, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := jp.Flush(); err != nil {
		t.Fatal(err)
	}
	if trace.Len() == 0 {
		t.Error("trace probe observed nothing")
	}
	for i, id := range ids {
		a, b := renderAll([][]Table{plain[i]}), renderAll([][]Table{probed[i]})
		if !bytes.Equal(a, b) {
			t.Errorf("%s: probed output diverged from unprobed\n--- plain ---\n%s--- probed ---\n%s", id, a, b)
		}
	}
}

func TestWithRequestsScalesAllRegimes(t *testing.T) {
	p := Default() // 20000/2000/10000/2000
	s := p.WithRequests(2000)
	want := Params{Requests: 2000, Warmup: 200, ClosedRequests: 1000, Trials: 200, Seed: p.Seed}
	if s != want {
		t.Errorf("WithRequests(2000) = %+v, want %+v", s, want)
	}
	// Scaling up works too.
	u := p.WithRequests(40000)
	if u.Warmup != 4000 || u.ClosedRequests != 20000 || u.Trials != 4000 {
		t.Errorf("WithRequests(40000) = %+v", u)
	}
	// Tiny overrides never zero out a regime.
	tinyP := p.WithRequests(3)
	if tinyP.Warmup < 1 || tinyP.ClosedRequests < 1 || tinyP.Trials < 1 {
		t.Errorf("WithRequests(3) zeroed a field: %+v", tinyP)
	}
	// Non-positive n is a no-op.
	if p.WithRequests(0) != p || p.WithRequests(-5) != p {
		t.Error("WithRequests with non-positive n should be a no-op")
	}
}

func TestFprintWideRows(t *testing.T) {
	tb := Table{ID: "wide", Title: "rows wider than the header", Columns: []string{"a"}}
	tb.AddRow("1", "extra-cell", "another")
	tb.AddRow("2", "x")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("extra-cell  another")) {
		t.Errorf("wide row cells missing or misaligned:\n%s", out)
	}
}
