package experiments

import (
	"fmt"

	"memsim/internal/mems"
)

func init() { register("table1", table1Plan) }

// Table1 reproduces Table 1 of the paper (the device parameters) and
// appends the derived geometry and the model's validation anchors — the
// quantities the paper quotes elsewhere that pin the derivation
// (DESIGN.md §3).
func Table1(p Params) []Table { return mustRun(table1Plan(p)) }

// Pure derivation — a single cheap job.
func table1Plan(p Params) *Plan {
	return tablesJob("table1", p.Seed, table1Body)
}

func table1Body() []Table {
	cfg := mems.DefaultConfig()
	g, err := mems.NewGeometry(cfg)
	if err != nil {
		panic(err) // the default configuration is known-good
	}
	t := Table{
		ID:      "table1",
		Title:   "device parameters (paper Table 1) and derived geometry",
		Columns: []string{"parameter", "value"},
	}
	t.AddRow("sled mobility in X and Y", fmt.Sprintf("%.0f µm", float64(cfg.BitsX)*cfg.BitWidth*1e6))
	t.AddRow("bit cell width", fmt.Sprintf("%.0f nm", cfg.BitWidth*1e9))
	t.AddRow("number of tips", fmt.Sprintf("%d", cfg.Tips))
	t.AddRow("simultaneously active tips", fmt.Sprintf("%d", cfg.ActiveTips))
	t.AddRow("tip sector length", fmt.Sprintf("%d bits (%d data bytes)", cfg.EncodedBits, cfg.DataBytes))
	t.AddRow("servo overhead", fmt.Sprintf("%d bits per tip sector", cfg.ServoBits))
	t.AddRow("per-tip data rate", fmt.Sprintf("%.0f Kbit/s", cfg.PerTipRate/1e3))
	t.AddRow("sled acceleration", fmt.Sprintf("%.1f m/s²", cfg.SledAccel))
	t.AddRow("settling time constants", fmt.Sprintf("%g", cfg.SettleConstants))
	t.AddRow("sled resonant frequency", fmt.Sprintf("%.0f Hz", cfg.ResonantHz))
	t.AddRow("spring factor", fmt.Sprintf("%.0f%%", cfg.SpringFactor*100))

	d := Table{
		ID:      "table1-derived",
		Title:   "derived geometry and validation anchors",
		Columns: []string{"quantity", "value", "paper anchor"},
	}
	d.AddRow("cylinders", fmt.Sprintf("%d", g.Cylinders), "N bit columns")
	d.AddRow("tracks per cylinder", fmt.Sprintf("%d", g.TracksPerCylinder), "tips/active = 5")
	d.AddRow("sectors per track", fmt.Sprintf("%d", g.SectorsPerTrack), "")
	d.AddRow("sectors per row (parallel)", fmt.Sprintf("%d", g.SectorsPerRow), "20 × 512 B per pass")
	d.AddRow("device capacity", fmt.Sprintf("%.3f GB", float64(g.CapacityBytes())/1e9), "≈3 GB per sled (Table 1: 3.2)")
	d.AddRow("streaming bandwidth", fmt.Sprintf("%.1f MB/s", g.StreamBandwidth()/1e6), "79.6 MB/s (§5.2)")
	d.AddRow("access velocity", fmt.Sprintf("%.1f mm/s", g.AccessSpeed*1e3), "")
	d.AddRow("X settle time (1 constant)", fmt.Sprintf("%.3f ms", g.SettleMs), "≈0.2 ms (§2.4.2)")
	d.AddRow("tip-sector row time", fmt.Sprintf("%.4f ms", g.RowTimeMs), "8 sectors = 0.13 ms (Table 2)")
	return []Table{t, d}
}
