package sim

import (
	"fmt"

	"memsim/internal/core"
	"memsim/internal/workload"
)

// Router directs a volume-level request to a member device, returning
// the member index and the request to issue there (with the LBN
// translated into the member's address space).
type Router func(*core.Request) (dev int, devReq *core.Request)

// RunMulti drives an open-arrival workload over several devices, each
// with its own scheduler queue, completing independently — the
// multi-device volume case (e.g. the paper's TPC-C testbed striped its
// database across two drives). It is an adapter over the shared
// discrete-event engine: arrivals chain eagerly on the event queue and
// completions interleave per member.
//
// The returned Result aggregates over all devices and reports
// per-member shares in Result.Members (with per-member phase
// attribution when the probe carries a PhaseCollector); response times
// are measured per volume-level request, and — like Run — failed
// requests are excluded from the measured statistics. Options.Injector
// drives transient retries and requeues against each member's own
// queue. Requests a router clamps at a member boundary are counted in
// Result.ClampedRequests. ctx (which may be nil) observes the run's
// progress.
//
// Configuration errors — no devices, mismatched device/scheduler
// counts, a nil router or source, or a router that returns an
// out-of-range member index mid-run — are returned as errors; in the
// mid-run case the partial Result up to the faulty routing decision
// accompanies the error.
func RunMulti(ctx *Context, devs []core.Device, scheds []core.Scheduler, route Router,
	src workload.Source, opts Options) (Result, error) {
	if len(devs) == 0 || len(devs) != len(scheds) {
		return Result{}, fmt.Errorf("sim: %d devices with %d schedulers", len(devs), len(scheds))
	}
	if route == nil {
		return Result{}, fmt.Errorf("sim: RunMulti needs a router")
	}
	if src == nil {
		return Result{}, fmt.Errorf("sim: RunMulti needs a workload source")
	}
	e := newEngine(ctx, opts)
	ms := newMemberSet(devs, scheds, e)
	e.runMulti(ms, route, src)
	e.loop()
	e.finalize()
	ms.attach(&e.res)
	return e.res, e.runErr
}

// runMulti wires the eager arrival chain to a routed member set: each
// arrival is routed to one member queue, served through the shared
// visit path (injector included), and completed per volume-level
// request through the shared completion path.
//
// Each member has at most one service in flight (ms.busy), so the
// completion event's parameters live in a per-member slot and the
// completion/tally callbacks are allocated once per member at setup
// instead of once per dispatch (the engine's allocation diet).
func (e *engine) runMulti(ms *memberSet, route Router, src workload.Source) {
	m := &multiRun{e: e, ms: ms, route: route, per: make([]memberDispatch, len(ms.devs))}
	for i := range m.per {
		md := &m.per[i]
		md.m, md.i = m, i
		md.doneFn = md.finish
		md.onDone = md.tally
	}
	e.chainArrivals(src, m.deliver)
}

// multiRun is runMulti's run-long state.
type multiRun struct {
	e     *engine
	ms    *memberSet
	route Router
	per   []memberDispatch
}

// memberDispatch holds one member's in-flight completion state and its
// two reusable callbacks.
type memberDispatch struct {
	m *multiRun
	i int

	r     *core.Request
	qlen  int
	done  float64
	again bool

	doneFn func()
	onDone func(measured bool)
}

func (m *multiRun) deliver(r *core.Request) {
	e, ms := m.e, m.ms
	i, devReq := m.route(r)
	if i < 0 || i >= len(ms.devs) {
		e.runErr = fmt.Errorf("sim: router sent request to device %d of %d", i, len(ms.devs))
		e.stopped = true
		return
	}
	// Routers stay total by clamping a request that would spill past
	// a member or strip boundary; count the truncation.
	if devReq.Blocks != r.Blocks {
		e.res.ClampedRequests++
	}
	// The device request carries the volume request's arrival time so
	// response accounting is end-to-end; the router may return r
	// itself when no translation is needed.
	devReq.Arrival = r.Arrival
	ms.scheds[i].Add(devReq)
	if e.p != nil {
		e.p.Observe(ProbeEvent{Kind: EventArrive, Time: r.Arrival, Dev: i, Req: devReq,
			Queue: ms.scheds[i].Len()})
	}
	m.dispatch(i)
}

func (m *multiRun) dispatch(i int) {
	e, ms := m.e, m.ms
	if ms.busy[i] || e.stopped {
		return
	}
	now := e.q.Now()
	qlen := ms.scheds[i].Len()
	r := ms.scheds[i].Next(ms.devs[i], now)
	if r == nil {
		return
	}
	ms.busy[i] = true
	if r.Requeues == 0 {
		r.Start = now
	}
	if e.p != nil {
		e.p.Observe(ProbeEvent{Kind: EventDispatch, Time: now, Dev: i, Req: r, Queue: qlen, Class: r.Class})
	}
	svc, _, again := e.serveVisit(ms.devs[i], r, r, i, now)
	done := now + svc
	r.Finish = done
	e.res.Busy += svc
	ms.members[i].Busy += svc
	md := &m.per[i]
	md.r, md.qlen, md.done, md.again = r, qlen, done, again
	e.q.Schedule(done, md.doneFn)
}

func (md *memberDispatch) finish() {
	m, i := md.m, md.i
	e, ms := m.e, m.ms
	ms.busy[i] = false
	if md.again {
		requeue(ms.scheds[i], md.r)
		if e.p != nil {
			e.p.Observe(ProbeEvent{Kind: EventRequeue, Time: md.done, Dev: i, Req: md.r,
				Queue: ms.scheds[i].Len()})
		}
	} else {
		e.complete(md.done, md.r, i, md.qlen, md.r.ResponseTime(), md.r.ServiceTime(), true, md.onDone)
	}
	m.dispatch(i)
}

func (md *memberDispatch) tally(measured bool) {
	ms, i := md.m.ms, md.i
	ms.members[i].Requests++
	if ms.phases != nil && measured {
		ms.phases[i].add(md.r.Phases, md.r.Class)
	}
}

// ConcatRouter routes by address concatenation: device i holds the LBN
// range [i·perDev, (i+1)·perDev).
func ConcatRouter(perDev int64) Router {
	return func(r *core.Request) (int, *core.Request) {
		dev := int(r.LBN / perDev)
		nr := *r
		nr.LBN = r.LBN % perDev
		// Clamp requests that would spill past the member boundary; the
		// volume-level generator is expected to respect it, but the
		// router must stay total.
		if nr.LBN+int64(nr.Blocks) > perDev {
			nr.Blocks = int(perDev - nr.LBN)
		}
		return dev, &nr
	}
}

// StripeRouter routes by striping: unit-sized strips rotate across n
// devices. Requests must fit within one strip.
func StripeRouter(unit int64, n int) Router {
	return func(r *core.Request) (int, *core.Request) {
		strip := r.LBN / unit
		dev := int(strip % int64(n))
		row := strip / int64(n)
		nr := *r
		nr.LBN = row*unit + r.LBN%unit
		if off := r.LBN % unit; off+int64(r.Blocks) > unit {
			nr.Blocks = int(unit - off)
		}
		return dev, &nr
	}
}
