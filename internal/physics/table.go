package physics

import (
	"fmt"
	"math"
)

// SeekTable precomputes rest-to-rest seek times on an n×n grid over the
// sled's travel and answers queries by bilinear interpolation — the way
// DiskSim-era simulators tabulated seek curves. It exists as the ablation
// partner of the closed-form solver: the table trades a little accuracy
// (the seek surface has a |x0−x1| → 0 crease the interpolation smooths
// over) and setup time for an even cheaper per-query path.
type SeekTable struct {
	sled *Sled
	n    int
	step float64
	// times[i*n+j] is the seek time from grid point i to grid point j.
	times []float64
}

// NewSeekTable builds a table with n grid points per axis (n ≥ 2).
func NewSeekTable(s *Sled, n int) *SeekTable {
	if n < 2 {
		panic(fmt.Sprintf("physics: seek table needs ≥2 grid points, got %d", n))
	}
	t := &SeekTable{
		sled:  s,
		n:     n,
		step:  2 * s.HalfRange / float64(n-1),
		times: make([]float64, n*n),
	}
	for i := 0; i < n; i++ {
		xi := -s.HalfRange + float64(i)*t.step
		for j := 0; j < n; j++ {
			xj := -s.HalfRange + float64(j)*t.step
			t.times[i*n+j] = s.SeekTime(xi, 0, xj, 0)
		}
	}
	return t
}

// SeekTime returns the interpolated rest-to-rest seek time from x0 to
// x1 (meters, clamped to the sled's travel).
func (t *SeekTable) SeekTime(x0, x1 float64) float64 {
	if x0 == x1 {
		return 0
	}
	fi := t.index(x0)
	fj := t.index(x1)
	i0, j0 := int(fi), int(fj)
	if i0 >= t.n-1 {
		i0 = t.n - 2
	}
	if j0 >= t.n-1 {
		j0 = t.n - 2
	}
	di, dj := fi-float64(i0), fj-float64(j0)
	n := t.n
	v00 := t.times[i0*n+j0]
	v01 := t.times[i0*n+j0+1]
	v10 := t.times[(i0+1)*n+j0]
	v11 := t.times[(i0+1)*n+j0+1]
	return v00*(1-di)*(1-dj) + v01*(1-di)*dj + v10*di*(1-dj) + v11*di*dj
}

// index maps a position to fractional grid coordinates, clamped.
func (t *SeekTable) index(x float64) float64 {
	f := (x + t.sled.HalfRange) / t.step
	return math.Min(math.Max(f, 0), float64(t.n-1))
}

// MaxError measures the table's worst absolute error (seconds) against
// the closed-form solver over a k×k probe grid offset from the table's
// own grid; tests and the ablation report use it.
func (t *SeekTable) MaxError(k int) float64 {
	worst := 0.0
	hr := t.sled.HalfRange
	for i := 0; i < k; i++ {
		x0 := -hr + (float64(i)+0.37)*2*hr/float64(k)
		for j := 0; j < k; j++ {
			x1 := -hr + (float64(j)+0.61)*2*hr/float64(k)
			if x0 == x1 {
				continue
			}
			exact := t.sled.SeekTime(x0, 0, x1, 0)
			if e := math.Abs(t.SeekTime(x0, x1) - exact); e > worst {
				worst = e
			}
		}
	}
	return worst
}
