package experiments

import (
	"fmt"
	"math/rand"

	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/runner"
)

func init() { register("remap", remapPlan) }

// RemapStudy quantifies §6.1.1's placement claim (extension): remapping
// a defective MEMS sector to the *same tip sector on a spare tip*
// preserves sequential access timing exactly, whereas disk-style
// slipping to spare locations breaks physical sequentiality and taxes
// every scan that crosses a remapped sector. A sequential scan runs over
// a region with a growing fraction of defective sectors under both
// policies on both devices.
func RemapStudy(p Params) []Table { return mustRun(remapPlan(p)) }

func remapPlan(p Params) *Plan {
	const blocks = 512 // 256 KB pieces
	scanLen := int64(p.ClosedRequests) * blocks
	rates := []float64{0, 0.001, 0.01, 0.05}

	// Columns per rate row: disk slip-remap, MEMS slip-remap, MEMS
	// spare-tip remap. The spare-tip column relocates nothing the sled
	// can see — the spare activates at the same ⟨x, y⟩ — so its timing
	// is the defect-free scan by construction (verified by fault-remap in
	// the fault experiment); it is measured at rate 0 for every row.
	type column struct {
		name string
		scan func(rate float64) float64
	}
	cols := []column{
		{"disk-slip", func(rate float64) float64 {
			return scanWithSlips(newDisk(), scanLen, blocks, rate, p.Seed)
		}},
		{"mems-slip", func(rate float64) float64 {
			return scanWithSlips(newMEMS(1), scanLen, blocks, rate, p.Seed)
		}},
		{"mems-spare", func(float64) float64 {
			return scanWithSlips(newMEMS(1), scanLen, blocks, 0, p.Seed)
		}},
	}

	grid := make([][]*runner.Job, len(rates))
	var jobs []*runner.Job
	for ri, rate := range rates {
		grid[ri] = make([]*runner.Job, len(cols))
		for ci, col := range cols {
			j := &runner.Job{
				Label: fmt.Sprintf("remap %s rate=%g", col.name, rate),
				Seed:  p.Seed,
				Custom: func(*runner.Job) any {
					return col.scan(rate)
				},
			}
			grid[ri][ci] = j
			jobs = append(jobs, j)
		}
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID:    "remap",
				Title: "sequential 256 KB scan slowdown vs. defective-sector fraction",
				Columns: []string{"defect rate", "Atlas slip-remap", "MEMS slip-remap",
					"MEMS spare-tip remap"},
			}
			for ri, rate := range rates {
				row := []string{fmt.Sprintf("%.1f%%", rate*100)}
				for ci := range cols {
					row = append(row, ms(grid[ri][ci].Value().(float64)))
				}
				t.AddRow(row...)
			}
			return []Table{t}
		},
	}
}

// scanWithSlips sequentially reads [0, scanLen) in blocks-sized pieces
// after slipping a rate-fraction of its sectors to spares at the far end
// of the device, and returns the mean piece service time.
func scanWithSlips(dev core.Device, scanLen int64, blocks int, rate float64, seed int64) float64 {
	sr := fault.NewSlipRemap(dev)
	rng := rand.New(rand.NewSource(seed))
	if rate > 0 {
		defects := int64(rate * float64(scanLen))
		spareBase := dev.Capacity() - defects - 1
		for i := int64(0); i < defects; i++ {
			sr.Remap(rng.Int63n(scanLen), spareBase+i)
		}
	}
	now, sum := 0.0, 0.0
	pieces := 0
	for lbn := int64(0); lbn+int64(blocks) <= scanLen; lbn += int64(blocks) {
		svc := sr.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: blocks}, now)
		now += svc
		sum += svc
		pieces++
	}
	return sum / float64(pieces)
}
