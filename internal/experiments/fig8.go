package experiments

import "fmt"

func init() { register("fig8", fig8Plan) }

// Fig8 reproduces Fig. 8: the settling-time sensitivity study. The random
// workload is re-run on the MEMS device with zero and with two settling
// time constants (the default elsewhere is one). With two constants, X
// seeks dominate and SSTF_LBN closely approximates SPTF; with zero, the Y
// dimension matters and SPTF pulls away (§4.4).
func Fig8(p Params) []Table { return mustRun(fig8Plan(p)) }

func fig8Plan(p Params) *Plan {
	var plans []*Plan
	for _, k := range []float64{0, 2} {
		prefix := fmt.Sprintf("fig8-settle%g", k)
		device := fmt.Sprintf("MEMS device, %g settling time constants", k)
		plans = append(plans, sweepPlan(prefix, device, memsFactory(k), memsRates, p))
	}
	return mergePlans(plans...)
}
