// Package fault implements the failure-management machinery of §6: tip
// striping with horizontal ECC (a Reed-Solomon erasure code), spare-tip
// remapping that preserves access timing, the capacity ↔ fault-tolerance
// tradeoff, Monte-Carlo data-loss analysis, and the seek-error penalty
// models comparing disks with MEMS-based storage.
package fault

import (
	"fmt"
	"math/rand"
)

// Config describes the redundancy structure of a tip array.
type Config struct {
	// Tips is the total number of probe tips (6400).
	Tips int
	// StripeWidth is the number of tips a stripe group spans: DataTips +
	// ECCTips. Tips are partitioned into consecutive stripe groups.
	DataTips, ECCTips int
	// SpareTips is the size of the spare pool, taken from the end of the
	// tip array. A failed tip's entire region can be remapped to the
	// *same tip sector* on a spare tip (§6.1.1), so remapping does not
	// perturb access timing.
	SpareTips int
}

// DefaultConfig mirrors the paper's device with one parity tip per
// 64-tip stripe and a modest spare pool.
func DefaultConfig() Config {
	return Config{Tips: 6400, DataTips: 64, ECCTips: 2, SpareTips: 130}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	w := c.DataTips + c.ECCTips
	switch {
	case c.Tips <= 0 || c.DataTips <= 0 || c.ECCTips < 0 || c.SpareTips < 0:
		return fmt.Errorf("fault: counts must be non-negative (tips=%d data=%d ecc=%d spare=%d)",
			c.Tips, c.DataTips, c.ECCTips, c.SpareTips)
	case c.SpareTips >= c.Tips:
		return fmt.Errorf("fault: spare pool (%d) consumes the whole array (%d)", c.SpareTips, c.Tips)
	case (c.Tips-c.SpareTips)%w != 0:
		return fmt.Errorf("fault: usable tips (%d) not a multiple of stripe width (%d)", c.Tips-c.SpareTips, w)
	case w > 256:
		return fmt.Errorf("fault: stripe width %d exceeds the GF(256) erasure code limit", w)
	}
	return nil
}

// StripeWidth returns DataTips+ECCTips.
func (c Config) StripeWidth() int { return c.DataTips + c.ECCTips }

// Stripes returns the number of stripe groups.
func (c Config) Stripes() int { return (c.Tips - c.SpareTips) / c.StripeWidth() }

// Array tracks tip failures, spare remappings, and recoverability for one
// device.
type Array struct {
	cfg Config
	// failedAt[g] counts failed-and-unremapped tips in stripe group g.
	failedAt []int
	// remap maps a failed tip to the spare that replaced it.
	remap map[int]int
	// spares not yet consumed, in ascending order.
	spares []int
	// failed marks every tip that has ever failed (remapped or not).
	failed map[int]bool
	// defects counts recoverable media defects absorbed by ECC.
	defects int
}

// NewArray builds an Array; it returns an error for invalid
// configurations.
func NewArray(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		cfg:      cfg,
		failedAt: make([]int, cfg.Stripes()),
		remap:    make(map[int]int),
		failed:   make(map[int]bool),
	}
	for i := cfg.Tips - cfg.SpareTips; i < cfg.Tips; i++ {
		a.spares = append(a.spares, i)
	}
	return a, nil
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

// SparesLeft reports the remaining spare tips.
func (a *Array) SparesLeft() int { return len(a.spares) }

// FailedTips reports how many tips have failed so far.
func (a *Array) FailedTips() int { return len(a.failed) }

// stripeOf returns the stripe group of tip id, or -1 for spare-pool tips.
func (a *Array) stripeOf(id int) int {
	if id >= a.cfg.Tips-a.cfg.SpareTips {
		return -1
	}
	return id / a.cfg.StripeWidth()
}

// FailTip records the failure of tip id (a broken or crashed probe tip,
// §6.1.1) and attempts to remap its region to a spare. It reports whether
// the device still has no data loss afterwards. Failing an already-failed
// tip is a no-op. An out-of-range id leaves the array untouched and
// returns an error, so a misconfigured experiment fails cleanly instead
// of killing its worker.
func (a *Array) FailTip(id int) (stillRecoverable bool, err error) {
	if id < 0 || id >= a.cfg.Tips {
		return !a.DataLoss(), fmt.Errorf("fault: tip %d out of range [0,%d)", id, a.cfg.Tips)
	}
	if !a.failed[id] {
		a.failed[id] = true
		g := a.stripeOf(id)
		switch {
		case g < 0:
			// A spare died: shrink the pool (it may already be in use).
			a.removeSpare(id)
		case len(a.spares) > 0:
			// Remap the whole region to a spare at the same tip sector;
			// access timing is unchanged because the spare activates in
			// place of the failed tip.
			sp := a.spares[0]
			a.spares = a.spares[1:]
			a.remap[id] = sp
		default:
			a.failedAt[g]++
		}
	}
	return !a.DataLoss(), nil
}

// removeSpare deletes id from the spare pool if present; if the spare was
// already standing in for a failed tip, that tip loses its cover.
func (a *Array) removeSpare(id int) {
	for i, s := range a.spares {
		if s == id {
			a.spares = append(a.spares[:i], a.spares[i+1:]...)
			return
		}
	}
	for orig, sp := range a.remap {
		if sp == id {
			delete(a.remap, orig)
			if len(a.spares) > 0 {
				nsp := a.spares[0]
				a.spares = a.spares[1:]
				a.remap[orig] = nsp
			} else {
				a.failedAt[a.stripeOf(orig)]++
			}
			return
		}
	}
}

// MediaDefect records a grown media defect under one tip (§6.1.1). Unlike
// a tip failure it affects only part of the region; it is recoverable via
// the stripe's ECC without consuming a spare, so it is tallied but does
// not degrade the stripe budget. Defects on the same tip as a prior
// failure are subsumed by it. An out-of-range id returns an error and
// changes nothing.
func (a *Array) MediaDefect(id int) error {
	if id < 0 || id >= a.cfg.Tips {
		return fmt.Errorf("fault: tip %d out of range [0,%d)", id, a.cfg.Tips)
	}
	if !a.failed[id] {
		a.defects++
	}
	return nil
}

// Defects reports the recoverable media defects absorbed so far.
func (a *Array) Defects() int { return a.defects }

// RemappedTo returns the spare standing in for tip id, and whether one is.
func (a *Array) RemappedTo(id int) (int, bool) {
	sp, ok := a.remap[id]
	return sp, ok
}

// TipDegraded reports whether tip id is a failed data tip currently
// lacking spare cover, so that sectors striped over it must be served by
// ECC reconstruction. Remapped tips and dead spare-pool tips (which hold
// no data) are not degraded. Out-of-range ids report false.
func (a *Array) TipDegraded(id int) bool {
	if id < 0 || id >= a.cfg.Tips || !a.failed[id] {
		return false
	}
	if _, ok := a.remap[id]; ok {
		return false
	}
	return a.stripeOf(id) >= 0
}

// TipLost reports whether tip id is a failed, unremapped data tip in a
// stripe group whose unremapped failures exceed its ECC budget — the
// data under it is unrecoverable, and reads touching it must fail
// rather than be silently served. Out-of-range ids report false.
func (a *Array) TipLost(id int) bool {
	if !a.TipDegraded(id) {
		return false
	}
	return a.failedAt[a.stripeOf(id)] > a.cfg.ECCTips
}

// UnremappedFailures counts failed data tips currently lacking spare
// cover — the tips whose stripes are serving reads in degraded mode.
func (a *Array) UnremappedFailures() int {
	n := 0
	for _, f := range a.failedAt {
		n += f
	}
	return n
}

// DataLoss reports whether any stripe group has more unremapped failures
// than its ECC can erase.
func (a *Array) DataLoss() bool {
	for _, n := range a.failedAt {
		if n > a.cfg.ECCTips {
			return true
		}
	}
	return false
}

// DegradedStripes counts stripe groups currently relying on ECC (≥1
// unremapped failure but no loss).
func (a *Array) DegradedStripes() int {
	n := 0
	for _, f := range a.failedAt {
		if f > 0 && f <= a.cfg.ECCTips {
			n++
		}
	}
	return n
}

// ConvertDataToSpares enacts the §6.1.1 tradeoff in one direction:
// sacrifice device capacity by retiring the last data stripe group into
// the spare pool. It returns the number of tips added.
func (a *Array) ConvertDataToSpares() int {
	if len(a.failedAt) == 0 {
		return 0
	}
	g := len(a.failedAt) - 1
	lo := g * a.cfg.StripeWidth()
	hi := lo + a.cfg.StripeWidth()
	added := 0
	for id := lo; id < hi; id++ {
		if !a.failed[id] {
			a.spares = append(a.spares, id)
			added++
		}
	}
	a.failedAt = a.failedAt[:g]
	return added
}

// LossProbability estimates, by Monte Carlo over trials with rng, the
// probability that k uniformly-random tip failures cause data loss under
// cfg. It is the quantitative form of §6.1's claim that striping + spares
// make many faults that would kill a disk recoverable.
func LossProbability(cfg Config, k, trials int, rng *rand.Rand) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if k < 0 || trials <= 0 {
		return 0, fmt.Errorf("fault: need k ≥ 0 and trials > 0 (k=%d trials=%d)", k, trials)
	}
	losses := 0
	for t := 0; t < trials; t++ {
		a, err := NewArray(cfg)
		if err != nil {
			return 0, err
		}
		perm := rng.Perm(cfg.Tips)
		for i := 0; i < k && i < len(perm); i++ {
			if _, err := a.FailTip(perm[i]); err != nil {
				return 0, err
			}
		}
		if a.DataLoss() {
			losses++
		}
	}
	return float64(losses) / float64(trials), nil
}

// ─── Seek-error penalties (§6.1.3) ──────────────────────────────────────

// DiskSeekErrorPenalty returns the cost in ms of a disk seek error: a
// short re-seek plus up to a full additional rotation for the sector to
// come around again. rotFrac ∈ [0,1) selects where in the rotation the
// retry lands (0.5 = expected case); values outside the interval return
// an error.
func DiskSeekErrorPenalty(reseekMs, rotationMs, rotFrac float64) (float64, error) {
	if rotFrac < 0 || rotFrac >= 1 {
		return 0, fmt.Errorf("fault: rotation fraction %g out of [0,1)", rotFrac)
	}
	return reseekMs + rotFrac*rotationMs, nil
}

// MEMSSeekErrorPenalty returns the cost in ms of a MEMS seek error: up to
// two Y turnarounds plus a short repositioning seek — no rotational
// penalty exists because the sled's motion is fully controlled (§2.4.8).
// A turnaround count outside [0,2] returns an error.
func MEMSSeekErrorPenalty(turnaroundMs, shortSeekMs float64, turnarounds int) (float64, error) {
	if turnarounds < 0 || turnarounds > 2 {
		return 0, fmt.Errorf("fault: turnaround count %d out of [0,2]", turnarounds)
	}
	return float64(turnarounds)*turnaroundMs + shortSeekMs, nil
}
