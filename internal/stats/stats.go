// Package stats provides the streaming statistics used throughout the
// simulator: online mean/variance accumulation (Welford's algorithm), the
// squared coefficient of variation that the paper uses as its starvation
// metric, fixed-bucket histograms, and percentile estimation over retained
// samples.
//
// All accumulators are plain values whose zero value is ready to use, in
// keeping with the rest of the standard library.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Welford accumulates a running mean and variance without retaining
// samples. The zero value is an empty accumulator.
type Welford struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N reports the number of observations added.
func (w Welford) N() int64 { return w.n }

// Mean returns the arithmetic mean of the observations, or 0 if empty.
func (w Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation, or 0 if empty.
func (w Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 if empty.
func (w Welford) Max() float64 { return w.max }

// Variance returns the population variance (dividing by n), or 0 when
// fewer than two observations have been added.
func (w Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased sample variance (dividing by n-1),
// or 0 when fewer than two observations have been added.
func (w Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// SquaredCV returns the squared coefficient of variation, σ²/µ². This is
// the metric of "fairness" (starvation resistance) used in the paper
// (after Teorey & Pinkerton and Worthington et al.): lower values indicate
// better starvation resistance. Returns 0 if the mean is zero.
func (w Welford) SquaredCV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Variance() / (w.mean * w.mean)
}

// Merge folds the contents of other into w, as if every observation added
// to other had been added to w. (Chan et al.'s parallel variance update.)
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	w.mean += delta * float64(other.n) / float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}

// Meter is a Welford accumulator safe for concurrent use. The parallel
// experiment runner's workers fold per-job metrics (wall-clock and
// simulated milliseconds) into shared Meters without further locking.
// The zero value is an empty accumulator ready to use.
type Meter struct {
	mu sync.Mutex
	w  Welford
}

// Add folds one observation into the accumulator.
func (m *Meter) Add(x float64) {
	m.mu.Lock()
	m.w.Add(x)
	m.mu.Unlock()
}

// Snapshot returns a copy of the accumulated statistics.
func (m *Meter) Snapshot() Welford {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.w
}

// Sample retains every observation so that exact order statistics can be
// computed afterwards. The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks. Returns 0 if empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Histogram counts observations into equal-width buckets over [Lo, Hi).
// Observations outside the range are tallied in Under/Over.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int64
	Under   int64
	Over    int64
	total   int64
}

// NewHistogram returns a histogram with n equal-width buckets spanning
// [lo, hi). It panics if n <= 0 or hi <= lo, which indicate programmer
// error rather than runtime conditions.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram bucket count must be positive")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, n)}
}

// Add tallies one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i >= len(h.Buckets) { // guard against floating-point edge
			i = len(h.Buckets) - 1
		}
		h.Buckets[i]++
	}
}

// Total reports the number of observations tallied, including out-of-range.
func (h *Histogram) Total() int64 { return h.total }

// BucketBounds returns the [lo, hi) bounds of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("histogram[%g,%g) buckets=%d total=%d under=%d over=%d",
		h.Lo, h.Hi, len(h.Buckets), h.total, h.Under, h.Over)
}
