package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzParse drives the native text-format parser through arbitrary
// input, checking the robustness contract the replay path depends on:
// Read never panics, and every trace it accepts is structurally sound —
// finite times, parseable fields, and a clean Write→Read round-trip for
// whatever additionally passes Validate. Malformed replay input must
// surface as an error from Read or Validate, never as a panic (or a
// NaN) inside the simulator.
func FuzzParse(f *testing.F) {
	f.Add("# trace: demo (2 records)\n0.000000 r 100 8\n1.500000 w 200 16\n")
	f.Add("0 r 0 1\n")
	f.Add("  1.5   R   42   8  \n# comment\n\n2.5 W 50 4\n")
	f.Add("nan r 0 1\n")
	f.Add("+Inf w 9 2\n")
	f.Add("1e309 r 0 1\n")
	f.Add("-5 r 10 3\n")
	f.Add("3 x 1 1\n")
	f.Add("1 r 99999999999999999999 1\n")
	f.Add("1 r 5\n")
	f.Add(strings.Repeat("7 ", 1<<10))
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input), "fuzz")
		if err != nil {
			return // rejected cleanly: the contract holds
		}
		for i, r := range tr.Records {
			if math.IsNaN(r.TimeMs) || math.IsInf(r.TimeMs, 0) {
				t.Fatalf("accepted record %d with non-finite time %v", i, r.TimeMs)
			}
		}
		// Validate must decide, not panic, on whatever Read accepted.
		verr := tr.Validate(1 << 40)
		if verr != nil {
			return
		}
		// Accepted and valid: the trace must survive a Write→Read
		// round-trip with the record count intact (times are written at
		// fixed precision, so values may round but rows may not vanish).
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("rewriting accepted trace: %v", err)
		}
		back, err := Read(&buf, "fuzz-roundtrip")
		if err != nil {
			t.Fatalf("reparsing written trace: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round-trip changed record count: %d != %d", back.Len(), tr.Len())
		}
	})
}
