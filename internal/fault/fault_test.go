package fault

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Tips: 0, DataTips: 64, ECCTips: 2, SpareTips: 0},
		{Tips: 6400, DataTips: 0, ECCTips: 2, SpareTips: 0},
		{Tips: 6400, DataTips: 64, ECCTips: -1, SpareTips: 0},
		{Tips: 6400, DataTips: 64, ECCTips: 2, SpareTips: 6400},
		{Tips: 6400, DataTips: 64, ECCTips: 3, SpareTips: 0},  // 6400 % 67 != 0
		{Tips: 600, DataTips: 250, ECCTips: 50, SpareTips: 0}, // width > 256
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
	}
}

func TestDefaultConfigDerived(t *testing.T) {
	c := DefaultConfig()
	if c.StripeWidth() != 66 {
		t.Errorf("stripe width = %d, want 66", c.StripeWidth())
	}
	if c.Stripes() != (6400-130)/66 {
		t.Errorf("stripes = %d", c.Stripes())
	}
}

// failTip fails tip id, aborting the test on an unexpected error, and
// returns whether the array is still recoverable.
func failTip(t *testing.T, a *Array, id int) bool {
	t.Helper()
	ok, err := a.FailTip(id)
	if err != nil {
		t.Fatalf("FailTip(%d): %v", id, err)
	}
	return ok
}

func TestFailTipRemapsToSpare(t *testing.T) {
	a, err := NewArray(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !failTip(t, a, 100) {
		t.Fatal("first failure with spares available must remain recoverable")
	}
	sp, ok := a.RemappedTo(100)
	if !ok {
		t.Fatal("tip 100 not remapped despite available spares")
	}
	if sp < a.Config().Tips-a.Config().SpareTips {
		t.Errorf("remapped to non-spare tip %d", sp)
	}
	if a.SparesLeft() != DefaultConfig().SpareTips-1 {
		t.Errorf("spares left = %d", a.SparesLeft())
	}
	if a.DegradedStripes() != 0 {
		t.Error("remapped failure should not degrade any stripe")
	}
}

func TestFailTipIdempotent(t *testing.T) {
	a, _ := NewArray(DefaultConfig())
	failTip(t, a, 5)
	n := a.SparesLeft()
	failTip(t, a, 5)
	if a.SparesLeft() != n {
		t.Error("re-failing a tip consumed another spare")
	}
	if a.FailedTips() != 1 {
		t.Errorf("failed tips = %d, want 1", a.FailedTips())
	}
}

func TestECCAbsorbsFailuresAfterSparesExhausted(t *testing.T) {
	// With no spares, up to ECCTips failures per stripe are recoverable;
	// one more causes loss.
	cfg := Config{Tips: 660, DataTips: 64, ECCTips: 2, SpareTips: 0}
	a, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !failTip(t, a, 0) || !failTip(t, a, 1) {
		t.Fatal("ECC should absorb the first two failures in a stripe")
	}
	if a.DegradedStripes() != 1 {
		t.Errorf("degraded stripes = %d, want 1", a.DegradedStripes())
	}
	if failTip(t, a, 2) {
		t.Error("third failure in one stripe must exceed 2 ECC tips")
	}
	if !a.DataLoss() {
		t.Error("DataLoss should report true")
	}
}

func TestFailuresInDifferentStripesIndependent(t *testing.T) {
	cfg := Config{Tips: 650, DataTips: 64, ECCTips: 1, SpareTips: 0}
	a, _ := NewArray(cfg)
	// One failure in each of the 10 stripes: all recoverable.
	for g := 0; g < 10; g++ {
		if !failTip(t, a, g*65) {
			t.Fatalf("failure in stripe %d should be recoverable", g)
		}
	}
	if a.DegradedStripes() != 10 {
		t.Errorf("degraded = %d, want 10", a.DegradedStripes())
	}
}

func TestSpareDeathReexposesFailure(t *testing.T) {
	cfg := Config{Tips: 661, DataTips: 64, ECCTips: 2, SpareTips: 1}
	a, _ := NewArray(cfg)
	failTip(t, a, 10) // remapped to spare 660
	sp, ok := a.RemappedTo(10)
	if !ok || sp != 660 {
		t.Fatalf("remap = %d, %v", sp, ok)
	}
	// The spare itself dies: tip 10's failure now burdens its stripe ECC.
	failTip(t, a, 660)
	if _, ok := a.RemappedTo(10); ok {
		t.Error("dead spare still listed as cover")
	}
	if a.DegradedStripes() != 1 {
		t.Errorf("degraded = %d, want 1", a.DegradedStripes())
	}
}

// TestSpareCascadeOrphanThreshold pins the removeSpare cascade edge case:
// an in-use spare dies while the pool is empty, so the tip it was
// covering is orphaned back onto its stripe's ECC budget (counted in
// failedAt), and data loss flips at exactly ECCTips+1 unremapped
// failures in that stripe.
func TestSpareCascadeOrphanThreshold(t *testing.T) {
	cfg := Config{Tips: 661, DataTips: 64, ECCTips: 2, SpareTips: 1}
	a, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	failTip(t, a, 10) // consumes the only spare (tip 660)
	if a.SparesLeft() != 0 {
		t.Fatalf("spares left = %d, want 0", a.SparesLeft())
	}
	// The in-use spare dies with the pool empty: tip 10 is orphaned.
	if !failTip(t, a, 660) {
		t.Fatal("one orphaned failure must still be within the 2-tip ECC budget")
	}
	if a.UnremappedFailures() != 1 {
		t.Errorf("unremapped failures = %d, want 1 (the orphan)", a.UnremappedFailures())
	}
	if !a.TipDegraded(10) {
		t.Error("orphaned tip 10 should be degraded")
	}
	if a.TipDegraded(660) {
		t.Error("dead spare holds no data and must not count as degraded")
	}
	// ECC absorbs one more failure in the stripe; the next one is loss.
	if !failTip(t, a, 11) {
		t.Fatal("second unremapped failure still within ECC budget")
	}
	if a.DataLoss() {
		t.Fatal("data loss before exceeding ECCTips")
	}
	if failTip(t, a, 12) {
		t.Error("third unremapped failure in the stripe must exceed 2 ECC tips")
	}
	if !a.DataLoss() {
		t.Error("DataLoss should flip at ECCTips+1 unremapped failures")
	}
	if a.UnremappedFailures() != 3 {
		t.Errorf("unremapped failures = %d, want 3", a.UnremappedFailures())
	}
}

func TestUnusedSpareDeathShrinksPool(t *testing.T) {
	cfg := Config{Tips: 662, DataTips: 64, ECCTips: 2, SpareTips: 2}
	a, _ := NewArray(cfg)
	failTip(t, a, 661) // an idle spare dies
	if a.SparesLeft() != 1 {
		t.Errorf("spares left = %d, want 1", a.SparesLeft())
	}
	if a.DataLoss() {
		t.Error("spare death alone should not lose data")
	}
}

func TestMediaDefectsRecoverable(t *testing.T) {
	a, _ := NewArray(DefaultConfig())
	if err := a.MediaDefect(7); err != nil {
		t.Fatal(err)
	}
	if err := a.MediaDefect(8); err != nil {
		t.Fatal(err)
	}
	if a.Defects() != 2 {
		t.Errorf("defects = %d", a.Defects())
	}
	if a.DataLoss() || a.DegradedStripes() != 0 {
		t.Error("media defects must be absorbed by ECC")
	}
	// A defect on an already-failed tip is subsumed.
	failTip(t, a, 9)
	if err := a.MediaDefect(9); err != nil {
		t.Fatal(err)
	}
	if a.Defects() != 2 {
		t.Error("defect on failed tip double-counted")
	}
}

func TestConvertDataToSpares(t *testing.T) {
	cfg := Config{Tips: 660, DataTips: 64, ECCTips: 2, SpareTips: 0}
	a, _ := NewArray(cfg)
	if a.SparesLeft() != 0 {
		t.Fatal("expected no spares initially")
	}
	added := a.ConvertDataToSpares()
	if added != 66 {
		t.Errorf("converted %d tips, want 66", added)
	}
	if a.SparesLeft() != 66 {
		t.Errorf("spares = %d", a.SparesLeft())
	}
	// New failures now remap instead of degrading.
	if !failTip(t, a, 0) {
		t.Fatal("failure should remap to converted spare")
	}
	if a.DegradedStripes() != 0 {
		t.Error("remap should keep stripes clean")
	}
}

func TestBadTipIDsReturnErrors(t *testing.T) {
	a, _ := NewArray(DefaultConfig())
	for i, f := range []func() error{
		func() error { _, err := a.FailTip(-1); return err },
		func() error { _, err := a.FailTip(6400); return err },
		func() error { return a.MediaDefect(-1) },
		func() error { return a.MediaDefect(6400) },
	} {
		if err := f(); err == nil {
			t.Errorf("case %d: expected an error for an out-of-range tip", i)
		}
	}
	// A bad id must leave the array untouched.
	if a.FailedTips() != 0 || a.Defects() != 0 || a.SparesLeft() != DefaultConfig().SpareTips {
		t.Error("out-of-range tip ids mutated the array")
	}
}

func TestLossProbabilityMonotonicInFailures(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(6))
	p50, err := LossProbability(cfg, 50, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	p400, err := LossProbability(cfg, 400, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p50 > p400 {
		t.Errorf("loss probability decreased with more failures: %g vs %g", p50, p400)
	}
	// With spares covering the first 128 failures and 2 ECC tips per
	// stripe beyond that, 50 random failures essentially never lose data.
	if p50 > 0.01 {
		t.Errorf("P(loss | 50 failures) = %g, want ≈ 0", p50)
	}
}

func TestLossProbabilityDiskAnalogy(t *testing.T) {
	// A "disk-like" configuration — no ECC, no spares — loses data on the
	// very first head/tip failure; the MEMS default tolerates hundreds
	// (§6.1.1's contrast).
	disk := Config{Tips: 6400, DataTips: 64, ECCTips: 0, SpareTips: 0}
	rng := rand.New(rand.NewSource(7))
	p, err := LossProbability(disk, 1, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("P(loss | 1 failure, no redundancy) = %g, want 1", p)
	}
	mems := DefaultConfig()
	pm, err := LossProbability(mems, 100, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pm > 0.05 {
		t.Errorf("P(loss | 100 failures, default redundancy) = %g, want ≈ 0", pm)
	}
}

func TestLossProbabilityErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := LossProbability(Config{}, 1, 10, rng); err == nil {
		t.Error("expected config error")
	}
	if _, err := LossProbability(DefaultConfig(), -1, 10, rng); err == nil {
		t.Error("expected k error")
	}
	if _, err := LossProbability(DefaultConfig(), 1, 0, rng); err == nil {
		t.Error("expected trials error")
	}
}

func TestArrayNeverLosesWithFewerFailuresThanECC(t *testing.T) {
	// Property: with spares + ECC, any failure set smaller than
	// SpareTips + ECCTips + 1 is always recoverable (spares soak the
	// first SpareTips failures regardless of placement).
	f := func(seed int64) bool {
		cfg := Config{Tips: 660, DataTips: 64, ECCTips: 2, SpareTips: 0}
		a, err := NewArray(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		// Two failures anywhere are always recoverable (ECC = 2).
		ids := rng.Perm(cfg.Tips)[:2]
		for _, id := range ids {
			if _, err := a.FailTip(id); err != nil {
				return false
			}
		}
		return !a.DataLoss()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSeekErrorPenalties(t *testing.T) {
	// Expected disk penalty with mid-rotation retry lands near re-seek +
	// half rotation; MEMS penalty is turnarounds + short seek, an order
	// of magnitude lower (§6.1.3).
	disk, err := DiskSeekErrorPenalty(1.5, 5.985, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if disk < 4 || disk > 5 {
		t.Errorf("disk seek-error penalty = %g ms", disk)
	}
	mems, err := MEMSSeekErrorPenalty(0.07, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mems < 0.2 || mems > 0.5 {
		t.Errorf("MEMS seek-error penalty = %g ms", mems)
	}
	if mems*5 > disk {
		t.Errorf("MEMS penalty %g should be far below disk %g", mems, disk)
	}
	for i, f := range []func() error{
		func() error { _, err := DiskSeekErrorPenalty(1, 5, 1.5); return err },
		func() error { _, err := MEMSSeekErrorPenalty(0.07, 0.1, 3); return err },
		func() error { _, err := MEMSSeekErrorPenalty(0.07, 0.1, -1); return err },
	} {
		if err := f(); err == nil {
			t.Errorf("case %d: expected an error for out-of-range penalty arguments", i)
		}
	}
}
