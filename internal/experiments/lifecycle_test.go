package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"memsim/internal/fault"
	"memsim/internal/runner"
)

// mttdlCSV renders the mttdl artifact for byte comparison.
func mttdlCSV(t *testing.T, p Params) string {
	t.Helper()
	var buf bytes.Buffer
	for _, tb := range mustRun(mttdlPlan(p)) {
		tb.CSV(&buf)
	}
	return buf.String()
}

// rewindCheckpoint rewrites every saved mttdl job state back to trial k,
// recomputing the partial sums trial by trial exactly as the experiment
// does — the state a run interrupted after k trials would have saved.
func rewindCheckpoint(t *testing.T, path string, p Params, k int) {
	t.Helper()
	ck, err := runner.OpenCheckpoint(path, "mttdl", p)
	if err != nil {
		t.Fatal(err)
	}
	mttfMs := float64(DefaultMTTFHours) * 3600 * 1000
	levels := []struct {
		name    string
		members int
	}{
		{"mirror", rebuildMirrorCfg().Members},
		{"parity", rebuildParityCfg().Members},
	}
	for _, lv := range levels {
		for _, dev := range []string{"MEMS", "Atlas 10K"} {
			label := fmt.Sprintf("mttdl %s %s", dev, lv.name)
			var st mttdlState
			if !ck.Load(label, &st) {
				t.Fatalf("checkpoint has no state for %q", label)
			}
			rewound := mttdlState{WindowS: st.WindowS}
			for i := 0; i < k; i++ {
				seed := runner.DeriveSeed(p.Seed, fmt.Sprintf("mttdl %s trial %d", lv.name, i))
				s := fault.NewLifetimeSampler(mttfMs, seed)
				ms, lost := fault.TimeToDataLoss(s, lv.members, st.WindowS*1000, mttdlMaxCycles)
				rewound.SumMs += ms
				if !lost {
					rewound.Censored++
				}
				rewound.Trial = i + 1
			}
			if err := ck.Save(label, rewound); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestMTTDLCheckpointResumeByteIdentical(t *testing.T) {
	// The acceptance test for checkpoint/resume: an mttdl run
	// interrupted mid-chain and resumed must produce output
	// byte-identical to an uninterrupted run. The per-trial derived seed
	// sub-streams are what make this hold — trial i draws the same
	// lifetimes whether or not trials [0,i) ran in the same process.
	p := tiny()
	p.Requests = 600 // one failover run per (device, level) measures the window
	p.Warmup = 75
	p.Trials = 500

	baseline := mttdlCSV(t, p) // no checkpoint at all

	ckp := p
	ckp.Checkpoint = filepath.Join(t.TempDir(), "mttdl.ckpt")
	full := mttdlCSV(t, ckp)
	if full != baseline {
		t.Fatal("checkpointed run differs from uncheckpointed run")
	}

	// Rewind the checkpoint to trial 123 — the file an interrupted run
	// leaves behind — and resume.
	rewindCheckpoint(t, ckp.Checkpoint, ckp, 123)
	resumed := mttdlCSV(t, ckp)
	if resumed != baseline {
		t.Fatal("interrupted-then-resumed run is not byte-identical to the uninterrupted run")
	}
}

func TestMTTDLCheckpointRejectsChangedParams(t *testing.T) {
	p := tiny()
	p.Trials = 50
	p.Checkpoint = filepath.Join(t.TempDir(), "mttdl.ckpt")
	if _, _, err := RunEach(runner.Sequential(), []string{"mttdl"}, p); err != nil {
		t.Fatal(err)
	}
	q := p
	q.Seed = 999 // a different answer — resuming would be silently wrong
	outs, _, err := RunEach(runner.Sequential(), []string{"mttdl"}, q)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err == nil {
		t.Fatal("resume under changed parameters succeeded")
	}
	if !bytes.Contains([]byte(outs[0].Err.Error()), []byte("different parameters")) {
		t.Errorf("err = %v, want the parameter-binding refusal", outs[0].Err)
	}
}

func TestRunEachMixedOutcomes(t *testing.T) {
	// Under a 1 ns per-job deadline every simulating experiment is
	// cancelled, but table1 (pure closed-form arithmetic, no simulation
	// loop) still assembles: RunEach isolates failures per experiment
	// instead of failing the batch.
	ctx := &runner.Context{Workers: 2, Timeout: time.Nanosecond}
	outs, sum, err := RunEach(ctx, []string{"fig5", "table1"}, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err == nil {
		t.Error("fig5 survived a 1 ns deadline")
	} else if !errors.Is(outs[0].Err, context.DeadlineExceeded) {
		t.Errorf("fig5 err = %v, want DeadlineExceeded", outs[0].Err)
	}
	if outs[0].Tables != nil {
		t.Error("failed experiment assembled tables")
	}
	if outs[1].Err != nil {
		t.Errorf("table1 failed: %v", outs[1].Err)
	}
	if len(outs[1].Tables) == 0 {
		t.Error("table1 assembled no tables")
	}
	if sum.Cancelled == 0 {
		t.Error("summary counted no cancelled jobs")
	}
}

func TestRunEachBatchCancelled(t *testing.T) {
	// A pre-cancelled batch context fails every experiment with the
	// cancellation cause — the path a SIGINT before the pool starts
	// takes.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx := &runner.Context{Workers: 1, Ctx: cctx}
	outs, _, err := RunEach(ctx, []string{"table1"}, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err == nil || !errors.Is(outs[0].Err, context.Canceled) {
		t.Errorf("err = %v, want Canceled", outs[0].Err)
	}
}
