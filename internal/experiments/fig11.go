package experiments

import (
	"fmt"

	"memsim/internal/core"
	"memsim/internal/layout"
	"memsim/internal/runner"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

func init() { register("fig11", fig11Plan) }

// organPipeSmallFrac sizes the organ-pipe small core. The §5.3 workload's
// small population is placed dead-center; 4% of capacity matches the
// columnar layout's center column so the X-locality comparison is fair.
const organPipeSmallFrac = 0.04

// Fig11 reproduces Fig. 11: the bipartite workload (89% 4 KB, 11%
// 400 KB reads) under four layouts on the default MEMS device, the
// zero-settle MEMS device, and the Atlas 10K (simple vs. organ pipe).
// Expected shape (§5.3): all placement schemes beat simple by 13–20%;
// on MEMS-no-settle the subregioned layout — the only one that optimizes
// Y as well as X — wins by a further margin, showing that the optimal
// disk layout is not optimal for MEMS-based storage.
func Fig11(p Params) []Table { return mustRun(fig11Plan(p)) }

func fig11Plan(p Params) *Plan {
	// Placers are static LBN→position maps built against the shared
	// derived geometry; each one is captured by exactly one job, which
	// runs it against that job's own fresh device instance.
	type group struct {
		device  string
		dev     core.DeviceFactory
		placers []layout.Placer
	}
	g1 := newMEMS(1).Geometry()
	g0 := newMEMS(0).Geometry()
	dd := newDisk()
	groups := []group{
		{"MEMS", memsFactory(1), []layout.Placer{
			layout.NewMEMSSimple(g1),
			layout.NewMEMSOrganPipe(g1, organPipeSmallFrac),
			layout.NewMEMSColumnar(g1, 25),
			layout.NewMEMSSubregioned(g1, 5),
		}},
		{"MEMS-nosettle", memsFactory(0), []layout.Placer{
			layout.NewMEMSSimple(g0),
			layout.NewMEMSOrganPipe(g0, organPipeSmallFrac),
			layout.NewMEMSColumnar(g0, 25),
			layout.NewMEMSSubregioned(g0, 5),
		}},
		{"Atlas10K", diskFactory, []layout.Placer{
			layout.NewDiskSimple(dd),
			layout.NewDiskOrganPipe(dd, organPipeSmallFrac),
		}},
	}

	jobsOf := make([][]*runner.Job, len(groups))
	var jobs []*runner.Job
	for gi, grp := range groups {
		jobsOf[gi] = make([]*runner.Job, len(grp.placers))
		for pi, pl := range grp.placers {
			j := &runner.Job{
				Label:  fmt.Sprintf("fig11 %s %s", grp.device, pl.Name()),
				Seed:   p.Seed,
				Device: grp.dev,
				Source: func(core.Device) workload.Source {
					src := workload.Source(workload.NewBipartite(workload.DefaultBipartite(p.Seed), pl))
					if p.ThinkMs > 0 {
						// Multiprogrammed closed loop: each terminal
						// thinks (exponential mean -think-ms) before its
						// next request. Off by default — the paper's
						// regime is strictly back-to-back.
						src = workload.ThinkTime(src, workload.ExpThink(p.ThinkMs),
							runner.DeriveSeed(p.Seed, "thinktime"))
					}
					return src
				},
				Options: sim.Options{MaxRequests: p.ClosedRequests},
			}
			jobsOf[gi][pi] = j
			jobs = append(jobs, j)
		}
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID:      "fig11",
				Title:   "average service time by layout scheme (ms); improvement vs. simple",
				Columns: []string{"device", "layout", "service(ms)", "vs. simple"},
			}
			for gi, grp := range groups {
				base := 0.0
				for pi, pl := range grp.placers {
					mean := jobsOf[gi][pi].Result().Service.Mean()
					if pi == 0 {
						base = mean
					}
					t.AddRow(grp.device, pl.Name(), ms(mean), fmt.Sprintf("%+.1f%%", (1-mean/base)*100))
				}
			}
			return []Table{t}
		},
	}
}
