package experiments

import (
	"fmt"
	"math/rand"

	"memsim/internal/core"
	"memsim/internal/power"
)

func init() { register("startup", Startup) }

// Startup quantifies §6.3 (extension): MEMS-based storage initializes in
// ≈0.5 ms with no inrush surge, so a shelf of devices can start
// concurrently; disks take seconds to spin up and are serialized to
// avoid power spikes. The second table measures the synchronous-write
// penalty the same section discusses: file systems and databases that
// must write metadata synchronously pay the device's small-write latency
// on the critical path.
func Startup(p Params) []Table {
	t := Table{
		ID:      "startup",
		Title:   "time until a shelf of devices is ready (ms)",
		Columns: []string{"devices", "MEMS (concurrent)", "mobile disk (serialized)", "server disk (serialized)"},
	}
	memsR := power.MEMSModel().RestartMs
	mobR := power.MobileDiskModel().RestartMs
	srvR := power.ServerDiskModel().RestartMs
	for _, n := range []int{1, 4, 16} {
		// No surge → all MEMS devices start together; spike avoidance →
		// disks spin up one at a time (§6.3).
		t.AddRow(fmt.Sprintf("%d", n),
			ms(memsR),
			ms(float64(n)*mobR),
			ms(float64(n)*srvR))
	}

	s := Table{
		ID:      "startup-sync",
		Title:   "synchronous small-write latency (1 KB metadata updates, ms)",
		Columns: []string{"device", "mean", "max"},
	}
	trials := p.Trials
	if trials > 1000 {
		trials = 1000
	}
	for _, dev := range []core.Device{newMEMS(1), newDisk()} {
		rng := rand.New(rand.NewSource(p.Seed))
		now, sum, max := 0.0, 0.0, 0.0
		for i := 0; i < trials; i++ {
			lbn := rng.Int63n(dev.Capacity() - 2)
			svc := dev.Access(&core.Request{Op: core.Write, LBN: lbn, Blocks: 2}, now)
			now += svc
			sum += svc
			if svc > max {
				max = svc
			}
		}
		s.AddRow(dev.Name(), ms(sum/float64(trials)), ms(max))
	}
	return []Table{t, s}
}
