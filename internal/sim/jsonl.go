package sim

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// jsonlPhases is the phase block of a JSONL trace record; field order is
// the emission order (encoding/json preserves struct order, keeping the
// output deterministic).
type jsonlPhases struct {
	SeekMs       float64 `json:"seek_ms"`
	SettleMs     float64 `json:"settle_ms"`
	TurnaroundMs float64 `json:"turnaround_ms"`
	TransferMs   float64 `json:"transfer_ms"`
	OverheadMs   float64 `json:"overhead_ms"`
	RecoveryMs   float64 `json:"recovery_ms"`
	ServiceMs    float64 `json:"service_ms"`
}

// jsonlRecord is one JSONL trace line. Optional blocks (phases, the
// completion summary) appear only on the event kinds that carry them;
// the schema is documented in README.md.
type jsonlRecord struct {
	Event     string       `json:"event"`
	TimeMs    float64      `json:"t_ms"`
	Run       string       `json:"run,omitempty"`
	Dev       int          `json:"dev,omitempty"`
	Op        string       `json:"op"`
	LBN       int64        `json:"lbn"`
	Blocks    int          `json:"blocks"`
	ArrivalMs float64      `json:"arrival_ms"`
	Queue     int          `json:"queue,omitempty"`
	Pace      float64      `json:"pace,omitempty"`
	Phases    *jsonlPhases `json:"phases,omitempty"`
	Complete  *jsonlDone   `json:"summary,omitempty"`
}

// jsonlDone is the completion summary block.
type jsonlDone struct {
	ResponseMs float64 `json:"response_ms"`
	ServiceMs  float64 `json:"service_ms"`
	Measured   bool    `json:"measured"`
	Retries    int     `json:"retries,omitempty"`
	Requeues   int     `json:"requeues,omitempty"`
	Failed     bool    `json:"failed,omitempty"`
	Degraded   bool    `json:"degraded,omitempty"`
}

// JSONLProbe is a Probe that writes one JSON object per lifecycle event
// to an io.Writer — the trace format cmd/memstrace replays into and
// cmd/memsbench's -trace flag emits. It is safe for concurrent use (the
// parallel experiment runner shares one instance across jobs), buffers
// internally, and latches the first write error rather than failing
// mid-simulation; call Flush to drain the buffer and surface that error.
type JSONLProbe struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLProbe returns a probe writing JSONL records to w.
func NewJSONLProbe(w io.Writer) *JSONLProbe {
	return &JSONLProbe{w: bufio.NewWriter(w)}
}

// Observe implements Probe.
func (p *JSONLProbe) Observe(ev ProbeEvent) {
	rec := jsonlRecord{
		Event:  ev.Kind.String(),
		TimeMs: ev.Time,
		Run:    ev.Run,
		Dev:    ev.Dev,
		Queue:  ev.Queue,
		Pace:   ev.Pace,
	}
	// Volume lifecycle events (device-fail, rebuild-start/done) carry no
	// request.
	if ev.Req != nil {
		rec.Op = ev.Req.Op.String()
		rec.LBN = ev.Req.LBN
		rec.Blocks = ev.Req.Blocks
		rec.ArrivalMs = ev.Req.Arrival
	}
	switch ev.Kind {
	case EventService, EventRetry:
		bd := ev.Breakdown
		rec.Phases = &jsonlPhases{
			SeekMs:       bd.Seek,
			SettleMs:     bd.Settle,
			TurnaroundMs: bd.Turnaround,
			TransferMs:   bd.Transfer,
			OverheadMs:   bd.Overhead,
			RecoveryMs:   bd.Recovery,
			ServiceMs:    bd.ServiceMs,
		}
	case EventComplete:
		rec.Complete = &jsonlDone{
			ResponseMs: ev.Req.ResponseTime(),
			ServiceMs:  ev.Req.Phases.ServiceMs,
			Measured:   ev.Measured,
			Retries:    ev.Req.Retries,
			Requeues:   ev.Req.Requeues,
			Failed:     ev.Req.Failed,
			Degraded:   ev.Req.Degraded,
		}
	}
	line, err := json.Marshal(rec)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	if err != nil {
		// Unreachable for the plain struct above, but latch it anyway.
		p.err = err
		return
	}
	if _, err := p.w.Write(line); err != nil {
		p.err = err
		return
	}
	if err := p.w.WriteByte('\n'); err != nil {
		p.err = err
	}
}

// Flush drains the buffer and returns the first error encountered by
// any write (or the flush itself).
func (p *JSONLProbe) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.w.Flush(); err != nil && p.err == nil {
		p.err = err
	}
	return p.err
}

var _ Probe = (*JSONLProbe)(nil)
