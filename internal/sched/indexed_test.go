package sched

import (
	"math/rand"
	"testing"

	"memsim/internal/core"
	"memsim/internal/mems"
)

// countingCost wraps a cost model and counts evaluations, so tests can
// pin the indexed variants' bounded per-dispatch work.
type countingCost struct {
	calls int
	inner core.CostModel
}

func (c *countingCost) cost(d core.Device, r *core.Request, now float64) float64 {
	c.calls++
	return c.inner(d, r, now)
}

// TestIndexedSortedInsertion pins the LBN-sorted queue invariant,
// including stable ordering among equal LBNs (FIFO by arrival).
func TestIndexedSortedInsertion(t *testing.T) {
	s := NewIndexedSPTF()
	rng := rand.New(rand.NewSource(7))
	var want []*core.Request
	for i := 0; i < 200; i++ {
		r := req(int64(rng.Intn(40))) // few distinct LBNs force ties
		r.Arrival = float64(i)
		s.Add(r)
		want = append(want, r)
	}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	prev := s.q[0]
	for _, r := range s.q[1:] {
		if r.LBN < prev.LBN {
			t.Fatalf("queue not LBN-sorted: %d after %d", r.LBN, prev.LBN)
		}
		if r.LBN == prev.LBN && r.Arrival < prev.Arrival {
			t.Fatalf("equal-LBN requests reordered: arrival %g after %g",
				r.Arrival, prev.Arrival)
		}
		prev = r
	}
}

// TestIndexedFullWindowMatchesSPTF checks the correctness anchor: with
// a window at least the queue depth, the indexed variant's pick always
// attains the same minimum cost a full SPTF scan would (picks may
// differ only on exact cost ties, where both disciplines are
// individually deterministic).
func TestIndexedFullWindowMatchesSPTF(t *testing.T) {
	d := mems.MustDevice(mems.DefaultConfig())
	rng := rand.New(rand.NewSource(21))
	s := NewIndexedCost("wide", core.AccessCost, 512)
	var pending []*core.Request
	for i := 0; i < 64; i++ {
		r := req(rng.Int63n(d.Capacity() - 8))
		s.Add(r)
		pending = append(pending, r)
	}
	now := 0.0
	for s.Len() > 0 {
		// Brute-force the minimum cost over every pending request before
		// the scheduler dispatches (costs depend only on device state,
		// which Next does not touch).
		min := -1.0
		for _, r := range pending {
			if c := core.AccessCost(d, r, now); min < 0 || c < min {
				min = c
			}
		}
		r := s.Next(d, now)
		if got := core.AccessCost(d, r, now); got != min {
			t.Fatalf("indexed pick cost %g, full-scan minimum %g", got, min)
		}
		for i, p := range pending {
			if p == r {
				pending = append(pending[:i], pending[i+1:]...)
				break
			}
		}
		now += d.Access(r, now)
	}
}

// TestIndexedWindowBoundsCostCalls pins the point of the index: one
// dispatch evaluates the cost model at most 2·window times however
// deep the queue is.
func TestIndexedWindowBoundsCostCalls(t *testing.T) {
	d := mems.MustDevice(mems.DefaultConfig())
	const window, depth = 8, 512
	cc := &countingCost{inner: core.AccessCost}
	s := NewIndexedCost("bounded", cc.cost, window)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < depth; i++ {
		s.Add(req(rng.Int63n(d.Capacity() - 8)))
	}
	for i := 0; i < 100; i++ {
		cc.calls = 0
		if s.Next(d, 0) == nil {
			t.Fatal("queue drained early")
		}
		if cc.calls > 2*window {
			t.Fatalf("dispatch %d evaluated the cost model %d times, want ≤ %d",
				i, cc.calls, 2*window)
		}
	}
}

// TestIndexedDeterminism replays the same add/dispatch interleaving
// into two instances and requires identical dispatch sequences.
func TestIndexedDeterminism(t *testing.T) {
	d := mems.MustDevice(mems.DefaultConfig())
	run := func() []int64 {
		d.Reset()
		s := NewIndexedSettleAware()
		rng := rand.New(rand.NewSource(99))
		var out []int64
		now := 0.0
		for i := 0; i < 300; i++ {
			s.Add(req(rng.Int63n(d.Capacity() - 8)))
			if i%3 == 2 {
				r := s.Next(d, now)
				out = append(out, r.LBN)
				now += d.Access(r, now)
			}
		}
		for s.Len() > 0 {
			r := s.Next(d, now)
			out = append(out, r.LBN)
			now += d.Access(r, now)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("dispatch counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dispatch %d differs: LBN %d vs %d", i, a[i], b[i])
		}
	}
}

// TestIndexedConstructorPanics pins the constructor contract.
func TestIndexedConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nil cost":    func() { NewIndexedCost("x", nil, 4) },
		"zero window": func() { NewIndexedCost("x", core.AccessCost, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
