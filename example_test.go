package memsim_test

import (
	"fmt"
	"math/rand"

	"memsim"
)

// ExampleSimulate runs the paper's random workload over the Table 1
// device under SPTF scheduling — the minimal end-to-end use of the
// library.
func ExampleSimulate() {
	dev, err := memsim.NewMEMSDevice(memsim.DefaultMEMSConfig())
	if err != nil {
		panic(err)
	}
	s, err := memsim.NewScheduler("SPTF")
	if err != nil {
		panic(err)
	}
	src := memsim.NewRandomWorkload(500, dev.SectorSize(), dev.Capacity(), 5000, 42)
	res := memsim.Simulate(dev, s, src, memsim.SimOptions{Warmup: 500})
	fmt.Printf("light load on %s: sub-millisecond mean response: %v\n",
		dev.Name(), res.Response.Mean() < 1.5)
	// Output:
	// light load on MEMS: sub-millisecond mean response: true
}

// ExampleNewMEMSDevice shows the geometry that falls out of the paper's
// Table 1 parameters.
func ExampleNewMEMSDevice() {
	dev, err := memsim.NewMEMSDevice(memsim.DefaultMEMSConfig())
	if err != nil {
		panic(err)
	}
	g := dev.Geometry()
	fmt.Printf("cylinders: %d\n", g.Cylinders)
	fmt.Printf("sectors per track: %d\n", g.SectorsPerTrack)
	fmt.Printf("streaming: %.1f MB/s\n", g.StreamBandwidth()/1e6)
	// Output:
	// cylinders: 2500
	// sectors per track: 540
	// streaming: 79.6 MB/s
}

// ExampleNewDeviceArray builds the §6.2 RAID-5 array and issues one
// small write — a read-modify-write that costs the MEMS array only a
// turnaround between phases.
func ExampleNewDeviceArray() {
	members := make([]memsim.Device, 4)
	for i := range members {
		d, err := memsim.NewMEMSDevice(memsim.DefaultMEMSConfig())
		if err != nil {
			panic(err)
		}
		members[i] = d
	}
	arr, err := memsim.NewDeviceArray(memsim.ArrayConfig{Level: memsim.RAID5, StripeUnit: 8}, members)
	if err != nil {
		panic(err)
	}
	svc := arr.Access(&memsim.Request{Op: memsim.Write, LBN: 0, Blocks: 8}, 0)
	fmt.Printf("RAID-5 small write under 2 ms: %v\n", svc < 2)
	// Output:
	// RAID-5 small write under 2 ms: true
}

// ExampleLossProbability reproduces §6.1's contrast: one head failure
// kills a disk, while the striped + ECC + spare-tip MEMS device shrugs
// off dozens of tip failures.
func ExampleLossProbability() {
	diskLike := memsim.FaultConfig{Tips: 6400, DataTips: 64, ECCTips: 0, SpareTips: 0}
	p, err := memsim.LossProbability(diskLike, 1, 200, newRand())
	if err != nil {
		panic(err)
	}
	fmt.Printf("disk-like, 1 failure: P(loss) = %.1f\n", p)
	p, err = memsim.LossProbability(memsim.DefaultFaultConfig(), 50, 200, newRand())
	if err != nil {
		panic(err)
	}
	fmt.Printf("MEMS default, 50 failures: P(loss) = %.1f\n", p)
	// Output:
	// disk-like, 1 failure: P(loss) = 1.0
	// MEMS default, 50 failures: P(loss) = 0.0
}

// ExampleRunExperiment regenerates one paper artifact programmatically.
func ExampleRunExperiment() {
	tables, err := memsim.RunExperiment("table2", memsim.QuickExperimentParams())
	if err != nil {
		panic(err)
	}
	fmt.Printf("table2 produced %d table(s) with %d rows\n", len(tables), len(tables[0].Rows))
	// Output:
	// table2 produced 1 table(s) with 4 rows
}

// newRand gives the examples a deterministic randomness source.
func newRand() *rand.Rand { return rand.New(rand.NewSource(7)) }
