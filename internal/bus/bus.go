// Package bus models the shared host interconnect that DiskSim places
// between controller and devices, and whose rate mismatch with the media
// is the reason §2.4.11's speed-matching buffers exist. A Bus has a
// fixed per-command overhead and a data rate; devices attached to the
// same bus contend for it, so a shelf of MEMS-based storage devices —
// each streaming 79.6 MB/s — saturates a SCSI-era 160 MB/s bus at two
// to three sleds.
//
// Timing model per request: the command phase occupies the bus for
// CommandMs, the device then operates, and the data transfer occupies
// the bus for bytes/rate, pipelined with the media transfer through the
// device's speed-matching buffer (completion is no earlier than either
// the media or the bus finishing).
package bus

import (
	"fmt"

	"memsim/internal/core"
)

// Config parameterizes the interconnect.
type Config struct {
	// MBPerSec is the bus data rate (Ultra160 SCSI: 160).
	MBPerSec float64
	// CommandMs is the arbitration + command transfer time per request.
	CommandMs float64
}

// Ultra160 returns an Ultra160-SCSI-like configuration.
func Ultra160() Config { return Config{MBPerSec: 160, CommandMs: 0.01} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MBPerSec <= 0 {
		return fmt.Errorf("bus: rate must be positive, got %g", c.MBPerSec)
	}
	if c.CommandMs < 0 {
		return fmt.Errorf("bus: negative command time %g", c.CommandMs)
	}
	return nil
}

// Bus is one shared interconnect. Attach as many devices as it should
// carry; all attached devices serialize their bus phases.
type Bus struct {
	cfg    Config
	freeAt float64 // the bus is occupied until this time
	busyMs float64 // total occupied time (for utilization)
}

// New builds a bus; it panics on invalid configuration.
func New(cfg Config) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Bus{cfg: cfg}
}

// Reset clears the bus schedule.
func (b *Bus) Reset() { b.freeAt, b.busyMs = 0, 0 }

// BusyMs returns the cumulative time the bus was occupied.
func (b *Bus) BusyMs() float64 { return b.busyMs }

// xferMs returns the bus time for n bytes.
func (b *Bus) xferMs(bytes int64) float64 {
	return float64(bytes) / (b.cfg.MBPerSec * 1e3) // MB/s = bytes/ms ÷ 1e3
}

// claim occupies the bus for dur starting no earlier than at, returning
// the interval start.
func (b *Bus) claim(at, dur float64) float64 {
	start := at
	if b.freeAt > start {
		start = b.freeAt
	}
	b.freeAt = start + dur
	b.busyMs += dur
	return start
}

// Attached is a device on a bus; it implements core.Device.
type Attached struct {
	bus   *Bus
	inner core.Device
}

var _ core.Device = (*Attached)(nil)

// Attach puts dev on the bus.
func (b *Bus) Attach(dev core.Device) *Attached { return &Attached{bus: b, inner: dev} }

// Name implements core.Device.
func (a *Attached) Name() string { return a.inner.Name() + "+bus" }

// Capacity implements core.Device.
func (a *Attached) Capacity() int64 { return a.inner.Capacity() }

// SectorSize implements core.Device.
func (a *Attached) SectorSize() int { return a.inner.SectorSize() }

// Reset implements core.Device. It does not reset the shared bus (other
// devices may be mid-flight); call Bus.Reset between experiments.
func (a *Attached) Reset() { a.inner.Reset() }

// Access implements core.Device.
func (a *Attached) Access(req *core.Request, now float64) float64 {
	cmdStart := a.bus.claim(now, a.bus.cfg.CommandMs)
	devStart := cmdStart + a.bus.cfg.CommandMs
	mediaDone := devStart + a.inner.Access(req, devStart)
	// Data phase: pipelined with the media through the speed-matching
	// buffer — the transfer cannot finish before either the media or a
	// bus slot of the right length.
	xfer := a.bus.xferMs(req.Bytes(a.inner.SectorSize()))
	busStart := a.bus.claim(devStart, xfer)
	done := busStart + xfer
	if done < mediaDone {
		done = mediaDone
	}
	return done - now
}

// EstimateAccess implements core.Device: the device estimate plus the
// command and transfer times assuming an idle bus (a lower bound under
// contention).
func (a *Attached) EstimateAccess(req *core.Request, now float64) float64 {
	est := a.inner.EstimateAccess(req, now+a.bus.cfg.CommandMs)
	xfer := a.bus.xferMs(req.Bytes(a.inner.SectorSize()))
	total := a.bus.cfg.CommandMs + est
	if xfer > est {
		total = a.bus.cfg.CommandMs + xfer
	}
	wait := a.bus.freeAt - now
	if wait < 0 {
		wait = 0
	}
	return wait + total
}
