package experiments

import (
	"math/rand"

	"memsim/internal/cache"
	"memsim/internal/core"
)

func init() { register("cache", CacheStudy) }

// CacheStudy quantifies §2.4.11 (extension; no paper figure): the
// on-device speed-matching buffer matters for sequential streams
// (read-ahead turns per-request positioning into streaming) and is
// nearly worthless for random traffic, whose reuse belongs in host
// memory. Sequential 64 KB scans and random 4 KB reads run with the
// buffer enabled and disabled.
func CacheStudy(p Params) []Table {
	t := Table{
		ID:      "cache",
		Title:   "speed-matching buffer (4 MB, track read-ahead) on the MEMS device",
		Columns: []string{"workload", "buffer", "mean service(ms)", "hit rate", "MB/s"},
	}
	n := p.ClosedRequests
	if n > 2000 {
		n = 2000
	}

	for _, seq := range []bool{true, false} {
		label := "sequential 64 KB scan"
		blocks := 128
		if !seq {
			label = "random 4 KB reads"
			blocks = 8
		}
		for _, mode := range []string{"off", "fixed", "adaptive"} {
			dev := newMEMS(1)
			var d core.Device = dev
			var c *cache.Cache
			if mode != "off" {
				cfg := cache.DefaultConfig()
				cfg.AdaptivePrefetch = mode == "adaptive"
				c = cache.New(dev, cfg)
				d = c
			}
			rng := rand.New(rand.NewSource(p.Seed))
			now, sum := 0.0, 0.0
			for i := 0; i < n; i++ {
				lbn := int64(i * blocks)
				if !seq {
					lbn = rng.Int63n(d.Capacity() - int64(blocks))
				}
				svc := d.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: blocks}, now)
				now += svc
				sum += svc
			}
			mean := sum / float64(n)
			bw := float64(blocks) * 512 / (mean / 1000) / 1e6
			hit := "—"
			if c != nil {
				hit = f2(c.HitRate())
			}
			t.AddRow(label, mode, ms(mean), hit, f2(bw))
		}
	}
	return []Table{t}
}
