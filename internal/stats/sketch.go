package stats

import "math"

// Sketch is a bounded-memory quantile estimator over a stream of
// observations — the constant-memory alternative to Sample for
// million-request runs, in the tradition of DDSketch (Masson, Rim &
// Lee) and t-digest (Dunning & Ertl).
//
// The estimator is a logarithmically-bucketed histogram: an observation
// x > 0 lands in bucket ⌈log_γ x⌉, so every bucket spans a fixed ratio
// γ of values and any quantile read back from a bucket midpoint carries
// a relative error of at most α = (γ−1)/(γ+1) (≈1% at the default
// geometry). Memory is proportional to the logarithm of the observed
// dynamic range — ~115 buckets per decade at α = 1% — and independent
// of the observation count; a hard cap (maxSketchBuckets) collapses the
// smallest-magnitude buckets in the astronomically unlikely case the
// range outgrows it, so the worst case is O(1) by construction, not
// just in expectation.
//
// Zeros (|x| ≤ sketchMinValue) are counted exactly in a dedicated slot,
// which matters here: per-phase service distributions are full of exact
// zeros (requests that never seek, never settle). Negative observations
// get a mirrored store — breakdown residues can dip a hair below zero —
// so Percentile is total over the whole real line.
//
// The zero value is an empty sketch ready to use; determinism is
// absolute (no randomness, no timing), so sketched runs replay
// byte-identically like everything else in the simulator.
type Sketch struct {
	count int64
	zero  int64 // observations with |x| ≤ sketchMinValue
	sum   float64
	min   float64
	max   float64
	pos   sketchStore // x > sketchMinValue, keyed on x
	neg   sketchStore // x < −sketchMinValue, keyed on −x
}

const (
	// sketchAlpha is the guaranteed relative accuracy of every quantile
	// estimate: the bucket geometry γ = (1+α)/(1−α) keeps each bucket's
	// midpoint within α of every value the bucket covers.
	sketchAlpha = 0.01
	// sketchMinValue is the magnitude below which observations are
	// counted as exact zeros instead of being bucketed (log buckets
	// cannot represent 0). 1e-9 ms is far below any simulated timing.
	sketchMinValue = 1e-9
	// maxSketchBuckets caps one store's bucket slice. At α = 1% it
	// covers ~35 decades of dynamic range before the collapse path
	// triggers, so in practice it is a safety net, not a working limit.
	maxSketchBuckets = 4096
)

// sketchGamma and sketchInvLogGamma derive the bucket geometry from
// sketchAlpha once; they are effectively constants.
var (
	sketchGamma       = (1 + sketchAlpha) / (1 - sketchAlpha)
	sketchInvLogGamma = 1 / math.Log(sketchGamma)
)

// sketchKey maps a magnitude v > sketchMinValue to its bucket key
// ⌈log_γ v⌉.
func sketchKey(v float64) int {
	return int(math.Ceil(math.Log(v) * sketchInvLogGamma))
}

// sketchValue returns the representative value for key k: the midpoint
// 2γ^k/(γ+1) of the bucket's value interval (γ^(k−1), γ^k], which is
// within α of every value in the interval.
func sketchValue(k int) float64 {
	return 2 * math.Pow(sketchGamma, float64(k)) / (sketchGamma + 1)
}

// sketchStore is one sign's bucket array: buckets[i] counts keys
// minKey+i. It grows toward both ends on demand and collapses its
// lowest keys into one bucket at the hard cap.
type sketchStore struct {
	minKey  int
	buckets []int64
	count   int64
}

// add tallies n observations with the given key.
func (s *sketchStore) add(key int, n int64) {
	s.count += n
	if len(s.buckets) == 0 {
		s.buckets = append(s.buckets, n)
		s.minKey = key
		return
	}
	if key < s.minKey {
		if grow := s.minKey - key; len(s.buckets)+grow > maxSketchBuckets {
			// Below-cap keys collapse into the lowest retained bucket:
			// the error there becomes one-sided (values reported high),
			// but only once the dynamic range exceeds ~γ^maxSketchBuckets.
			s.buckets[0] += n
			return
		}
		grown := make([]int64, len(s.buckets)+(s.minKey-key))
		copy(grown[s.minKey-key:], s.buckets)
		s.buckets = grown
		s.minKey = key
		s.buckets[0] += n
		return
	}
	if i := key - s.minKey; i < len(s.buckets) {
		s.buckets[i] += n
		return
	}
	need := key - s.minKey + 1
	if need > maxSketchBuckets {
		// Collapse from below to make room at the top: high quantiles
		// keep their guarantee, the collapsed low tail goes one-sided.
		drop := need - maxSketchBuckets
		var merged int64
		for i := 0; i < drop && i < len(s.buckets); i++ {
			merged += s.buckets[i]
		}
		rest := s.buckets[min(drop, len(s.buckets)):]
		grown := make([]int64, maxSketchBuckets)
		copy(grown, rest)
		grown[0] += merged
		s.buckets = grown
		s.minKey += drop
	} else {
		grown := make([]int64, need)
		copy(grown, s.buckets)
		s.buckets = grown
	}
	s.buckets[key-s.minKey] += n
}

// merge folds other into s, bucket by bucket.
func (s *sketchStore) merge(other *sketchStore) {
	for i, c := range other.buckets {
		if c > 0 {
			s.add(other.minKey+i, c)
		}
	}
}

// Add folds one observation into the sketch.
func (s *Sketch) Add(x float64) {
	if s.count == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.count++
	s.sum += x
	switch {
	case x > sketchMinValue:
		s.pos.add(sketchKey(x), 1)
	case x < -sketchMinValue:
		s.neg.add(sketchKey(-x), 1)
	default:
		s.zero++
	}
}

// N reports the number of observations added.
func (s *Sketch) N() int64 { return s.count }

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the smallest observation, or 0 if empty.
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 if empty.
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Percentile returns an estimate of the p-th percentile (0 ≤ p ≤ 100)
// with relative error at most sketchAlpha, using the same closest-rank
// convention as Sample.Percentile. Estimates are clamped into the exact
// [Min, Max] envelope. Returns 0 if empty.
func (s *Sketch) Percentile(p float64) float64 {
	if s.count == 0 {
		return 0
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	// The observation with rank r (0-based) in the cumulative order:
	// negatives from most to least negative, zeros, then positives.
	rank := int64(p / 100 * float64(s.count-1))
	v, ok := s.rankValue(rank)
	if !ok {
		return s.max
	}
	// Clamp into the exact envelope: the bucket midpoint can spill a
	// hair past the true extremes.
	if v < s.min {
		v = s.min
	}
	if v > s.max {
		v = s.max
	}
	return v
}

// rankValue locates the 0-based rank in the cumulative bucket order.
func (s *Sketch) rankValue(rank int64) (float64, bool) {
	// Negative store: highest key = most negative value comes first.
	cum := int64(0)
	for i := len(s.neg.buckets) - 1; i >= 0; i-- {
		cum += s.neg.buckets[i]
		if rank < cum {
			return -sketchValue(s.neg.minKey + i), true
		}
	}
	cum += s.zero
	if rank < cum {
		return 0, true
	}
	for i, c := range s.pos.buckets {
		cum += c
		if rank < cum {
			return sketchValue(s.pos.minKey + i), true
		}
	}
	return 0, false
}

// Median returns the 50th percentile estimate.
func (s *Sketch) Median() float64 { return s.Percentile(50) }

// P95 returns the 95th percentile estimate.
func (s *Sketch) P95() float64 { return s.Percentile(95) }

// P99 returns the 99th percentile estimate.
func (s *Sketch) P99() float64 { return s.Percentile(99) }

// Merge folds the contents of other into s, as if every observation
// added to other had been added to s.
func (s *Sketch) Merge(other *Sketch) {
	if other.count == 0 {
		return
	}
	if s.count == 0 {
		s.min, s.max = other.min, other.max
	} else {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
	s.count += other.count
	s.sum += other.sum
	s.zero += other.zero
	s.pos.merge(&other.pos)
	s.neg.merge(&other.neg)
}

// Buckets reports the number of allocated buckets across both stores —
// the sketch's memory footprint in units of int64, bounded by
// 2×maxSketchBuckets regardless of how many observations were added.
func (s *Sketch) Buckets() int { return len(s.pos.buckets) + len(s.neg.buckets) }

// RelativeAccuracy returns the guaranteed relative error bound of
// Percentile estimates (the α the bucket geometry was derived from).
func (s *Sketch) RelativeAccuracy() float64 { return sketchAlpha }
