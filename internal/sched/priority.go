package sched

import (
	"fmt"

	"memsim/internal/core"
)

// DefaultPromoteMs is the default age-promotion threshold for Priority:
// a request of any class that has waited this long is promoted to the
// most urgent band, bounding starvation no matter how busy the higher
// bands are. 50 ms is a handful of saturated-queue service quanta on
// either device model — long enough that rebuild chunks yield under
// load, short enough that they cannot be starved across a whole run.
const DefaultPromoteMs = 50

// Priority services requests in strict class bands — degraded-read,
// then foreground, then rebuild — ordering within a band by a cost
// model (SPTF by default). A degraded-mode read is already paying peer
// reconstruction on a user's critical path, so it preempts everything;
// rebuild chunks are background work whose only deadline is the
// vulnerability window, so they run when nothing else is pending.
//
// An age-based promotion threshold bounds starvation: any request that
// has waited at least promoteMs joins the most urgent band, so the
// worst-case queue delay of a rebuild chunk under sustained foreground
// load is promoteMs plus one band-drain, not unbounded.
//
// Ties (same band, equal cost) break on scan position exactly like
// SPTF: earliest-scanned wins.
type Priority struct {
	q         []*core.Request
	cost      core.CostModel
	promoteMs float64
}

var _ core.Scheduler = (*Priority)(nil)

// NewPriority returns a Priority queue over core.AccessCost with the
// DefaultPromoteMs starvation bound.
func NewPriority() *Priority {
	return NewPriorityWith(core.AccessCost, DefaultPromoteMs)
}

// NewPriorityWith returns a Priority queue over an arbitrary cost model
// and promotion threshold. promoteMs ≤ 0 disables promotion (strict
// bands, unbounded rebuild starvation); it panics on a nil model.
func NewPriorityWith(cost core.CostModel, promoteMs float64) *Priority {
	if cost == nil {
		panic("sched: nil cost model")
	}
	return &Priority{cost: cost, promoteMs: promoteMs}
}

// Name implements core.Scheduler.
func (p *Priority) Name() string { return "Priority" }

// Add implements core.Scheduler.
func (p *Priority) Add(r *core.Request) { p.q = append(p.q, r) }

// Len implements core.Scheduler.
func (p *Priority) Len() int { return len(p.q) }

// Reset implements core.Scheduler, keeping queue capacity like FCFS.
func (p *Priority) Reset() {
	clear(p.q)
	p.q = p.q[:0]
}

// band maps a request to its service band at time now: 0 degraded-read
// (and anything age-promoted), 1 foreground, 2 rebuild.
func (p *Priority) band(r *core.Request, now float64) int {
	if p.promoteMs > 0 && now-r.Arrival >= p.promoteMs {
		return 0
	}
	switch r.Class {
	case core.ClassDegradedRead:
		return 0
	case core.ClassRebuild:
		return 2
	default:
		return 1
	}
}

// Next implements core.Scheduler: the cheapest candidate in the most
// urgent non-empty band. The cost model is consulted only for requests
// in the winning band, so a deep rebuild backlog adds no estimation
// work while foreground requests are pending.
func (p *Priority) Next(d core.Device, now float64) *core.Request {
	if len(p.q) == 0 {
		return nil
	}
	best, bestBand, bestT := -1, 0, 0.0
	for i, r := range p.q {
		band := p.band(r, now)
		if best >= 0 && band > bestBand {
			continue
		}
		t := p.cost(d, r, now)
		if best < 0 || band < bestBand || t < bestT {
			best, bestBand, bestT = i, band, t
		}
	}
	r := p.q[best]
	p.q[best] = p.q[len(p.q)-1]
	p.q[len(p.q)-1] = nil
	p.q = p.q[:len(p.q)-1]
	return r
}

// String aids debugging.
func (p *Priority) String() string {
	return fmt.Sprintf("Priority(promote=%gms, len=%d)", p.promoteMs, len(p.q))
}
