// Package array implements inter-device redundancy (§6.2 of the paper):
// RAID-0 striping, RAID-1 mirroring, and RAID-5 rotating-parity arrays
// over any core.Device models. The paper's observation is that
// MEMS-based storage's near-zero repositioning for read-modify-write
// sequences (Table 2) removes the classic RAID-5 small-write penalty
// that motivated a decade of disk-array optimizations (parity logging,
// floating parity, log-structured arrays).
//
// The array is itself a core.Device: member devices operate in parallel,
// so an access's service time is the maximum over the members involved,
// and a RAID-5 small write is two phases (read old data + old parity;
// then write new data + new parity) whose second phase begins when the
// slowest first-phase member finishes.
package array

import (
	"fmt"

	"memsim/internal/core"
)

// Level selects the redundancy scheme.
type Level int

const (
	// RAID0 stripes with no redundancy.
	RAID0 Level = iota
	// RAID1 mirrors all members.
	RAID1
	// RAID5 rotates block-interleaved parity (left-symmetric).
	RAID5
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case RAID0:
		return "RAID-0"
	case RAID1:
		return "RAID-1"
	case RAID5:
		return "RAID-5"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Config parameterizes an array.
type Config struct {
	// Level is the redundancy scheme.
	Level Level
	// StripeUnit is the number of consecutive sectors placed on one
	// member before moving to the next (ignored by RAID-1).
	StripeUnit int
}

// Array combines member devices into one logical device.
type Array struct {
	cfg      Config
	members  []core.Device
	capacity int64
	perDev   int64 // usable sectors per member
	failed   int   // index of the failed member, or -1
}

var _ core.Device = (*Array)(nil)

// New builds an array over the given members, which must be non-empty,
// of equal capacity and sector size, and number ≥2 for the redundant
// levels.
func New(cfg Config, members []core.Device) (*Array, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("array: no members")
	}
	cap0 := members[0].Capacity()
	ss := members[0].SectorSize()
	for i, m := range members[1:] {
		if m.Capacity() != cap0 || m.SectorSize() != ss {
			return nil, fmt.Errorf("array: member %d geometry differs from member 0", i+1)
		}
	}
	switch cfg.Level {
	case RAID0, RAID1, RAID5:
	default:
		return nil, fmt.Errorf("array: unknown level %d", int(cfg.Level))
	}
	if cfg.Level != RAID1 && cfg.StripeUnit <= 0 {
		return nil, fmt.Errorf("array: stripe unit must be positive, got %d", cfg.StripeUnit)
	}
	if (cfg.Level == RAID1 || cfg.Level == RAID5) && len(members) < 2 {
		return nil, fmt.Errorf("array: %s needs at least 2 members", cfg.Level)
	}
	a := &Array{cfg: cfg, members: members, failed: -1}
	n := int64(len(members))
	switch cfg.Level {
	case RAID0:
		a.perDev = cap0
		a.capacity = cap0 * n
	case RAID1:
		a.perDev = cap0
		a.capacity = cap0
	case RAID5:
		a.perDev = cap0
		a.capacity = cap0 * (n - 1)
	}
	return a, nil
}

// Name implements core.Device.
func (a *Array) Name() string {
	return fmt.Sprintf("%s×%d(%s)", a.cfg.Level, len(a.members), a.members[0].Name())
}

// Capacity implements core.Device.
func (a *Array) Capacity() int64 { return a.capacity }

// SectorSize implements core.Device.
func (a *Array) SectorSize() int { return a.members[0].SectorSize() }

// Reset implements core.Device; the failed-member state is preserved
// (use Repair to clear it).
func (a *Array) Reset() {
	for _, m := range a.members {
		m.Reset()
	}
}

// Members returns the member count.
func (a *Array) Members() int { return len(a.members) }

// FailMember marks member i failed; subsequent accesses run in degraded
// mode (RAID-1/5) or panic on data loss (RAID-0). It panics on an
// out-of-range index or a second failure (single-fault model).
func (a *Array) FailMember(i int) {
	if i < 0 || i >= len(a.members) {
		panic(fmt.Sprintf("array: member %d out of range", i))
	}
	if a.failed >= 0 && a.failed != i {
		panic("array: model supports a single failed member")
	}
	a.failed = i
}

// Repair clears the failed-member state (after a rebuild).
func (a *Array) Repair() { a.failed = -1 }

// Degraded reports whether a member is failed.
func (a *Array) Degraded() bool { return a.failed >= 0 }

// chunk is one member's share of a request.
type chunk struct {
	dev    int
	lbn    int64
	blocks int
}

// stripeRowOf locates logical block lbn for striped levels: the member
// holding it, the member LBN, and (for RAID5) the parity member of its
// row.
func (a *Array) mapBlock(lbn int64) (dev int, devLBN int64, parityDev int) {
	u := int64(a.cfg.StripeUnit)
	n := int64(len(a.members))
	strip := lbn / u
	off := lbn % u
	switch a.cfg.Level {
	case RAID0:
		row := strip / n
		return int(strip % n), row*u + off, -1
	case RAID5:
		dataPerRow := n - 1
		row := strip / dataPerRow
		idx := strip % dataPerRow
		// Left-symmetric: parity rotates right-to-left; data fills the
		// remaining members starting after the parity slot.
		p := int((n - 1 - row%n + n) % n)
		d := (p + 1 + int(idx)) % int(n)
		return d, row*u + off, p
	default:
		panic("array: mapBlock on non-striped level")
	}
}

// split decomposes a logical extent into per-member chunks, cutting at
// strip boundaries. When merge is true, consecutive blocks that land
// contiguously on the same member coalesce into one chunk (fine for
// reads); RAID-5 writes keep strips separate because the parity member
// rotates per row.
func (a *Array) split(lbn int64, blocks int, merge bool) []chunk {
	var out []chunk
	for i := 0; i < blocks; {
		dev, dlbn, _ := a.mapBlock(lbn + int64(i))
		// Extend to the end of this strip.
		u := a.cfg.StripeUnit
		within := int((lbn + int64(i)) % int64(u))
		run := u - within
		if left := blocks - i; run > left {
			run = left
		}
		if n := len(out); merge && n > 0 && out[n-1].dev == dev &&
			out[n-1].lbn+int64(out[n-1].blocks) == dlbn {
			out[n-1].blocks += run
		} else {
			out = append(out, chunk{dev: dev, lbn: dlbn, blocks: run})
		}
		i += run
	}
	return out
}

// Access implements core.Device.
func (a *Array) Access(req *core.Request, now float64) float64 {
	if req.Blocks <= 0 || req.LBN < 0 || req.LBN+int64(req.Blocks) > a.capacity {
		panic(fmt.Sprintf("array: request [%d,%d) outside capacity %d",
			req.LBN, req.LBN+int64(req.Blocks), a.capacity))
	}
	switch a.cfg.Level {
	case RAID0:
		return a.accessRAID0(req, now)
	case RAID1:
		return a.accessRAID1(req, now)
	default:
		return a.accessRAID5(req, now)
	}
}

// EstimateAccess implements core.Device. Estimating without mutating
// every member's state is impractical for multi-phase operations, so the
// estimate services a member-state snapshot. Member devices expose no
// snapshot API; instead the array is documented as FCFS-scheduled (SPTF
// over an array would need per-member queues anyway). The estimate
// returned here is the single-member read lower bound, adequate for
// LBN-based schedulers which never call it.
func (a *Array) EstimateAccess(req *core.Request, now float64) float64 {
	if a.cfg.Level == RAID1 {
		return a.members[a.readMirror()].EstimateAccess(req, now)
	}
	cs := a.split(req.LBN, req.Blocks, true)
	max := 0.0
	for _, c := range cs {
		r := core.Request{Op: req.Op, LBN: c.lbn, Blocks: c.blocks}
		if t := a.members[c.dev].EstimateAccess(&r, now); t > max {
			max = t
		}
	}
	return max
}

func (a *Array) accessRAID0(req *core.Request, now float64) float64 {
	max := 0.0
	for _, c := range a.split(req.LBN, req.Blocks, true) {
		if c.dev == a.failed {
			panic("array: RAID-0 access to a failed member loses data")
		}
		r := core.Request{Op: req.Op, LBN: c.lbn, Blocks: c.blocks}
		if t := a.members[c.dev].Access(&r, now); t > max {
			max = t
		}
	}
	return max
}

// readMirror picks the member that serves RAID-1 reads (round-robin
// would need state; member 0 unless failed keeps the model simple and
// deterministic).
func (a *Array) readMirror() int {
	if a.failed == 0 {
		return 1
	}
	return 0
}

func (a *Array) accessRAID1(req *core.Request, now float64) float64 {
	if req.Op == core.Read {
		m := a.readMirror()
		r := *req
		return a.members[m].Access(&r, now)
	}
	// Writes go to every healthy mirror in parallel.
	max := 0.0
	for i, m := range a.members {
		if i == a.failed {
			continue
		}
		r := *req
		if t := m.Access(&r, now); t > max {
			max = t
		}
	}
	return max
}

func (a *Array) accessRAID5(req *core.Request, now float64) float64 {
	if req.Op == core.Read {
		return a.raid5Read(req, now)
	}
	return a.raid5Write(req, now)
}

func (a *Array) raid5Read(req *core.Request, now float64) float64 {
	max := 0.0
	for _, c := range a.split(req.LBN, req.Blocks, true) {
		if c.dev == a.failed {
			// Degraded read: reconstruct from all other members' blocks
			// of the same rows (same member-LBN range on every device).
			for i, m := range a.members {
				if i == a.failed {
					continue
				}
				r := core.Request{Op: core.Read, LBN: c.lbn, Blocks: c.blocks}
				if t := m.Access(&r, now); t > max {
					max = t
				}
			}
			continue
		}
		r := core.Request{Op: core.Read, LBN: c.lbn, Blocks: c.blocks}
		if t := a.members[c.dev].Access(&r, now); t > max {
			max = t
		}
	}
	return max
}

// raid5Write performs read-modify-write per chunk: phase 1 reads old
// data and old parity in parallel; phase 2 (starting when the slower
// finishes) writes new data and new parity. This is exactly the §6.2
// sequence whose repositioning cost Table 2 compares. Full-row writes
// could skip phase 1; the model keeps RMW for all writes, which is
// conservative and matches small-write-dominated workloads.
func (a *Array) raid5Write(req *core.Request, now float64) float64 {
	// Chunks are serialized (write ordering); a single-chunk small write
	// — the case §6.2 is about — is timed exactly.
	cur := now
	for _, c := range a.split(req.LBN, req.Blocks, false) {
		_, _, parity := a.mapBlock(a.logicalOf(c))
		phase1 := 0.0
		readOne := func(dev int) {
			if dev == a.failed {
				return
			}
			r := core.Request{Op: core.Read, LBN: c.lbn, Blocks: c.blocks}
			if t := a.members[dev].Access(&r, cur); t > phase1 {
				phase1 = t
			}
		}
		readOne(c.dev)
		readOne(parity)
		writeStart := cur + phase1
		phase2 := 0.0
		writeOne := func(dev int) {
			if dev == a.failed {
				return
			}
			r := core.Request{Op: core.Write, LBN: c.lbn, Blocks: c.blocks}
			if t := a.members[dev].Access(&r, writeStart); t > phase2 {
				phase2 = t
			}
		}
		writeOne(c.dev)
		writeOne(parity)
		cur = writeStart + phase2
	}
	return cur - now
}

// logicalOf recovers a logical block on chunk c (its first block) so the
// parity member of its row can be computed. Chunks never span strips of
// different rows because split cuts at strip boundaries.
func (a *Array) logicalOf(c chunk) int64 {
	// Invert mapBlock for the chunk's first member block.
	u := int64(a.cfg.StripeUnit)
	n := int64(len(a.members))
	row := c.lbn / u
	off := c.lbn % u
	p := int((n - 1 - row%n + n) % n)
	idx := int64((c.dev - p - 1 + len(a.members)) % len(a.members))
	return (row*(n-1)+idx)*u + off
}

// RebuildTime estimates the time (ms) to reconstruct a failed member
// onto a spare: every surviving member is read in full, streaming, while
// the spare is written — the array reads dominate, so the estimate is
// the slowest member's full sequential scan in chunks of scanChunk
// sectors.
func (a *Array) RebuildTime(scanChunk int) float64 {
	if scanChunk <= 0 {
		panic(fmt.Sprintf("array: scan chunk must be positive, got %d", scanChunk))
	}
	worst := 0.0
	for i, m := range a.members {
		if i == a.failed {
			continue
		}
		m.Reset()
		now := 0.0
		for lbn := int64(0); lbn < a.perDev; lbn += int64(scanChunk) {
			n := scanChunk
			if left := a.perDev - lbn; int64(n) > left {
				n = int(left)
			}
			now += m.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: n}, now)
		}
		if now > worst {
			worst = now
		}
	}
	return worst
}
