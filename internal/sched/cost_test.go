package sched

import (
	"testing"

	"memsim/internal/core"
	"memsim/internal/mems"
)

// flatDev estimates every access at the same cost, so every candidate
// ties and dispatch order is purely the scheduler's tie-breaking rule.
type flatDev struct{}

func (flatDev) Name() string                                  { return "flat" }
func (flatDev) Capacity() int64                               { return 1 << 30 }
func (flatDev) SectorSize() int                               { return 512 }
func (flatDev) Access(*core.Request, float64) float64         { return 1 }
func (flatDev) EstimateAccess(*core.Request, float64) float64 { return 1 }
func (flatDev) Reset()                                        {}

func classReq(lbn int64, arrival float64, c core.Class) *core.Request {
	return &core.Request{Arrival: arrival, Op: core.Read, LBN: lbn, Blocks: 8, Class: c}
}

// ─── Tie-breaking determinism (satellite) ───────────────────────────────
//
// Swap-removal permutes the internal queue, so "first added wins" only
// holds until the first dispatch. These tests pin the exact dispatch
// sequences under equal-cost candidates so the cost-model rebase (and
// any future refactor) cannot silently change them.

func TestSPTFTieBreakDeterminism(t *testing.T) {
	// All costs equal on flatDev: Next picks internal index 0, and
	// swap-remove moves the tail into the hole. Adding A,B,C,D and
	// draining must yield A, D, C, B — the pinned swap-remove order.
	s := NewSPTF()
	for _, lbn := range []int64{1, 2, 3, 4} { // A=1 B=2 C=3 D=4
		s.Add(req(lbn))
	}
	got := lbns(Drain(s, flatDev{}, 0))
	want := []int64{1, 4, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SPTF equal-cost dispatch = %v, want %v", got, want)
		}
	}
}

func TestSPTFTieBreakAfterInterleavedAdds(t *testing.T) {
	// Interleaving a dispatch between adds exercises the permuted state:
	// after A,B,C → Next (A out, queue [C,B]), adding D gives [C,B,D].
	s := NewSPTF()
	for _, lbn := range []int64{1, 2, 3} {
		s.Add(req(lbn))
	}
	if r := s.Next(flatDev{}, 0); r.LBN != 1 {
		t.Fatalf("first dispatch = %d, want 1", r.LBN)
	}
	s.Add(req(4))
	got := lbns(Drain(s, flatDev{}, 0))
	want := []int64{3, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SPTF interleaved equal-cost dispatch = %v, want %v", got, want)
		}
	}
}

func TestSSTFTieBreakDeterminism(t *testing.T) {
	// Position is 108 after dispatching LBN 100 (8 blocks). 118 and 98
	// are both distance 10; the strict-less comparison keeps the earlier
	// internal index, so insertion order decides.
	s := NewSSTF()
	s.Add(req(100))
	s.Next(nil, 0)
	s.Add(req(118))
	s.Add(req(98))
	if r := s.Next(nil, 0); r.LBN != 118 {
		t.Fatalf("SSTF equidistant pick = %d, want first-added 118", r.LBN)
	}
	// Same distances added in the opposite order flip the winner.
	s.Reset()
	s.Add(req(100))
	s.Next(nil, 0)
	s.Add(req(98))
	s.Add(req(118))
	if r := s.Next(nil, 0); r.LBN != 98 {
		t.Fatalf("SSTF equidistant pick = %d, want first-added 98", r.LBN)
	}
}

func TestCLOOKTieBreakDeterminism(t *testing.T) {
	// Duplicate LBNs: the strict-less scan keeps the earliest internal
	// index for both the "ahead" and the wrap candidate.
	a, b := req(60), req(60)
	s := NewCLOOK()
	s.Add(a)
	s.Add(b)
	s.Add(req(70))
	if r := s.Next(nil, 0); r != a {
		t.Fatal("C-LOOK duplicate-LBN ahead pick is not the first added")
	}
	// After dispatching a (ends at 68), 70 is ahead; b waits for the wrap.
	got := lbns(Drain(s, nil, 0))
	want := []int64{70, 60}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C-LOOK dispatch after duplicate = %v, want %v", got, want)
		}
	}
}

// ─── SettleAware ────────────────────────────────────────────────────────

func TestSettleAwarePicksMinDiscountedCost(t *testing.T) {
	d := mems.MustDevice(mems.DefaultConfig())
	g := d.Geometry()
	s := NewSettleAware()
	candidates := []*core.Request{
		req(g.LBN(0, 0, 0, 0)),
		req(g.LBN(g.Cylinders/2, 0, 0, 0)),
		req(g.LBN(g.Cylinders-1, 0, 0, 0)),
	}
	best, bestT := -1, 0.0
	for i, r := range candidates {
		s.Add(r)
		if t := core.SettleAwareCost(d, r, 0); best < 0 || t < bestT {
			best, bestT = i, t
		}
	}
	if r := s.Next(d, 0); r != candidates[best] {
		t.Errorf("SettleAware picked LBN %d, want argmin of discounted cost LBN %d",
			r.LBN, candidates[best].LBN)
	}
}

func TestSettleAwareMatchesSPTFOnOpaqueDevice(t *testing.T) {
	// Without a breakdown estimator the discount degrades to AccessCost,
	// so the dispatch sequence must equal SPTF's exactly.
	run := func(s core.Scheduler) []int64 {
		for _, lbn := range []int64{7, 3, 9, 1, 5} {
			s.Add(req(lbn))
		}
		return lbns(Drain(s, flatDev{}, 0))
	}
	a, b := run(NewSPTF()), run(NewSettleAware())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SettleAware %v diverged from SPTF %v on an opaque device", b, a)
		}
	}
}

// ─── Priority ───────────────────────────────────────────────────────────

func TestPriorityStrictBands(t *testing.T) {
	p := NewPriority()
	p.Add(classReq(10, 0, core.ClassRebuild))
	p.Add(classReq(20, 0, core.ClassForeground))
	p.Add(classReq(30, 0, core.ClassDegradedRead))
	p.Add(classReq(40, 0, core.ClassForeground))
	var got []core.Class
	for p.Len() > 0 {
		got = append(got, p.Next(flatDev{}, 0).Class)
	}
	want := []core.Class{core.ClassDegradedRead, core.ClassForeground, core.ClassForeground, core.ClassRebuild}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("band order = %v, want %v", got, want)
		}
	}
}

func TestPriorityCostOrdersWithinBand(t *testing.T) {
	d := mems.MustDevice(mems.DefaultConfig())
	g := d.Geometry()
	near := g.LBN(g.Cylinders/2, 0, 0, 0)
	far := g.LBN(0, 0, 0, 0)
	p := NewPriority()
	p.Add(classReq(far, 0, core.ClassForeground))
	p.Add(classReq(near, 0, core.ClassForeground))
	if r := p.Next(d, 0); r.LBN != near {
		t.Errorf("within-band pick = LBN %d, want the cheaper %d", r.LBN, near)
	}
}

func TestPriorityAgePromotionBoundsStarvation(t *testing.T) {
	p := NewPriorityWith(core.AccessCost, 50)
	old := classReq(10, 0, core.ClassRebuild)
	p.Add(old)
	fresh := classReq(20, 100, core.ClassDegradedRead)
	p.Add(fresh)
	// At t=100 the rebuild chunk has waited 100 ms ≥ 50: promoted into
	// band 0, it competes on cost with the degraded read and, costs
	// being flat, wins on scan order.
	if r := p.Next(flatDev{}, 100); r != old {
		t.Error("aged rebuild chunk was not promoted past a fresh degraded read")
	}
}

func TestPriorityPromotionDisabled(t *testing.T) {
	p := NewPriorityWith(core.AccessCost, 0)
	old := classReq(10, 0, core.ClassRebuild)
	p.Add(old)
	fresh := classReq(20, 1e6, core.ClassForeground)
	p.Add(fresh)
	if r := p.Next(flatDev{}, 1e6); r != fresh {
		t.Error("promoteMs=0 must keep strict bands (foreground before rebuild)")
	}
}

func TestPriorityTieBreakDeterminism(t *testing.T) {
	// Same band, flat costs: pinned swap-remove order, exactly like SPTF.
	p := NewPriority()
	for _, lbn := range []int64{1, 2, 3, 4} {
		p.Add(classReq(lbn, 0, core.ClassForeground))
	}
	got := lbns(Drain(p, flatDev{}, 0))
	want := []int64{1, 4, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Priority equal-cost dispatch = %v, want %v", got, want)
		}
	}
}

func TestNewCostSPTFPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCostSPTF(nil) did not panic")
		}
	}()
	NewCostSPTF("bad", nil)
}
