package experiments

import (
	"fmt"
	"math/rand"

	"memsim/internal/core"
	"memsim/internal/power"
	"memsim/internal/runner"
)

func init() { register("startup", startupPlan) }

// Startup quantifies §6.3 (extension): MEMS-based storage initializes in
// ≈0.5 ms with no inrush surge, so a shelf of devices can start
// concurrently; disks take seconds to spin up and are serialized to
// avoid power spikes. The second table measures the synchronous-write
// penalty the same section discusses: file systems and databases that
// must write metadata synchronously pay the device's small-write latency
// on the critical path.
func Startup(p Params) []Table { return mustRun(startupPlan(p)) }

func startupPlan(p Params) *Plan {
	trials := p.Trials
	if trials > 1000 {
		trials = 1000
	}
	mkDevs := []core.DeviceFactory{memsFactory(1), diskFactory}
	syncJobs := make([]*runner.Job, len(mkDevs))
	for i, mk := range mkDevs {
		syncJobs[i] = &runner.Job{
			Label: fmt.Sprintf("startup sync device %d", i),
			Seed:  p.Seed,
			Custom: func(*runner.Job) any {
				dev := mk()
				rng := rand.New(rand.NewSource(p.Seed))
				now, sum, max := 0.0, 0.0, 0.0
				for i := 0; i < trials; i++ {
					lbn := rng.Int63n(dev.Capacity() - 2)
					svc := dev.Access(&core.Request{Op: core.Write, LBN: lbn, Blocks: 2}, now)
					now += svc
					sum += svc
					if svc > max {
						max = svc
					}
				}
				return []string{dev.Name(), ms(sum / float64(trials)), ms(max)}
			},
		}
	}
	return &Plan{
		Jobs: syncJobs,
		Assemble: func() []Table {
			// The shelf table is pure arithmetic over the power models.
			t := Table{
				ID:      "startup",
				Title:   "time until a shelf of devices is ready (ms)",
				Columns: []string{"devices", "MEMS (concurrent)", "mobile disk (serialized)", "server disk (serialized)"},
			}
			memsR := power.MEMSModel().RestartMs
			mobR := power.MobileDiskModel().RestartMs
			srvR := power.ServerDiskModel().RestartMs
			for _, n := range []int{1, 4, 16} {
				// No surge → all MEMS devices start together; spike
				// avoidance → disks spin up one at a time (§6.3).
				t.AddRow(fmt.Sprintf("%d", n),
					ms(memsR),
					ms(float64(n)*mobR),
					ms(float64(n)*srvR))
			}

			s := Table{
				ID:      "startup-sync",
				Title:   "synchronous small-write latency (1 KB metadata updates, ms)",
				Columns: []string{"device", "mean", "max"},
			}
			for _, j := range syncJobs {
				s.AddRow(j.Value().([]string)...)
			}
			return []Table{t, s}
		},
	}
}
