package stats

// Dist couples the two accumulators the per-phase service metrics need:
// a Welford for streaming moments (mean, variance, min/max) and a Sample
// for exact order statistics (p95/p99). It exists so a phase's aggregate
// is one field, not two that can drift apart. The zero value is an empty
// accumulator ready to use.
//
// Dist retains every observation (via the Sample); callers aggregating
// unbounded streams should prefer a bare Welford.
type Dist struct {
	w Welford
	s Sample
}

// Add folds one observation into both accumulators.
func (d *Dist) Add(x float64) {
	d.w.Add(x)
	d.s.Add(x)
}

// N reports the number of observations added.
func (d *Dist) N() int64 { return d.w.N() }

// Mean returns the arithmetic mean, or 0 if empty.
func (d *Dist) Mean() float64 { return d.w.Mean() }

// Min returns the smallest observation, or 0 if empty.
func (d *Dist) Min() float64 { return d.w.Min() }

// Max returns the largest observation, or 0 if empty.
func (d *Dist) Max() float64 { return d.w.Max() }

// StdDev returns the population standard deviation.
func (d *Dist) StdDev() float64 { return d.w.StdDev() }

// SquaredCV returns σ²/µ², the paper's starvation metric.
func (d *Dist) SquaredCV() float64 { return d.w.SquaredCV() }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) over the retained
// observations, or 0 if empty.
func (d *Dist) Percentile(p float64) float64 { return d.s.Percentile(p) }

// P95 returns the 95th percentile.
func (d *Dist) P95() float64 { return d.s.Percentile(95) }

// P99 returns the 99th percentile.
func (d *Dist) P99() float64 { return d.s.Percentile(99) }

// Welford returns a copy of the streaming accumulator, for callers that
// want to Merge several Dists' moments.
func (d *Dist) Welford() Welford { return d.w }
