package sim

import (
	"reflect"
	"testing"

	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/fault"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/workload"
)

func mustInjector(t *testing.T, cfg fault.InjectorConfig) *fault.Injector {
	t.Helper()
	in, err := fault.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestZeroRateInjectorMatchesNoInjector(t *testing.T) {
	// The acceptance bar for the whole injection path: a zero-rate,
	// event-free injector must reproduce the uninstrumented run exactly.
	// reflect.DeepEqual checks every statistic at full float precision.
	d := mems.MustDevice(mems.DefaultConfig())
	run := func(inj *fault.Injector) Result {
		src := workload.DefaultRandom(900, 512, d.Capacity(), 3000, 17)
		return Run(nil, d, sched.NewSPTF(), src, Options{Warmup: 200, Injector: inj})
	}
	plain := run(nil)
	zero := run(mustInjector(t, fault.InjectorConfig{Seed: 1234}))
	if !reflect.DeepEqual(plain, zero) {
		t.Errorf("zero-rate injection diverged:\n  plain: %+v\n  zero:  %+v", plain, zero)
	}

	closed := func(inj *fault.Injector) Result {
		src := workload.DefaultRandom(900, 512, d.Capacity(), 2000, 29)
		return RunClosed(nil, d, src, Options{Warmup: 100, Injector: inj})
	}
	if p, z := closed(nil), closed(mustInjector(t, fault.InjectorConfig{Seed: 99})); !reflect.DeepEqual(p, z) {
		t.Errorf("closed zero-rate injection diverged:\n  plain: %+v\n  zero:  %+v", p, z)
	}
}

func TestTransientErrorsChargeRecoveryTime(t *testing.T) {
	// A fixed device has no §6.1.3 recovery model, so every retry costs
	// exactly the fallback penalty — the accounting is checkable to the
	// last millisecond.
	d := &fixedDevice{svc: 2}
	cfg := fault.DefaultInjectorConfig()
	cfg.TransientRate = 0.2
	cfg.FallbackPenaltyMs = 3
	cfg.Seed = 5
	src := workload.NewFromSlice(mkReqs(make([]float64, 500)))
	res := Run(nil, d, sched.NewFCFS(), src, Options{Injector: mustInjector(t, cfg)})
	if res.Retries == 0 {
		t.Fatal("20% transient rate produced no retries")
	}
	if want := float64(res.Retries) * 3; res.RecoveryMs != want {
		t.Errorf("recovery = %g ms, want retries×penalty = %g", res.RecoveryMs, want)
	}
	if res.Recovered == 0 {
		t.Error("no requests recovered from transient errors")
	}
	// Busy time covers service plus recovery.
	if want := float64(500)*2 + res.RecoveryMs; res.Busy != want {
		t.Errorf("busy = %g, want %g", res.Busy, want)
	}
}

func TestRetryBudgetExhaustionFailsRequests(t *testing.T) {
	// At a 90% error rate with no retry or requeue budget, most requests
	// fail — and failed requests must stay out of the measured statistics.
	d := &fixedDevice{svc: 1}
	cfg := fault.InjectorConfig{TransientRate: 0.9, Seed: 3}
	src := workload.NewFromSlice(mkReqs(make([]float64, 200)))
	res := Run(nil, d, sched.NewFCFS(), src, Options{Injector: mustInjector(t, cfg)})
	if res.FailedRequests == 0 {
		t.Fatal("no requests failed at 90% error rate with zero budgets")
	}
	if res.Requests+res.FailedRequests != 200 {
		t.Errorf("measured %d + failed %d ≠ 200", res.Requests, res.FailedRequests)
	}
	if res.Response.N() != int64(res.Requests) {
		t.Errorf("response samples %d ≠ measured requests %d", res.Response.N(), res.Requests)
	}
	if res.Requeues != 0 {
		t.Errorf("requeues = %d with a zero requeue budget", res.Requeues)
	}
}

func TestRequeuedRequestsKeepOriginalStart(t *testing.T) {
	// A request that fails its first visit and is requeued keeps its
	// original start time, so its response time covers both visits.
	d := &fixedDevice{svc: 1}
	cfg := fault.InjectorConfig{TransientRate: 0.6, MaxRequeues: 5, Seed: 11}
	src := workload.NewFromSlice(mkReqs(make([]float64, 300)))
	var maxResp float64
	res := Run(nil, d, sched.NewFCFS(), src, Options{
		Injector: mustInjector(t, cfg),
		OnComplete: func(r *core.Request) {
			if !r.Failed && r.ResponseTime() > maxResp {
				maxResp = r.ResponseTime()
			}
		},
	})
	if res.Requeues == 0 {
		t.Fatal("no requeues at 60% error rate with zero inline retries")
	}
	// A single 1 ms visit can never explain the queueing of 300
	// simultaneous arrivals plus requeues; the point is Start survives.
	if maxResp < 2 {
		t.Errorf("max successful response = %g ms; requeued requests lost their start time", maxResp)
	}
	if res.FailedRequests == 0 {
		t.Error("a 60% error rate should exhaust some requeue budgets")
	}
}

func TestDegradedReadsPayECCSurcharge(t *testing.T) {
	// A tip fails at t=0 with no spares: every read afterwards is striped
	// over the degraded tip and pays the per-sector surcharge.
	d := &fixedDevice{svc: 1}
	arr := fault.Config{Tips: 66, DataTips: 64, ECCTips: 2, SpareTips: 0}
	cfg := fault.InjectorConfig{
		Array:          &arr,
		Events:         []fault.TipEvent{{AtMs: 0, Tip: 7}},
		SectorTips:     func(int64) []int { return []int{7} },
		ECCSurchargeMs: 0.25,
	}
	src := workload.NewFromSlice(mkReqs(make([]float64, 40))) // 1-block reads
	res := Run(nil, d, sched.NewFCFS(), src, Options{Injector: mustInjector(t, cfg)})
	if res.DegradedReads != 40 {
		t.Errorf("degraded reads = %d, want 40", res.DegradedReads)
	}
	if want := 40 * 0.25; res.RecoveryMs != want {
		t.Errorf("ECC recovery = %g ms, want %g", res.RecoveryMs, want)
	}
	// Writes never pay the read-reconstruction surcharge.
	var wsrc []*core.Request
	for i := 0; i < 10; i++ {
		wsrc = append(wsrc, &core.Request{Op: core.Write, LBN: 0, Blocks: 1})
	}
	res = Run(nil, d, sched.NewFCFS(), workload.NewFromSlice(wsrc), Options{Injector: mustInjector(t, cfg)})
	if res.DegradedReads != 0 || res.RecoveryMs != 0 {
		t.Errorf("writes paid ECC surcharge: degraded=%d recovery=%g", res.DegradedReads, res.RecoveryMs)
	}
}

func TestRunClosedInjectsFaults(t *testing.T) {
	d := &fixedDevice{svc: 2}
	cfg := fault.DefaultInjectorConfig()
	cfg.TransientRate = 0.3
	cfg.FallbackPenaltyMs = 1
	cfg.Seed = 21
	src := workload.NewFromSlice(mkReqs(make([]float64, 400)))
	res := RunClosed(nil, d, src, Options{Injector: mustInjector(t, cfg)})
	if res.Retries == 0 || res.Recovered == 0 {
		t.Fatalf("closed run saw no faults: %+v", res)
	}
	if res.RecoveryMs != float64(res.Retries) {
		t.Errorf("recovery = %g ms, want %d retries × 1 ms", res.RecoveryMs, res.Retries)
	}
	// Elapsed covers every service visit (each requeue re-services the
	// request in place) plus all recovery time.
	if want := float64(400+res.Requeues)*2 + res.RecoveryMs; res.Elapsed != want {
		t.Errorf("elapsed = %g, want %g", res.Elapsed, want)
	}
}

func TestInjectionDeterministic(t *testing.T) {
	d := mems.MustDevice(mems.DefaultConfig())
	run := func() Result {
		src := workload.DefaultRandom(800, 512, d.Capacity(), 2000, 13)
		cfg := fault.DefaultInjectorConfig()
		cfg.TransientRate = 0.05
		cfg.Seed = 77
		return Run(nil, d, sched.NewSPTF(), src, Options{Warmup: 100, Injector: mustInjector(t, cfg)})
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("injected runs differ:\n  %+v\n  %+v", a, b)
	}
}

func TestDiskRecoveryCostlierThanMEMS(t *testing.T) {
	// §6.1.3: a disk seek error costs a re-seek plus a full rotational
	// re-miss (~ms), a MEMS positioning error only turnarounds plus a short
	// X seek (~tenths of ms). The per-error recovery cost must reflect the
	// asymmetry end to end through the simulator.
	perError := func(d core.Device) float64 {
		cfg := fault.DefaultInjectorConfig()
		cfg.TransientRate = 0.05
		cfg.Seed = 41
		src := workload.DefaultRandom(60, 512, d.Capacity(), 3000, 9)
		res := Run(nil, d, sched.NewFCFS(), src, Options{Warmup: 200, Injector: mustInjector(t, cfg)})
		if res.Retries == 0 {
			t.Fatalf("%s: no retries at 5%% error rate", d.Name())
		}
		return res.RecoveryMs / float64(res.Retries)
	}
	memsCost := perError(mems.MustDevice(mems.DefaultConfig()))
	diskCost := perError(disk.MustDevice(disk.Atlas10K()))
	if diskCost <= memsCost*2 {
		t.Errorf("disk per-error recovery %.3f ms vs MEMS %.3f ms: want disk ≫ MEMS", diskCost, memsCost)
	}
}

func TestDataLossSurfacesAndRefusesService(t *testing.T) {
	// Satellite: when scheduled tip failures exhaust spares and the ECC
	// budget of a stripe, the run must mark DataLoss, and reads touching
	// the lost sectors must complete as failed — never silently served.
	d := &fixedDevice{svc: 1}
	arr := fault.Config{Tips: 66, DataTips: 64, ECCTips: 2, SpareTips: 0}
	cfg := fault.InjectorConfig{
		Array: &arr,
		// Three failures in one stripe group exceed the 2-tip ECC budget.
		Events: []fault.TipEvent{
			{AtMs: 0, Tip: 0},
			{AtMs: 0, Tip: 1},
			{AtMs: 0, Tip: 2},
		},
		// Low LBNs live on a dead tip; high LBNs on a healthy one.
		SectorTips: func(lbn int64) []int {
			if lbn < 50 {
				return []int{0}
			}
			return []int{40}
		},
	}
	var reqs []*core.Request
	for i := 0; i < 30; i++ {
		lbn := int64(0) // lost
		if i%3 == 0 {
			lbn = 1000 // healthy
		}
		reqs = append(reqs, &core.Request{Arrival: float64(i), Op: core.Read, LBN: lbn, Blocks: 1})
	}
	res := Run(nil, d, sched.NewFCFS(), workload.NewFromSlice(reqs), Options{Injector: mustInjector(t, cfg)})
	if !res.DataLoss {
		t.Fatal("run with an over-budget stripe did not surface DataLoss")
	}
	if res.LostReads != 20 {
		t.Errorf("lost reads = %d, want 20", res.LostReads)
	}
	if res.FailedRequests != 20 {
		t.Errorf("failed requests = %d, want 20", res.FailedRequests)
	}
	// Healthy sectors keep serving, and lost reads stay out of the
	// measured statistics.
	if res.Requests != 10 {
		t.Errorf("measured requests = %d, want 10", res.Requests)
	}
	if res.Response.N() != int64(res.Requests) {
		t.Errorf("response samples %d ≠ measured requests %d", res.Response.N(), res.Requests)
	}
	// Lost reads must not be requeued or retried — the data is gone.
	if res.Retries != 0 || res.Requeues != 0 {
		t.Errorf("lost reads retried: retries=%d requeues=%d", res.Retries, res.Requeues)
	}

	// Writes to lost sectors still land (they rewrite the data); only
	// reads fail.
	var wreqs []*core.Request
	for i := 0; i < 10; i++ {
		wreqs = append(wreqs, &core.Request{Arrival: float64(i), Op: core.Write, LBN: 0, Blocks: 1})
	}
	wres := Run(nil, d, sched.NewFCFS(), workload.NewFromSlice(wreqs), Options{Injector: mustInjector(t, cfg)})
	if wres.FailedRequests != 0 || wres.LostReads != 0 {
		t.Errorf("writes to lost sectors failed: %+v", wres)
	}
	if !wres.DataLoss {
		t.Error("DataLoss flag dropped on the write-only run")
	}
}
