package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Checkpoint is an atomic resumable-progress store for long-running
// Monte-Carlo jobs: a single JSON file holding one serialized state
// blob per job label, bound to the experiment and parameter set that
// wrote it. Every Save rewrites the whole file through WriteArtifact
// (temp + rename), so a run killed mid-save leaves either the previous
// checkpoint or the new one on disk — never a torn file.
//
// Resumability relies on the job's own determinism: a job that derives
// all randomness from per-unit seeds (DeriveSeed sub-streams) can
// reload its state, skip the completed units, and produce output
// byte-identical to an uninterrupted run. The parameter binding makes
// the other half of that contract safe: resuming under different
// parameters would silently change the answer, so OpenCheckpoint
// refuses a file written under any other experiment or parameter set.
//
// A Checkpoint is safe for concurrent use by parallel jobs.
type Checkpoint struct {
	path string
	mu   sync.Mutex
	file checkpointFile
}

type checkpointFile struct {
	Experiment string                     `json:"experiment"`
	Params     json.RawMessage            `json:"params"`
	Jobs       map[string]json.RawMessage `json:"jobs"`
}

// OpenCheckpoint opens the checkpoint at path, creating its in-memory
// state if the file does not exist yet, or loading saved job states if
// it does. params (any JSON-marshalable value) binds the checkpoint to
// the run's configuration; an existing file written by a different
// experiment or under different parameters is an error, not a resume.
func OpenCheckpoint(path, experiment string, params any) (*Checkpoint, error) {
	bound, err := json.Marshal(params)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: encoding params: %w", path, err)
	}
	ck := &Checkpoint{path: path, file: checkpointFile{
		Experiment: experiment,
		Params:     bound,
		Jobs:       map[string]json.RawMessage{},
	}}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	var existing checkpointFile
	if err := json.Unmarshal(data, &existing); err != nil {
		return nil, fmt.Errorf("checkpoint %s: corrupt: %v (delete it to start over)", path, err)
	}
	if existing.Experiment != experiment {
		return nil, fmt.Errorf("checkpoint %s: written by experiment %q, not %q (delete it to start over)", path, existing.Experiment, experiment)
	}
	if !sameJSON(existing.Params, bound) {
		return nil, fmt.Errorf("checkpoint %s: written under different parameters (rerun with the original flags, or delete it to start over)", path)
	}
	if existing.Jobs != nil {
		ck.file.Jobs = existing.Jobs
	}
	return ck, nil
}

// Load reads the saved state for the given job label into v, reporting
// whether a usable entry existed. An unreadable entry counts as absent:
// recomputing a unit of work is always safe, resuming from garbage is
// not.
func (c *Checkpoint) Load(label string, v any) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.file.Jobs[label]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, v) == nil
}

// Save stores v as the job label's state and flushes the whole
// checkpoint to disk atomically.
func (c *Checkpoint) Save(label string, v any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint %s: encoding %q: %w", c.path, label, err)
	}
	c.file.Jobs[label] = raw
	// Map keys marshal in sorted order, so the file bytes are a pure
	// function of the saved states — stable under parallel job order.
	data, err := json.MarshalIndent(&c.file, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	return WriteArtifact(c.path, func(w io.Writer) error {
		_, werr := w.Write(append(data, '\n'))
		return werr
	})
}

// sameJSON compares two JSON documents byte-wise after compaction, so
// formatting differences don't defeat the parameter binding.
func sameJSON(a, b json.RawMessage) bool {
	var ca, cb bytes.Buffer
	if json.Compact(&ca, a) != nil || json.Compact(&cb, b) != nil {
		return false
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}
