package memsim

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	dev, err := NewMEMSDevice(DefaultMEMSConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler("SPTF")
	if err != nil {
		t.Fatal(err)
	}
	src := NewRandomWorkload(800, dev.SectorSize(), dev.Capacity(), 2000, 42)
	res := Simulate(dev, s, src, SimOptions{Warmup: 200})
	if res.Requests != 1800 {
		t.Fatalf("measured %d requests", res.Requests)
	}
	if m := res.Response.Mean(); m <= 0 || m > 10 {
		t.Errorf("mean response = %g ms", m)
	}
	if !strings.Contains(res.String(), "mean-response") {
		t.Error("result string malformed")
	}
}

func TestFacadeDisk(t *testing.T) {
	dev, err := NewDiskDevice(Atlas10KConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler("C-LOOK")
	if err != nil {
		t.Fatal(err)
	}
	src := NewRandomWorkload(50, dev.SectorSize(), dev.Capacity(), 500, 1)
	res := Simulate(dev, s, src, SimOptions{})
	if res.Requests != 500 {
		t.Fatalf("measured %d requests", res.Requests)
	}
}

func TestFacadeTraces(t *testing.T) {
	dev, _ := NewMEMSDevice(DefaultMEMSConfig())
	for _, tr := range []*Trace{
		GenerateCelloTrace(dev.Capacity(), 500),
		GenerateTPCCTrace(dev.Capacity(), 500),
	} {
		if tr.Len() != 500 {
			t.Fatalf("%s: %d records", tr.Name, tr.Len())
		}
		s, _ := NewScheduler("FCFS")
		res := Simulate(dev, s, TraceSource(tr), SimOptions{})
		if res.Requests != 500 {
			t.Fatalf("%s: completed %d", tr.Name, res.Requests)
		}
	}
}

func TestFacadePower(t *testing.T) {
	dev, _ := NewMEMSDevice(DefaultMEMSConfig())
	m := NewPowerManaged(dev, MEMSPowerModel(), ImmediateIdle())
	s, _ := NewScheduler("FCFS")
	src := NewRandomWorkload(20, dev.SectorSize(), dev.Capacity(), 300, 3)
	res := Simulate(m, s, src, SimOptions{})
	m.FinishAt(res.Elapsed)
	rep := m.Report()
	if rep.TotalJ() <= 0 || rep.Restarts == 0 {
		t.Errorf("power report: %+v", rep)
	}
	if MobileDiskPowerModel().RestartMs <= MEMSPowerModel().RestartMs {
		t.Error("disk restart should dwarf MEMS restart")
	}
	if AlwaysOn().TimeoutMs <= ImmediateIdle().TimeoutMs {
		t.Error("policy constructors inverted")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 26 {
		t.Fatalf("experiment IDs: %v", ids)
	}
	tables, err := RunExperiment("table1", QuickExperimentParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	if _, err := RunExperiment("nope", QuickExperimentParams()); err == nil {
		t.Error("expected error for unknown experiment")
	}
	if DefaultExperimentParams().Requests <= QuickExperimentParams().Requests {
		t.Error("default params should exceed quick params")
	}
}

func TestFacadeSchedulerNames(t *testing.T) {
	names := SchedulerNames()
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if _, err := NewScheduler(n); err != nil {
			t.Errorf("NewScheduler(%q): %v", n, err)
		}
	}
}

func TestFacadeManagedDeviceAndClosedSim(t *testing.T) {
	dev, _ := NewMEMSDevice(DefaultMEMSConfig())
	md := NewManagedDevice(dev, nil)
	reqs := []*Request{
		{Op: Read, LBN: 0, Blocks: 8},
		{Op: Write, LBN: 5000, Blocks: 8},
	}
	res := SimulateClosed(md, RequestsSource(reqs), SimOptions{})
	if res.Requests != 2 {
		t.Fatalf("completed %d", res.Requests)
	}
}

func TestFacadeArrayAndCache(t *testing.T) {
	members := make([]Device, 4)
	for i := range members {
		d, err := NewMEMSDevice(DefaultMEMSConfig())
		if err != nil {
			t.Fatal(err)
		}
		members[i] = d
	}
	arr, err := NewDeviceArray(ArrayConfig{Level: RAID5, StripeUnit: 8}, members)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Capacity() != 3*members[0].Capacity() {
		t.Errorf("RAID-5 capacity = %d", arr.Capacity())
	}
	if svc := arr.Access(&Request{Op: Write, LBN: 0, Blocks: 8}, 0); svc <= 0 {
		t.Errorf("array write service = %g", svc)
	}

	inner, _ := NewMEMSDevice(DefaultMEMSConfig())
	c := NewCachedDevice(inner, DefaultCacheConfig())
	c.Access(&Request{Op: Read, LBN: 0, Blocks: 8}, 0)
	c.Access(&Request{Op: Read, LBN: 8, Blocks: 8}, 0)
	if c.Hits() == 0 {
		t.Error("read-ahead should produce a hit")
	}
}

func TestFacadeExtensions(t *testing.T) {
	s := NewAgedSPTF(0.05)
	if s.Name() != "ASPTF(0.05)" {
		t.Errorf("name = %q", s.Name())
	}
	g2, g3 := MEMSConfigGen2(), MEMSConfigGen3()
	d2, err := NewMEMSDevice(g2)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := NewMEMSDevice(g3)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Capacity() <= d2.Capacity() {
		t.Error("generations should grow capacity")
	}
	inner, _ := NewMEMSDevice(DefaultMEMSConfig())
	sr := NewSlipRemapDevice(inner)
	sr.Remap(0, inner.Capacity()-1)
	if sr.Remapped() != 1 {
		t.Error("remap table")
	}
}

func TestFacadeSimulateMulti(t *testing.T) {
	devs := make([]Device, 2)
	scheds := make([]Scheduler, 2)
	for i := range devs {
		d, err := NewMEMSDevice(DefaultMEMSConfig())
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
		scheds[i], err = NewScheduler("SPTF")
		if err != nil {
			t.Fatal(err)
		}
	}
	per := devs[0].Capacity()
	src := NewRandomWorkload(1000, 512, 2*per, 800, 6)
	res, err := SimulateMulti(devs, scheds, ConcatRouter(per), src, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 800 {
		t.Fatalf("completed %d", res.Requests)
	}
	if StripeRouter(8, 2) == nil {
		t.Fatal("nil router")
	}
}

func TestFacadeProbe(t *testing.T) {
	dev, err := NewMEMSDevice(DefaultMEMSConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewScheduler("SPTF")
	var buf bytes.Buffer
	pc := NewPhaseCollector()
	src := NewRandomWorkload(900, dev.SectorSize(), dev.Capacity(), 500, 9)
	res := Simulate(dev, s, src, SimOptions{
		Warmup: 50,
		Probe:  MultiProbe{pc, WithRun(NewJSONLProbe(&buf), "facade")},
	})
	if res.Phases == nil || res.Phases.Requests != res.Requests {
		t.Fatalf("Phases = %+v, requests %d", res.Phases, res.Requests)
	}
	if res.Phases.Positioning.Mean() <= 0 || res.Phases.Positioning.P99() < res.Phases.Positioning.P95() {
		t.Errorf("positioning stats: mean=%g p95=%g p99=%g",
			res.Phases.Positioning.Mean(), res.Phases.Positioning.P95(), res.Phases.Positioning.P99())
	}
	if buf.Len() == 0 {
		t.Error("JSONL probe wrote nothing")
	}
	var bd Breakdown
	if _, ok := Device(dev).(BreakdownReporter); !ok {
		t.Error("MEMS device does not report breakdowns through the facade")
	} else if bd, _ = dev.LastBreakdown(); bd.ServiceMs <= 0 {
		t.Errorf("last breakdown = %+v", bd)
	}
	if EventComplete.String() != "complete" {
		t.Errorf("EventComplete = %q", EventComplete.String())
	}
}

func TestFacadeSimulateVolume(t *testing.T) {
	cfg := VolumeConfig{
		Level: VolumeMirror, Members: 2, Spares: 1,
		StripeUnit: 2700, PerMember: 2700 * 10,
	}
	v, err := NewVolume(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Devices()
	devs := make([]Device, n)
	scheds := make([]Scheduler, n)
	for i := range devs {
		d, err := NewMEMSDevice(DefaultMEMSConfig())
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
		scheds[i], err = NewScheduler("SPTF")
		if err != nil {
			t.Fatal(err)
		}
	}
	inj, err := NewFaultInjector(FaultInjectorConfig{
		DeviceEvents: []DeviceFailureEvent{{AtMs: 50, Dev: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := NewRandomWorkload(500, 512, v.Capacity(), 400, 11)
	res, err := SimulateVolume(VolumeSpec{Volume: v, Devices: devs, Scheds: scheds, RebuildFrac: 0.5},
		src, SimOptions{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests+res.FailedRequests != 400 {
		t.Fatalf("completions %d + failures %d ≠ 400", res.Requests, res.FailedRequests)
	}
	if res.Volume == nil || res.Volume.DeviceFailures != 1 || res.Volume.RebuildsDone != 1 {
		t.Fatalf("failover metrics missing: %+v", res.Volume)
	}
	if res.DataLoss {
		t.Fatal("mirror failover reported data loss")
	}
	if len(res.Members) != n {
		t.Fatalf("member attribution for %d slots, want %d", len(res.Members), n)
	}
}

func TestFacadeAvailability(t *testing.T) {
	// The availability exports compose: an adaptive rebuild policy paces
	// a volume whose failure is drawn from the lifetime model, and the
	// Monte-Carlo primitive estimates MTTDL deterministically.
	cfg := VolumeConfig{
		Level: VolumeMirror, Members: 2, Spares: 1,
		StripeUnit: 2700, PerMember: 2700 * 10,
	}
	v, err := NewVolume(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Devices()
	devs := make([]Device, n)
	scheds := make([]Scheduler, n)
	for i := range devs {
		d, err := NewMEMSDevice(DefaultMEMSConfig())
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
		scheds[i], err = NewScheduler("SPTF")
		if err != nil {
			t.Fatal(err)
		}
	}
	inj, err := NewFaultInjector(FaultInjectorConfig{
		Lifetime: &DeviceLifetimeModel{MTTFMs: 400, Slots: cfg.Members, HorizonMs: 800, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := NewRandomWorkload(500, 512, v.Capacity(), 400, 11)
	var policy RebuildPolicy = AdaptiveRebuildPolicy{}
	res, err := SimulateVolume(VolumeSpec{Volume: v, Devices: devs, Scheds: scheds, RebuildPolicy: policy},
		src, SimOptions{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests+res.FailedRequests != 400 {
		t.Fatalf("completions %d + failures %d ≠ 400", res.Requests, res.FailedRequests)
	}
	if res.Volume == nil {
		t.Fatal("no volume stats")
	}

	x, lost := TimeToDataLoss(NewLifetimeSampler(1e6, 3), cfg.Members, 1e3, 1<<22)
	y, lost2 := TimeToDataLoss(NewLifetimeSampler(1e6, 3), cfg.Members, 1e3, 1<<22)
	if x != y || lost != lost2 {
		t.Errorf("MTTDL trial not deterministic: (%g,%v) vs (%g,%v)", x, lost, y, lost2)
	}
	if lost && x <= 0 {
		t.Errorf("non-positive loss time %g", x)
	}
}
