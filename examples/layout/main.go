// Layout demo: the §5.3 data-placement study in miniature. The bipartite
// workload (89% small 4 KB reads, 11% large 400 KB streams) runs
// back-to-back under each placement scheme on the MEMS device, with and
// without X settling time, showing why the sled's Cartesian motion makes
// the subregioned layout — which confines popular data in Y as well as X
// — beat the disk-optimal organ pipe.
package main

import (
	"fmt"
	"log"

	"memsim"
)

func main() {
	for _, settle := range []float64{1, 0} {
		cfg := memsim.DefaultMEMSConfig()
		cfg.SettleConstants = settle
		dev, err := memsim.NewMEMSDevice(cfg)
		if err != nil {
			log.Fatal(err)
		}
		g := dev.Geometry()

		placers := []memsim.Placer{
			memsim.NewMEMSSimpleLayout(g),
			memsim.NewMEMSOrganPipeLayout(g, 0.04),
			memsim.NewMEMSColumnarLayout(g, 25),
			memsim.NewMEMSSubregionedLayout(g, 5),
		}

		fmt.Printf("MEMS device, %g settling time constants:\n", settle)
		base := 0.0
		for i, p := range placers {
			src := memsim.NewBipartiteWorkload(memsim.DefaultBipartiteConfig(1), p)
			res := memsim.SimulateClosed(dev, src, memsim.SimOptions{})
			mean := res.Service.Mean()
			if i == 0 {
				base = mean
			}
			fmt.Printf("  %-12s %.3f ms  (%+.1f%% vs simple)\n",
				p.Name(), mean, (1-mean/base)*100)
		}
		fmt.Println()
	}

	// The same contrast on the disk: organ pipe is the right answer there.
	disk, err := memsim.NewDiskDevice(memsim.Atlas10KConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Atlas 10K:")
	base := 0.0
	for i, p := range []memsim.Placer{
		memsim.NewDiskSimpleLayout(disk),
		memsim.NewDiskOrganPipeLayout(disk, 0.04),
	} {
		src := memsim.NewBipartiteWorkload(memsim.DefaultBipartiteConfig(1), p)
		res := memsim.SimulateClosed(disk, src, memsim.SimOptions{})
		mean := res.Service.Mean()
		if i == 0 {
			base = mean
		}
		fmt.Printf("  %-12s %.3f ms  (%+.1f%% vs simple)\n", p.Name(), mean, (1-mean/base)*100)
	}
}
