// Power demo (§7): the same bursty file-server workload runs over a
// power-managed MEMS device and a mobile disk. The MEMS device's 0.5 ms
// restart lets it idle the instant its queue drains — large energy
// savings at an imperceptible latency cost — while the disk's
// multi-second spin-up forces the classic timeout trade-off.
package main

import (
	"fmt"
	"log"

	"memsim"
)

func main() {
	type variant struct {
		device string
		model  memsim.PowerModel
		policy memsim.PowerPolicy
		label  string
	}
	mk := func() (memsim.Device, memsim.Device) {
		m, err := memsim.NewMEMSDevice(memsim.DefaultMEMSConfig())
		if err != nil {
			log.Fatal(err)
		}
		d, err := memsim.NewDiskDevice(memsim.Atlas10KConfig())
		if err != nil {
			log.Fatal(err)
		}
		return m, d
	}

	fmt.Printf("%-12s %-22s %10s %10s %9s %12s\n",
		"device", "policy", "energy(J)", "power(W)", "restarts", "response(ms)")
	for _, v := range []variant{
		{"mems", memsim.MEMSPowerModel(), memsim.ImmediateIdle(), "immediate idle"},
		{"mems", memsim.MEMSPowerModel(), memsim.AlwaysOn(), "always on"},
		{"disk", memsim.MobileDiskPowerModel(), memsim.ImmediateIdle(), "immediate spin-down"},
		{"disk", memsim.MobileDiskPowerModel(), memsim.PowerPolicy{TimeoutMs: 5000}, "5 s timeout"},
		{"disk", memsim.MobileDiskPowerModel(), memsim.AlwaysOn(), "always on"},
	} {
		memsDev, diskDev := mk()
		dev := memsDev
		if v.device == "disk" {
			dev = diskDev
		}
		tr := memsim.GenerateCelloTrace(dev.Capacity(), 10000)
		managed := memsim.NewPowerManaged(dev, v.model, v.policy)
		sched, err := memsim.NewScheduler("FCFS")
		if err != nil {
			log.Fatal(err)
		}
		res := memsim.Simulate(managed, sched, memsim.TraceSource(tr), memsim.SimOptions{})
		managed.FinishAt(res.Elapsed)
		rep := managed.Report()
		fmt.Printf("%-12s %-22s %10.1f %10.3f %9d %12.3f\n",
			v.device, v.label, rep.TotalJ(), rep.MeanPowerW(), rep.Restarts,
			res.Response.Mean())
	}
	fmt.Println("\nthe MEMS restart (0.5 ms) is invisible; the disk's (2 s) is not.")
}
