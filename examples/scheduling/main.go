// Scheduling shoot-out: the §4 experiment in miniature. The four
// schedulers run the same random workload on both the Atlas-10K-class
// disk and the MEMS device, at a light and a heavy arrival rate each,
// showing (a) the order-of-magnitude service-time gap between the
// devices and (b) that the scheduler ranking carries over from disks to
// MEMS-based storage (FCFS ≪ LBN-based ≪ SPTF at load).
package main

import (
	"fmt"
	"log"

	"memsim"
)

func main() {
	mems, err := memsim.NewMEMSDevice(memsim.DefaultMEMSConfig())
	if err != nil {
		log.Fatal(err)
	}
	disk, err := memsim.NewDiskDevice(memsim.Atlas10KConfig())
	if err != nil {
		log.Fatal(err)
	}

	type run struct {
		dev   memsim.Device
		label string
		rates []float64
	}
	runs := []run{
		{disk, "Atlas 10K", []float64{40, 140}},
		{mems, "MEMS", []float64{500, 1800}},
	}

	for _, r := range runs {
		for _, rate := range r.rates {
			fmt.Printf("%s @ %.0f req/s:\n", r.label, rate)
			for _, name := range memsim.SchedulerNames() {
				s, err := memsim.NewScheduler(name)
				if err != nil {
					log.Fatal(err)
				}
				src := memsim.NewRandomWorkload(rate, r.dev.SectorSize(), r.dev.Capacity(), 12000, 7)
				res := memsim.Simulate(r.dev, s, src, memsim.SimOptions{Warmup: 1000})
				fmt.Printf("  %-9s mean response %9.3f ms   cv² %6.2f\n",
					name, res.Response.Mean(), res.Response.SquaredCV())
			}
			fmt.Println()
		}
	}
}
