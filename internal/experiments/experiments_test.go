package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

// tiny returns parameters small enough for unit tests; the shape
// assertions below hold even at this scale.
func tiny() Params {
	return Params{Requests: 1200, Warmup: 150, ClosedRequests: 600, Trials: 100, Seed: 1}
}

// cell parses a numeric table cell (stripping %, /, etc. is the caller's
// job).
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("unparseable cell %q: %v", s, err)
	}
	return v
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{"aging", "bus", "cache", "fault", "faultinject", "fig10", "fig11", "fig5", "fig6", "fig7", "fig8", "fig9", "generations", "mttdl", "phases", "power", "raid", "rebuild", "remap", "schedcost", "seekprofile", "shuffle", "startup", "striping", "table1", "table2"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	if _, err := Run("fig99", tiny()); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tb.AddRow("1", "hello,world")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "hello,world") {
		t.Errorf("Fprint output:\n%s", out)
	}
	buf.Reset()
	tb.CSV(&buf)
	if !strings.Contains(buf.String(), `"hello,world"`) {
		t.Errorf("CSV should quote commas:\n%s", buf.String())
	}
}

func TestTable1Anchors(t *testing.T) {
	ts := Table1(tiny())
	if len(ts) != 2 {
		t.Fatalf("tables = %d", len(ts))
	}
	var joined strings.Builder
	for _, tb := range ts {
		tb.Fprint(&joined)
	}
	out := joined.String()
	for _, anchor := range []string{"6400", "1280", "79.6 MB/s", "3.456 GB", "739 Hz", "75%"} {
		if !strings.Contains(out, anchor) {
			t.Errorf("Table 1 output missing anchor %q", anchor)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	p := tiny()
	ts := Fig5(p)
	if len(ts) != 2 || ts[0].ID != "fig5a" || ts[1].ID != "fig5b" {
		t.Fatalf("unexpected tables %v", ts)
	}
	a := ts[0]
	// Columns: rate, FCFS, SSTF_LBN, C-LOOK, SPTF.
	last := a.Rows[len(a.Rows)-1]
	fcfs, sstf, clook, sptf := cell(t, last[1]), cell(t, last[2]), cell(t, last[3]), cell(t, last[4])
	if !(sptf < fcfs && sstf < fcfs && clook < fcfs) {
		t.Errorf("at saturation all schedulers must beat FCFS: %v", last)
	}
	if sptf > sstf {
		t.Errorf("SPTF (%g) should beat SSTF_LBN (%g) on disk at high load", sptf, sstf)
	}
	// FCFS saturates: response at the top rate far exceeds light load.
	first := a.Rows[0]
	if cell(t, last[1]) < 10*cell(t, first[1]) {
		t.Errorf("FCFS did not saturate: %v vs %v", first, last)
	}
}

func TestFig6Shape(t *testing.T) {
	ts := Fig6(tiny())
	a, b := ts[0], ts[1]
	// At light load all schedulers are sub-millisecond — an order of
	// magnitude below the disk.
	for i := 1; i <= 4; i++ {
		if v := cell(t, a.Rows[0][i]); v > 1.5 {
			t.Errorf("light-load MEMS response %g ms too high", v)
		}
	}
	// FCFS saturates before the others.
	last := a.Rows[len(a.Rows)-1]
	if !(cell(t, last[2]) < cell(t, last[1]) && cell(t, last[3]) < cell(t, last[1])) {
		t.Errorf("FCFS should saturate first: %v", last)
	}
	// C-LOOK has the best starvation resistance among the seek-aware
	// schedulers at the top rate (Fig. 6b).
	lastCV := b.Rows[len(b.Rows)-1]
	if cell(t, lastCV[3]) > cell(t, lastCV[2]) {
		t.Errorf("C-LOOK cv² (%v) should beat SSTF_LBN (%v)", lastCV[3], lastCV[2])
	}
}

func TestFig7Shape(t *testing.T) {
	ts := Fig7(tiny())
	if len(ts) != 4 {
		t.Fatalf("tables = %d", len(ts))
	}
	for _, tb := range []Table{ts[0], ts[2]} {
		// Response grows with scale for every scheduler, and SPTF beats
		// FCFS at the top scale.
		first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
		for i := 1; i <= 4; i++ {
			if cell(t, last[i]) < cell(t, first[i]) {
				t.Errorf("%s: response shrank with scale: %v vs %v", tb.ID, first, last)
			}
		}
		if cell(t, last[4]) > cell(t, last[1]) {
			t.Errorf("%s: SPTF should beat FCFS at top scale: %v", tb.ID, last)
		}
	}
	// §4.3: SPTF's margin over the LBN schedulers is larger on TPC-C
	// than on Cello.
	cello, tpcc := ts[0], ts[2]
	lastC := cello.Rows[len(cello.Rows)-1]
	lastT := tpcc.Rows[len(tpcc.Rows)-1]
	marginC := cell(t, lastC[2]) / cell(t, lastC[4]) // SSTF / SPTF
	marginT := cell(t, lastT[2]) / cell(t, lastT[4])
	if marginT < marginC {
		t.Errorf("SPTF margin on TPC-C (%.2f) should exceed Cello (%.2f)", marginT, marginC)
	}
}

func TestFig8Shape(t *testing.T) {
	ts := Fig8(tiny())
	if len(ts) != 4 {
		t.Fatalf("tables = %d", len(ts))
	}
	settle0 := ts[0]
	settle2 := ts[2]
	// §4.4: with zero settling, SPTF wins by a large margin at high
	// rates; with two constants SSTF_LBN closely approximates (or beats)
	// SPTF.
	last0 := settle0.Rows[len(settle0.Rows)-1]
	if r := cell(t, last0[2]) / cell(t, last0[4]); r < 2 {
		t.Errorf("settle=0: SSTF/SPTF = %.2f, want SPTF winning by ≥2×", r)
	}
	last2 := settle2.Rows[len(settle2.Rows)-1]
	if r := cell(t, last2[2]) / cell(t, last2[4]); r < 0.7 || r > 1.5 {
		t.Errorf("settle=2: SSTF/SPTF = %.2f, want ≈ 1 (SSTF approximates SPTF)", r)
	}
}

func TestFig9Shape(t *testing.T) {
	ts := Fig9(tiny())
	tb := ts[0]
	if len(tb.Rows) != 5 || len(tb.Rows[0]) != 6 {
		t.Fatalf("grid is %dx%d", len(tb.Rows), len(tb.Rows[0]))
	}
	parse := func(s string) (with, without float64) {
		parts := strings.Split(s, "/")
		return cell(t, parts[0]), cell(t, parts[1])
	}
	centerW, centerN := parse(tb.Rows[2][3]) // y2, x2
	cornerW, cornerN := parse(tb.Rows[0][1]) // y0, x0
	if cornerW <= centerW || cornerN <= centerN {
		t.Errorf("corner (%.3f/%.3f) should be slower than center (%.3f/%.3f)",
			cornerW, cornerN, centerW, centerN)
	}
	// §5.1: 10–20% spread between centermost and outermost (no-settle
	// amplifies it); allow a broad band.
	if r := cornerN/centerN - 1; r < 0.03 || r > 0.35 {
		t.Errorf("no-settle corner/center spread = %.1f%%, want ≈ 10–20%%", r*100)
	}
	// Settle strictly increases every cell.
	for _, row := range tb.Rows {
		for _, c := range row[1:] {
			w, n := parse(c)
			if w <= n {
				t.Errorf("settle did not increase service: %s", c)
			}
		}
	}
}

func TestFig10Shape(t *testing.T) {
	ts := Fig10(tiny())
	tb := ts[0]
	base := cell(t, tb.Rows[0][1])
	last := cell(t, tb.Rows[len(tb.Rows)-1][1])
	penalty := last/base - 1
	// §5.2: full-stroke X seeks add only ≈10–12%.
	if penalty < 0.05 || penalty > 0.20 {
		t.Errorf("full-stroke penalty = %.1f%%, want ≈ 10–12%%", penalty*100)
	}
	// Service time is non-decreasing in distance (within noise).
	prev := 0.0
	for _, row := range tb.Rows {
		v := cell(t, row[1])
		if v < prev*0.98 {
			t.Errorf("service decreased with distance: %v", tb.Rows)
		}
		prev = v
	}
}

func TestFig11Shape(t *testing.T) {
	ts := Fig11(tiny())
	tb := ts[0]
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	get := func(device, layout string) float64 {
		for _, row := range tb.Rows {
			if row[0] == device && row[1] == layout {
				return cell(t, row[2])
			}
		}
		t.Fatalf("missing row %s/%s", device, layout)
		return 0
	}
	// All placement schemes beat simple on MEMS.
	simple := get("MEMS", "simple")
	for _, l := range []string{"organ-pipe", "columnar", "subregioned"} {
		if get("MEMS", l) >= simple {
			t.Errorf("%s (%.3f) should beat simple (%.3f) on MEMS", l, get("MEMS", l), simple)
		}
	}
	// On the no-settle device, subregioned (the only layout optimizing
	// both X and Y) is strictly the best — the paper's headline that the
	// optimal disk layout is not optimal for MEMS.
	sub := get("MEMS-nosettle", "subregioned")
	for _, l := range []string{"simple", "organ-pipe", "columnar"} {
		if sub >= get("MEMS-nosettle", l) {
			t.Errorf("subregioned (%.3f) should beat %s (%.3f) on no-settle MEMS",
				sub, l, get("MEMS-nosettle", l))
		}
	}
	// Organ pipe helps the disk.
	if get("Atlas10K", "organ-pipe") >= get("Atlas10K", "simple") {
		t.Error("organ pipe should help the disk")
	}
}

func TestTable2Shape(t *testing.T) {
	ts := Table2(tiny())
	tb := ts[0]
	// Rows: read, reposition, write, total; columns 1..4 as labeled.
	find := func(name string) []string {
		for _, row := range tb.Rows {
			if row[0] == name {
				return row
			}
		}
		t.Fatalf("missing row %q", name)
		return nil
	}
	rep := find("reposition")
	total := find("total")
	// Disk ×8 reposition ≈ a (nearly) full rotation; MEMS ≈ one
	// turnaround, two orders of magnitude less.
	disk8, mems8 := cell(t, rep[1]), cell(t, rep[3])
	if disk8 < 5 || disk8 > 6.2 {
		t.Errorf("disk ×8 reposition = %g ms, want ≈ 5.8–6.0", disk8)
	}
	if mems8 > 0.3 {
		t.Errorf("MEMS ×8 reposition = %g ms, want ≈ 0.04–0.07", mems8)
	}
	// Track-length transfers: paper's anchors 12.00 (disk) and 4.45 (MEMS).
	disk334, mems334 := cell(t, total[2]), cell(t, total[4])
	if disk334 < 11 || disk334 > 13 {
		t.Errorf("disk ×334 total = %g ms, want ≈ 12", disk334)
	}
	if mems334 < 4 || mems334 > 5 {
		t.Errorf("MEMS ×334 total = %g ms, want ≈ 4.4", mems334)
	}
	// MEMS ×8 total ≈ 0.33 ms (paper).
	if v := cell(t, total[3]); v < 0.25 || v > 0.45 {
		t.Errorf("MEMS ×8 total = %g ms, want ≈ 0.33", v)
	}
}

func TestFaultShape(t *testing.T) {
	ts := FaultTolerance(tiny())
	if len(ts) != 4 {
		t.Fatalf("tables = %d", len(ts))
	}
	loss := ts[0]
	// k=1: the disk-like configuration always loses data; all redundant
	// configurations never do.
	first := loss.Rows[0]
	if cell(t, first[1]) != 1 {
		t.Errorf("disk-like P(loss|1) = %v, want 1", first[1])
	}
	for i := 2; i <= 4; i++ {
		if cell(t, first[i]) != 0 {
			t.Errorf("redundant config %d P(loss|1) = %v, want 0", i, first[i])
		}
	}
	// Loss probability is non-decreasing down each column.
	for col := 1; col <= 4; col++ {
		prev := -1.0
		for _, row := range loss.Rows {
			v := cell(t, row[col])
			if v < prev-0.05 { // Monte-Carlo noise tolerance
				t.Errorf("column %d not monotone: %v", col, loss.Rows)
			}
			prev = v
		}
	}
	// Remap neutrality: every track shows the identical service time.
	remap := ts[2]
	base := remap.Rows[0][1]
	for _, row := range remap.Rows {
		if row[1] != base {
			t.Errorf("remap timing differs across tip groups: %v", remap.Rows)
		}
	}
}

func TestPowerShape(t *testing.T) {
	ts := Power(tiny())
	tb := ts[0]
	get := func(device, policy string) []string {
		for _, row := range tb.Rows {
			if row[0] == device && row[1] == policy {
				return row
			}
		}
		t.Fatalf("missing row %s/%s", device, policy)
		return nil
	}
	memsIdle := get("MEMS", "immediate idle")
	memsOn := get("MEMS", "always on")
	// Aggressive idling saves energy on MEMS…
	if cell(t, memsIdle[2]) >= cell(t, memsOn[2]) {
		t.Errorf("MEMS immediate idle should save energy: %v vs %v", memsIdle, memsOn)
	}
	// …at a sub-millisecond mean response cost.
	if cell(t, memsIdle[6])-cell(t, memsOn[6]) > 1.0 {
		t.Errorf("MEMS idle penalty too high: %v vs %v", memsIdle, memsOn)
	}
	// The mobile disk's immediate spin-down devastates response time.
	diskIdle := get("mobile disk", "immediate spin-down")
	diskOn := get("mobile disk", "always on")
	if cell(t, diskIdle[6]) < 5*cell(t, diskOn[6]) {
		t.Errorf("disk immediate spin-down should blow up response: %v vs %v", diskIdle, diskOn)
	}
}

func TestRunAllProducesEveryArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	tables := RunAll(tiny())
	seen := map[string]bool{}
	for _, tb := range tables {
		seen[tb.ID] = true
		if len(tb.Rows) == 0 || len(tb.Columns) == 0 {
			t.Errorf("table %s is empty", tb.ID)
		}
	}
	for _, id := range []string{"table1", "fig5a", "fig5b", "fig6a", "fig6b",
		"fig7a", "fig7b", "fig8-settle0a", "fig8-settle2a", "fig9", "fig10",
		"fig11", "table2", "fault-loss", "power", "raid", "cache", "aging", "remap",
		"generations", "startup", "startup-sync", "power-compress", "shuffle", "bus", "striping",
		"seekprofile-mems", "seekprofile-disk"} {
		if !seen[id] {
			t.Errorf("missing artifact %s", id)
		}
	}
}

func TestPhasesShape(t *testing.T) {
	ts := Phases(tiny())
	if len(ts) != 2 || ts[0].ID != "phasesa" || ts[1].ID != "phasesb" {
		t.Fatalf("unexpected tables %v", ts)
	}
	a, b := ts[0], ts[1]
	if len(a.Rows) != 8 || len(b.Rows) != 8 { // 2 devices × 4 schedulers
		t.Fatalf("rows = %d/%d, want 8/8", len(a.Rows), len(b.Rows))
	}
	for i, row := range a.Rows {
		// Columns: device, sched, seek, settle/rot, turnarnd, transfer,
		// overhead, position, service. Position and service must reconcile
		// with their parts up to the 3-decimal rendering.
		seek, settle, turn := cell(t, row[2]), cell(t, row[3]), cell(t, row[4])
		xfer, ovh, pos, svc := cell(t, row[5]), cell(t, row[6]), cell(t, row[7]), cell(t, row[8])
		if math.Abs(pos-(seek+settle+turn)) > 0.003 {
			t.Errorf("row %d: position %g != seek+settle+turnaround %g", i, pos, seek+settle+turn)
		}
		if math.Abs(svc-(pos+xfer+ovh)) > 0.003 {
			t.Errorf("row %d: service %g != position+transfer+overhead %g", i, svc, pos+xfer+ovh)
		}
	}
	// The paper's decomposition argument: MEMS service is several times
	// smaller than disk service, and positioning dominates the disk far
	// more than the MEMS device (pos share, last column of panel b).
	memsSvc, diskSvc := cell(t, a.Rows[0][8]), cell(t, a.Rows[4][8])
	if diskSvc < 5*memsSvc {
		t.Errorf("disk service %g not ≫ MEMS %g", diskSvc, memsSvc)
	}
	memsShare, diskShare := cell(t, b.Rows[0][6]), cell(t, b.Rows[4][6])
	if !(memsShare > 0 && memsShare < 1 && diskShare > memsShare) {
		t.Errorf("pos shares mems=%g disk=%g", memsShare, diskShare)
	}
	// Tails are ordered: p95 ≤ p99 for both positioning and service.
	for i, row := range b.Rows {
		if cell(t, row[2]) > cell(t, row[3]) || cell(t, row[4]) > cell(t, row[5]) {
			t.Errorf("row %d: percentile inversion %v", i, row)
		}
	}
}
