package sim

import (
	"fmt"

	"memsim/internal/core"
	"memsim/internal/workload"
)

// Router directs a volume-level request to a member device, returning
// the member index and the request to issue there (with the LBN
// translated into the member's address space).
type Router func(*core.Request) (dev int, devReq *core.Request)

// RunMulti drives an open-arrival workload over several devices, each
// with its own scheduler queue, completing independently — the
// multi-device volume case (e.g. the paper's TPC-C testbed striped its
// database across two drives). It is event-driven: arrivals and
// completions interleave on the EventQueue.
//
// The returned Result aggregates over all devices and reports
// per-member shares in Result.Members (with per-member phase
// attribution when the probe carries a PhaseCollector); response times
// are measured per volume-level request. ctx (which may be nil)
// observes the run's progress.
//
// Configuration errors — no devices, mismatched device/scheduler
// counts, a nil router or source, or a router that returns an
// out-of-range member index mid-run — are returned as errors; in the
// mid-run case the partial Result up to the faulty routing decision
// accompanies the error.
func RunMulti(ctx *Context, devs []core.Device, scheds []core.Scheduler, route Router,
	src workload.Source, opts Options) (Result, error) {
	if len(devs) == 0 || len(devs) != len(scheds) {
		return Result{}, fmt.Errorf("sim: %d devices with %d schedulers", len(devs), len(scheds))
	}
	if route == nil {
		return Result{}, fmt.Errorf("sim: RunMulti needs a router")
	}
	if src == nil {
		return Result{}, fmt.Errorf("sim: RunMulti needs a workload source")
	}
	for i := range devs {
		devs[i].Reset()
		scheds[i].Reset()
	}
	p := opts.Probe
	resetProbe(p)
	var res Result
	var q EventQueue
	var runErr error
	busy := make([]bool, len(devs))
	members := make([]MemberResult, len(devs))
	var memberPhases []PhaseStats
	if findPhaseCollector(p) != nil {
		memberPhases = make([]PhaseStats, len(devs))
	}
	completed := 0
	stopped := false

	complete := func(dev int, r *core.Request, qlen int) {
		completed++
		members[dev].Requests++
		if memberPhases != nil && completed > opts.Warmup {
			memberPhases[dev].add(r.Phases)
		}
		ctx.progress(completed, q.Now())
		if p != nil {
			p.Observe(ProbeEvent{Kind: EventComplete, Time: q.Now(), Dev: dev, Req: r,
				Measured: completed > opts.Warmup})
		}
		if opts.OnComplete != nil {
			opts.OnComplete(r)
		}
		if completed > opts.Warmup {
			res.Requests++
			res.Response.Add(r.ResponseTime())
			res.Service.Add(r.ServiceTime())
			res.QueueLen.Add(float64(qlen))
			if qlen > res.MaxQueue {
				res.MaxQueue = qlen
			}
		}
		if opts.MaxRequests > 0 && completed >= opts.MaxRequests {
			stopped = true
		}
	}

	var dispatch func(i int)
	dispatch = func(i int) {
		if busy[i] || stopped {
			return
		}
		now := q.Now()
		qlen := scheds[i].Len()
		r := scheds[i].Next(devs[i], now)
		if r == nil {
			return
		}
		busy[i] = true
		r.Start = now
		if p != nil {
			p.Observe(ProbeEvent{Kind: EventDispatch, Time: now, Dev: i, Req: r, Queue: qlen})
		}
		svc := devs[i].Access(r, now)
		r.Finish = now + svc
		res.Busy += svc
		members[i].Busy += svc
		if p != nil {
			bd := breakdownOf(devs[i], svc)
			r.Phases.Accumulate(bd)
			p.Observe(ProbeEvent{Kind: EventService, Time: r.Finish, Dev: i, Req: r, Breakdown: bd})
		}
		q.Schedule(r.Finish, func() {
			busy[i] = false
			complete(i, r, qlen)
			dispatch(i)
		})
	}

	// Arrival chain: each arrival event ingests one request and schedules
	// the next.
	var arrive func(r *core.Request)
	arrive = func(r *core.Request) {
		i, devReq := route(r)
		if i < 0 || i >= len(devs) {
			runErr = fmt.Errorf("sim: router sent request to device %d of %d", i, len(devs))
			stopped = true
			return
		}
		// The device request carries the volume request's arrival time so
		// response accounting is end-to-end; the router may return r
		// itself when no translation is needed.
		devReq.Arrival = r.Arrival
		scheds[i].Add(devReq)
		if p != nil {
			p.Observe(ProbeEvent{Kind: EventArrive, Time: r.Arrival, Dev: i, Req: devReq,
				Queue: scheds[i].Len()})
		}
		dispatch(i)
		if next := src.Next(); next != nil {
			q.Schedule(next.Arrival, func() { arrive(next) })
		}
	}
	if first := src.Next(); first != nil {
		q.Schedule(first.Arrival, func() { arrive(first) })
	}
	for !stopped && q.Step() {
	}
	res.Elapsed = q.Now()
	res.Phases = phaseStats(p)
	for i := range members {
		if memberPhases != nil {
			members[i].Phases = &memberPhases[i]
		}
	}
	res.Members = members
	return res, runErr
}

// ConcatRouter routes by address concatenation: device i holds the LBN
// range [i·perDev, (i+1)·perDev).
func ConcatRouter(perDev int64) Router {
	return func(r *core.Request) (int, *core.Request) {
		dev := int(r.LBN / perDev)
		nr := *r
		nr.LBN = r.LBN % perDev
		// Clamp requests that would spill past the member boundary; the
		// volume-level generator is expected to respect it, but the
		// router must stay total.
		if nr.LBN+int64(nr.Blocks) > perDev {
			nr.Blocks = int(perDev - nr.LBN)
		}
		return dev, &nr
	}
}

// StripeRouter routes by striping: unit-sized strips rotate across n
// devices. Requests must fit within one strip.
func StripeRouter(unit int64, n int) Router {
	return func(r *core.Request) (int, *core.Request) {
		strip := r.LBN / unit
		dev := int(strip % int64(n))
		row := strip / int64(n)
		nr := *r
		nr.LBN = row*unit + r.LBN%unit
		if off := r.LBN % unit; off+int64(r.Blocks) > unit {
			nr.Blocks = int(unit - off)
		}
		return dev, &nr
	}
}
