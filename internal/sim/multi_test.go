package sim

import (
	"math"
	"testing"

	"memsim/internal/core"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/workload"
)

// mustMulti runs RunMulti and fails the test on a configuration error.
func mustMulti(t *testing.T, ctx *Context, devs []core.Device, scheds []core.Scheduler,
	route Router, src workload.Source, opts Options) Result {
	t.Helper()
	res, err := RunMulti(ctx, devs, scheds, route, src, opts)
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	return res
}

func multiFixtures(n int, svc float64) ([]core.Device, []core.Scheduler) {
	devs := make([]core.Device, n)
	scheds := make([]core.Scheduler, n)
	for i := range devs {
		devs[i] = &fixedDevice{svc: svc}
		scheds[i] = sched.NewFCFS()
	}
	return devs, scheds
}

func TestRunMultiParallelism(t *testing.T) {
	// Four simultaneous arrivals onto four devices: all finish at svc.
	devs, scheds := multiFixtures(4, 2)
	reqs := mkReqs([]float64{0, 0, 0, 0})
	for i, r := range reqs {
		r.LBN = int64(i) * 100 // route one to each device
	}
	res := mustMulti(t, nil, devs, scheds, ConcatRouter(100), workload.NewFromSlice(reqs), Options{})
	if res.Requests != 4 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.Response.Mean() != 2 || res.Response.Max() != 2 {
		t.Errorf("responses = mean %g max %g, want all 2 (parallel)", res.Response.Mean(), res.Response.Max())
	}
	if res.Elapsed != 2 {
		t.Errorf("elapsed = %g, want 2", res.Elapsed)
	}
}

func TestRunMultiSerializesPerDevice(t *testing.T) {
	// Four simultaneous arrivals onto one device of four: they queue.
	devs, scheds := multiFixtures(4, 2)
	reqs := mkReqs([]float64{0, 0, 0, 0})
	res := mustMulti(t, nil, devs, scheds, ConcatRouter(100), workload.NewFromSlice(reqs), Options{})
	if res.Response.Max() != 8 {
		t.Errorf("max response = %g, want 8 (serialized)", res.Response.Max())
	}
}

func TestRunMultiMatchesSingleDeviceRun(t *testing.T) {
	// With one device, RunMulti must agree exactly with Run.
	d1 := mems.MustDevice(mems.DefaultConfig())
	src1 := workload.DefaultRandom(900, 512, d1.Capacity(), 3000, 9)
	single := Run(nil, d1, sched.NewFCFS(), src1, Options{Warmup: 100})

	d2 := mems.MustDevice(mems.DefaultConfig())
	src2 := workload.DefaultRandom(900, 512, d2.Capacity(), 3000, 9)
	multi := mustMulti(t, nil, []core.Device{d2}, []core.Scheduler{sched.NewFCFS()},
		ConcatRouter(d2.Capacity()), src2, Options{Warmup: 100})

	if math.Abs(single.Response.Mean()-multi.Response.Mean()) > 1e-9 {
		t.Errorf("single %.6f vs multi %.6f", single.Response.Mean(), multi.Response.Mean())
	}
	if single.Requests != multi.Requests {
		t.Errorf("request counts differ: %d vs %d", single.Requests, multi.Requests)
	}
}

func TestRunMultiScalesThroughput(t *testing.T) {
	// A rate that saturates one MEMS device is comfortable for four.
	mk := func(n int) ([]core.Device, []core.Scheduler, int64) {
		devs := make([]core.Device, n)
		scheds := make([]core.Scheduler, n)
		for i := range devs {
			devs[i] = mems.MustDevice(mems.DefaultConfig())
			scheds[i] = sched.NewSPTF()
		}
		return devs, scheds, devs[0].Capacity()
	}
	devs1, scheds1, cap1 := mk(1)
	src := workload.DefaultRandom(2000, 512, cap1, 6000, 4)
	one := mustMulti(t, nil, devs1, scheds1, ConcatRouter(cap1), src, Options{Warmup: 500})

	devs4, scheds4, cap4 := mk(4)
	src4 := workload.DefaultRandom(2000, 512, 4*cap4, 6000, 4)
	four := mustMulti(t, nil, devs4, scheds4, ConcatRouter(cap4), src4, Options{Warmup: 500})

	if four.Response.Mean()*3 > one.Response.Mean() {
		t.Errorf("4-device volume %.2f ms should be far below saturated single %.2f ms",
			four.Response.Mean(), one.Response.Mean())
	}
}

func TestRunMultiMaxRequests(t *testing.T) {
	devs, scheds := multiFixtures(2, 1)
	src := workload.NewFromSlice(mkReqs(make([]float64, 50)))
	res := mustMulti(t, nil, devs, scheds, ConcatRouter(1<<29), src, Options{MaxRequests: 7})
	if res.Requests != 7 {
		t.Errorf("requests = %d, want 7", res.Requests)
	}
}

func TestRunMultiErrors(t *testing.T) {
	devs, scheds := multiFixtures(2, 1)
	src := func() workload.Source { return workload.NewFromSlice(mkReqs([]float64{0})) }
	cases := []struct {
		name string
		run  func() (Result, error)
	}{
		{"no devices", func() (Result, error) {
			return RunMulti(nil, nil, nil, ConcatRouter(100), src(), Options{})
		}},
		{"count mismatch", func() (Result, error) {
			return RunMulti(nil, devs, scheds[:1], ConcatRouter(100), src(), Options{})
		}},
		{"nil router", func() (Result, error) {
			return RunMulti(nil, devs, scheds, nil, src(), Options{})
		}},
		{"nil source", func() (Result, error) {
			return RunMulti(nil, devs, scheds, ConcatRouter(100), nil, Options{})
		}},
		{"router out of range", func() (Result, error) {
			bad := func(*core.Request) (int, *core.Request) { return 5, &core.Request{Blocks: 1} }
			return RunMulti(nil, devs, scheds, bad, src(), Options{})
		}},
	}
	for _, tc := range cases {
		if _, err := tc.run(); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

func TestRunMultiMemberAttribution(t *testing.T) {
	// Three requests to device 0, one to device 1: Members must split
	// the per-device shares while the aggregate covers both.
	devs, scheds := multiFixtures(2, 2)
	reqs := mkReqs([]float64{0, 1, 2, 3})
	reqs[3].LBN = 100 // route to device 1
	res := mustMulti(t, nil, devs, scheds, ConcatRouter(100), workload.NewFromSlice(reqs), Options{})
	if len(res.Members) != 2 {
		t.Fatalf("members = %d, want 2", len(res.Members))
	}
	if res.Members[0].Requests != 3 || res.Members[1].Requests != 1 {
		t.Errorf("member requests = %d,%d, want 3,1",
			res.Members[0].Requests, res.Members[1].Requests)
	}
	if res.Members[0].Busy != 6 || res.Members[1].Busy != 2 {
		t.Errorf("member busy = %g,%g, want 6,2", res.Members[0].Busy, res.Members[1].Busy)
	}
	if got := res.Members[0].Busy + res.Members[1].Busy; got != res.Busy {
		t.Errorf("member busy sum %g != total %g", got, res.Busy)
	}
	if res.Members[0].Phases != nil {
		t.Error("member phases present without a PhaseCollector")
	}

	// With a PhaseCollector, per-member phases appear and their request
	// counts match the member split.
	pc := NewPhaseCollector()
	reqs2 := mkReqs([]float64{0, 1, 2, 3})
	reqs2[3].LBN = 100
	res2 := mustMulti(t, nil, devs, scheds, ConcatRouter(100), workload.NewFromSlice(reqs2),
		Options{Probe: pc})
	if res2.Members[0].Phases == nil || res2.Members[1].Phases == nil {
		t.Fatal("member phases missing with a PhaseCollector")
	}
	if res2.Members[0].Phases.Requests != 3 || res2.Members[1].Phases.Requests != 1 {
		t.Errorf("member phase requests = %d,%d, want 3,1",
			res2.Members[0].Phases.Requests, res2.Members[1].Phases.Requests)
	}
}

func TestConcatRouter(t *testing.T) {
	r := ConcatRouter(1000)
	dev, nr := r(&core.Request{LBN: 2500, Blocks: 8})
	if dev != 2 || nr.LBN != 500 || nr.Blocks != 8 {
		t.Errorf("routed to dev=%d lbn=%d blocks=%d", dev, nr.LBN, nr.Blocks)
	}
	// Spill past the member boundary is clamped.
	_, nr = r(&core.Request{LBN: 995, Blocks: 10})
	if nr.Blocks != 5 {
		t.Errorf("clamped blocks = %d, want 5", nr.Blocks)
	}
}

func TestStripeRouter(t *testing.T) {
	r := StripeRouter(8, 4)
	// Strip 0 → dev 0 row 0; strip 1 → dev 1 row 0; strip 4 → dev 0 row 1.
	dev, nr := r(&core.Request{LBN: 0, Blocks: 8})
	if dev != 0 || nr.LBN != 0 {
		t.Errorf("strip 0: dev=%d lbn=%d", dev, nr.LBN)
	}
	dev, nr = r(&core.Request{LBN: 8, Blocks: 8})
	if dev != 1 || nr.LBN != 0 {
		t.Errorf("strip 1: dev=%d lbn=%d", dev, nr.LBN)
	}
	dev, nr = r(&core.Request{LBN: 32, Blocks: 8})
	if dev != 0 || nr.LBN != 8 {
		t.Errorf("strip 4: dev=%d lbn=%d", dev, nr.LBN)
	}
	// Requests crossing a strip boundary are clamped to the strip.
	_, nr = r(&core.Request{LBN: 6, Blocks: 8})
	if nr.Blocks != 2 {
		t.Errorf("clamped blocks = %d, want 2", nr.Blocks)
	}
}
