package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.SquaredCV() != 0 {
		t.Fatalf("zero-value Welford should report zeros, got n=%d mean=%g var=%g",
			w.N(), w.Mean(), w.Variance())
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.N() != 1 || w.Mean() != 42 || w.Variance() != 0 {
		t.Fatalf("single observation: n=%d mean=%g var=%g", w.N(), w.Mean(), w.Variance())
	}
	if w.Min() != 42 || w.Max() != 42 {
		t.Fatalf("min/max: %g/%g", w.Min(), w.Max())
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Mean() != 5 {
		t.Errorf("mean = %g, want 5", w.Mean())
	}
	if w.Variance() != 4 {
		t.Errorf("variance = %g, want 4", w.Variance())
	}
	if w.StdDev() != 2 {
		t.Errorf("stddev = %g, want 2", w.StdDev())
	}
	if got := w.SquaredCV(); got != 4.0/25.0 {
		t.Errorf("cv² = %g, want %g", got, 4.0/25.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordSampleVariance(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	want := 32.0 / 7.0
	if !almostEqual(w.SampleVariance(), want, 1e-12) {
		t.Errorf("sample variance = %g, want %g", w.SampleVariance(), want)
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var w Welford
	var xs []float64
	for i := 0; i < 10000; i++ {
		x := rng.NormFloat64()*3 + 100
		xs = append(xs, x)
		w.Add(x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	naiveVar := varSum / float64(len(xs))
	if !almostEqual(w.Mean(), mean, 1e-10) {
		t.Errorf("mean = %.12g, naive %.12g", w.Mean(), mean)
	}
	if !almostEqual(w.Variance(), naiveVar, 1e-8) {
		t.Errorf("variance = %.12g, naive %.12g", w.Variance(), naiveVar)
	}
}

func TestWelfordMergeEquivalence(t *testing.T) {
	// Property: merging two accumulators is equivalent to adding all
	// observations to one.
	f := func(a, b []float64) bool {
		var w1, w2, all Welford
		for _, x := range a {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			x = math.Mod(x, 1e6)
			w1.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			x = math.Mod(x, 1e6)
			w2.Add(x)
			all.Add(x)
		}
		w1.Merge(&w2)
		return w1.N() == all.N() &&
			almostEqual(w1.Mean(), all.Mean(), 1e-9) &&
			almostEqual(w1.Variance(), all.Variance(), 1e-6) &&
			w1.Min() == all.Min() && w1.Max() == all.Max() || all.N() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeIntoEmpty(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(3)
	a.Merge(&b)
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatalf("merge into empty: n=%d mean=%g", a.N(), a.Mean())
	}
	var c Welford
	a.Merge(&c) // merging empty is a no-op
	if a.N() != 2 {
		t.Fatalf("merge of empty changed n=%d", a.N())
	}
}

func TestWelfordVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			w.Add(math.Mod(x, 1e9))
		}
		return w.Variance() >= 0 && w.SampleVariance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5}, {25, 25.75}, {75, 75.25},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	if got := s.Median(); !almostEqual(got, 50.5, 1e-12) {
		t.Errorf("median = %g, want 50.5", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Percentile(50) != 0 || s.N() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSamplePercentileMonotonic(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		prev := s.Percentile(0)
		for p := 5.0; p <= 100; p += 5 {
			cur := s.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // under
	h.Add(10) // over (range is half-open)
	h.Add(99) // over
	for i, c := range h.Buckets {
		if c != 1 {
			t.Errorf("bucket %d = %d, want 1", i, c)
		}
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d, want 1/2", h.Under, h.Over)
	}
	if h.Total() != 13 {
		t.Errorf("total=%d, want 13", h.Total())
	}
	lo, hi := h.BucketBounds(3)
	if lo != 3 || hi != 4 {
		t.Errorf("bounds(3) = [%g,%g), want [3,4)", lo, hi)
	}
}

func TestHistogramEdgeJustBelowHi(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Add(math.Nextafter(1, 0)) // must land in the last bucket, not panic
	if h.Buckets[2] != 1 {
		t.Fatalf("value just below hi landed in %v", h.Buckets)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(2, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid histogram construction")
				}
			}()
			f()
		}()
	}
}

func TestHistogramConservation(t *testing.T) {
	// Property: every added observation is counted exactly once.
	f := func(xs []float64) bool {
		h := NewHistogram(-100, 100, 17)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		sum := h.Under + h.Over
		for _, c := range h.Buckets {
			sum += c
		}
		return sum == int64(n) && h.Total() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeterConcurrentAdds(t *testing.T) {
	// A Meter must accumulate exactly like a Welford fed the same
	// observations, regardless of how many goroutines feed it.
	var m Meter
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Add(float64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	snap := m.Snapshot()
	if snap.N() != workers*per {
		t.Fatalf("N = %d, want %d", snap.N(), workers*per)
	}
	want := float64(workers*per-1) / 2
	if math.Abs(snap.Mean()-want) > 1e-9 {
		t.Errorf("mean = %g, want %g", snap.Mean(), want)
	}
}
