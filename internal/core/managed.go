package core

import "fmt"

// ManagedDevice composes a device with an OS-level block layout: requests
// are remapped through the layout before reaching the device, which is
// how the data-placement schemes of §5 interpose on a file system's block
// address stream.
//
// The layout must preserve the contiguity of any extent actually
// requested (all shipped layouts remap extents, not individual blocks);
// ManagedDevice verifies this per request and panics on violations, which
// indicate a broken layout rather than a runtime condition.
type ManagedDevice struct {
	inner  Device
	layout Layout
}

var _ Device = (*ManagedDevice)(nil)

// NewManagedDevice wraps inner with the given layout; a nil layout means
// identity.
func NewManagedDevice(inner Device, l Layout) *ManagedDevice {
	if l == nil {
		l = IdentityLayout{}
	}
	return &ManagedDevice{inner: inner, layout: l}
}

// Name implements Device.
func (m *ManagedDevice) Name() string {
	return fmt.Sprintf("%s/%s", m.inner.Name(), m.layout.Name())
}

// Capacity implements Device.
func (m *ManagedDevice) Capacity() int64 { return m.inner.Capacity() }

// SectorSize implements Device.
func (m *ManagedDevice) SectorSize() int { return m.inner.SectorSize() }

// Reset implements Device.
func (m *ManagedDevice) Reset() { m.inner.Reset() }

// remap translates req through the layout, checking extent contiguity.
func (m *ManagedDevice) remap(req *Request) *Request {
	start := m.layout.Map(req.LBN)
	if req.Blocks > 1 {
		end := m.layout.Map(req.LBN + int64(req.Blocks) - 1)
		if end != start+int64(req.Blocks)-1 {
			panic(fmt.Sprintf("core: layout %s split extent [%d,%d): maps to %d..%d",
				m.layout.Name(), req.LBN, req.LBN+int64(req.Blocks), start, end))
		}
	}
	r := *req
	r.LBN = start
	return &r
}

// Access implements Device.
func (m *ManagedDevice) Access(req *Request, now float64) float64 {
	return m.inner.Access(m.remap(req), now)
}

// EstimateAccess implements Device.
func (m *ManagedDevice) EstimateAccess(req *Request, now float64) float64 {
	return m.inner.EstimateAccess(m.remap(req), now)
}

// EstimateBreakdown implements BreakdownEstimator by remapping the
// request and delegating, mirroring EstimateAccess. When the inner
// device cannot decompose, the scalar-fallback convention of the
// package-level EstimateBreakdown applies.
func (m *ManagedDevice) EstimateBreakdown(req *Request, now float64) Breakdown {
	return EstimateBreakdown(m.inner, m.remap(req), now)
}

// LastBreakdown implements BreakdownReporter by delegation: remapping
// changes where a request lands, not how its service decomposes.
func (m *ManagedDevice) LastBreakdown() (Breakdown, bool) {
	if br, ok := m.inner.(BreakdownReporter); ok {
		return br.LastBreakdown()
	}
	return Breakdown{}, false
}
