package sim

import (
	"memsim/internal/core"
	"memsim/internal/stats"
)

// EventKind enumerates the request-lifecycle events a Probe observes.
type EventKind uint8

const (
	// EventArrive fires when a request enters a scheduler queue.
	EventArrive EventKind = iota
	// EventDispatch fires when the scheduler hands a request to the
	// device.
	EventDispatch
	// EventService fires when one service visit finishes, carrying the
	// visit's phase Breakdown (recovery surcharges included).
	EventService
	// EventRetry fires for each device-level retry of a transient
	// positioning error (the PR-2 fault path); Breakdown.Recovery holds
	// the retry's penalty.
	EventRetry
	// EventRequeue fires when a failed service visit returns the request
	// to the scheduler queue.
	EventRequeue
	// EventComplete fires when a request leaves the system.
	EventComplete
	// EventDeviceFail fires when a scheduled whole-device failure flips
	// a volume member into the failed state (RunVolume); Dev is the
	// failed member slot. Req is nil.
	EventDeviceFail
	// EventRebuildStart fires when an online rebuild onto a hot spare
	// begins; Dev is the member slot being rebuilt. Req is nil.
	EventRebuildStart
	// EventRebuildDone fires when the rebuild completes and the spare
	// permanently backs the failed slot; Dev is the rebuilt member
	// slot. Req is nil.
	EventRebuildDone
	// EventRebuildPace fires when the rebuild policy changes its pace
	// mid-rebuild (never under the default fixed-fraction policy); Dev
	// is the member slot being rebuilt, Queue the foreground queue depth
	// the decision saw, and Pace the new duty cycle. Req is nil.
	EventRebuildPace
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventArrive:
		return "arrive"
	case EventDispatch:
		return "dispatch"
	case EventService:
		return "service"
	case EventRetry:
		return "retry"
	case EventRequeue:
		return "requeue"
	case EventComplete:
		return "complete"
	case EventDeviceFail:
		return "device-fail"
	case EventRebuildStart:
		return "rebuild-start"
	case EventRebuildDone:
		return "rebuild-done"
	case EventRebuildPace:
		return "rebuild-pace"
	default:
		return "unknown"
	}
}

// ProbeEvent is one typed lifecycle observation. The Req pointer is the
// live simulation request: probes may read it but must not mutate it.
type ProbeEvent struct {
	// Kind is the lifecycle stage.
	Kind EventKind
	// Time is the simulated time of the event in ms.
	Time float64
	// Run labels the simulation run (the job label when driven by the
	// experiment runner; empty otherwise).
	Run string
	// Dev is the device index for multi-device runs, 0 otherwise.
	Dev int
	// Queue is the pending-queue length including this request, valid
	// for arrive and dispatch events.
	Queue int
	// Class is the request's scheduling class, stamped on dispatch
	// events (member ops under RunVolume carry the class the volume
	// tagged them with); zero (foreground) elsewhere. In-memory only:
	// the JSONL trace format does not serialize it.
	Class core.Class
	// Req is the request the event concerns.
	Req *core.Request
	// Breakdown carries the visit's phase decomposition for service
	// events, and the single retry's penalty (in Recovery) for retry
	// events.
	Breakdown core.Breakdown
	// Measured marks a complete event that lands in the measured window
	// (past warmup, not failed).
	Measured bool
	// Pace is the rebuild duty cycle chosen by a pace-change event
	// (EventRebuildPace); zero otherwise.
	Pace float64
}

// Probe observes request-lifecycle events. A nil Probe is valid and
// free: the simulator emits nothing, touches no Breakdown bookkeeping,
// and produces byte-identical results to an unprobed run (enforced by
// test, the same discipline as the zero-rate fault injector).
//
// Probes attached via Options.Probe are called synchronously from the
// single-threaded simulation loop; implementations shared across
// parallel runner jobs must be safe for concurrent use (JSONLProbe is).
type Probe interface {
	Observe(ProbeEvent)
}

// ProbeResetter is implemented by probes with run-scoped state
// (PhaseCollector). The simulation entry points reset such probes
// alongside the device and scheduler, so reusing one Options value
// across runs starts each run's statistics fresh.
type ProbeResetter interface {
	ResetProbe()
}

// MultiProbe fans events out to several probes in order; nil elements
// are skipped.
type MultiProbe []Probe

// Observe implements Probe.
func (m MultiProbe) Observe(ev ProbeEvent) {
	for _, p := range m {
		if p != nil {
			p.Observe(ev)
		}
	}
}

// runLabelProbe stamps a run label onto every event before forwarding.
// It deliberately does not forward ResetProbe: the runner shares one
// underlying probe across jobs, and per-job resets would clobber it.
type runLabelProbe struct {
	run string
	p   Probe
}

func (l runLabelProbe) Observe(ev ProbeEvent) {
	ev.Run = l.run
	l.p.Observe(ev)
}

// WithRun wraps p so every observed event carries the given run label;
// the experiment runner uses it to attribute one shared probe's events
// to jobs. A nil p returns nil.
func WithRun(p Probe, run string) Probe {
	if p == nil {
		return nil
	}
	return runLabelProbe{run: run, p: p}
}

// resetProbe resets run-scoped probe state, descending into MultiProbe.
func resetProbe(p Probe) {
	switch pr := p.(type) {
	case nil:
	case MultiProbe:
		for _, sub := range pr {
			resetProbe(sub)
		}
	default:
		if r, ok := p.(ProbeResetter); ok {
			r.ResetProbe()
		}
	}
}

// breakdownOf returns d's decomposition of the access that just returned
// svc, or an undecomposed breakdown (all service unattributed) for
// devices that do not report one.
func breakdownOf(d core.Device, svc float64) core.Breakdown {
	if br, ok := d.(core.BreakdownReporter); ok {
		if bd, ok := br.LastBreakdown(); ok {
			return bd
		}
	}
	return core.Breakdown{ServiceMs: svc}
}

// PhaseStats aggregates per-request service-phase observations: one Dist
// (Welford moments + retained samples for p95/p99) per phase, plus the
// derived positioning sum, the total device service, and the
// unattributed residue (≈0 for fully-decomposed devices; the check that
// per-phase sums reconcile with service time).
//
// Observations are per completed request in the measured window (past
// warmup, not failed), each the sum over the request's service visits.
type PhaseStats struct {
	// Seek, Settle, Turnaround, Transfer, Overhead and Recovery are the
	// phase distributions in ms.
	Seek, Settle, Turnaround, Transfer, Overhead, Recovery stats.Dist
	// Positioning is seek + settle + turnaround per request (§4.1's
	// positioning component).
	Positioning stats.Dist
	// Service is the total device time per request (all visits).
	Service stats.Dist
	// Unattributed is service − sum(phases) per request.
	Unattributed stats.Dist
	// Requests counts the measured completions folded in.
	Requests int
	// ClassService splits the Service distribution by request class
	// (foreground / degraded-read / rebuild), so class-aware scheduling
	// policies are measurable per class; ClassRequests counts the
	// observations per class.
	ClassService [core.NumClasses]stats.Dist
	// ClassRequests counts the observations folded into each class.
	ClassRequests [core.NumClasses]int
}

// useSketch flips every distribution to the bounded sketch backend
// (stats.Dist.UseSketch): O(1) memory, percentile estimates within the
// sketch's documented error bound. Must run before observations for the
// exact-percentile guarantee, though late flips migrate losslessly.
func (s *PhaseStats) useSketch() {
	for _, d := range []*stats.Dist{
		&s.Seek, &s.Settle, &s.Turnaround, &s.Transfer, &s.Overhead, &s.Recovery,
		&s.Positioning, &s.Service, &s.Unattributed,
	} {
		d.UseSketch()
	}
	for i := range s.ClassService {
		s.ClassService[i].UseSketch()
	}
}

// add folds one completed request's accumulated breakdown in under its
// scheduling class.
func (s *PhaseStats) add(bd core.Breakdown, class core.Class) {
	s.Seek.Add(bd.Seek)
	s.Settle.Add(bd.Settle)
	s.Turnaround.Add(bd.Turnaround)
	s.Transfer.Add(bd.Transfer)
	s.Overhead.Add(bd.Overhead)
	s.Recovery.Add(bd.Recovery)
	s.Positioning.Add(bd.Positioning())
	s.Service.Add(bd.ServiceMs)
	s.Unattributed.Add(bd.Unattributed())
	s.Requests++
	if int(class) < core.NumClasses {
		s.ClassService[class].Add(bd.ServiceMs)
		s.ClassRequests[class]++
	}
}

// PhaseCollector is a Probe that aggregates PhaseStats over a run's
// measured completions. Attach it via Options.Probe (alone or inside a
// MultiProbe) and the run's Result.Phases points at its statistics.
type PhaseCollector struct {
	ps     PhaseStats
	sketch bool
}

// NewPhaseCollector returns an empty collector.
func NewPhaseCollector() *PhaseCollector { return &PhaseCollector{} }

// UseSketch switches the collector's aggregates to the bounded quantile
// sketch, now and after every ResetProbe. The engine calls it on every
// attached collector when Options.Sketch is set; callers building
// long-lived collectors outside a run may call it directly.
func (c *PhaseCollector) UseSketch() {
	c.sketch = true
	c.ps.useSketch()
}

// Observe implements Probe.
func (c *PhaseCollector) Observe(ev ProbeEvent) {
	if ev.Kind != EventComplete || !ev.Measured {
		return
	}
	c.ps.add(ev.Req.Phases, ev.Req.Class)
}

// ResetProbe implements ProbeResetter.
func (c *PhaseCollector) ResetProbe() {
	c.ps = PhaseStats{}
	if c.sketch {
		c.ps.useSketch()
	}
}

// Stats returns the collected aggregates.
func (c *PhaseCollector) Stats() *PhaseStats { return &c.ps }

// findPhaseCollector locates a PhaseCollector in the probe (descending
// into MultiProbe and run-label wrappers) so Run can surface its stats
// on the Result.
func findPhaseCollector(p Probe) *PhaseCollector {
	switch pr := p.(type) {
	case *PhaseCollector:
		return pr
	case runLabelProbe:
		return findPhaseCollector(pr.p)
	case MultiProbe:
		for _, sub := range pr {
			if pc := findPhaseCollector(sub); pc != nil {
				return pc
			}
		}
	}
	return nil
}

// applySketch flips every PhaseCollector reachable through p to the
// bounded sketch backend (Options.Sketch), descending into MultiProbe
// and run-label wrappers like the other probe walks.
func applySketch(p Probe) {
	switch pr := p.(type) {
	case *PhaseCollector:
		pr.UseSketch()
	case runLabelProbe:
		applySketch(pr.p)
	case MultiProbe:
		for _, sub := range pr {
			applySketch(sub)
		}
	}
}

// phaseStats surfaces an attached collector's stats, for the tail of the
// simulation entry points.
func phaseStats(p Probe) *PhaseStats {
	if pc := findPhaseCollector(p); pc != nil {
		return pc.Stats()
	}
	return nil
}
