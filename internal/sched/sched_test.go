package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
)

func req(lbn int64) *core.Request {
	return &core.Request{Op: core.Read, LBN: lbn, Blocks: 8}
}

func TestNewByName(t *testing.T) {
	for _, name := range AllNames() {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
	// Aliases.
	if s, err := New("SSTF"); err != nil || s.Name() != "SSTF_LBN" {
		t.Errorf("alias SSTF failed: %v", err)
	}
	if s, err := New("CLOOK"); err != nil || s.Name() != "C-LOOK" {
		t.Errorf("alias CLOOK failed: %v", err)
	}
	if _, err := New("ELEVATOR-9000"); err == nil {
		t.Error("expected error for unknown scheduler")
	}
}

func TestFCFSOrder(t *testing.T) {
	s := NewFCFS()
	for _, lbn := range []int64{5, 1, 9, 3} {
		s.Add(req(lbn))
	}
	var got []int64
	for s.Len() > 0 {
		got = append(got, s.Next(nil, 0).LBN)
	}
	want := []int64{5, 1, 9, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FCFS order = %v, want %v", got, want)
		}
	}
}

func TestFCFSRequeueGoesToFront(t *testing.T) {
	// A request retried after a failed service visit keeps its place at
	// the head of the arrival order (core.Requeuer).
	s := NewFCFS()
	for _, lbn := range []int64{5, 1, 9} {
		s.Add(req(lbn))
	}
	first := s.Next(nil, 0)
	s.Requeue(first)
	var got []int64
	for s.Len() > 0 {
		got = append(got, s.Next(nil, 0).LBN)
	}
	want := []int64{5, 1, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-requeue order = %v, want %v", got, want)
		}
	}
	// The interface assertion the simulator relies on.
	var _ core.Requeuer = s
}

func TestFCFSEmpty(t *testing.T) {
	for _, s := range []core.Scheduler{NewFCFS(), NewSSTF(), NewCLOOK(), NewSPTF(), NewSettleAware(), NewPriority()} {
		if r := s.Next(nil, 0); r != nil {
			t.Errorf("%s: Next on empty queue = %v, want nil", s.Name(), r)
		}
		if s.Len() != 0 {
			t.Errorf("%s: Len on empty = %d", s.Name(), s.Len())
		}
	}
}

func TestSSTFPicksNearest(t *testing.T) {
	s := NewSSTF()
	// After dispatching LBN 100 (8 blocks), position is 108.
	s.Add(req(100))
	s.Next(nil, 0)
	s.Add(req(500))
	s.Add(req(120)) // distance 12 from 108
	s.Add(req(90))  // distance 18
	if r := s.Next(nil, 0); r.LBN != 120 {
		t.Errorf("SSTF picked %d, want 120", r.LBN)
	}
	// Now at 128: distance to 90 is 38, to 500 is 372.
	if r := s.Next(nil, 0); r.LBN != 90 {
		t.Errorf("SSTF picked %d, want 90", r.LBN)
	}
}

func TestCLOOKAscendingWithWrap(t *testing.T) {
	s := NewCLOOK()
	s.Add(req(50))
	s.Next(nil, 0) // position now 58
	for _, lbn := range []int64{10, 70, 60, 90, 20} {
		s.Add(req(lbn))
	}
	var got []int64
	for s.Len() > 0 {
		got = append(got, s.Next(nil, 0).LBN)
	}
	// Ascending from 58 (60, 70, 90), then wrap to the lowest (10, 20).
	want := []int64{60, 70, 90, 10, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C-LOOK order = %v, want %v", got, want)
		}
	}
}

func TestCLOOKNeverReversesWithinSweep(t *testing.T) {
	// Property: within one pass (until a wrap), dispatched LBNs ascend.
	f := func(raw []uint32) bool {
		s := NewCLOOK()
		for _, v := range raw {
			s.Add(req(int64(v % 100000)))
		}
		prev := int64(-1)
		wraps := 0
		for s.Len() > 0 {
			r := s.Next(nil, 0)
			if r.LBN < prev {
				wraps++
			}
			prev = r.LBN
		}
		return wraps <= 1 // at most one wrap when all requests are queued upfront
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSPTFPicksMinimumPositioningTime(t *testing.T) {
	d := mems.MustDevice(mems.DefaultConfig())
	g := d.Geometry()
	s := NewSPTF()
	near := g.LBN(g.Cylinders/2, 0, 0, 0)
	far := g.LBN(0, 0, 0, 0)
	s.Add(req(far))
	s.Add(req(near))
	if r := s.Next(d, 0); r.LBN != near {
		t.Errorf("SPTF picked LBN %d, want the near one %d", r.LBN, near)
	}
}

func TestSPTFUsesRotationOnDisk(t *testing.T) {
	// On a disk, SPTF should prefer a rotationally closer sector over a
	// same-cylinder sector that just passed under the head.
	d := disk.MustDevice(disk.Atlas10K())
	d.Reset()
	// Request A: sector 0 of the head's current track. Request B: a bit
	// further around the platter on the same track. At a time when A
	// just passed, B wins despite identical seek distance (zero).
	c, h := d.State()
	_ = h
	var lbnTrackStart int64
	// Find the LBN at (c, 0, 0) by scanning: LBNs are sequential, so use
	// Locate to invert approximately.
	lo, hi := int64(0), d.Capacity()-1
	for lo < hi {
		mid := (lo + hi) / 2
		mc, _, _ := d.Locate(mid)
		if mc < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	lbnTrackStart = lo
	a := req(lbnTrackStart)      // sector 0
	b := req(lbnTrackStart + 40) // sector 40, later in rotation
	s := NewSPTF()
	s.Add(a)
	s.Add(b)
	// Choose a time at which sector 10 is under the head: sector 0 just
	// passed; sector 40 is closer going forward.
	ta := d.EstimateAccess(a, 0)
	tb := d.EstimateAccess(b, 0)
	pick := s.Next(d, 0)
	want := a
	if tb < ta {
		want = b
	}
	if pick != want {
		t.Errorf("SPTF picked %d, want %d (est a=%g b=%g)", pick.LBN, want.LBN, ta, tb)
	}
}

func TestAllSchedulersConserveRequests(t *testing.T) {
	// Property: every added request comes back exactly once.
	d := mems.MustDevice(mems.DefaultConfig())
	mk := []func() core.Scheduler{
		func() core.Scheduler { return NewFCFS() },
		func() core.Scheduler { return NewSSTF() },
		func() core.Scheduler { return NewCLOOK() },
		func() core.Scheduler { return NewSPTF() },
		func() core.Scheduler { return NewSettleAware() },
		func() core.Scheduler { return NewPriority() },
		func() core.Scheduler { return NewASPTF(0.01) },
	}
	rng := rand.New(rand.NewSource(2))
	for _, make := range mk {
		s := make()
		seen := map[*core.Request]bool{}
		var added []*core.Request
		for i := 0; i < 500; i++ {
			r := req(rng.Int63n(d.Capacity() - 8))
			added = append(added, r)
			s.Add(r)
			// Interleave dispatches with arrivals.
			if rng.Intn(3) == 0 && s.Len() > 0 {
				got := s.Next(d, 0)
				if seen[got] {
					t.Fatalf("%s returned a request twice", s.Name())
				}
				seen[got] = true
			}
		}
		for s.Len() > 0 {
			got := s.Next(d, 0)
			if seen[got] {
				t.Fatalf("%s returned a request twice", s.Name())
			}
			seen[got] = true
		}
		if len(seen) != len(added) {
			t.Fatalf("%s lost requests: %d of %d", s.Name(), len(seen), len(added))
		}
		if r := s.Next(d, 0); r != nil {
			t.Fatalf("%s produced a request from an empty queue", s.Name())
		}
	}
}

func TestReset(t *testing.T) {
	for _, s := range []core.Scheduler{NewFCFS(), NewSSTF(), NewCLOOK(), NewSPTF(), NewSettleAware(), NewPriority()} {
		s.Add(req(1))
		s.Add(req(2))
		s.Reset()
		if s.Len() != 0 {
			t.Errorf("%s: Len after Reset = %d", s.Name(), s.Len())
		}
		if r := s.Next(nil, 0); r != nil {
			t.Errorf("%s: Next after Reset = %v", s.Name(), r)
		}
	}
}

func TestDrainReturnsDispatchOrder(t *testing.T) {
	// Drain must expose the order the scheduler would actually service,
	// not hide it behind an LBN sort (that is DrainSorted's job).
	s := NewFCFS()
	for _, lbn := range []int64{9, 1, 5} {
		s.Add(req(lbn))
	}
	out := Drain(s, nil, 0)
	if len(out) != 3 || out[0].LBN != 9 || out[1].LBN != 1 || out[2].LBN != 5 {
		t.Errorf("Drain = %v, want FCFS dispatch order 9,1,5", lbns(out))
	}
}

func TestDrainSorted(t *testing.T) {
	s := NewFCFS()
	for _, lbn := range []int64{9, 1, 5} {
		s.Add(req(lbn))
	}
	out := DrainSorted(s, nil, 0)
	if len(out) != 3 || out[0].LBN != 1 || out[1].LBN != 5 || out[2].LBN != 9 {
		t.Errorf("DrainSorted = %v", lbns(out))
	}
}

func lbns(rs []*core.Request) []int64 {
	out := make([]int64, len(rs))
	for i, r := range rs {
		out[i] = r.LBN
	}
	return out
}

func TestSSTFReducesSeekVsFCFS(t *testing.T) {
	// Sanity: over a batch of queued random requests on the MEMS device,
	// greedy SSTF_LBN must yield lower total service time than FCFS.
	rng := rand.New(rand.NewSource(3))
	var lbns []int64
	d := mems.MustDevice(mems.DefaultConfig())
	for i := 0; i < 200; i++ {
		lbns = append(lbns, rng.Int63n(d.Capacity()-8))
	}
	run := func(s core.Scheduler) float64 {
		d.Reset()
		for _, lbn := range lbns {
			s.Add(req(lbn))
		}
		total := 0.0
		for s.Len() > 0 {
			r := s.Next(d, total)
			total += d.Access(r, total)
		}
		return total
	}
	fcfs := run(NewFCFS())
	sstf := run(NewSSTF())
	sptf := run(NewSPTF())
	if sstf >= fcfs {
		t.Errorf("SSTF total %g should beat FCFS %g", sstf, fcfs)
	}
	if sptf >= fcfs {
		t.Errorf("SPTF total %g should beat FCFS %g", sptf, fcfs)
	}
}
