package experiments

func init() { register("fig6", fig6Plan) }

// memsRates sweeps the MEMS device. Mean random 4 KB service is
// ≈ 0.8 ms, so FCFS saturates near 1250 req/s while the seek-aware
// schedulers carry into the 1500–2500 req/s region the paper plots.
var memsRates = []float64{250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2250, 2500}

// Fig6 reproduces Fig. 6: the scheduling algorithms on the MEMS-based
// storage device under the random workload.
func Fig6(p Params) []Table { return mustRun(fig6Plan(p)) }

func fig6Plan(p Params) *Plan {
	return sweepPlan("fig6", "MEMS device", memsFactory(1), memsRates, p)
}
