package fault

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestLifetimeModelValidate(t *testing.T) {
	good := LifetimeModel{MTTFMs: 1000, Slots: 2, HorizonMs: 5000, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*LifetimeModel)
	}{
		{"zero mttf", func(m *LifetimeModel) { m.MTTFMs = 0 }},
		{"negative mttf", func(m *LifetimeModel) { m.MTTFMs = -1 }},
		{"nan mttf", func(m *LifetimeModel) { m.MTTFMs = math.NaN() }},
		{"inf mttf", func(m *LifetimeModel) { m.MTTFMs = math.Inf(1) }},
		{"zero slots", func(m *LifetimeModel) { m.Slots = 0 }},
		{"zero horizon", func(m *LifetimeModel) { m.HorizonMs = 0 }},
		{"nan horizon", func(m *LifetimeModel) { m.HorizonMs = math.NaN() }},
	}
	for _, tc := range cases {
		m := good
		tc.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

func TestLifetimeScheduleDeterministicAndSorted(t *testing.T) {
	m := LifetimeModel{MTTFMs: 500, Slots: 3, HorizonMs: 20000, Seed: 7}
	a, b := m.Schedule(), m.Schedule()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same model drew different schedules")
	}
	if len(a) == 0 {
		t.Fatal("40 expected failures per slot drew an empty schedule")
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].AtMs < a[j].AtMs }) {
		t.Error("schedule not sorted by firing time")
	}
	for _, ev := range a {
		if ev.AtMs <= 0 || ev.AtMs > m.HorizonMs {
			t.Errorf("event at %g ms outside (0, %g]", ev.AtMs, m.HorizonMs)
		}
		if ev.Dev < 0 || ev.Dev >= m.Slots {
			t.Errorf("event targets slot %d outside [0,%d)", ev.Dev, m.Slots)
		}
	}
	// A different seed must draw a different schedule.
	m2 := m
	m2.Seed = 8
	if reflect.DeepEqual(a, m2.Schedule()) {
		t.Error("different seeds drew identical schedules")
	}
}

func TestLifetimeSchedulePrefixStableAcrossSlots(t *testing.T) {
	// Slot k's draws must not change when more slots are added: each slot
	// has its own decorrelated sub-stream.
	narrow := LifetimeModel{MTTFMs: 800, Slots: 2, HorizonMs: 30000, Seed: 3}
	wide := narrow
	wide.Slots = 4
	only := func(evs []DeviceEvent, slot int) []float64 {
		var ts []float64
		for _, ev := range evs {
			if ev.Dev == slot {
				ts = append(ts, ev.AtMs)
			}
		}
		return ts
	}
	ne, we := narrow.Schedule(), wide.Schedule()
	for slot := 0; slot < narrow.Slots; slot++ {
		if !reflect.DeepEqual(only(ne, slot), only(we, slot)) {
			t.Errorf("slot %d draws changed when Slots grew", slot)
		}
	}
}

func TestLifetimeScheduleMeanRoughlyMTTF(t *testing.T) {
	// Long horizon, one slot: the empirical failure rate must be within
	// 10% of 1/MTTF (≈2000 draws keeps the tolerance loose but honest).
	m := LifetimeModel{MTTFMs: 100, Slots: 1, HorizonMs: 200000, Seed: 11}
	n := float64(len(m.Schedule()))
	want := m.HorizonMs / m.MTTFMs
	if n < want*0.9 || n > want*1.1 {
		t.Errorf("drew %g failures over %g expected", n, want)
	}
}

func TestInjectorMergesLifetimeWithFixedEvents(t *testing.T) {
	lt := &LifetimeModel{MTTFMs: 300, Slots: 2, HorizonMs: 3000, Seed: 5}
	inj, err := NewInjector(InjectorConfig{
		DeviceEvents: []DeviceEvent{{AtMs: 10, Dev: 0}},
		Lifetime:     lt,
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := inj.DeviceEvents()
	if len(evs) != 1+len(lt.Schedule()) {
		t.Fatalf("merged %d events, want fixed 1 + drawn %d", len(evs), len(lt.Schedule()))
	}
	if !sort.SliceIsSorted(evs, func(i, j int) bool { return evs[i].AtMs < evs[j].AtMs }) {
		t.Error("merged schedule not sorted")
	}
	// Reset must not re-draw or lose the merged schedule.
	inj.Reset()
	if len(inj.DeviceEvents()) != len(evs) {
		t.Error("Reset changed the device-event schedule")
	}

	bad := InjectorConfig{Lifetime: &LifetimeModel{MTTFMs: -1, Slots: 1, HorizonMs: 1}}
	if _, err := NewInjector(bad); err == nil {
		t.Error("invalid lifetime model accepted")
	}
}

func TestLifetimeSamplerDeterministic(t *testing.T) {
	a, b := NewLifetimeSampler(100, 9), NewLifetimeSampler(100, 9)
	for i := 0; i < 100; i++ {
		if a.Draw() != b.Draw() {
			t.Fatal("same seed diverged")
		}
	}
	// FirstOf scales a single draw by the population.
	c, d := NewLifetimeSampler(100, 9), NewLifetimeSampler(100, 9)
	if got, want := c.FirstOf(4), d.Draw()/4; got != want {
		t.Errorf("FirstOf(4) = %g, want %g", got, want)
	}
}

func TestTimeToDataLoss(t *testing.T) {
	// An enormous window loses data in the first cycle; a zero window
	// never does (every trial censors).
	s := NewLifetimeSampler(1000, 1)
	if _, ok := TimeToDataLoss(s, 2, math.MaxFloat64/4, 1000); !ok {
		t.Error("infinite window should lose data immediately")
	}
	if _, ok := TimeToDataLoss(NewLifetimeSampler(1000, 1), 2, 0, 100); ok {
		t.Error("zero window should never lose data")
	}

	// Determinism: same seed, same parameters, same loss time.
	x, _ := TimeToDataLoss(NewLifetimeSampler(1000, 3), 2, 500, 1<<20)
	y, _ := TimeToDataLoss(NewLifetimeSampler(1000, 3), 2, 500, 1<<20)
	if x != y {
		t.Errorf("loss time not deterministic: %g vs %g", x, y)
	}

	// Statistical sanity: mirror MTTDL ≈ MTTF²/(m(m-1)·W) for W ≪ MTTF.
	// 400 trials keep the tolerance at ±25%.
	const mttf, window = 1e6, 1e3
	sum, trials := 0.0, 400
	for i := 0; i < trials; i++ {
		v, ok := TimeToDataLoss(NewLifetimeSampler(mttf, int64(100+i)), 2, window, 1<<24)
		if !ok {
			t.Fatalf("trial %d censored", i)
		}
		sum += v
	}
	got := sum / float64(trials)
	want := mttf * mttf / (2 * window)
	if got < want*0.75 || got > want*1.25 {
		t.Errorf("mirror MTTDL = %g, want ≈ %g", got, want)
	}
}

func TestTimeToDataLossPanicsOnBadInputs(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	s := NewLifetimeSampler(100, 1)
	expectPanic("one member", func() { TimeToDataLoss(s, 1, 10, 10) })
	expectPanic("negative window", func() { TimeToDataLoss(s, 2, -1, 10) })
	expectPanic("zero population", func() { s.FirstOf(0) })
}
