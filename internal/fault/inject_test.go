package fault

import (
	"testing"
)

// injArray is a small valid redundancy configuration for injector tests:
// one 64+2 stripe group and no spares, so a tip failure degrades its
// stripe immediately and visibly.
var injArray = Config{Tips: 66, DataTips: 64, ECCTips: 2, SpareTips: 0}

func TestInjectorConfigValidate(t *testing.T) {
	bad := []InjectorConfig{
		{TransientRate: -0.1},
		{TransientRate: 1.0},
		{MaxRetries: -1},
		{MaxRequeues: -2},
		{FallbackPenaltyMs: -1},
		{ECCSurchargeMs: -0.5},
		{Events: []TipEvent{{AtMs: 0, Tip: 0}}}, // events without an array
		{Array: &injArray, Events: []TipEvent{{AtMs: -1, Tip: 0}}},
		{Array: &injArray, Events: []TipEvent{{AtMs: 0, Tip: 66}}},
		{Array: &injArray, Events: []TipEvent{{AtMs: 0, Tip: -1}}},
		{Array: &Config{Tips: 65, DataTips: 64, ECCTips: 2, SpareTips: 0}}, // invalid array
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
		if _, err := NewInjector(cfg); err == nil {
			t.Errorf("config %d: NewInjector accepted invalid config", i)
		}
	}
	good := DefaultInjectorConfig()
	good.TransientRate = 0.1
	good.Array = &injArray
	good.Events = []TipEvent{{AtMs: 5, Tip: 3}, {AtMs: 1, Tip: 7, Defect: true}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestInjectorZeroRateDrawsNothing(t *testing.T) {
	// The byte-identity guarantee hinges on rate 0 never touching the rng.
	in, err := NewInjector(InjectorConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if in.TransientError() {
			t.Fatal("zero-rate injector reported a transient error")
		}
	}
	// The stream is untouched: the first explicit draw matches a fresh
	// injector's first draw.
	fresh, _ := NewInjector(InjectorConfig{Seed: 42})
	if in.Draw() != fresh.Draw() {
		t.Error("zero-rate TransientError consumed random draws")
	}
}

func TestInjectorTransientRateRoughlyHolds(t *testing.T) {
	in, err := NewInjector(InjectorConfig{TransientRate: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if in.TransientError() {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.27 || frac > 0.33 {
		t.Errorf("transient fraction = %.3f, want ≈0.30", frac)
	}
}

func TestInjectorAdvanceFiresInOrder(t *testing.T) {
	cfg := InjectorConfig{
		Array: &injArray,
		// Declared out of order; Advance must fire by simulated time.
		Events: []TipEvent{
			{AtMs: 30, Tip: 1},
			{AtMs: 10, Tip: 5, Defect: true},
			{AtMs: 20, Tip: 3},
		},
		SectorTips: func(int64) []int { return []int{3} },
	}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := in.Advance(5); n != 0 {
		t.Fatalf("fired %d events before any were due", n)
	}
	if n := in.Advance(10); n != 1 || in.MediaDefectsFired() != 1 {
		t.Fatalf("at t=10: fired=%d defects=%d", n, in.MediaDefectsFired())
	}
	// The defect is absorbed by stripe ECC without degrading service.
	if in.DegradedBlocks(0, 4) != 0 {
		t.Error("media defect alone should not degrade reads")
	}
	if n := in.Advance(25); n != 1 || in.TipFailuresFired() != 1 {
		t.Fatalf("at t=25: fired=%d failures=%d", n, in.TipFailuresFired())
	}
	// Tip 3 failed with no spares: every sector striped over it is now
	// degraded.
	if in.DegradedBlocks(100, 4) != 4 {
		t.Errorf("degraded blocks = %d, want 4", in.DegradedBlocks(100, 4))
	}
	if n := in.Advance(1000); n != 1 || in.TipFailuresFired() != 2 {
		t.Fatalf("final event: fired=%d failures=%d", n, in.TipFailuresFired())
	}
	if in.Array().DegradedStripes() == 0 {
		t.Error("array should report degraded stripes")
	}
}

func TestInjectorSparesAbsorbFailuresBeforeDegrading(t *testing.T) {
	withSpares := Config{Tips: 196, DataTips: 64, ECCTips: 2, SpareTips: 64}
	in, err := NewInjector(InjectorConfig{
		Array:      &withSpares,
		Events:     []TipEvent{{AtMs: 1, Tip: 0}},
		SectorTips: func(int64) []int { return []int{0} },
	})
	if err != nil {
		t.Fatal(err)
	}
	in.Advance(2)
	// A spare covered the failure: the stripe is remapped, not degraded.
	if in.DegradedBlocks(0, 8) != 0 {
		t.Error("spared tip failure should not degrade reads")
	}
	if left := in.Array().SparesLeft(); left != 63 {
		t.Errorf("spares left = %d, want 63", left)
	}
}

func TestInjectorDegradedBlocksWithoutMapping(t *testing.T) {
	// Disks have no tip array: SectorTips nil must disable the scan even
	// with a degraded array.
	in, err := NewInjector(InjectorConfig{
		Array:  &injArray,
		Events: []TipEvent{{AtMs: 0, Tip: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	in.Advance(1)
	if in.DegradedBlocks(0, 100) != 0 {
		t.Error("nil SectorTips should report no degraded blocks")
	}
}

func TestInjectorResetRestoresEverything(t *testing.T) {
	cfg := InjectorConfig{
		TransientRate: 0.5,
		Seed:          99,
		Array:         &injArray,
		Events:        []TipEvent{{AtMs: 1, Tip: 4}},
		SectorTips:    func(int64) []int { return []int{4} },
	}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var before []bool
	for i := 0; i < 50; i++ {
		before = append(before, in.TransientError())
	}
	in.Advance(10)
	if in.TipFailuresFired() != 1 || in.DegradedBlocks(0, 1) != 1 {
		t.Fatal("setup: event did not fire")
	}

	in.Reset()
	if in.TipFailuresFired() != 0 || in.MediaDefectsFired() != 0 {
		t.Error("Reset kept event counters")
	}
	if in.DegradedBlocks(0, 1) != 0 {
		t.Error("Reset kept degraded state")
	}
	for i, want := range before {
		if got := in.TransientError(); got != want {
			t.Fatalf("draw %d after Reset = %v, want %v (stream not reseeded)", i, got, want)
		}
	}
	// Events fire again after Reset.
	if n := in.Advance(10); n != 1 {
		t.Errorf("Reset did not rearm events: fired %d", n)
	}
}

func TestInjectorAccessors(t *testing.T) {
	cfg := DefaultInjectorConfig()
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if in.MaxRetries() != cfg.MaxRetries || in.MaxRequeues() != cfg.MaxRequeues {
		t.Error("retry budgets do not round-trip")
	}
	if in.FallbackPenaltyMs() != cfg.FallbackPenaltyMs || in.ECCSurchargeMs() != cfg.ECCSurchargeMs {
		t.Error("penalties do not round-trip")
	}
	if in.Array() != nil {
		t.Error("array should be nil without a configuration")
	}
}

func TestInjectorDeviceEvents(t *testing.T) {
	bad := []InjectorConfig{
		{DeviceEvents: []DeviceEvent{{AtMs: -1, Dev: 0}}},
		{DeviceEvents: []DeviceEvent{{AtMs: 0, Dev: -3}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
	// The accessor returns the schedule sorted by firing time, stable
	// w.r.t. declaration order for ties.
	in, err := NewInjector(InjectorConfig{DeviceEvents: []DeviceEvent{
		{AtMs: 30, Dev: 2},
		{AtMs: 10, Dev: 1},
		{AtMs: 10, Dev: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := in.DeviceEvents()
	want := []DeviceEvent{{AtMs: 10, Dev: 1}, {AtMs: 10, Dev: 0}, {AtMs: 30, Dev: 2}}
	if len(got) != len(want) {
		t.Fatalf("schedule length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestInjectorLostBlocksAfterECCExhausted(t *testing.T) {
	// Two ECC tips absorb two failures in a stripe; the third exceeds
	// the budget and the stripe's sectors become unrecoverable.
	in, err := NewInjector(InjectorConfig{
		Array: &injArray,
		Events: []TipEvent{
			{AtMs: 1, Tip: 0},
			{AtMs: 2, Tip: 1},
			{AtMs: 3, Tip: 2},
		},
		SectorTips: func(lbn int64) []int {
			if lbn < 8 {
				return []int{0}
			}
			return []int{40} // healthy tip
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	in.Advance(2.5)
	// Two failures: degraded but still within the ECC budget.
	if in.LostBlocks(0, 8) != 0 {
		t.Error("data reported lost while ECC can still reconstruct")
	}
	if in.DegradedBlocks(0, 8) != 8 {
		t.Errorf("degraded blocks = %d, want 8", in.DegradedBlocks(0, 8))
	}
	in.Advance(3.5)
	if !in.Array().DataLoss() {
		t.Fatal("third failure in a 2-ECC stripe must lose data")
	}
	if in.LostBlocks(0, 8) != 8 {
		t.Errorf("lost blocks = %d, want 8", in.LostBlocks(0, 8))
	}
	// Sectors on healthy tips are unaffected.
	if in.LostBlocks(100, 8) != 0 {
		t.Errorf("healthy sectors reported lost: %d", in.LostBlocks(100, 8))
	}

	in.Reset()
	if in.LostBlocks(0, 8) != 0 {
		t.Error("Reset kept loss state")
	}
}
