package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memsim/internal/disk"
	"memsim/internal/mems"
)

func geo(t testing.TB) *mems.Geometry {
	t.Helper()
	g, err := mems.NewGeometry(mems.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCenterOutNoOverlap(t *testing.T) {
	sizes := []int64{10, 20, 5, 5, 40, 1}
	starts, err := CenterOut(sizes, 1000)
	if err != nil {
		t.Fatal(err)
	}
	type span struct{ lo, hi int64 }
	var spans []span
	for i, s := range starts {
		spans = append(spans, span{s, s + sizes[i]})
		if s < 0 || s+sizes[i] > 1000 {
			t.Fatalf("item %d out of extent: [%d,%d)", i, s, s+sizes[i])
		}
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("items %d and %d overlap: %v %v", i, j, spans[i], spans[j])
			}
		}
	}
}

func TestCenterOutRankZeroAtCenter(t *testing.T) {
	starts, err := CenterOut([]int64{8, 8, 8, 8}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 starts exactly at the center.
	if starts[0] != 50 {
		t.Errorf("rank-0 start = %d, want 50", starts[0])
	}
	// More popular items sit closer to the center.
	center := int64(50)
	dist := func(i int) int64 {
		mid := starts[i] + 4
		if mid < center {
			return center - mid
		}
		return mid - center
	}
	for i := 1; i < 4; i++ {
		if dist(i) < dist(0) {
			t.Errorf("item %d (rank %d) closer to center than rank 0", i, i)
		}
	}
}

func TestCenterOutErrors(t *testing.T) {
	if _, err := CenterOut([]int64{0}, 10); err == nil {
		t.Error("expected error for zero-size item")
	}
	if _, err := CenterOut([]int64{-3}, 10); err == nil {
		t.Error("expected error for negative item")
	}
	if _, err := CenterOut([]int64{6, 6}, 10); err == nil {
		t.Error("expected error for capacity overflow")
	}
}

func TestCenterOutProperty(t *testing.T) {
	// Property: any feasible item list is placed without overlap and
	// within the extent.
	f := func(raw []uint8) bool {
		var sizes []int64
		var total int64
		for _, v := range raw {
			s := int64(v%50) + 1
			sizes = append(sizes, s)
			total += s
		}
		capacity := total + 10
		starts, err := CenterOut(sizes, capacity)
		if err != nil {
			return false
		}
		occupied := map[int64]bool{}
		for i, st := range starts {
			if st < 0 || st+sizes[i] > capacity {
				return false
			}
			for b := st; b < st+sizes[i]; b++ {
				if occupied[b] {
					return false
				}
				occupied[b] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// checkPlacer verifies the fundamental Placer contract: every placement
// keeps the request inside the device.
func checkPlacer(t *testing.T, p Placer, capacity int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	for _, blocks := range []int{8, 800} {
		class := Small
		if blocks > 100 {
			class = Large
		}
		for i := 0; i < 5000; i++ {
			lbn := p.Place(rng, class, blocks)
			if lbn < 0 || lbn+int64(blocks) > capacity {
				t.Fatalf("%s: placement [%d,%d) outside capacity %d",
					p.Name(), lbn, lbn+int64(blocks), capacity)
			}
		}
	}
}

func TestMEMSPlacersStayInBounds(t *testing.T) {
	g := geo(t)
	for _, p := range []Placer{
		NewMEMSSimple(g),
		NewMEMSOrganPipe(g, 0.04),
		NewMEMSColumnar(g, 25),
		NewMEMSSubregioned(g, 5),
	} {
		checkPlacer(t, p, g.TotalSectors)
	}
}

func TestDiskPlacersStayInBounds(t *testing.T) {
	d := disk.MustDevice(disk.Atlas10K())
	for _, p := range []Placer{
		NewDiskSimple(d),
		NewDiskOrganPipe(d, 0.04),
	} {
		checkPlacer(t, p, d.Capacity())
	}
}

func TestColumnarSmallConfinedToCenterColumn(t *testing.T) {
	g := geo(t)
	p := NewMEMSColumnar(g, 25)
	rng := rand.New(rand.NewSource(2))
	per := g.Cylinders / 25
	lo, hi := 12*per, 13*per
	for i := 0; i < 2000; i++ {
		lbn := p.Place(rng, Small, 8)
		cyl, _, _, _ := g.Decompose(lbn)
		if cyl < lo || cyl >= hi {
			t.Fatalf("small request at cylinder %d, want [%d,%d)", cyl, lo, hi)
		}
	}
}

func TestColumnarLargeAvoidsCenter(t *testing.T) {
	g := geo(t)
	p := NewMEMSColumnar(g, 25)
	rng := rand.New(rand.NewSource(3))
	per := g.Cylinders / 25
	for i := 0; i < 2000; i++ {
		lbn := p.Place(rng, Large, 800)
		cyl, _, _, _ := g.Decompose(lbn)
		col := cyl / per
		if col >= 10 && col < 15 {
			t.Fatalf("large request started in center column %d", col)
		}
	}
}

func TestSubregionedSmallConfinedInXAndY(t *testing.T) {
	g := geo(t)
	p := NewMEMSSubregioned(g, 5)
	rng := rand.New(rand.NewSource(4))
	cLo, cHi := 2*g.Cylinders/5, 3*g.Cylinders/5
	rLo, rHi := 2*g.RowsPerTrack/5, 3*g.RowsPerTrack/5
	for i := 0; i < 2000; i++ {
		lbn := p.Place(rng, Small, 8)
		cyl, _, row, _ := g.Decompose(lbn)
		if cyl < cLo || cyl >= cHi {
			t.Fatalf("small request at cylinder %d, want [%d,%d)", cyl, cLo, cHi)
		}
		if row < rLo || row >= rHi {
			t.Fatalf("small request at row %d, want [%d,%d)", row, rLo, rHi)
		}
	}
}

func TestSubregionedLargeInOuterBands(t *testing.T) {
	g := geo(t)
	p := NewMEMSSubregioned(g, 5)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		lbn := p.Place(rng, Large, 800)
		cyl, _, _, _ := g.Decompose(lbn)
		band := cyl * 5 / g.Cylinders
		if band == 2 {
			t.Fatalf("large request started in center band (cyl %d)", cyl)
		}
	}
}

func TestOrganPipeSmallCentered(t *testing.T) {
	g := geo(t)
	p := NewMEMSOrganPipe(g, 0.04)
	rng := rand.New(rand.NewSource(6))
	mid := g.TotalSectors / 2
	band := int64(0.02*float64(g.TotalSectors)) + 8
	for i := 0; i < 2000; i++ {
		lbn := p.Place(rng, Small, 8)
		d := lbn - mid
		if d < 0 {
			d = -d
		}
		if d > band {
			t.Fatalf("small request %d blocks from center, want within %d", d, band)
		}
	}
	// Large requests never land inside the small core.
	for i := 0; i < 2000; i++ {
		lbn := p.Place(rng, Large, 800)
		if lbn >= mid-band && lbn < mid+band-800 {
			t.Fatalf("large request inside small core at %d", lbn)
		}
	}
}

func TestPlacerNames(t *testing.T) {
	g := geo(t)
	d := disk.MustDevice(disk.Atlas10K())
	cases := map[string]Placer{
		"simple":      NewMEMSSimple(g),
		"organ-pipe":  NewMEMSOrganPipe(g, 0.04),
		"columnar":    NewMEMSColumnar(g, 25),
		"subregioned": NewMEMSSubregioned(g, 5),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
	if NewDiskSimple(d).Name() != "simple" || NewDiskOrganPipe(d, 0.1).Name() != "organ-pipe" {
		t.Error("disk placer names wrong")
	}
}

func TestConstructorPanics(t *testing.T) {
	g := geo(t)
	for _, f := range []func(){
		func() { NewMEMSColumnar(g, 1) },
		func() { NewMEMSColumnar(g, g.Cylinders+1) },
		func() { NewMEMSSubregioned(g, 2) },
		func() { NewMEMSSubregioned(g, g.RowsPerTrack+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestClassString(t *testing.T) {
	if Small.String() != "small" || Large.String() != "large" {
		t.Error("Class.String mismatch")
	}
}

func TestColumnarOversizedRequestFlowsPastBand(t *testing.T) {
	// A request larger than its column band starts at the band and flows
	// into subsequent cylinders, staying inside the device.
	g := geo(t)
	p := NewMEMSColumnar(g, 25)
	rng := rand.New(rand.NewSource(9))
	huge := g.SectorsPerCylinder * (g.Cylinders/25 + 5) // larger than one column
	for i := 0; i < 50; i++ {
		lbn := p.Place(rng, Small, huge)
		if lbn < 0 || lbn+int64(huge) > g.TotalSectors {
			t.Fatalf("oversized placement [%d,%d) escapes device", lbn, lbn+int64(huge))
		}
	}
	// Also at the device end: a large request in the last column.
	pSub := NewMEMSSubregioned(g, 5)
	for i := 0; i < 200; i++ {
		lbn := pSub.Place(rng, Large, 4000)
		if lbn < 0 || lbn+4000 > g.TotalSectors {
			t.Fatalf("subregioned large placement escapes device")
		}
	}
}
