package experiments

import "fmt"

func init() { register("fig8", Fig8) }

// Fig8 reproduces Fig. 8: the settling-time sensitivity study. The random
// workload is re-run on the MEMS device with zero and with two settling
// time constants (the default elsewhere is one). With two constants, X
// seeks dominate and SSTF_LBN closely approximates SPTF; with zero, the Y
// dimension matters and SPTF pulls away (§4.4).
func Fig8(p Params) []Table {
	var out []Table
	for _, k := range []float64{0, 2} {
		d := newMEMS(k)
		resp, cv := schedulerSweep(d, memsRates, p)
		prefix := fmt.Sprintf("fig8-settle%g", k)
		ts := sweepTables(prefix, fmt.Sprintf("MEMS device, %g settling time constants", k), memsRates, resp, cv)
		out = append(out, ts...)
	}
	return out
}
