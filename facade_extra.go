package memsim

import (
	"math/rand"

	"memsim/internal/array"
	"memsim/internal/bus"
	"memsim/internal/cache"
	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/layout"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

// ─── Data placement (§5) ────────────────────────────────────────────────

// Placer is a data-placement policy for the §5.3 bipartite workload.
type Placer = layout.Placer

// PlacementClass distinguishes the small and large request populations.
type PlacementClass = layout.Class

// SmallClass and LargeClass are the two §5.3 request populations.
const (
	SmallClass = layout.Small
	LargeClass = layout.Large
)

// NewMEMSSimpleLayout places both classes uniformly (the Fig. 11
// baseline).
func NewMEMSSimpleLayout(g *MEMSGeometry) Placer { return layout.NewMEMSSimple(g) }

// NewMEMSOrganPipeLayout packs the small population into the centermost
// cylinders — the layout that is optimal for disks.
func NewMEMSOrganPipeLayout(g *MEMSGeometry, smallFrac float64) Placer {
	return layout.NewMEMSOrganPipe(g, smallFrac)
}

// NewMEMSColumnarLayout divides the LBN space into columns of contiguous
// cylinders (25 in the paper), small data in the center column.
func NewMEMSColumnarLayout(g *MEMSGeometry, columns int) Placer {
	return layout.NewMEMSColumnar(g, columns)
}

// NewMEMSSubregionedLayout is the n×n (5×5) grid layout of §5.3,
// confining small data in both X and Y.
func NewMEMSSubregionedLayout(g *MEMSGeometry, n int) Placer {
	return layout.NewMEMSSubregioned(g, n)
}

// NewDiskSimpleLayout and NewDiskOrganPipeLayout are the disk-side
// baselines of Fig. 11.
func NewDiskSimpleLayout(d *DiskDevice) Placer { return layout.NewDiskSimple(d) }

// NewDiskOrganPipeLayout packs the small population into the disk's
// center cylinders.
func NewDiskOrganPipeLayout(d *DiskDevice, smallFrac float64) Placer {
	return layout.NewDiskOrganPipe(d, smallFrac)
}

// BipartiteConfig parameterizes the §5.3 workload (89% 4 KB / 11%
// 400 KB reads).
type BipartiteConfig = workload.BipartiteConfig

// DefaultBipartiteConfig returns the paper's §5.3 parameters.
func DefaultBipartiteConfig(seed int64) BipartiteConfig { return workload.DefaultBipartite(seed) }

// NewBipartiteWorkload builds the §5.3 workload over a placement policy.
func NewBipartiteWorkload(cfg BipartiteConfig, p Placer) WorkloadSource {
	return workload.NewBipartite(cfg, p)
}

// ─── Failure management (§6) ────────────────────────────────────────────

// FaultConfig describes the redundancy structure of a tip array
// (striping width, ECC tips, spare pool).
type FaultConfig = fault.Config

// FaultArray tracks tip failures, spare remappings, and recoverability.
type FaultArray = fault.Array

// DefaultFaultConfig returns the default redundancy: 64-tip stripes, 2
// ECC tips, 130 spares.
func DefaultFaultConfig() FaultConfig { return fault.DefaultConfig() }

// NewFaultArray builds a FaultArray.
func NewFaultArray(cfg FaultConfig) (*FaultArray, error) { return fault.NewArray(cfg) }

// LossProbability estimates P(data loss | k random tip failures) by
// Monte Carlo.
func LossProbability(cfg FaultConfig, k, trials int, rng *rand.Rand) (float64, error) {
	return fault.LossProbability(cfg, k, trials, rng)
}

// ErasureCode is the systematic Reed-Solomon code used for horizontal
// tip-sector ECC (§6.1.2).
type ErasureCode = fault.RS

// NewErasureCode builds a code with k data and m parity shards.
func NewErasureCode(k, m int) (*ErasureCode, error) { return fault.NewRS(k, m) }

// FaultInjector drives deterministic in-simulation fault injection:
// transient positioning errors recovered by bounded device-level retry,
// scheduled tip failures evolving the redundancy array mid-run, and
// ECC-reconstruction surcharges on degraded-stripe reads. Pass one via
// SimOptions.Injector.
type FaultInjector = fault.Injector

// FaultInjectorConfig declares a fault-injection scenario.
type FaultInjectorConfig = fault.InjectorConfig

// TipFaultEvent schedules one tip failure or grown media defect at a
// simulated time.
type TipFaultEvent = fault.TipEvent

// DefaultFaultInjectorConfig returns the retry envelope used by the
// fault-injection experiments.
func DefaultFaultInjectorConfig() FaultInjectorConfig { return fault.DefaultInjectorConfig() }

// NewFaultInjector validates cfg and builds an injector ready for a run.
func NewFaultInjector(cfg FaultInjectorConfig) (*FaultInjector, error) { return fault.NewInjector(cfg) }

// SlipRemapDevice wraps a device with a disk-style defective-sector
// remap table, modeling the sequentiality-breaking penalty that MEMS
// spare-tip remapping avoids (§6.1.1).
type SlipRemapDevice = fault.SlipRemap

// NewSlipRemapDevice wraps dev with an empty remap table.
func NewSlipRemapDevice(dev Device) *SlipRemapDevice { return fault.NewSlipRemap(dev) }

// ─── Arrays (§6.2) ──────────────────────────────────────────────────────

// RAIDLevel selects the inter-device redundancy scheme.
type RAIDLevel = array.Level

// The supported array levels.
const (
	RAID0 = array.RAID0
	RAID1 = array.RAID1
	RAID5 = array.RAID5
)

// ArrayConfig parameterizes a device array.
type ArrayConfig = array.Config

// DeviceArray combines member devices into one logical device; RAID-5
// small writes pay the read-modify-write sequence whose cost Table 2
// compares across device types.
type DeviceArray = array.Array

// NewDeviceArray builds an array over equal-geometry members.
func NewDeviceArray(cfg ArrayConfig, members []Device) (*DeviceArray, error) {
	return array.New(cfg, members)
}

// ─── Device cache (§2.4.11) ─────────────────────────────────────────────

// CacheConfig parameterizes the on-device speed-matching buffer.
type CacheConfig = cache.Config

// CachedDevice wraps a device with a segment-LRU read buffer and
// sequential read-ahead.
type CachedDevice = cache.Cache

// DefaultCacheConfig returns a 4 MB buffer with track-sized segments and
// read-ahead.
func DefaultCacheConfig() CacheConfig { return cache.DefaultConfig() }

// NewCachedDevice wraps dev with the buffer.
func NewCachedDevice(dev Device, cfg CacheConfig) *CachedDevice { return cache.New(dev, cfg) }

// ─── Shared interconnect ────────────────────────────────────────────────

// BusConfig parameterizes a shared host interconnect.
type BusConfig = bus.Config

// Bus is one shared interconnect; attached devices contend for it.
type Bus = bus.Bus

// Ultra160BusConfig returns an Ultra160-SCSI-like bus.
func Ultra160BusConfig() BusConfig { return bus.Ultra160() }

// NewBus builds a bus.
func NewBus(cfg BusConfig) *Bus { return bus.New(cfg) }

// ─── Extensions ─────────────────────────────────────────────────────────

// NewAgedSPTF returns the aged-SPTF scheduler extension: positioning
// estimates are discounted by weight · queue-wait, bounding the tails
// that pure SPTF inflates near saturation.
func NewAgedSPTF(weight float64) Scheduler { return sched.NewASPTF(weight) }

// MEMSConfigGen2 and MEMSConfigGen3 are extrapolated future device
// generations for sensitivity studies (see internal/mems/generations.go
// for the caveats).
func MEMSConfigGen2() MEMSConfig { return mems.ConfigGen2() }

// MEMSConfigGen3 is the third-generation extrapolation.
func MEMSConfigGen3() MEMSConfig { return mems.ConfigGen3() }

// ─── Cost-model scheduling framework ────────────────────────────────────

// RequestClass tags a request's role for class-aware scheduling:
// foreground, degraded-read, or rebuild.
type RequestClass = core.Class

// The request classes.
const (
	ClassForeground   = core.ClassForeground
	ClassDegradedRead = core.ClassDegradedRead
	ClassRebuild      = core.ClassRebuild
)

// CostModel scores a candidate request for dispatch (lower is better);
// cost-model schedulers take one instead of hard-wiring the device's
// service estimate.
type CostModel = core.CostModel

// AccessCost is the classic SPTF scoring function: the device's full
// estimated service time.
func AccessCost(d Device, r *Request, now float64) float64 { return core.AccessCost(d, r, now) }

// SettleAwareCost scores by estimated service minus the unschedulable
// settle phase, so ties break on avoidable seek work.
func SettleAwareCost(d Device, r *Request, now float64) float64 {
	return core.SettleAwareCost(d, r, now)
}

// EstimateBreakdown returns the estimated per-phase decomposition of
// serving r on d at time now without changing device state; devices
// that cannot decompose report a bare ServiceMs.
func EstimateBreakdown(d Device, r *Request, now float64) Breakdown {
	return core.EstimateBreakdown(d, r, now)
}

// NewSettleAwareScheduler returns the settle-aware SPTF variant.
func NewSettleAwareScheduler() Scheduler { return sched.NewSettleAware() }

// NewPriorityScheduler returns the class-band scheduler (degraded-read
// > foreground > rebuild, SPTF within a band) with the default
// age-promotion starvation bound.
func NewPriorityScheduler() Scheduler { return sched.NewPriority() }

// NewPrioritySchedulerWith returns a Priority scheduler over an
// arbitrary cost model and promotion threshold in ms (≤ 0 disables
// promotion).
func NewPrioritySchedulerWith(cost CostModel, promoteMs float64) Scheduler {
	return sched.NewPriorityWith(cost, promoteMs)
}

// NewCostScheduler returns an SPTF-style queue over an arbitrary cost
// model, reported under the given name.
func NewCostScheduler(name string, cost CostModel) Scheduler {
	return sched.NewCostSPTF(name, cost)
}

// ─── Redundant volumes and failover (device-level §6.2, dynamic) ────────

// VolumeLevel selects a redundant volume's geometry.
type VolumeLevel = array.VolumeLevel

// The supported volume levels.
const (
	VolumeStripe = array.VolStripe
	VolumeMirror = array.VolMirror
	VolumeParity = array.VolParity
)

// VolumeConfig parameterizes a redundant volume (members, hot spares,
// stripe unit, per-member capacity).
type VolumeConfig = array.VolumeConfig

// Volume is the geometry and failover state machine of a redundant
// volume: address translation, degraded-mode service plans, hot-spare
// failover and watermark-tracked online rebuild.
type Volume = array.Volume

// NewVolume validates cfg and builds a healthy volume.
func NewVolume(cfg VolumeConfig) (*Volume, error) { return array.NewVolume(cfg) }

// DeviceFailureEvent schedules a whole-device failure at a simulated
// time; pass a schedule via FaultInjectorConfig.DeviceEvents and run the
// volume with SimulateVolume.
type DeviceFailureEvent = fault.DeviceEvent

// VolumeSpec assembles a volume simulation: the volume, one device and
// scheduler queue per slot (members first, then spares), and the online
// rebuild policy.
type VolumeSpec = sim.VolumeSpec

// VolumeStats reports a volume run's failover metrics: failures served,
// rebuild MTTR, degraded windows, and healthy- vs degraded-mode
// response distributions.
type VolumeStats = sim.VolumeStats

// MemberStats attributes a multi-device run's work to one member slot.
type MemberStats = sim.MemberResult

// SimulateVolume drives an open workload over a redundant volume,
// surviving scheduled device failures via degraded-mode service,
// hot-spare failover and throttled online rebuild. Failover metrics
// land in SimResult.Volume.
func SimulateVolume(spec VolumeSpec, src WorkloadSource, opts SimOptions) (SimResult, error) {
	return sim.RunVolume(nil, spec, src, opts)
}

// ─── Availability under failure (lifetime model + rebuild pacing) ───────

// RebuildPolicy paces a volume's online rebuild; set one on
// VolumeSpec.RebuildPolicy. Implementations must be deterministic.
type RebuildPolicy = sim.RebuildPolicy

// FixedRebuildPolicy is the default constant-duty-cycle throttle
// (equivalent to VolumeSpec.RebuildFrac).
type FixedRebuildPolicy = sim.FixedRebuild

// AdaptiveRebuildPolicy backs the rebuild off as foreground queue depth
// grows and sprints when the queues are idle, trading MTTR against
// foreground latency automatically.
type AdaptiveRebuildPolicy = sim.AdaptiveRebuild

// DeviceLifetimeModel draws whole-device failure times from per-slot
// exponential lifetime streams (seeded, deterministic); attach one via
// FaultInjectorConfig.Lifetime to have the injector draw device
// failures instead of — or in addition to — fixed schedules.
type DeviceLifetimeModel = fault.LifetimeModel

// LifetimeSampler draws exponential lifetimes one at a time, the
// primitive under Monte-Carlo availability estimates.
type LifetimeSampler = fault.LifetimeSampler

// NewLifetimeSampler returns a sampler with the given mean (ms) and seed.
func NewLifetimeSampler(mttfMs float64, seed int64) *LifetimeSampler {
	return fault.NewLifetimeSampler(mttfMs, seed)
}

// TimeToDataLoss simulates one volume lifetime as a renewal process —
// member failure, vulnerable rebuild window, repair or second failure —
// and returns the simulated time of the first data loss (ok=false if
// maxCycles elapsed without one).
func TimeToDataLoss(s *LifetimeSampler, members int, windowMs float64, maxCycles int) (float64, bool) {
	return fault.TimeToDataLoss(s, members, windowMs, maxCycles)
}
