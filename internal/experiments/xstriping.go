package experiments

import (
	"fmt"

	"memsim/internal/core"
	"memsim/internal/mems"
	"memsim/internal/runner"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

func init() { register("striping", stripingPlan) }

// StripingStudy (extension): the paper's TPC-C testbed striped its
// database across two drives — the standard way to scale a volume's
// throughput. The event-driven multi-queue simulator drives the random
// workload over striped MEMS volumes of 1, 2 and 4 sleds under SPTF;
// each member runs its own queue, so the volume's saturation rate scales
// with member count.
func StripingStudy(p Params) []Table { return mustRun(stripingPlan(p)) }

func stripingPlan(p Params) *Plan {
	rates := []float64{1000, 2000, 4000, 6000, 8000}
	counts := []int{1, 2, 4}
	grid := make([][]*runner.Job, len(rates))
	var jobs []*runner.Job
	for ri, rate := range rates {
		grid[ri] = make([]*runner.Job, len(counts))
		for ni, n := range counts {
			j := &runner.Job{
				Label: fmt.Sprintf("striping %d sleds rate=%g", n, rate),
				Seed:  p.Seed,
				Custom: func(job *runner.Job) any {
					out := stripedResponse(job, n, rate, p)
					if err := job.Ctx().Err(); err != nil {
						return err
					}
					return out
				},
			}
			grid[ri][ni] = j
			jobs = append(jobs, j)
		}
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID:      "striping",
				Title:   "striped MEMS volume: mean response (ms) vs. arrival rate",
				Columns: []string{"rate(req/s)", "1 sled", "2 sleds", "4 sleds"},
			}
			c := Table{
				ID:      "striping-clamps",
				Title:   "requests clamped to a strip boundary by the stripe router, same runs",
				Columns: []string{"rate(req/s)", "1 sled", "2 sleds", "4 sleds"},
			}
			for ri, rate := range rates {
				row := []string{f2(rate)}
				crow := []string{f2(rate)}
				for ni := range counts {
					o := grid[ri][ni].Value().(stripedOutcome)
					if o.mean < 0 {
						row = append(row, "—")
					} else {
						row = append(row, ms(o.mean))
					}
					crow = append(crow, fmt.Sprintf("%d", o.clamped))
				}
				t.AddRow(row...)
				c.AddRow(crow...)
			}
			return []Table{t, c}
		},
	}
}

// stripedOutcome is one striping run's summary, returned by the job's
// Custom body.
type stripedOutcome struct {
	mean    float64 // mean response (ms), or −1 when hopelessly saturated
	clamped int     // requests the stripe router clamped to a strip boundary
}

// stripedResponse simulates an n-sled volume at the given rate and
// returns the mean response time — or −1 when the configuration is
// hopelessly saturated (mean response above 1 s) — together with the
// router's clamp count.
func stripedResponse(job *runner.Job, n int, rate float64, p Params) stripedOutcome {
	devs := make([]core.Device, n)
	scheds := make([]core.Scheduler, n)
	for i := range devs {
		devs[i] = mems.MustDevice(mems.DefaultConfig())
		scheds[i] = sched.NewSPTF()
	}
	per := devs[0].Capacity()
	// Volume-level requests stay within one member strip: the stripe
	// unit is one cylinder, and the generator caps request size below it.
	unit := int64(2700)
	cfg := workload.RandomConfig{
		Rate:         rate,
		ReadFraction: 0.67,
		MeanBytes:    4096,
		MaxBytes:     64 * 1024,
		SectorSize:   devs[0].SectorSize(),
		Capacity:     per * int64(n),
		Count:        p.Requests,
		Seed:         p.Seed,
	}
	src := workload.NewRandom(cfg)
	res, err := sim.RunMulti(job.SimContext(), devs, scheds, sim.StripeRouter(unit, n), src,
		job.SimOptions(sim.Options{Warmup: p.Warmup}))
	if err != nil {
		// Recovered by the runner into a per-job error.
		panic(err)
	}
	out := stripedOutcome{mean: res.Response.Mean(), clamped: res.ClampedRequests}
	if out.mean > 1000 {
		out.mean = -1
	}
	return out
}
