package experiments

import (
	"fmt"

	"memsim/internal/core"
	"memsim/internal/runner"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/trace"
	"memsim/internal/workload"
)

func init() { register("fig7", fig7Plan) }

// Fig7 reproduces Fig. 7: scheduler comparison on the MEMS device under
// the two realistic workloads, swept by the trace scale factor (traced
// interarrival times divided by the factor, §4.3 footnote 2). The traces
// are the synthetic Cello-like and TPC-C-like stand-ins documented in
// DESIGN.md §5.
func Fig7(p Params) []Table { return mustRun(fig7Plan(p)) }

func fig7Plan(p Params) *Plan {
	// Base rates: Cello ≈ 40 req/s, TPC-C ≈ 120 req/s; the MEMS device
	// saturates near 1300 random req/s, so the interesting scale regions
	// differ per trace.
	genCello := func(capacity int64, n int) *trace.Trace {
		return trace.GenerateCello(trace.DefaultCello(capacity, n))
	}
	genTPCC := func(capacity int64, n int) *trace.Trace {
		return trace.GenerateTPCC(trace.DefaultTPCC(capacity, n))
	}
	return mergePlans(
		traceSweepPlan("fig7a", "Cello trace", genCello, []float64{4, 8, 12, 16, 20, 24, 28}, p),
		traceSweepPlan("fig7b", "TPC-C trace", genTPCC, []float64{2, 4, 6, 8, 10, 12}, p),
	)
}

// traceSweepPlan declares the trace replay at each scale factor under
// every scheduler — one job per (scale, scheduler) cell. Trace generation
// is deterministic, so each job regenerates and scales its own copy
// rather than sharing request structs across concurrent runs.
func traceSweepPlan(id, title string, gen func(capacity int64, n int) *trace.Trace,
	scales []float64, p Params) *Plan {
	names := sched.Names()
	grid := make([][]*runner.Job, len(scales))
	var jobs []*runner.Job
	for xi, scale := range scales {
		grid[xi] = make([]*runner.Job, len(names))
		for si, name := range names {
			j := &runner.Job{
				Label:     fmt.Sprintf("%s %s scale=%g", id, name, scale),
				Seed:      p.Seed,
				Device:    memsFactory(1),
				Scheduler: schedFactory(name),
				Source: func(d core.Device) workload.Source {
					scaled := gen(d.Capacity(), p.Requests).Scale(scale)
					reqs := make([]*core.Request, scaled.Len())
					for i, rec := range scaled.Records {
						reqs[i] = rec.Request()
					}
					return workload.NewFromSlice(reqs)
				},
				Options: sim.Options{Warmup: p.Warmup},
			}
			grid[xi][si] = j
			jobs = append(jobs, j)
		}
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID:      id,
				Title:   "average response time vs. trace scale factor, " + title + " on MEMS (ms)",
				Columns: append([]string{"scale"}, names...),
			}
			cvt := Table{
				ID:      id + "-cv2",
				Title:   "squared coefficient of variation, " + title + " on MEMS",
				Columns: append([]string{"scale"}, names...),
			}
			for xi, scale := range scales {
				row := []string{f2(scale)}
				cvRow := []string{f2(scale)}
				for si := range names {
					res := grid[xi][si].Result()
					row = append(row, ms(res.Response.Mean()))
					cvRow = append(cvRow, f2(res.Response.SquaredCV()))
				}
				t.AddRow(row...)
				cvt.AddRow(cvRow...)
			}
			return []Table{t, cvt}
		},
	}
}
