package fault

import (
	"testing"

	"memsim/internal/core"
)

// ticker charges 1 ms per access regardless of extent, making piece
// counts visible in the timing.
type ticker struct{ n int }

func (tk *ticker) Name() string    { return "ticker" }
func (tk *ticker) Capacity() int64 { return 10000 }
func (tk *ticker) SectorSize() int { return 512 }
func (tk *ticker) Reset()          {}
func (tk *ticker) Access(*core.Request, float64) float64 {
	tk.n++
	return 1
}
func (tk *ticker) EstimateAccess(*core.Request, float64) float64 { return 1 }

func TestSlipRemapNoDefectsPassThrough(t *testing.T) {
	tk := &ticker{}
	s := NewSlipRemap(tk)
	svc := s.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 100}, 0)
	if svc != 1 || tk.n != 1 {
		t.Errorf("clean extent should be one access: svc=%g n=%d", svc, tk.n)
	}
	if s.Remapped() != 0 {
		t.Error("unexpected remap entries")
	}
	if s.Name() != "ticker+slip" || s.Capacity() != 10000 || s.SectorSize() != 512 {
		t.Error("pass-through accessors wrong")
	}
}

func TestSlipRemapSplitsExtents(t *testing.T) {
	tk := &ticker{}
	s := NewSlipRemap(tk)
	s.Remap(10, 9000)
	s.Remap(20, 9001)
	// [0,30): healthy [0,10), slipped {10}, healthy [11,20), slipped
	// {20}, healthy [21,30) → five accesses.
	svc := s.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 30}, 0)
	if svc != 5 || tk.n != 5 {
		t.Errorf("expected 5 pieces: svc=%g n=%d", svc, tk.n)
	}
	if s.Remapped() != 2 {
		t.Errorf("remapped = %d", s.Remapped())
	}
}

func TestSlipRemapEdges(t *testing.T) {
	tk := &ticker{}
	s := NewSlipRemap(tk)
	s.Remap(0, 9000) // defect at the very start
	svc := s.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 10}, 0)
	if svc != 2 {
		t.Errorf("defect at extent start: %g pieces-ms, want 2", svc)
	}
	tk.n = 0
	s2 := NewSlipRemap(&ticker{})
	s2.Remap(9, 9000) // defect at the very end
	if svc := s2.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 10}, 0); svc != 2 {
		t.Errorf("defect at extent end: %g, want 2", svc)
	}
	// Single-sector request on a defect goes straight to the spare.
	s3 := NewSlipRemap(&ticker{})
	s3.Remap(5, 9000)
	if svc := s3.Access(&core.Request{Op: core.Read, LBN: 5, Blocks: 1}, 0); svc != 1 {
		t.Errorf("defect-only request: %g, want 1", svc)
	}
}

func TestSlipRemapPanicsOutOfRange(t *testing.T) {
	s := NewSlipRemap(&ticker{})
	for _, f := range []func(){
		func() { s.Remap(-1, 0) },
		func() { s.Remap(0, 10000) },
		func() { s.Remap(10000, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSlipRemapEstimateSinglePieceExact(t *testing.T) {
	tk := &ticker{}
	s := NewSlipRemap(tk)
	if est := s.EstimateAccess(&core.Request{Op: core.Read, LBN: 0, Blocks: 8}, 0); est != 1 {
		t.Errorf("estimate = %g", est)
	}
	if tk.n != 0 {
		t.Error("estimate accessed the device")
	}
	s.Remap(4, 9000)
	if est := s.EstimateAccess(&core.Request{Op: core.Read, LBN: 0, Blocks: 8}, 0); est != 1 {
		t.Errorf("multi-piece estimate (lower bound) = %g", est)
	}
}
