package sched

import (
	"fmt"

	"memsim/internal/core"
)

// ASPTF is aged shortest-positioning-time-first: each pending request's
// positioning estimate is discounted by how long it has waited,
//
//	effective(r) = EstimateAccess(r) − Weight · (now − r.Arrival)
//
// (Jacobson & Wilkes' aged variants). Pure SPTF's greediness starves
// distant requests — our Fig. 6 reproduction shows its σ²/µ² exploding
// right at the saturation knee, the regime where the paper observed
// SPTF's "odd behavior" — and a small aging weight trades a little mean
// response for bounded tails. ASPTF is an extension; the paper's figures
// use the four classic algorithms.
type ASPTF struct {
	// Weight is the aging coefficient: ms of positioning time forgiven
	// per ms of queue wait. 0 is pure SPTF; large values approach FCFS.
	weight float64
	// cost scores the positioning term before aging; core.AccessCost
	// unless overridden, so aging composes with any base cost model.
	cost core.CostModel
	q    []*core.Request
}

var _ core.Scheduler = (*ASPTF)(nil)

// NewASPTF returns an aged-SPTF queue with the given weight; it panics
// on negative weights.
func NewASPTF(weight float64) *ASPTF {
	if weight < 0 {
		panic(fmt.Sprintf("sched: negative ASPTF weight %g", weight))
	}
	return &ASPTF{weight: weight, cost: core.AccessCost}
}

// Name implements core.Scheduler.
func (s *ASPTF) Name() string { return fmt.Sprintf("ASPTF(%g)", s.weight) }

// Add implements core.Scheduler.
func (s *ASPTF) Add(r *core.Request) { s.q = append(s.q, r) }

// Len implements core.Scheduler.
func (s *ASPTF) Len() int { return len(s.q) }

// Reset implements core.Scheduler, keeping queue capacity like FCFS.
func (s *ASPTF) Reset() {
	clear(s.q)
	s.q = s.q[:0]
}

// Next implements core.Scheduler.
func (s *ASPTF) Next(d core.Device, now float64) *core.Request {
	if len(s.q) == 0 {
		return nil
	}
	best, bestT := 0, 0.0
	for i, r := range s.q {
		t := s.cost(d, r, now) - s.weight*(now-r.Arrival)
		if i == 0 || t < bestT {
			best, bestT = i, t
		}
	}
	r := s.q[best]
	s.q[best] = s.q[len(s.q)-1]
	s.q[len(s.q)-1] = nil
	s.q = s.q[:len(s.q)-1]
	return r
}
