package experiments

import (
	"fmt"
	"math/rand"

	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/mems"
)

func init() { register("fault", FaultTolerance) }

// FaultTolerance quantifies §6.1 (an extension: the paper argues this
// qualitatively, without a figure). Three tables:
//
//  1. Data-loss probability vs. number of failed tips, for a disk-like
//     configuration (no redundancy — the first head failure is fatal)
//     through increasingly redundant MEMS configurations (striping + ECC
//     tips + spare-tip remapping).
//  2. The capacity cost of each configuration (the §6.1.1 capacity ↔
//     fault-tolerance tradeoff).
//  3. Spare-tip remap timing neutrality: because a remapped sector lives
//     at the *same tip sector* on a spare tip, only the active-tip set
//     changes — sled motion, and therefore service time, is identical.
func FaultTolerance(p Params) []Table {
	configs := []struct {
		name string
		cfg  fault.Config
	}{
		{"disk-like (no ECC, no spares)", fault.Config{Tips: 6400, DataTips: 64, ECCTips: 0, SpareTips: 0}},
		{"stripe+1 ECC tip", fault.Config{Tips: 6400, DataTips: 64, ECCTips: 1, SpareTips: 30}},
		{"stripe+2 ECC tips", fault.Config{Tips: 6400, DataTips: 64, ECCTips: 2, SpareTips: 130}},
		{"stripe+2 ECC, 394 spares", fault.Config{Tips: 6400, DataTips: 64, ECCTips: 2, SpareTips: 394}},
	}
	failures := []int{1, 5, 20, 50, 100, 200, 400, 800}

	loss := Table{
		ID:      "fault-loss",
		Title:   "P(data loss) vs. uniformly-random failed tips (Monte Carlo)",
		Columns: []string{"failed tips"},
	}
	for _, c := range configs {
		loss.Columns = append(loss.Columns, c.name)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for _, k := range failures {
		row := []string{fmt.Sprintf("%d", k)}
		for _, c := range configs {
			pr, err := fault.LossProbability(c.cfg, k, p.Trials, rng)
			if err != nil {
				panic(err) // configurations above are known-good
			}
			row = append(row, fmt.Sprintf("%.3f", pr))
		}
		loss.AddRow(row...)
	}

	cap := Table{
		ID:      "fault-capacity",
		Title:   "capacity cost of redundancy (fraction of tips not storing data)",
		Columns: []string{"configuration", "ECC overhead", "spare overhead", "total"},
	}
	for _, c := range configs {
		ecc := float64(c.cfg.ECCTips) / float64(c.cfg.StripeWidth())
		usable := float64(c.cfg.Tips-c.cfg.SpareTips) / float64(c.cfg.Tips)
		spare := 1 - usable
		cap.AddRow(c.name,
			fmt.Sprintf("%.1f%%", ecc*100),
			fmt.Sprintf("%.1f%%", spare*100),
			fmt.Sprintf("%.1f%%", (1-usable*(1-ecc))*100))
	}

	neutral := remapNeutrality()

	pen := Table{
		ID:      "fault-seekerr",
		Title:   "seek-error penalties (§6.1.3, ms)",
		Columns: []string{"device", "expected", "worst case"},
	}
	pen.AddRow("Atlas 10K (re-seek + rotation)",
		ms(fault.DiskSeekErrorPenalty(1.5, 5.985, 0.5)),
		ms(fault.DiskSeekErrorPenalty(2.0, 5.985, 0.999)))
	pen.AddRow("MEMS (turnarounds + short seek)",
		ms(fault.MEMSSeekErrorPenalty(0.07, 0.2, 1)),
		ms(fault.MEMSSeekErrorPenalty(0.28, 0.45, 2)))

	return []Table{loss, cap, neutral, pen}
}

// remapNeutrality measures service times for the same sled coordinates on
// every track of a cylinder: tracks differ only in which tips are active,
// exactly like a spare-tip remap, so the times must be identical.
func remapNeutrality() Table {
	d := mems.MustDevice(mems.DefaultConfig())
	g := d.Geometry()
	t := Table{
		ID:      "fault-remap",
		Title:   "spare-tip remap timing neutrality: same sled position, different tip set",
		Columns: []string{"track (tip group)", "4 KB service from reset (ms)"},
	}
	for track := 0; track < g.TracksPerCylinder; track++ {
		d.Reset()
		lbn := g.LBN(g.Cylinders/4, track, 5, 0)
		svc := d.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: 8}, 0)
		t.AddRow(fmt.Sprintf("%d", track), ms(svc))
	}
	return t
}
