package experiments

import (
	"fmt"
	"math/rand"

	"memsim/internal/core"
	"memsim/internal/layout"
	"memsim/internal/runner"
)

func init() { register("shuffle", shufflePlan) }

// ShuffleStudy quantifies the organ-pipe maintenance cost that §5.3
// charges against it (extension): the layout "requires some state to be
// kept indicating each block's popularity" and "blocks must be
// periodically shuffled". The workload splits its traffic between two
// hot cylinder bands at arbitrary positions (plus background noise);
// centering both bands shortens the cross-hotspot seeks, but the
// shuffler must move whole cylinders of data to do it. The study reports
// the service-time benefit against the migration cost, charged at
// streaming bandwidth — and the drift rate at which bookkeeping erases
// the benefit, which is why the paper prefers the static bipartite
// layouts.
func ShuffleStudy(p Params) []Table { return mustRun(shufflePlan(p)) }

// adaptiveCell carries the adaptive layout's two cost components.
type adaptiveCell struct {
	svc, mig float64
}

func shufflePlan(p Params) *Plan {
	n := p.ClosedRequests
	fracs := []int{1, 4, 16} // drift 1×, 4×, 16× per run
	staticJobs := make([]*runner.Job, len(fracs))
	adaptiveJobs := make([]*runner.Job, len(fracs))
	var jobs []*runner.Job
	for i, frac := range fracs {
		drift := n / frac
		staticJobs[i] = &runner.Job{
			Label: fmt.Sprintf("shuffle static drift=%d×", frac),
			Seed:  p.Seed,
			Custom: func(*runner.Job) any {
				return shuffleStatic(p, n, drift)
			},
		}
		adaptiveJobs[i] = &runner.Job{
			Label: fmt.Sprintf("shuffle adaptive drift=%d×", frac),
			Seed:  p.Seed,
			Custom: func(*runner.Job) any {
				svc, mig := shuffleAdaptive(p, n, drift)
				return adaptiveCell{svc, mig}
			},
		}
		jobs = append(jobs, staticJobs[i], adaptiveJobs[i])
	}
	return &Plan{
		Jobs: jobs,
		Assemble: func() []Table {
			t := Table{
				ID:    "shuffle",
				Title: "adaptive organ pipe under two drifting hotspots (8-sector requests)",
				Columns: []string{"hotspots move", "layout", "service(ms)",
					"migration(ms/req)", "effective(ms)"},
			}
			for i, frac := range fracs {
				label := fmt.Sprintf("%d×/run", frac)
				svc := staticJobs[i].Value().(float64)
				t.AddRow(label, "simple (static)", ms(svc), ms(0), ms(svc))
				a := adaptiveJobs[i].Value().(adaptiveCell)
				t.AddRow(label, "adaptive organ pipe", ms(a.svc), ms(a.mig), ms(a.svc+a.mig))
			}
			return []Table{t}
		},
	}
}

// shuffleWorkload drives 8-sector reads: 90% split between two hot
// cylinder-extents bands, 10% uniform. The band positions re-randomize
// every drift requests.
func shuffleWorkload(extents int64, extentBlocks int64, count, drift int, seed int64,
	next func(lbn int64)) {
	rng := rand.New(rand.NewSource(seed))
	const band = 8 // extents per hotspot
	pick := func() int64 { return rng.Int63n(extents - band) }
	hotA, hotB := pick(), pick()
	for i := 0; i < count; i++ {
		if drift > 0 && i > 0 && i%drift == 0 {
			hotA, hotB = pick(), pick()
		}
		var e int64
		switch r := rng.Float64(); {
		case r < 0.45:
			e = hotA + rng.Int63n(band)
		case r < 0.90:
			e = hotB + rng.Int63n(band)
		default:
			e = rng.Int63n(extents)
		}
		off := rng.Int63n(extentBlocks - 8)
		next(e*extentBlocks + off)
	}
}

// shuffleStatic measures the identity layout.
func shuffleStatic(p Params, count, drift int) float64 {
	d := newMEMS(1)
	g := d.Geometry()
	ext := int64(g.SectorsPerCylinder)
	sum, now := 0.0, 0.0
	n := 0
	shuffleWorkload(d.Capacity()/ext, ext, count, drift, p.Seed, func(lbn int64) {
		svc := d.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: 8}, now)
		now += svc
		sum += svc
		n++
	})
	return sum / float64(n)
}

// shuffleAdaptive measures the adaptive organ pipe with incremental
// reshuffling (up to 4 extent swaps every 250 requests), charging
// migration at streaming bandwidth.
func shuffleAdaptive(p Params, count, drift int) (service, migration float64) {
	d := newMEMS(1)
	g := d.Geometry()
	ext := int64(g.SectorsPerCylinder)
	aop, err := layout.NewAdaptiveOrganPipe(d.Capacity(), ext)
	if err != nil {
		panic(err) // capacity is cylinders × SectorsPerCylinder by construction
	}
	md := core.NewManagedDevice(d, aop)
	perBlockMs := 2 * float64(g.SectorSize) / g.StreamBandwidth() * 1e3
	sum, mig, now := 0.0, 0.0, 0.0
	n := 0
	shuffleWorkload(d.Capacity()/ext, ext, count, drift, p.Seed, func(lbn int64) {
		aop.Record(lbn, 8)
		svc := md.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: 8}, now)
		now += svc
		sum += svc
		n++
		if n%250 == 0 {
			moved := aop.ReshuffleN(4)
			cost := float64(moved) * perBlockMs
			mig += cost
			now += cost
		}
	})
	return sum / float64(n), mig / float64(n)
}
