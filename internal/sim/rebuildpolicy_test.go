package sim

import (
	"math"
	"testing"
)

func TestClampPace(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0.7, 0.7},
		{1, 1},
		{1.5, 1},
		{0, MinRebuildPace},
		{-0.3, MinRebuildPace},
		{math.NaN(), MinRebuildPace},
		// Tiny-but-positive paces are legal, just slow.
		{0.005, 0.005},
	}
	for _, tc := range cases {
		if got := clampPace(tc.in); got != tc.want {
			t.Errorf("clampPace(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

func TestFixedRebuildPace(t *testing.T) {
	p := FixedRebuild{Frac: 0.3}
	if p.Name() != "fixed" {
		t.Errorf("name = %q", p.Name())
	}
	for _, q := range []int{0, 1, 7, 1000} {
		if got := p.Pace(q); got != 0.3 {
			t.Errorf("Pace(%d) = %g, want constant 0.3", q, got)
		}
	}
}

func TestAdaptiveRebuildPace(t *testing.T) {
	// Zero value selects MaxFrac 1, MinFrac 0.1, Backoff 1.
	var p AdaptiveRebuild
	if p.Name() != "adaptive" {
		t.Errorf("name = %q", p.Name())
	}
	if got := p.Pace(0); got != 1 {
		t.Errorf("idle pace = %g, want sprint at 1", got)
	}
	if got := p.Pace(1); got != 0.5 {
		t.Errorf("Pace(1) = %g, want 0.5", got)
	}
	if got := p.Pace(1000); got != 0.1 {
		t.Errorf("deep-queue pace = %g, want floor 0.1", got)
	}
	// Monotone non-increasing in queue depth.
	prev := math.Inf(1)
	for q := 0; q <= 64; q++ {
		cur := p.Pace(q)
		if cur > prev {
			t.Fatalf("pace rose with load: Pace(%d)=%g > Pace(%d)=%g", q, cur, q-1, prev)
		}
		prev = cur
	}

	// Custom knobs.
	c := AdaptiveRebuild{MaxFrac: 0.8, MinFrac: 0.2, Backoff: 0.5}
	if got := c.Pace(0); got != 0.8 {
		t.Errorf("custom idle pace = %g, want MaxFrac 0.8", got)
	}
	if got := c.Pace(2); got != 0.4 {
		t.Errorf("custom Pace(2) = %g, want 0.8/(1+0.5·2) = 0.4", got)
	}
	if got := c.Pace(100); got != 0.2 {
		t.Errorf("custom deep-queue pace = %g, want MinFrac 0.2", got)
	}
}
