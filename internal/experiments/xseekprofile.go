package experiments

func init() { register("seekprofile", seekProfilePlan) }

// SeekProfile (extension) tabulates the device's seek-time curves — the
// mechanical facts from which Figs. 9 and 10 and the §4.4 settling
// analysis follow. For the MEMS device it reports X seek time vs.
// distance for an interval at the sled center and the same interval at
// the edge (§2.4.4: position-dependent because of the springs;
// rest-to-rest seeks are direction- and mirror-symmetric, so interval
// position is the whole story), the Y seek for the same physical
// distance (which must end at access velocity), and the disk's seek
// curve for contrast.
func SeekProfile(p Params) []Table { return mustRun(seekProfilePlan(p)) }

// Pure seek-curve evaluation on private devices — one cheap job.
func seekProfilePlan(p Params) *Plan {
	return tablesJob("seekprofile", p.Seed, seekProfileBody)
}

func seekProfileBody() []Table {
	d := newMEMS(1)
	g := d.Geometry()
	x := Table{
		ID:    "seekprofile-mems",
		Title: "MEMS seek time vs. distance (ms; settle included in X)",
		Columns: []string{"distance(cyl)", "X interval centered", "X interval at edge",
			"Y same distance"},
	}
	sled := g.Sled()
	for _, dist := range []int{1, 10, 50, 100, 250, 500, 1000, 2000, 2499} {
		row := []string{f2(float64(dist))}
		// Interval centered on the sled's origin.
		lo := (g.Cylinders - dist) / 2
		row = append(row, ms(d.SeekX(lo, lo+dist)))
		// Interval ending at the edge.
		row = append(row, ms(d.SeekX(g.Cylinders-1-dist, g.Cylinders-1)))
		// Y seek over the same physical distance (no settle, must end at
		// access velocity).
		meters := float64(dist) * g.BitWidth
		y0 := -meters / 2
		ty := sled.SeekTime(y0, 0, y0+meters, g.AccessSpeed) * 1e3
		row = append(row, ms(ty))
		x.AddRow(row...)
	}

	dd := newDisk()
	dk := Table{
		ID:      "seekprofile-disk",
		Title:   "Atlas 10K seek time vs. distance (ms)",
		Columns: []string{"distance(cyl)", "seek"},
	}
	for _, dist := range []int{1, 10, 100, 1000, 3347, 6000, 10041} {
		dk.AddRow(f2(float64(dist)), ms(dd.SeekTime(dist)))
	}
	return []Table{x, dk}
}
