// lifetime.go models device lifetimes as seeded exponential draws — the
// failure-rate counterpart of the scheduled DeviceEvent machinery. The
// paper's §6 availability argument is statistical: MEMS arrays survive
// because their rebuild window (the interval a volume runs degraded and
// a second failure loses data) is several times shorter than a disk
// array's, so for equal device MTTF the mean time to data loss is
// several times longer. A LifetimeModel turns that argument into
// simulation inputs two ways:
//
//   - Schedule expands the model into a concrete DeviceEvent schedule —
//     each member slot experiences a Poisson renewal process of failures
//     at rate 1/MTTF — which the injector merges with any fixed events,
//     so sim.RunVolume sees drawn failures exactly like scheduled ones
//     (including repeated failures and second deaths mid-rebuild);
//   - LifetimeSampler + TimeToDataLoss drive the Monte-Carlo MTTDL
//     estimator (the `mttdl` artifact): whole volume lifetimes are
//     simulated as alternating healthy and vulnerable windows until a
//     second concurrent failure loses data.
//
// Determinism: all randomness derives from the model's own seed, with a
// decorrelated sub-stream per member slot, so a schedule or trial is a
// pure function of its declaration.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// LifetimeModel describes per-device exponential lifetimes for a
// redundant volume's member slots.
type LifetimeModel struct {
	// MTTFMs is the mean time to failure of one device in simulated ms.
	MTTFMs float64
	// Slots is the number of member slots failures are drawn for; drawn
	// events target slots [0, Slots).
	Slots int
	// HorizonMs bounds the drawn schedule: failures are drawn per slot
	// until their cumulative time passes the horizon.
	HorizonMs float64
	// Seed drives the model's private random streams. Each slot gets a
	// decorrelated sub-stream derived from Seed, so the schedule for
	// slot k does not change when Slots grows past k.
	Seed int64
}

// Validate reports configuration errors. NaN or infinite parameters are
// rejected: a lifetime model with a nonsensical MTTF would silently draw
// an empty (or unbounded) schedule.
func (m LifetimeModel) Validate() error {
	switch {
	case math.IsNaN(m.MTTFMs) || math.IsInf(m.MTTFMs, 0) || m.MTTFMs <= 0:
		return fmt.Errorf("fault: lifetime MTTF %g ms must be positive and finite", m.MTTFMs)
	case m.Slots <= 0:
		return fmt.Errorf("fault: lifetime model needs at least one slot, got %d", m.Slots)
	case math.IsNaN(m.HorizonMs) || math.IsInf(m.HorizonMs, 0) || m.HorizonMs <= 0:
		return fmt.Errorf("fault: lifetime horizon %g ms must be positive and finite", m.HorizonMs)
	}
	return nil
}

// slotSeed decorrelates per-slot random streams; the odd multiplier
// (splitmix64's golden-ratio increment) spreads consecutive slots across
// the seed space.
func (m LifetimeModel) slotSeed(slot int) int64 {
	return m.Seed ^ int64(uint64(slot+1)*0x9E3779B97F4A7C15)
}

// Schedule draws the failure schedule: per slot, exponential
// inter-failure gaps accumulate until the horizon, so one slot can fail
// repeatedly — modeling the replacement device dying too, which is how
// a second death mid-rebuild enters a run. Events are merged across
// slots and sorted by firing time (ties stable by slot). The schedule is
// a pure function of the model; callers may re-invoke it freely.
func (m LifetimeModel) Schedule() []DeviceEvent {
	var evs []DeviceEvent
	for slot := 0; slot < m.Slots; slot++ {
		rng := rand.New(rand.NewSource(m.slotSeed(slot)))
		for t := rng.ExpFloat64() * m.MTTFMs; t <= m.HorizonMs; t += rng.ExpFloat64() * m.MTTFMs {
			evs = append(evs, DeviceEvent{AtMs: t, Dev: slot})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].AtMs < evs[j].AtMs })
	return evs
}

// LifetimeSampler draws exponential device lifetimes from a private
// seeded stream — the per-trial randomness of the Monte-Carlo MTTDL
// estimator.
type LifetimeSampler struct {
	mttfMs float64
	rng    *rand.Rand
}

// NewLifetimeSampler returns a sampler drawing lifetimes with the given
// mean (ms) from the given seed.
func NewLifetimeSampler(mttfMs float64, seed int64) *LifetimeSampler {
	return &LifetimeSampler{mttfMs: mttfMs, rng: rand.New(rand.NewSource(seed))}
}

// Draw returns one device's lifetime in ms.
func (s *LifetimeSampler) Draw() float64 { return s.rng.ExpFloat64() * s.mttfMs }

// FirstOf returns the time until the first failure among n independent
// devices — exponentially distributed with mean MTTF/n, realized with a
// single draw.
func (s *LifetimeSampler) FirstOf(n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("fault: FirstOf needs a positive population, got %d", n))
	}
	return s.Draw() / float64(n)
}

// TimeToDataLoss simulates one volume lifetime and returns the
// simulated time (ms) at which data is lost, plus whether loss occurred
// within maxCycles repair cycles (false means the trial was censored —
// the caller should report it rather than silently folding a truncated
// lifetime into the mean).
//
// The volume alternates two states, exploiting the exponential model's
// memorylessness: healthy with `members` live devices until the first
// failure (Exp with mean MTTF/members), then vulnerable for windowMs —
// the measured rebuild window — during which a failure among the
// members-1 survivors loses data. Surviving the window restores full
// redundancy (hot-spare replacement) and the cycle repeats. This is the
// §6 two-state Markov chain, sampled rather than solved, so the same
// machinery extends to non-exponential lifetimes or load-dependent
// windows later.
func TimeToDataLoss(s *LifetimeSampler, members int, windowMs float64, maxCycles int) (float64, bool) {
	if members < 2 {
		panic(fmt.Sprintf("fault: time to data loss needs at least 2 members, got %d", members))
	}
	if windowMs < 0 || math.IsNaN(windowMs) {
		panic(fmt.Sprintf("fault: rebuild window %g ms must be non-negative", windowMs))
	}
	t := 0.0
	for cycle := 0; cycle < maxCycles; cycle++ {
		t += s.FirstOf(members)
		// Memorylessness: the survivors' residual lifetimes are fresh
		// exponentials, so the next failure among them is one FirstOf draw.
		second := s.FirstOf(members - 1)
		if second < windowMs {
			return t + second, true
		}
		t += windowMs
	}
	return t, false
}
