// equivalence_test.go is the engine refactor's golden contract: seeded
// runs across every regime (open, closed, multi, volume), both device
// models, FCFS and SPTF, with and without fault injection, fingerprinted
// in full float precision (every Result field plus a hash of the JSONL
// lifecycle trace) and compared byte-for-byte against goldens captured
// from the pre-refactor loops. Any engine change that shifts a single
// completion time, probe event, or counter fails here first.
//
// Regenerate goldens (after an INTENDED behavior change only) with:
//
//	go test ./internal/sim -run TestEquivalence -update-golden
package sim_test

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"memsim/internal/array"
	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/fault"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/stats"
	"memsim/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite equivalence goldens from the current engine")

// g formats a float at full round-trip precision so the fingerprint is
// sensitive to the last bit of every statistic.
func g(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

func dumpWelford(b *strings.Builder, name string, w stats.Welford) {
	fmt.Fprintf(b, "%s: n=%d mean=%s min=%s max=%s var=%s\n",
		name, w.N(), g(w.Mean()), g(w.Min()), g(w.Max()), g(w.Variance()))
}

func dumpDist(b *strings.Builder, name string, d *stats.Dist) {
	fmt.Fprintf(b, "%s: n=%d mean=%s p95=%s p99=%s\n",
		name, d.N(), g(d.Mean()), g(d.P95()), g(d.P99()))
}

func dumpPhases(b *strings.Builder, name string, ps *sim.PhaseStats) {
	if ps == nil {
		fmt.Fprintf(b, "%s: nil\n", name)
		return
	}
	fmt.Fprintf(b, "%s: requests=%d\n", name, ps.Requests)
	for _, ph := range []struct {
		n string
		d *stats.Dist
	}{
		{"seek", &ps.Seek}, {"settle", &ps.Settle}, {"turnaround", &ps.Turnaround},
		{"transfer", &ps.Transfer}, {"overhead", &ps.Overhead}, {"recovery", &ps.Recovery},
		{"positioning", &ps.Positioning}, {"service", &ps.Service}, {"unattributed", &ps.Unattributed},
	} {
		dumpDist(b, name+"."+ph.n, ph.d)
	}
}

// fingerprint renders every observable field of a Result, plus the
// byte hash of the run's JSONL lifecycle trace, as deterministic text.
func fingerprint(res sim.Result, runErr error, trace []byte) string {
	var b strings.Builder
	fmt.Fprintf(&b, "err: %v\n", runErr)
	fmt.Fprintf(&b, "requests: %d\n", res.Requests)
	dumpWelford(&b, "response", res.Response)
	dumpWelford(&b, "service", res.Service)
	dumpWelford(&b, "queuelen", res.QueueLen)
	fmt.Fprintf(&b, "maxqueue: %d\n", res.MaxQueue)
	fmt.Fprintf(&b, "busy: %s\n", g(res.Busy))
	fmt.Fprintf(&b, "elapsed: %s\n", g(res.Elapsed))
	fmt.Fprintf(&b, "utilization: %s\n", g(res.Utilization()))
	fmt.Fprintf(&b, "retries: %d recovered: %d failed: %d degraded: %d requeues: %d\n",
		res.Retries, res.Recovered, res.FailedRequests, res.DegradedReads, res.Requeues)
	fmt.Fprintf(&b, "recoveryms: %s\n", g(res.RecoveryMs))
	fmt.Fprintf(&b, "lostreads: %d dataloss: %v\n", res.LostReads, res.DataLoss)
	fmt.Fprintf(&b, "clamped: %d\n", res.ClampedRequests)
	dumpPhases(&b, "phases", res.Phases)
	fmt.Fprintf(&b, "members: %d\n", len(res.Members))
	for i, m := range res.Members {
		fmt.Fprintf(&b, "member[%d]: requests=%d busy=%s\n", i, m.Requests, g(m.Busy))
		dumpPhases(&b, fmt.Sprintf("member[%d].phases", i), m.Phases)
	}
	if v := res.Volume; v != nil {
		fmt.Fprintf(&b, "volume: failures=%d rebuilds=%d/%d chunks=%d\n",
			v.DeviceFailures, v.RebuildsStarted, v.RebuildsDone, v.RebuildChunks)
		fmt.Fprintf(&b, "volume.rebuildms: %s degradedms: %s rebuildbusy: %s\n",
			g(v.RebuildMs), g(v.DegradedMs), g(v.RebuildBusy))
		fmt.Fprintf(&b, "volume.counts: dr=%d dw=%d sr=%d lost=%d\n",
			v.DegradedReads, v.DegradedWrites, v.SpareReads, v.LostRequests)
		dumpDist(&b, "volume.healthy", &v.Healthy)
		dumpDist(&b, "volume.degraded", &v.Degraded)
	} else {
		fmt.Fprintf(&b, "volume: nil\n")
	}
	fmt.Fprintf(&b, "trace: lines=%d sha256=%x\n", bytes.Count(trace, []byte("\n")), sha256.Sum256(trace))
	return b.String()
}

// scenario is one fingerprinted run. Every scenario is executed twice —
// once bare and once under a probe stack (PhaseCollector + JSONL trace)
// — and both fingerprints land in the golden, so probe-neutrality of
// the Result is part of the contract.
type scenario struct {
	name string
	run  func(opts sim.Options) (sim.Result, error)
	// inj builds a fresh injector per execution (injectors are stateful);
	// nil runs without one.
	inj func(t *testing.T) *fault.Injector
}

func newMEMS(t *testing.T) *mems.Device {
	t.Helper()
	d, err := mems.NewDevice(mems.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newDisk(t *testing.T) *disk.Device {
	t.Helper()
	d, err := disk.NewDevice(disk.Atlas10K())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newSched(t *testing.T, name string) core.Scheduler {
	t.Helper()
	s, err := sched.New(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// transientInjector is the §6.1.3 retry scenario: transient errors at a
// visible rate plus, for MEMS, scheduled tip failures degrading stripes
// mid-run (ECC surcharges, lost reads).
func transientInjector(t *testing.T, geo *mems.Geometry) *fault.Injector {
	t.Helper()
	cfg := fault.DefaultInjectorConfig()
	cfg.TransientRate = 0.05
	cfg.Seed = 99
	if geo != nil {
		arr := fault.DefaultConfig()
		cfg.Array = &arr
		cfg.SectorTips = geo.TipsForSector
		cfg.Events = []fault.TipEvent{
			{AtMs: 50, Tip: 3},
			{AtMs: 120, Tip: 67, Defect: true},
			{AtMs: 200, Tip: 131},
		}
	}
	inj, err := fault.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func equivalenceScenarios(t *testing.T) []scenario {
	t.Helper()
	const (
		requests = 400
		warmup   = 40
		seed     = 7
	)
	var scns []scenario

	// ── Open arrivals, single device ────────────────────────────────
	for _, dev := range []string{"mems", "disk"} {
		for _, sc := range []string{"FCFS", "SPTF"} {
			dev, sc := dev, sc
			mk := func(t *testing.T) core.Device {
				if dev == "mems" {
					return newMEMS(t)
				}
				return newDisk(t)
			}
			rate := 900.0
			if dev == "disk" {
				rate = 90
			}
			run := func(opts sim.Options) (sim.Result, error) {
				d := mk(t)
				src := workload.DefaultRandom(rate, d.SectorSize(), d.Capacity(), requests, seed)
				return sim.Run(nil, d, newSched(t, sc), src, opts), nil
			}
			scns = append(scns, scenario{name: "open_" + dev + "_" + sc, run: run})
			scns = append(scns, scenario{
				name: "open_" + dev + "_" + sc + "_inj",
				run:  run,
				inj: func(t *testing.T) *fault.Injector {
					if dev == "mems" {
						geo := newMEMS(t).Geometry()
						return transientInjector(t, geo)
					}
					return transientInjector(t, nil)
				},
			})
		}
	}

	// ── Closed, back-to-back ────────────────────────────────────────
	for _, dev := range []string{"mems", "disk"} {
		dev := dev
		run := func(opts sim.Options) (sim.Result, error) {
			var d core.Device
			if dev == "mems" {
				d = newMEMS(t)
			} else {
				d = newDisk(t)
			}
			// The §5.3 regime: bipartite sizes under the simple layout.
			var pl core.Device = d
			_ = pl
			cfg := workload.RandomConfig{
				Rate: 1, ReadFraction: 0.67, MeanBytes: 4096, MaxBytes: 64 * 1024,
				SectorSize: d.SectorSize(), Capacity: d.Capacity(), Count: requests, Seed: seed,
			}
			return sim.RunClosed(nil, d, workload.NewRandom(cfg), opts), nil
		}
		scns = append(scns, scenario{name: "closed_" + dev, run: run})
		scns = append(scns, scenario{
			name: "closed_" + dev + "_inj",
			run:  run,
			inj: func(t *testing.T) *fault.Injector {
				if dev == "mems" {
					return transientInjector(t, newMEMS(t).Geometry())
				}
				return transientInjector(t, nil)
			},
		})
	}

	// ── Multi-device routed volumes ─────────────────────────────────
	multi := func(devName string, n int, schedName string, route func(per int64) sim.Router, spill bool) func(opts sim.Options) (sim.Result, error) {
		return func(opts sim.Options) (sim.Result, error) {
			devs := make([]core.Device, n)
			scheds := make([]core.Scheduler, n)
			for i := range devs {
				if devName == "mems" {
					devs[i] = newMEMS(t)
				} else {
					devs[i] = newDisk(t)
				}
				scheds[i] = newSched(t, schedName)
			}
			per := devs[0].Capacity()
			rate := 1600.0
			if devName == "disk" {
				rate = 160
			}
			meanBytes := 4096.0
			if spill {
				// Large requests that regularly spill a strip boundary,
				// exercising the router clamp path (and its counter).
				meanBytes = 512 * 1024
				rate /= 64
			}
			cfg := workload.RandomConfig{
				Rate: rate, ReadFraction: 0.67, MeanBytes: meanBytes, MaxBytes: 16 * 1024 * meanBytes / 4096,
				SectorSize: devs[0].SectorSize(), Capacity: per * int64(n),
				Count: requests, Seed: seed,
			}
			return sim.RunMulti(nil, devs, scheds, route(per), workload.NewRandom(cfg), opts)
		}
	}
	scns = append(scns,
		scenario{name: "multi_mems_stripe_SPTF", run: multi("mems", 2, "SPTF",
			func(int64) sim.Router { return sim.StripeRouter(2700, 2) }, false)},
		scenario{name: "multi_mems_stripe_SPTF_spill", run: multi("mems", 2, "SPTF",
			func(int64) sim.Router { return sim.StripeRouter(2700, 2) }, true)},
		scenario{name: "multi_disk_concat_FCFS", run: multi("disk", 2, "FCFS",
			func(per int64) sim.Router { return sim.ConcatRouter(per) }, false)},
	)

	// ── Redundant volumes (fork-join + failover + rebuild) ──────────
	volume := func(level array.VolumeLevel, members, spares int, fail bool, policy sim.RebuildPolicy) scenario {
		name := "volume_mirror"
		if level == array.VolParity {
			name = "volume_parity"
		}
		if fail {
			name += "_fail"
		}
		if policy != nil {
			name += "_" + policy.Name()
		}
		run := func(opts sim.Options) (sim.Result, error) {
			cfg := array.VolumeConfig{
				Level: level, Members: members, Spares: spares,
				StripeUnit: 540, PerMember: 54000,
			}
			v, err := array.NewVolume(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := cfg.Devices()
			devs := make([]core.Device, n)
			scheds := make([]core.Scheduler, n)
			for i := range devs {
				devs[i] = newMEMS(t)
				scheds[i] = sched.NewSPTF()
			}
			src := workload.NewRandom(workload.RandomConfig{
				Rate: 900, ReadFraction: 0.67, MeanBytes: 4096, MaxBytes: 16 * 1024,
				SectorSize: devs[0].SectorSize(), Capacity: cfg.Capacity(),
				Count: requests, Seed: seed,
			})
			return sim.RunVolume(nil, sim.VolumeSpec{
				Volume: v, Devices: devs, Scheds: scheds,
				RebuildChunk: 2700, RebuildFrac: 0.5, RebuildPolicy: policy,
			}, src, opts)
		}
		scn := scenario{name: name, run: run}
		if fail {
			scn.inj = func(t *testing.T) *fault.Injector {
				inj, err := fault.NewInjector(fault.InjectorConfig{
					Seed:         41,
					DeviceEvents: []fault.DeviceEvent{{AtMs: 80, Dev: 1}},
				})
				if err != nil {
					t.Fatal(err)
				}
				return inj
			}
		}
		return scn
	}
	scns = append(scns,
		volume(array.VolMirror, 2, 1, false, nil),
		volume(array.VolMirror, 2, 1, true, nil),
		volume(array.VolParity, 3, 1, true, nil),
		// Queue-aware pacing under the same failure: pins the adaptive
		// policy's trajectory (pace changes shift chunk timing and the
		// trace) without touching the fixed-policy goldens above.
		volume(array.VolParity, 3, 1, true, sim.AdaptiveRebuild{}),
	)

	_ = warmup
	return scns
}

// TestEquivalence locks the engine to the pre-refactor loops: for each
// scenario the bare and probed fingerprints must match the committed
// golden byte-for-byte.
func TestEquivalence(t *testing.T) {
	const warmup = 40
	for _, scn := range equivalenceScenarios(t) {
		scn := scn
		t.Run(scn.name, func(t *testing.T) {
			execute := func(probed bool) string {
				opts := sim.Options{Warmup: warmup}
				if scn.inj != nil {
					opts.Injector = scn.inj(t)
				}
				var trace bytes.Buffer
				var jp *sim.JSONLProbe
				if probed {
					jp = sim.NewJSONLProbe(&trace)
					opts.Probe = sim.MultiProbe{sim.NewPhaseCollector(), jp}
				}
				res, err := scn.run(opts)
				if jp != nil {
					if ferr := jp.Flush(); ferr != nil {
						t.Fatal(ferr)
					}
				}
				return fingerprint(res, err, trace.Bytes())
			}
			got := "── bare ──\n" + execute(false) + "── probed ──\n" + execute(true)

			path := filepath.Join("testdata", "equivalence", scn.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden to capture): %v", err)
			}
			if got != string(want) {
				t.Errorf("fingerprint diverged from pre-refactor golden\n--- got ---\n%s--- want ---\n%s",
					got, want)
			}
		})
	}
}
