package disk

import (
	"math"
	"testing"

	"memsim/internal/core"
)

// TestGoldenValues pins exact disk-model outputs; see the MEMS golden
// test for the rationale.
func TestGoldenValues(t *testing.T) {
	d := MustDevice(Atlas10K())
	d.Reset()
	check := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %.9f, want %.9f", name, got, want)
		}
	}
	check("cold 4 KB access", d.Access(&core.Request{LBN: 1000000, Blocks: 8}, 0), 11.005919851)
	check("following 8 KB access", d.Access(&core.Request{LBN: 9000000, Blocks: 16}, 3.25), 9.984519335)
}
