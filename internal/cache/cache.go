// Package cache models the on-device speed-matching buffer of §2.4.11:
// "since sequential request streams are important aspects of many real
// systems, these speed-matching buffers will play an important role in
// prefetching of sequential LBNs." The cache is a segment-granular LRU
// read cache with sequential read-ahead, wrapped around any core.Device;
// it is a timing model (hits cost only the interface transfer, misses
// cost the media access that also fetches the read-ahead).
//
// As the paper notes, "most block reuse will be captured by larger host
// memory caches instead of in the device cache" — so the defaults are a
// small buffer whose value is prefetching, not reuse.
package cache

import (
	"container/list"
	"fmt"

	"memsim/internal/core"
)

// Config parameterizes the buffer.
type Config struct {
	// SizeSectors is the total buffer capacity in sectors (default
	// device buffers of the era were 1–4 MB; 4 MB = 8192 sectors).
	SizeSectors int64
	// SegmentSectors is the caching granularity. One MEMS track (540
	// sectors) or one disk track is the natural unit.
	SegmentSectors int
	// ReadAhead is how many sectors past a read miss the device
	// continues to stream into the buffer.
	ReadAhead int
	// AdaptivePrefetch, when set, enables read-ahead only once the
	// request stream looks sequential (a request starting where the
	// previous one ended). Fixed read-ahead taxes random traffic — every
	// miss drags a full segment across the media — while sequential
	// streams still get the full benefit after the first pair.
	AdaptivePrefetch bool
	// HitMs is the interface/controller time charged for a request
	// served entirely from the buffer.
	HitMs float64
}

// DefaultConfig returns a 4 MB buffer with one-track segments and
// one-track read-ahead for the paper's MEMS device geometry.
func DefaultConfig() Config {
	return Config{SizeSectors: 8192, SegmentSectors: 540, ReadAhead: 540, HitMs: 0.02}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeSectors <= 0:
		return fmt.Errorf("cache: size must be positive, got %d", c.SizeSectors)
	case c.SegmentSectors <= 0:
		return fmt.Errorf("cache: segment size must be positive, got %d", c.SegmentSectors)
	case int64(c.SegmentSectors) > c.SizeSectors:
		return fmt.Errorf("cache: segment (%d) larger than cache (%d)", c.SegmentSectors, c.SizeSectors)
	case c.ReadAhead < 0:
		return fmt.Errorf("cache: negative read-ahead %d", c.ReadAhead)
	case c.HitMs < 0:
		return fmt.Errorf("cache: negative hit time %g", c.HitMs)
	}
	return nil
}

// Cache wraps a device with the buffer; it implements core.Device.
type Cache struct {
	inner core.Device
	cfg   Config

	lru      *list.List // front = most recent; values are segment ids
	resident map[int64]*list.Element
	maxSegs  int

	// nextSeq is where a sequential continuation of the last read would
	// start; sequential tracks whether the stream currently looks
	// sequential (for AdaptivePrefetch).
	nextSeq    int64
	sequential bool

	hits, misses, prefetchedSectors int64
}

var _ core.Device = (*Cache)(nil)

// New wraps inner; it panics on invalid configuration
// (programmer-supplied).
func New(inner core.Device, cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{inner: inner, cfg: cfg}
	c.maxSegs = int(cfg.SizeSectors / int64(cfg.SegmentSectors))
	c.flush()
	return c
}

// Name implements core.Device.
func (c *Cache) Name() string { return c.inner.Name() + "+cache" }

// Capacity implements core.Device.
func (c *Cache) Capacity() int64 { return c.inner.Capacity() }

// SectorSize implements core.Device.
func (c *Cache) SectorSize() int { return c.inner.SectorSize() }

// Reset implements core.Device; the buffer and statistics clear too.
func (c *Cache) Reset() {
	c.inner.Reset()
	c.flush()
	c.hits, c.misses, c.prefetchedSectors = 0, 0, 0
}

func (c *Cache) flush() {
	c.lru = list.New()
	c.resident = make(map[int64]*list.Element)
	c.nextSeq = -1
	c.sequential = false
}

// observe updates the sequentiality detector with a read at [lbn, +blocks).
func (c *Cache) observe(lbn int64, blocks int) {
	c.sequential = lbn == c.nextSeq
	c.nextSeq = lbn + int64(blocks)
}

// readAhead returns the prefetch extent for a miss at the current point
// in the stream.
func (c *Cache) readAhead() int64 {
	if c.cfg.AdaptivePrefetch && !c.sequential {
		return 0
	}
	return int64(c.cfg.ReadAhead)
}

// Hits, Misses and HitRate report read statistics.
func (c *Cache) Hits() int64   { return c.hits }
func (c *Cache) Misses() int64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 before any reads.
func (c *Cache) HitRate() float64 {
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}

// PrefetchedSectors reports how many sectors were fetched beyond what
// requests demanded.
func (c *Cache) PrefetchedSectors() int64 { return c.prefetchedSectors }

// segRange returns the segment ids covering [lbn, lbn+blocks).
func (c *Cache) segRange(lbn int64, blocks int) (first, last int64) {
	s := int64(c.cfg.SegmentSectors)
	return lbn / s, (lbn + int64(blocks) - 1) / s
}

// allResident reports whether every covering segment is buffered.
func (c *Cache) allResident(lbn int64, blocks int) bool {
	first, last := c.segRange(lbn, blocks)
	for s := first; s <= last; s++ {
		if _, ok := c.resident[s]; !ok {
			return false
		}
	}
	return true
}

// touch marks the covering segments most-recently-used, inserting and
// evicting as needed.
func (c *Cache) touch(lbn int64, blocks int) {
	first, last := c.segRange(lbn, blocks)
	for s := first; s <= last; s++ {
		if e, ok := c.resident[s]; ok {
			c.lru.MoveToFront(e)
			continue
		}
		c.resident[s] = c.lru.PushFront(s)
		for c.lru.Len() > c.maxSegs {
			old := c.lru.Back()
			c.lru.Remove(old)
			delete(c.resident, old.Value.(int64))
		}
	}
}

// Access implements core.Device.
func (c *Cache) Access(req *core.Request, now float64) float64 {
	if req.Op == core.Write {
		// Write-through, no-allocate: the media access is charged in
		// full; segments already resident stay resident (the buffer
		// observes the write on its way through).
		return c.inner.Access(req, now)
	}
	c.observe(req.LBN, req.Blocks)
	if c.allResident(req.LBN, req.Blocks) {
		c.hits++
		c.touch(req.LBN, req.Blocks)
		return c.cfg.HitMs
	}
	c.misses++
	// Miss: stream the demanded extent plus read-ahead from the media.
	fetch := *req
	ahead := c.readAhead()
	if max := c.inner.Capacity() - (req.LBN + int64(req.Blocks)); ahead > max {
		ahead = max
	}
	fetch.Blocks = req.Blocks + int(ahead)
	c.prefetchedSectors += ahead
	t := c.inner.Access(&fetch, now)
	c.touch(fetch.LBN, fetch.Blocks)
	return c.cfg.HitMs + t
}

// EstimateAccess implements core.Device: hits are predicted from current
// residency without promoting segments or fetching.
func (c *Cache) EstimateAccess(req *core.Request, now float64) float64 {
	if req.Op == core.Write {
		return c.inner.EstimateAccess(req, now)
	}
	if c.allResident(req.LBN, req.Blocks) {
		return c.cfg.HitMs
	}
	fetch := *req
	ahead := int64(c.cfg.ReadAhead)
	if c.cfg.AdaptivePrefetch && req.LBN != c.nextSeq {
		ahead = 0
	}
	if max := c.inner.Capacity() - (req.LBN + int64(req.Blocks)); ahead > max {
		ahead = max
	}
	fetch.Blocks = req.Blocks + int(ahead)
	return c.cfg.HitMs + c.inner.EstimateAccess(&fetch, now)
}
