package power

import (
	"math"
	"testing"

	"memsim/internal/core"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/workload"
)

// constDevice services everything in a fixed time.
type constDevice struct{ svc float64 }

func (d *constDevice) Name() string                                  { return "const" }
func (d *constDevice) Capacity() int64                               { return 1 << 30 }
func (d *constDevice) SectorSize() int                               { return 512 }
func (d *constDevice) Reset()                                        {}
func (d *constDevice) Access(*core.Request, float64) float64         { return d.svc }
func (d *constDevice) EstimateAccess(*core.Request, float64) float64 { return d.svc }

func req(lbn int64) *core.Request { return &core.Request{LBN: lbn, Blocks: 8} }

func TestModelsValid(t *testing.T) {
	for _, m := range []Model{MEMSModel(), MobileDiskModel(), ServerDiskModel()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%+v: %v", m, err)
		}
	}
	if err := (Model{ActiveW: -1}).Validate(); err == nil {
		t.Error("expected error for negative power")
	}
}

func TestActiveEnergyAccounting(t *testing.T) {
	// One 1000 ms access at 2 W = 2 J active energy.
	m := NewManaged(&constDevice{svc: 1000}, Model{ActiveW: 2}, AlwaysOn())
	svc := m.Access(req(0), 0)
	if svc != 1000 {
		t.Fatalf("service = %g", svc)
	}
	rep := m.Report()
	if math.Abs(rep.ActiveJ-2) > 1e-12 {
		t.Errorf("active energy = %g J, want 2", rep.ActiveJ)
	}
	if rep.IdleJ != 0 || rep.Restarts != 0 {
		t.Errorf("unexpected idle/restarts: %+v", rep)
	}
	if rep.BytesMoved != 8*512 {
		t.Errorf("bytes moved = %d", rep.BytesMoved)
	}
}

func TestIdleEnergyBetweenRequests(t *testing.T) {
	// 1 s gap at 0.5 W idle with no standby = 0.5 J idle energy.
	m := NewManaged(&constDevice{svc: 10}, Model{ActiveW: 1, IdleW: 0.5}, AlwaysOn())
	m.Access(req(0), 0)    // busy [0,10)
	m.Access(req(0), 1010) // idle [10,1010)
	rep := m.Report()
	if math.Abs(rep.IdleJ-0.5) > 1e-9 {
		t.Errorf("idle energy = %g J, want 0.5", rep.IdleJ)
	}
	if rep.Restarts != 0 {
		t.Error("no standby expected under AlwaysOn")
	}
}

func TestStandbyAndRestart(t *testing.T) {
	model := Model{ActiveW: 1, IdleW: 0.5, StandbyW: 0.1, RestartMs: 100, RestartW: 2}
	m := NewManaged(&constDevice{svc: 10}, model, Policy{TimeoutMs: 200})
	m.Access(req(0), 0) // busy [0,10)
	// Next request 1010 ms later: idle 200 ms, standby 800 ms, restart.
	svc := m.Access(req(0), 1010)
	if svc != 110 { // 100 restart + 10 service
		t.Fatalf("service with restart = %g, want 110", svc)
	}
	rep := m.Report()
	if math.Abs(rep.IdleJ-0.5*0.2) > 1e-9 {
		t.Errorf("idle energy = %g J, want 0.1", rep.IdleJ)
	}
	if math.Abs(rep.StandbyJ-0.1*0.8) > 1e-9 {
		t.Errorf("standby energy = %g J, want 0.08", rep.StandbyJ)
	}
	if math.Abs(rep.RestartJ-2*0.1) > 1e-9 {
		t.Errorf("restart energy = %g J, want 0.2", rep.RestartJ)
	}
	if rep.Restarts != 1 {
		t.Errorf("restarts = %d", rep.Restarts)
	}
	if rep.PenaltyMs != 100 {
		t.Errorf("penalty = %g ms", rep.PenaltyMs)
	}
}

func TestImmediatePolicySkipsIdle(t *testing.T) {
	// Timeout 0: the device drops straight to standby; every gap incurs
	// a restart but zero idle energy — the MEMS regime where restart
	// costs 0.5 ms.
	m := NewManaged(&constDevice{svc: 1}, MEMSModel(), Immediate())
	m.Access(req(0), 0)
	m.Access(req(0), 1000)
	rep := m.Report()
	if rep.IdleJ != 0 {
		t.Errorf("idle energy = %g, want 0", rep.IdleJ)
	}
	if rep.Restarts != 1 {
		t.Errorf("restarts = %d", rep.Restarts)
	}
	if rep.PenaltyMs != MEMSModel().RestartMs {
		t.Errorf("penalty = %g", rep.PenaltyMs)
	}
}

func TestEstimateAccessIncludesPenaltyWithoutCommitting(t *testing.T) {
	m := NewManaged(&constDevice{svc: 10}, Model{ActiveW: 1, RestartMs: 50}, Policy{TimeoutMs: 100})
	m.Access(req(0), 0)
	est := m.EstimateAccess(req(0), 500) // gap 490 > 100 → penalty
	if est != 60 {
		t.Errorf("estimate = %g, want 60", est)
	}
	if m.Report().Restarts != 0 {
		t.Error("estimate committed a restart")
	}
	// Within the timeout: no penalty.
	if est := m.EstimateAccess(req(0), 50); est != 10 {
		t.Errorf("estimate = %g, want 10", est)
	}
}

func TestFinishAtClosesBooks(t *testing.T) {
	m := NewManaged(&constDevice{svc: 10}, Model{IdleW: 1}, AlwaysOn())
	m.Access(req(0), 0)
	m.FinishAt(1010)
	rep := m.Report()
	if math.Abs(rep.IdleJ-1.0) > 1e-9 {
		t.Errorf("idle energy = %g J, want 1", rep.IdleJ)
	}
	if rep.ElapsedMs != 1010 {
		t.Errorf("elapsed = %g", rep.ElapsedMs)
	}
	// FinishAt before the last busy end is a no-op.
	m.FinishAt(5)
	if m.Report().ElapsedMs != 1010 {
		t.Error("FinishAt went backwards")
	}
}

func TestResetClearsAccounting(t *testing.T) {
	m := NewManaged(&constDevice{svc: 10}, MEMSModel(), Immediate())
	m.Access(req(0), 0)
	m.Reset()
	if m.Report().TotalJ() != 0 || m.Report().Requests != 0 {
		t.Error("Reset did not clear accounting")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewManaged(&constDevice{}, Model{ActiveW: -1}, AlwaysOn()) },
		func() { NewManaged(&constDevice{}, Model{}, Policy{TimeoutMs: -1}) },
		func() { PerBitEnergy(MEMSModel(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPerBitEnergyLinear(t *testing.T) {
	// §7: energy consumption should be (near-)linear in bytes accessed.
	// Compare total active energy for 1× vs 4× the data on the real MEMS
	// device with back-to-back large transfers (positioning amortized).
	d := mems.MustDevice(mems.DefaultConfig())
	run := func(blocks int) float64 {
		m := NewManaged(d, MEMSModel(), Immediate())
		m.Reset()
		now := 0.0
		for i := 0; i < 50; i++ {
			r := &core.Request{LBN: int64(i * blocks), Blocks: blocks}
			now += m.Access(r, now)
		}
		return m.Report().ActiveJ
	}
	e1 := run(200)
	e4 := run(800)
	ratio := e4 / e1
	if ratio < 3.2 || ratio > 4.4 {
		t.Errorf("4× data used %.2f× energy, want ≈ 4×", ratio)
	}
	if e := PerBitEnergy(MEMSModel(), 79.6e6*8); e <= 0 {
		t.Errorf("per-bit energy = %g", e)
	}
}

func TestManagedComposesWithSimulator(t *testing.T) {
	// End-to-end: run the queueing simulator over a power-managed MEMS
	// device; with a 0.5 ms restart, aggressive idling must cost almost
	// nothing in response time while saving idle energy versus AlwaysOn.
	d := mems.MustDevice(mems.DefaultConfig())
	run := func(p Policy) (meanResp float64, rep Report) {
		m := NewManaged(d, MEMSModel(), p)
		src := workload.DefaultRandom(20, 512, d.Capacity(), 1500, 5)
		res := sim.Run(nil, m, sched.NewFCFS(), src, sim.Options{Warmup: 100})
		m.FinishAt(res.Elapsed)
		return res.Response.Mean(), m.Report()
	}
	respOn, repOn := run(AlwaysOn())
	respIdle, repIdle := run(Immediate())
	if repIdle.TotalJ() >= repOn.TotalJ() {
		t.Errorf("immediate idle used %.2f J, always-on %.2f J: want savings",
			repIdle.TotalJ(), repOn.TotalJ())
	}
	if respIdle > respOn+1.0 {
		t.Errorf("idle policy added %.3f ms mean response; MEMS restart should be imperceptible",
			respIdle-respOn)
	}
	if repIdle.Restarts == 0 {
		t.Error("immediate policy never restarted — workload not idle enough?")
	}
}

func TestReportDerivedMetrics(t *testing.T) {
	var r Report
	if r.MeanPowerW() != 0 || r.MeanPenaltyMs() != 0 {
		t.Error("zero report should produce zeros")
	}
	r = Report{ActiveJ: 1, IdleJ: 1, ElapsedMs: 2000, Requests: 4, PenaltyMs: 2}
	if r.TotalJ() != 2 || r.MeanPowerW() != 1 || r.MeanPenaltyMs() != 0.5 {
		t.Errorf("derived metrics wrong: %+v", r)
	}
}

func TestManagedName(t *testing.T) {
	m := NewManaged(&constDevice{}, Model{}, AlwaysOn())
	if m.Name() != "const+power" {
		t.Errorf("name = %q", m.Name())
	}
	if m.Capacity() != 1<<30 || m.SectorSize() != 512 {
		t.Error("pass-through accessors wrong")
	}
}

func TestCompressionTradeoff(t *testing.T) {
	perBit := PerBitEnergy(MEMSModel(), 79.6e6*8)
	// Free compression at ratio 2 halves the per-bit energy.
	eff, ok := CompressionTradeoff(perBit, 2, 0)
	if !ok || math.Abs(eff-perBit/2) > 1e-18 {
		t.Errorf("free 2× compression: eff=%g ok=%v", eff, ok)
	}
	// Ratio 1 with any positive cpu cost loses.
	if _, ok := CompressionTradeoff(perBit, 1, 1e-12); ok {
		t.Error("ratio 1 can never be worthwhile")
	}
	// CPU cost above the saving makes it lose.
	if _, ok := CompressionTradeoff(perBit, 2, perBit); ok {
		t.Error("cpu cost ≥ per-bit energy cannot win")
	}
	for _, f := range []func(){
		func() { CompressionTradeoff(0, 2, 0) },
		func() { CompressionTradeoff(perBit, 0.5, 0) },
		func() { CompressionTradeoff(perBit, 2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
