package mems

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"memsim/internal/core"
)

func testDevice(t testing.TB) *Device {
	t.Helper()
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeometryDerivation(t *testing.T) {
	g, err := NewGeometry(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every anchor below is derived in DESIGN.md §3 from Table 1 of the
	// paper; together they pin the whole geometry.
	if g.TipSectorBits != 90 {
		t.Errorf("TipSectorBits = %d, want 90", g.TipSectorBits)
	}
	if g.StripeTips != 64 {
		t.Errorf("StripeTips = %d, want 64", g.StripeTips)
	}
	if g.SectorsPerRow != 20 {
		t.Errorf("SectorsPerRow = %d, want 20", g.SectorsPerRow)
	}
	if g.RowsPerTrack != 27 {
		t.Errorf("RowsPerTrack = %d, want 27", g.RowsPerTrack)
	}
	if g.SectorsPerTrack != 540 {
		t.Errorf("SectorsPerTrack = %d, want 540", g.SectorsPerTrack)
	}
	if g.TracksPerCylinder != 5 {
		t.Errorf("TracksPerCylinder = %d, want 5", g.TracksPerCylinder)
	}
	if g.Cylinders != 2500 {
		t.Errorf("Cylinders = %d, want 2500", g.Cylinders)
	}
	if g.TotalSectors != 6750000 {
		t.Errorf("TotalSectors = %d, want 6750000", g.TotalSectors)
	}
	if got := g.CapacityBytes(); got != 3456000000 {
		t.Errorf("capacity = %d B, want 3.456 GB", got)
	}
}

func TestGeometryRates(t *testing.T) {
	g, err := NewGeometry(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// §5.2 quotes 79.6 MB/s streaming for exactly this configuration.
	if bw := g.StreamBandwidth() / 1e6; math.Abs(bw-79.6) > 0.1 {
		t.Errorf("stream bandwidth = %.2f MB/s, want 79.6", bw)
	}
	if math.Abs(g.AccessSpeed-0.028) > 1e-9 {
		t.Errorf("access speed = %g m/s, want 0.028", g.AccessSpeed)
	}
	if math.Abs(g.RowTimeMs-90.0/700e3*1e3) > 1e-12 {
		t.Errorf("row time = %g ms", g.RowTimeMs)
	}
	// One settle constant at 739 Hz ≈ 0.215 ms — the paper's "0.2 ms"
	// settling example (§2.4.2).
	if g.SettleMs < 0.20 || g.SettleMs > 0.23 {
		t.Errorf("settle = %g ms, want ≈ 0.215", g.SettleMs)
	}
	if math.Abs(g.HalfRange-50e-6) > 1e-12 {
		t.Errorf("half range = %g m, want 50 µm", g.HalfRange)
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Tips = 0 },
		func(c *Config) { c.ActiveTips = 0 },
		func(c *Config) { c.SpareTips = -1 },
		func(c *Config) { c.SpareTips = 100 }, // not a multiple of ActiveTips
		func(c *Config) { c.Tips = 7000 },     // usable not multiple of active
		func(c *Config) { c.DataBytes = 7 },   // sector not multiple
		func(c *Config) { c.BitWidth = 0 },
		func(c *Config) { c.BitsY = 50 }, // shorter than one tip sector
		func(c *Config) { c.SpringFactor = 1.5 },
		func(c *Config) { c.SpringFactor = -0.1 },
		func(c *Config) { c.PerTipRate = 0 },
		func(c *Config) { c.ResonantHz = 0 },
		func(c *Config) { c.SettleConstants = -1 },
		func(c *Config) { c.ActiveTips = 1248 }, // not multiple of stripe width
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := NewGeometry(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := NewGeometry(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestSpareTipsReduceCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpareTips = 1280 // one whole track group reserved
	g, err := NewGeometry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.TracksPerCylinder != 4 {
		t.Errorf("TracksPerCylinder = %d, want 4", g.TracksPerCylinder)
	}
	if g.TotalSectors != 5400000 {
		t.Errorf("TotalSectors = %d, want 5400000", g.TotalSectors)
	}
}

func TestLBNDecomposeRoundTrip(t *testing.T) {
	g, _ := NewGeometry(DefaultConfig())
	f := func(raw uint32) bool {
		lbn := int64(raw) % g.TotalSectors
		c, tr, r, s := g.Decompose(lbn)
		return g.LBN(c, tr, r, s) == lbn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLBNPanicsOutOfRange(t *testing.T) {
	g, _ := NewGeometry(DefaultConfig())
	for _, f := range []func(){
		func() { g.LBN(-1, 0, 0, 0) },
		func() { g.LBN(0, 5, 0, 0) },
		func() { g.LBN(0, 0, 27, 0) },
		func() { g.LBN(0, 0, 0, 20) },
		func() { g.Decompose(-1) },
		func() { g.Decompose(g.TotalSectors) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLBNSequentialIsCylinderMajor(t *testing.T) {
	// §2.4.3: the lowest-level mapping is optimized for sequential
	// access. Consecutive LBNs advance slot, then row, then track, then
	// cylinder.
	g, _ := NewGeometry(DefaultConfig())
	c, tr, r, s := g.Decompose(0)
	if c != 0 || tr != 0 || r != 0 || s != 0 {
		t.Fatalf("LBN 0 at (%d,%d,%d,%d)", c, tr, r, s)
	}
	c, tr, r, s = g.Decompose(int64(g.SectorsPerRow))
	if r != 1 || c != 0 || tr != 0 || s != 0 {
		t.Fatalf("row not second-fastest: (%d,%d,%d,%d)", c, tr, r, s)
	}
	c, tr, _, _ = g.Decompose(int64(g.SectorsPerTrack))
	if tr != 1 || c != 0 {
		t.Fatalf("track not third-fastest")
	}
	c, _, _, _ = g.Decompose(int64(g.SectorsPerCylinder))
	if c != 1 {
		t.Fatalf("cylinder not slowest")
	}
}

// reqAt builds a request; the helper keeps test intent readable.
func reqAt(lbn int64, blocks int) *core.Request {
	return &core.Request{Op: core.Read, LBN: lbn, Blocks: blocks}
}

func TestTransferTimeAnchorsTable2(t *testing.T) {
	// Table 2 of the paper: an 8-sector MEMS transfer takes 0.13 ms and a
	// 334-sector transfer takes 2.19 ms — exactly ⌈n/20⌉ row passes.
	d := testDevice(t)
	g := d.Geometry()
	bd := d.Detail(reqAt(0, 8))
	if want := 1 * g.RowTimeMs; math.Abs(bd.Transfer-want) > 1e-9 {
		t.Errorf("8-sector transfer = %g ms, want %g", bd.Transfer, want)
	}
	bd = d.Detail(reqAt(0, 334))
	if want := 17 * g.RowTimeMs; math.Abs(bd.Transfer-want) > 1e-9 {
		t.Errorf("334-sector transfer = %g ms, want %g (2.19 ms)", bd.Transfer, want)
	}
	if bd.Transfer < 2.18 || bd.Transfer > 2.20 {
		t.Errorf("334-sector transfer = %g ms, paper says 2.19", bd.Transfer)
	}
}

func TestReadModifyWriteCostsOneTurnaround(t *testing.T) {
	// §6.2/Table 2: returning to the same sector costs only a turnaround
	// (~0.07 ms at the sled center), not a second full positioning.
	d := testDevice(t)
	g := d.Geometry()
	mid := g.LBN(g.Cylinders/2, 2, g.RowsPerTrack/2, 0)
	d.Access(reqAt(mid, 8), 0)
	bd := d.Detail(reqAt(mid, 8))
	if bd.SeekX != 0 {
		t.Errorf("re-access moved in X: %g ms", bd.SeekX)
	}
	if bd.Positioning() < 0.03 || bd.Positioning() > 0.12 {
		t.Errorf("re-access positioning = %g ms, want ≈ 0.07 (one turnaround)", bd.Positioning())
	}
}

func TestSequentialAccessHasNoReposition(t *testing.T) {
	// Reading on from where the sled stopped must cost pure transfer:
	// the sled is already at speed at the right boundary.
	d := testDevice(t)
	g := d.Geometry()
	start := g.LBN(g.Cylinders/2, 0, 0, 0)
	// Park the sled at the top of the track moving forward (as it would
	// be mid-stream) so the first row is read in the forward direction.
	d.SetState(g.Cylinders/2, 0, 1)
	if bd := d.Detail(reqAt(start, 20)); bd.Positioning() > 1e-9 {
		t.Fatalf("aligned first row repositioned for %g ms", bd.Positioning())
	}
	d.Access(reqAt(start, 20), 0) // exactly one row
	bd := d.Detail(reqAt(start+20, 20))
	if bd.Positioning() > 1e-9 {
		t.Errorf("sequential continuation repositioned for %g ms", bd.Positioning())
	}
}

func TestTrackSwitchCostsTurnaround(t *testing.T) {
	// Crossing a track boundary mid-request turns the sled around but
	// does not seek in X (§2.3).
	d := testDevice(t)
	g := d.Geometry()
	start := g.LBN(g.Cylinders/2, 0, g.RowsPerTrack-1, 0)
	bd := d.Detail(reqAt(start, g.SectorsPerRow*2)) // last row of track 0 + first row of track 1
	if bd.Segments != 2 {
		t.Fatalf("segments = %d, want 2", bd.Segments)
	}
	if bd.SeekX != 0 {
		t.Errorf("track switch moved in X: %g ms", bd.SeekX)
	}
	if bd.Transfer != 2*g.RowTimeMs {
		t.Errorf("transfer = %g, want 2 rows", bd.Transfer)
	}
}

func TestCylinderSwitchPaysSettle(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	// Request spanning the last row of one cylinder and the first of the
	// next.
	start := g.LBN(100, g.TracksPerCylinder-1, g.RowsPerTrack-1, 0)
	d.SetState(100, float64(g.BitsY)/2, 0)
	bd := d.Detail(reqAt(start, g.SectorsPerRow*2))
	if bd.Segments != 2 {
		t.Fatalf("segments = %d, want 2", bd.Segments)
	}
	// The second segment's positioning must include settle time.
	single := d.Detail(reqAt(start, g.SectorsPerRow))
	if bd.Positioning()-single.Positioning() < g.SettleMs*0.9 {
		t.Errorf("cylinder switch positioning %g barely exceeds %g; settle=%g",
			bd.Positioning(), single.Positioning(), g.SettleMs)
	}
}

func TestEstimateMatchesAccess(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		lbn := rng.Int63n(g.TotalSectors - 1024)
		n := 1 + rng.Intn(900)
		r := reqAt(lbn, n)
		est := d.EstimateAccess(r, 0)
		got := d.Access(r, 0)
		if est != got {
			t.Fatalf("estimate %g != access %g for %+v", est, got, r)
		}
	}
}

func TestEstimateDoesNotMutate(t *testing.T) {
	d := testDevice(t)
	c0, y0, v0 := d.State()
	d.EstimateAccess(reqAt(123456, 64), 0)
	c1, y1, v1 := d.State()
	if c0 != c1 || y0 != y1 || v0 != v1 {
		t.Fatal("EstimateAccess changed device state")
	}
}

func TestAccessDependsOnDistance(t *testing.T) {
	// §2.4.4: seek time grows with distance; a request one full stroke
	// away must cost more than a request in the same cylinder.
	d := testDevice(t)
	g := d.Geometry()
	d.Reset()
	near := d.EstimateAccess(reqAt(g.LBN(g.Cylinders/2, 0, 0, 0), 8), 0)
	far := d.EstimateAccess(reqAt(g.LBN(g.Cylinders-1, 0, 0, 0), 8), 0)
	if near >= far {
		t.Errorf("near=%g far=%g", near, far)
	}
}

func TestLargeTransferDistanceInsensitive(t *testing.T) {
	// §5.2/Fig. 10: a 256 KB request traveling 1000+ cylinders costs only
	// ~10–12% more than one in place, because transfer dominates.
	d := testDevice(t)
	g := d.Geometry()
	blocks := 256 * 1024 / g.SectorSize
	d.Reset()
	base := d.EstimateAccess(reqAt(g.LBN(g.Cylinders/2, 0, 0, 0), blocks), 0)
	farCyl := g.Cylinders/2 + 1000
	far := d.EstimateAccess(reqAt(g.LBN(farCyl, 0, 0, 0), blocks), 0)
	ratio := far / base
	if ratio > 1.25 {
		t.Errorf("1000-cylinder 256KB penalty = %.1f%%, paper says ≈ 10–12%%", (ratio-1)*100)
	}
	if ratio <= 1.0 {
		t.Errorf("far transfer should not be cheaper (ratio %g)", ratio)
	}
}

func TestAccessPanicsOnBadRequests(t *testing.T) {
	d := testDevice(t)
	for _, r := range []*core.Request{
		reqAt(-1, 8),
		reqAt(0, 0),
		reqAt(d.Capacity(), 1),
		reqAt(d.Capacity()-1, 2),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", r)
				}
			}()
			d.Access(r, 0)
		}()
	}
}

func TestSetStatePanicsOutOfRange(t *testing.T) {
	d := testDevice(t)
	for _, f := range []func(){
		func() { d.SetState(-1, 0, 0) },
		func() { d.SetState(0, -1, 0) },
		func() { d.SetState(0, float64(d.Geometry().BitsY)+1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestServiceTimeAlwaysPositive(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	f := func(raw uint32, nraw uint16) bool {
		lbn := int64(raw) % (g.TotalSectors - 2048)
		n := 1 + int(nraw)%1024
		return d.Access(reqAt(lbn, n), 0) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRandom4KAccessTimeBallpark(t *testing.T) {
	// §2.1: "the average random 4 KB access time is 500 µs" for the
	// paper's example device. Our Table 1 re-derivation lands in the same
	// sub-millisecond regime; assert the order of magnitude.
	d := testDevice(t)
	g := d.Geometry()
	rng := rand.New(rand.NewSource(42))
	sum := 0.0
	const n = 5000
	for i := 0; i < n; i++ {
		lbn := rng.Int63n(g.TotalSectors - 8)
		sum += d.Access(reqAt(lbn, 8), 0)
	}
	avg := sum / n
	if avg < 0.3 || avg > 1.2 {
		t.Errorf("average random 4 KB access = %.3f ms, want sub-millisecond (paper: ≈0.5)", avg)
	}
	t.Logf("average random 4 KB access time: %.3f ms", avg)
}

func TestResetRestoresState(t *testing.T) {
	d := testDevice(t)
	d.Access(reqAt(0, 8), 0)
	d.Reset()
	c, y, v := d.State()
	g := d.Geometry()
	if c != g.Cylinders/2 || y != float64(g.BitsY)/2 || v != 0 {
		t.Errorf("reset state = (%d,%g,%d)", c, y, v)
	}
}

func TestSeekXZeroForSameCylinder(t *testing.T) {
	d := testDevice(t)
	if d.SeekX(5, 5) != 0 {
		t.Error("same-cylinder SeekX should be 0")
	}
	if d.SeekX(0, 2499) <= d.SeekX(0, 100) {
		t.Error("longer X seeks should take longer")
	}
}

func TestEdgeSubregionSlowerThanCenter(t *testing.T) {
	// Fig. 9's headline: average service time differs by 10–20% between
	// the centermost and outermost subregions. Spot-check with seeks of
	// identical distance at center vs corner.
	d := testDevice(t)
	g := d.Geometry()
	centerCyl := g.Cylinders / 2
	hop := 200 // cylinders
	center := d.SeekX(centerCyl-hop/2, centerCyl+hop/2)
	edge := d.SeekX(g.Cylinders-hop, g.Cylinders-1)
	if edge <= center {
		t.Errorf("edge seek %g should exceed center seek %g", edge, center)
	}
}

func TestMustDevicePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Tips = -1
	MustDevice(cfg)
}

func TestTipsForSector(t *testing.T) {
	g, _ := NewGeometry(DefaultConfig())
	// Sector 0: track 0, slot 0 → tips 0..63.
	tips := g.TipsForSector(0)
	if len(tips) != 64 || tips[0] != 0 || tips[63] != 63 {
		t.Fatalf("sector 0 tips = %v…%v (%d)", tips[0], tips[len(tips)-1], len(tips))
	}
	// Next sector in the same row: the adjacent 64-tip group.
	tips = g.TipsForSector(1)
	if tips[0] != 64 {
		t.Errorf("sector 1 starts at tip %d, want 64", tips[0])
	}
	// A sector on track 2 uses the third active-tip group.
	lbn := g.LBN(5, 2, 3, 4)
	tips = g.TipsForSector(lbn)
	want := 2*g.ActiveTips + 4*g.StripeTips
	if tips[0] != want {
		t.Errorf("track-2 sector starts at tip %d, want %d", tips[0], want)
	}
	// All tips within the device, and same row position ⇒ same tips
	// regardless of cylinder and row (only track and slot matter).
	a := g.TipsForSector(g.LBN(0, 1, 0, 7))
	b := g.TipsForSector(g.LBN(999, 1, 20, 7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tips should depend only on track and slot")
		}
		if a[i] < 0 || a[i] >= g.Tips {
			t.Fatalf("tip %d out of range", a[i])
		}
	}
}

func TestTipsForSectorCoverRowDisjointly(t *testing.T) {
	// The 20 sectors of one row are served by disjoint tip groups that
	// together cover all active tips.
	g, _ := NewGeometry(DefaultConfig())
	seen := map[int]bool{}
	for slot := 0; slot < g.SectorsPerRow; slot++ {
		for _, tip := range g.TipsForSector(g.LBN(0, 0, 0, slot)) {
			if seen[tip] {
				t.Fatalf("tip %d serves two sectors of one row", tip)
			}
			seen[tip] = true
		}
	}
	if len(seen) != g.ActiveTips {
		t.Errorf("row uses %d tips, want all %d active", len(seen), g.ActiveTips)
	}
}
