// Package runner executes declarative experiment jobs on a worker pool.
//
// The paper's evaluation is ~40 independent simulation runs per artifact
// (device × scheduler × workload × scale factor), but device models and
// schedulers are stateful and not safe for concurrent use
// (core.Scheduler's contract), so nothing imperative could be
// parallelized. A Job instead names factories for every piece of mutable
// simulation state — device, scheduler, workload source — and the pool
// builds fresh instances per job, so any worker can execute any job
// without sharing state with its siblings.
//
// Determinism: each job's randomness derives from its own Seed, results
// land in per-job slots, and callers assemble output by reading those
// slots in declaration order after Run returns. A run with 8 workers is
// therefore byte-identical to a run with 1, regardless of completion
// order.
package runner

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"memsim/internal/core"
	"memsim/internal/sim"
	"memsim/internal/stats"
	"memsim/internal/workload"
)

// Job declares one isolated unit of simulation work.
//
// The declarative fields (Device, Scheduler, Source, Options) describe
// the standard single-device regimes: a non-nil Scheduler factory selects
// the open-arrival loop (sim.Run), a nil one the closed back-to-back loop
// (sim.RunClosed). Custom replaces the declarative run entirely for
// bespoke measurement loops (Monte-Carlo trials, multi-device volumes,
// direct Access timing); a Custom body must construct every piece of
// mutable state itself.
type Job struct {
	// Label identifies the job in progress reports and error messages
	// (e.g. "fig6 SPTF rate=1500").
	Label string
	// Seed is the job's random seed. Factories and Custom bodies should
	// draw all randomness from it so the job's outcome is a pure function
	// of its declaration.
	Seed int64

	// Device builds the fresh device instance for this job.
	Device core.DeviceFactory
	// Scheduler, when non-nil, builds the job's scheduler and selects the
	// open-arrival regime; nil selects the closed-loop regime.
	Scheduler core.SchedulerFactory
	// Source builds the job's workload stream, sized to the job's device.
	Source workload.Factory
	// Options passes through to the simulation entry point.
	Options sim.Options

	// Custom, when non-nil, replaces the declarative run; its return
	// value becomes the job's Value. It may report simulated time by
	// setting SimMs. A Custom body that returns an error value fails the
	// job with it (the body's only non-panic error channel) — the
	// convention cancellable bodies use to surface Ctx's cancellation
	// cause. Bodies observe the batch lifecycle through Ctx, SimContext
	// and SimOptions.
	Custom func(j *Job) any

	// SimMs is the simulated time the job covered in milliseconds. The
	// declarative path fills it from the run's Elapsed; Custom bodies may
	// set it themselves.
	SimMs float64

	res  sim.Result
	val  any
	err  error
	done bool

	// ctx, check and sketch are the batch lifecycle policy the pool
	// installs before executing the job: the job's cancellation context
	// (batch signal plus per-job deadline), whether invariant checking
	// was requested, and whether bounded quantile sketches were.
	ctx    context.Context
	check  bool
	sketch bool
}

// Ctx returns the job's lifecycle context: the batch Context.Ctx bounded
// by the per-job deadline, installed by the pool before the job runs.
// Custom bodies poll it (or thread it via SimContext) to stop early;
// before the job runs it is context.Background.
func (j *Job) Ctx() context.Context {
	if j.ctx == nil {
		return context.Background()
	}
	return j.ctx
}

// SimContext returns a sim.Context wired to the job's lifecycle context,
// for Custom bodies to pass as the first argument of the sim entry
// points so their inner runs stop at batch cancellation or the job's
// deadline.
func (j *Job) SimContext() *sim.Context { return &sim.Context{Ctx: j.Ctx()} }

// SimOptions folds the batch's execution policy into opts —
// Context.Check and Context.Sketch — so Custom bodies honor `-check`
// and `-sketch` the same way declarative jobs do.
func (j *Job) SimOptions(opts sim.Options) sim.Options {
	if j.check {
		opts.Check = true
	}
	if j.sketch {
		opts.Sketch = true
	}
	return opts
}

// Err returns the job's execution error (nil if it succeeded or has not
// run yet). After Context.Run returns, a non-nil Err explains why the
// job's Result/Value must not be read.
func (j *Job) Err() error { return j.err }

// Result returns the declarative run's result. It panics if the job has
// not been executed yet — assembling tables before Run returns is a
// programming error the panic makes loud.
func (j *Job) Result() sim.Result {
	if !j.done {
		panic(fmt.Sprintf("runner: job %q read before it ran", j.Label))
	}
	return j.res
}

// Value returns the Custom body's return value, with the same
// must-have-run contract as Result.
func (j *Job) Value() any {
	if !j.done {
		panic(fmt.Sprintf("runner: job %q read before it ran", j.Label))
	}
	return j.val
}

// run executes the job, converting panics into errors so one bad job
// cannot take down the whole pool. A non-nil probe is attached to the
// declarative regimes (labelled with the job), composed after any probe
// the job declared itself; Custom bodies drive their own loops and are
// not probed. jctx (the batch context bounded by the per-job deadline)
// and check are installed on the job first, so Custom bodies see them
// through Ctx/SimContext/SimOptions; declarative runs thread them
// directly, and a run stopped by cancellation fails the job with the
// context's error instead of publishing a partial Result.
func (j *Job) run(probe sim.Probe, jctx context.Context, check, sketch bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job %q: panic: %v", j.Label, r)
		}
	}()
	j.ctx, j.check, j.sketch = jctx, check, sketch
	opts := j.Options
	if check {
		opts.Check = true
	}
	if sketch {
		opts.Sketch = true
	}
	if probe != nil {
		labelled := sim.WithRun(probe, j.Label)
		if opts.Probe == nil {
			opts.Probe = labelled
		} else {
			opts.Probe = sim.MultiProbe{opts.Probe, labelled}
		}
	}
	sctx := &sim.Context{Ctx: jctx}
	switch {
	case j.Custom != nil:
		j.val = j.Custom(j)
		if cerr, ok := j.val.(error); ok && cerr != nil {
			return fmt.Errorf("job %q: %w", j.Label, cerr)
		}
	case j.Device == nil || j.Source == nil:
		return fmt.Errorf("job %q: no Custom body and no device/source factories", j.Label)
	case j.Scheduler != nil:
		d := j.Device()
		j.res = sim.Run(sctx, d, j.Scheduler(), j.Source(d), opts)
		j.SimMs = j.res.Elapsed
	default:
		d := j.Device()
		j.res = sim.RunClosed(sctx, d, j.Source(d), opts)
		j.SimMs = j.res.Elapsed
	}
	if j.res.Cancelled {
		cause := jctx.Err()
		if cause == nil {
			cause = context.Canceled
		}
		return fmt.Errorf("job %q: %w", j.Label, cause)
	}
	j.done = true
	return nil
}

// Event describes one finished job to a progress callback.
type Event struct {
	// Label of the job that just finished.
	Label string
	// Done and Total count finished and scheduled jobs in the batch.
	Done, Total int
	// WallMs is the host time the job took; SimMs the simulated time it
	// covered.
	WallMs, SimMs float64
	// Err is non-nil when the job failed (panicked or was misdeclared).
	Err error
}

// Summary aggregates a batch's metrics.
type Summary struct {
	// Jobs is the number of jobs executed.
	Jobs int
	// Wall and Sim accumulate per-job wall-clock and simulated
	// milliseconds.
	Wall, Sim stats.Welford
	// ElapsedMs is the batch's host wall-clock from first dispatch to
	// last completion.
	ElapsedMs float64
	// Failed counts jobs that finished with a non-nil Err, for whatever
	// reason.
	Failed int
	// Cancelled counts the subset of failed jobs stopped by the batch
	// context or a per-job deadline (Context.Ctx, Context.Timeout) —
	// the done/cancelled split an interrupted CLI reports.
	Cancelled int
}

// Context carries execution policy and observability through a batch of
// jobs: how wide the worker pool is and who hears about progress.
type Context struct {
	// Workers caps concurrent job execution; zero or negative means
	// GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives an Event after every job
	// completes. Events arrive serialized (never concurrently) but in
	// completion order, which under parallelism is not declaration order.
	Progress func(Event)
	// Probe, when non-nil, observes every declarative job's request
	// lifecycle (sim.Options.Probe), with each event's Run field set to
	// the job label. The probe is shared across workers, so it must be
	// safe for concurrent use under parallelism (sim.JSONLProbe is);
	// with Workers: 1 events arrive in declaration order. It composes
	// after any probe a job declared itself; Custom jobs are left
	// untouched.
	Probe sim.Probe
	// Ctx, when non-nil, cancels the whole batch: in-flight jobs stop at
	// their engine's next cancellation poll and fail with the context's
	// error, jobs not yet started are skipped with the same error, and
	// Run returns once the pool drains. nil means the batch cannot be
	// cancelled.
	Ctx context.Context
	// Timeout, when positive, bounds each job's wall-clock execution
	// individually. A job that exceeds it fails with
	// context.DeadlineExceeded through Job.Err without affecting its
	// siblings — the pool keeps executing the rest of the batch.
	Timeout time.Duration
	// Check enables simulator invariant checking (sim.Options.Check) on
	// every declarative job; Custom bodies opt in by building their
	// options through Job.SimOptions.
	Check bool
	// Sketch switches every declarative job's percentile aggregates to
	// the bounded quantile sketch (sim.Options.Sketch), keeping stats
	// memory O(1) at any request count; Custom bodies opt in by building
	// their options through Job.SimOptions.
	Sketch bool
}

// Run executes every job and returns aggregate metrics. Jobs run on a
// pool of Context.Workers goroutines; results land in the jobs' own
// slots. If any jobs fail, Run still executes the remaining jobs (they
// are independent) and returns every failure joined in declaration
// order — deterministic regardless of completion order. Per-job errors
// also stay readable through Job.Err.
func (c *Context) Run(jobs []*Job) (Summary, error) {
	workers := runtime.GOMAXPROCS(0)
	if c != nil && c.Workers > 0 {
		workers = c.Workers
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return Summary{}, nil
	}

	start := time.Now()
	var (
		wall, simt stats.Meter
		mu         sync.Mutex // guards done count and Progress calls
		done       int
		wg         sync.WaitGroup
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				jobStart := time.Now()
				var (
					probe   sim.Probe
					base    = context.Background()
					timeout time.Duration
					check   bool
					sketch  bool
				)
				if c != nil {
					probe, timeout, check, sketch = c.Probe, c.Timeout, c.Check, c.Sketch
					if c.Ctx != nil {
						base = c.Ctx
					}
				}
				var err error
				if base.Err() != nil {
					// The batch is cancelled: skip jobs that have not
					// started rather than burning their setup cost.
					j.ctx, j.check, j.sketch = base, check, sketch
					err = fmt.Errorf("job %q: %w", j.Label, base.Err())
				} else {
					jctx, cancel := base, func() {}
					if timeout > 0 {
						jctx, cancel = context.WithTimeout(base, timeout)
					}
					err = j.run(probe, jctx, check, sketch)
					cancel()
				}
				j.err = err
				wallMs := float64(time.Since(jobStart)) / float64(time.Millisecond)
				wall.Add(wallMs)
				simt.Add(j.SimMs)
				mu.Lock()
				done++
				if c != nil && c.Progress != nil {
					c.Progress(Event{
						Label: j.Label, Done: done, Total: len(jobs),
						WallMs: wallMs, SimMs: j.SimMs, Err: err,
					})
				}
				mu.Unlock()
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Aggregate failures in declaration order, not completion order, so
	// the joined error is deterministic under parallelism.
	var errs []error
	failed, cancelled := 0, 0
	for _, j := range jobs {
		if j.err != nil {
			errs = append(errs, j.err)
			failed++
			if errors.Is(j.err, context.Canceled) || errors.Is(j.err, context.DeadlineExceeded) {
				cancelled++
			}
		}
	}
	sum := Summary{
		Jobs:      len(jobs),
		Wall:      wall.Snapshot(),
		Sim:       simt.Snapshot(),
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
		Failed:    failed,
		Cancelled: cancelled,
	}
	return sum, errors.Join(errs...)
}

// Sequential returns a single-worker context: the reference execution
// order that parallel runs must reproduce byte-for-byte.
func Sequential() *Context { return &Context{Workers: 1} }

// DeriveSeed maps a base seed and a job label to a stable per-job seed,
// so sweeps that want decorrelated randomness per job can derive it
// deterministically from the declaration alone.
func DeriveSeed(base int64, label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return base ^ int64(h.Sum64())
}
