// memstrace generates and inspects storage traces in the repository's
// text format (one "<time-ms> <r|w> <lbn> <blocks>" record per line).
//
// Usage:
//
//	memstrace -gen cello -count 50000 -o cello.txt   # generate
//	memstrace -gen tpcc -scale 4 -o tpcc.txt
//	memstrace -stats cello.txt                       # summarize
package main

import (
	"flag"
	"fmt"
	"os"

	"memsim/internal/mems"
	"memsim/internal/trace"
)

func main() {
	var (
		gen      = flag.String("gen", "", "generate a synthetic trace: cello | tpcc")
		count    = flag.Int("count", 50000, "records to generate")
		capacity = flag.Int64("capacity", 0, "device capacity in sectors (default: the paper's MEMS device)")
		scale    = flag.Float64("scale", 1, "scale factor applied to arrival times")
		out      = flag.String("o", "", "output file (default stdout)")
		statsF   = flag.String("stats", "", "summarize an existing trace file")
	)
	flag.Parse()

	if *capacity == 0 {
		g, err := mems.NewGeometry(mems.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		*capacity = g.TotalSectors
	}

	switch {
	case *statsF != "":
		f, err := os.Open(*statsF)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.Read(f, *statsF)
		if err != nil {
			fatal(err)
		}
		printStats(tr)
	case *gen != "":
		var tr *trace.Trace
		switch *gen {
		case "cello":
			tr = trace.GenerateCello(trace.DefaultCello(*capacity, *count))
		case "tpcc":
			tr = trace.GenerateTPCC(trace.DefaultTPCC(*capacity, *count))
		default:
			fatal(fmt.Errorf("unknown generator %q (want cello or tpcc)", *gen))
		}
		if *scale != 1 {
			tr = tr.Scale(*scale)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := trace.Write(w, tr); err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", tr.Len(), *out)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printStats(tr *trace.Trace) {
	s := tr.Summarize()
	fmt.Printf("trace            %s\n", tr.Name)
	fmt.Printf("records          %d\n", s.Records)
	fmt.Printf("duration         %.1f s\n", s.DurationMs/1000)
	fmt.Printf("mean rate        %.1f req/s\n", s.MeanRate)
	fmt.Printf("read fraction    %.2f\n", float64(s.Reads)/float64(s.Records))
	fmt.Printf("mean size        %.1f sectors (%.1f KB)\n", s.MeanBlocks, s.MeanBlocks*512/1024)
	fmt.Printf("sequential frac  %.3f\n", s.SeqFraction)
	fmt.Printf("LBN span         %d sectors (%.2f GB)\n", s.UniqueRegion, float64(s.UniqueRegion)*512/1e9)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memstrace:", err)
	os.Exit(1)
}
