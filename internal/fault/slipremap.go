package fault

import (
	"fmt"
	"sort"

	"memsim/internal/core"
)

// SlipRemap wraps a device with a disk-style defective-sector remap
// table: each remapped sector is served from a spare location elsewhere
// on the device, breaking the physical sequentiality of logically
// sequential access — the penalty §6.1.1 says MEMS-based storage avoids
// by remapping to the same tip sector on a spare tip.
//
// A request whose extent crosses remapped sectors is split: the
// contiguous healthy runs and each remapped sector are serviced as
// separate sequential accesses, exactly as a disk's firmware must.
type SlipRemap struct {
	inner core.Device
	table map[int64]int64
}

var _ core.Device = (*SlipRemap)(nil)

// NewSlipRemap wraps inner with an empty remap table.
func NewSlipRemap(inner core.Device) *SlipRemap {
	return &SlipRemap{inner: inner, table: make(map[int64]int64)}
}

// Remap redirects logical sector from to physical sector to. Both must
// be on the device; remapping a sector twice overwrites the entry.
func (s *SlipRemap) Remap(from, to int64) {
	if from < 0 || from >= s.inner.Capacity() || to < 0 || to >= s.inner.Capacity() {
		panic(fmt.Sprintf("fault: remap %d→%d outside device capacity %d", from, to, s.inner.Capacity()))
	}
	s.table[from] = to
}

// Remapped reports the number of remapped sectors.
func (s *SlipRemap) Remapped() int { return len(s.table) }

// Name implements core.Device.
func (s *SlipRemap) Name() string { return s.inner.Name() + "+slip" }

// Capacity implements core.Device.
func (s *SlipRemap) Capacity() int64 { return s.inner.Capacity() }

// SectorSize implements core.Device.
func (s *SlipRemap) SectorSize() int { return s.inner.SectorSize() }

// Reset implements core.Device; the remap table persists (defects do not
// heal on reset).
func (s *SlipRemap) Reset() { s.inner.Reset() }

// pieces splits [lbn, lbn+blocks) at remapped sectors. Each piece is a
// physically contiguous access.
func (s *SlipRemap) pieces(lbn int64, blocks int) []core.Request {
	// Collect remapped sectors inside the extent.
	var hit []int64
	for from := range s.table {
		if from >= lbn && from < lbn+int64(blocks) {
			hit = append(hit, from)
		}
	}
	if len(hit) == 0 {
		return []core.Request{{LBN: lbn, Blocks: blocks}}
	}
	sort.Slice(hit, func(i, j int) bool { return hit[i] < hit[j] })
	var out []core.Request
	cur := lbn
	for _, h := range hit {
		if h > cur {
			out = append(out, core.Request{LBN: cur, Blocks: int(h - cur)})
		}
		out = append(out, core.Request{LBN: s.table[h], Blocks: 1})
		cur = h + 1
	}
	if end := lbn + int64(blocks); cur < end {
		out = append(out, core.Request{LBN: cur, Blocks: int(end - cur)})
	}
	return out
}

// Access implements core.Device: split pieces are serviced sequentially,
// each paying its own positioning.
func (s *SlipRemap) Access(req *core.Request, now float64) float64 {
	cur := now
	for _, p := range s.pieces(req.LBN, req.Blocks) {
		p.Op = req.Op
		cur += s.inner.Access(&p, cur)
	}
	return cur - now
}

// EstimateAccess implements core.Device. Multi-piece estimates would
// need to advance device state piece-by-piece; the single-piece case is
// exact and the multi-piece case returns the first piece's estimate as a
// lower bound (the LBN-based schedulers never call this).
func (s *SlipRemap) EstimateAccess(req *core.Request, now float64) float64 {
	ps := s.pieces(req.LBN, req.Blocks)
	if len(ps) == 1 {
		ps[0].Op = req.Op
		return s.inner.EstimateAccess(&ps[0], now)
	}
	ps[0].Op = req.Op
	return s.inner.EstimateAccess(&ps[0], now)
}
