// Array demo (§6.2): a four-sled RAID-5 array next to a four-disk one.
// The MEMS devices' near-zero read-modify-write repositioning (Table 2)
// erases the RAID-5 small-write penalty that spawned a decade of disk-
// array optimizations — and when the sleds share one Ultra160 bus, the
// interconnect, not the media, limits sequential bandwidth.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"memsim"
)

func main() {
	memsArr := buildArray(func() memsim.Device {
		d, err := memsim.NewMEMSDevice(memsim.DefaultMEMSConfig())
		if err != nil {
			log.Fatal(err)
		}
		return d
	})
	diskArr := buildArray(func() memsim.Device {
		d, err := memsim.NewDiskDevice(memsim.Atlas10KConfig())
		if err != nil {
			log.Fatal(err)
		}
		return d
	})

	fmt.Println("RAID-5 ×4, 4 KB random writes (read-modify-write):")
	fmt.Printf("  MEMS array  %.3f ms\n", smallWrites(memsArr))
	fmt.Printf("  disk array  %.3f ms\n", smallWrites(diskArr))

	// Degraded mode: lose a member, reads reconstruct from survivors.
	memsArr.FailMember(2)
	fmt.Printf("\ndegraded MEMS array, 4 KB random reads: %.3f ms\n", smallReads(memsArr))
	memsArr.Repair()

	// Sequential bandwidth over a shared bus.
	b := memsim.NewBus(memsim.Ultra160BusConfig())
	onBus := make([]memsim.Device, 4)
	for i := range onBus {
		d, err := memsim.NewMEMSDevice(memsim.DefaultMEMSConfig())
		if err != nil {
			log.Fatal(err)
		}
		onBus[i] = b.Attach(d)
	}
	done := make([]float64, 4)
	var bytes float64
	for round := 0; round < 100; round++ {
		for i, d := range onBus {
			r := &memsim.Request{Op: memsim.Read, LBN: int64(round * 512), Blocks: 512}
			done[i] += d.Access(r, done[i])
			bytes += 512 * 512
		}
	}
	elapsed := 0.0
	for _, d := range done {
		if d > elapsed {
			elapsed = d
		}
	}
	fmt.Printf("\n4 sleds streaming over one Ultra160 bus: %.0f MB/s aggregate\n",
		bytes/(elapsed/1000)/1e6)
	fmt.Println("(each sled alone streams 79.6 MB/s — the bus is the bottleneck)")
}

func buildArray(mk func() memsim.Device) *memsim.DeviceArray {
	members := make([]memsim.Device, 4)
	for i := range members {
		members[i] = mk()
	}
	a, err := memsim.NewDeviceArray(memsim.ArrayConfig{Level: memsim.RAID5, StripeUnit: 8}, members)
	if err != nil {
		log.Fatal(err)
	}
	return a
}

func smallWrites(a *memsim.DeviceArray) float64 {
	rng := rand.New(rand.NewSource(1))
	now, sum := 0.0, 0.0
	const n = 300
	for i := 0; i < n; i++ {
		lbn := rng.Int63n(a.Capacity()-8) / 8 * 8
		svc := a.Access(&memsim.Request{Op: memsim.Write, LBN: lbn, Blocks: 8}, now)
		now += svc
		sum += svc
	}
	return sum / n
}

func smallReads(a *memsim.DeviceArray) float64 {
	rng := rand.New(rand.NewSource(2))
	now, sum := 0.0, 0.0
	const n = 300
	for i := 0; i < n; i++ {
		lbn := rng.Int63n(a.Capacity()-8) / 8 * 8
		svc := a.Access(&memsim.Request{Op: memsim.Read, LBN: lbn, Blocks: 8}, now)
		now += svc
		sum += svc
	}
	return sum / n
}
