package array

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/mems"
)

// fakeDev has fixed per-op costs and records accesses.
type fakeDev struct {
	readMs, writeMs float64
	log             []core.Request
}

func (f *fakeDev) Name() string    { return "fake" }
func (f *fakeDev) Capacity() int64 { return 1 << 20 }
func (f *fakeDev) SectorSize() int { return 512 }
func (f *fakeDev) Reset()          {}
func (f *fakeDev) Access(r *core.Request, _ float64) float64 {
	f.log = append(f.log, *r)
	if r.Op == core.Write {
		return f.writeMs
	}
	return f.readMs
}
func (f *fakeDev) EstimateAccess(r *core.Request, _ float64) float64 {
	if r.Op == core.Write {
		return f.writeMs
	}
	return f.readMs
}

func fakes(n int) ([]core.Device, []*fakeDev) {
	devs := make([]core.Device, n)
	raw := make([]*fakeDev, n)
	for i := range devs {
		f := &fakeDev{readMs: 1, writeMs: 2}
		devs[i] = f
		raw[i] = f
	}
	return devs, raw
}

func TestNewValidation(t *testing.T) {
	devs, _ := fakes(3)
	cases := []struct {
		cfg  Config
		mem  []core.Device
		want bool
	}{
		{Config{Level: RAID0, StripeUnit: 8}, devs, true},
		{Config{Level: RAID5, StripeUnit: 8}, devs, true},
		{Config{Level: RAID1}, devs[:2], true},
		{Config{Level: RAID0, StripeUnit: 8}, nil, false},
		{Config{Level: RAID0, StripeUnit: 0}, devs, false},
		{Config{Level: Level(9), StripeUnit: 8}, devs, false},
		{Config{Level: RAID5, StripeUnit: 8}, devs[:1], false},
		{Config{Level: RAID1}, devs[:1], false},
	}
	for i, c := range cases {
		_, err := New(c.cfg, c.mem)
		if (err == nil) != c.want {
			t.Errorf("case %d: err=%v want ok=%v", i, err, c.want)
		}
	}
	// Mismatched geometry.
	d := disk.MustDevice(disk.Atlas10K())
	m := mems.MustDevice(mems.DefaultConfig())
	if _, err := New(Config{Level: RAID0, StripeUnit: 8}, []core.Device{d, m}); err == nil {
		t.Error("expected geometry mismatch error")
	}
}

func TestCapacities(t *testing.T) {
	devs, _ := fakes(4)
	per := devs[0].Capacity()
	for _, c := range []struct {
		level Level
		want  int64
	}{
		{RAID0, 4 * per},
		{RAID1, per},
		{RAID5, 3 * per},
	} {
		a, err := New(Config{Level: c.level, StripeUnit: 8}, devs)
		if err != nil {
			t.Fatal(err)
		}
		if a.Capacity() != c.want {
			t.Errorf("%s capacity = %d, want %d", c.level, a.Capacity(), c.want)
		}
		if a.SectorSize() != 512 || a.Members() != 4 {
			t.Error("accessors wrong")
		}
	}
}

func TestLevelString(t *testing.T) {
	if RAID0.String() != "RAID-0" || RAID1.String() != "RAID-1" || RAID5.String() != "RAID-5" {
		t.Error("level strings")
	}
	if Level(7).String() != "Level(7)" {
		t.Error("unknown level string")
	}
}

func TestRAID0SplitCoversEverything(t *testing.T) {
	devs, _ := fakes(4)
	a, _ := New(Config{Level: RAID0, StripeUnit: 8}, devs)
	f := func(rawLBN uint32, rawN uint8) bool {
		lbn := int64(rawLBN) % (a.Capacity() - 300)
		n := int(rawN)%256 + 1
		chunks := a.split(lbn, n, true)
		total := 0
		for _, c := range chunks {
			if c.blocks <= 0 || c.lbn < 0 || c.lbn+int64(c.blocks) > devs[0].Capacity() {
				return false
			}
			total += c.blocks
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRAID5MapBlockInverse(t *testing.T) {
	devs, _ := fakes(5)
	a, _ := New(Config{Level: RAID5, StripeUnit: 8}, devs)
	f := func(raw uint32) bool {
		lbn := int64(raw) % a.Capacity()
		dev, devLBN, parity := a.mapBlock(lbn)
		if dev == parity {
			return false // data never lands on its row's parity member
		}
		c := chunk{dev: dev, lbn: devLBN}
		// logicalOf must invert mapBlock at strip granularity.
		return a.logicalOf(c) == lbn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRAID5ParityRotates(t *testing.T) {
	devs, _ := fakes(4)
	a, _ := New(Config{Level: RAID5, StripeUnit: 8}, devs)
	seen := map[int]bool{}
	for row := 0; row < 4; row++ {
		// First logical block of each row: row * (n-1) strips in.
		lbn := int64(row) * 3 * 8
		_, _, p := a.mapBlock(lbn)
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Errorf("parity used %d members over 4 rows, want all 4", len(seen))
	}
}

func TestRAID0ReadParallelism(t *testing.T) {
	devs, raw := fakes(4)
	a, _ := New(Config{Level: RAID0, StripeUnit: 8}, devs)
	// 32 sectors spanning all four members: time = max = one member's 1 ms.
	svc := a.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 32}, 0)
	if svc != 1 {
		t.Errorf("striped read = %g ms, want 1 (parallel)", svc)
	}
	touched := 0
	for _, f := range raw {
		if len(f.log) > 0 {
			touched++
		}
	}
	if touched != 4 {
		t.Errorf("touched %d members, want 4", touched)
	}
}

func TestRAID1ReadOneWriteAll(t *testing.T) {
	devs, raw := fakes(2)
	a, _ := New(Config{Level: RAID1}, devs)
	a.Access(&core.Request{Op: core.Read, LBN: 5, Blocks: 2}, 0)
	if len(raw[0].log) != 1 || len(raw[1].log) != 0 {
		t.Errorf("read fanout: %d/%d, want 1/0", len(raw[0].log), len(raw[1].log))
	}
	svc := a.Access(&core.Request{Op: core.Write, LBN: 5, Blocks: 2}, 0)
	if len(raw[0].log) != 2 || len(raw[1].log) != 1 {
		t.Errorf("write fanout: %d/%d, want 2/1", len(raw[0].log), len(raw[1].log))
	}
	if svc != 2 {
		t.Errorf("mirrored write = %g ms, want 2 (parallel)", svc)
	}
}

func TestRAID1DegradedReadUsesSurvivor(t *testing.T) {
	devs, raw := fakes(2)
	a, _ := New(Config{Level: RAID1}, devs)
	a.FailMember(0)
	if !a.Degraded() {
		t.Fatal("not degraded")
	}
	a.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 1}, 0)
	if len(raw[1].log) != 1 || len(raw[0].log) != 0 {
		t.Error("degraded read hit the failed mirror")
	}
	a.Repair()
	if a.Degraded() {
		t.Error("Repair did not clear")
	}
}

func TestRAID5SmallWriteIsTwoPhases(t *testing.T) {
	devs, raw := fakes(4)
	a, _ := New(Config{Level: RAID5, StripeUnit: 8}, devs)
	// One-strip write: read old data + old parity (1 ms, parallel), then
	// write both (2 ms, parallel): 3 ms total.
	svc := a.Access(&core.Request{Op: core.Write, LBN: 0, Blocks: 8}, 0)
	if svc != 3 {
		t.Errorf("RAID-5 small write = %g ms, want 3 (1 read + 2 write)", svc)
	}
	// Exactly two members involved: the data member and the parity
	// member, each seeing one read then one write.
	involved := 0
	for _, f := range raw {
		switch len(f.log) {
		case 0:
		case 2:
			involved++
			if f.log[0].Op != core.Read || f.log[1].Op != core.Write {
				t.Errorf("member ops = %v", f.log)
			}
		default:
			t.Errorf("member saw %d ops", len(f.log))
		}
	}
	if involved != 2 {
		t.Errorf("involved members = %d, want 2", involved)
	}
}

func TestRAID5DegradedWriteSkipsFailed(t *testing.T) {
	devs, _ := fakes(4)
	a, _ := New(Config{Level: RAID5, StripeUnit: 8}, devs)
	dev, _, _ := a.mapBlock(0)
	a.FailMember(dev)
	// Must not panic; the surviving parity absorbs the write.
	svc := a.Access(&core.Request{Op: core.Write, LBN: 0, Blocks: 8}, 0)
	if svc <= 0 {
		t.Errorf("degraded write = %g", svc)
	}
}

func TestRAID5DegradedReadReconstructs(t *testing.T) {
	devs, raw := fakes(4)
	a, _ := New(Config{Level: RAID5, StripeUnit: 8}, devs)
	dev, _, _ := a.mapBlock(0)
	a.FailMember(dev)
	a.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 8}, 0)
	// Reconstruction reads the three survivors.
	reads := 0
	for i, f := range raw {
		if i == dev {
			if len(f.log) != 0 {
				t.Error("read hit the failed member")
			}
			continue
		}
		reads += len(f.log)
	}
	if reads != 3 {
		t.Errorf("reconstruction reads = %d, want 3", reads)
	}
}

func TestRAID0FailedMemberPanics(t *testing.T) {
	devs, _ := fakes(3)
	a, _ := New(Config{Level: RAID0, StripeUnit: 8}, devs)
	a.FailMember(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic: RAID-0 has no redundancy")
		}
	}()
	a.Access(&core.Request{Op: core.Read, LBN: 0, Blocks: 8}, 0)
}

func TestFailMemberPanics(t *testing.T) {
	devs, _ := fakes(3)
	a, _ := New(Config{Level: RAID5, StripeUnit: 8}, devs)
	for _, f := range []func(){
		func() { a.FailMember(-1) },
		func() { a.FailMember(3) },
		func() { a.FailMember(0); a.FailMember(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
		a.Repair()
	}
}

func TestAccessPanicsOutOfRange(t *testing.T) {
	devs, _ := fakes(3)
	a, _ := New(Config{Level: RAID0, StripeUnit: 8}, devs)
	for _, r := range []*core.Request{
		{Op: core.Read, LBN: -1, Blocks: 1},
		{Op: core.Read, LBN: 0, Blocks: 0},
		{Op: core.Read, LBN: a.Capacity(), Blocks: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", r)
				}
			}()
			a.Access(r, 0)
		}()
	}
}

// smallMEMS builds a reduced-capacity MEMS device so rebuild scans stay
// fast in tests.
func smallMEMS(t testing.TB) core.Device {
	t.Helper()
	cfg := mems.DefaultConfig()
	cfg.BitsX = 250 // 1/10th the cylinders
	d, err := mems.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRAID5SmallWriteMEMSvsDisk(t *testing.T) {
	// §6.2's quantitative claim, at array level: the RAID-5 small-write
	// penalty (read-modify-write) costs the disk array nearly a full
	// rotation; the MEMS array pays only a turnaround. Compare the
	// *re-access* portion by issuing a write to data just read.
	mk := func(dev func() core.Device) float64 {
		members := make([]core.Device, 4)
		for i := range members {
			members[i] = dev()
		}
		a, err := New(Config{Level: RAID5, StripeUnit: 8}, members)
		if err != nil {
			t.Fatal(err)
		}
		// Average over several strips.
		rng := rand.New(rand.NewSource(4))
		sum := 0.0
		const n = 50
		for i := 0; i < n; i++ {
			lbn := rng.Int63n(a.Capacity()-8) / 8 * 8
			sum += a.Access(&core.Request{Op: core.Write, LBN: lbn, Blocks: 8}, 0)
		}
		return sum / n
	}
	memsT := mk(func() core.Device { return mems.MustDevice(mems.DefaultConfig()) })
	diskT := mk(func() core.Device { return disk.MustDevice(disk.Atlas10K()) })
	if memsT*4 > diskT {
		t.Errorf("RAID-5 small write: MEMS %g ms vs disk %g ms — want ≥4× gap", memsT, diskT)
	}
	t.Logf("RAID-5 4KB write: MEMS array %.3f ms, disk array %.3f ms", memsT, diskT)
}

func TestRebuildTime(t *testing.T) {
	members := make([]core.Device, 3)
	for i := range members {
		members[i] = smallMEMS(t)
	}
	a, err := New(Config{Level: RAID5, StripeUnit: 8}, members)
	if err != nil {
		t.Fatal(err)
	}
	a.FailMember(1)
	rt := a.RebuildTime(2700)
	if rt <= 0 {
		t.Fatalf("rebuild time = %g", rt)
	}
	// Sanity: rebuilding ≈ one full streaming scan; the small device is
	// 345.6 MB, so at ~79 MB/s the scan is ≈ 4.4 s.
	if rt < 3000 || rt > 12000 {
		t.Errorf("rebuild time = %.0f ms, want ≈ 4400–9000", rt)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-positive chunk")
			}
		}()
		a.RebuildTime(0)
	}()
}

func TestEstimateAccessLowerBound(t *testing.T) {
	devs, _ := fakes(4)
	a, _ := New(Config{Level: RAID5, StripeUnit: 8}, devs)
	if est := a.EstimateAccess(&core.Request{Op: core.Read, LBN: 0, Blocks: 8}, 0); est != 1 {
		t.Errorf("estimate = %g", est)
	}
	m, _ := New(Config{Level: RAID1}, devs[:2])
	if est := m.EstimateAccess(&core.Request{Op: core.Read, LBN: 0, Blocks: 8}, 0); est != 1 {
		t.Errorf("mirror estimate = %g", est)
	}
}

func TestArrayName(t *testing.T) {
	devs, _ := fakes(3)
	a, _ := New(Config{Level: RAID5, StripeUnit: 8}, devs)
	if a.Name() != "RAID-5×3(fake)" {
		t.Errorf("name = %q", a.Name())
	}
}
