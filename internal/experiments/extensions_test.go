package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRAIDShape(t *testing.T) {
	ts := RAID(tiny())
	tb := ts[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Row 0: RAID-5 small write — the §6.2 claim needs a large disk/MEMS
	// gap (Table 2's rotation vs. turnaround, now at array level).
	memsW, diskW := cell(t, tb.Rows[0][1]), cell(t, tb.Rows[0][2])
	if diskW < 5*memsW {
		t.Errorf("RAID-5 small write gap too small: MEMS %g vs disk %g", memsW, diskW)
	}
	// Degraded reads cost more than healthy reads on both devices.
	if cell(t, tb.Rows[2][1]) < cell(t, tb.Rows[1][1])*0.9 {
		t.Errorf("MEMS degraded read cheaper than healthy: %v", tb.Rows)
	}
	// Rebuild rows are formatted in seconds.
	if !strings.Contains(tb.Rows[3][1], " s") {
		t.Errorf("rebuild cell %q not in seconds", tb.Rows[3][1])
	}
}

func TestCacheStudyShape(t *testing.T) {
	ts := CacheStudy(tiny())
	tb := ts[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	get := func(workload, mode string) (mean, hit float64) {
		for _, row := range tb.Rows {
			if strings.HasPrefix(row[0], workload) && row[1] == mode {
				h := 0.0
				if row[3] != "—" {
					h = cell(t, row[3])
				}
				return cell(t, row[2]), h
			}
		}
		t.Fatalf("missing row %s/%s", workload, mode)
		return 0, 0
	}
	// Sequential scan: any buffering must beat raw, with a high hit rate.
	seqOff, _ := get("sequential", "off")
	seqFixed, seqHit := get("sequential", "fixed")
	seqAdapt, _ := get("sequential", "adaptive")
	if seqFixed >= seqOff || seqAdapt >= seqOff {
		t.Errorf("buffered sequential scan (%g/%g) should beat raw %g", seqFixed, seqAdapt, seqOff)
	}
	if seqHit < 0.5 {
		t.Errorf("sequential hit rate = %g, want high", seqHit)
	}
	// Random: fixed read-ahead taxes every miss; adaptive must not.
	rndOff, _ := get("random", "off")
	rndFixed, _ := get("random", "fixed")
	rndAdapt, _ := get("random", "adaptive")
	if rndFixed <= rndOff {
		t.Errorf("fixed read-ahead should tax random traffic: fixed %g vs off %g", rndFixed, rndOff)
	}
	if rndAdapt > rndOff*1.1 {
		t.Errorf("adaptive prefetch should not tax random traffic: %g vs %g", rndAdapt, rndOff)
	}
}

func TestAgingShape(t *testing.T) {
	ts := Aging(tiny())
	tb := ts[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// ASPTF(0.01) must cut SPTF's maximum response sharply at the knee.
	var sptfMax, agedMax float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "SPTF":
			sptfMax = cell(t, row[3])
		case "ASPTF(0.01)":
			agedMax = cell(t, row[3])
		}
	}
	if sptfMax == 0 || agedMax == 0 {
		t.Fatalf("missing rows: %v", tb.Rows)
	}
	if agedMax*1.5 > sptfMax {
		t.Errorf("aging should tame the tail: SPTF max %g vs ASPTF %g", sptfMax, agedMax)
	}
}

func TestRemapStudyShape(t *testing.T) {
	ts := RemapStudy(tiny())
	tb := ts[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Spare-tip remap column is flat (identical to defect-free).
	base := tb.Rows[0][3]
	for _, row := range tb.Rows {
		if row[3] != base {
			t.Errorf("spare-tip remap column should be flat: %v", tb.Rows)
		}
	}
	// Slip remapping slows both devices monotonically, disk far worse.
	prevD, prevM := 0.0, 0.0
	for i, row := range tb.Rows {
		d, m := cell(t, row[1]), cell(t, row[2])
		if i > 0 && (d < prevD || m < prevM) {
			t.Errorf("slip cost not monotone: %v", tb.Rows)
		}
		prevD, prevM = d, m
	}
	lastD, lastM := cell(t, tb.Rows[3][1]), cell(t, tb.Rows[3][2])
	if lastD < 3*lastM {
		t.Errorf("disk slip penalty (%g) should dwarf MEMS (%g)", lastD, lastM)
	}
}

func TestGenerationsShape(t *testing.T) {
	ts := Generations(tiny())
	tb := ts[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Capacity and bandwidth grow; access time shrinks.
	for i := 1; i < 3; i++ {
		if cell(t, tb.Rows[i][1]) <= cell(t, tb.Rows[i-1][1]) {
			t.Errorf("capacity not increasing: %v", tb.Rows)
		}
		if cell(t, tb.Rows[i][2]) <= cell(t, tb.Rows[i-1][2]) {
			t.Errorf("bandwidth not increasing: %v", tb.Rows)
		}
		if cell(t, tb.Rows[i][3]) >= cell(t, tb.Rows[i-1][3]) {
			t.Errorf("access time not decreasing: %v", tb.Rows)
		}
	}
}

func TestStartupShape(t *testing.T) {
	ts := Startup(tiny())
	if len(ts) != 2 {
		t.Fatalf("tables = %d", len(ts))
	}
	shelf := ts[0]
	// MEMS column is constant (concurrent init); disk columns scale with
	// device count (serialized spin-up).
	if shelf.Rows[0][1] != shelf.Rows[2][1] {
		t.Errorf("MEMS init should not scale with device count: %v", shelf.Rows)
	}
	if cell(t, shelf.Rows[2][2]) != 16*cell(t, shelf.Rows[0][2]) {
		t.Errorf("serialized disk spin-up should scale linearly: %v", shelf.Rows)
	}
	sync := ts[1]
	memsW, diskW := cell(t, sync.Rows[0][1]), cell(t, sync.Rows[1][1])
	if diskW < 5*memsW {
		t.Errorf("synchronous write gap too small: MEMS %g vs disk %g", memsW, diskW)
	}
}

func TestPowerCompressionTable(t *testing.T) {
	ts := Power(tiny())
	if len(ts) != 2 || ts[1].ID != "power-compress" {
		t.Fatalf("expected power-compress table, got %d tables", len(ts))
	}
	tb := ts[1]
	// Cheap-CPU rows are worthwhile; the expensive-CPU row is not.
	if tb.Rows[0][3] != "true" {
		t.Errorf("cheap 1.5× compression should win: %v", tb.Rows[0])
	}
	if tb.Rows[len(tb.Rows)-1][3] != "false" {
		t.Errorf("expensive CPU should lose: %v", tb.Rows[len(tb.Rows)-1])
	}
}

func TestShuffleStudyShape(t *testing.T) {
	ts := ShuffleStudy(tiny())
	tb := ts[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Static rows have zero migration; adaptive rows have positive
	// migration whenever anything moved.
	for i, row := range tb.Rows {
		mig := cell(t, row[3])
		if i%2 == 0 && mig != 0 {
			t.Errorf("static row with migration: %v", row)
		}
		if mig < 0 {
			t.Errorf("negative migration: %v", row)
		}
	}
	// With stable hotspots (row pair 0/1), the adaptive layout's raw
	// service time must beat static — the organ-pipe benefit exists —
	// even though migration may erase it.
	static0, adapt0 := cell(t, tb.Rows[0][2]), cell(t, tb.Rows[1][2])
	if adapt0 >= static0 {
		t.Errorf("stable hotspots: adaptive service %g should beat static %g", adapt0, static0)
	}
}

func TestBusStudyShape(t *testing.T) {
	ts := BusStudy(tiny())
	tb := ts[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Media-only aggregate scales ~linearly with sled count; the shared
	// bus clamps it near 160 MB/s.
	raw1, raw8 := cell(t, tb.Rows[0][1]), cell(t, tb.Rows[3][1])
	if raw8 < 6*raw1 {
		t.Errorf("media-only aggregate should scale: %g → %g", raw1, raw8)
	}
	sh8 := cell(t, tb.Rows[3][2])
	if sh8 > 170 {
		t.Errorf("8 sleds on one bus = %g MB/s, exceeds the 160 MB/s bus", sh8)
	}
	sh1 := cell(t, tb.Rows[0][2])
	if sh1 < raw1*0.9 {
		t.Errorf("one sled should not be bus-limited: %g vs %g", sh1, raw1)
	}
}

func TestStripingStudyShape(t *testing.T) {
	ts := StripingStudy(tiny())
	tb := ts[0]
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	num := func(s string) float64 {
		if s == "—" {
			return 1e12 // saturated
		}
		return cell(t, s)
	}
	// At every rate, more sleds never respond slower; at 4000 req/s one
	// sled is saturated while four sleds are comfortable.
	for _, row := range tb.Rows {
		one, two, four := num(row[1]), num(row[2]), num(row[3])
		if two > one*1.2 || four > two*1.2 {
			t.Errorf("striping made things worse: %v", row)
		}
	}
	r4k := tb.Rows[2]
	if num(r4k[1]) < 10*num(r4k[3]) {
		t.Errorf("at 4000 req/s, 4 sleds (%v) should be ≫ faster than 1 (%v)", r4k[3], r4k[1])
	}
}

func TestSeekProfileShape(t *testing.T) {
	ts := SeekProfile(tiny())
	if len(ts) != 2 {
		t.Fatalf("tables = %d", len(ts))
	}
	memsT := ts[0]
	// X seeks grow with distance, and the edge interval is never faster
	// than the centered one (§2.4.4 / §5.1).
	prevC, prevE := 0.0, 0.0
	for _, row := range memsT.Rows {
		c, e := cell(t, row[1]), cell(t, row[2])
		if c < prevC || e < prevE {
			t.Errorf("seek curve not monotone: %v", memsT.Rows)
		}
		if e+1e-9 < c {
			t.Errorf("edge interval (%g) faster than centered (%g)", e, c)
		}
		prevC, prevE = c, e
	}
	// The disk curve is monotone and spans ≈1–10.5 ms.
	diskT := ts[1]
	first := cell(t, diskT.Rows[0][1])
	last := cell(t, diskT.Rows[len(diskT.Rows)-1][1])
	if first < 0.5 || first > 1.5 || last < 9 || last > 12 {
		t.Errorf("disk seek extremes = %g…%g", first, last)
	}
}

func TestFaultInjectShape(t *testing.T) {
	ts := FaultInject(tiny())
	if len(ts) != 2 {
		t.Fatalf("tables = %d", len(ts))
	}
	a, b := ts[0], ts[1]
	if a.ID != "faultinject-a" || b.ID != "faultinject-b" {
		t.Fatalf("table IDs = %s, %s", a.ID, b.ID)
	}
	if len(a.Rows) != len(transientRates) || len(b.Rows) != len(tipFailureCounts) {
		t.Fatalf("rows = %d/%d", len(a.Rows), len(b.Rows))
	}
	// §6.1.3 asymmetry, end to end through the simulator: wherever both
	// devices retried, the disk's per-error recovery cost (re-seek plus
	// rotational re-miss) must exceed the MEMS cost (turnarounds plus a
	// short X seek).
	compared := 0
	for _, row := range a.Rows {
		if row[4] == "-" || row[8] == "-" {
			continue
		}
		memsCost, diskCost := cell(t, row[4]), cell(t, row[8])
		if diskCost <= memsCost {
			t.Errorf("rate %s: disk ms/error %g ≤ MEMS %g", row[0], diskCost, memsCost)
		}
		compared++
	}
	if compared == 0 {
		t.Error("no rate row produced retries on both devices")
	}
	// Tip-failure sweep: small failure counts are fully absorbed by
	// spares; the largest drains the pool and forces degraded reads.
	if got := cell(t, b.Rows[0][3]); got != 0 {
		t.Errorf("k=%d: %g degraded reads despite spare cover", tipFailureCounts[0], got)
	}
	last := b.Rows[len(b.Rows)-1]
	if cell(t, last[1]) == 0 || cell(t, last[2]) == 0 || cell(t, last[3]) == 0 {
		t.Errorf("largest failure count produced no degraded-mode service: %v", last)
	}
}

func TestRebuildShape(t *testing.T) {
	ts := Rebuild(tiny())
	if len(ts) != 3 {
		t.Fatalf("tables = %d, want 3", len(ts))
	}
	sweep := ts[0]
	// Four fixed throttle fractions plus the adaptive policy row.
	if len(sweep.Rows) != 5 {
		t.Fatalf("throttle rows = %d, want 5", len(sweep.Rows))
	}
	if got := sweep.Rows[4][0]; got != "adaptive" {
		t.Fatalf("last sweep row = %q, want the adaptive policy", got)
	}
	var prevMEMS float64
	for i, row := range sweep.Rows {
		memsMTTR, diskMTTR := cell(t, row[1]), cell(t, row[2])
		// The headline claim: at equal per-member capacity the MEMS volume
		// closes its vulnerability window well before the disk volume.
		if memsMTTR <= 0 || diskMTTR <= memsMTTR {
			t.Errorf("throttle %s: MEMS MTTR %g s vs disk %g s, want MEMS ≪ disk",
				row[0], memsMTTR, diskMTTR)
		}
		// Raising the throttle fraction must shorten the rebuild (the
		// adaptive row is not part of the fixed ordering).
		if i > 0 && i < 4 && memsMTTR >= prevMEMS {
			t.Errorf("throttle %s: MTTR %g s not below previous %g s", row[0], memsMTTR, prevMEMS)
		}
		prevMEMS = memsMTTR
		// A failover with a hot spare loses no requests.
		if row[5] != "0" {
			t.Errorf("throttle %s: lost requests = %s", row[0], row[5])
		}
	}
	// The adaptive policy must beat the fixed frontier somewhere: for at
	// least one fixed fraction it achieves equal-or-better MEMS MTTR and
	// equal-or-better MEMS degraded p95 (the fixed policy can only trade
	// one against the other).
	fg := ts[1]
	adMTTR, adP95 := cell(t, sweep.Rows[4][1]), cell(t, fg.Rows[4][2])
	dominated := false
	for i := 0; i < 4; i++ {
		if adMTTR <= cell(t, sweep.Rows[i][1]) && adP95 <= cell(t, fg.Rows[i][2]) {
			dominated = true
		}
	}
	if !dominated {
		t.Errorf("adaptive (MTTR %g s, degraded p95 %g ms) beats no fixed operating point",
			adMTTR, adP95)
	}
	// Degraded-mode foreground service costs more than healthy on both
	// device types, at every throttle.
	for _, row := range fg.Rows {
		if cell(t, row[2]) <= cell(t, row[1]) {
			t.Errorf("throttle %s: MEMS degraded p95 %s not above healthy %s", row[0], row[2], row[1])
		}
		if cell(t, row[4]) <= cell(t, row[3]) {
			t.Errorf("throttle %s: disk degraded p95 %s not above healthy %s", row[0], row[4], row[3])
		}
	}
	// Mirror volume: same ordering between device types.
	mir := ts[2]
	if len(mir.Rows) != 2 {
		t.Fatalf("mirror rows = %d, want 2", len(mir.Rows))
	}
	if cell(t, mir.Rows[1][1]) <= cell(t, mir.Rows[0][1]) {
		t.Errorf("mirror: disk MTTR %s not above MEMS %s", mir.Rows[1][1], mir.Rows[0][1])
	}
}

func TestRebuildPolicyModes(t *testing.T) {
	// "fixed" reproduces the historical sweep alone; "adaptive" is the
	// fast smoke path — one policy row, no mirror table.
	p := tiny()
	p.RebuildPolicy = "fixed"
	ts, err := Run("rebuild", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || len(ts[0].Rows) != 4 {
		t.Fatalf("fixed mode: %d tables, %d sweep rows; want 3 tables, 4 rows",
			len(ts), len(ts[0].Rows))
	}
	p.RebuildPolicy = "adaptive"
	ts, err = Run("rebuild", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || len(ts[0].Rows) != 1 || ts[0].Rows[0][0] != "adaptive" {
		t.Fatalf("adaptive mode: %d tables, rows %v; want 2 tables with one adaptive row",
			len(ts), ts[0].Rows)
	}
	if mttr := cell(t, ts[0].Rows[0][1]); mttr <= 0 {
		t.Errorf("adaptive MEMS MTTR = %g s", mttr)
	}
}

func TestMTTDLShape(t *testing.T) {
	ts := MTTDL(tiny())
	if len(ts) != 1 {
		t.Fatalf("tables = %d, want 1", len(ts))
	}
	tbl := ts[0]
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want mirror + parity", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		memsW, diskW := cell(t, row[1]), cell(t, row[2])
		memsL, diskL := cell(t, row[3]), cell(t, row[4])
		ratio := cell(t, row[5])
		if memsW <= 0 || diskW <= memsW {
			t.Errorf("%s: windows MEMS %g s / disk %g s, want 0 < MEMS < disk", row[0], memsW, diskW)
		}
		if memsL <= 0 || diskL <= 0 || memsL <= diskL {
			t.Errorf("%s: MTTDL MEMS %g h / disk %g h, want MEMS > disk > 0", row[0], memsL, diskL)
		}
		// Common random numbers tie the MTTDL ratio to the window ratio:
		// the same lifetime draws are replayed against both windows, so
		// the estimate concentrates near diskW/memsW even at test-scale
		// trial counts.
		wratio := diskW / memsW
		if ratio < wratio*0.7 || ratio > wratio*1.3 {
			t.Errorf("%s: MTTDL ratio %g far from window ratio %g", row[0], ratio, wratio)
		}
		if c := cell(t, row[6]); c != 0 {
			t.Errorf("%s: %g censored trials at test scale", row[0], c)
		}
	}

	// Same seed, same bytes: the artifact is deterministic.
	var a, b bytes.Buffer
	for _, tb := range MTTDL(tiny()) {
		tb.CSV(&a)
	}
	for _, tb := range MTTDL(tiny()) {
		tb.CSV(&b)
	}
	if a.String() != b.String() {
		t.Error("mttdl output not deterministic")
	}
}

func TestSchedCostShape(t *testing.T) {
	ts := SchedCost(tiny())
	if len(ts) != 2 {
		t.Fatalf("tables = %d, want 2", len(ts))
	}
	a := ts[0]
	// Two devices × the standard SPTF/SettleAware pair.
	if len(a.Rows) != 4 {
		t.Fatalf("comparison rows = %d, want 4", len(a.Rows))
	}
	for _, row := range a.Rows {
		mean, p95, p99 := cell(t, row[2]), cell(t, row[3]), cell(t, row[4])
		if mean <= 0 || p95 < mean || p99 < p95 {
			t.Errorf("%s/%s: mean %g / p95 %g / p99 %g not ordered", row[0], row[1], mean, p95, p99)
		}
		if cell(t, row[5]) <= 0 || cell(t, row[6]) <= 0 {
			t.Errorf("%s/%s: empty phase breakdown: %v", row[0], row[1], row)
		}
	}

	// The acceptance claim: class-aware Priority member queues bound the
	// degraded-read tail below raw SPTF on at least one rebuild
	// operating point.
	b := ts[1]
	if len(b.Rows) != 2 {
		t.Fatalf("degraded rows = %d, want 2", len(b.Rows))
	}
	better := false
	for _, row := range b.Rows {
		sptf, prio := cell(t, row[1]), cell(t, row[2])
		if sptf <= 0 || prio <= 0 {
			t.Fatalf("throttle %s: empty degraded-read tail: %v", row[0], row)
		}
		if cell(t, row[5]) <= 0 {
			t.Fatalf("throttle %s: no degraded reads measured", row[0])
		}
		if prio < sptf {
			better = true
		}
	}
	if !better {
		t.Errorf("Priority never beat SPTF degraded-read p99: %v", b.Rows)
	}

	// Same seed, same bytes: the artifact is deterministic.
	var x, y bytes.Buffer
	for _, tb := range SchedCost(tiny()) {
		tb.CSV(&x)
	}
	for _, tb := range SchedCost(tiny()) {
		tb.CSV(&y)
	}
	if x.String() != y.String() {
		t.Error("schedcost output not deterministic")
	}
}

func TestSchedCostExtraSched(t *testing.T) {
	p := tiny()
	p.Sched = "Priority"
	ts := SchedCost(p)
	// Two devices × (standard pair + the -sched extra).
	if len(ts[0].Rows) != 6 {
		t.Fatalf("rows with extra policy = %d, want 6", len(ts[0].Rows))
	}
	// Naming an already-present policy must not duplicate it.
	p.Sched = "SettleAware"
	if ts := SchedCost(p); len(ts[0].Rows) != 4 {
		t.Fatalf("rows with duplicate policy = %d, want 4", len(ts[0].Rows))
	}
}

func TestRebuildMemberSched(t *testing.T) {
	// The rebuild experiment honors Params.MemberSched: swapping the
	// member queues to Priority still completes every rebuild and loses
	// nothing.
	p := tiny()
	p.MemberSched = "Priority"
	p.RebuildPolicy = "adaptive"
	ts := Rebuild(p)
	sweep := ts[0]
	if len(sweep.Rows) != 1 {
		t.Fatalf("adaptive-only rows = %d, want 1", len(sweep.Rows))
	}
	if mttr := cell(t, sweep.Rows[0][1]); mttr <= 0 {
		t.Errorf("MEMS MTTR = %g s under Priority member queues", mttr)
	}
	if sweep.Rows[0][5] != "0" {
		t.Errorf("lost requests = %s under Priority member queues", sweep.Rows[0][5])
	}
}
