package experiments

import (
	"fmt"
	"math/rand"

	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/mems"
	"memsim/internal/runner"
)

func init() { register("fault", faultPlan) }

// faultConfigs are the redundancy configurations compared throughout the
// fault experiment, from disk-like (any head failure is fatal) to heavily
// redundant.
var faultConfigs = []struct {
	name string
	cfg  fault.Config
}{
	{"disk-like (no ECC, no spares)", fault.Config{Tips: 6400, DataTips: 64, ECCTips: 0, SpareTips: 0}},
	{"stripe+1 ECC tip", fault.Config{Tips: 6400, DataTips: 64, ECCTips: 1, SpareTips: 30}},
	{"stripe+2 ECC tips", fault.Config{Tips: 6400, DataTips: 64, ECCTips: 2, SpareTips: 130}},
	{"stripe+2 ECC, 394 spares", fault.Config{Tips: 6400, DataTips: 64, ECCTips: 2, SpareTips: 394}},
}

// FaultTolerance quantifies §6.1 (an extension: the paper argues this
// qualitatively, without a figure). Three tables:
//
//  1. Data-loss probability vs. number of failed tips, for a disk-like
//     configuration (no redundancy — the first head failure is fatal)
//     through increasingly redundant MEMS configurations (striping + ECC
//     tips + spare-tip remapping).
//  2. The capacity cost of each configuration (the §6.1.1 capacity ↔
//     fault-tolerance tradeoff).
//  3. Spare-tip remap timing neutrality: because a remapped sector lives
//     at the *same tip sector* on a spare tip, only the active-tip set
//     changes — sled motion, and therefore service time, is identical.
func FaultTolerance(p Params) []Table { return mustRun(faultPlan(p)) }

func faultPlan(p Params) *Plan {
	// The Monte-Carlo loss table threads one rng through every cell, so
	// it is a single job; remap neutrality is an independent measurement.
	lossJob := &runner.Job{
		Label:  "fault loss Monte Carlo",
		Seed:   p.Seed,
		Custom: func(*runner.Job) any { return lossTable(p) },
	}
	remapJob := &runner.Job{
		Label:  "fault remap neutrality",
		Seed:   p.Seed,
		Custom: func(*runner.Job) any { return remapNeutrality() },
	}
	return &Plan{
		Jobs: []*runner.Job{lossJob, remapJob},
		Assemble: func() []Table {
			return []Table{
				lossJob.Value().(Table),
				capacityTable(),
				remapJob.Value().(Table),
				seekErrorTable(),
			}
		},
	}
}

// lossTable runs the Monte-Carlo data-loss estimate for every
// (failure count, configuration) cell, sharing one rng across the grid.
func lossTable(p Params) Table {
	failures := []int{1, 5, 20, 50, 100, 200, 400, 800}
	loss := Table{
		ID:      "fault-loss",
		Title:   "P(data loss) vs. uniformly-random failed tips (Monte Carlo)",
		Columns: []string{"failed tips"},
	}
	for _, c := range faultConfigs {
		loss.Columns = append(loss.Columns, c.name)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for _, k := range failures {
		row := []string{fmt.Sprintf("%d", k)}
		for _, c := range faultConfigs {
			pr, err := fault.LossProbability(c.cfg, k, p.Trials, rng)
			if err != nil {
				panic(err) // configurations above are known-good
			}
			row = append(row, fmt.Sprintf("%.3f", pr))
		}
		loss.AddRow(row...)
	}
	return loss
}

// capacityTable is pure arithmetic over the configurations.
func capacityTable() Table {
	cap := Table{
		ID:      "fault-capacity",
		Title:   "capacity cost of redundancy (fraction of tips not storing data)",
		Columns: []string{"configuration", "ECC overhead", "spare overhead", "total"},
	}
	for _, c := range faultConfigs {
		ecc := float64(c.cfg.ECCTips) / float64(c.cfg.StripeWidth())
		usable := float64(c.cfg.Tips-c.cfg.SpareTips) / float64(c.cfg.Tips)
		spare := 1 - usable
		cap.AddRow(c.name,
			fmt.Sprintf("%.1f%%", ecc*100),
			fmt.Sprintf("%.1f%%", spare*100),
			fmt.Sprintf("%.1f%%", (1-usable*(1-ecc))*100))
	}
	return cap
}

// seekErrorTable is pure arithmetic over the §6.1.3 penalty formulas.
func seekErrorTable() Table {
	pen := Table{
		ID:      "fault-seekerr",
		Title:   "seek-error penalties (§6.1.3, ms)",
		Columns: []string{"device", "expected", "worst case"},
	}
	// The arguments below are in range by construction, so an error here
	// is a bug in this table, not a user mistake.
	must := func(v float64, err error) float64 {
		if err != nil {
			panic(err)
		}
		return v
	}
	pen.AddRow("Atlas 10K (re-seek + rotation)",
		ms(must(fault.DiskSeekErrorPenalty(1.5, 5.985, 0.5))),
		ms(must(fault.DiskSeekErrorPenalty(2.0, 5.985, 0.999))))
	pen.AddRow("MEMS (turnarounds + short seek)",
		ms(must(fault.MEMSSeekErrorPenalty(0.07, 0.2, 1))),
		ms(must(fault.MEMSSeekErrorPenalty(0.28, 0.45, 2))))
	return pen
}

// remapNeutrality measures service times for the same sled coordinates on
// every track of a cylinder: tracks differ only in which tips are active,
// exactly like a spare-tip remap, so the times must be identical.
func remapNeutrality() Table {
	d := mems.MustDevice(mems.DefaultConfig())
	g := d.Geometry()
	t := Table{
		ID:      "fault-remap",
		Title:   "spare-tip remap timing neutrality: same sled position, different tip set",
		Columns: []string{"track (tip group)", "4 KB service from reset (ms)"},
	}
	for track := 0; track < g.TracksPerCylinder; track++ {
		d.Reset()
		lbn := g.LBN(g.Cylinders/4, track, 5, 0)
		svc := d.Access(&core.Request{Op: core.Read, LBN: lbn, Blocks: 8}, 0)
		t.AddRow(fmt.Sprintf("%d", track), ms(svc))
	}
	return t
}
