// Package power implements the power-management models of §7: a
// MEMS-based storage device whose power is a near-linear function of bits
// accessed and whose sled stops and restarts in well under a millisecond,
// versus a disk whose spindle makes idle power expensive and restarts
// slow.
//
// The central abstraction is Managed, a core.Device wrapper that tracks
// the device's power state over simulated time, applies an idle-timeout
// policy ("switch from active to idle as soon as the I/O queue is empty"
// being the MEMS limit case of timeout 0), charges restart latency to the
// first request after a power-down, and integrates energy.
package power

import (
	"fmt"
	"math"

	"memsim/internal/core"
)

// Model holds a device's power parameters. All powers are watts; times
// are milliseconds.
type Model struct {
	// ActiveW is drawn while servicing a request.
	ActiveW float64
	// IdleW is drawn while powered up but not servicing (a disk's
	// spindle keeps turning; a MEMS device's electronics idle).
	IdleW float64
	// StandbyW is drawn in the low-power state after the idle timeout
	// (spindle stopped / sled parked and electronics napping).
	StandbyW float64
	// RestartMs is the latency to leave standby before the next request
	// can be serviced (disk spin-up; MEMS sled restart ≈ 0.5 ms).
	RestartMs float64
	// RestartW is drawn during a restart (a disk's spin-up surge).
	RestartW float64
}

// Validate reports parameter errors.
func (m Model) Validate() error {
	if m.ActiveW < 0 || m.IdleW < 0 || m.StandbyW < 0 || m.RestartMs < 0 || m.RestartW < 0 {
		return fmt.Errorf("power: negative parameter in %+v", m)
	}
	return nil
}

// MEMSModel returns parameters for the paper's MEMS-based storage device:
// ~1 W while accessing (dominated by the active probe tips — "90% of a
// MEMS-based storage device's power is used for sensing and recording"),
// negligible sled/idle power, an effectively free sub-millisecond
// restart, and no surge.
func MEMSModel() Model {
	return Model{
		ActiveW:   1.0,
		IdleW:     0.1,
		StandbyW:  0.01,
		RestartMs: 0.5,
		RestartW:  1.0,
	}
}

// MobileDiskModel returns parameters in the style of the 2.5-inch mobile
// drives the paper cites for power management (IBM Travelstar class):
// watts of active power, spindle-dominated idle power, and a
// multi-second, high-surge spin-up.
func MobileDiskModel() Model {
	return Model{
		ActiveW:   2.5,
		IdleW:     0.9,
		StandbyW:  0.25,
		RestartMs: 2000,
		RestartW:  4.5,
	}
}

// ServerDiskModel returns parameters in the style of the Atlas 10K class
// of drives: the paper notes high-end disks can take 25 seconds to spin
// up (§6.3), making standby nearly unusable.
func ServerDiskModel() Model {
	return Model{
		ActiveW:   13.5,
		IdleW:     7.9,
		StandbyW:  2.5,
		RestartMs: 25000,
		RestartW:  20,
	}
}

// Policy is an idle-timeout power policy: after TimeoutMs of idleness the
// device drops to standby. A zero timeout is the MEMS "stop the sled the
// moment the queue is empty" policy; math.Inf(1) disables standby.
type Policy struct {
	TimeoutMs float64
}

// AlwaysOn returns the policy that never enters standby.
func AlwaysOn() Policy { return Policy{TimeoutMs: math.Inf(1)} }

// Immediate returns the zero-timeout policy of §7.
func Immediate() Policy { return Policy{} }

// Report summarizes a run's energy and latency impact.
type Report struct {
	// Joules per state.
	ActiveJ, IdleJ, StandbyJ, RestartJ float64
	// Restarts counts standby exits.
	Restarts int
	// PenaltyMs is the total restart latency added to request service.
	PenaltyMs float64
	// Requests observed.
	Requests int
	// BytesMoved is the total data transferred.
	BytesMoved int64
	// ElapsedMs is the span of simulated time covered.
	ElapsedMs float64
}

// TotalJ returns total energy in joules.
func (r Report) TotalJ() float64 { return r.ActiveJ + r.IdleJ + r.StandbyJ + r.RestartJ }

// MeanPowerW returns the average power over the covered span.
func (r Report) MeanPowerW() float64 {
	if r.ElapsedMs == 0 {
		return 0
	}
	return r.TotalJ() / (r.ElapsedMs / 1000)
}

// MeanPenaltyMs returns the average restart latency per request.
func (r Report) MeanPenaltyMs() float64 {
	if r.Requests == 0 {
		return 0
	}
	return r.PenaltyMs / float64(r.Requests)
}

// Managed wraps a device with power-state tracking. It implements
// core.Device, so it drops into the simulator in place of the raw device;
// restart latency appears in request service (and therefore response)
// times, and energy is integrated as simulated time advances.
type Managed struct {
	inner  core.Device
	model  Model
	policy Policy

	// lastBusyEnd is when the device last finished servicing.
	lastBusyEnd float64
	// lastPenaltyMs is the restart penalty charged by the most recent
	// Access, folded into its reported breakdown.
	lastPenaltyMs float64
	rep           Report
}

var _ core.Device = (*Managed)(nil)

// NewManaged wraps inner with the given model and policy. It panics on an
// invalid model (programmer-supplied configuration).
func NewManaged(inner core.Device, model Model, policy Policy) *Managed {
	if err := model.Validate(); err != nil {
		panic(err)
	}
	if policy.TimeoutMs < 0 {
		panic(fmt.Sprintf("power: negative idle timeout %g", policy.TimeoutMs))
	}
	return &Managed{inner: inner, model: model, policy: policy}
}

// Name implements core.Device.
func (m *Managed) Name() string { return m.inner.Name() + "+power" }

// Capacity implements core.Device.
func (m *Managed) Capacity() int64 { return m.inner.Capacity() }

// SectorSize implements core.Device.
func (m *Managed) SectorSize() int { return m.inner.SectorSize() }

// Reset implements core.Device; it clears the power accounting too.
func (m *Managed) Reset() {
	m.inner.Reset()
	m.lastBusyEnd = 0
	m.lastPenaltyMs = 0
	m.rep = Report{}
}

// accountIdle integrates idle/standby energy for the gap [lastBusyEnd,
// now) and returns the restart penalty owed by a request arriving at now.
func (m *Managed) accountIdle(now float64) (penaltyMs float64) {
	gap := now - m.lastBusyEnd
	if gap <= 0 {
		return 0
	}
	idle := math.Min(gap, m.policy.TimeoutMs)
	m.rep.IdleJ += m.model.IdleW * idle / 1000
	if gap > m.policy.TimeoutMs {
		standby := gap - m.policy.TimeoutMs
		m.rep.StandbyJ += m.model.StandbyW * standby / 1000
		m.rep.Restarts++
		m.rep.RestartJ += m.model.RestartW * m.model.RestartMs / 1000
		return m.model.RestartMs
	}
	return 0
}

// Access implements core.Device: it charges any pending restart, services
// the request on the wrapped device, and integrates active energy.
func (m *Managed) Access(req *core.Request, now float64) float64 {
	penalty := m.accountIdle(now)
	svc := m.inner.Access(req, now+penalty)
	total := penalty + svc
	m.lastPenaltyMs = penalty
	m.rep.ActiveJ += m.model.ActiveW * svc / 1000
	m.rep.PenaltyMs += penalty
	m.rep.Requests++
	m.rep.BytesMoved += req.Bytes(m.inner.SectorSize())
	m.lastBusyEnd = now + total
	if m.lastBusyEnd > m.rep.ElapsedMs {
		m.rep.ElapsedMs = m.lastBusyEnd
	}
	return total
}

// EstimateAccess implements core.Device: the estimate includes the
// restart penalty the request would pay, without committing any state.
func (m *Managed) EstimateAccess(req *core.Request, now float64) float64 {
	penalty := 0.0
	if gap := now - m.lastBusyEnd; gap > m.policy.TimeoutMs {
		penalty = m.model.RestartMs
	}
	return penalty + m.inner.EstimateAccess(req, now+penalty)
}

// EstimateBreakdown implements core.BreakdownEstimator: the wrapped
// device's estimated decomposition at the restart-shifted start time,
// with any restart penalty charged to Overhead — the same convention as
// LastBreakdown — so ServiceMs equals what EstimateAccess returns.
func (m *Managed) EstimateBreakdown(req *core.Request, now float64) core.Breakdown {
	penalty := 0.0
	if gap := now - m.lastBusyEnd; gap > m.policy.TimeoutMs {
		penalty = m.model.RestartMs
	}
	bd := core.EstimateBreakdown(m.inner, req, now+penalty)
	bd.Overhead += penalty
	bd.ServiceMs += penalty
	return bd
}

// Report returns the accounting up to the last access.
func (m *Managed) Report() Report { return m.rep }

// LastBreakdown implements core.BreakdownReporter: the wrapped device's
// decomposition of the most recent access, with any restart (spin-up)
// penalty charged to Overhead so the phase sum still reconciles with the
// service time this wrapper reported.
func (m *Managed) LastBreakdown() (core.Breakdown, bool) {
	br, ok := m.inner.(core.BreakdownReporter)
	if !ok {
		return core.Breakdown{}, false
	}
	bd, ok := br.LastBreakdown()
	if !ok {
		return core.Breakdown{}, false
	}
	bd.Overhead += m.lastPenaltyMs
	bd.ServiceMs += m.lastPenaltyMs
	return bd, true
}

// FinishAt extends the idle accounting to time end (ms) without an
// access, closing the books on a run.
func (m *Managed) FinishAt(end float64) {
	if end < m.lastBusyEnd {
		return
	}
	m.accountIdle(end)
	m.lastBusyEnd = end
	if end > m.rep.ElapsedMs {
		m.rep.ElapsedMs = end
	}
}

// CompressionTradeoff evaluates the §7 proposal that "the embedded
// computational logic in MEMS-based storage devices could be used to
// compress data arriving at the media in order to minimize the number of
// active tips per access": with per-bit media energy e (joules/bit, from
// PerBitEnergy), compressing by ratio r ≥ 1 at a computational cost of
// cpuJPerBit joules per (uncompressed) bit changes the energy to move
// one uncompressed bit from e to e/r + cpu. It returns that energy and
// whether compression wins.
func CompressionTradeoff(perBitJ, ratio, cpuJPerBit float64) (effectiveJPerBit float64, worthwhile bool) {
	if perBitJ <= 0 || ratio < 1 || cpuJPerBit < 0 {
		panic(fmt.Sprintf("power: invalid compression parameters e=%g r=%g cpu=%g", perBitJ, ratio, cpuJPerBit))
	}
	eff := perBitJ/ratio + cpuJPerBit
	return eff, eff < perBitJ
}

// PerBitEnergy returns the model's marginal energy per transferred bit in
// joules, given the device's sustained bandwidth in bits/s while active.
// §7: "power dissipation is a linear function of the number of bits read
// or written", so this is the constant of that line.
func PerBitEnergy(m Model, bandwidthBitsPerSec float64) float64 {
	if bandwidthBitsPerSec <= 0 {
		panic(fmt.Sprintf("power: bandwidth must be positive, got %g", bandwidthBitsPerSec))
	}
	return m.ActiveW / bandwidthBitsPerSec
}
