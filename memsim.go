// Package memsim is a from-scratch reproduction of "Operating System
// Management of MEMS-based Storage Devices" (Griffin, Schlosser, Ganger,
// Nagle; CMU-CS-00-136 / OSDI 2000): a performance model of MEMS-based
// storage devices (spring-mounted media sleds over probe-tip arrays), a
// DiskSim-like simulation environment with a calibrated conventional-disk
// model, the paper's four request schedulers and four data layouts, its
// failure-management machinery, and its power-management models —
// together with a harness that regenerates every table and figure in the
// paper's evaluation.
//
// This file is the public facade: it re-exports the library's main entry
// points so that downstream users interact with one package. The
// implementation lives in the internal/ packages (one per subsystem; see
// DESIGN.md for the inventory).
//
// # Quick start
//
//	dev, err := memsim.NewMEMSDevice(memsim.DefaultMEMSConfig())
//	if err != nil { ... }
//	sched, _ := memsim.NewScheduler("SPTF")
//	src := memsim.NewRandomWorkload(1000, dev.SectorSize(), dev.Capacity(), 20000, 42)
//	res := memsim.Simulate(dev, sched, src, memsim.SimOptions{Warmup: 2000})
//	fmt.Println(res.String())
//
// See examples/ for runnable programs and cmd/memsbench for the
// paper-artifact harness.
package memsim

import (
	"io"

	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/experiments"
	"memsim/internal/mems"
	"memsim/internal/power"
	"memsim/internal/runner"
	"memsim/internal/sched"
	"memsim/internal/sim"
	"memsim/internal/stats"
	"memsim/internal/trace"
	"memsim/internal/workload"
)

// ─── Core abstractions ──────────────────────────────────────────────────

// Request is one storage request; see core.Request.
type Request = core.Request

// Device is a mechanically-detailed storage device model.
type Device = core.Device

// Scheduler orders pending requests.
type Scheduler = core.Scheduler

// Layout remaps logical blocks (the §5 data-placement hook).
type Layout = core.Layout

// Op distinguishes reads from writes.
type Op = core.Op

// Read and Write are the two request directions.
const (
	Read  = core.Read
	Write = core.Write
)

// NewManagedDevice composes a device with an OS-level block layout.
func NewManagedDevice(d Device, l Layout) Device { return core.NewManagedDevice(d, l) }

// ─── Devices ────────────────────────────────────────────────────────────

// MEMSConfig parameterizes the MEMS-based storage device (Table 1 of the
// paper).
type MEMSConfig = mems.Config

// MEMSDevice is the MEMS-based storage device model.
type MEMSDevice = mems.Device

// MEMSGeometry exposes the derived device geometry.
type MEMSGeometry = mems.Geometry

// DefaultMEMSConfig returns the paper's Table 1 parameters.
func DefaultMEMSConfig() MEMSConfig { return mems.DefaultConfig() }

// NewMEMSDevice builds a MEMS device, validating the configuration.
func NewMEMSDevice(cfg MEMSConfig) (*MEMSDevice, error) { return mems.NewDevice(cfg) }

// DiskConfig parameterizes the conventional-disk model.
type DiskConfig = disk.Config

// DiskDevice is the conventional-disk model.
type DiskDevice = disk.Device

// Atlas10KConfig returns the paper's reference drive configuration (a
// Quantum Atlas 10K-class disk).
func Atlas10KConfig() DiskConfig { return disk.Atlas10K() }

// NewDiskDevice builds a disk device, validating the configuration.
func NewDiskDevice(cfg DiskConfig) (*DiskDevice, error) { return disk.NewDevice(cfg) }

// ─── Scheduling ─────────────────────────────────────────────────────────

// NewScheduler constructs a scheduler by name: "FCFS", "SSTF_LBN",
// "C-LOOK" or "SPTF" (§4.1), or one of the cost-model extensions
// "SettleAware" and "Priority".
func NewScheduler(name string) (Scheduler, error) { return sched.New(name) }

// SchedulerNames lists the four algorithms in the paper's order.
func SchedulerNames() []string { return sched.Names() }

// AllSchedulerNames lists every name NewScheduler accepts: the paper's
// four plus the cost-model extensions.
func AllSchedulerNames() []string { return sched.AllNames() }

// ─── Workloads and traces ───────────────────────────────────────────────

// WorkloadSource produces a stream of timestamped requests.
type WorkloadSource = workload.Source

// RandomWorkloadConfig parameterizes the paper's synthetic random
// workload (§3).
type RandomWorkloadConfig = workload.RandomConfig

// NewRandomWorkload returns the paper's random workload (Poisson
// arrivals at the given rate, 67% reads, 4 KB mean size, uniform
// placement) over a device of the given geometry.
func NewRandomWorkload(rate float64, sectorSize int, capacity int64, count int, seed int64) WorkloadSource {
	return workload.DefaultRandom(rate, sectorSize, capacity, count, seed)
}

// RequestsSource adapts a pre-built request slice into a WorkloadSource.
func RequestsSource(reqs []*Request) WorkloadSource { return workload.NewFromSlice(reqs) }

// Trace is an ordered sequence of timestamped request records.
type Trace = trace.Trace

// TraceRecord is one trace line.
type TraceRecord = trace.Record

// GenerateCelloTrace builds the synthetic Cello-like file-server trace
// (the stand-in for the paper's HP Cello trace; DESIGN.md §5).
func GenerateCelloTrace(capacity int64, count int) *Trace {
	return trace.GenerateCello(trace.DefaultCello(capacity, count))
}

// GenerateTPCCTrace builds the synthetic TPC-C-like OLTP trace (the
// stand-in for the paper's TPC-C trace; DESIGN.md §5).
func GenerateTPCCTrace(capacity int64, count int) *Trace {
	return trace.GenerateTPCC(trace.DefaultTPCC(capacity, count))
}

// TraceSource converts a trace into a WorkloadSource.
func TraceSource(t *Trace) WorkloadSource {
	reqs := make([]*Request, t.Len())
	for i, rec := range t.Records {
		reqs[i] = rec.Request()
	}
	return workload.NewFromSlice(reqs)
}

// ─── Simulation ─────────────────────────────────────────────────────────

// SimOptions tunes a simulation run.
type SimOptions = sim.Options

// SimResult summarizes a run (mean response time and the paper's σ²/µ²
// starvation metric).
type SimResult = sim.Result

// SimContext observes a run in flight (periodic progress callbacks); a
// nil *SimContext is valid and observes nothing.
type SimContext = sim.Context

// Simulate executes an open-arrival simulation: requests arrive at their
// source-assigned times, queue in s, and are serviced by d.
func Simulate(d Device, s Scheduler, src WorkloadSource, opts SimOptions) SimResult {
	return sim.Run(nil, d, s, src, opts)
}

// SimulateCtx is Simulate with an observing context.
func SimulateCtx(ctx *SimContext, d Device, s Scheduler, src WorkloadSource, opts SimOptions) SimResult {
	return sim.Run(ctx, d, s, src, opts)
}

// SimulateClosed executes a closed, back-to-back run (the §5.3
// service-time regime).
func SimulateClosed(d Device, src WorkloadSource, opts SimOptions) SimResult {
	return sim.RunClosed(nil, d, src, opts)
}

// Router directs a volume-level request to a member device.
type Router = sim.Router

// SimulateMulti drives an open workload over several devices, each with
// its own scheduler queue (event-driven) — multi-device volumes like the
// paper's striped TPC-C testbed. Configuration errors (mismatched
// device/scheduler counts, an out-of-range router index) are returned
// rather than panicking.
func SimulateMulti(devs []Device, scheds []Scheduler, route Router,
	src WorkloadSource, opts SimOptions) (SimResult, error) {
	return sim.RunMulti(nil, devs, scheds, route, src, opts)
}

// ConcatRouter routes by address concatenation (device i holds LBNs
// [i·perDev, (i+1)·perDev)).
func ConcatRouter(perDev int64) Router { return sim.ConcatRouter(perDev) }

// StripeRouter routes unit-sized strips round-robin across n devices.
func StripeRouter(unit int64, n int) Router { return sim.StripeRouter(unit, n) }

// ─── Lifecycle observation ──────────────────────────────────────────────

// Breakdown decomposes one service visit into the paper's mechanical
// phases (seek, settle/rotate, turnaround, transfer, overhead, recovery).
// Both device models report one; sums reconcile with the exact service
// time to within float residue (Unattributed).
type Breakdown = core.Breakdown

// BreakdownReporter is implemented by devices that decompose their last
// access.
type BreakdownReporter = core.BreakdownReporter

// Probe observes typed request-lifecycle events from a simulation run; a
// nil probe is free and leaves results byte-identical.
type Probe = sim.Probe

// ProbeEvent is one lifecycle observation.
type ProbeEvent = sim.ProbeEvent

// ProbeEventKind enumerates the lifecycle stages.
type ProbeEventKind = sim.EventKind

// The lifecycle event kinds a Probe observes.
const (
	EventArrive   = sim.EventArrive
	EventDispatch = sim.EventDispatch
	EventService  = sim.EventService
	EventRetry    = sim.EventRetry
	EventRequeue  = sim.EventRequeue
	EventComplete = sim.EventComplete
	// Volume-lifecycle events (SimulateVolume): member failure, online
	// rebuild start and completion. Dev carries the member slot; no
	// request is attached.
	EventDeviceFail   = sim.EventDeviceFail
	EventRebuildStart = sim.EventRebuildStart
	EventRebuildDone  = sim.EventRebuildDone
)

// MultiProbe fans events out to several probes in order.
type MultiProbe = sim.MultiProbe

// WithRun wraps a probe so every event carries a run label.
func WithRun(p Probe, run string) Probe { return sim.WithRun(p, run) }

// PhaseDist is a streaming distribution (Welford moments plus retained
// samples for exact percentiles) used for per-phase aggregates.
type PhaseDist = stats.Dist

// PhaseStats aggregates per-request phase observations over a run's
// measured completions; SimResult.Phases points at one when a
// PhaseCollector is attached.
type PhaseStats = sim.PhaseStats

// PhaseCollector is a Probe that aggregates PhaseStats.
type PhaseCollector = sim.PhaseCollector

// NewPhaseCollector returns an empty collector; attach via
// SimOptions.Probe.
func NewPhaseCollector() *PhaseCollector { return sim.NewPhaseCollector() }

// JSONLProbe streams lifecycle events as JSON Lines (the memsbench
// -trace / memstrace -replay format; schema in README.md).
type JSONLProbe = sim.JSONLProbe

// NewJSONLProbe returns a probe writing JSONL records to w; call Flush
// when the run ends.
func NewJSONLProbe(w io.Writer) *JSONLProbe { return sim.NewJSONLProbe(w) }

// ─── Power management ───────────────────────────────────────────────────

// PowerModel holds a device's power parameters (§7).
type PowerModel = power.Model

// PowerPolicy is an idle-timeout power policy.
type PowerPolicy = power.Policy

// PowerReport summarizes energy and latency impact.
type PowerReport = power.Report

// PowerManaged wraps a device with power-state tracking; it implements
// Device and drops into Simulate.
type PowerManaged = power.Managed

// MEMSPowerModel returns the paper's MEMS power parameters (per-bit
// dominated, 0.5 ms restart).
func MEMSPowerModel() PowerModel { return power.MEMSModel() }

// MobileDiskPowerModel returns mobile-disk power parameters (Travelstar
// class; multi-second spin-up).
func MobileDiskPowerModel() PowerModel { return power.MobileDiskModel() }

// NewPowerManaged wraps dev with the model and policy.
func NewPowerManaged(dev Device, m PowerModel, p PowerPolicy) *PowerManaged {
	return power.NewManaged(dev, m, p)
}

// ImmediateIdle returns the §7 policy: stop the sled the moment the I/O
// queue is empty.
func ImmediateIdle() PowerPolicy { return power.Immediate() }

// AlwaysOn returns the policy that never enters standby.
func AlwaysOn() PowerPolicy { return power.AlwaysOn() }

// ─── Paper artifacts ────────────────────────────────────────────────────

// ExperimentParams sizes the paper-artifact simulations.
type ExperimentParams = experiments.Params

// ExperimentTable is one printable result grid.
type ExperimentTable = experiments.Table

// DefaultExperimentParams returns full-size parameters.
func DefaultExperimentParams() ExperimentParams { return experiments.Default() }

// QuickExperimentParams returns reduced parameters for smoke runs.
func QuickExperimentParams() ExperimentParams { return experiments.Quick() }

// ExperimentIDs lists the reproducible artifacts (fig5…fig11, table1,
// table2, fault, power).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper artifact.
func RunExperiment(id string, p ExperimentParams) ([]ExperimentTable, error) {
	return experiments.Run(id, p)
}

// RunExperiments regenerates several artifacts as one batch of isolated
// simulation jobs spread over workers goroutines (0 means GOMAXPROCS).
// Results come back per requested ID, in order, and are byte-identical
// to a sequential run regardless of worker count.
func RunExperiments(ids []string, p ExperimentParams, workers int) ([][]ExperimentTable, error) {
	out, _, err := experiments.RunMany(&runner.Context{Workers: workers}, ids, p)
	return out, err
}
