// Package workload generates the synthetic request streams used in the
// paper's experiments (§3): the open-arrival "random" workload (Poisson
// arrivals, 67% reads, exponentially-distributed sizes with a 4 KB mean,
// uniformly-distributed starting locations) and the closed bipartite
// small/large workload of the data-placement study (§5.3).
//
// Generators are deterministic given their seed, so every experiment in
// this repository is exactly reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"memsim/internal/core"
	"memsim/internal/layout"
)

// Source produces a stream of requests with non-decreasing Arrival times.
// Next returns nil when the stream is exhausted.
type Source interface {
	Next() *core.Request
}

// Factory builds a fresh Source for a simulation against d. The parallel
// experiment runner calls one factory per job, so request streams are
// never shared between concurrently-executing simulations. Generators
// whose sizing does not depend on device geometry may ignore d.
type Factory func(d core.Device) Source

// RandomConfig parameterizes the paper's random workload.
type RandomConfig struct {
	// Rate is the mean arrival rate in requests per second; interarrival
	// times are exponential (a Poisson process).
	Rate float64
	// ReadFraction is the probability a request is a read (0.67).
	ReadFraction float64
	// MeanBytes is the mean of the exponential request-size distribution
	// (4096). Sizes are rounded up to whole sectors, minimum one sector.
	MeanBytes float64
	// MaxBytes caps the size distribution's tail so that a single
	// request cannot exceed the device (and to keep the simulated queue
	// comparable across devices). Zero means 64× the mean.
	MaxBytes float64
	// SectorSize and Capacity describe the target device.
	SectorSize int
	Capacity   int64
	// Count is the number of requests to generate.
	Count int
	// Seed makes the stream reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (c *RandomConfig) Validate() error {
	switch {
	case c.Rate <= 0:
		return fmt.Errorf("workload: rate must be positive, got %g", c.Rate)
	case c.ReadFraction < 0 || c.ReadFraction > 1:
		return fmt.Errorf("workload: read fraction %g out of [0,1]", c.ReadFraction)
	case c.MeanBytes <= 0:
		return fmt.Errorf("workload: mean size must be positive")
	case c.SectorSize <= 0:
		return fmt.Errorf("workload: sector size must be positive")
	case c.Capacity <= 0:
		return fmt.Errorf("workload: capacity must be positive")
	case c.Count <= 0:
		return fmt.Errorf("workload: count must be positive")
	}
	return nil
}

// Random is the paper's random workload generator.
type Random struct {
	cfg  RandomConfig
	rng  *rand.Rand
	now  float64 // ms
	left int
}

// NewRandom builds a generator; it panics if cfg is invalid (configuration
// is programmer-controlled).
func NewRandom(cfg RandomConfig) *Random {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 64 * cfg.MeanBytes
	}
	return &Random{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), left: cfg.Count}
}

// DefaultRandom returns the paper's parameters (67% reads, 4 KB mean) at
// the given arrival rate for a device of the given geometry.
func DefaultRandom(rate float64, sectorSize int, capacity int64, count int, seed int64) *Random {
	return NewRandom(RandomConfig{
		Rate:         rate,
		ReadFraction: 0.67,
		MeanBytes:    4096,
		SectorSize:   sectorSize,
		Capacity:     capacity,
		Count:        count,
		Seed:         seed,
	})
}

// Next implements Source.
func (w *Random) Next() *core.Request {
	if w.left == 0 {
		return nil
	}
	w.left--
	w.now += w.rng.ExpFloat64() * 1000 / w.cfg.Rate
	op := core.Write
	if w.rng.Float64() < w.cfg.ReadFraction {
		op = core.Read
	}
	bytes := w.rng.ExpFloat64() * w.cfg.MeanBytes
	if bytes > w.cfg.MaxBytes {
		bytes = w.cfg.MaxBytes
	}
	blocks := int(bytes)/w.cfg.SectorSize + 1
	maxStart := w.cfg.Capacity - int64(blocks)
	lbn := w.rng.Int63n(maxStart + 1)
	return &core.Request{Arrival: w.now, Op: op, LBN: lbn, Blocks: blocks}
}

// Bipartite generates the closed workload of §5.3: a fraction of small
// (4 KB) requests and the remainder large (400 KB), placed by a layout
// policy. Arrival times are all zero — the experiment measures service
// time back-to-back, not queueing.
type Bipartite struct {
	placer      layout.Placer
	rng         *rand.Rand
	smallFrac   float64
	smallBlocks int
	largeBlocks int
	left        int
}

// BipartiteConfig parameterizes the §5.3 workload.
type BipartiteConfig struct {
	// SmallFraction is the probability a request is small (0.89).
	SmallFraction float64
	// SmallBytes and LargeBytes are the two request sizes (4 KB, 400 KB).
	SmallBytes, LargeBytes int
	// SectorSize of the target device.
	SectorSize int
	// Count is the number of requests (10 000 in the paper).
	Count int
	// Seed makes the stream reproducible.
	Seed int64
}

// DefaultBipartite returns the paper's parameters: 10 000 reads, 89%
// 4 KB, 11% 400 KB.
func DefaultBipartite(seed int64) BipartiteConfig {
	return BipartiteConfig{
		SmallFraction: 0.89,
		SmallBytes:    4096,
		LargeBytes:    400 * 1024,
		SectorSize:    512,
		Count:         10000,
		Seed:          seed,
	}
}

// NewBipartite builds the generator over the given placement policy.
func NewBipartite(cfg BipartiteConfig, p layout.Placer) *Bipartite {
	if cfg.SmallFraction < 0 || cfg.SmallFraction > 1 ||
		cfg.SmallBytes <= 0 || cfg.LargeBytes <= 0 || cfg.SectorSize <= 0 || cfg.Count <= 0 {
		panic(fmt.Sprintf("workload: invalid bipartite config %+v", cfg))
	}
	return &Bipartite{
		placer:      p,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		smallFrac:   cfg.SmallFraction,
		smallBlocks: (cfg.SmallBytes + cfg.SectorSize - 1) / cfg.SectorSize,
		largeBlocks: (cfg.LargeBytes + cfg.SectorSize - 1) / cfg.SectorSize,
		left:        cfg.Count,
	}
}

// Next implements Source.
func (w *Bipartite) Next() *core.Request {
	if w.left == 0 {
		return nil
	}
	w.left--
	class, blocks := layout.Small, w.smallBlocks
	if w.rng.Float64() >= w.smallFrac {
		class, blocks = layout.Large, w.largeBlocks
	}
	lbn := w.placer.Place(w.rng, class, blocks)
	return &core.Request{Op: core.Read, LBN: lbn, Blocks: blocks}
}

// Thinker is implemented by sources that attach a think-time delay to
// each request. The closed-loop simulator (sim.RunClosed) consults it:
// after a completion, the next request issues only once the most
// recently drawn think time has elapsed, modeling a multiprogrammed
// closed regime (a TPC-C-style terminal pool) instead of the default
// back-to-back loop. Sources that do not implement Thinker keep the
// historical zero-think behavior.
type Thinker interface {
	// ThinkMs returns the think time in milliseconds drawn for the most
	// recent request returned by Next.
	ThinkMs() float64
}

// ThinkDist draws one think time in milliseconds from rng.
type ThinkDist func(rng *rand.Rand) float64

// ExpThink returns an exponential think-time distribution with the
// given mean in milliseconds; a non-positive mean always draws zero.
func ExpThink(meanMs float64) ThinkDist {
	return func(rng *rand.Rand) float64 {
		if meanMs <= 0 {
			return 0
		}
		return rng.ExpFloat64() * meanMs
	}
}

// ThinkSource wraps a Source with per-request think-time draws; see
// ThinkTime.
type ThinkSource struct {
	src  Source
	dist ThinkDist
	rng  *rand.Rand
	last float64
}

// ThinkTime wraps src so every request carries a think-time draw from
// dist, seeded independently of the wrapped stream (the arrival rng is
// untouched, so the request sequence is identical with or without the
// wrapper — only issue timing changes, and only in regimes that consult
// Thinker). A nil dist draws zero think time.
func ThinkTime(src Source, dist ThinkDist, seed int64) *ThinkSource {
	return &ThinkSource{src: src, dist: dist, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Source, drawing the think time that precedes the
// returned request.
func (t *ThinkSource) Next() *core.Request {
	r := t.src.Next()
	if r == nil {
		return nil
	}
	if t.dist == nil {
		t.last = 0
	} else {
		t.last = t.dist(t.rng)
	}
	return r
}

// ThinkMs implements Thinker.
func (t *ThinkSource) ThinkMs() float64 { return t.last }

// Slice drains a source into a slice; tests and experiments use it when
// they need the whole stream at once.
func Slice(s Source) []*core.Request {
	var out []*core.Request
	for r := s.Next(); r != nil; r = s.Next() {
		out = append(out, r)
	}
	return out
}

// FromSlice adapts a pre-built request list into a Source.
type FromSlice struct {
	reqs []*core.Request
	i    int
}

// NewFromSlice wraps reqs; the requests are not copied.
func NewFromSlice(reqs []*core.Request) *FromSlice { return &FromSlice{reqs: reqs} }

// Next implements Source.
func (s *FromSlice) Next() *core.Request {
	if s.i >= len(s.reqs) {
		return nil
	}
	r := s.reqs[s.i]
	s.i++
	return r
}
