// volume.go drives a redundant multi-queue volume (array.Volume)
// through whole-device failure, degraded-mode service, and online
// hot-spare rebuild — the array-scale counterpart of the §6 in-device
// failure machinery. RunVolume is event-driven like RunMulti, but a
// volume request fans out into fork-join phases of member operations
// (mirror replica writes, parity read-modify-write, k-peer degraded
// reconstruction), and a background rebuild process injects throttled
// chunk scans into the same member queues, competing with foreground
// traffic under the configured schedulers.
package sim

import (
	"fmt"

	"memsim/internal/array"
	"memsim/internal/core"
	"memsim/internal/stats"
	"memsim/internal/workload"
)

// DefaultRebuildChunk is the rebuild scan unit in sectors when
// VolumeSpec.RebuildChunk is zero — one MEMS cylinder, matching the
// offline estimate in array.RebuildTime.
const DefaultRebuildChunk = 2700

// VolumeSpec describes a redundant volume run: the geometry/state
// machine, its physical member and spare devices (one scheduler queue
// each), and the online-rebuild policy.
type VolumeSpec struct {
	// Volume is the redundancy state machine; RunVolume resets it.
	Volume *array.Volume
	// Devices backs the volume's member slots then spares, in order;
	// len(Devices) must equal Volume.Config().Devices() and every
	// device must hold at least PerMember sectors.
	Devices []core.Device
	// Scheds provides one scheduler queue per device.
	Scheds []core.Scheduler
	// RebuildChunk is the rebuild scan unit in sectors (0 selects
	// DefaultRebuildChunk).
	RebuildChunk int
	// RebuildFrac throttles the rebuild in (0,1]: after each chunk the
	// rebuilder idles so rebuild I/O occupies roughly this fraction of
	// its timeline (1, or 0 for the default, rebuilds flat out).
	RebuildFrac float64
	// RebuildPolicy, when non-nil, paces the rebuild dynamically and
	// supersedes RebuildFrac; nil selects FixedRebuild{Frac: RebuildFrac}
	// — the historical constant throttle, byte-identical by the golden
	// equivalence suite.
	RebuildPolicy RebuildPolicy
}

// VolumeStats aggregates a RunVolume run's redundancy and failover
// activity. Counters cover the whole run, warmup included.
type VolumeStats struct {
	// DeviceFailures counts the scheduled whole-device failures fired.
	DeviceFailures int
	// RebuildsStarted and RebuildsDone count online rebuilds begun onto
	// a hot spare and completed (the spare permanently replacing the
	// failed member).
	RebuildsStarted, RebuildsDone int
	// RebuildChunks counts completed rebuild scan units.
	RebuildChunks int
	// RebuildMs sums failure→re-protected windows over completed
	// rebuilds: the volume's MTTR.
	RebuildMs float64
	// DegradedMs is the total time the volume served with reduced
	// redundancy (failed member not yet rebuilt, or data lost).
	DegradedMs float64
	// RebuildBusy is the member busy time consumed by rebuild I/O in ms.
	RebuildBusy float64
	// DegradedReads counts foreground reads served by peer
	// reconstruction (mirror survivor fallback is full-speed and not
	// counted; parity reconstruction is).
	DegradedReads int
	// DegradedWrites counts foreground writes executed with reduced
	// redundancy.
	DegradedWrites int
	// SpareReads counts foreground reads satisfied from the rebuilt
	// prefix of the hot spare mid-rebuild.
	SpareReads int
	// PaceChanges counts rebuild-pace changes the policy made mid-rebuild
	// (0 under the default fixed-fraction policy, which never varies).
	PaceChanges int
	// LostRequests counts foreground requests that completed in error
	// because their data was unreachable (lost volume or mid-flight
	// second failure).
	LostRequests int
	// Healthy and Degraded split measured foreground response times
	// (ms) by the volume's redundancy state at completion, so the
	// foreground penalty of degraded mode and rebuild interference is
	// directly readable (p95 included).
	Healthy, Degraded stats.Dist
	// ClassResponse splits response times by scheduling class:
	// measured foreground completions land in their class's slot
	// (foreground or degraded-read), and completed rebuild chunks
	// record their start→finish duration under ClassRebuild (whole
	// run — rebuilds are background work outside the warmup gate).
	// This is what makes a class-aware member scheduler's degraded-read
	// latency bound directly measurable.
	ClassResponse [core.NumClasses]stats.Dist
}

// useSketch flips the volume's response distributions to the bounded
// sketch backend (Options.Sketch).
func (v *VolumeStats) useSketch() {
	v.Healthy.UseSketch()
	v.Degraded.UseSketch()
	for i := range v.ClassResponse {
		v.ClassResponse[i].UseSketch()
	}
}

// volReq tracks one in-flight volume-level intent — a foreground
// request or a background rebuild chunk — through its fork-join phases
// of member operations.
type volReq struct {
	r      *core.Request
	phases [][]array.MemberOp
	// phase indexes the executing entry of phases; outstanding counts
	// its member ops still in flight.
	phase       int
	outstanding int
	// epoch is the volume redundancy generation the plan was made
	// under; a mismatch at issue time forces re-resolution of the
	// remaining phases against the new state.
	epoch int
	// started latches the first member-op dispatch (r.Start).
	started bool
	// qlen is the largest scheduler queue length any member op saw at
	// dispatch.
	qlen int

	rebuild     bool
	chunkBlocks int
	chunkStart  float64

	degradedRead  bool
	degradedWrite bool
	spareRead     bool
}

// volInflight is one member's in-flight service-completion state,
// consumed by the member's reusable completion callback.
type volInflight struct {
	mr    *core.Request
	vr    *volReq
	done  float64
	again bool
}

// RunVolume drives an open-arrival workload over a redundant volume.
// Arrivals plan into member operations under the volume's current
// redundancy state; scheduled device failures (Options.Injector's
// device-event schedule) flip members mid-run, after which reads are
// reconstructed from peers, writes pay the redundancy-update penalty,
// and a hot spare (if configured) is rebuilt online by throttled
// background chunk scans competing in the same member queues. Member
// operations are served through the shared engine visit path, so the
// injector's other fault classes — transient retries, member-queue
// requeues, lost-sector reads, ECC surcharges — apply to every member
// visit too; a member op that exhausts its budgets fails its parent
// volume request.
//
// Member-level operations emit arrive/dispatch/service probe events
// (Dev = physical device index); volume-level requests emit complete
// events; failover emits EventDeviceFail/EventRebuildStart/
// EventRebuildDone (Dev = member slot, Req = nil). Response statistics
// are per volume-level request; rebuild traffic is excluded from them
// but reported in Result.Volume.
//
// With no device failures scheduled the run is deterministic and
// behaviorally identical to a healthy volume.
func RunVolume(ctx *Context, spec VolumeSpec, src workload.Source, opts Options) (Result, error) {
	v := spec.Volume
	if v == nil {
		return Result{}, fmt.Errorf("sim: RunVolume needs a volume")
	}
	cfg := v.Config()
	devs, scheds := spec.Devices, spec.Scheds
	if len(devs) != cfg.Devices() || len(devs) != len(scheds) {
		return Result{}, fmt.Errorf("sim: volume wants %d devices, got %d devices with %d schedulers",
			cfg.Devices(), len(devs), len(scheds))
	}
	if src == nil {
		return Result{}, fmt.Errorf("sim: RunVolume needs a workload source")
	}
	for i, d := range devs {
		if d.Capacity() < cfg.PerMember {
			return Result{}, fmt.Errorf("sim: device %d (%s) holds %d sectors, member needs %d",
				i, d.Name(), d.Capacity(), cfg.PerMember)
		}
	}
	chunk := spec.RebuildChunk
	if chunk == 0 {
		chunk = DefaultRebuildChunk
	}
	if chunk < 0 {
		return Result{}, fmt.Errorf("sim: negative rebuild chunk %d", chunk)
	}
	frac := spec.RebuildFrac
	if frac == 0 {
		frac = 1
	}
	if frac < 0 || frac > 1 {
		return Result{}, fmt.Errorf("sim: rebuild fraction %g out of (0,1]", spec.RebuildFrac)
	}
	policy := spec.RebuildPolicy
	if policy == nil {
		policy = FixedRebuild{Frac: frac}
	}
	policy.Reset()
	if inj := opts.Injector; inj != nil {
		for _, ev := range inj.DeviceEvents() {
			if ev.Dev >= cfg.Members {
				return Result{}, fmt.Errorf("sim: device failure targets member slot %d of %d",
					ev.Dev, cfg.Members)
			}
		}
	}

	v.Reset()
	e := newEngine(ctx, opts)
	ms := newMemberSet(devs, scheds, e)
	finish := e.runVolume(v, ms, src, chunk, policy)
	e.loop()
	e.finalize()
	finish()
	ms.attach(&e.res)
	return e.res, nil
}

// runVolume wires the eager arrival chain to a redundant fork-join
// member set. It returns a closure the adapter must call after the
// event loop drains, closing the still-open degraded window and
// publishing the volume aggregates.
func (e *engine) runVolume(v *array.Volume, ms *memberSet, src workload.Source, chunk int, policy RebuildPolicy) func() {
	var vstats VolumeStats
	if e.opts.Sketch {
		vstats.useSketch()
	}
	// opmap resolves a queued member request back to its volume intent;
	// entries are deleted at dispatch (requeued ops re-register), and
	// the map is never iterated, so determinism is preserved.
	opmap := make(map[*core.Request]*volReq)
	// degradedSince and failStart track the open degraded window and
	// the active failure for MTTR accounting; -1 when closed.
	degradedSince := -1.0
	failStart := -1.0
	// lastPace is the policy's previous duty-cycle decision; -1 marks the
	// first decision of a rebuild, which establishes the baseline without
	// emitting a pace-change event.
	lastPace := -1.0

	var (
		dispatch   func(i int)
		issue      func(vr *volReq, now float64)
		startChunk func(now float64)
		// startChunkFn is the reusable "resume the rebuild" event callback
		// (at most one pending), and inflight/doneFns carry each member's
		// in-flight completion state and its one reusable completion
		// callback — the allocation diet's replacement for a fresh closure
		// per member dispatch.
		startChunkFn func()
		inflight     = make([]volInflight, len(ms.devs))
		doneFns      = make([]func(), len(ms.devs))
	)

	// memberClass tags a member op with its parent intent's scheduling
	// class at enqueue time, after any degraded-mode re-resolution, so
	// class-aware member schedulers see rebuild chunks and degraded
	// reconstruction reads for what they are.
	memberClass := func(vr *volReq) core.Class {
		switch {
		case vr.rebuild:
			return core.ClassRebuild
		case vr.degradedRead:
			return core.ClassDegradedRead
		default:
			return core.ClassForeground
		}
	}

	enqueue := func(vr *volReq, op array.MemberOp, now float64) {
		dev := v.DeviceOf(op.Slot)
		mr := &core.Request{Arrival: vr.r.Arrival, Op: op.Op, LBN: op.LBN, Blocks: op.Blocks,
			Class: memberClass(vr)}
		opmap[mr] = vr
		ms.scheds[dev].Add(mr)
		if e.p != nil {
			e.p.Observe(ProbeEvent{Kind: EventArrive, Time: now, Dev: dev, Req: mr,
				Queue: ms.scheds[dev].Len()})
		}
		dispatch(dev)
	}

	// remap re-resolves the remaining phases of a stale plan against the
	// current redundancy state (after a failure or completed rebuild);
	// it may mark the parent request failed when its data is gone.
	remap := func(vr *volReq) {
		vr.epoch = v.Epoch()
		for pi := vr.phase; pi < len(vr.phases); pi++ {
			var resolved []array.MemberOp
			for _, op := range vr.phases[pi] {
				repl, recon, ok := v.ReplaceDeadOp(op)
				if !ok {
					vr.r.Failed = true
				}
				if recon && !vr.rebuild && vr.r.Op == core.Read {
					vr.degradedRead = true
				}
				resolved = append(resolved, repl...)
			}
			vr.phases[pi] = resolved
		}
	}

	// onDone folds the completing volume request (curVR, set by
	// finishReq) into the volume tallies. complete invokes it
	// synchronously, so one shared closure replaces a fresh one per
	// completion.
	var curVR *volReq
	onDone := func(measured bool) {
		vr := curVR
		r := vr.r
		// The volume keeps its own fault tallies (classify would
		// double-count): a failed foreground request is a lost
		// request at volume scope whatever first broke it.
		if r.Failed {
			e.res.FailedRequests++
			vstats.LostRequests++
			if r.Op == core.Read {
				e.res.LostReads++
			}
		}
		if vr.degradedRead {
			e.res.DegradedReads++
			vstats.DegradedReads++
		}
		if vr.degradedWrite {
			vstats.DegradedWrites++
		}
		if vr.spareRead {
			vstats.SpareReads++
		}
		if measured {
			if v.Degraded() || v.Lost() {
				vstats.Degraded.Add(r.ResponseTime())
			} else {
				vstats.Healthy.Add(r.ResponseTime())
			}
			vstats.ClassResponse[r.Class].Add(r.ResponseTime())
		}
	}

	finishReq := func(vr *volReq, now float64) {
		r := vr.r
		r.Finish = now
		r.Degraded = vr.degradedRead
		r.Class = memberClass(vr)
		curVR = vr
		e.complete(now, r, 0, vr.qlen, r.ResponseTime(), r.ServiceTime(), false, onDone)
	}

	chunkDone := func(vr *volReq, now float64) {
		if v.Lost() || !v.Rebuilding() {
			return // a second failure killed the rebuild mid-chunk
		}
		if vr.r.Failed {
			// A fault-injected member op exhausted its budgets mid-chunk:
			// the rebuild cursor did not advance, so re-scan the same
			// chunk rather than silently abandoning the rebuild.
			e.q.Schedule(now, startChunkFn)
			return
		}
		vstats.RebuildChunks++
		vstats.ClassResponse[core.ClassRebuild].Add(now - vr.chunkStart)
		v.Advance(vr.chunkBlocks)
		if v.RebuildDone() {
			slot := v.Failed()
			v.FinishRebuild()
			vstats.RebuildsDone++
			vstats.RebuildMs += now - failStart
			vstats.DegradedMs += now - degradedSince
			degradedSince, failStart = -1, -1
			if e.p != nil {
				e.p.Observe(ProbeEvent{Kind: EventRebuildDone, Time: now, Dev: slot})
			}
			return
		}
		// Throttle: ask the policy for the next duty cycle and idle after
		// the chunk so rebuild I/O occupies ~pace of the rebuilder's
		// timeline. At this instant every rebuild member op has completed,
		// so the summed queue depth is pure foreground backlog.
		fg := 0
		for i := range ms.scheds {
			fg += ms.scheds[i].Len()
		}
		pace := clampPace(policy.Pace(fg))
		if lastPace >= 0 && pace != lastPace {
			vstats.PaceChanges++
			if e.p != nil {
				e.p.Observe(ProbeEvent{Kind: EventRebuildPace, Time: now, Dev: v.Failed(),
					Queue: fg, Pace: pace})
			}
		}
		lastPace = pace
		gap := 0.0
		if pace < 1 {
			gap = (now - vr.chunkStart) * (1 - pace) / pace
		}
		e.q.Schedule(now+gap, startChunkFn)
	}

	finish := func(vr *volReq, now float64) {
		if vr.rebuild {
			chunkDone(vr, now)
			return
		}
		finishReq(vr, now)
	}

	// issue advances a volume intent to its next non-empty phase and
	// forks that phase's member operations into the queues.
	issue = func(vr *volReq, now float64) {
		for {
			if vr.epoch != v.Epoch() {
				remap(vr)
			}
			if vr.r.Failed || vr.phase >= len(vr.phases) {
				finish(vr, now)
				return
			}
			ops := vr.phases[vr.phase]
			if len(ops) == 0 {
				vr.phase++
				continue
			}
			vr.outstanding = len(ops)
			for _, op := range ops {
				enqueue(vr, op, now)
			}
			return
		}
	}

	opDone := func(vr *volReq, now float64) {
		vr.outstanding--
		if vr.outstanding > 0 {
			return
		}
		vr.phase++
		issue(vr, now)
	}

	dispatch = func(i int) {
		if ms.busy[i] || e.stopped {
			return
		}
		now := e.q.Now()
		qlen := ms.scheds[i].Len()
		mr := ms.scheds[i].Next(ms.devs[i], now)
		if mr == nil {
			return
		}
		ms.busy[i] = true
		vr := opmap[mr]
		delete(opmap, mr)
		if !vr.started {
			vr.started = true
			vr.r.Start = now
		}
		if qlen > vr.qlen {
			vr.qlen = qlen
		}
		if e.p != nil {
			e.p.Observe(ProbeEvent{Kind: EventDispatch, Time: now, Dev: i, Req: mr, Queue: qlen,
				Class: mr.Class})
		}
		// The shared visit path accumulates the member op's phase
		// breakdown into the parent volume request and applies fault
		// injection (transient retries, lost-sector reads, surcharges).
		svc, bd, again := e.serveVisit(ms.devs[i], mr, vr.r, i, now)
		mr.Start, mr.Finish = now, now+svc
		ms.members[i].Requests++
		ms.members[i].Busy += svc
		e.res.Busy += svc
		if vr.rebuild {
			vstats.RebuildBusy += svc
		}
		if ms.phases != nil {
			ms.phases[i].add(bd, mr.Class)
		}
		fl := &inflight[i]
		fl.mr, fl.vr, fl.done, fl.again = mr, vr, now+svc, again
		e.q.Schedule(now+svc, doneFns[i])
	}

	for i := range doneFns {
		i := i
		doneFns[i] = func() {
			fl := &inflight[i]
			mr, vr := fl.mr, fl.vr
			ms.busy[i] = false
			if fl.again {
				// The visit exhausted its retries with requeue budget
				// left: the member op goes back to its own queue and the
				// fork-join leg stays outstanding.
				opmap[mr] = vr
				requeue(ms.scheds[i], mr)
				if e.p != nil {
					e.p.Observe(ProbeEvent{Kind: EventRequeue, Time: fl.done, Dev: i, Req: mr,
						Queue: ms.scheds[i].Len()})
				}
			} else {
				if mr.Failed {
					// The member op exhausted every budget (or addressed
					// lost sectors): its parent volume request fails.
					vr.r.Failed = true
				}
				opDone(vr, e.q.Now())
			}
			dispatch(i)
		}
	}

	startChunk = func(now float64) {
		if e.stopped || v.Lost() || !v.Rebuilding() {
			return
		}
		plan, blocks := v.PlanRebuildChunk(chunk)
		if blocks == 0 {
			return
		}
		vr := &volReq{
			r:           &core.Request{Arrival: now, Op: core.Read, LBN: -1, Blocks: blocks, Class: core.ClassRebuild},
			phases:      plan.Phases,
			epoch:       v.Epoch(),
			rebuild:     true,
			chunkBlocks: blocks,
			chunkStart:  now,
		}
		issue(vr, now)
	}
	startChunkFn = func() { startChunk(e.q.Now()) }

	// drainDead empties a dead device's queue, re-resolving each queued
	// member operation against the post-failure state (peer
	// reconstruction, spare redirection, or dropped redundancy writes);
	// an op whose data is unreachable fails its parent request. The op
	// in service, if any, completes normally — it was already on the
	// bus when the device died.
	drainDead := func(devIdx, slot int, now float64) {
		for {
			mr := ms.scheds[devIdx].Next(ms.devs[devIdx], now)
			if mr == nil {
				return
			}
			vr := opmap[mr]
			delete(opmap, mr)
			repl, recon, ok := v.ReplaceDeadOp(array.MemberOp{
				Slot: slot, Op: mr.Op, LBN: mr.LBN, Blocks: mr.Blocks})
			if !ok {
				vr.r.Failed = true
			}
			if recon && !vr.rebuild && vr.r.Op == core.Read {
				vr.degradedRead = true
			}
			vr.outstanding += len(repl) - 1
			for _, rop := range repl {
				enqueue(vr, rop, now)
			}
			if vr.outstanding == 0 {
				vr.phase++
				issue(vr, now)
			}
		}
	}

	failSlot := func(slot int, now float64) {
		if v.Lost() || slot == v.Failed() {
			return
		}
		deadDev := v.SlotDevice(slot)
		first := !v.Degraded()
		if err := v.Fail(slot); err != nil {
			return // unreachable: slots were validated upfront
		}
		vstats.DeviceFailures++
		if first {
			degradedSince, failStart = now, now
		}
		if e.p != nil {
			e.p.Observe(ProbeEvent{Kind: EventDeviceFail, Time: now, Dev: slot})
		}
		if v.Lost() {
			e.res.DataLoss = true
		}
		drainDead(deadDev, slot, now)
		if first && !v.Lost() && v.BeginRebuild() {
			vstats.RebuildsStarted++
			lastPace = -1 // each rebuild re-baselines the pace
			if e.p != nil {
				e.p.Observe(ProbeEvent{Kind: EventRebuildStart, Time: now, Dev: slot})
			}
			startChunk(now)
		}
	}

	// Scheduled device failures fire from the injector's device-event
	// schedule; they are enqueued before the arrival chain so a failure
	// coinciding with an arrival fires first (stable FIFO ties).
	if e.inj != nil {
		for _, ev := range e.inj.DeviceEvents() {
			ev := ev
			e.q.Schedule(ev.AtMs, func() { failSlot(ev.Dev, e.q.Now()) })
		}
	}
	// Arrival chain: plan each foreground request under the current
	// redundancy state and fork its first phase.
	e.chainArrivals(src, func(r *core.Request) {
		now := e.q.Now()
		var (
			plan array.Plan
			ok   bool
		)
		if r.Op == core.Read {
			plan, ok = v.PlanRead(r.LBN, r.Blocks)
		} else {
			plan, ok = v.PlanWrite(r.LBN, r.Blocks)
		}
		vr := &volReq{r: r, epoch: v.Epoch()}
		if !ok {
			// The addressed data is lost: fail without touching a device
			// rather than silently serving stale sectors.
			r.Failed = true
			r.Start = now
			vr.started = true
		} else {
			vr.phases = plan.Phases
			if r.Op == core.Read {
				vr.degradedRead = plan.Reconstructed
				vr.spareRead = plan.SpareRead
			} else {
				vr.degradedWrite = plan.DegradedWrite
			}
		}
		issue(vr, now)
	})

	return func() {
		if degradedSince >= 0 {
			vstats.DegradedMs += e.res.Elapsed - degradedSince
		}
		if v.Lost() {
			e.res.DataLoss = true
		}
		e.res.Volume = &vstats
	}
}
