package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"

	"memsim/internal/core"
	"memsim/internal/disk"
	"memsim/internal/fault"
	"memsim/internal/mems"
	"memsim/internal/sched"
	"memsim/internal/workload"
)

// recordingProbe keeps every observed event for assertion.
type recordingProbe struct {
	events []ProbeEvent
	resets int
}

func (r *recordingProbe) Observe(ev ProbeEvent) { r.events = append(r.events, ev) }
func (r *recordingProbe) ResetProbe()           { r.events = nil; r.resets++ }

func (r *recordingProbe) count(k EventKind) int {
	n := 0
	for _, ev := range r.events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

func TestNilProbeByteIdentical(t *testing.T) {
	// The tentpole's acceptance bar: attaching a probe must not perturb
	// the simulation. Result is a comparable value (Phases is nil without
	// a collector), so == checks every statistic at full float precision.
	d := mems.MustDevice(mems.DefaultConfig())
	run := func(p Probe) Result {
		src := workload.DefaultRandom(1100, 512, d.Capacity(), 3000, 7)
		return Run(nil, d, sched.NewSPTF(), src, Options{Warmup: 200, Probe: p})
	}
	if plain, probed := run(nil), run(&recordingProbe{}); !reflect.DeepEqual(plain, probed) {
		t.Errorf("probed open run diverged:\n  plain:  %+v\n  probed: %+v", plain, probed)
	}

	closed := func(p Probe) Result {
		src := workload.DefaultRandom(900, 512, d.Capacity(), 2000, 11)
		return RunClosed(nil, d, src, Options{Warmup: 100, Probe: p})
	}
	if plain, probed := closed(nil), closed(&recordingProbe{}); !reflect.DeepEqual(plain, probed) {
		t.Errorf("probed closed run diverged:\n  plain:  %+v\n  probed: %+v", plain, probed)
	}

	multi := func(p Probe) Result {
		devs, scheds := multiFixtures(2, 1.5)
		src := workload.NewFromSlice(mkReqs(make([]float64, 200)))
		res, err := RunMulti(nil, devs, scheds, ConcatRouter(1<<29), src, Options{Warmup: 20, Probe: p})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if plain, probed := multi(nil), multi(&recordingProbe{}); !reflect.DeepEqual(plain, probed) {
		t.Errorf("probed multi run diverged:\n  plain:  %+v\n  probed: %+v", plain, probed)
	}

	// Under fault injection too: retries and requeues ride the same path.
	cfg := fault.DefaultInjectorConfig()
	cfg.TransientRate = 0.1
	cfg.Seed = 3
	faulty := func(p Probe) Result {
		inj, err := fault.NewInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := workload.DefaultRandom(1100, 512, d.Capacity(), 2000, 13)
		return Run(nil, d, sched.NewSPTF(), src, Options{Warmup: 100, Injector: inj, Probe: p})
	}
	if plain, probed := faulty(nil), faulty(&recordingProbe{}); !reflect.DeepEqual(plain, probed) {
		t.Errorf("probed faulty run diverged:\n  plain:  %+v\n  probed: %+v", plain, probed)
	}
}

func TestProbeEventSequence(t *testing.T) {
	// Well-separated arrivals on a fixed device: every request's
	// lifecycle is arrive → dispatch → service → complete, with no
	// interleaving between requests.
	d := &fixedDevice{svc: 2}
	rp := &recordingProbe{}
	src := workload.NewFromSlice(mkReqs([]float64{0, 100, 200}))
	res := Run(nil, d, sched.NewFCFS(), src, Options{Probe: rp})
	if res.Requests != 3 {
		t.Fatalf("requests = %d", res.Requests)
	}
	want := []EventKind{
		EventArrive, EventDispatch, EventService, EventComplete,
		EventArrive, EventDispatch, EventService, EventComplete,
		EventArrive, EventDispatch, EventService, EventComplete,
	}
	if len(rp.events) != len(want) {
		t.Fatalf("got %d events, want %d", len(rp.events), len(want))
	}
	for i, ev := range rp.events {
		if ev.Kind != want[i] {
			t.Errorf("event %d = %v, want %v", i, ev.Kind, want[i])
		}
	}
	// The service event carries the visit's breakdown; an undecomposed
	// device reports everything as unattributed service.
	svc := rp.events[2]
	if svc.Breakdown.ServiceMs != 2 || svc.Breakdown.PhaseSum() != 0 {
		t.Errorf("fixed-device breakdown = %+v", svc.Breakdown)
	}
	// Dispatch queue length counts the dispatched request itself.
	if q := rp.events[1].Queue; q != 1 {
		t.Errorf("dispatch queue = %d, want 1", q)
	}
}

func TestProbeCountsMatchResult(t *testing.T) {
	// Event counts must reconcile with the run's aggregate counters, retry
	// and requeue events included.
	d := mems.MustDevice(mems.DefaultConfig())
	cfg := fault.DefaultInjectorConfig()
	cfg.TransientRate = 0.25
	cfg.Seed = 41
	inj, err := fault.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rp := &recordingProbe{}
	src := workload.DefaultRandom(1000, 512, d.Capacity(), 2000, 19)
	res := Run(nil, d, sched.NewSPTF(), src, Options{Warmup: 100, Injector: inj, Probe: rp})

	if got := rp.count(EventRetry); got != res.Retries {
		t.Errorf("retry events = %d, want Result.Retries = %d", got, res.Retries)
	}
	if got := rp.count(EventRequeue); got != res.Requeues {
		t.Errorf("requeue events = %d, want Result.Requeues = %d", got, res.Requeues)
	}
	arrives, completes := rp.count(EventArrive), rp.count(EventComplete)
	if arrives != completes {
		t.Errorf("arrive events = %d, complete events = %d", arrives, completes)
	}
	// Each requeue adds one extra dispatch and service visit.
	if d, s := rp.count(EventDispatch), rp.count(EventService); d != completes+res.Requeues || s != d {
		t.Errorf("dispatch=%d service=%d, want %d", d, s, completes+res.Requeues)
	}
	measured := 0
	for _, ev := range rp.events {
		if ev.Kind == EventComplete && ev.Measured {
			measured++
		}
	}
	if measured != res.Requests {
		t.Errorf("measured completes = %d, want Result.Requests = %d", measured, res.Requests)
	}
	if res.Retries == 0 || res.Requeues == 0 {
		t.Fatalf("weak fixture: retries=%d requeues=%d", res.Retries, res.Requeues)
	}
}

func TestPhaseReconciliation(t *testing.T) {
	// Acceptance criterion: per-phase sums reconcile with the exact
	// service time within 1e-9 ms, for both device models, per request.
	for _, tc := range []struct {
		name string
		dev  core.Device
		rate float64
	}{
		{"mems", mems.MustDevice(mems.DefaultConfig()), 1000},
		{"disk", disk.MustDevice(disk.Atlas10K()), 55},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pc := NewPhaseCollector()
			src := workload.DefaultRandom(tc.rate, 512, tc.dev.Capacity(), 2000, 23)
			res := Run(nil, tc.dev, sched.NewSPTF(), src, Options{Warmup: 100, Probe: pc})
			ps := res.Phases
			if ps == nil {
				t.Fatal("Result.Phases nil with an attached collector")
			}
			if ps.Requests != res.Requests {
				t.Fatalf("collector saw %d requests, run measured %d", ps.Requests, res.Requests)
			}
			if r := math.Max(math.Abs(ps.Unattributed.Min()), math.Abs(ps.Unattributed.Max())); r > 1e-9 {
				t.Errorf("phase sums miss service time by up to %g ms", r)
			}
			// The collector's service distribution matches the run's: same
			// count, and means apart only by float residue (the run measures
			// Finish−Start where the collector sums per-visit service).
			if math.Abs(ps.Service.Mean()-res.Service.Mean()) > 1e-9 || ps.Service.N() != res.Service.N() {
				t.Errorf("service mean %g (n=%d) != run's %g (n=%d)",
					ps.Service.Mean(), ps.Service.N(), res.Service.Mean(), res.Service.N())
			}
			// Every phase must be represented on these workloads except
			// recovery (no injector) — and turnaround only on the disk
			// (head switches; the MEMS model's X/Y overlap hides none).
			if ps.Seek.Max() == 0 || ps.Settle.Max() == 0 || ps.Transfer.Max() == 0 || ps.Overhead.Max() == 0 {
				t.Errorf("empty phase: seek=%g settle=%g transfer=%g overhead=%g",
					ps.Seek.Max(), ps.Settle.Max(), ps.Transfer.Max(), ps.Overhead.Max())
			}
			if ps.Recovery.Max() != 0 {
				t.Errorf("recovery = %g without an injector", ps.Recovery.Max())
			}
		})
	}
}

func TestPhaseReconciliationUnderInjection(t *testing.T) {
	// Retry penalties and ECC surcharges land in the recovery phase and
	// keep the per-request reconciliation exact.
	d := mems.MustDevice(mems.DefaultConfig())
	cfg := fault.DefaultInjectorConfig()
	cfg.TransientRate = 0.2
	cfg.Seed = 67
	inj, err := fault.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPhaseCollector()
	src := workload.DefaultRandom(1000, 512, d.Capacity(), 2000, 31)
	res := Run(nil, d, sched.NewSPTF(), src, Options{Warmup: 100, Injector: inj, Probe: pc})
	ps := res.Phases
	if res.Retries == 0 {
		t.Fatal("weak fixture: no retries")
	}
	if ps.Recovery.Max() == 0 {
		t.Error("no recovery time collected despite retries")
	}
	if r := math.Max(math.Abs(ps.Unattributed.Min()), math.Abs(ps.Unattributed.Max())); r > 1e-9 {
		t.Errorf("phase sums miss service time by up to %g ms under injection", r)
	}
}

func TestPhaseCollectorInClosedAndMultiRuns(t *testing.T) {
	d := mems.MustDevice(mems.DefaultConfig())
	pc := NewPhaseCollector()
	src := workload.DefaultRandom(900, 512, d.Capacity(), 1000, 37)
	res := RunClosed(nil, d, src, Options{Warmup: 50, Probe: pc})
	if res.Phases == nil || res.Phases.Requests != res.Requests {
		t.Fatalf("closed run phases = %+v, requests %d", res.Phases, res.Requests)
	}
	if r := math.Abs(res.Phases.Unattributed.Max()); r > 1e-9 {
		t.Errorf("closed-run phase residue %g", r)
	}

	devs := []core.Device{
		mems.MustDevice(mems.DefaultConfig()),
		mems.MustDevice(mems.DefaultConfig()),
	}
	scheds := []core.Scheduler{sched.NewFCFS(), sched.NewFCFS()}
	per := devs[0].Capacity()
	gen := workload.DefaultRandom(1500, 512, 2*per, 1000, 43)
	pc2 := NewPhaseCollector()
	mres, err := RunMulti(nil, devs, scheds, ConcatRouter(per), gen, Options{Warmup: 50, Probe: pc2})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Phases == nil || mres.Phases.Requests != mres.Requests {
		t.Fatalf("multi run phases = %+v, requests %d", mres.Phases, mres.Requests)
	}
	if r := math.Max(math.Abs(mres.Phases.Unattributed.Min()), math.Abs(mres.Phases.Unattributed.Max())); r > 1e-9 {
		t.Errorf("multi-run phase residue %g", r)
	}
}

func TestProbeResetBetweenRuns(t *testing.T) {
	// Reusing one Options value across runs must start each run's
	// collector fresh, like the device and injector.
	d := &fixedDevice{svc: 1}
	pc := NewPhaseCollector()
	opts := Options{Probe: pc}
	src1 := workload.NewFromSlice(mkReqs(make([]float64, 10)))
	Run(nil, d, sched.NewFCFS(), src1, opts)
	src2 := workload.NewFromSlice(mkReqs(make([]float64, 4)))
	res := Run(nil, d, sched.NewFCFS(), src2, opts)
	if res.Phases.Requests != 4 {
		t.Errorf("second run collected %d requests, want 4 (stale state)", res.Phases.Requests)
	}
}

func TestWithRunLabelsEvents(t *testing.T) {
	rp := &recordingProbe{}
	p := WithRun(rp, "job-1")
	p.Observe(ProbeEvent{Kind: EventArrive, Req: &core.Request{}})
	if len(rp.events) != 1 || rp.events[0].Run != "job-1" {
		t.Fatalf("events = %+v", rp.events)
	}
	if WithRun(nil, "x") != nil {
		t.Error("WithRun(nil) should be nil")
	}
	// The label wrapper deliberately shields the shared probe from
	// per-run resets (the runner shares one probe across jobs)...
	resetProbe(p)
	if rp.resets != 0 {
		t.Errorf("reset leaked through the run-label wrapper %d times", rp.resets)
	}
	// ...but a collector inside the wrapper is still discoverable for
	// Result.Phases.
	pc := NewPhaseCollector()
	if findPhaseCollector(WithRun(pc, "j")) != pc {
		t.Error("collector not found through the run-label wrapper")
	}
}

func TestMultiProbeFanOut(t *testing.T) {
	a, b := &recordingProbe{}, &recordingProbe{}
	m := MultiProbe{a, nil, b}
	m.Observe(ProbeEvent{Kind: EventComplete, Req: &core.Request{}})
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Errorf("fan-out reached a=%d b=%d", len(a.events), len(b.events))
	}
	resetProbe(m)
	if a.resets != 1 || b.resets != 1 {
		t.Errorf("resets a=%d b=%d, want 1/1", a.resets, b.resets)
	}
	pc := NewPhaseCollector()
	if findPhaseCollector(MultiProbe{a, pc}) != pc {
		t.Error("collector not found inside MultiProbe")
	}
	if findPhaseCollector(MultiProbe{a, b}) != nil {
		t.Error("found a collector where none exists")
	}
}

func TestRunMultiProbeEvents(t *testing.T) {
	devs, scheds := multiFixtures(2, 1)
	rp := &recordingProbe{}
	reqs := mkReqs(make([]float64, 40))
	for i, r := range reqs {
		r.LBN = int64(i%2) * 100
	}
	res, err := RunMulti(nil, devs, scheds, ConcatRouter(100), workload.NewFromSlice(reqs),
		Options{Warmup: 10, Probe: rp})
	if err != nil {
		t.Fatal(err)
	}
	if rp.count(EventArrive) != 40 || rp.count(EventDispatch) != 40 ||
		rp.count(EventService) != 40 || rp.count(EventComplete) != 40 {
		t.Errorf("event counts: arrive=%d dispatch=%d service=%d complete=%d, want 40 each",
			rp.count(EventArrive), rp.count(EventDispatch), rp.count(EventService), rp.count(EventComplete))
	}
	seen := map[int]bool{}
	for _, ev := range rp.events {
		seen[ev.Dev] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("events covered devices %v, want both", seen)
	}
	measured := 0
	for _, ev := range rp.events {
		if ev.Kind == EventComplete && ev.Measured {
			measured++
		}
	}
	if measured != res.Requests {
		t.Errorf("measured completes = %d, want %d", measured, res.Requests)
	}
}

func TestJSONLProbeOutput(t *testing.T) {
	d := mems.MustDevice(mems.DefaultConfig())
	var buf bytes.Buffer
	jp := NewJSONLProbe(&buf)
	src := workload.DefaultRandom(800, 512, d.Capacity(), 50, 3)
	res := Run(nil, d, sched.NewFCFS(), src, Options{Warmup: 5, Probe: WithRun(jp, "unit")})
	if err := jp.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 4*50 {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), 4*50)
	}
	kinds := map[string]int{}
	measured := 0
	for i, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal(ln, &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, ln)
		}
		ev := rec["event"].(string)
		kinds[ev]++
		if rec["run"] != "unit" {
			t.Fatalf("line %d run = %v", i, rec["run"])
		}
		switch ev {
		case "service":
			ph, ok := rec["phases"].(map[string]any)
			if !ok {
				t.Fatalf("service line %d lacks phases: %s", i, ln)
			}
			sum := ph["seek_ms"].(float64) + ph["settle_ms"].(float64) +
				ph["turnaround_ms"].(float64) + ph["transfer_ms"].(float64) +
				ph["overhead_ms"].(float64) + ph["recovery_ms"].(float64)
			if math.Abs(sum-ph["service_ms"].(float64)) > 1e-9 {
				t.Fatalf("service line %d phases sum %g != service %g", i, sum, ph["service_ms"])
			}
		case "complete":
			sum, ok := rec["summary"].(map[string]any)
			if !ok {
				t.Fatalf("complete line %d lacks summary: %s", i, ln)
			}
			if sum["measured"].(bool) {
				measured++
			}
		}
	}
	if kinds["arrive"] != 50 || kinds["dispatch"] != 50 || kinds["service"] != 50 || kinds["complete"] != 50 {
		t.Errorf("event kinds = %v", kinds)
	}
	if measured != res.Requests {
		t.Errorf("measured lines = %d, want %d", measured, res.Requests)
	}
}

// failWriter fails after n bytes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestJSONLProbeLatchesWriteError(t *testing.T) {
	jp := NewJSONLProbe(&failWriter{n: 64})
	for i := 0; i < 100; i++ {
		jp.Observe(ProbeEvent{Kind: EventArrive, Req: &core.Request{Op: core.Read, Blocks: 1}})
	}
	if err := jp.Flush(); err == nil {
		t.Fatal("Flush swallowed the write error")
	}
}

func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EventArrive: "arrive", EventDispatch: "dispatch", EventService: "service",
		EventRetry: "retry", EventRequeue: "requeue", EventComplete: "complete",
		EventKind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestBreakdownAccumulateAndResidue(t *testing.T) {
	a := core.Breakdown{Seek: 1, Settle: 0.5, Transfer: 0.25, ServiceMs: 1.75, Segments: 1}
	b := core.Breakdown{Seek: 2, Turnaround: 0.1, Transfer: 0.5, Overhead: 0.2, Recovery: 3, ServiceMs: 5.8, Segments: 2}
	a.Accumulate(b)
	if a.Seek != 3 || a.Settle != 0.5 || a.Turnaround != 0.1 || a.Transfer != 0.75 ||
		a.Overhead != 0.2 || a.Recovery != 3 || a.ServiceMs != 7.55 || a.Segments != 3 {
		t.Errorf("accumulated = %+v", a)
	}
	if got := a.Positioning(); math.Abs(got-3.6) > 1e-12 {
		t.Errorf("positioning = %g", got)
	}
	if got := a.Unattributed(); math.Abs(got) > 1e-12 {
		t.Errorf("unattributed = %g", got)
	}
	if a.Total() != a.ServiceMs {
		t.Errorf("total = %g", a.Total())
	}
}
