// engine.go is the single discrete-event core behind every simulation
// entry point. The four public regimes — Run (open arrivals), RunClosed
// (back-to-back with optional think time), RunMulti (routed member set),
// RunVolume (redundant fork-join volume) — are thin adapters that wire
// three plug points into one engine:
//
//   - an arrival process: a lazy open-arrival pump (runOpen), a closed
//     issue chain with per-request think-time draws (runClosed), or an
//     eager arrival chain (chainArrivals, used by multi and volume);
//   - a service target: a single device+scheduler, or a memberSet of
//     per-device queues addressed by a Router or an array.Volume plan;
//   - a shared completion path (complete): warmup gating, failed-request
//     exclusion, probe emission, progress, MaxRequests stop.
//
// Every service visit in every regime flows through serveVisit, so
// fault injection — transient retries, requeues, lost-sector reads, ECC
// surcharges — behaves identically whether the request is served by a
// lone device, a striped member, or a volume fork-join leg.
//
// Determinism contract: the engine schedules at most one pending
// arrival per source (chained), one completion per busy device, and
// regime-specific background events (rebuild chunks, device failures)
// on a stable-FIFO EventQueue, so identical inputs replay an identical
// event sequence — and therefore identical statistics and probe streams
// — regardless of host or probe attachment.
package sim

import (
	"fmt"

	"memsim/internal/core"
	"memsim/internal/fault"
	"memsim/internal/workload"
)

// engine holds one run's shared state: the event queue, the accumulated
// Result, and the observability plumbing every regime threads through.
type engine struct {
	ctx  *Context
	opts Options
	inj  *fault.Injector
	p    Probe
	q    EventQueue
	res  Result

	arrived   int
	completed int
	stopped   bool
	runErr    error
	check     *InvariantProbe
}

// newEngine builds an engine for one run, resetting the injector and
// any run-scoped probe state. Devices and schedulers are reset by the
// regime adapters, which own them.
func newEngine(ctx *Context, opts Options) *engine {
	e := &engine{ctx: ctx, opts: opts, inj: opts.Injector, p: opts.Probe}
	if e.inj != nil {
		e.inj.Reset()
	}
	resetProbe(e.p)
	if opts.Sketch {
		applySketch(e.p)
	}
	if opts.Check {
		e.check = NewInvariantProbe()
		if e.p == nil {
			e.p = e.check
		} else {
			e.p = MultiProbe{e.p, e.check}
		}
	}
	return e
}

// loop dispatches events until the queue drains or a regime stops the
// run (MaxRequests, router error). With a cancellable Context the loop
// additionally polls the cancellation channel every CancelEvery events;
// the common uncancellable case keeps the bare dispatch loop.
func (e *engine) loop() {
	done := e.ctx.done()
	if done == nil {
		for !e.stopped && e.q.Step() {
		}
		return
	}
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	cancel := func() {
		e.stopped = true
		e.res.Cancelled = true
	}
	if cancelled() {
		// Already cancelled (an expired deadline, a batch-wide interrupt
		// before this job started): stop before dispatching anything.
		cancel()
		return
	}
	every := e.ctx.CancelEvery
	if every <= 0 {
		every = DefaultCancelEvery
	}
	for n := 0; !e.stopped && e.q.Step(); {
		if n++; n%every == 0 && cancelled() {
			cancel()
		}
	}
}

// finalize closes the run: elapsed time, phase aggregates, and data
// loss latched from the injector's redundancy array. In check mode it
// then verifies the end-of-run invariants — every top-level arrival was
// completed when the run drained naturally, and the attached
// InvariantProbe saw no per-event violations — panicking on failure
// (the EventQueue convention: an invariant violation is a simulation
// bug, not an operational error).
func (e *engine) finalize() {
	e.res.Elapsed = e.q.Now()
	e.res.Phases = phaseStats(e.p)
	if e.inj != nil && e.inj.Array() != nil && e.inj.Array().DataLoss() {
		e.res.DataLoss = true
	}
	for _, iv := range findInvariantProbes(e.p) {
		iv.finishRun(&e.res)
	}
	if e.opts.Check {
		if !e.stopped && e.arrived != e.completed {
			panic(fmt.Sprintf("sim: invariant violated: %d arrivals but %d completions in a drained run", e.arrived, e.completed))
		}
		if err := e.check.Err(); err != nil {
			panic(err.Error())
		}
	}
}

// serveVisit runs one service visit for r on d at time now, applying
// fault injection when the engine carries an injector: scheduled tip
// events fire first, then transient positioning errors are retried
// inline — each charged the device's §6.1.3 recovery penalty — up to
// the injector's per-visit budget, and surviving degraded-stripe reads
// pay ECC reconstruction. It returns the visit's total device time,
// the visit's phase breakdown (zero unless a probe is attached), and
// whether the request must go back to its scheduler for another visit.
//
// r is the request the device serves (a member op under multi/volume);
// sink is the request whose Phases accumulate the breakdown (the
// volume-level parent under RunVolume, r itself elsewhere); dev tags
// probe events with the member index (0 for single-device regimes).
func (e *engine) serveVisit(d core.Device, r, sink *core.Request, dev int, now float64) (svc float64, bd core.Breakdown, again bool) {
	p := e.p
	serviced := func() {
		if p == nil {
			return
		}
		sink.Phases.Accumulate(bd)
		p.Observe(ProbeEvent{Kind: EventService, Time: now + svc, Dev: dev, Req: r, Breakdown: bd})
	}
	inj := e.inj
	if inj == nil {
		svc = d.Access(r, now)
		if p != nil {
			bd = breakdownOf(d, svc)
			serviced()
		}
		return svc, bd, false
	}
	inj.Advance(now)
	svc = d.Access(r, now)
	if p != nil {
		bd = breakdownOf(d, svc)
	}
	if r.Op == core.Read && inj.LostBlocks(r.LBN, r.Blocks) > 0 {
		// The addressed sectors are unrecoverable (stripe past its ECC
		// budget): the request fails outright — no retry or requeue can
		// bring the data back, and serving it silently would be a
		// correctness bug, not a performance event.
		r.Failed = true
		e.res.LostReads++
		serviced()
		return svc, bd, false
	}
	retries := 0
	for inj.TransientError() {
		if retries >= inj.MaxRetries() {
			// The visit failed: requeue while budget remains, else the
			// request completes in error.
			if r.Requeues < inj.MaxRequeues() {
				r.Requeues++
				e.res.Requeues++
				serviced()
				return svc, bd, true
			}
			r.Failed = true
			serviced()
			return svc, bd, false
		}
		pen := inj.FallbackPenaltyMs()
		if rm, ok := d.(core.RecoveryModel); ok {
			pen = rm.ErrorPenalty(r, now+svc, inj.Draw())
		}
		retries++
		r.Retries++
		r.RecoveryMs += pen
		e.res.Retries++
		e.res.RecoveryMs += pen
		svc += pen
		if p != nil {
			bd.Recovery += pen
			bd.ServiceMs += pen
			p.Observe(ProbeEvent{Kind: EventRetry, Time: now + svc, Dev: dev, Req: r,
				Breakdown: core.Breakdown{Recovery: pen, ServiceMs: pen}})
		}
	}
	if r.Op == core.Read {
		if n := inj.DegradedBlocks(r.LBN, r.Blocks); n > 0 {
			sur := float64(n) * inj.ECCSurchargeMs()
			r.Degraded = true
			r.RecoveryMs += sur
			e.res.RecoveryMs += sur
			svc += sur
			if p != nil {
				bd.Recovery += sur
				bd.ServiceMs += sur
			}
		}
	}
	serviced()
	return svc, bd, false
}

// complete is the shared completion path: every top-level request in
// every regime finishes here. It advances the completion count, fires
// progress and the EventComplete probe, invokes OnComplete, optionally
// tallies the fault outcome (tally — single and multi regimes with an
// injector; RunVolume keeps its own richer tallies), and folds the
// request into the measured statistics when it is past warmup and not
// failed. qlen < 0 skips the queue-length statistics (closed regime).
// onDone, when non-nil, runs last with the measured flag for
// regime-specific accounting. Reaching MaxRequests stops the run.
func (e *engine) complete(now float64, r *core.Request, dev, qlen int, resp, svc float64, tally bool, onDone func(measured bool)) {
	e.completed++
	e.ctx.progress(e.completed, now)
	measured := e.completed > e.opts.Warmup && !r.Failed
	if e.p != nil {
		e.p.Observe(ProbeEvent{Kind: EventComplete, Time: now, Dev: dev, Req: r, Measured: measured})
	}
	if e.opts.OnComplete != nil {
		e.opts.OnComplete(r)
	}
	if tally && e.inj != nil {
		classify(r, &e.res)
	}
	if measured {
		e.res.Requests++
		e.res.Response.Add(resp)
		e.res.Service.Add(svc)
		if qlen >= 0 {
			e.res.QueueLen.Add(float64(qlen))
			if qlen > e.res.MaxQueue {
				e.res.MaxQueue = qlen
			}
		}
	}
	if onDone != nil {
		onDone(measured)
	}
	if e.opts.MaxRequests > 0 && e.completed >= e.opts.MaxRequests {
		e.stopped = true
	}
}

// chainArrivals schedules src's stream as a linked chain of arrival
// events: each event delivers one request and then schedules the next,
// so simultaneous arrivals retain stream order and the heap holds at
// most one pending arrival. Eager regimes (multi, volume) use this;
// the open single-device regime ingests lazily in runOpen instead.
//
// The chain carries its state in a run-long struct with a single stored
// fire func: because at most one arrival event is ever pending, each
// link can reuse the same func value instead of allocating a fresh
// closure per request (the engine's allocation diet).
func (e *engine) chainArrivals(src workload.Source, deliver func(*core.Request)) {
	c := &arrivalChain{e: e, src: src, deliver: deliver}
	c.fireFn = c.fire
	if first := src.Next(); first != nil {
		c.next = first
		e.q.Schedule(first.Arrival, c.fireFn)
	}
}

// arrivalChain is chainArrivals' run-long state: the pending request and
// the one reusable arrival callback.
type arrivalChain struct {
	e       *engine
	src     workload.Source
	deliver func(*core.Request)
	next    *core.Request
	fireFn  func()
}

func (c *arrivalChain) fire() {
	r := c.next
	c.e.arrived++
	c.deliver(r)
	if nx := c.src.Next(); nx != nil {
		c.next = nx
		c.e.q.Schedule(nx.Arrival, c.fireFn)
	}
}

// ─── Open single-device regime (Run) ───────────────────────────────────

// runOpen wires the open-arrival process to a single device+scheduler
// target. Arrivals are ingested lazily — every request that has arrived
// by the current event time enters the queue together, before the next
// dispatch — reproducing the historical synchronous loop exactly: the
// engine alternates dispatch→completion events, pumps the queue after
// each, and sleeps until the next arrival when idle.
func (e *engine) runOpen(d core.Device, s core.Scheduler, src workload.Source) {
	o := &openRun{e: e, d: d, s: s, src: src, next: src.Next()}
	o.pumpFn = o.pump
	o.doneFn = o.finish
	e.q.Schedule(0, o.pumpFn)
}

// openRun is runOpen's run-long state. The regime alternates
// dispatch→completion with at most one service in flight, so the
// completion event's parameters (request, queue length, finish time,
// requeue flag) live here and both callbacks are allocated once per run
// instead of once per dispatch.
type openRun struct {
	e    *engine
	d    core.Device
	s    core.Scheduler
	src  workload.Source
	next *core.Request

	// In-flight dispatch, consumed by finish.
	r     *core.Request
	qlen  int
	done  float64
	again bool

	pumpFn, doneFn func()
}

func (o *openRun) pump() {
	e := o.e
	if e.stopped {
		return
	}
	now := e.q.Now()
	// Ingest every request that has arrived by `now`.
	for o.next != nil && o.next.Arrival <= now {
		e.arrived++
		o.s.Add(o.next)
		if e.p != nil {
			e.p.Observe(ProbeEvent{Kind: EventArrive, Time: o.next.Arrival, Req: o.next, Queue: o.s.Len()})
		}
		o.next = o.src.Next()
	}
	if o.s.Len() == 0 {
		if o.next != nil {
			// Idle until the next arrival.
			e.q.Schedule(o.next.Arrival, o.pumpFn)
		}
		return // else drained: the queue empties and the run ends
	}
	qlen := o.s.Len()
	r := o.s.Next(o.d, now)
	if r.Requeues == 0 {
		r.Start = now
	}
	if e.p != nil {
		e.p.Observe(ProbeEvent{Kind: EventDispatch, Time: now, Req: r, Queue: qlen, Class: r.Class})
	}
	svc, _, again := e.serveVisit(o.d, r, r, 0, now)
	e.res.Busy += svc
	o.r, o.qlen, o.done, o.again = r, qlen, now+svc, again
	e.q.Schedule(o.done, o.doneFn)
}

func (o *openRun) finish() {
	e := o.e
	if o.again {
		requeue(o.s, o.r)
		if e.p != nil {
			e.p.Observe(ProbeEvent{Kind: EventRequeue, Time: o.done, Req: o.r, Queue: o.s.Len()})
		}
	} else {
		o.r.Finish = o.done
		e.complete(o.done, o.r, 0, o.qlen, o.r.ResponseTime(), o.r.ServiceTime(), true, nil)
	}
	o.pump()
}

// ─── Closed regime (RunClosed) ─────────────────────────────────────────

// runClosed wires the closed arrival process — each request issues when
// the previous one completes — to a single-device target. When src
// implements workload.Thinker (see workload.ThinkTime), each issue is
// further delayed by that request's think-time draw, modeling a
// multiprogrammed closed loop; otherwise requests are back-to-back,
// byte-identical to the historical loop. With no queue to return to, a
// failed visit re-services the request immediately, spending the
// requeue budget in place.
func (e *engine) runClosed(d core.Device, src workload.Source) {
	think, _ := src.(workload.Thinker)
	c := &closedRun{e: e, d: d, src: src, think: think}
	c.issueFn = c.issue
	c.doneFn = c.finish
	if first := src.Next(); first != nil {
		c.r = first
		e.q.Schedule(c.delay(), c.issueFn)
	}
}

// closedRun is runClosed's run-long state: exactly one request is in
// play at a time (issue→completion→next issue), so the pending request
// and its accumulated times live here and the two callbacks are
// allocated once per run instead of twice per request.
type closedRun struct {
	e     *engine
	d     core.Device
	src   workload.Source
	think workload.Thinker

	// The request being issued or completed, and its visit totals.
	r        *core.Request
	t, total float64

	issueFn, doneFn func()
}

func (c *closedRun) delay() float64 {
	if c.think == nil {
		return 0
	}
	return c.think.ThinkMs()
}

func (c *closedRun) issue() {
	e, r := c.e, c.r
	e.arrived++
	now := e.q.Now()
	r.Arrival = now
	r.Start = now
	if e.p != nil {
		// Closed regime: arrival and dispatch coincide; the "queue"
		// is the request itself.
		e.p.Observe(ProbeEvent{Kind: EventArrive, Time: now, Req: r, Queue: 1})
		e.p.Observe(ProbeEvent{Kind: EventDispatch, Time: now, Req: r, Queue: 1, Class: r.Class})
	}
	t := now
	total := 0.0
	for {
		svc, _, again := e.serveVisit(c.d, r, r, 0, t)
		t += svc
		total += svc
		e.res.Busy += svc
		if !again {
			break
		}
		if e.p != nil {
			e.p.Observe(ProbeEvent{Kind: EventRequeue, Time: t, Req: r, Queue: 1})
		}
	}
	c.t, c.total = t, total
	e.q.Schedule(t, c.doneFn)
}

func (c *closedRun) finish() {
	e, r := c.e, c.r
	r.Finish = c.t
	e.complete(c.t, r, 0, -1, c.total, c.total, true, nil)
	if e.stopped {
		return
	}
	if next := c.src.Next(); next != nil {
		c.r = next
		e.q.Schedule(e.q.Now()+c.delay(), c.issueFn)
	}
}

// ─── Member sets (RunMulti, RunVolume) ─────────────────────────────────

// memberSet is the multi-queue service target shared by the routed
// (RunMulti) and redundant-volume (RunVolume) regimes: one scheduler
// queue per member device, per-member busy latches, and per-member
// result attribution.
type memberSet struct {
	devs   []core.Device
	scheds []core.Scheduler
	busy   []bool

	members []MemberResult
	// phases holds per-member phase aggregates when the probe carries a
	// PhaseCollector; nil otherwise.
	phases []PhaseStats
}

// newMemberSet resets the member devices and schedulers and sizes the
// attribution slices. With Options.Sketch the per-member phase
// aggregates use the bounded backend like the run-level collector.
func newMemberSet(devs []core.Device, scheds []core.Scheduler, e *engine) *memberSet {
	for i := range devs {
		devs[i].Reset()
		scheds[i].Reset()
	}
	ms := &memberSet{
		devs:    devs,
		scheds:  scheds,
		busy:    make([]bool, len(devs)),
		members: make([]MemberResult, len(devs)),
	}
	if findPhaseCollector(e.p) != nil {
		ms.phases = make([]PhaseStats, len(devs))
		if e.opts.Sketch {
			for i := range ms.phases {
				ms.phases[i].useSketch()
			}
		}
	}
	return ms
}

// attach publishes the per-member aggregates into res.
func (ms *memberSet) attach(res *Result) {
	for i := range ms.members {
		if ms.phases != nil {
			ms.members[i].Phases = &ms.phases[i]
		}
	}
	res.Members = ms.members
}
