package cache

import (
	"math/rand"
	"testing"

	"memsim/internal/core"
	"memsim/internal/mems"
)

// countingDev charges a fixed media time and counts accesses.
type countingDev struct {
	accesses int
	sectors  int64
}

func (d *countingDev) Name() string    { return "counting" }
func (d *countingDev) Capacity() int64 { return 1 << 20 }
func (d *countingDev) SectorSize() int { return 512 }
func (d *countingDev) Reset()          {}
func (d *countingDev) Access(r *core.Request, _ float64) float64 {
	d.accesses++
	d.sectors += int64(r.Blocks)
	return 1.0
}
func (d *countingDev) EstimateAccess(*core.Request, float64) float64 { return 1.0 }

func read(lbn int64, n int) *core.Request {
	return &core.Request{Op: core.Read, LBN: lbn, Blocks: n}
}

func write(lbn int64, n int) *core.Request {
	return &core.Request{Op: core.Write, LBN: lbn, Blocks: n}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeSectors: 0, SegmentSectors: 8},
		{SizeSectors: 64, SegmentSectors: 0},
		{SizeSectors: 8, SegmentSectors: 64},
		{SizeSectors: 64, SegmentSectors: 8, ReadAhead: -1},
		{SizeSectors: 64, SegmentSectors: 8, HitMs: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New should panic on invalid config")
			}
		}()
		New(&countingDev{}, Config{})
	}()
}

func TestMissThenHit(t *testing.T) {
	d := &countingDev{}
	c := New(d, Config{SizeSectors: 1024, SegmentSectors: 8, ReadAhead: 0, HitMs: 0.01})
	if svc := c.Access(read(0, 8), 0); svc != 1.01 {
		t.Errorf("miss service = %g, want 1.01", svc)
	}
	if svc := c.Access(read(0, 8), 0); svc != 0.01 {
		t.Errorf("hit service = %g, want 0.01", svc)
	}
	if c.Hits() != 1 || c.Misses() != 1 || c.HitRate() != 0.5 {
		t.Errorf("stats: hits=%d misses=%d rate=%g", c.Hits(), c.Misses(), c.HitRate())
	}
	if d.accesses != 1 {
		t.Errorf("media accesses = %d, want 1", d.accesses)
	}
}

func TestReadAheadMakesSequentialHit(t *testing.T) {
	// The speed-matching buffer effect (§2.4.11): a miss at LBN 0
	// streams a segment ahead, so the next sequential request hits.
	d := &countingDev{}
	c := New(d, Config{SizeSectors: 1024, SegmentSectors: 8, ReadAhead: 64, HitMs: 0.01})
	c.Access(read(0, 8), 0)
	for lbn := int64(8); lbn < 72; lbn += 8 {
		if svc := c.Access(read(lbn, 8), 0); svc != 0.01 {
			t.Fatalf("sequential read at %d missed (svc=%g)", lbn, svc)
		}
	}
	if d.accesses != 1 {
		t.Errorf("media accesses = %d, want 1 (one streamed fetch)", d.accesses)
	}
	if c.PrefetchedSectors() != 64 {
		t.Errorf("prefetched = %d, want 64", c.PrefetchedSectors())
	}
}

func TestEvictionLRU(t *testing.T) {
	d := &countingDev{}
	// Two segments of capacity.
	c := New(d, Config{SizeSectors: 16, SegmentSectors: 8, ReadAhead: 0, HitMs: 0.01})
	c.Access(read(0, 8), 0)  // seg 0
	c.Access(read(8, 8), 0)  // seg 1
	c.Access(read(0, 8), 0)  // touch seg 0 (hit)
	c.Access(read(16, 8), 0) // seg 2: evicts seg 1 (LRU)
	if svc := c.Access(read(0, 8), 0); svc != 0.01 {
		t.Error("segment 0 should have survived (was touched)")
	}
	if svc := c.Access(read(8, 8), 0); svc == 0.01 {
		t.Error("segment 1 should have been evicted")
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	d := &countingDev{}
	c := New(d, Config{SizeSectors: 1024, SegmentSectors: 8, ReadAhead: 0, HitMs: 0.01})
	if svc := c.Access(write(0, 8), 0); svc != 1.0 {
		t.Errorf("write service = %g, want full media time", svc)
	}
	// The write did not populate the cache.
	if svc := c.Access(read(0, 8), 0); svc == 0.01 {
		t.Error("write should not allocate")
	}
	if c.Hits() != 0 {
		t.Errorf("hits = %d", c.Hits())
	}
}

func TestPartialResidencyIsMiss(t *testing.T) {
	d := &countingDev{}
	c := New(d, Config{SizeSectors: 1024, SegmentSectors: 8, ReadAhead: 0, HitMs: 0.01})
	c.Access(read(0, 8), 0) // seg 0 resident
	// Request spanning segs 0 and 1: partial → miss.
	if svc := c.Access(read(4, 8), 0); svc == 0.01 {
		t.Error("partially-resident request must miss")
	}
}

func TestReadAheadClampedAtCapacity(t *testing.T) {
	d := &countingDev{}
	c := New(d, Config{SizeSectors: 1024, SegmentSectors: 8, ReadAhead: 1000, HitMs: 0})
	lbn := c.Capacity() - 8
	c.Access(read(lbn, 8), 0)
	if d.sectors != 8 {
		t.Errorf("fetched %d sectors at device end, want 8", d.sectors)
	}
}

func TestEstimateDoesNotMutate(t *testing.T) {
	d := &countingDev{}
	c := New(d, Config{SizeSectors: 1024, SegmentSectors: 8, ReadAhead: 0, HitMs: 0.01})
	if est := c.EstimateAccess(read(0, 8), 0); est != 1.01 {
		t.Errorf("miss estimate = %g", est)
	}
	if d.accesses != 0 {
		t.Error("estimate touched the media")
	}
	c.Access(read(0, 8), 0)
	if est := c.EstimateAccess(read(0, 8), 0); est != 0.01 {
		t.Errorf("hit estimate = %g", est)
	}
	if est := c.EstimateAccess(write(0, 8), 0); est != 1.0 {
		t.Errorf("write estimate = %g", est)
	}
}

func TestResetClears(t *testing.T) {
	d := &countingDev{}
	c := New(d, Config{SizeSectors: 1024, SegmentSectors: 8, ReadAhead: 0, HitMs: 0.01})
	c.Access(read(0, 8), 0)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 || c.HitRate() != 0 {
		t.Error("stats not cleared")
	}
	if svc := c.Access(read(0, 8), 0); svc == 0.01 {
		t.Error("cache contents survived Reset")
	}
}

func TestNameAndPassThrough(t *testing.T) {
	c := New(&countingDev{}, DefaultConfig())
	if c.Name() != "counting+cache" {
		t.Errorf("name = %q", c.Name())
	}
	if c.Capacity() != 1<<20 || c.SectorSize() != 512 {
		t.Error("pass-through accessors wrong")
	}
}

func TestSequentialStreamOnMEMSDevice(t *testing.T) {
	// End-to-end: a sequential 64 KB-at-a-time scan over the real MEMS
	// device with track-sized read-ahead should cut mean service time
	// well below the uncached scan.
	run := func(withCache bool) float64 {
		dev := mems.MustDevice(mems.DefaultConfig())
		var d core.Device = dev
		if withCache {
			d = New(dev, DefaultConfig())
		}
		now, total := 0.0, 0.0
		const blocks = 128 // 64 KB
		for i := 0; i < 200; i++ {
			svc := d.Access(read(int64(i*blocks), blocks), now)
			now += svc
			total += svc
		}
		return total / 200
	}
	cached := run(true)
	raw := run(false)
	if cached >= raw {
		t.Errorf("cached sequential scan %.3f ms should beat raw %.3f ms", cached, raw)
	}
}

func TestRandomWorkloadLowHitRate(t *testing.T) {
	// Random reads over a space far larger than the cache hit almost
	// never — the paper's "block reuse is captured by host caches".
	d := &countingDev{}
	c := New(d, Config{SizeSectors: 1024, SegmentSectors: 8, ReadAhead: 8, HitMs: 0.01})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		c.Access(read(rng.Int63n(c.Capacity()-16), 8), 0)
	}
	if hr := c.HitRate(); hr > 0.1 {
		t.Errorf("random hit rate = %.2f, want ≈ 0", hr)
	}
}

func TestAdaptivePrefetchSkipsRandom(t *testing.T) {
	d := &countingDev{}
	c := New(d, Config{SizeSectors: 1024, SegmentSectors: 8, ReadAhead: 64,
		AdaptivePrefetch: true, HitMs: 0.01})
	// Random-looking accesses: no prefetch issued.
	c.Access(read(100, 8), 0)
	c.Access(read(5000, 8), 0)
	c.Access(read(900, 8), 0)
	if c.PrefetchedSectors() != 0 {
		t.Errorf("adaptive cache prefetched %d sectors on random traffic", c.PrefetchedSectors())
	}
	if d.sectors != 24 {
		t.Errorf("media moved %d sectors, want 24 (demand only)", d.sectors)
	}
}

func TestAdaptivePrefetchEngagesOnSequential(t *testing.T) {
	d := &countingDev{}
	c := New(d, Config{SizeSectors: 1024, SegmentSectors: 8, ReadAhead: 64,
		AdaptivePrefetch: true, HitMs: 0.01})
	c.Access(read(0, 8), 0) // first read: not yet sequential, no prefetch
	if c.PrefetchedSectors() != 0 {
		t.Fatal("prefetched on first read")
	}
	c.Access(read(8, 8), 0) // sequential continuation: prefetch engages
	if c.PrefetchedSectors() != 64 {
		t.Fatalf("prefetched %d, want 64", c.PrefetchedSectors())
	}
	// Subsequent sequential reads now hit.
	for lbn := int64(16); lbn < 72; lbn += 8 {
		if svc := c.Access(read(lbn, 8), 0); svc != 0.01 {
			t.Fatalf("sequential read at %d missed", lbn)
		}
	}
}

func TestAdaptiveEstimateMatchesNextAccess(t *testing.T) {
	d := &countingDev{}
	c := New(d, Config{SizeSectors: 1024, SegmentSectors: 8, ReadAhead: 64,
		AdaptivePrefetch: true, HitMs: 0})
	c.Access(read(0, 8), 0)
	// A sequential next read would prefetch: estimate reflects the bigger
	// fetch (same 1 ms media charge in countingDev, so compare sectors
	// via a direct Access instead).
	est := c.EstimateAccess(read(8, 8), 0)
	got := c.Access(read(8, 8), 0)
	if est != got {
		t.Errorf("estimate %g != access %g", est, got)
	}
}
